package experiments

import (
	"math"
	"sync"
	"testing"
	"time"

	"auditdb/internal/tpch"
)

// The experiment tests run at a very small scale factor; they verify
// the *shapes* the paper reports, not absolute numbers.

var (
	benchMu    sync.Mutex
	benchCache = map[float64]*Workbench{}
)

// newBench returns a shared workbench for the scale factor. Tests that
// mutate Params receive their own shallow copy; the engine itself is
// shared, so tests must leave its audit-expression set as they found
// it.
func newBench(t *testing.T, sf float64) *Workbench {
	t.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if w, ok := benchCache[sf]; ok {
		cp := *w
		cp.Params = tpch.DefaultParams()
		return &cp
	}
	w, err := NewWorkbench(sf)
	if err != nil {
		t.Fatal(err)
	}
	benchCache[sf] = w
	cp := *w
	return &cp
}

func TestCutoffForSelectivity(t *testing.T) {
	if got := CutoffForSelectivity(1.0); got != "1992-01-01" {
		t.Errorf("sel 1.0 -> %s", got)
	}
	lo := CutoffForSelectivity(0.1)
	hi := CutoffForSelectivity(0.9)
	if lo <= hi {
		t.Errorf("higher selectivity should give earlier cutoff: %s vs %s", hi, lo)
	}
}

func TestFig6Shape(t *testing.T) {
	w := newBench(t, 0.002)
	pts, err := w.Fig6([]float64{0.1, 0.5, 1.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// The micro query is SJ: hcn must equal offline exactly
		// (Theorem 3.7); leaf-node must never under-count (Claim 3.5).
		if p.HCN != p.Offline {
			t.Errorf("sel %.1f: hcn=%d offline=%d (must match on SJ)", p.Selectivity, p.HCN, p.Offline)
		}
		if p.Leaf < p.Offline {
			t.Errorf("sel %.1f: leaf=%d < offline=%d (false negative!)", p.Selectivity, p.Leaf, p.Offline)
		}
	}
	// Offline cardinality grows with selectivity; leaf stays flat.
	if pts[0].Offline > pts[2].Offline {
		t.Errorf("offline should grow with selectivity: %+v", pts)
	}
	if pts[0].Leaf != pts[2].Leaf {
		t.Errorf("leaf cardinality should be selectivity-independent: %+v", pts)
	}
	// At low selectivity the leaf heuristic false-positives heavily.
	if pts[0].Leaf <= pts[0].Offline {
		t.Errorf("expected leaf false positives at 10%% selectivity: %+v", pts[0])
	}
}

func TestFig9Shape(t *testing.T) {
	w := newBench(t, 0.002)
	rows, err := w.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 queries, got %d", len(rows))
	}
	for _, r := range rows {
		if r.HCN < r.Offline {
			t.Errorf("%s: hcn=%d < offline=%d (false negative!)", r.Query, r.HCN, r.Offline)
		}
		if r.Leaf < r.HCN {
			t.Errorf("%s: leaf=%d < hcn=%d (leaf must be the superset)", r.Query, r.Leaf, r.HCN)
		}
	}
	// TPC-H queries carry no customer predicate except Q3, so the
	// leaf-node heuristic audits (nearly) the whole segment for at
	// least some queries while hcn stays close to ground truth.
	leafBlowup := false
	for _, r := range rows {
		if r.Offline >= 0 && r.Leaf > 2*r.HCN && r.Leaf > 10 {
			leafBlowup = true
		}
	}
	if !leafBlowup {
		t.Errorf("expected leaf-node false-positive blowup on some query: %+v", rows)
	}
}

func TestFGAStudyShape(t *testing.T) {
	w := newBench(t, 0.002)
	rows, err := w.FGAStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Every workload query genuinely touches customer rows of the
	// segment, so static analysis flags them all; the point of the
	// study is Example 6.1-style precision, shown in the fga package
	// tests. Here we verify the audit-operator cardinalities give the
	// per-tuple precision FGA cannot.
	for _, r := range rows {
		if !r.Flagged {
			// Q3 is the only query the analysis can ever clear, and
			// only when its segment parameter differs from the audited
			// one (not the default setup).
			if r.Query != "Q3" {
				t.Errorf("%s: static analysis should flag conservatively", r.Query)
			}
		}
		if r.HCN < r.Offline {
			t.Errorf("%s: hcn=%d < offline=%d", r.Query, r.HCN, r.Offline)
		}
	}
}

func TestFGADisjointSegmentClearsQ3(t *testing.T) {
	// Re-run the study with Q3 parameterized to a different segment
	// from the audited one: static analysis proves the contradiction
	// and clears Q3 — the paper's "all queries except Query 3".
	w := newBench(t, 0.002)
	w.Params.Segment = "AUTOMOBILE" // queries now target AUTOMOBILE; audit stays BUILDING
	rows, err := w.FGAStudy()
	if err != nil {
		t.Fatal(err)
	}
	defCleared := false
	for _, r := range rows {
		if r.Query == "Q3" && !r.Flagged {
			defCleared = true
		}
		if r.Query != "Q3" && !r.Flagged {
			t.Errorf("%s: should remain flagged (no customer predicate)", r.Query)
		}
	}
	if !defCleared {
		t.Error("Q3 with a disjoint segment must be cleared by static analysis")
	}
}

func TestFig7And8Run(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep skipped in -short mode")
	}
	w := newBench(t, 0.002)
	pts, err := w.Fig7([]float64{0.4}, 0, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("pts = %+v", pts)
	}
	// At this microscopic scale the measurement is pure noise; the
	// real sweep runs at a larger SF in cmd/benchaudit and the bench
	// tests. Here we only require finite numbers.
	if math.IsNaN(pts[0].LeafPct) || math.IsInf(pts[0].LeafPct, 0) ||
		math.IsNaN(pts[0].HCNPct) || math.IsInf(pts[0].HCNPct, 0) {
		t.Errorf("overhead not finite: %+v", pts[0])
	}
	c8, err := w.Fig8([]int{1, 100}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(c8) != 2 {
		t.Fatalf("fig8 = %+v", c8)
	}
	// The sweep must clean up its temporary audit expressions.
	if _, ok := w.Engine.Registry().Get("Audit_Card_0"); ok {
		t.Error("temporary audit expression leaked")
	}
}

func TestFig10Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep skipped in -short mode")
	}
	w := newBench(t, 0.002)
	rows, err := w.Fig10(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %+v", rows)
	}
	_ = tpch.DefaultParams()
}
