// Package engine is the database façade: it parses statements,
// dispatches DDL/DML/queries, instruments SELECT plans with audit
// operators (after logical optimization, like the paper's prototype,
// §IV-B), maintains materialized audit-expression ID sets under DML,
// and fires both classic DML triggers and the paper's SELECT triggers
// with their ACCESSED internal state.
package engine

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/core"
	"auditdb/internal/exec"
	"auditdb/internal/lexer"
	"auditdb/internal/obs"
	"auditdb/internal/opt"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/trace"
	"auditdb/internal/triage"
	"auditdb/internal/value"
	"auditdb/internal/wal"
)

// MaxCascadeDepth bounds trigger cascades (SELECT trigger actions can
// fire DML triggers whose bodies run audited SELECTs, §II).
const MaxCascadeDepth = 16

// Engine is one in-memory database instance with auditing support.
type Engine struct {
	cat   *catalog.Catalog
	store *storage.Store
	reg   *core.Registry

	// dmlMu serializes writers; readers run against storage snapshots.
	dmlMu sync.Mutex

	// wal enables durability when non-nil (set once via AttachWAL before
	// serving). ckptMu fences commits against checkpoints: autocommit
	// statements hold the read side from first write to WAL flush,
	// Checkpoint holds the write side. Lock order: ckptMu, then dmlMu.
	// See durability.go.
	wal    *wal.Manager
	ckptMu sync.RWMutex

	mu       sync.RWMutex
	notify   func(msg string)
	onAccess func(ev AccessEvent)
	triggers map[string]*compiledTrigger
	views    map[string]*ast.Select

	// defSess is the built-in session Engine.Exec/Query run under; its
	// per-session state (user, audit-all, placement heuristic, open SQL
	// transaction) used to be engine-global fields, which made USERID()
	// attribution wrong under concurrent users. NewSession creates
	// independent peers seeded from it.
	defSess *Session

	// metrics is the engine's observability registry: every counter in
	// Stats lives here, so the wire "stats" op (Snapshot) and the HTTP
	// /metrics endpoint (WritePrometheus) read the same atomics and can
	// never disagree.
	metrics *obs.Registry
	stats   Stats
	// rowsAuditedByTable partitions the rows-audited counter by
	// sensitive table for the auditdb_rows_audited_total{table=...}
	// Prometheus family.
	rowsAuditedByTable *obs.CounterVec
	// Per-phase latency histograms (seconds).
	parseSeconds, planSeconds, execSeconds, queryLatency *obs.Histogram

	// logger receives structured events (trigger firings, slow queries);
	// defaults to a discard handler. slowQueryNanos > 0 enables the
	// slow-query log for SELECTs at or above the threshold.
	logger         atomic.Pointer[slog.Logger]
	slowQueryNanos atomic.Int64

	// defaultWorkers is the per-query worker budget sessions inherit
	// when they have not run SET WORKERS. It defaults to 1 (serial);
	// auditdbd raises it to GOMAXPROCS via -workers. parallelMinRows is
	// the estimated driving-scan size below which opt.Parallelize
	// leaves a plan serial. ddlVersion increments on every successful
	// DDL statement and invalidates session plan caches.
	defaultWorkers  atomic.Int64
	parallelMinRows atomic.Int64
	ddlVersion      atomic.Int64

	// Parallel-execution metrics (registered in initMetrics).
	execWorkers       *obs.Gauge
	morselsDispatched *obs.Counter
	parallelQueries   *obs.Counter
	planCacheHits     *obs.Counter

	// Data-skipping metrics: chunks read by scan kernels, and chunks
	// skipped by reason (filter = zone map refuted the pushed
	// predicate; audit = the sensitive-ID sketch refuted every probe).
	chunksScanned *obs.Counter
	chunksSkipped *obs.CounterVec

	// sharedPlans is the engine-wide plan cache keyed by canonical
	// (auto-parameterized) statement text; session caches act as an L1
	// in front of it. See sharedcache.go and plancache.go.
	sharedPlans          sharedPlanCache
	sharedCacheHits      *obs.Counter
	sharedCacheMisses    *obs.Counter
	sharedCacheEvictions *obs.Counter

	// disablePlanCache turns off both cache levels and the normalized
	// fast path; tests use it to produce uncached reference executions.
	// Set before the engine serves traffic, never concurrently with it.
	disablePlanCache bool

	// Tracing. qidCtr issues the engine-unique 64-bit query IDs every
	// top-level statement gets; traceEvery is the head-sampling rate
	// (capture every nth statement, 0 = off); traceRing retains
	// finished traces for SHOW TRACE FOR / SHOW TRACES and /traces.
	// See trace.go and internal/trace.
	qidCtr             atomic.Uint64
	traceEvery         atomic.Int64
	traceRing          *trace.Ring
	tracesSampled      *obs.Counter
	traceRingEvictions *obs.Counter

	// Budgeted audit triage (see internal/triage and triage.go):
	// trigger firings are risk-scored into a bounded queue drained by
	// background offline-verification workers. New() builds the service
	// disabled (no workers — the enqueue path is skipped entirely);
	// ConfigureTriage swaps in an enabled one. triageMetrics is
	// registered once in initMetrics and survives reconfiguration.
	triage        *triage.Service
	triageMetrics *triage.Metrics
}

// Stats counts engine activity. Each field is a counter registered in
// the engine's obs.Registry; the field names are stable API, the
// registry supplies the Prometheus names and wire-stats aliases.
type Stats struct {
	Queries       *obs.Counter
	Statements    *obs.Counter
	TriggersFired *obs.Counter
	Notifications *obs.Counter
	// RowsAudited aggregates across expressions; its Prometheus
	// identity is the per-table auditdb_rows_audited_total family, so
	// the aggregate itself is snapshot-only.
	RowsAudited *obs.Counter
	// RowsScanned counts heap/index rows the scan kernels read from
	// storage across all queries — the observable that streaming scans
	// with LIMIT do bounded work instead of materializing tables.
	RowsScanned *obs.Counter
	// Sessions counts sessions ever created (the default session
	// included).
	Sessions *obs.Counter
	// PlacementExact / PlacementConservative classify every
	// instrumented SELECT by audit-operator placement outcome: exact
	// when every operator reached its block root unobstructed (no false
	// positives, Theorem 3.7), conservative when one sits below a
	// row-dropping operator or inside a subquery and may over-report
	// (Example 3.8).
	PlacementExact        *obs.Counter
	PlacementConservative *obs.Counter
}

type compiledTrigger struct {
	meta *catalog.TriggerMeta
	body []ast.Stmt
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the output columns of a query.
	Columns []string
	// Kinds gives the declared value kind of each output column when
	// the planner knows it (len(Kinds) == len(Columns)); nil for
	// results whose schema is synthesized (EXPLAIN, VERIFY). Typed
	// wire protocols use it for result metadata.
	Kinds []value.Kind
	// Rows holds query output.
	Rows []value.Row
	// RowsAffected counts DML changes.
	RowsAffected int
	// Accessed is the query's ACCESSED state when the statement was an
	// audited SELECT; nil otherwise.
	Accessed *core.Accessed
	// QID is the query ID the tracer assigned to the statement; front
	// ends surface it so a trace can be looked up after the fact
	// (SHOW TRACE FOR <qid>). Zero for nested statements, which execute
	// inside their parent's trace.
	QID uint64
}

// New creates an empty engine.
func New() *Engine {
	cat := catalog.New()
	store := storage.NewStore()
	e := &Engine{
		cat:      cat,
		store:    store,
		reg:      core.NewRegistry(cat, store),
		triggers: make(map[string]*compiledTrigger),
		views:    make(map[string]*ast.Select),
	}
	e.traceRing = trace.NewRing(DefaultTraceRingCap)
	e.initMetrics()
	e.logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
	e.defaultWorkers.Store(1)
	e.parallelMinRows.Store(DefaultParallelMinRows)
	e.execWorkers.Set(1)
	e.triage = triage.NewService(triage.Config{}, nil, e.verifyTriageEvent, e.triageMetrics)
	e.defSess = newSession(e, "system", false, core.HighestCommutativeNode)
	return e
}

// initMetrics builds the obs registry and registers every engine
// metric. Counter aliases are the wire "stats" op's historical keys;
// Prometheus names follow the auditdb_ convention.
func (e *Engine) initMetrics() {
	r := obs.NewRegistry()
	e.metrics = r
	e.stats = Stats{
		Queries:       r.NewCounter("auditdb_queries_total", "queries", "SELECT statements executed."),
		Statements:    r.NewCounter("auditdb_statements_total", "statements", "Statements of any kind executed."),
		TriggersFired: r.NewCounter("auditdb_triggers_fired_total", "triggers_fired", "Trigger actions fired (SELECT and DML triggers)."),
		Notifications: r.NewCounter("auditdb_notifications_total", "notifications", "NOTIFY actions delivered."),
		// Snapshot-only: the Prometheus identity of rows-audited is the
		// per-table family registered below.
		RowsAudited: r.NewCounter("", "rows_audited", ""),
		RowsScanned: r.NewCounter("auditdb_rows_scanned_total", "rows_scanned", "Heap and index rows read from storage."),
		Sessions:    r.NewCounter("auditdb_sessions_total", "sessions", "Sessions ever created, the default session included."),
		PlacementExact: r.NewCounter("auditdb_placement_exact_total", "placement_exact",
			"Instrumented SELECTs whose audit operators all reached their block roots (exact auditing, Theorem 3.7)."),
		PlacementConservative: r.NewCounter("auditdb_placement_conservative_total", "placement_conservative",
			"Instrumented SELECTs with an audit operator below a row-dropping operator or inside a subquery (may over-report)."),
	}
	e.rowsAuditedByTable = r.NewCounterVec("auditdb_rows_audited_total", "rows_audited_by_table",
		"Distinct sensitive IDs recorded into ACCESSED, by sensitive table.", "table")
	e.parseSeconds = r.NewHistogram("auditdb_parse_seconds", "parse_seconds",
		"SQL parse latency in seconds.", obs.LatencyBuckets)
	e.planSeconds = r.NewHistogram("auditdb_plan_seconds", "plan_seconds",
		"Plan, optimize and audit-instrumentation latency in seconds.", obs.LatencyBuckets)
	e.execSeconds = r.NewHistogram("auditdb_exec_seconds", "exec_seconds",
		"Plan execution latency in seconds.", obs.LatencyBuckets)
	e.queryLatency = r.NewHistogram("auditdb_query_latency_seconds", "query_latency_seconds",
		"End-to-end SELECT latency in seconds, trigger firing included.", obs.LatencyBuckets)
	r.NewUptimeGauge("auditdb_uptime_seconds", "uptime_seconds")
	e.execWorkers = r.NewGauge("auditdb_exec_workers", "exec_workers",
		"Default per-query worker budget for parallel execution (1 = serial).")
	e.morselsDispatched = r.NewCounter("auditdb_morsels_dispatched_total", "morsels_dispatched",
		"Morsels handed out by parallel scan cursors.")
	e.parallelQueries = r.NewCounter("auditdb_parallel_queries_total", "parallel_queries",
		"SELECTs executed with a parallel operator (Gather exchange or two-phase aggregate) in their plan.")
	e.planCacheHits = r.NewCounter("auditdb_plan_cache_hits_total", "plan_cache_hits",
		"SELECTs served from a session's prepared-plan cache, skipping plan/optimize/instrument work.")
	e.chunksScanned = r.NewCounter("auditdb_chunks_scanned_total", "chunks_scanned",
		"Chunks read by scan kernels when chunk statistics were consulted.")
	e.chunksSkipped = r.NewCounterVec("auditdb_chunks_skipped_total", "chunks_skipped",
		"Chunks skipped by data skipping, by reason (filter = zone-map refutation of the pushed predicate, audit = sensitive-ID sketch refutation).", "reason")
	e.sharedCacheHits = r.NewCounter("auditdb_plan_cache_shared_hits_total", "plan_cache_shared_hits",
		"Plans adopted from the engine-wide shared cache (a session cloned another session's template).")
	e.sharedCacheMisses = r.NewCounter("auditdb_plan_cache_shared_misses_total", "plan_cache_shared_misses",
		"Canonical statement shapes that had to be planned cold because no shared template matched.")
	e.sharedCacheEvictions = r.NewCounter("auditdb_plan_cache_shared_evictions_total", "plan_cache_shared_evictions",
		"Canonical texts dropped from the shared plan cache by wholesale shard eviction.")
	r.NewGaugeFunc("auditdb_plan_cache_shared_entries", "plan_cache_shared_entries",
		"Canonical statement texts currently resident in the shared plan cache.",
		func() int64 { return e.sharedPlans.entries() })
	e.tracesSampled = r.NewCounter("auditdb_traces_sampled_total", "traces_sampled",
		"Statements whose full span tree was captured (head sampling or SET trace = on).")
	e.traceRingEvictions = r.NewCounter("auditdb_trace_ring_evictions_total", "trace_ring_evictions",
		"Retained traces evicted from the bounded trace ring by newer ones.")
	r.NewGaugeFunc("auditdb_trace_ring_traces", "trace_ring_traces",
		"Traces currently retained in the trace ring.",
		func() int64 { return int64(e.traceRing.Len()) })
	e.triageMetrics = triage.NewMetrics(r)
}

// Metrics exposes the engine's observability registry so servers can
// mount it on an HTTP endpoint and register their own counters beside
// the engine's.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// SetLogger installs the structured logger that receives trigger
// firings and slow-query events. nil restores the discard logger.
func (e *Engine) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	e.logger.Store(l)
}

// Logger returns the engine's current structured logger.
func (e *Engine) Logger() *slog.Logger { return e.logger.Load() }

// SetSlowQueryThreshold enables the slow-query log: SELECTs whose
// end-to-end latency reaches d are logged with their SQL, latency,
// rows scanned/audited and placement outcome. d <= 0 disables it.
func (e *Engine) SetSlowQueryThreshold(d time.Duration) {
	e.slowQueryNanos.Store(int64(d))
}

// Catalog exposes the schema registry.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the row store (used by the offline auditor and tests).
func (e *Engine) Store() *storage.Store { return e.store }

// Registry exposes the compiled audit expressions.
func (e *Engine) Registry() *core.Registry { return e.reg }

// StatsSnapshot returns current counter values from the obs registry —
// the same atomics /metrics renders, keyed by wire alias.
func (e *Engine) StatsSnapshot() map[string]int64 {
	return e.metrics.Snapshot()
}

// SetUser sets the default session's user reported by USERID().
// Per-connection identity belongs on Session; this remains for the
// embeddable single-session API.
func (e *Engine) SetUser(u string) { e.defSess.SetUser(u) }

// SetHeuristic selects the default session's audit-operator placement
// algorithm. New sessions inherit it.
func (e *Engine) SetHeuristic(h core.Heuristic) { e.defSess.SetHeuristic(h) }

// Heuristic returns the default session's placement algorithm.
func (e *Engine) Heuristic() core.Heuristic { return e.defSess.Heuristic() }

// SetAuditAll makes every SELECT on the default session instrumented
// for every compiled audit expression even without ON ACCESS triggers;
// benchmarks and the offline-auditor pipeline use this. New sessions
// inherit it.
func (e *Engine) SetAuditAll(on bool) { e.defSess.SetAuditAll(on) }

// OnNotify installs the callback invoked by NOTIFY actions (the
// paper's SEND EMAIL stand-in).
func (e *Engine) OnNotify(fn func(msg string)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notify = fn
}

// AccessEvent describes one query's accesses to one audit expression,
// delivered synchronously before the query's results are returned to
// the caller — the "warn before returning results" trigger variant the
// paper sketches as future work (§II), and the basis for real-time
// feedback scenarios (§I).
type AccessEvent struct {
	// Expression is the audit expression's name.
	Expression string
	// User and SQL identify the access.
	User, SQL string
	// IDs are the partition-by keys recorded in ACCESSED, sorted.
	IDs []value.Value
}

// OnAccess installs a callback invoked for every audited SELECT that
// recorded at least one sensitive ID, after the ON ACCESS triggers and
// before the result is handed back.
func (e *Engine) OnAccess(fn func(ev AccessEvent)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onAccess = fn
}

// Exec parses and executes a single statement under the default
// session.
func (e *Engine) Exec(sql string) (*Result, error) { return e.defSess.Exec(sql) }

// ExecScript executes a semicolon-separated script under the default
// session, returning the last statement's result.
func (e *Engine) ExecScript(sql string) (*Result, error) { return e.defSess.ExecScript(sql) }

// Query parses and executes a SELECT under the default session.
func (e *Engine) Query(sql string) (*Result, error) { return e.defSess.Query(sql) }

// actionEnv carries trigger-body execution state: the NEW/OLD outer
// row, the ACCESSED relation, and the cascade depth.
type actionEnv struct {
	outerSchema plan.Schema
	outerRow    value.Row
	extraSchema map[string]plan.Schema
	extraRows   map[string][]value.Row
	params      []value.Value
	txn         *Txn
	// sess is the session the statement executes under; trigger actions
	// inherit it so USERID()/sqltext() resolve to the user whose query
	// fired them. nil means the engine's default session.
	sess *Session
	// lockHeld marks statements running while an enclosing transaction
	// already holds the writer lock but outside its undo scope (SELECT
	// trigger actions — the paper's system transactions).
	lockHeld bool
	depth    int
	// unit buffers WAL operations for the atomic unit this statement
	// belongs to; trigger cascades share their firing statement's unit,
	// SELECT-trigger system transactions get their own (trigger.go).
	unit *walUnit
}

func rootActionEnv() *actionEnv { return &actionEnv{} }

func (a *actionEnv) child() *actionEnv {
	// Classic trigger actions join the enclosing transaction's undo
	// scope (and its WAL unit); SELECT-trigger actions clear txn via
	// systemChild.
	return &actionEnv{depth: a.depth + 1, txn: a.txn, sess: a.sess, lockHeld: a.lockHeld, unit: a.unit}
}

// systemChild derives the environment for a SELECT trigger's action:
// it runs as its own system transaction (§II of the paper), so a
// rollback of the reading transaction cannot erase the audit trail.
// The firing session carries over — the logged USERID() must be the
// reader's, not whoever touched the engine last.
func (a *actionEnv) systemChild() *actionEnv {
	return &actionEnv{depth: a.depth + 1, sess: a.sess, lockHeld: a.lockHeld || a.txn != nil}
}

// execStmt runs one statement. At depth 0 it brackets the execution
// with the statement tracer (query-ID assignment, span capture, tail
// retention); nested executions — trigger cascades, IF bodies — record
// into the enclosing statement's trace instead.
func (e *Engine) execStmt(stmt ast.Stmt, sql string, env *actionEnv) (*Result, error) {
	if env.depth == 0 {
		if s := e.sessionOf(env); e.traceBegin(s) {
			res, err := e.execStmtInner(stmt, sql, env)
			e.traceFinish(s, sql, res, err)
			return res, err
		}
	}
	return e.execStmtInner(stmt, sql, env)
}

func (e *Engine) execStmtInner(stmt ast.Stmt, sql string, env *actionEnv) (*Result, error) {
	if env.depth > MaxCascadeDepth {
		return nil, fmt.Errorf("trigger cascade exceeds maximum depth %d", MaxCascadeDepth)
	}
	e.stats.Statements.Add(1)
	switch stmt.(type) {
	case *ast.TxBegin, *ast.TxCommit, *ast.TxRollback:
		return e.runTxControl(stmt, env)
	}
	// Statements issued through Exec while the session's SQL-level
	// transaction is open run inside it.
	if env.txn == nil && env.depth == 0 {
		env.txn = e.sessionOf(env).openTxn()
	}
	// A top-level autocommit statement is one durable atomic unit:
	// everything it and its trigger cascade write becomes a single WAL
	// commit record, flushed when the statement finishes (on error too —
	// with no transaction there is no undo, so applied changes stay in
	// memory and must reach the log). The checkpoint read-lock spans
	// apply and flush so a checkpoint can never capture a change in its
	// snapshot while the change's commit record lands in a segment the
	// checkpoint does not truncate.
	if e.wal != nil && env.depth == 0 && env.txn == nil && env.unit == nil {
		e.ckptMu.RLock()
		env.unit = &walUnit{}
		res, err := e.dispatchStmt(stmt, sql, env)
		flushErr := e.flushUnitTraced(e.sessionOf(env), env.unit)
		e.ckptMu.RUnlock()
		if err == nil {
			err = flushErr
		}
		return res, err
	}
	return e.dispatchStmt(stmt, sql, env)
}

func (e *Engine) dispatchStmt(stmt ast.Stmt, sql string, env *actionEnv) (*Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return e.runSelect(s, sql, env)
	case *ast.Insert:
		return e.runInsert(s, sql, env)
	case *ast.Update:
		return e.runUpdate(s, sql, env)
	case *ast.Delete:
		return e.runDelete(s, sql, env)
	case *ast.CreateTable:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runCreateTable(s) })
	case *ast.CreateIndex:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runCreateIndex(s) })
	case *ast.DropTable:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runDropTable(s) })
	case *ast.CreateAuditExpression:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runCreateAuditExpression(s) })
	case *ast.DropAuditExpression:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runDropAuditExpression(s) })
	case *ast.CreateTrigger:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runCreateTrigger(s) })
	case *ast.DropTrigger:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runDropTrigger(s) })
	case *ast.If:
		return e.runIf(s, sql, env)
	case *ast.Notify:
		return e.runNotify(s, env)
	case *ast.Explain:
		return e.runExplain(s, sql, env)
	case *ast.CreateView:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runCreateView(s) })
	case *ast.DropView:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runDropView(s) })
	case *ast.DropIndex:
		return e.execDDL(env, stmt, func() (*Result, error) { return e.runDropIndex(s) })
	case *ast.VerifyAuditLog:
		return e.runVerifyAuditLog()
	case *ast.ShowTrace:
		return e.runShowTrace(s.QID)
	case *ast.ShowTraces:
		return e.runShowTraces()
	case *ast.ShowAuditQueue:
		return e.runShowAuditQueue()
	case *ast.ShowAuditVerdicts:
		return e.runShowAuditVerdicts()
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// execDDL runs one DDL statement and, on success, buffers its
// canonical text on the current atomic unit so replay re-executes it
// in order with the surrounding DML.
func (e *Engine) execDDL(env *actionEnv, stmt ast.Stmt, run func() (*Result, error)) (*Result, error) {
	res, err := run()
	if err == nil {
		e.bufferDDL(env, stmt)
		// Any successful DDL may change what a SQL text plans to
		// (schemas, views, audit expressions, triggers): invalidate every
		// session's cached plans by bumping the global version.
		e.ddlVersion.Add(1)
	}
	return res, err
}

// planEnv builds the plan environment for a statement executed under
// the given action environment.
func (e *Engine) planEnv(env *actionEnv) *plan.Env {
	pe := &plan.Env{Catalog: e.cat}
	if env.extraSchema != nil {
		pe.Extra = env.extraSchema
	}
	e.mu.RLock()
	if len(e.views) > 0 {
		pe.Views = make(map[string]*ast.Select, len(e.views))
		for k, v := range e.views {
			pe.Views[k] = v
		}
	}
	e.mu.RUnlock()
	return pe
}

func (e *Engine) execCtx(env *actionEnv, sql string) *exec.Ctx {
	ctx := exec.NewCtx(e.store)
	sess := e.sessionOf(env)
	ctx.Eval.Session = plan.SessionInfo{User: sess.User(), SQL: sql, Now: time.Now()}
	ctx.Eval.Params = env.params
	ctx.Extra = env.extraRows
	ctx.NoSkip = !sess.SkippingOn()
	return ctx
}

// BuildQueryPlan parses, plans, optimizes and (optionally) instruments
// a SELECT without executing it; used by tests, EXPLAIN-style tooling
// and the benchmark harness.
func (e *Engine) BuildQueryPlan(sql string, instrument bool) (plan.Node, *core.Accessed, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	n, err := plan.Build(e.planEnv(rootActionEnv()), sel)
	if err != nil {
		return nil, nil, err
	}
	n = opt.Optimize(n)
	if !instrument {
		return n, nil, nil
	}
	acc := core.NewAccessed()
	for _, ae := range e.auditTargets(e.defSess.AuditAll()) {
		n = core.Instrument(n, ae, &core.Probe{Expr: ae, Acc: acc}, e.Heuristic())
	}
	return n, acc, nil
}

// auditTargets returns the audit expressions whose accesses must be
// tracked: all of them when the session is in audit-all mode,
// otherwise those with at least one ON ACCESS trigger.
func (e *Engine) auditTargets(auditAll bool) []*core.AuditExpression {
	var out []*core.AuditExpression
	for _, ae := range e.reg.All() {
		if auditAll || len(e.cat.TriggersFor(catalog.TriggerOnAccess, ae.Meta.Name)) > 0 {
			out = append(out, ae)
		}
	}
	return out
}

// selectRun is a planned SELECT ready to execute: the (instrumented,
// possibly parallelized) plan plus everything the execution tail needs
// that the build phase decided.
type selectRun struct {
	root         plan.Node
	targets      []*core.AuditExpression
	acc          *core.Accessed
	conservative bool
	hasAudit     bool
	parallel     bool
	correlated   bool
}

func (e *Engine) runSelect(sel *ast.Select, sql string, env *actionEnv) (*Result, error) {
	start := time.Now()
	e.stats.Queries.Add(1)
	sess := e.sessionOf(env)
	workers := e.workersFor(sess)

	// Session plan cache: a repeated SQL text under unchanged session
	// knobs and catalog version skips build, optimize, instrumentation
	// and parallelization entirely; only fresh probe sinks are bound.
	key := planCacheKey{sql: sql, heuristic: sess.Heuristic(), auditAll: sess.AuditAll(), workers: workers}
	cacheable := env.depth == 0 && env.outerSchema == nil &&
		env.extraSchema == nil && env.extraRows == nil && !e.disablePlanCache
	if cacheable {
		if cp := sess.cachedPlan(key, e.ddlVersion.Load()); cp != nil {
			e.planCacheHits.Add(1)
			r := &sess.rec
			r.AddPhase(trace.PhasePlan, time.Since(start))
			if id := r.AddSpan(r.Current(), "plan", start, time.Since(start)); id >= 0 {
				r.SetAttr(id, "cache", "hit")
			}
			run := selectRun{
				root: cp.root, targets: cp.targets,
				conservative: cp.conservative, hasAudit: cp.hasAudit, parallel: cp.parallel,
			}
			if len(cp.targets) > 0 {
				run.acc = core.NewAccessed()
				rebindProbes(cp.root, run.acc)
			}
			return e.executeSelect(&run, sql, env, workers, start)
		}
		// Statements that arrive already parsed (scripts, the pgwire
		// simple protocol) still share plans engine-wide through the
		// canonical cache: normalize the text and adopt a template if the
		// shape is known, re-planning from the canonical form otherwise.
		if res, ok, err := e.runSelectNormalized(sql, env, sess, key.heuristic, key.auditAll, workers, start); ok {
			return res, err
		}
	}

	var (
		n          plan.Node
		correlated bool
		err        error
	)
	if env.outerSchema != nil {
		n, correlated, err = plan.BuildWithOuter(e.planEnv(env), sel, env.outerSchema)
	} else {
		n, err = plan.Build(e.planEnv(env), sel)
	}
	if err != nil {
		return nil, err
	}
	optStart := time.Now()
	n = opt.Optimize(n)
	optDur := time.Since(optStart)

	// Instrument with audit operators — after logical optimization,
	// exactly where the paper's prototype inserts them (§IV-B).
	targets := e.auditTargets(sess.AuditAll())
	var acc *core.Accessed
	hasAudit := false
	conservative := false
	if len(targets) > 0 {
		acc = core.NewAccessed()
		heur := sess.Heuristic()
		for _, ae := range targets {
			n = core.Instrument(n, ae, &core.Probe{Expr: ae, Acc: acc}, heur)
		}
		// Classify placement only when instrumentation actually placed
		// an operator — a query not touching any sensitive table (e.g. a
		// trigger body reading ACCESSED) is not an audited query.
		if core.CountAuditOps(n, true) > 0 {
			hasAudit = true
			conservative = core.HasConservativePlacement(n)
		}
	}
	// Parallelize last, over the instrumented plan, so audit operators
	// land inside fragments and fork worker-local sinks.
	if workers >= 2 {
		n = opt.Parallelize(n, e.tableEstimate, workers, int(e.parallelMinRows.Load()))
	}
	run := selectRun{
		root: n, targets: targets, acc: acc,
		conservative: conservative, hasAudit: hasAudit,
		parallel: planIsParallel(n), correlated: correlated,
	}
	e.planSeconds.ObserveDuration(time.Since(start))
	{
		r := &sess.rec
		r.AddPhase(trace.PhasePlan, time.Since(start))
		if id := r.AddSpan(r.Current(), "plan", start, time.Since(start)); id >= 0 {
			r.SetAttr(id, "cache", "miss")
			r.AddSpan(id, "optimize", optStart, optDur)
		}
	}
	if cacheable {
		sess.storePlan(key, &cachedPlan{
			root: n, targets: targets, conservative: conservative,
			hasAudit: hasAudit, parallel: run.parallel, version: e.ddlVersion.Load(),
		})
	}
	return e.executeSelect(&run, sql, env, workers, start)
}

// runSelectNormalized is runSelect's canonical-cache branch: the
// statement was parsed by the caller, but its plan can still come from
// (or seed) the engine-wide shared cache keyed by normalized text.
// ok=false falls through to ordinary per-text planning.
func (e *Engine) runSelectNormalized(sql string, env *actionEnv, sess *Session, heur core.Heuristic, auditAll bool, workers int, start time.Time) (*Result, bool, error) {
	if !lexer.Normalize(sql, &sess.norm) {
		return nil, false, nil
	}
	if sess.norm.NUser != len(env.params) {
		return nil, false, nil
	}
	minRows := int(e.parallelMinRows.Load())
	version := e.ddlVersion.Load()
	adoptStart := time.Now()
	cp, src := e.adoptCanonPlan(sess, sess.norm.Canonical, sess.norm.User, heur, auditAll, workers, minRows, version)
	if cp == nil || cp.bypass || cp.slots != len(sess.norm.Vals) {
		return nil, false, nil
	}
	{
		// The trace recorder is already active here (runSelect executes
		// under execStmt's bracket), so the plan-cache outcome is recorded
		// directly rather than staged the way execCanonSelect stages it.
		r := &sess.rec
		d := time.Since(adoptStart)
		r.AddPhase(trace.PhasePlan, d)
		if id := r.AddSpan(r.Current(), "plan", adoptStart, d); id >= 0 {
			r.SetAttr(id, "cache", src)
		}
	}
	sess.lock()
	scratch := sess.paramScratch
	sess.paramScratch = nil
	sess.unlock()
	params := bindSlots(scratch, sess.norm.Vals, sess.norm.User, env.params)
	env.params = params
	run := selectRun{
		root: cp.root, targets: cp.targets,
		conservative: cp.conservative, hasAudit: cp.hasAudit, parallel: cp.parallel,
	}
	if len(cp.targets) > 0 {
		run.acc = core.NewAccessed()
		rebindProbes(cp.root, run.acc)
	}
	res, err := e.executeSelect(&run, sql, env, workers, start)
	sess.lock()
	sess.paramScratch = params
	sess.unlock()
	return res, true, err
}

// executeSelect is the shared execution tail for cached and freshly
// planned SELECTs: run the plan, fire ON ACCESS triggers, account
// metrics and the slow-query log.
func (e *Engine) executeSelect(run *selectRun, sql string, env *actionEnv, workers int, start time.Time) (*Result, error) {
	sess := e.sessionOf(env)
	n, acc, targets := run.root, run.acc, run.targets
	if run.hasAudit {
		if run.conservative {
			e.stats.PlacementConservative.Add(1)
		} else {
			e.stats.PlacementExact.Add(1)
		}
	}
	if run.parallel {
		e.parallelQueries.Add(1)
	}

	ctx := e.execCtx(env, sql)
	ctx.Workers = workers
	if run.correlated {
		ctx.Eval.PushOuter(env.outerRow)
	}
	rec := &sess.rec
	if rec.Sampling() && ctx.Analyze == nil {
		// Sampled statements run under an Analyze collector so the trace
		// can attribute time, rows and morsel claims to individual
		// operators and workers. Audit semantics are unchanged — Analyze
		// only disables the physically-neutral scan–audit fusion.
		ctx.Analyze = exec.NewAnalyze()
	}
	execSpan := rec.StartSpan("execute")
	execStart := time.Now()
	rows, err := exec.Run(n, ctx)
	execDur := time.Since(execStart)
	e.execSeconds.ObserveDuration(execDur)
	e.stats.RowsScanned.Add(ctx.Stats.RowsScanned.Load())
	if m := ctx.Stats.MorselsClaimed.Load(); m > 0 {
		e.morselsDispatched.Add(m)
	}
	skipFilter := ctx.Stats.ChunksSkippedFilter.Load()
	skipAudit := ctx.Stats.ChunksSkippedAudit.Load()
	if scanned := ctx.Stats.ChunksScanned.Load(); scanned+skipFilter+skipAudit > 0 {
		e.chunksScanned.Add(scanned)
		if skipFilter > 0 {
			e.chunksSkipped.With("filter").Add(skipFilter)
		}
		if skipAudit > 0 {
			e.chunksSkipped.With("audit").Add(skipAudit)
		}
		if execSpan >= 0 {
			// The pruning decisions happen inside the scan kernels; the
			// span records their outcome (counts, not time) under the
			// execute span so traces show what skipping did.
			skipSpan := rec.AddSpan(execSpan, "storage.skip", execStart, 0)
			rec.SetAttrInt(skipSpan, "chunks_scanned", scanned)
			rec.SetAttrInt(skipSpan, "chunks_skipped_filter", skipFilter)
			rec.SetAttrInt(skipSpan, "chunks_skipped_audit", skipAudit)
		}
	}
	if err != nil {
		rec.EndSpan(execSpan)
		rec.AddPhase(trace.PhaseExec, execDur)
		return nil, err
	}
	if execSpan >= 0 && ctx.Analyze != nil {
		addOperatorSpans(rec, execSpan, n, ctx.Analyze, execStart)
	}
	rec.EndSpan(execSpan)
	rec.AddPhase(trace.PhaseExec, execDur)

	res := &Result{Rows: rows, Accessed: acc}
	for _, c := range n.Schema() {
		res.Columns = append(res.Columns, c.Name)
		res.Kinds = append(res.Kinds, c.Kind)
	}

	// Fire ON ACCESS triggers as their own system transactions after
	// the query completes (§II).
	var audited int64
	if acc != nil {
		auditStart := time.Now()
		e.mu.RLock()
		onAccess := e.onAccess
		e.mu.RUnlock()
		for _, ae := range targets {
			if acc.Len(ae.Meta.Name) == 0 {
				continue
			}
			recorded := int64(acc.Len(ae.Meta.Name))
			audited += recorded
			e.stats.RowsAudited.Add(recorded)
			e.rowsAuditedByTable.With(strings.ToLower(ae.Meta.SensitiveTable)).Add(recorded)
			if err := e.fireAccessTriggers(ae, acc, sql, env); err != nil {
				return nil, fmt.Errorf("SELECT trigger action failed: %w", err)
			}
			if onAccess != nil {
				onAccess(AccessEvent{
					Expression: ae.Meta.Name,
					User:       sess.User(),
					SQL:        sql,
					IDs:        acc.IDs(ae.Meta.Name),
				})
			}
		}
		rec.AddPhase(trace.PhaseAudit, time.Since(auditStart))
	}

	elapsed := time.Since(start)
	e.queryLatency.ObserveDuration(elapsed)
	if thr := e.slowQueryNanos.Load(); thr > 0 && int64(elapsed) >= thr {
		placement := "uninstrumented"
		if acc != nil {
			placement = "exact"
			if run.conservative {
				placement = "conservative"
			}
		}
		e.Logger().Warn("slow query",
			"qid", rec.QID(),
			"sql", sql,
			"user", sess.User(),
			"latency", elapsed,
			"rows_scanned", ctx.Stats.RowsScanned.Load(),
			"rows_audited", audited,
			"placement", placement,
		)
	}
	return res, nil
}

func (e *Engine) runIf(s *ast.If, sql string, env *actionEnv) (*Result, error) {
	schema := env.outerSchema
	if schema == nil {
		schema = plan.Schema{}
	}
	cond, err := plan.BuildScalar(e.planEnv(env), schema, s.Cond)
	if err != nil {
		return nil, err
	}
	ctx := e.execCtx(env, sql)
	v, err := cond.Eval(ctx.Eval, env.outerRow)
	if err != nil {
		return nil, err
	}
	if value.TriFromValue(v) != value.True {
		return &Result{}, nil
	}
	var last *Result
	for _, t := range s.Then {
		r, err := e.execStmt(t, sql, env)
		if err != nil {
			return nil, err
		}
		last = r
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

func (e *Engine) runNotify(s *ast.Notify, env *actionEnv) (*Result, error) {
	schema := env.outerSchema
	if schema == nil {
		schema = plan.Schema{}
	}
	msg, err := plan.BuildScalar(e.planEnv(env), schema, s.Message)
	if err != nil {
		return nil, err
	}
	ctx := e.execCtx(env, "")
	v, err := msg.Eval(ctx.Eval, env.outerRow)
	if err != nil {
		return nil, err
	}
	e.stats.Notifications.Add(1)
	e.mu.RLock()
	fn := e.notify
	e.mu.RUnlock()
	if fn != nil {
		fn(v.String())
	}
	return &Result{}, nil
}

// runExplain handles the EXPLAIN statement: it plans (and, when
// auditing is active, instruments) the query without executing it and
// returns the plan tree one line per row. EXPLAIN ANALYZE additionally
// executes the plan — see runExplainAnalyze.
func (e *Engine) runExplain(s *ast.Explain, sql string, env *actionEnv) (*Result, error) {
	if s.Analyze {
		return e.runExplainAnalyze(s, sql, env)
	}
	n, err := plan.Build(e.planEnv(env), s.Query)
	if err != nil {
		return nil, err
	}
	n = opt.Optimize(n)
	sess := e.sessionOf(env)
	for _, ae := range e.auditTargets(sess.AuditAll()) {
		n = core.Instrument(n, ae, &core.Probe{Expr: ae, Acc: core.NewAccessed()}, sess.Heuristic())
	}
	if workers := e.workersFor(sess); workers >= 2 {
		n = opt.Parallelize(n, e.tableEstimate, workers, int(e.parallelMinRows.Load()))
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(n), "\n"), "\n") {
		res.Rows = append(res.Rows, value.Row{value.NewString(line)})
	}
	return res, nil
}

// Explain returns the (optionally instrumented) plan for a query as an
// indented tree.
func (e *Engine) Explain(sql string, instrument bool) (string, error) {
	n, _, err := e.BuildQueryPlan(sql, instrument)
	if err != nil {
		return "", err
	}
	return plan.Explain(n), nil
}
