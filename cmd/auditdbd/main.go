// Command auditdbd serves an audited database over TCP. Each
// connection is an independent session: the user it sets with the
// protocol's "set user" op is the identity SELECT triggers record for
// that connection's queries, so concurrent users are attributed
// correctly — the paper's multi-user auditing setting.
//
// The protocol is line-delimited JSON (see internal/wire); the Go
// client lives in internal/client. Example:
//
//	auditdbd -addr 127.0.0.1:5433 -demo
//	printf '%s\n' \
//	    '{"op":"set","key":"user","value":"dr_mallory"}' \
//	    '{"op":"query","sql":"SELECT * FROM Patients WHERE Name = '\''Alice'\''"}' \
//	    '{"op":"query","sql":"SELECT * FROM Log"}' | nc 127.0.0.1 5433
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight statements
// finish and their responses are delivered before connections close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"auditdb"
	"auditdb/internal/engine"
	"auditdb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:5433", "TCP listen address")
		maxConns     = flag.Int("max-conns", 256, "maximum concurrent connections (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-statement execution limit (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 10*time.Minute, "close connections idle this long (0 = none)")
		gracePeriod  = flag.Duration("grace", 15*time.Second, "shutdown drain deadline")
		demo         = flag.Bool("demo", false, "preload the paper's healthcare example")
		initScript   = flag.String("init", "", "SQL script to execute before serving")
	)
	flag.Parse()

	eng := engine.New()
	if *demo {
		if _, err := eng.ExecScript(auditdb.HealthcareDemo); err != nil {
			log.Fatalf("auditdbd: loading demo: %v", err)
		}
		log.Printf("loaded healthcare demo (audit expression Audit_Alice, trigger Log_Alice)")
	}
	if *initScript != "" {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("auditdbd: %v", err)
		}
		if _, err := eng.ExecScript(string(script)); err != nil {
			log.Fatalf("auditdbd: init script %s: %v", *initScript, err)
		}
		log.Printf("executed init script %s", *initScript)
	}

	srv := server.New(eng, server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		QueryTimeout: *queryTimeout,
		IdleTimeout:  *idleTimeout,
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("auditdbd listening on %s (max-conns=%d, query-timeout=%s)", srv.Addr(), *maxConns, *queryTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("received %s; draining connections (deadline %s)", sig, *gracePeriod)
	ctx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	for k, v := range srv.Stats() {
		fmt.Printf("  %-22s %d\n", k, v)
	}
	log.Printf("auditdbd stopped cleanly")
}
