package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"auditdb/internal/client"
	"auditdb/internal/pgwire/pgtest"
)

// TestSIGTERMDrainsBothProtocols runs the real daemon with both front
// doors enabled, parks an in-flight query on each protocol, sends
// SIGTERM, and requires both responses to be delivered before the
// process exits cleanly: graceful drain is a transport property, not a
// per-protocol one.
func TestSIGTERMDrainsBothProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test builds the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "auditdbd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building auditdbd: %v", err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-pg-addr", "127.0.0.1:0",
		"-grace", "15s", "-query-timeout", "0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs one "listening on ADDR" line per front door; the
	// pg one is prefixed "pg listening on".
	type addrs struct{ json, pg string }
	addrCh := make(chan addrs, 1)
	go func() {
		var got addrs
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "pg listening on "); i >= 0 {
				got.pg = strings.Fields(line[i+len("pg listening on "):])[0]
			} else if i := strings.Index(line, "listening on "); i >= 0 {
				got.json = strings.Fields(line[i+len("listening on "):])[0]
			}
			if got.json != "" && got.pg != "" {
				addrCh <- got
				return
			}
		}
	}()
	var a addrs
	select {
	case a = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not report both listen addresses")
	}

	seed, err := client.Dial(a.json, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	var ins strings.Builder
	ins.WriteString("CREATE TABLE N (X INT);")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&ins, "INSERT INTO N VALUES (%d);", i)
	}
	if _, err := seed.Exec(ins.String()); err != nil {
		t.Fatal(err)
	}

	const heavy = "SELECT COUNT(*) FROM N a, N b, N c WHERE a.X = b.X AND b.X = c.X"

	jc, err := client.Dial(a.json)
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	type jsonOut struct {
		res *client.Result
		err error
	}
	jsonDone := make(chan jsonOut, 1)
	go func() {
		res, err := jc.Query(heavy)
		jsonDone <- jsonOut{res, err}
	}()

	pc, _, err := pgtest.Dial(a.pg, "drain_probe")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pc.SetDeadline(time.Now().Add(30 * time.Second))
	type pgOut struct {
		count string
		err   error
	}
	pgDone := make(chan pgOut, 1)
	go func() {
		if err := pc.Query(heavy); err != nil {
			pgDone <- pgOut{err: err}
			return
		}
		msgs, _, err := pc.ReadUntilReady()
		if err != nil {
			pgDone <- pgOut{err: err}
			return
		}
		for _, m := range msgs {
			if m.Type == 'D' {
				row, err := pgtest.DataRow(m.Body)
				if err != nil {
					pgDone <- pgOut{err: err}
					return
				}
				pgDone <- pgOut{count: string(row[0])}
				return
			}
			if m.Type == 'E' {
				pgDone <- pgOut{err: fmt.Errorf("server error: %v", pgtest.ErrorFields(m.Body))}
				return
			}
		}
		pgDone <- pgOut{err: fmt.Errorf("no DataRow in %v", msgs)}
	}()

	time.Sleep(50 * time.Millisecond) // let both queries reach the server
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	jo := <-jsonDone
	if jo.err != nil {
		t.Fatalf("in-flight line-JSON query was not drained: %v", jo.err)
	}
	if len(jo.res.Rows) != 1 || jo.res.Rows[0][0].(int64) != 200 {
		t.Fatalf("json drained result = %v", jo.res.Rows)
	}
	po := <-pgDone
	if po.err != nil {
		t.Fatalf("in-flight pgwire query was not drained: %v", po.err)
	}
	if po.count != "200" {
		t.Fatalf("pg drained result = %q, want 200", po.count)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
