package engine

import (
	"testing"

	"auditdb/internal/value"
)

// newHealthDB builds the paper's running-example schema (§II).
func newHealthDB(t *testing.T) *Engine {
	t.Helper()
	e := New()
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'),
			(2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'),
			(4, 'Dave', 29, '98052'),
			(5, 'Erin', 62, '10001');
		INSERT INTO Disease VALUES
			(1, 'cancer'),
			(2, 'flu'),
			(3, 'flu'),
			(4, 'diabetes'),
			(5, 'cancer');
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return r
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func TestBasicSelect(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Name FROM Patients WHERE Age > 30 ORDER BY Name")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	want := []string{"Alice", "Carol", "Erin"}
	for i, w := range want {
		if r.Rows[i][0].Str() != w {
			t.Errorf("row %d = %v, want %s", i, r.Rows[i], w)
		}
	}
	if r.Columns[0] != "Name" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT * FROM Patients WHERE PatientID = 1")
	if len(r.Rows) != 1 || len(r.Rows[0]) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].Str() != "Alice" {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestJoin(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT P.Name, D.Disease FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'
		ORDER BY P.Name`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "Bob" || r.Rows[1][0].Str() != "Carol" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestExplicitJoinSyntax(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT P.Name FROM Patients P JOIN Disease D ON P.PatientID = D.PatientID
		WHERE D.Disease = 'cancer' ORDER BY P.Name`)
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "Alice" || r.Rows[1][0].Str() != "Erin" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "INSERT INTO Patients VALUES (6, 'Frank', 50, '10001')")
	r := mustQuery(t, e, `
		SELECT P.Name, D.Disease FROM Patients P LEFT JOIN Disease D ON P.PatientID = D.PatientID
		ORDER BY P.Name`)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %v", r.Rows)
	}
	last := r.Rows[5]
	if last[0].Str() != "Frank" || !last[1].IsNull() {
		t.Errorf("unmatched row = %v", last)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT Disease, COUNT(*) AS n FROM Disease
		GROUP BY Disease HAVING COUNT(*) >= 2 ORDER BY Disease`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "cancer" || r.Rows[0][1].Int() != 2 {
		t.Errorf("rows = %v", r.Rows)
	}
	if r.Rows[1][0].Str() != "flu" || r.Rows[1][1].Int() != 2 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT COUNT(*), MIN(Age), MAX(Age), AVG(Age), SUM(Age) FROM Patients")
	row := r.Rows[0]
	if row[0].Int() != 5 || row[1].Int() != 21 || row[2].Int() != 62 {
		t.Errorf("aggregates = %v", row)
	}
	if row[3].Float() != 38.6 || row[4].Int() != 193 {
		t.Errorf("avg/sum = %v", row)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT COUNT(*), SUM(Age) FROM Patients WHERE Age > 1000")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", r.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT COUNT(DISTINCT Disease) FROM Disease")
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("count distinct = %v", r.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT DISTINCT Zip FROM Patients ORDER BY Zip")
	if len(r.Rows) != 3 {
		t.Errorf("distinct rows = %v", r.Rows)
	}
}

func TestOrderByLimit(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Name, Age FROM Patients ORDER BY Age LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "Bob" || r.Rows[1][0].Str() != "Dave" {
		t.Errorf("top-2 youngest = %v", r.Rows)
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	e := newHealthDB(t)
	// ORDER BY a column not in the select list.
	r := mustQuery(t, e, "SELECT Name FROM Patients ORDER BY Age DESC LIMIT 1")
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 || r.Rows[0][0].Str() != "Erin" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestExistsSubquery(t *testing.T) {
	e := newHealthDB(t)
	// Example 1.2's second query: infer Alice has cancer via EXISTS.
	r := mustQuery(t, e, `
		SELECT 1 FROM Patients WHERE exists
		(SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer')`)
	if len(r.Rows) != 5 {
		t.Errorf("exists query rows = %d, want 5", len(r.Rows))
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT Name FROM Patients P
		WHERE EXISTS (SELECT 1 FROM Disease D WHERE D.PatientID = P.PatientID AND D.Disease = 'cancer')
		ORDER BY Name`)
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "Alice" || r.Rows[1][0].Str() != "Erin" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT Name FROM Patients
		WHERE PatientID IN (SELECT PatientID FROM Disease WHERE Disease = 'flu')
		ORDER BY Name`)
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "Bob" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Name FROM Patients WHERE Age > (SELECT AVG(Age) FROM Patients) ORDER BY Name")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "Carol" || r.Rows[1][0].Str() != "Erin" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT Z.Zip, Z.n FROM
		(SELECT Zip, COUNT(*) AS n FROM Patients GROUP BY Zip) AS Z
		WHERE Z.n >= 2 ORDER BY Z.Zip`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "48109" || r.Rows[0][1].Int() != 2 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newHealthDB(t)
	r := mustExec(t, e, "UPDATE Patients SET Age = Age + 1 WHERE Zip = '48109'")
	if r.RowsAffected != 2 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
	q := mustQuery(t, e, "SELECT Age FROM Patients WHERE Name = 'Alice'")
	if q.Rows[0][0].Int() != 35 {
		t.Errorf("age = %v", q.Rows[0])
	}
	r = mustExec(t, e, "DELETE FROM Patients WHERE Name = 'Erin'")
	if r.RowsAffected != 1 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
	q = mustQuery(t, e, "SELECT COUNT(*) FROM Patients")
	if q.Rows[0][0].Int() != 4 {
		t.Errorf("count = %v", q.Rows[0])
	}
}

func TestInsertColumnList(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "INSERT INTO Patients (PatientID, Name) VALUES (10, 'Zed')")
	r := mustQuery(t, e, "SELECT Age, Zip FROM Patients WHERE PatientID = 10")
	if !r.Rows[0][0].IsNull() || !r.Rows[0][1].IsNull() {
		t.Errorf("unlisted columns should be NULL: %v", r.Rows[0])
	}
}

func TestInsertSelect(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE TABLE Names (N VARCHAR(30))")
	r := mustExec(t, e, "INSERT INTO Names SELECT Name FROM Patients WHERE Age < 30")
	if r.RowsAffected != 2 {
		t.Errorf("affected = %d", r.RowsAffected)
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.Exec("INSERT INTO Patients VALUES (1, 'Dup', 1, 'x')"); err == nil {
		t.Fatal("duplicate pk should fail")
	}
	// Statement atomicity: a multi-row insert that fails midway must
	// leave nothing behind.
	if _, err := e.Exec("INSERT INTO Patients VALUES (20, 'Ok', 1, 'x'), (1, 'Dup', 1, 'x')"); err == nil {
		t.Fatal("expected failure")
	}
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Patients WHERE PatientID = 20")
	if r.Rows[0][0].Int() != 0 {
		t.Error("failed statement leaked a row")
	}
}

func TestDMLTriggerNewOld(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE TABLE AgeLog (PatientID INT, OldAge INT, NewAge INT)")
	mustExec(t, e, `CREATE TRIGGER track_age ON Patients AFTER UPDATE AS
		INSERT INTO AgeLog VALUES (NEW.PatientID, OLD.Age, NEW.Age)`)
	mustExec(t, e, "UPDATE Patients SET Age = Age + 10 WHERE Name = 'Bob'")
	r := mustQuery(t, e, "SELECT PatientID, OldAge, NewAge FROM AgeLog")
	if len(r.Rows) != 1 {
		t.Fatalf("log rows = %v", r.Rows)
	}
	row := r.Rows[0]
	if row[0].Int() != 2 || row[1].Int() != 21 || row[2].Int() != 31 {
		t.Errorf("log row = %v", row)
	}
}

func TestInsertTriggerCascadeDepthLimit(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE T (x INT)")
	mustExec(t, e, "CREATE TRIGGER loop ON T AFTER INSERT AS INSERT INTO T VALUES (NEW.x + 1)")
	if _, err := e.Exec("INSERT INTO T VALUES (1)"); err == nil {
		t.Fatal("self-triggering insert should hit the cascade depth limit")
	}
}

func TestNotifyStatement(t *testing.T) {
	e := New()
	var got []string
	e.OnNotify(func(m string) { got = append(got, m) })
	mustExec(t, e, "CREATE TABLE T (x INT)")
	mustExec(t, e, "CREATE TRIGGER n ON T AFTER INSERT AS NOTIFY 'row arrived'")
	mustExec(t, e, "INSERT INTO T VALUES (1)")
	if len(got) != 1 || got[0] != "row arrived" {
		t.Errorf("notifications = %v", got)
	}
}

func TestCaseExpression(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `
		SELECT Name, CASE WHEN Age >= 40 THEN 'senior' ELSE 'junior' END AS band
		FROM Patients WHERE Name = 'Carol'`)
	if r.Rows[0][1].Str() != "senior" {
		t.Errorf("case = %v", r.Rows[0])
	}
}

func TestSessionFunctions(t *testing.T) {
	e := newHealthDB(t)
	e.SetUser("dr_mallory")
	r := mustQuery(t, e, "SELECT userid(), sqltext() FROM Patients WHERE PatientID = 1")
	if r.Rows[0][0].Str() != "dr_mallory" {
		t.Errorf("userid = %v", r.Rows[0][0])
	}
	if r.Rows[0][1].Str() == "" {
		t.Error("sqltext empty")
	}
}

func TestNullThreeValuedLogic(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE T (a INT, b INT)")
	mustExec(t, e, "INSERT INTO T VALUES (1, NULL), (2, 5), (NULL, NULL)")
	r := mustQuery(t, e, "SELECT COUNT(*) FROM T WHERE b > 1")
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("3VL filter = %v", r.Rows[0])
	}
	r = mustQuery(t, e, "SELECT COUNT(*) FROM T WHERE a IS NULL")
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("is null = %v", r.Rows[0])
	}
	r = mustQuery(t, e, "SELECT COUNT(a), COUNT(*) FROM T")
	if r.Rows[0][0].Int() != 2 || r.Rows[0][1].Int() != 3 {
		t.Errorf("count null handling = %v", r.Rows[0])
	}
}

func TestStatsCounters(t *testing.T) {
	e := newHealthDB(t)
	before := e.StatsSnapshot()["queries"]
	mustQuery(t, e, "SELECT 1 FROM Patients")
	if e.StatsSnapshot()["queries"] != before+1 {
		t.Error("query counter did not advance")
	}
}

func TestValueOrderingInResults(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Age FROM Patients ORDER BY Age DESC")
	prev := int64(1 << 60)
	for _, row := range r.Rows {
		if row[0].Int() > prev {
			t.Fatalf("not sorted desc: %v", r.Rows)
		}
		prev = row[0].Int()
	}
	_ = value.Null
}
