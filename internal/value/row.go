package value

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Row is a tuple of values. Operators share backing arrays only when
// safe; mutating code must Clone first.
type Row []Value

// Clone returns a deep-enough copy of r (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by o.
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// String renders the row for debugging: (v1, v2, ...).
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// EncodeKey appends a canonical byte encoding of v to dst. Values that
// compare equal under Compare encode identically (ints and integral
// floats normalize to the same bytes), so the encoding is safe for hash
// join and group-by keys.
func EncodeKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 0x00)
	case KindBool, KindInt, KindDate:
		return appendNumeric(dst, float64(v.I), v.I, true)
	case KindFloat:
		if f := v.F; f == math.Trunc(f) && f >= -9.2e18 && f <= 9.2e18 {
			return appendNumeric(dst, f, int64(f), true)
		}
		return appendNumeric(dst, v.F, 0, false)
	case KindString:
		dst = append(dst, 0x02)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(v.S)))
		dst = append(dst, n[:]...)
		return append(dst, v.S...)
	default:
		return append(dst, 0xff)
	}
}

func appendNumeric(dst []byte, f float64, i int64, integral bool) []byte {
	dst = append(dst, 0x01)
	var n [8]byte
	if integral {
		binary.LittleEndian.PutUint64(n[:], uint64(i))
	} else {
		binary.LittleEndian.PutUint64(n[:], math.Float64bits(f))
		// Non-integral floats can never equal an int64 encoding above
		// because the tag byte below distinguishes them.
		dst = append(dst, n[:]...)
		return append(dst, 0x02)
	}
	dst = append(dst, n[:]...)
	return append(dst, 0x01)
}

// EncodeRowKey encodes the projection of row at the given column
// ordinals into a string usable as a map key.
func EncodeRowKey(row Row, cols []int) string {
	buf := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		buf = EncodeKey(buf, row[c])
	}
	return string(buf)
}

// KeyOf encodes a single value as a map key string.
func KeyOf(v Value) string {
	return string(EncodeKey(make([]byte, 0, 17), v))
}

// HashRow returns an order-sensitive 64-bit hash of the row, used to
// digest query results.
func HashRow(r Row) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 16*len(r))
	for _, v := range r {
		buf = EncodeKey(buf, v)
	}
	_, _ = h.Write(buf)
	return h.Sum64()
}

// FormatFloat renders a float the way result tables print it.
func FormatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 2, 64)
}
