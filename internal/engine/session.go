package engine

import (
	"fmt"
	"time"

	"auditdb/internal/ast"
	"auditdb/internal/core"
	"auditdb/internal/lexer"
	"auditdb/internal/parser"
	"auditdb/internal/trace"
	"auditdb/internal/value"
)

// Session is one user's execution context against a shared Engine: it
// carries the identity reported by USERID(), the audit-all flag, the
// audit-operator placement heuristic, and the session's open SQL-level
// transaction. Concurrent sessions over one engine are independent —
// trigger actions fired by a session's queries resolve USERID() and
// sqltext() from that session, never from another one (the paper's §II
// multi-user attribution requirement).
//
// A Session is cheap; servers create one per connection. Like
// database/sql.Conn, a single Session must not be used from multiple
// goroutines at once — different Sessions are safe concurrently.
type Session struct {
	e *Engine

	mu        chan struct{} // 1-token semaphore guarding the fields below
	user      string
	auditAll  bool
	heuristic core.Heuristic
	// workers is this session's SET WORKERS override for parallel
	// query execution; 0 means inherit the engine default.
	workers   int
	planCache map[planCacheKey]*cachedPlan
	// canonCache is the session's L1 in front of the engine-wide shared
	// plan cache, keyed by canonical (auto-parameterized) text.
	canonCache map[string]*canonPlan
	// paramScratch is the reusable per-execution slot-binding vector.
	paramScratch []value.Value
	txn          *Txn // open SQL-level BEGIN ... COMMIT/ROLLBACK transaction
	closed       bool

	// norm is the session's normalization scratch. It is used only from
	// the session's own statement path (single goroutine by contract),
	// never from trigger cascades, which run at depth > 0.
	norm lexer.Norm

	// triageOff is the SET triage = off flag: it gates this session's
	// firings out of the triage queue without touching the engine-wide
	// service. Default off (triage on) — the service itself is disabled
	// unless ConfigureTriage armed workers.
	triageOff bool

	// skipOff is the SET skipping = off flag: this session's scans
	// read every chunk instead of pruning against zone maps and
	// sensitive-ID sketches. Default off (skipping on) — the escape
	// hatch exists to measure and to rule skipping out when debugging.
	skipOff bool

	// traceOn is the SET trace = on flag; pendProto/pendRead stage the
	// front end's transport-read note for the next statement. All three
	// are guarded by mu because protocol front ends may note the read
	// from a connection goroutine before handing off to the statement
	// path.
	traceOn   bool
	pendProto string
	pendRead  time.Duration

	// rec is the statement trace recorder; like norm, it and the
	// pend* staging fields below are touched only from the session's
	// own statement path. They stage work measured before the recorder
	// begins (normalize, parse, plan-cache adoption) for traceBegin to
	// consume.
	rec           trace.Rec
	pendNorm      time.Duration
	pendParse     time.Duration
	pendPlanSrc   string
	pendPlanNanos int64
}

func newSession(e *Engine, user string, auditAll bool, h core.Heuristic) *Session {
	s := &Session{e: e, mu: make(chan struct{}, 1), user: user, auditAll: auditAll, heuristic: h}
	e.stats.Sessions.Add(1)
	return s
}

// NewSession creates an independent session seeded from the engine's
// current default-session settings (user, audit-all, placement).
func (e *Engine) NewSession() *Session {
	d := e.defSess
	d.lock()
	user, auditAll, h, workers, triageOff, skipOff := d.user, d.auditAll, d.heuristic, d.workers, d.triageOff, d.skipOff
	d.unlock()
	s := newSession(e, user, auditAll, h)
	s.workers = workers
	s.triageOff = triageOff
	s.skipOff = skipOff
	return s
}

// DefaultSession returns the engine's built-in session, the one
// Engine.Exec/Query and the embeddable auditdb.DB API run under.
func (e *Engine) DefaultSession() *Session { return e.defSess }

func (s *Session) lock()   { s.mu <- struct{}{} }
func (s *Session) unlock() { <-s.mu }

// Engine returns the engine this session executes against.
func (s *Session) Engine() *Engine { return s.e }

// SetUser sets the identity reported by USERID() for this session.
func (s *Session) SetUser(u string) {
	s.lock()
	s.user = u
	s.unlock()
}

// User returns the session's current identity.
func (s *Session) User() string {
	s.lock()
	defer s.unlock()
	return s.user
}

// SetAuditAll makes every SELECT this session runs instrumented for
// every compiled audit expression, even those without ON ACCESS
// triggers.
func (s *Session) SetAuditAll(on bool) {
	s.lock()
	s.auditAll = on
	s.unlock()
}

// AuditAll reports whether audit-all mode is on for this session.
func (s *Session) AuditAll() bool {
	s.lock()
	defer s.unlock()
	return s.auditAll
}

// SetHeuristic selects the audit-operator placement algorithm for this
// session's queries.
func (s *Session) SetHeuristic(h core.Heuristic) {
	s.lock()
	s.heuristic = h
	s.unlock()
}

// Heuristic returns the session's active placement algorithm.
func (s *Session) Heuristic() core.Heuristic {
	s.lock()
	defer s.unlock()
	return s.heuristic
}

// SetWorkers sets this session's worker budget for parallel query
// execution (SET WORKERS). 1 forces serial execution; 0 resets to the
// engine default; negatives clamp to serial.
func (s *Session) SetWorkers(n int) {
	if n < 0 {
		n = 1
	}
	s.lock()
	s.workers = n
	s.unlock()
}

// Workers returns the session's worker budget; 0 means the engine
// default applies.
func (s *Session) Workers() int {
	s.lock()
	defer s.unlock()
	return s.workers
}

// SetTrace forces full span capture for every statement this session
// runs (SET trace = on/off), independent of the engine's head-sampling
// rate.
func (s *Session) SetTrace(on bool) {
	s.lock()
	s.traceOn = on
	s.unlock()
}

// TraceOn reports whether per-session forced tracing is enabled.
func (s *Session) TraceOn() bool {
	s.lock()
	defer s.unlock()
	return s.traceOn
}

// SetTriage toggles triage enqueueing for this session's trigger
// firings (SET triage = on|off). It has no effect unless the engine's
// triage service is enabled.
func (s *Session) SetTriage(on bool) {
	s.lock()
	s.triageOff = !on
	s.unlock()
}

// TriageOn reports whether this session's firings enter the triage
// queue (when the engine's service is enabled).
func (s *Session) TriageOn() bool {
	s.lock()
	defer s.unlock()
	return !s.triageOff
}

// SetSkipping toggles chunk-level data skipping for this session's
// scans (SET skipping = on|off). Results and audit trails are
// byte-identical either way; off forces full scans.
func (s *Session) SetSkipping(on bool) {
	s.lock()
	s.skipOff = !on
	s.unlock()
}

// SkippingOn reports whether this session's scans may skip chunks.
func (s *Session) SkippingOn() bool {
	s.lock()
	defer s.unlock()
	return !s.skipOff
}

// NoteTransport records the protocol name and wire read/decode time of
// the request about to execute; the next statement's trace charges it
// to the transport phase. Front ends call it just before handing the
// statement to the engine.
func (s *Session) NoteTransport(proto string, d time.Duration) {
	s.lock()
	s.pendProto, s.pendRead = proto, d
	s.unlock()
}

// traceState atomically reads the forced-tracing flag and consumes the
// staged transport note.
func (s *Session) traceState() (on bool, proto string, read time.Duration) {
	s.lock()
	on, proto, read = s.traceOn, s.pendProto, s.pendRead
	s.pendProto, s.pendRead = "", 0
	s.unlock()
	return on, proto, read
}

// rootEnv builds the top-level action environment for a statement this
// session issues.
func (s *Session) rootEnv() *actionEnv { return &actionEnv{sess: s} }

func (s *Session) checkOpen() error {
	s.lock()
	defer s.unlock()
	if s.closed {
		return fmt.Errorf("session is closed")
	}
	return nil
}

// openTxn returns the session's open SQL-level transaction, if any.
func (s *Session) openTxn() *Txn {
	s.lock()
	defer s.unlock()
	return s.txn
}

// InTxn reports whether the session holds an open SQL-level
// transaction (BEGIN without a matching COMMIT/ROLLBACK yet). Protocol
// front ends use it for transaction-status reporting, e.g. the
// PostgreSQL ReadyForQuery status byte.
func (s *Session) InTxn() bool { return s.openTxn() != nil }

// Exec parses and executes a single statement under this session.
//
// Plain SELECTs skip parsing on the warm path: the text is normalized
// (literals auto-parameterized) in a single zero-allocation token scan
// and executed through the two-level plan cache; only statements the
// cache has never seen — or declines — are parsed.
func (s *Session) Exec(sql string) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if res, ok, err := s.tryNormSelect(sql, nil); ok {
		return res, err
	}
	parseStart := time.Now()
	stmt, err := parser.Parse(sql)
	s.pendParse = time.Since(parseStart)
	s.e.parseSeconds.ObserveDuration(s.pendParse)
	if err != nil {
		return nil, err
	}
	return s.e.execStmt(stmt, sql, s.rootEnv())
}

// ExecScript executes a semicolon-separated script under this session,
// returning the last statement's result.
func (s *Session) ExecScript(sql string) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	parseStart := time.Now()
	stmts, err := parser.ParseScript(sql)
	s.pendParse = time.Since(parseStart)
	s.e.parseSeconds.ObserveDuration(s.pendParse)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		r, err := s.e.execStmt(st, sql, s.rootEnv())
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// ExecMulti parses a semicolon-separated script and executes its
// statements one at a time, invoking fn after each with the statement
// and its result or execution error. fn returns false to stop early —
// protocol front ends use this to stream one response per statement
// and to halt at the first error, the way PostgreSQL's simple query
// protocol does. Like ExecScript, the full script text is what
// sqltext() reports inside trigger actions. A parse error is returned
// directly and fn is never called.
func (s *Session) ExecMulti(sql string, fn func(stmt ast.Stmt, res *Result, err error) bool) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	parseStart := time.Now()
	stmts, err := parser.ParseScript(sql)
	s.pendParse = time.Since(parseStart)
	s.e.parseSeconds.ObserveDuration(s.pendParse)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		r, err := s.e.execStmt(st, sql, s.rootEnv())
		if !fn(st, r, err) {
			return nil
		}
	}
	return nil
}

// Query parses and executes a SELECT under this session. Like Exec,
// the warm path normalizes instead of parsing and serves the plan from
// the two-level cache.
func (s *Session) Query(sql string) (*Result, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if res, ok, err := s.tryNormSelect(sql, nil); ok {
		return res, err
	}
	parseStart := time.Now()
	sel, err := parser.ParseQuery(sql)
	s.pendParse = time.Since(parseStart)
	s.e.parseSeconds.ObserveDuration(s.pendParse)
	if err != nil {
		return nil, err
	}
	if s.e.traceBegin(s) {
		res, err := s.e.runSelect(sel, sql, s.rootEnv())
		s.e.traceFinish(s, sql, res, err)
		return res, err
	}
	return s.e.runSelect(sel, sql, s.rootEnv())
}

// Prepare parses a statement with ? placeholders for repeated
// execution under this session.
func (s *Session) Prepare(sql string) (*Prepared, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	return prepare(s, sql)
}

// Begin opens a programmatic transaction attributed to this session,
// blocking until other writers finish.
func (s *Session) Begin() *Txn {
	s.e.dmlMu.Lock()
	return &Txn{e: s.e, sess: s}
}

// Close ends the session. An open SQL-level transaction is rolled
// back (releasing the engine's writer lock — vital when a network
// connection drops mid-transaction). Further statements fail.
func (s *Session) Close() error {
	s.lock()
	if s.closed {
		s.unlock()
		return nil
	}
	s.closed = true
	txn := s.txn
	s.txn = nil
	s.unlock()
	if txn != nil {
		return txn.Rollback()
	}
	return nil
}

// sessionOf resolves the session an action environment executes under;
// environments created outside any explicit session (engine-internal
// re-planning, restore paths) run under the default session.
func (e *Engine) sessionOf(env *actionEnv) *Session {
	if env != nil && env.sess != nil {
		return env.sess
	}
	return e.defSess
}
