package engine

import (
	"fmt"
	"time"

	"auditdb/internal/exec"
	"auditdb/internal/plan"
	"auditdb/internal/trace"
	"auditdb/internal/value"
)

// DefaultTraceRingCap bounds how many finished traces the engine
// retains for SHOW TRACES / SHOW TRACE FOR and the /traces endpoint.
const DefaultTraceRingCap = 128

// SetTraceSampling enables head sampling: every nth top-level
// statement gets full span capture (1 = every statement, 0 disables).
// Tail-based capture of slow/error statements and per-session
// SET trace = on work regardless of this knob.
func (e *Engine) SetTraceSampling(n int) {
	if n < 0 {
		n = 0
	}
	e.traceEvery.Store(int64(n))
}

// TraceRing exposes the bounded buffer of retained traces; servers
// mount its Handler at /traces on the metrics listener.
func (e *Engine) TraceRing() *trace.Ring { return e.traceRing }

// traceBegin starts the session's statement recorder for one top-level
// statement, assigning the query ID and deciding span capture. It
// consumes the work the front end and fast path staged before the
// recorder existed: the transport read note, normalize/parse timing,
// and the plan-cache adoption outcome. Returns false when a statement
// is already being recorded (nested entry points — IF bodies, trigger
// cascades, the canonical-cache branch under execStmt — stay inside
// the enclosing statement's record). The unsampled path allocates
// nothing.
func (e *Engine) traceBegin(s *Session) bool {
	r := &s.rec
	if r.Active() {
		return false
	}
	qid := e.qidCtr.Add(1)
	on, proto, read := s.traceState()
	sampled := on
	if !sampled {
		if n := e.traceEvery.Load(); n > 0 && qid%uint64(n) == 0 {
			sampled = true
		}
	}
	r.Begin(qid, sampled)
	if proto != "" {
		r.AddPhase(trace.PhaseTransport, read)
		if id := r.AddSpan(r.Current(), "transport.read", r.Start(), read); id >= 0 {
			r.SetAttr(id, "protocol", proto)
		}
	}
	if d := s.pendNorm; d > 0 {
		s.pendNorm = 0
		r.AddPhase(trace.PhaseNormalize, d)
		r.AddSpan(r.Current(), "normalize", r.Start(), d)
	}
	if d := s.pendParse; d > 0 {
		s.pendParse = 0
		r.AddPhase(trace.PhaseParse, d)
		r.AddSpan(r.Current(), "parse", r.Start(), d)
	}
	if src := s.pendPlanSrc; src != "" {
		d := time.Duration(s.pendPlanNanos)
		s.pendPlanSrc, s.pendPlanNanos = "", 0
		r.AddPhase(trace.PhasePlan, d)
		if id := r.AddSpan(r.Current(), "plan", r.Start(), d); id >= 0 {
			r.SetAttr(id, "cache", src)
		}
	}
	return true
}

// traceFinish closes the statement the matching traceBegin opened,
// stamps the query ID into the result, and retains the trace when it
// was sampled — or, tail-based, when the statement was slow or errored.
// The not-retained path allocates nothing.
func (e *Engine) traceFinish(s *Session, sql string, res *Result, err error) {
	r := &s.rec
	if !r.Active() {
		return
	}
	if res != nil {
		res.QID = r.QID()
	}
	thr := e.slowQueryNanos.Load()
	slow := thr > 0 && int64(r.Elapsed()) >= thr
	sampled := r.Sampling()
	if !sampled && !slow && err == nil {
		r.Finish("", "", "", false)
		return
	}
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	t := r.Finish(s.User(), sql, errMsg, true)
	if sampled {
		e.tracesSampled.Inc()
	}
	if e.traceRing.Add(t) {
		e.traceRingEvictions.Inc()
	}
}

// flushUnitTraced is flushUnit with the statement's WAL phase clock
// and, when sampling, a wal.commit span covering submit through
// group-commit acknowledgement (fsync included under SyncAlways).
func (e *Engine) flushUnitTraced(s *Session, u *walUnit) error {
	if e.wal == nil || u == nil || len(u.ops) == 0 {
		return nil
	}
	n := len(u.ops)
	start := time.Now()
	err := e.flushUnit(u)
	d := time.Since(start)
	r := &s.rec
	r.AddPhase(trace.PhaseWAL, d)
	if id := r.AddSpan(r.Current(), "wal.commit", start, d); id >= 0 {
		r.SetAttrInt(id, "ops", int64(n))
	}
	return err
}

// addOperatorSpans synthesizes one span per plan operator from the
// Analyze collector, nested to mirror the plan tree, with one child
// span per parallel worker where fragments executed under an exchange.
// It runs on the statement goroutine after exec.Run returned — the
// exchange's Close is the happens-before edge for the workers' folded
// records, so no worker ever touches the Rec (the Probe.Fork/Merge
// discipline applied to tracing). Operator Start offsets are the exec
// phase start; Dur is the operator's observed cumulative wall clock.
func addOperatorSpans(r *trace.Rec, parent int, n plan.Node, az *exec.Analyze, execStart time.Time) {
	st := az.Stats(n)
	var dur time.Duration
	if st != nil {
		dur = st.Wall
	}
	id := r.AddSpan(parent, n.Label(), execStart, dur)
	if id < 0 {
		return
	}
	if st == nil {
		r.SetAttr(id, "executed", "never")
	} else {
		r.SetAttrInt(id, "rows", st.RowsOut)
		r.SetAttrInt(id, "batches", st.Batches)
		if st.Workers > 0 {
			r.SetAttrInt(id, "workers", st.Workers)
		}
		if st.Morsels > 0 {
			r.SetAttrInt(id, "morsels", st.Morsels)
		}
		if st.ChunksScanned+st.ChunksSkipped > 0 {
			r.SetAttrInt(id, "chunks_scanned", st.ChunksScanned)
			r.SetAttrInt(id, "chunks_skipped", st.ChunksSkipped)
		}
	}
	for _, ws := range az.WorkerRuns(n) {
		wid := r.AddSpan(id, "worker", execStart, ws.Wall)
		r.SetAttrInt(wid, "rows", ws.RowsOut)
		r.SetAttrInt(wid, "morsels", ws.Morsels)
	}
	for _, c := range n.Children() {
		addOperatorSpans(r, id, c, az, execStart)
	}
	plan.WalkNodeExprs(n, func(ex plan.Expr) {
		if sq, ok := ex.(*plan.Subquery); ok {
			addOperatorSpans(r, id, sq.Plan, az, execStart)
		}
	})
}

// runShowTraces serves SHOW TRACES: the retained traces, newest first.
func (e *Engine) runShowTraces() (*Result, error) {
	res := &Result{Columns: []string{"qid", "user", "elapsed_us", "sampled", "spans", "error", "sql"}}
	for _, t := range e.traceRing.Snapshot() {
		sampled := value.Value{Kind: value.KindBool}
		if t.Sampled {
			sampled.I = 1
		}
		res.Rows = append(res.Rows, value.Row{
			value.Value{Kind: value.KindInt, I: int64(t.QID)},
			value.NewString(t.User),
			value.Value{Kind: value.KindInt, I: t.Elapsed / 1000},
			sampled,
			value.Value{Kind: value.KindInt, I: int64(len(t.Spans))},
			value.NewString(t.Err),
			value.NewString(t.SQL),
		})
	}
	return res, nil
}

// runShowTrace serves SHOW TRACE FOR <qid>: the span tree of one
// retained trace, one indented line per row.
func (e *Engine) runShowTrace(qid uint64) (*Result, error) {
	t := e.traceRing.Get(qid)
	if t == nil {
		return nil, fmt.Errorf(
			"no trace retained for query %d (sample with SET trace = on or -trace-sample; slow and errored statements are retained automatically)",
			qid)
	}
	res := &Result{Columns: []string{"trace"}}
	for _, line := range t.Render() {
		res.Rows = append(res.Rows, value.Row{value.NewString(line)})
	}
	return res, nil
}
