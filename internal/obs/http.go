package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry at /metrics
// (Prometheus text format) and a trivial liveness probe at /healthz.
func (r *Registry) Handler() http.Handler {
	return r.HandlerWith(nil)
}

// HandlerWith is Handler plus caller-supplied routes mounted on the
// same mux — the daemon uses it to serve /traces and the optional
// pprof endpoints beside /metrics on one observability listener.
func (r *Registry) HandlerWith(extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// MetricsServer is a running /metrics + /healthz HTTP listener.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ListenAndServe binds addr (":0" picks a free port) and serves the
// registry in a background goroutine. It returns once the listener is
// bound, so Addr() is immediately valid.
func (r *Registry) ListenAndServe(addr string) (*MetricsServer, error) {
	return r.ListenAndServeWith(addr, nil)
}

// ListenAndServeWith is ListenAndServe with extra routes beside
// /metrics and /healthz.
func (r *Registry) ListenAndServeWith(addr string, extra map[string]http.Handler) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.HandlerWith(extra), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{srv: srv, ln: ln}, nil
}

// Addr is the bound listen address.
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close stops the listener.
func (m *MetricsServer) Close() error { return m.srv.Close() }
