package exec

import (
	"fmt"
	"sort"
	"sync"

	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// ---- Aggregation ----

type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     value.Value
	max     value.Value
	seen    map[string]struct{} // DISTINCT values
	any     bool
}

type aggGroup struct {
	keys   value.Row
	states []aggState
}

// openAggregate performs hash aggregation: consume the entire child,
// bucket by group-by keys, fold each aggregate, then emit one row per
// group (or exactly one row for a global aggregate over empty input).
// A Parallel-marked aggregate executing with a worker budget runs the
// two-phase path instead.
func openAggregate(a *plan.Aggregate, ctx *Ctx) (Iterator, error) {
	if a.Parallel && ctx.Workers >= 2 {
		return openParallelAggregate(a, ctx)
	}
	child, err := Open(a.Child, ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()

	groups := make(map[string]*aggGroup)
	if err := foldInput(a, child, ctx, groups); err != nil {
		return nil, err
	}
	return emitGroups(a, groups, ctx), nil
}

// foldInput drains child into the group table. A global aggregate (no
// GROUP BY) has exactly one group under the empty key, always present
// (even over empty input); it skips key encoding and the per-row map
// lookup entirely.
func foldInput(a *plan.Aggregate, child Iterator, ctx *Ctx, groups map[string]*aggGroup) error {
	var global *aggGroup
	if len(a.GroupBy) == 0 {
		global = &aggGroup{states: make([]aggState, len(a.Aggs))}
		groups[""] = global
	}
	var in *Batch
	keyVals := make(value.Row, len(a.GroupBy)) // per-row scratch
	var keyBuf []byte                          // reusable key scratch
	for {
		in = grown(in)
		bn, err := nextBatch(child, in)
		if err != nil {
			return err
		}
		if bn == 0 {
			return nil
		}
		for _, row := range in.Rows {
			grp := global
			if grp == nil {
				keyBuf = keyBuf[:0]
				for i, g := range a.GroupBy {
					v, err := g.Eval(ctx.Eval, row)
					if err != nil {
						return err
					}
					keyVals[i] = v
					keyBuf = value.EncodeKey(keyBuf, v)
				}
				// The string(keyBuf) lookup does not allocate; the key
				// string and group-by row only materialize per new group.
				var ok bool
				grp, ok = groups[string(keyBuf)]
				if !ok {
					k := string(keyBuf)
					grp = &aggGroup{keys: keyVals.Clone(), states: make([]aggState, len(a.Aggs))}
					groups[k] = grp
				}
			}
			for i, spec := range a.Aggs {
				if err := fold(&grp.states[i], spec, ctx, row); err != nil {
					return err
				}
			}
		}
	}
}

// emitGroups renders the group table as result rows in sorted
// encoded-key order — deterministic by construction, and identical
// between the serial and two-phase parallel paths (first-appearance
// order would differ run to run under parallel folding).
func emitGroups(a *plan.Aggregate, groups map[string]*aggGroup, ctx *Ctx) *scanIter {
	order := make([]string, 0, len(groups))
	for k := range groups {
		order = append(order, k)
	}
	sort.Strings(order)
	rows := make([]value.Row, 0, len(groups))
	for _, k := range order {
		grp := groups[k]
		out := make(value.Row, 0, len(a.GroupBy)+len(a.Aggs))
		out = append(out, grp.keys...)
		for i, spec := range a.Aggs {
			out = append(out, finish(&grp.states[i], spec))
		}
		rows = append(rows, out)
	}
	return &scanIter{rows: rows, ctx: ctx}
}

// mergeState folds one worker's partial aggregate state into dst. The
// planner never parallelizes DISTINCT aggregates (per-worker seen-sets
// are not mergeable into correct counts) and gates SUM/AVG to integer
// arguments (float accumulation order would leak into results), so the
// merge is exact: counts and integer sums add, extrema compare.
func mergeState(dst, src *aggState) {
	dst.count += src.count
	dst.sumI += src.sumI
	dst.sumF += src.sumF
	dst.isFloat = dst.isFloat || src.isFloat
	dst.any = dst.any || src.any
	if !src.min.IsNull() && (dst.min.IsNull() || value.Compare(src.min, dst.min) < 0) {
		dst.min = src.min
	}
	if !src.max.IsNull() && (dst.max.IsNull() || value.Compare(src.max, dst.max) > 0) {
		dst.max = src.max
	}
}

// openParallelAggregate is the two-phase path: one fragment per worker
// folds morsels of the child into a private group table (no shared
// state, no locks), then the partials merge serially in worker-index
// order and the merged table emits exactly like the serial operator.
func openParallelAggregate(a *plan.Aggregate, ctx *Ctx) (Iterator, error) {
	workers := ctx.Workers
	pr, err := newParallelRun(a.Child, ctx, workers)
	if err != nil {
		return nil, err
	}
	type workerFold struct {
		iter   Iterator
		merges []plan.WorkerAuditSink
		ctx    *Ctx
		groups map[string]*aggGroup
		err    error
	}
	ws := make([]*workerFold, workers)
	for i := range ws {
		wctx := workerCtx(ctx)
		var merges []plan.WorkerAuditSink
		fit, ferr := pr.fragment(a.Child, wctx, &merges)
		if ferr != nil {
			for j := 0; j < i; j++ {
				ws[j].iter.Close()
			}
			return nil, ferr
		}
		ws[i] = &workerFold{iter: fit, merges: merges, ctx: wctx, groups: make(map[string]*aggGroup)}
	}

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *workerFold) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					w.err = fmt.Errorf("exec: parallel aggregation worker panic: %v", r)
				}
			}()
			defer func() {
				w.iter.Close()
				for _, m := range w.merges {
					m.Merge()
				}
			}()
			w.err = foldInput(a, w.iter, w.ctx, w.groups)
		}(w)
	}
	wg.Wait()
	for _, w := range ws {
		if w.err != nil {
			return nil, w.err
		}
	}

	groups := make(map[string]*aggGroup)
	for _, w := range ws {
		for k, g := range w.groups {
			dst, ok := groups[k]
			if !ok {
				groups[k] = g
				continue
			}
			for i := range dst.states {
				mergeState(&dst.states[i], &g.states[i])
			}
		}
	}
	return emitGroups(a, groups, ctx), nil
}

func fold(st *aggState, spec plan.AggSpec, ctx *Ctx, row value.Row) error {
	// COUNT(*) counts rows unconditionally.
	if spec.Arg == nil {
		st.count++
		return nil
	}
	v, err := spec.Arg.Eval(ctx.Eval, row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // NULLs are ignored by all aggregates
	}
	if spec.Distinct {
		if st.seen == nil {
			st.seen = make(map[string]struct{})
		}
		k := value.KeyOf(v)
		if _, dup := st.seen[k]; dup {
			return nil
		}
		st.seen[k] = struct{}{}
	}
	st.any = true
	st.count++
	switch spec.Func {
	case plan.AggSum, plan.AggAvg:
		switch v.Kind {
		case value.KindFloat:
			st.isFloat = true
			st.sumF += v.F
		case value.KindInt, value.KindBool:
			st.sumI += v.I
		default:
			return fmt.Errorf("%s: non-numeric argument %s", spec.Func, v.Kind)
		}
	case plan.AggMin:
		if st.min.IsNull() || value.Compare(v, st.min) < 0 {
			st.min = v
		}
	case plan.AggMax:
		if st.max.IsNull() || value.Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	return nil
}

func finish(st *aggState, spec plan.AggSpec) value.Value {
	switch spec.Func {
	case plan.AggCount:
		return value.NewInt(st.count)
	case plan.AggSum:
		if !st.any {
			return value.Null
		}
		if st.isFloat {
			return value.NewFloat(st.sumF + float64(st.sumI))
		}
		return value.NewInt(st.sumI)
	case plan.AggAvg:
		if !st.any || st.count == 0 {
			return value.Null
		}
		return value.NewFloat((st.sumF + float64(st.sumI)) / float64(st.count))
	case plan.AggMin:
		return st.min
	case plan.AggMax:
		return st.max
	}
	return value.Null
}

// ---- Sort ----

func openSort(s *plan.Sort, ctx *Ctx) (Iterator, error) {
	child, err := Open(s.Child, ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()
	type keyed struct {
		row  value.Row
		keys value.Row
	}
	var rows []keyed
	var in *Batch
	kw := len(s.Keys)
	for {
		in = grown(in)
		bn, err := nextBatch(child, in)
		if err != nil {
			return nil, err
		}
		if bn == 0 {
			break
		}
		// One backing array of sort keys per input batch.
		backing := make([]value.Value, bn*kw)
		for ri, row := range in.Rows {
			keys := value.Row(backing[ri*kw : (ri+1)*kw : (ri+1)*kw])
			for i, k := range s.Keys {
				v, err := k.Expr.Eval(ctx.Eval, row)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
			rows = append(rows, keyed{row: row, keys: keys})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.Keys {
			c := value.Compare(rows[i].keys[k], rows[j].keys[k])
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([]value.Row, len(rows))
	for i, r := range rows {
		out[i] = r.row
	}
	return &scanIter{rows: out, ctx: ctx}, nil
}
