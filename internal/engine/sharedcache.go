package engine

import (
	"sync"

	"auditdb/internal/core"
	"auditdb/internal/plan"
)

// Engine-wide shared plan cache. Keys are the canonical,
// auto-parameterized statement texts produced by lexer.Normalize, so
// `WHERE id = 7` and `WHERE id = 9` share one entry. Each canonical
// text maps to a small list of variants, one per distinct combination
// of the knobs that steer planning (placement heuristic, audit-all,
// worker budget, parallel threshold); a variant also records the
// catalog version it was planned under and is dropped on sight when
// DDL has bumped it since.
//
// An entry's plan is an immutable template: it is never executed.
// Sessions adopt a template by deep-cloning its node tree
// (plan.CloneNode) into their own L1 cache, because execution rebinds
// the audit operators' sinks in place. Many sessions may clone one
// template concurrently; nothing ever writes to it.
//
// The map is sharded by a hash of the canonical bytes so that adopting
// sessions contend on 1/sharedCacheShards of the lock traffic.

const (
	sharedCacheShards = 16
	// sharedShardCap bounds the canonical texts per shard. Eviction is
	// wholesale per shard, same policy as the session cache: a workload
	// cycling through thousands of distinct shapes is not repeat-heavy,
	// and wholesale reset costs nothing on the hit path.
	sharedShardCap = 256
)

// sharedPlan is one planned variant of a canonical statement. root is
// the immutable template; bypass marks a canonical shape that must not
// be auto-parameterized (constant folding would change the plan shape
// against the original text), telling sessions to fall back to the
// ordinary raw-text path for every statement normalizing to it.
type sharedPlan struct {
	heuristic core.Heuristic
	auditAll  bool
	workers   int
	minRows   int
	version   int64

	bypass       bool
	root         plan.Node
	targets      []*core.AuditExpression
	conservative bool
	hasAudit     bool
	parallel     bool
	slots        int // parameter slots (auto + user) the plan binds
}

// matches reports whether the variant was planned under the given
// knobs. bypass markers are knob-independent: fold sensitivity is a
// property of the statement shape alone.
func (v *sharedPlan) matches(heur core.Heuristic, auditAll bool, workers, minRows int) bool {
	if v.bypass {
		return true
	}
	return v.heuristic == heur && v.auditAll == auditAll &&
		v.workers == workers && v.minRows == minRows
}

type sharedShard struct {
	mu sync.RWMutex
	m  map[string][]*sharedPlan
}

type sharedPlanCache struct {
	shards [sharedCacheShards]sharedShard
}

// shardOf picks the shard for a canonical text (FNV-1a over the bytes).
func (c *sharedPlanCache) shardOf(canon []byte) *sharedShard {
	h := uint32(2166136261)
	for _, b := range canon {
		h = (h ^ uint32(b)) * 16777619
	}
	return &c.shards[h%sharedCacheShards]
}

// lookup returns the variant for canon under the given knobs, valid at
// version, or nil. The hot path allocates nothing: map access through
// string(canon) compiles to a lookup without materializing the key.
func (c *sharedPlanCache) lookup(canon []byte, heur core.Heuristic, auditAll bool, workers, minRows int, version int64) *sharedPlan {
	sh := c.shardOf(canon)
	sh.mu.RLock()
	variants := sh.m[string(canon)]
	sh.mu.RUnlock()
	for _, v := range variants {
		if !v.matches(heur, auditAll, workers, minRows) {
			continue
		}
		if !v.bypass && v.version != version {
			return nil // stale; the store after re-planning replaces it
		}
		return v
	}
	return nil
}

// store publishes a variant for canon, replacing any variant with the
// same knobs (typically a stale-version predecessor). It returns the
// number of canonical texts evicted (0, or a whole shard's worth when
// the shard hit its cap) and the net entry-count delta.
func (c *sharedPlanCache) store(canon []byte, v *sharedPlan) (evicted, delta int) {
	sh := c.shardOf(canon)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[string][]*sharedPlan)
	}
	key := string(canon)
	variants, ok := sh.m[key]
	if !ok && len(sh.m) >= sharedShardCap {
		evicted = len(sh.m)
		delta -= evicted
		sh.m = make(map[string][]*sharedPlan)
	}
	for i, old := range variants {
		if old.bypass == v.bypass && old.matches(v.heuristic, v.auditAll, v.workers, v.minRows) {
			variants[i] = v
			sh.m[key] = variants
			return evicted, delta
		}
	}
	if len(variants) == 0 {
		delta++
	}
	sh.m[key] = append(variants, v)
	return evicted, delta
}

// entries counts the canonical texts currently cached across shards.
func (c *sharedPlanCache) entries() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += int64(len(sh.m))
		sh.mu.RUnlock()
	}
	return n
}
