package core

import (
	"strings"

	"auditdb/internal/plan"
)

// Heuristic selects an audit-operator placement algorithm (§III-C).
type Heuristic uint8

// Placement heuristics.
const (
	// LeafNode places an audit operator directly above each leaf scan
	// of the sensitive table (after the pushed single-table predicate).
	// No false negatives (Claim 3.5), many false positives.
	LeafNode Heuristic = iota
	// HighestNode places the operator at the highest edge where the
	// partition-by column is visible. Fewest false positives but can
	// produce FALSE NEGATIVES (Example 3.2); implemented only as the
	// strawman it is in the paper.
	HighestNode
	// HighestCommutativeNode is Algorithm 1: leaf placement followed by
	// pull-up through commutative operators (filters, joins, sorts,
	// ID-preserving projections), stopping below group-by, top-k,
	// distinct and subquery boundaries. No false negatives (Claim 3.6),
	// no false positives on select-join queries (Theorem 3.7).
	HighestCommutativeNode
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case LeafNode:
		return "leaf-node"
	case HighestNode:
		return "highest-node"
	case HighestCommutativeNode:
		return "hcn"
	default:
		return "unknown"
	}
}

// Instrument inserts audit operators for the expression into the plan
// (including every subquery block, each instrumented independently —
// Example 3.8(c)) and returns the new root. The sink receives the
// partition-by values that flow past each operator.
func Instrument(root plan.Node, e *AuditExpression, sink plan.AuditSink, h Heuristic) plan.Node {
	// Instrument subquery plans first; their roots are pinned inside
	// expressions, so each block is an independent placement problem.
	plan.Subplans(root, func(sq *plan.Subquery) {
		sq.Plan = Instrument(sq.Plan, e, sink, h)
	})

	holder := &rootHolder{child: root}
	switch h {
	case HighestNode:
		placeHighest(holder, e, sink)
	case LeafNode:
		insertAtLeaves(holder, e, sink)
	case HighestCommutativeNode:
		insertAtLeaves(holder, e, sink)
		pullUp(holder)
	}
	return holder.child
}

// rootHolder gives the pull-up loop a parent for the true root.
type rootHolder struct{ child plan.Node }

func (r *rootHolder) Schema() plan.Schema   { return r.child.Schema() }
func (r *rootHolder) Children() []plan.Node { return []plan.Node{r.child} }
func (r *rootHolder) SetChild(_ int, n plan.Node) {
	r.child = n
}
func (r *rootHolder) Label() string { return "Root" }

// insertAtLeaves wraps every scan of the sensitive table in an audit
// operator probing the partition-by column. Each instance of the table
// (self-joins) receives its own operator.
func insertAtLeaves(holder *rootHolder, e *AuditExpression, sink plan.AuditSink) {
	var visit func(parent plan.Node, slot int, n plan.Node)
	visit = func(parent plan.Node, slot int, n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			if strings.EqualFold(s.Table, e.Meta.SensitiveTable) {
				idx, found := s.Out.IndexOf(s.Alias, e.Meta.PartitionBy)
				if !found {
					idx, found = s.Out.IndexOf("", e.Meta.PartitionBy)
				}
				if found {
					parent.SetChild(slot, &plan.Audit{Child: s, Name: e.Meta.Name, IDIdx: idx, Sink: sink, Pruner: e})
				}
			}
			return
		}
		for i, c := range n.Children() {
			visit(n, i, c)
		}
	}
	visit(holder, 0, holder.child)
}

// pullUp is the pull-up loop of Algorithm 1: repeatedly commute each
// audit operator with its parent until no operator can move.
func pullUp(holder *rootHolder) {
	for moved := true; moved; {
		moved = false
		var visit func(grand plan.Node, gslot int, parent plan.Node)
		visit = func(grand plan.Node, gslot int, parent plan.Node) {
			if moved {
				return
			}
			for i, c := range parent.Children() {
				a, ok := c.(*plan.Audit)
				if ok && parent != grand {
					if newIdx, commutes := commute(a, parent, i); commutes {
						// Swap: parent absorbs the audit's child; the
						// audit moves above the parent.
						parent.SetChild(i, a.Child)
						a.Child = parent
						a.IDIdx = newIdx
						grand.SetChild(gslot, a)
						moved = true
						return
					}
				}
				visit(parent, i, c)
			}
		}
		// The holder acts as its own grandparent for the root.
		visit(holder, 0, holder)
	}
}

// commute reports whether an audit operator sitting at child slot of
// parent may move above parent, and the partition-by column's ordinal
// in parent's output if so. This encodes the paper's commutativity
// rules: the audit operator behaves like a filter on the partition-by
// key, so it commutes with selections, joins and sorts, but not with
// group-by, top-k/limit, distinct, or another audit operator.
func commute(a *plan.Audit, parent plan.Node, slot int) (int, bool) {
	switch p := parent.(type) {
	case *plan.Filter, *plan.Sort:
		return a.IDIdx, true
	case *plan.Join:
		if slot == 0 {
			return a.IDIdx, true
		}
		return a.IDIdx + len(p.Left.Schema()), true
	case *plan.Project:
		// The operator passes a projection only if the projection
		// forwards the partition-by column unchanged (identity column
		// reference). Since scans always emit whole base rows, IDs are
		// implicitly propagated up to each block's root projection.
		for k, ex := range p.Exprs {
			if col, ok := ex.(*plan.Col); ok && col.Idx == a.IDIdx {
				return k, true
			}
		}
		return 0, false
	default:
		// Aggregate, Limit, Distinct, Audit, ValuesScan parents block.
		return 0, false
	}
}

// placeHighest implements the highest-node strawman: one operator at
// the shallowest node whose schema still exposes the partition-by
// column. Used to demonstrate false negatives (Example 3.2).
func placeHighest(holder *rootHolder, e *AuditExpression, sink plan.AuditSink) {
	var best struct {
		parent plan.Node
		slot   int
		node   plan.Node
		idx    int
		depth  int
		found  bool
	}
	var visit func(parent plan.Node, slot int, n plan.Node, depth int)
	visit = func(parent plan.Node, slot int, n plan.Node, depth int) {
		if idx, ok := n.Schema().IndexOf("", e.Meta.PartitionBy); ok {
			if !best.found || depth < best.depth {
				best.parent, best.slot, best.node, best.idx, best.depth, best.found =
					parent, slot, n, idx, depth, true
			}
			return // no need to descend: this is the highest edge here
		}
		for i, c := range n.Children() {
			visit(n, i, c, depth+1)
		}
	}
	visit(holder, 0, holder.child, 0)
	if best.found {
		best.parent.SetChild(best.slot, &plan.Audit{Child: best.node, Name: e.Meta.Name, IDIdx: best.idx, Sink: sink, Pruner: e})
	}
}

// HasConservativePlacement reports whether an instrumented plan may
// over-report accesses: true when some audit operator sits below a
// non-commutative operator (group-by, top-k/limit, distinct — the
// paper's Theorem 3.7 boundary) or inside a subquery block (Example
// 3.8: rows observed in a subquery need not influence the outer
// result). Plans where every audit operator reached the root
// unobstructed report exactly (no false positives, Theorem 3.7); the
// observability layer counts the two outcomes separately so operators
// can see how much of their workload is exactly audited.
// Under the default HCN heuristic the row-dropping ancestors reduce to
// exactly the non-commutative set {Aggregate, Limit, Distinct}: the
// pull-up loop always moves an audit operator past filters, joins and
// sorts, so one can only remain beneath them when a non-commutative
// operator blocks the path. For the leaf-node heuristic the extra
// Filter/Join cases matter — a leaf-placed operator under a join is
// conservative even though nothing non-commutative is in the plan.
func HasConservativePlacement(root plan.Node) bool {
	conservative := false
	var visit func(n plan.Node, aboveRowDropping bool)
	visit = func(n plan.Node, above bool) {
		if _, ok := n.(*plan.Audit); ok && above {
			conservative = true
		}
		switch n.(type) {
		case *plan.Aggregate, *plan.Limit, *plan.Distinct, *plan.Filter, *plan.Join:
			above = true
		}
		for _, c := range n.Children() {
			visit(c, above)
		}
	}
	visit(root, false)
	if !conservative {
		plan.Subplans(root, func(sq *plan.Subquery) {
			if CountAuditOps(sq.Plan, true) > 0 {
				conservative = true
			}
		})
	}
	return conservative
}

// CountAuditOps returns how many audit operators are in the plan
// (excluding subquery blocks when deep is false).
func CountAuditOps(root plan.Node, deep bool) int {
	n := 0
	plan.Walk(root, func(node plan.Node) {
		if _, ok := node.(*plan.Audit); ok {
			n++
		}
	})
	if deep {
		plan.Subplans(root, func(sq *plan.Subquery) {
			n += CountAuditOps(sq.Plan, true)
		})
	}
	return n
}
