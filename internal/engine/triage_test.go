package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"auditdb/internal/triage"
)

// triageHealthDB builds a durable engine with the paper's example, an
// audit expression carrying a PRIORITY, an ON ACCESS trigger, and the
// triage service running.
func triageHealthDB(t *testing.T, dir string, cfg triage.Config) *Engine {
	t.Helper()
	e := openDurable(t, dir)
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT);
		CREATE TABLE Log (UserID VARCHAR(30), PatientID INT);
		INSERT INTO Patients VALUES (1, 'Alice', 34), (2, 'Bob', 21), (3, 'Carol', 47);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID PRIORITY 3;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT userid(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	e.ConfigureTriage(cfg)
	return e
}

func quiesceTriage(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Triage().Quiesce(ctx); err != nil {
		t.Fatalf("triage quiesce: %v", err)
	}
}

// TestTriageVerdictEndToEnd drives the full loop: a query fires the
// trigger, the firing is scored and enqueued, a background worker
// re-derives it with the exact offline auditor, and the signed verdict
// lands in the hash chain, readable via SHOW AUDIT VERDICTS and
// covered by VERIFY AUDIT LOG.
func TestTriageVerdictEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 2})
	defer e.CloseWAL()

	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	quiesceTriage(t, e)

	st := e.Triage().Stats()
	if st.Enqueued != 1 || st.Verdicts != 1 || st.Failed != 0 {
		t.Fatalf("triage stats: %+v", st)
	}

	r := mustExec(t, e, "SHOW AUDIT VERDICTS")
	if len(r.Rows) != 1 {
		t.Fatalf("SHOW AUDIT VERDICTS rows: %v", r.Rows)
	}
	row := r.Rows[0]
	cols := map[string]int{}
	for i, c := range r.Columns {
		cols[c] = i
	}
	if got := row[cols["outcome"]].Str(); got != "confirmed" {
		t.Fatalf("outcome = %q, want confirmed (the query really touched Alice)", got)
	}
	if got := row[cols["expression"]].Str(); got != "Audit_Alice" {
		t.Fatalf("expression = %q", got)
	}
	if row[cols["suspicious"]].Int() < 1 {
		t.Fatalf("suspicious = %v, want >= 1", row[cols["suspicious"]])
	}
	// Verdict (seq) chains directly after its audit record (audit_seq).
	if row[cols["seq"]].Int() <= row[cols["audit_seq"]].Int() {
		t.Fatalf("verdict seq %v not after audit seq %v", row[cols["seq"]], row[cols["audit_seq"]])
	}

	// The mixed audit+verdict chain must verify.
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() {
		t.Fatalf("VERIFY AUDIT LOG over a stream with verdicts: %v", v.Rows)
	}
	if v.Rows[0][1].Int() != 2 {
		t.Fatalf("chain records = %v, want 2 (audit + verdict)", v.Rows[0][1])
	}
}

// TestTriageRefutedVerdict forces a refutation deterministically: a
// transaction reads Alice (firing the trigger; the triage event is
// deferred to commit) and then deletes her row. By the time the
// deferred event reaches a worker, the offline re-derivation of the
// recorded statement accesses nothing — the verdict is refuted.
func TestTriageRefutedVerdict(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 1})
	defer e.CloseWAL()

	txn := e.Begin()
	if _, err := txn.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("DELETE FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	quiesceTriage(t, e)

	r := mustExec(t, e, "SHOW AUDIT VERDICTS")
	if len(r.Rows) != 1 || r.Rows[0][2].Str() != "refuted" {
		t.Fatalf("want one refuted verdict, got %v", r.Rows)
	}
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() {
		t.Fatalf("VERIFY AUDIT LOG: %v", v.Rows)
	}
}

func TestTriageQueueHoldsWhenDisabled(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 0})
	defer e.CloseWAL()
	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	// Workers=0: the trigger path must not enqueue at all (embedded
	// engines pay nothing), so the queue stays empty.
	r := mustExec(t, e, "SHOW AUDIT QUEUE")
	if len(r.Rows) != 0 {
		t.Fatalf("disabled triage still queued: %v", r.Rows)
	}
}

// TestTriageBudgetSkip pins the budget semantics: past the per-minute
// budget, events still get chained verdicts — skipped-budget — instead
// of silently vanishing.
func TestTriageBudgetSkip(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 1, BudgetPerMin: 1})
	defer e.CloseWAL()

	for i := 0; i < 3; i++ {
		if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
			t.Fatal(err)
		}
	}
	quiesceTriage(t, e)

	r := mustExec(t, e, "SHOW AUDIT VERDICTS")
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 verdicts, got %d", len(r.Rows))
	}
	byOutcome := map[string]int{}
	for _, row := range r.Rows {
		byOutcome[row[2].Str()]++
	}
	if byOutcome["confirmed"] != 1 || byOutcome["skipped-budget"] != 2 {
		t.Fatalf("outcomes = %v, want 1 confirmed + 2 skipped-budget", byOutcome)
	}
	// Skipped verdicts are chained records too: the full stream verifies.
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() || v.Rows[0][1].Int() != 6 {
		t.Fatalf("VERIFY AUDIT LOG: %v", v.Rows)
	}
}

// TestTriageOverflowAccounting squeezes two firings through a
// one-slot queue and checks that nothing escapes the counted buckets:
// whatever the worker/enqueue interleaving, every event ends up as a
// chained verdict or an explicit drop. (Deterministic eviction order
// itself is pinned by the triage package's queue tests.)
func TestTriageOverflowAccounting(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 1, QueueBound: 1})
	defer e.CloseWAL()
	script := `
		CREATE AUDIT EXPRESSION Audit_Bob AS
			SELECT * FROM Patients WHERE Name = 'Bob'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Bob ON ACCESS TO Audit_Bob AS
			INSERT INTO Log SELECT userid(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Bob'"); err != nil {
		t.Fatal(err) // priority 0
	}
	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err) // priority 3
	}
	quiesceTriage(t, e)
	st := e.Triage().Stats()
	if st.Enqueued != 2 {
		t.Fatalf("enqueued = %d, want 2", st.Enqueued)
	}
	if st.Enqueued != st.Verdicts+st.Dropped+st.Failed+uint64(st.Pending) {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() {
		t.Fatalf("VERIFY AUDIT LOG: %v", v.Rows)
	}
}

// TestTriagePriorityScoreDominates checks the scoring surface end to
// end: PRIORITY 3 must outscore the default even when the default
// expression accessed as many rows.
func TestTriagePriorityScoreDominates(t *testing.T) {
	svc := triage.NewService(triage.Config{}, nil, nil, nil)
	now := time.Now().UnixNano()
	hi := svc.Score("u", 3, 1, now)
	lo := svc.Score("u", 0, 1, now+int64(time.Second))
	if hi <= lo {
		t.Fatalf("PRIORITY 3 score %v not above default %v", hi, lo)
	}
}

// TestTriagePrioritySurvivesDumpAndReplay pins PRIORITY through the
// catalog, the dump renderer, and durable recovery.
func TestTriagePrioritySurvivesDumpAndReplay(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{})
	dump := dumpString(t, e)
	if !strings.Contains(dump, "PRIORITY 3") {
		t.Fatalf("dump lost the PRIORITY clause:\n%s", dump)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	if got := dumpString(t, e2); !strings.Contains(got, "PRIORITY 3") {
		t.Fatalf("replayed catalog lost the PRIORITY clause:\n%s", got)
	}
	meta, ok := e2.cat.AuditExpr("Audit_Alice")
	if !ok || meta.Priority != 3 {
		t.Fatalf("recovered priority: ok=%v meta=%+v", ok, meta)
	}
}

// TestTriageRollbackLeavesNoQueuedWork mirrors
// TestAuditTrailSurvivesRollback from the event queue's side: the
// audit record survives the rollback, but the deferred triage event is
// discarded — a verdict must never be issued for a read that was
// rolled back.
func TestTriageRollbackLeavesNoQueuedWork(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 1})
	defer e.CloseWAL()

	txn := e.Begin()
	if _, err := txn.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	quiesceTriage(t, e)
	if st := e.Triage().Stats(); st.Enqueued != 0 || st.Verdicts != 0 {
		t.Fatalf("rolled-back read produced triage work: %+v", st)
	}
	// The audit record itself still chained (§II tamper resistance).
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() || v.Rows[0][1].Int() != 1 {
		t.Fatalf("audit record lost with the rollback: %v", v.Rows)
	}

	// The commit path releases the deferred event.
	txn = e.Begin()
	if _, err := txn.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	quiesceTriage(t, e)
	if st := e.Triage().Stats(); st.Enqueued != 1 || st.Verdicts != 1 {
		t.Fatalf("committed read did not verify: %+v", st)
	}
}

// TestTriageStressAccounting floods a 64-slot queue from 8 concurrent
// sessions and checks the accounting identity
// enqueued == verdicts + dropped + failed + pending exactly.
func TestTriageStressAccounting(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 2, QueueBound: 64})
	defer e.CloseWAL()

	const sessions, each = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			s.SetUser(fmt.Sprintf("user%d", n))
			for j := 0; j < each; j++ {
				if _, err := s.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
					t.Errorf("session %d query %d: %v", n, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Identity holds mid-drain, before quiescing...
	st := e.Triage().Stats()
	if st.Enqueued != st.Verdicts+st.Dropped+st.Failed+uint64(st.Pending) {
		t.Fatalf("identity broken mid-drain: %+v", st)
	}
	quiesceTriage(t, e)
	// ...and after: everything enqueued is verified or counted dropped.
	st = e.Triage().Stats()
	if st.Enqueued != sessions*each {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, sessions*each)
	}
	if st.Pending != 0 || st.Failed != 0 {
		t.Fatalf("drained stats: %+v", st)
	}
	if st.Enqueued != st.Verdicts+st.Dropped {
		t.Fatalf("identity broken after drain: %+v", st)
	}
	v := mustExec(t, e, "VERIFY AUDIT LOG")
	if !v.Rows[0][0].Bool() {
		t.Fatalf("VERIFY AUDIT LOG after stress: %v", v.Rows)
	}
}

// TestTriageDoesNotPerturbAccessed: the ACCESSED set a query reports
// must be byte-identical with triage on and off — scoring and
// enqueueing ride after audit capture and never touch it.
func TestTriageDoesNotPerturbAccessed(t *testing.T) {
	dir := t.TempDir()
	e := triageHealthDB(t, dir, triage.Config{Workers: 1})
	defer e.CloseWAL()

	render := func(r *Result) string {
		if r.Accessed == nil {
			return "<nil>"
		}
		var b strings.Builder
		for _, name := range r.Accessed.Expressions() {
			fmt.Fprintf(&b, "%s:", name)
			for _, id := range r.Accessed.IDs(name) {
				fmt.Fprintf(&b, " %s", id.String())
			}
			b.WriteString("\n")
		}
		return b.String()
	}

	const q = "SELECT * FROM Patients WHERE Name = 'Alice'"
	on := mustQuery(t, e, q)
	e.SetTriage(false)
	off := mustQuery(t, e, q)
	if render(on) != render(off) {
		t.Fatalf("ACCESSED differs with triage on/off:\non:  %q\noff: %q", render(on), render(off))
	}
	if render(on) == "<nil>" {
		t.Fatal("query reported no ACCESSED set at all")
	}
	e.SetTriage(true)
	quiesceTriage(t, e)
	// Only the triage-on firing produced an event.
	if st := e.Triage().Stats(); st.Enqueued != 1 {
		t.Fatalf("SET triage = off still enqueued: %+v", st)
	}
}

// TestTriageSessionToggleInheritance: sessions snapshot the default
// session's triage flag at creation, like the other session knobs.
func TestTriageSessionToggleInheritance(t *testing.T) {
	e := New()
	s1 := e.NewSession()
	defer s1.Close()
	if !s1.TriageOn() {
		t.Fatal("fresh session must default to triage on")
	}
	e.SetTriage(false)
	s2 := e.NewSession()
	defer s2.Close()
	if s2.TriageOn() {
		t.Fatal("session created after SET triage = off must inherit off")
	}
	if !s1.TriageOn() {
		t.Fatal("existing session flipped by the default changing")
	}
	s2.SetTriage(true)
	if !s2.TriageOn() {
		t.Fatal("per-session toggle failed")
	}
}
