package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// Ring is the bounded retention buffer for finished traces. Newer
// traces overwrite the oldest once the ring is full; Add reports the
// overwrite so the owner can count evictions (the trace package keeps
// no metrics of its own — it stays dependency-free).
type Ring struct {
	mu  sync.Mutex
	buf []*Trace
	pos int // next write slot
	n   int
}

// NewRing creates a ring retaining up to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add retains t, reporting whether an older trace was evicted.
func (g *Ring) Add(t *Trace) (evicted bool) {
	if t == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	evicted = g.buf[g.pos] != nil
	g.buf[g.pos] = t
	g.pos = (g.pos + 1) % len(g.buf)
	if g.n < len(g.buf) {
		g.n++
	}
	return evicted
}

// Get returns the retained trace for qid, or nil.
func (g *Ring) Get(qid uint64) *Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range g.buf {
		if t != nil && t.QID == qid {
			return t
		}
	}
	return nil
}

// Snapshot returns the retained traces, newest first.
func (g *Ring) Snapshot() []*Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Trace, 0, g.n)
	for i := 1; i <= len(g.buf); i++ {
		// Walk backwards from the slot before pos: newest to oldest.
		t := g.buf[(g.pos-i+len(g.buf))%len(g.buf)]
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Len reports how many traces are currently retained.
func (g *Ring) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Handler serves the ring as JSON: the full retained list (newest
// first) at the mount path, or a single trace with ?qid=<id>. Daemons
// mount it at /traces on the metrics listener.
func (g *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if q := req.URL.Query().Get("qid"); q != "" {
			qid, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, `{"error":"bad qid"}`, http.StatusBadRequest)
				return
			}
			t := g.Get(qid)
			if t == nil {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(t)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(g.Snapshot())
	})
}
