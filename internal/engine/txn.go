package engine

import (
	"fmt"

	"auditdb/internal/ast"
	"auditdb/internal/parser"
	"auditdb/internal/triage"
	"auditdb/internal/wal"
)

// Txn is an explicit transaction: the engine's writer lock is held for
// its whole lifetime (other writers block; readers continue against
// snapshots and see the transaction's changes immediately —
// read-uncommitted visibility). Rollback undoes every row change the
// transaction applied, including changes made by triggers it fired,
// and re-materializes the audit-expression ID sets.
type Txn struct {
	e *Engine
	// sess attributes the transaction's statements (USERID() in trigger
	// actions); nil means the default session.
	sess *Session
	undo []change
	// wal buffers the transaction's operations (created lazily); Commit
	// appends them as one record before releasing the writer lock, so a
	// checkpoint acquiring it afterwards always sees the record in a
	// segment its snapshot covers.
	wal  *walUnit
	done bool
	// pendTriage buffers triage events from SELECT-trigger firings
	// inside the transaction: enqueued on Commit, discarded on Rollback
	// — a rolled-back read must not leave verification work behind
	// (the audit records themselves survive rollback regardless).
	pendTriage []triage.Event
}

// Begin opens a transaction under the default session, blocking until
// any other writer or transaction finishes. Every Txn must end in
// Commit or Rollback. Use Session.Begin for per-user attribution.
func (e *Engine) Begin() *Txn {
	e.dmlMu.Lock()
	return &Txn{e: e, sess: e.defSess}
}

// Exec runs one statement inside the transaction.
func (t *Txn) Exec(sql string) (*Result, error) {
	if t.done {
		return nil, fmt.Errorf("transaction already finished")
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *ast.TxBegin, *ast.TxCommit, *ast.TxRollback:
		return nil, fmt.Errorf("nested transaction control inside Txn.Exec; use Commit/Rollback")
	}
	env := rootActionEnv()
	env.txn = t
	env.sess = t.sess
	return t.e.execStmt(stmt, sql, env)
}

// Query runs a SELECT inside the transaction (audited as usual).
func (t *Txn) Query(sql string) (*Result, error) { return t.Exec(sql) }

// Commit makes the transaction's changes permanent — durably, when a
// WAL is attached: the commit record (trigger-cascade writes
// included) is appended and group-committed before the writer lock is
// released.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("transaction already finished")
	}
	t.done = true
	t.undo = nil
	var err error
	if t.wal != nil {
		err = t.e.flushUnit(t.wal)
		t.wal = nil
	}
	t.e.dmlMu.Unlock()
	// Deferred triage events flow to the queue only now that the
	// transaction's reads are committed history; enqueue outside the
	// writer lock (lock order: dmlMu is never held into triage's mutex).
	for _, ev := range t.pendTriage {
		t.e.triage.Enqueue(ev)
	}
	t.pendTriage = nil
	return err
}

// Rollback undoes the transaction's changes (reverse order), restores
// the audit-expression ID sets, and releases the writer lock. DDL is
// not undone by rollback in this engine, so any DDL the transaction
// ran is still logged (DML ops are discarded with the rollback).
func (t *Txn) Rollback() error {
	if t.done {
		return fmt.Errorf("transaction already finished")
	}
	t.done = true
	undo(t.undo)
	t.undo = nil
	t.pendTriage = nil // rolled-back reads leave no verification work
	var walErr error
	if t.wal != nil {
		n := 0
		for _, op := range t.wal.ops {
			if op.Kind == wal.OpDDL {
				t.wal.ops[n] = op
				n++
			}
		}
		t.wal.ops = t.wal.ops[:n]
		walErr = t.e.flushUnit(t.wal)
		t.wal = nil
	}
	err := t.e.reg.RefreshAll()
	t.e.dmlMu.Unlock()
	if err != nil {
		return err
	}
	return walErr
}

// record registers applied changes for rollback.
func (t *Txn) record(applied []change) {
	t.undo = append(t.undo, applied...)
}

// runTxControl supports SQL-level BEGIN/COMMIT/ROLLBACK through
// Exec/ExecScript. SQL transactions are per-session (one open at a
// time per session); a COMMIT or ROLLBACK on a session that holds no
// transaction fails cleanly and never touches another session's
// transaction, so interleaved transaction control from concurrent
// connections cannot corrupt state.
func (e *Engine) runTxControl(stmt ast.Stmt, env *actionEnv) (*Result, error) {
	if env.depth > 0 {
		return nil, fmt.Errorf("transaction control is not allowed inside trigger actions")
	}
	s := e.sessionOf(env)
	switch stmt.(type) {
	case *ast.TxBegin:
		s.lock()
		if s.txn != nil {
			s.unlock()
			return nil, fmt.Errorf("a transaction is already open")
		}
		s.unlock()
		// Begin blocks on the writer lock; take it outside the session
		// lock so Close (e.g. a dropped connection) stays responsive.
		txn := s.Begin()
		s.lock()
		if s.closed {
			s.unlock()
			txn.Rollback()
			return nil, fmt.Errorf("session is closed")
		}
		s.txn = txn
		s.unlock()
		return &Result{}, nil
	case *ast.TxCommit:
		s.lock()
		txn := s.txn
		s.txn = nil
		s.unlock()
		if txn == nil {
			return nil, fmt.Errorf("no open transaction")
		}
		return &Result{}, txn.Commit()
	case *ast.TxRollback:
		s.lock()
		txn := s.txn
		s.txn = nil
		s.unlock()
		if txn == nil {
			return nil, fmt.Errorf("no open transaction")
		}
		return &Result{}, txn.Rollback()
	}
	return nil, fmt.Errorf("not a transaction-control statement")
}
