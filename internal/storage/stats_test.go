package storage

import (
	"testing"

	"auditdb/internal/value"
)

func mustInsert(t *testing.T, tb *Table, r value.Row) RowID {
	t.Helper()
	id, err := tb.Insert(r)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestZoneMapTracksInserts: fresh inserts produce exact min/max and
// null counts.
func TestZoneMapTracksInserts(t *testing.T) {
	tb := NewTable(patientsMeta())
	for i := int64(10); i <= 20; i++ {
		mustInsert(t, tb, row(i, "p", 30+i))
	}
	ci := ChunkInfo{t: tb, c: 0}
	lo, hi, ok := ci.Range(0)
	if !ok || lo != 10 || hi != 20 {
		t.Fatalf("Range(PatientID) = [%d,%d] ok=%v, want [10,20]", lo, hi, ok)
	}
	lo, hi, ok = ci.Range(2)
	if !ok || lo != 40 || hi != 50 {
		t.Fatalf("Range(Age) = [%d,%d] ok=%v, want [40,50]", lo, hi, ok)
	}
	if _, _, ok := ci.Range(1); ok {
		t.Fatal("string column must not report a zone map")
	}
	nulls, nonNull := ci.NullCounts(0)
	if nulls != 0 || nonNull != 11 {
		t.Fatalf("NullCounts = %d/%d, want 0/11", nulls, nonNull)
	}
}

// TestZoneMapWidensOnUpdate: an update folds the new image in, so the
// bounds cover both old and new values (conservative, never stale in
// the unsound direction).
func TestZoneMapWidensOnUpdate(t *testing.T) {
	tb := NewTable(patientsMeta())
	id := mustInsert(t, tb, row(5, "p", 40))
	mustInsert(t, tb, row(6, "q", 41))
	if _, err := tb.Update(id, row(5, "p", 99)); err != nil {
		t.Fatal(err)
	}
	ci := ChunkInfo{t: tb, c: 0}
	lo, hi, ok := ci.Range(2)
	if !ok || lo > 40 || hi < 99 {
		t.Fatalf("Range(Age) = [%d,%d] ok=%v, want bounds covering 40 and 99", lo, hi, ok)
	}
	if live := tb.stats[0].live; live != 2 {
		t.Fatalf("live = %d after update, want 2 (updates must not inflate)", live)
	}
}

// TestNullCountsExactZero: nulls==0 must be exact (it is what refutes
// IS NULL), and inserting a null must move it off zero.
func TestNullCountsExactZero(t *testing.T) {
	tb := NewTable(patientsMeta())
	mustInsert(t, tb, row(1, "p", 30))
	mustInsert(t, tb, value.Row{value.NewInt(2), value.NewString("q"), value.Null})
	ci := ChunkInfo{t: tb, c: 0}
	nulls, nonNull := ci.NullCounts(2)
	if nulls != 1 || nonNull != 1 {
		t.Fatalf("NullCounts(Age) = %d/%d, want 1/1", nulls, nonNull)
	}
}

// TestDeleteEmptiesChunk: deleting every row drops live to zero and a
// pruned scan skips the chunk silently — decide is never consulted.
func TestDeleteEmptiesChunk(t *testing.T) {
	tb := NewTable(patientsMeta())
	var ids []RowID
	for i := int64(0); i < 8; i++ {
		ids = append(ids, mustInsert(t, tb, row(i, "p", 30)))
	}
	for _, id := range ids {
		if _, err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if live := tb.stats[0].live; live != 0 {
		t.Fatalf("live = %d after deleting all, want 0", live)
	}
	decided := false
	out := make([]value.Row, 16)
	n, next := tb.ScanChunkPruned(0, out, make([]RowID, 16), func(ChunkInfo) bool {
		decided = true
		return true
	})
	if n != 0 || next != -1 {
		t.Fatalf("scan of empty chunk = (%d, %d), want (0, -1)", n, next)
	}
	if decided {
		t.Fatal("decide must not run for a chunk with no live rows")
	}
}

// TestDriftRebuildTightensBounds: once deletes accumulate to half a
// chunk the stats are rebuilt exactly, so the zone map tightens back to
// the surviving rows.
func TestDriftRebuildTightensBounds(t *testing.T) {
	tb := NewTable(patientsMeta())
	var ids []RowID
	for i := int64(0); i < ChunkRows; i++ {
		ids = append(ids, mustInsert(t, tb, row(i, "p", 30)))
	}
	// Delete the top half: the 2048th drift triggers a rebuild.
	for i := ChunkRows / 2; i < ChunkRows; i++ {
		if _, err := tb.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	ck := tb.stats[0]
	if ck.drift != 0 {
		t.Fatalf("drift = %d after rebuild threshold, want 0", ck.drift)
	}
	if ck.live != ChunkRows/2 {
		t.Fatalf("live = %d, want %d", ck.live, ChunkRows/2)
	}
	lo, hi, ok := ChunkInfo{t: tb, c: 0}.Range(0)
	if !ok || lo != 0 || hi != int64(ChunkRows/2-1) {
		t.Fatalf("Range after rebuild = [%d,%d] ok=%v, want [0,%d]", lo, hi, ok, ChunkRows/2-1)
	}
}

// TestEnsureSketchBackfillAndMaintenance: registering a sketch on a
// populated table backfills existing chunks, later inserts maintain it,
// and absent keys are mostly refuted (bounded false-positive rate).
func TestEnsureSketchBackfillAndMaintenance(t *testing.T) {
	tb := NewTable(patientsMeta())
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tb, row(i, "p", 30))
	}
	tb.EnsureSketch(0)
	tb.EnsureSketch(0) // idempotent
	mustInsert(t, tb, row(100, "late", 30))

	ci := ChunkInfo{t: tb, c: 0}
	for i := int64(0); i <= 100; i++ {
		if !ci.MayContain(0, i) {
			t.Fatalf("MayContain(%d) = false for a present key", i)
		}
	}
	fp := 0
	const probes = 2000
	for i := int64(0); i < probes; i++ {
		if ci.MayContain(0, 1_000_000+i) {
			fp++
		}
	}
	if fp > probes/10 {
		t.Fatalf("false-positive rate %d/%d too high for 101 keys", fp, probes)
	}
	// Unregistered / non-integer columns answer true (no sketch).
	if !ci.MayContain(1, 42) || !ci.MayContain(2, 42) {
		t.Fatal("columns without a sketch must answer MayContain=true")
	}
	tb.EnsureSketch(1) // string column: ignored, still answers true
	if !ci.MayContain(1, 42) {
		t.Fatal("string column sketch must be a no-op")
	}
}

// TestScanChunkPrunedSkipIsNoCopy: a rejected chunk is stepped over
// without copying a single row — the peek/skip fast path.
func TestScanChunkPrunedSkipIsNoCopy(t *testing.T) {
	tb := NewTable(patientsMeta())
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tb, row(i, "p", 30))
	}
	out := make([]value.Row, 16)
	ids := make([]RowID, 16)
	n, next := tb.ScanChunkPruned(0, out, ids, func(ChunkInfo) bool { return false })
	if n != 0 || next != -1 {
		t.Fatalf("pruned scan = (%d, %d), want (0, -1)", n, next)
	}
	for i, r := range out {
		if r != nil {
			t.Fatalf("out[%d] written despite pruning", i)
		}
	}

	// Accepting the chunk still returns every live row.
	n, next = tb.ScanChunkPruned(0, out, ids, func(ChunkInfo) bool { return true })
	if n != 10 || next != -1 {
		t.Fatalf("accepted scan = (%d, %d), want (10, -1)", n, next)
	}
}

// TestScanRangePrunedOneChunkPerCall: a surviving chunk's rows are
// returned without spilling into the next chunk, so pruning is
// re-evaluated at every chunk boundary.
func TestScanRangePrunedOneChunkPerCall(t *testing.T) {
	tb := NewTable(patientsMeta())
	total := ChunkRows + 10
	for i := 0; i < total; i++ {
		mustInsert(t, tb, row(int64(i), "p", 30))
	}
	out := make([]value.Row, total)
	ids := make([]RowID, total)
	var chunksSeen []int
	decide := func(ci ChunkInfo) bool {
		chunksSeen = append(chunksSeen, ci.Chunk())
		return ci.Chunk() == 1 // skip chunk 0, read chunk 1
	}
	got := 0
	pos := 0
	for pos >= 0 {
		var n int
		n, pos = tb.ScanRangePruned(pos, tb.HeapBound(), out[got:], ids[got:], decide)
		got += n
	}
	if got != 10 {
		t.Fatalf("rows = %d, want 10 (only chunk 1 accepted)", got)
	}
	if out[0][0].Int() != int64(ChunkRows) {
		t.Fatalf("first surviving row = %d, want %d", out[0][0].Int(), ChunkRows)
	}
	if len(chunksSeen) != 2 || chunksSeen[0] != 0 || chunksSeen[1] != 1 {
		t.Fatalf("decide saw chunks %v, want [0 1]", chunksSeen)
	}
}
