package fga

import (
	"testing"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/parser"
	"auditdb/internal/value"
)

func setup(t *testing.T) (*Analyzer, *catalog.AuditExprMeta, *ast.Select) {
	t.Helper()
	cat := catalog.New()
	if err := cat.AddTable(&catalog.TableMeta{
		Name: "DepartmentNames",
		Columns: []catalog.Column{
			{Name: "DeptID", Type: value.KindInt},
			{Name: "DeptName", Type: value.KindString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	meta := &catalog.AuditExprMeta{
		Name:           "Audit_Derm",
		SensitiveTable: "DepartmentNames",
		PartitionBy:    "DeptID",
	}
	def, err := parser.ParseQuery("SELECT * FROM DepartmentNames WHERE DeptName = 'Dermatology'")
	if err != nil {
		t.Fatal(err)
	}
	return New(cat), meta, def
}

func flagged(t *testing.T, a *Analyzer, meta *catalog.AuditExprMeta, def *ast.Select, sql string) bool {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return a.Flagged(q, meta, def)
}

func TestExample61(t *testing.T) {
	a, meta, def := setup(t)
	// First query: provable contradiction — not flagged.
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptName = 'Oncology'") {
		t.Error("Oncology query should NOT be flagged (contradiction with Dermatology)")
	}
	// Second query: same semantics but via DeptID — static analysis
	// cannot prove disjointness, so it false-positives. This is the
	// paper's core criticism of the static approach.
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID = 10") {
		t.Error("DeptID query SHOULD be flagged (conservative false positive)")
	}
}

func TestMatchingPredicateFlagged(t *testing.T) {
	a, meta, def := setup(t)
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptName = 'Dermatology'") {
		t.Error("exact match must be flagged")
	}
}

func TestUnreferencedTableNotFlagged(t *testing.T) {
	a, meta, def := setup(t)
	cat := a.cat
	if err := cat.AddTable(&catalog.TableMeta{
		Name:    "Other",
		Columns: []catalog.Column{{Name: "x", Type: value.KindInt}},
	}); err != nil {
		t.Fatal(err)
	}
	if flagged(t, a, meta, def, "SELECT * FROM Other WHERE x = 1") {
		t.Error("query that never reads the sensitive table must not be flagged")
	}
}

func TestSensitiveTableInSubqueryFlagged(t *testing.T) {
	a, meta, def := setup(t)
	if err := a.cat.AddTable(&catalog.TableMeta{
		Name:    "Other",
		Columns: []catalog.Column{{Name: "x", Type: value.KindInt}},
	}); err != nil {
		t.Fatal(err)
	}
	if !flagged(t, a, meta, def, `SELECT * FROM Other WHERE x IN
		(SELECT DeptID FROM DepartmentNames)`) {
		t.Error("sensitive table read inside a subquery must be flagged")
	}
}

func TestRangeContradiction(t *testing.T) {
	a, _, _ := setup(t)
	meta := &catalog.AuditExprMeta{Name: "a", SensitiveTable: "DepartmentNames", PartitionBy: "DeptID"}
	def, _ := parser.ParseQuery("SELECT * FROM DepartmentNames WHERE DeptID < 10")
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID > 20") {
		t.Error("disjoint ranges should not be flagged")
	}
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID > 5") {
		t.Error("overlapping ranges should be flagged")
	}
	// Touching open bounds are empty: < 10 and >= 10.
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID >= 10") {
		t.Error("touching open/closed bounds with strict < should not be flagged")
	}
}

func TestInListIntersection(t *testing.T) {
	a, _, _ := setup(t)
	meta := &catalog.AuditExprMeta{Name: "a", SensitiveTable: "DepartmentNames", PartitionBy: "DeptID"}
	def, _ := parser.ParseQuery("SELECT * FROM DepartmentNames WHERE DeptID IN (1, 2, 3)")
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID IN (4, 5)") {
		t.Error("disjoint IN lists should not be flagged")
	}
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID IN (3, 4)") {
		t.Error("overlapping IN lists should be flagged")
	}
}

func TestEqualityWithinRange(t *testing.T) {
	a, _, _ := setup(t)
	meta := &catalog.AuditExprMeta{Name: "a", SensitiveTable: "DepartmentNames", PartitionBy: "DeptID"}
	def, _ := parser.ParseQuery("SELECT * FROM DepartmentNames WHERE DeptID BETWEEN 10 AND 20")
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID = 30") {
		t.Error("equality outside range should not be flagged")
	}
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE DeptID = 15") {
		t.Error("equality inside range should be flagged")
	}
}

func TestConservativeOnComplexPredicates(t *testing.T) {
	a, meta, def := setup(t)
	// OR disjunctions are not analyzed: conservative flag.
	if !flagged(t, a, meta, def, `SELECT * FROM DepartmentNames
		WHERE DeptName = 'Oncology' OR DeptID = 1`) {
		t.Error("OR predicates must be flagged conservatively")
	}
	// Literal-on-left comparisons are normalized.
	if flagged(t, a, meta, def, "SELECT * FROM DepartmentNames WHERE 'Oncology' = DeptName") {
		t.Error("flipped comparison should still prove the contradiction")
	}
	// No predicate at all: flagged.
	if !flagged(t, a, meta, def, "SELECT * FROM DepartmentNames") {
		t.Error("predicate-free scan must be flagged")
	}
}
