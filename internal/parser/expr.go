package parser

import (
	"strconv"
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/lexer"
	"auditdb/internal/value"
)

// parseExpr parses a full expression with standard SQL precedence:
// OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < +,- < *,/,% < unary.
func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseOr()
}

// parseExprOrSelect accepts either an expression or a bare SELECT
// (which becomes a scalar subquery); used for IF (...) conditions where
// the paper writes IF (SELECT count(...) > 10 FROM ...).
func (p *parser) parseExprOrSelect() (ast.Expr, error) {
	if p.peekKeyword(lexer.KwSelect) {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.ScalarSubquery{Sub: sub}, nil
	}
	return p.parseExpr()
}

func (p *parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword(lexer.KwOr) {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = p.a.binary(ast.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword(lexer.KwAnd) {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = p.a.binary(ast.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.matchKeyword(lexer.KwNot) {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: '!', X: x}, nil
	}
	return p.parseComparison()
}

// compOf maps an operator token to its comparison AST op.
func compOf(op lexer.OpKind) (ast.BinaryOp, bool) {
	switch op {
	case lexer.OpEq:
		return ast.OpEq, true
	case lexer.OpNe:
		return ast.OpNe, true
	case lexer.OpLt:
		return ast.OpLt, true
	case lexer.OpLe:
		return ast.OpLe, true
	case lexer.OpGt:
		return ast.OpGt, true
	case lexer.OpGe:
		return ast.OpGe, true
	}
	return 0, false
}

func (p *parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.matchKeyword(lexer.KwIs) {
		neg := p.matchKeyword(lexer.KwNot)
		if err := p.expectKeyword(lexer.KwNull); err != nil {
			return nil, err
		}
		return &ast.IsNull{X: left, Negate: neg}, nil
	}
	neg := false
	if p.peekKeyword(lexer.KwNot) {
		// Only treat NOT as infix negation when followed by IN, BETWEEN
		// or LIKE.
		nxt := p.peek2()
		if nxt.kind == lexer.TokKeyword && (nxt.kw == lexer.KwIn || nxt.kw == lexer.KwBetween || nxt.kw == lexer.KwLike) {
			p.next()
			neg = true
		}
	}
	switch {
	case p.matchKeyword(lexer.KwIn):
		return p.parseInTail(left, neg)
	case p.matchKeyword(lexer.KwBetween):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(lexer.KwAnd); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.Between{X: left, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.matchKeyword(lexer.KwLike):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := ast.Expr(p.a.binary(ast.OpLike, left, pat))
		if neg {
			like = &ast.Unary{Op: '!', X: like}
		}
		return like, nil
	}
	if t := p.peek(); t.kind == lexer.TokOp {
		if op, ok := compOf(t.op); ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return p.a.binary(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseInTail(left ast.Expr, neg bool) (ast.Expr, error) {
	if err := p.expectOp(lexer.OpLParen); err != nil {
		return nil, err
	}
	if p.peekKeyword(lexer.KwSelect) {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(lexer.OpRParen); err != nil {
			return nil, err
		}
		return &ast.InSubquery{X: left, Sub: sub, Negate: neg}, nil
	}
	var list []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.matchOp(lexer.OpComma) {
			break
		}
	}
	if err := p.expectOp(lexer.OpRParen); err != nil {
		return nil, err
	}
	return &ast.InList{X: left, List: list, Negate: neg}, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.matchOp(lexer.OpPlus):
			op = ast.OpAdd
		case p.matchOp(lexer.OpMinus):
			op = ast.OpSub
		case p.matchOp(lexer.OpConcat):
			op = ast.OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = p.a.binary(op, left, right)
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.matchOp(lexer.OpStar):
			op = ast.OpMul
		case p.matchOp(lexer.OpSlash):
			op = ast.OpDiv
		case p.matchOp(lexer.OpPercent):
			op = ast.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = p.a.binary(op, left, right)
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.matchOp(lexer.OpMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: '-', X: x}, nil
	}
	p.matchOp(lexer.OpPlus)
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case lexer.TokNumber:
		p.next()
		text := p.text(t)
		if strings.IndexByte(text, '.') >= 0 {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", text)
			}
			return p.a.literal(value.NewFloat(f)), nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", text)
		}
		return p.a.literal(value.NewInt(i)), nil
	case lexer.TokString:
		p.next()
		return p.a.literal(value.NewString(p.strText(t))), nil
	case lexer.TokKeyword:
		switch t.kw {
		case lexer.KwNull:
			p.next()
			return p.a.literal(value.Null), nil
		case lexer.KwTrue:
			p.next()
			return p.a.literal(value.NewBool(true)), nil
		case lexer.KwFalse:
			p.next()
			return p.a.literal(value.NewBool(false)), nil
		case lexer.KwDate:
			p.next()
			lit := p.peek()
			if lit.kind != lexer.TokString {
				return nil, p.errf("expected string literal after DATE")
			}
			p.next()
			d, err := value.ParseDate(p.strText(lit))
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return p.a.literal(d), nil
		case lexer.KwCase:
			return p.parseCase()
		case lexer.KwExists:
			p.next()
			if err := p.expectOp(lexer.OpLParen); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(lexer.OpRParen); err != nil {
				return nil, err
			}
			return &ast.Exists{Sub: sub}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.kw.String())
	case lexer.TokOp:
		if t.op == lexer.OpQuestion {
			p.next()
			ph := &ast.Placeholder{Idx: p.params}
			p.params++
			return ph, nil
		}
		if t.op == lexer.OpLParen {
			p.next()
			if p.peekKeyword(lexer.KwSelect) {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(lexer.OpRParen); err != nil {
					return nil, err
				}
				return &ast.ScalarSubquery{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(lexer.OpRParen); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.op.String())
	case lexer.TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected %s in expression", p.describe(t))
	}
}

func (p *parser) parseIdentExpr() (ast.Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.peekOp(lexer.OpLParen) {
		p.next()
		fc := p.a.funcCall(strings.ToUpper(name))
		if p.matchOp(lexer.OpStar) {
			fc.Star = true
			if err := p.expectOp(lexer.OpRParen); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.matchKeyword(lexer.KwDistinct) {
			fc.Distinct = true
		}
		if !p.peekOp(lexer.OpRParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.matchOp(lexer.OpComma) {
					break
				}
			}
		}
		if err := p.expectOp(lexer.OpRParen); err != nil {
			return nil, err
		}
		return fc, nil
	}
	// Qualified column?
	if p.peekOp(lexer.OpDot) {
		p.next()
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return p.a.columnRef(name, col), nil
	}
	return p.a.columnRef("", name), nil
}

func (p *parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword(lexer.KwCase); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	if !p.peekKeyword(lexer.KwWhen) {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.matchKeyword(lexer.KwWhen) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(lexer.KwThen); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.matchKeyword(lexer.KwElse) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword(lexer.KwEnd); err != nil {
		return nil, err
	}
	return c, nil
}
