package lexer

import (
	"testing"

	"auditdb/internal/value"
)

func normOf(t *testing.T, sql string) *Norm {
	t.Helper()
	n := &Norm{}
	if !Normalize(sql, n) {
		t.Fatalf("Normalize(%q) = false, want true", sql)
	}
	return n
}

func TestNormalizeLiftsWhereLiterals(t *testing.T) {
	n := normOf(t, "select name, ssn from patients where id = 42 and state = 'CA'")
	want := "SELECT name , ssn FROM patients WHERE id = ? AND state = ?"
	if got := string(n.Canonical); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	if len(n.Vals) != 2 || n.NUser != 0 {
		t.Fatalf("slots = %d user = %d, want 2/0", len(n.Vals), n.NUser)
	}
	if n.Vals[0].Int() != 42 || n.Vals[1].Str() != "CA" {
		t.Fatalf("lifted values wrong: %v", n.Vals)
	}
}

func TestNormalizeSharedFingerprint(t *testing.T) {
	a := string(normOf(t, "SELECT name FROM patients WHERE id = 7").Canonical)
	b := string(normOf(t, "select name from patients where id = 9;").Canonical)
	if a != b {
		t.Fatalf("fingerprints differ:\n  %q\n  %q", a, b)
	}
}

// Literal-sensitive positions stay inline: SELECT-list constants name
// output columns, GROUP BY / ORDER BY integers are ordinals, the LIMIT
// operand gates parallelization, and the grammar demands a literal
// after DATE.
func TestNormalizeKeepsSensitiveLiterals(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT 1, name FROM t LIMIT 10", "SELECT 1 , name FROM t LIMIT 10"},
		{"SELECT a FROM t ORDER BY 2 DESC", "SELECT a FROM t ORDER BY 2 DESC"},
		{"SELECT a FROM t GROUP BY 1", "SELECT a FROM t GROUP BY 1"},
		{"SELECT a FROM t WHERE d < DATE '2024-01-02'", "SELECT a FROM t WHERE d < DATE '2024-01-02'"},
		{"SELECT a FROM t WHERE b = TRUE AND c IS NOT NULL", "SELECT a FROM t WHERE b = TRUE AND c IS NOT NULL"},
	}
	for _, c := range cases {
		if got := string(normOf(t, c.sql).Canonical); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}

// Parenthesized clause state: a subquery's WHERE is parameterizable
// even when the subquery sits in the outer SELECT list, and vice versa
// a by-list restores after a paren group.
func TestNormalizeClauseStateStack(t *testing.T) {
	n := normOf(t, "SELECT (SELECT MAX(x) FROM u WHERE y = 5), 3 FROM t WHERE z = 7")
	want := "SELECT ( SELECT MAX ( x ) FROM u WHERE y = ? ) , 3 FROM t WHERE z = ?"
	if got := string(n.Canonical); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	if len(n.Vals) != 2 || n.Vals[0].Int() != 5 || n.Vals[1].Int() != 7 {
		t.Fatalf("lifted values wrong: %v", n.Vals)
	}
}

func TestNormalizeUserPlaceholders(t *testing.T) {
	n := normOf(t, "SELECT a FROM t WHERE b = ? AND c = 10 AND d = ?")
	if n.NUser != 2 || len(n.Vals) != 3 {
		t.Fatalf("user = %d slots = %d, want 2/3", n.NUser, len(n.Vals))
	}
	// Slots interleave in source order: user, lifted, user.
	wantUser := []bool{true, false, true}
	for i, u := range wantUser {
		if n.User[i] != u {
			t.Fatalf("User = %v, want %v", n.User, wantUser)
		}
	}
	if n.Vals[1].Int() != 10 {
		t.Fatalf("lifted slot value = %v, want 10", n.Vals[1])
	}
}

func TestNormalizeStringEscapes(t *testing.T) {
	n := normOf(t, "SELECT a FROM t WHERE nm = 'O''Brien'")
	if len(n.Vals) != 1 || n.Vals[0].Str() != "O'Brien" {
		t.Fatalf("lifted escaped string = %v", n.Vals)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []string{
		"",                         // empty
		"INSERT INTO t VALUES (1)", // not a SELECT
		"EXPLAIN SELECT 1",         // utility wrapper
		"SELECT 1; SELECT 2",       // script
		"BEGIN",                    // tx control
		"SELECT 'unterminated",     // lex error
		"; SELECT 1",               // leading semicolon
	}
	var n Norm
	for _, sql := range cases {
		if Normalize(sql, &n) {
			t.Errorf("Normalize(%q) = true, want false", sql)
		}
	}
}

func TestNormalizeTrailingSemicolon(t *testing.T) {
	a := string(normOf(t, "SELECT a FROM t").Canonical)
	b := string(normOf(t, "SELECT a FROM t ;").Canonical)
	if a != b {
		t.Fatalf("trailing semicolon changed fingerprint: %q vs %q", a, b)
	}
}

func TestNormalizeScratchReuse(t *testing.T) {
	var n Norm
	if !Normalize("SELECT a FROM t WHERE x = 1 AND y = 'q'", &n) {
		t.Fatal("first Normalize failed")
	}
	if !Normalize("SELECT b FROM u WHERE z = 2", &n) {
		t.Fatal("second Normalize failed")
	}
	if got, want := string(n.Canonical), "SELECT b FROM u WHERE z = ?"; got != want {
		t.Fatalf("reused-scratch canonical = %q, want %q", got, want)
	}
	if len(n.Vals) != 1 || n.Vals[0].Int() != 2 {
		t.Fatalf("reused-scratch vals = %v", n.Vals)
	}
}

// The warm normalization path must not allocate: scratch slices are
// reused across calls on one Norm.
func TestNormalizeZeroAllocWarm(t *testing.T) {
	var n Norm
	sql := "SELECT name, ssn FROM patients WHERE id = 42 AND state = 'CA' ORDER BY name LIMIT 5"
	Normalize(sql, &n) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		if !Normalize(sql, &n) {
			t.Fatal("Normalize failed")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Normalize allocates %.1f/op, want 0", allocs)
	}
}

// numberValue must agree exactly with the parser's literal conversion.
func TestNumberValue(t *testing.T) {
	v, ok := numberValue("42")
	if !ok || v.Kind != value.KindInt || v.Int() != 42 {
		t.Fatalf("numberValue(42) = %v %v", v, ok)
	}
	f, ok := numberValue("4.5")
	if !ok || f.Kind != value.KindFloat {
		t.Fatalf("numberValue(4.5) = %v %v", f, ok)
	}
	if _, ok := numberValue("99999999999999999999999999"); ok {
		t.Fatal("overflowing int literal should not normalize")
	}
}
