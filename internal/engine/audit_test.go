package engine

import (
	"strings"
	"testing"

	"auditdb/internal/core"
)

// auditSetup installs the paper's Audit_Alice expression (§II,
// Example 2.1) and a logging SELECT trigger (§II-C).
func auditSetup(t *testing.T) *Engine {
	t.Helper()
	e := newHealthDB(t)
	script := `
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice_Accesses ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("audit setup: %v", err)
	}
	return e
}

func logCount(t *testing.T, e *Engine) int {
	t.Helper()
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Log")
	return int(r.Rows[0][0].Int())
}

func TestSelectTriggerLogsAccess(t *testing.T) {
	e := auditSetup(t)
	e.SetUser("dr_mallory")
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice'")
	r := mustQuery(t, e, "SELECT UserID, PatientID FROM Log")
	if len(r.Rows) != 1 {
		t.Fatalf("log rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "dr_mallory" || r.Rows[0][1].Int() != 1 {
		t.Errorf("log entry = %v", r.Rows[0])
	}
}

func TestSelectTriggerNotFiredWithoutAccess(t *testing.T) {
	e := auditSetup(t)
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Bob'")
	if n := logCount(t, e); n != 0 {
		t.Errorf("log rows = %d, want 0", n)
	}
	// The log-reading query itself must not fire the trigger either.
	mustQuery(t, e, "SELECT COUNT(*) FROM Disease")
	if n := logCount(t, e); n != 0 {
		t.Errorf("log rows = %d after unrelated queries", n)
	}
}

func TestExample12SubqueryAccessDetected(t *testing.T) {
	// Example 1.2: both query forms access Alice's record; the second
	// hides it inside an EXISTS subexpression, so triggering on query
	// output alone would miss it. The audit operator inside the
	// subquery block catches it (Example 3.8(c) placement).
	e := auditSetup(t)

	mustQuery(t, e, `SELECT * FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer'`)
	if n := logCount(t, e); n != 1 {
		t.Fatalf("direct query: log rows = %d, want 1", n)
	}

	mustQuery(t, e, `SELECT 1 FROM Patients WHERE exists
		(SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer')`)
	if n := logCount(t, e); n != 2 {
		t.Errorf("exists query: log rows = %d, want 2", n)
	}
}

func TestAccessedStateCardinalities(t *testing.T) {
	// All-patients audit expression: an SJ query's ACCESSED set under
	// hcn equals exactly the patients in the join result (Theorem 3.7).
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)

	r := mustQuery(t, e, `SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`)
	if r.Accessed == nil {
		t.Fatal("no ACCESSED state")
	}
	if n := r.Accessed.Len("Audit_All"); n != 2 {
		t.Errorf("hcn auditIDs = %d, want 2 (Bob, Carol)", n)
	}

	// The leaf-node heuristic audits every patient that passes the
	// leaf (all 5): false positives relative to the join result.
	e.SetHeuristic(core.LeafNode)
	r = mustQuery(t, e, `SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`)
	if n := r.Accessed.Len("Audit_All"); n != 5 {
		t.Errorf("leaf auditIDs = %d, want 5", n)
	}
}

func TestExample32HighestNodeFalseNegative(t *testing.T) {
	// Example 3.2: Bob is among the two youngest patients and does not
	// have flu. The record flows into the top-2 but not past the
	// post-top-k filter. highest-node placement misses Bob (false
	// negative); hcn places the operator below the top-k and catches
	// him.
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	q := `SELECT Y.PatientID, Y.Name FROM
		(SELECT PatientID, Name FROM Patients ORDER BY Age LIMIT 2) AS Y, Disease D
		WHERE Y.PatientID = D.PatientID AND D.Disease = 'flu'`

	e.SetHeuristic(core.HighestCommutativeNode)
	r := mustQuery(t, e, q)
	hcnIDs := r.Accessed.IDs("Audit_All")
	foundBob := false
	for _, id := range hcnIDs {
		if id.Int() == 2 {
			foundBob = true
		}
	}
	// Bob (PatientID=2) is the youngest; he enters the top-2, so no
	// false negative under hcn... but wait: Bob HAS flu in this DB.
	// Use Dave (29, diabetes): among two youngest (Bob 21, Dave 29),
	// Dave does not have flu, so he is filtered after the top-2.
	foundDave := false
	for _, id := range hcnIDs {
		if id.Int() == 4 {
			foundDave = true
		}
	}
	if !foundBob || !foundDave {
		t.Errorf("hcn must audit both top-2 patients, got %v", hcnIDs)
	}

	e.SetHeuristic(core.HighestNode)
	r = mustQuery(t, e, q)
	hnIDs := r.Accessed.IDs("Audit_All")
	for _, id := range hnIDs {
		if id.Int() == 4 {
			t.Errorf("highest-node should miss Dave (false negative), got %v", hnIDs)
		}
	}
}

func TestExample39HavingFalsePositive(t *testing.T) {
	// Example 3.9: diseases with at least two patients. diabetes has
	// one (Dave); the HAVING clause filters that group, so Dave is NOT
	// accessed — but hcn's operator below the group-by still sees him:
	// a false positive the offline system must clear.
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	r := mustQuery(t, e, `
		SELECT D.Disease, COUNT(*) FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID
		GROUP BY D.Disease HAVING COUNT(*) >= 2`)
	ids := r.Accessed.IDs("Audit_All")
	foundDave := false
	for _, id := range ids {
		if id.Int() == 4 {
			foundDave = true
		}
	}
	if !foundDave {
		t.Errorf("hcn places the audit operator below the group-by, so Dave should appear (false positive); got %v", ids)
	}
}

func TestExample41NoContradictionFolding(t *testing.T) {
	// Example 4.1: the audit probe must never be folded with real
	// predicates. A query for PatientID = 3 with Audit_Alice installed
	// (Alice is 1) must still return its row.
	e := auditSetup(t)
	r := mustQuery(t, e, "SELECT * FROM Patients WHERE PatientID = 3")
	if len(r.Rows) != 1 || r.Rows[0][1].Str() != "Carol" {
		t.Fatalf("instrumentation changed query results: %v", r.Rows)
	}
	if n := logCount(t, e); n != 0 {
		t.Errorf("no access should be logged, got %d", n)
	}
}

func TestInstrumentationPreservesResults(t *testing.T) {
	// Golden invariant: for a battery of queries, instrumented and
	// uninstrumented executions return identical results.
	e := newHealthDB(t)
	queries := []string{
		"SELECT * FROM Patients ORDER BY PatientID",
		"SELECT Name FROM Patients WHERE Age BETWEEN 20 AND 40 ORDER BY Name",
		`SELECT P.Name, D.Disease FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID ORDER BY P.Name, D.Disease`,
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip ORDER BY Zip",
		"SELECT Name FROM Patients ORDER BY Age LIMIT 2",
		"SELECT DISTINCT Disease FROM Disease ORDER BY Disease",
		`SELECT Name FROM Patients P WHERE EXISTS
		 (SELECT 1 FROM Disease D WHERE D.PatientID = P.PatientID) ORDER BY Name`,
		`SELECT Name FROM Patients WHERE PatientID IN
		 (SELECT PatientID FROM Disease WHERE Disease = 'cancer') ORDER BY Name`,
	}
	var plain [][]string
	for _, q := range queries {
		r := mustQuery(t, e, q)
		plain = append(plain, renderRows(r))
	}
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	for _, h := range []core.Heuristic{core.LeafNode, core.HighestCommutativeNode, core.HighestNode} {
		e.SetHeuristic(h)
		for i, q := range queries {
			r := mustQuery(t, e, q)
			got := renderRows(r)
			if strings.Join(got, "\n") != strings.Join(plain[i], "\n") {
				t.Errorf("heuristic %v changed results of %q:\n got %v\nwant %v", h, q, got, plain[i])
			}
		}
	}
}

func renderRows(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.String()
	}
	return out
}

func TestAuditExpressionMaintenance(t *testing.T) {
	e := auditSetup(t)
	ae, ok := e.Registry().Get("Audit_Alice")
	if !ok {
		t.Fatal("expression missing")
	}
	if ae.Cardinality() != 1 {
		t.Fatalf("initial cardinality = %d", ae.Cardinality())
	}
	// A second Alice arrives: the materialized ID view must follow.
	mustExec(t, e, "INSERT INTO Patients VALUES (7, 'Alice', 28, '10001')")
	if ae.Cardinality() != 2 {
		t.Errorf("cardinality after insert = %d", ae.Cardinality())
	}
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice'")
	if n := logCount(t, e); n != 2 {
		t.Errorf("log rows = %d, want 2 (both Alices)", n)
	}
	// Renaming the new Alice removes her from the view.
	mustExec(t, e, "UPDATE Patients SET Name = 'Alicia' WHERE PatientID = 7")
	if ae.Cardinality() != 1 {
		t.Errorf("cardinality after update = %d", ae.Cardinality())
	}
	mustExec(t, e, "DELETE FROM Patients WHERE PatientID = 1")
	if ae.Cardinality() != 0 {
		t.Errorf("cardinality after delete = %d", ae.Cardinality())
	}
}

func TestJoinAuditExpression(t *testing.T) {
	// Example 2.2: cancer patients are sensitive, defined via a join.
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_Cancer AS
			SELECT P.* FROM Patients P, Disease D
			WHERE P.PatientID = D.PatientID AND Disease = 'cancer'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	ae, _ := e.Registry().Get("Audit_Cancer")
	if ae.Cardinality() != 2 {
		t.Fatalf("cancer patients = %d, want 2", ae.Cardinality())
	}
	e.SetAuditAll(true)
	r := mustQuery(t, e, "SELECT * FROM Patients WHERE Zip = '10001'")
	if n := r.Accessed.Len("Audit_Cancer"); n != 1 {
		t.Errorf("accessed = %d, want 1 (Erin)", n)
	}
	// Join-defined views refresh on DML against either referenced
	// table.
	mustExec(t, e, "INSERT INTO Disease VALUES (2, 'cancer')")
	if ae.Cardinality() != 3 {
		t.Errorf("cardinality after disease insert = %d", ae.Cardinality())
	}
}

func TestLogCancerDeptAction(t *testing.T) {
	// §II-C: log the departments of accessed cancer patients.
	e := newHealthDB(t)
	script := `
		CREATE TABLE Departments (PatientID INT, DeptID INT);
		INSERT INTO Departments VALUES (1, 100), (5, 200), (2, 100);
		CREATE TABLE DeptLog (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), DeptID INT);
		CREATE AUDIT EXPRESSION Audit_Cancer AS
			SELECT P.* FROM Patients P, Disease D
			WHERE P.PatientID = D.PatientID AND Disease = 'cancer'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Cancer_Dept ON ACCESS TO Audit_Cancer AS
			INSERT INTO DeptLog
			SELECT DISTINCT now(), userid(), sqltext(), D.DeptID
			FROM ACCESSED A, Departments D
			WHERE A.PatientID = D.PatientID;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice' OR Name = 'Erin'")
	r := mustQuery(t, e, "SELECT DeptID FROM DeptLog ORDER BY DeptID")
	if len(r.Rows) != 2 || r.Rows[0][0].Int() != 100 || r.Rows[1][0].Int() != 200 {
		t.Errorf("dept log = %v", r.Rows)
	}
}

func TestNotifyCascade(t *testing.T) {
	// §II-C: a SELECT trigger writes the log; an INSERT trigger on the
	// log notifies when a user accesses too many patients.
	e := auditSetup(t)
	var notes []string
	e.OnNotify(func(m string) { notes = append(notes, m) })
	mustExec(t, e, `CREATE TRIGGER NotifyTrig ON Log AFTER INSERT AS
		IF (SELECT COUNT(DISTINCT PatientID) >= 1 FROM Log WHERE UserID = NEW.UserID)
		NOTIFY 'excessive access'`)
	e.SetUser("dr_mallory")
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice'")
	if len(notes) != 1 || notes[0] != "excessive access" {
		t.Errorf("notifications = %v", notes)
	}
}

func TestMultipleAuditExpressionsSimultaneously(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE AUDIT EXPRESSION Audit_Seniors AS
			SELECT * FROM Patients WHERE Age >= 60
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	r := mustQuery(t, e, "SELECT * FROM Patients")
	if r.Accessed.Len("Audit_Alice") != 1 {
		t.Errorf("alice accessed = %d", r.Accessed.Len("Audit_Alice"))
	}
	if r.Accessed.Len("Audit_Seniors") != 1 {
		t.Errorf("seniors accessed = %d", r.Accessed.Len("Audit_Seniors"))
	}
	if exprs := r.Accessed.Expressions(); len(exprs) != 2 {
		t.Errorf("expressions = %v", exprs)
	}
}

func TestDropProtection(t *testing.T) {
	e := auditSetup(t)
	if _, err := e.Exec("DROP TABLE Patients"); err == nil {
		t.Error("dropping a sensitive table should fail")
	}
	if _, err := e.Exec("DROP AUDIT EXPRESSION Audit_Alice"); err == nil {
		t.Error("dropping an audit expression with triggers should fail")
	}
	mustExec(t, e, "DROP TRIGGER Log_Alice_Accesses")
	mustExec(t, e, "DROP AUDIT EXPRESSION Audit_Alice")
}

func TestExplainShowsAuditOperator(t *testing.T) {
	e := auditSetup(t)
	s, err := e.Explain("SELECT * FROM Patients WHERE Age > 30", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Audit(Audit_Alice") {
		t.Errorf("explain missing audit operator:\n%s", s)
	}
	s, err = e.Explain("SELECT * FROM Patients WHERE Age > 30", false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "Audit(") {
		t.Errorf("uninstrumented explain has audit operator:\n%s", s)
	}
}
