package exec

import (
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// predFn is a compiled row predicate. It returns the three-valued truth
// of the predicate on row, or handled=false when the row's runtime
// value kinds fall outside the compiled fast path and the caller must
// use the generic Expr.Eval instead. Compiled predicates never error.
type predFn func(row value.Row) (t value.Tri, handled bool)

// compilePred translates the common pushed-predicate shapes — an
// integer column compared to an integer constant, and conjunctions of
// those — into closures free of interface dispatch and Value boxing.
// It returns nil for unsupported shapes. The fast path only claims a
// row (handled=true) when the runtime kinds match what was compiled,
// so results are bit-identical to the interpreter: integer/integer
// comparison is exactly value.Compare's both-int branch, and a NULL
// column value yields Unknown exactly as CompareSQL would.
//
// Constant operands (literals, prepared-statement parameters, outer
// references) are evaluated once at compile time; openScan runs per
// plan execution, so a correlated outer value is fixed for the
// lifetime of the compiled closure.
func compilePred(e plan.Expr, ctx *Ctx) predFn {
	switch x := e.(type) {
	case *plan.And:
		l := compilePred(x.L, ctx)
		r := compilePred(x.R, ctx)
		if l == nil || r == nil {
			return nil
		}
		return func(row value.Row) (value.Tri, bool) {
			lt, ok := l(row)
			if !ok {
				return value.Unknown, false
			}
			if lt == value.False {
				return value.False, true // And(False, x) = False for all x
			}
			rt, ok := r(row)
			if !ok {
				return value.Unknown, false
			}
			return lt.And(rt), true
		}
	case *plan.Cmp:
		return compileCmp(x, ctx)
	}
	return nil
}

func compileCmp(e *plan.Cmp, ctx *Ctx) predFn {
	col, okL := e.L.(*plan.Col)
	op := e.Op
	var cv value.Value
	if okL {
		v, ok := constValue(e.R, ctx)
		if !ok {
			return nil
		}
		cv = v
	} else {
		c, okR := e.R.(*plan.Col)
		if !okR {
			return nil
		}
		v, ok := constValue(e.L, ctx)
		if !ok {
			return nil
		}
		col, cv = c, v
		op = flipCmp(op) // const <op> col  ≡  col <flip(op)> const
	}
	if cv.Kind != value.KindInt {
		return nil
	}
	idx, c := col.Idx, cv.I
	return func(row value.Row) (value.Tri, bool) {
		if idx >= len(row) {
			return value.Unknown, false
		}
		v := row[idx]
		if v.Kind == value.KindNull {
			return value.Unknown, true
		}
		if v.Kind != value.KindInt {
			return value.Unknown, false
		}
		var b bool
		switch op {
		case plan.CmpEq:
			b = v.I == c
		case plan.CmpNe:
			b = v.I != c
		case plan.CmpLt:
			b = v.I < c
		case plan.CmpLe:
			b = v.I <= c
		case plan.CmpGt:
			b = v.I > c
		case plan.CmpGe:
			b = v.I >= c
		}
		return value.TriOf(b), true
	}
}

func flipCmp(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.CmpLt:
		return plan.CmpGt
	case plan.CmpLe:
		return plan.CmpGe
	case plan.CmpGt:
		return plan.CmpLt
	case plan.CmpGe:
		return plan.CmpLe
	}
	return op // Eq and Ne are symmetric
}
