package opt

import (
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// EstimateFn supplies the planner's input-size estimate for a stored
// table (the engine passes current table cardinality). Parallelism is
// gated on it: small inputs never pay worker startup and exchange
// costs.
type EstimateFn func(table string) int64

// Parallelize rewrites a plan for morsel-driven parallel execution
// with the given worker budget: pipeline fragments whose driving scan
// is big enough are marked parallel and placed under a Gather
// exchange, and qualifying aggregates switch to two-phase execution.
// The rewrite is correctness-first:
//
//   - Nothing below a Limit is parallelized. The serial executor's
//     bounded-work property (a LIMIT stops scanning — and stops audit
//     probes observing — once satisfied) depends on row arrival order,
//     which an exchange does not preserve; keeping those subtrees
//     serial keeps ACCESSED states identical to serial execution.
//   - Aggregates with order-sensitive folding (SUM/AVG over arguments
//     not provably integer) keep fully serial inputs, so float
//     accumulation order — and therefore the result bytes — cannot
//     depend on the worker count. Two-phase execution additionally
//     excludes DISTINCT aggregates, whose per-worker seen-sets do not
//     merge into correct counts.
//   - Fragments are subquery-free: subplan execution shares mutable
//     evaluation state that must stay single-threaded.
//
// Sort and Aggregate are pipeline breakers that consume their input
// entirely regardless of operators above them, so both reset the
// Limit restriction for their subtrees. Row order is only guaranteed
// above an explicit Sort (DESIGN.md §10).
func Parallelize(root plan.Node, est EstimateFn, workers, minRows int) plan.Node {
	if workers < 2 || est == nil {
		return root
	}
	p := &parallelizer{est: est, workers: workers, minRows: int64(minRows)}
	return p.rewrite(root, false)
}

type parallelizer struct {
	est     EstimateFn
	workers int
	minRows int64
}

// rewrite walks the tree top-down. serial=true means "no exchange may
// be introduced at or below this point" — set under Limit (bounded-
// work semantics) and under order-sensitive aggregates (result
// determinism); pipeline breakers reset it.
func (p *parallelizer) rewrite(n plan.Node, serial bool) plan.Node {
	if !serial && p.fragmentOK(n) {
		if p.big(n) {
			markSpine(n)
			return &plan.Gather{Child: n, Workers: p.workers}
		}
		// A well-shaped but small fragment stays serial as-is; its
		// interior is exactly the operators fragmentOK inspected, so
		// there is nothing further down to rewrite.
		return n
	}
	switch x := n.(type) {
	case *plan.Limit:
		x.Child = p.rewrite(x.Child, true)
		return x
	case *plan.Sort:
		x.Child = p.rewrite(x.Child, false)
		return x
	case *plan.Distinct:
		x.Child = p.rewrite(x.Child, serial)
		return x
	case *plan.Aggregate:
		// The aggregate consumes its whole child no matter what sits
		// above it, so the incoming serial flag does not constrain the
		// subtree: emission order is sorted-by-key on every path, which
		// keeps Limit-over-Aggregate deterministic.
		if p.twoPhaseOK(x) && p.fragmentOK(x.Child) && p.big(x.Child) {
			markSpine(x.Child)
			x.Parallel = true
			return x
		}
		x.Child = p.rewrite(x.Child, !p.orderInsensitive(x))
		return x
	case *plan.Join:
		x.Left = p.rewrite(x.Left, serial)
		x.Right = p.rewrite(x.Right, serial)
		return x
	case *plan.Filter:
		x.Child = p.rewrite(x.Child, serial)
		return x
	case *plan.Project:
		x.Child = p.rewrite(x.Child, serial)
		return x
	case *plan.Audit:
		x.Child = p.rewrite(x.Child, serial)
		return x
	case *plan.Gather:
		// Already parallelized (defensive: cached or re-optimized plans
		// are never rewritten twice).
		return x
	default:
		return n
	}
}

// fragmentOK reports whether n's subtree is a shape the parallel
// fragment builder can replicate per worker: a spine of Scan / Filter
// / Project / Audit / equi-Join (recursing into the probe side only —
// the build side runs once, shared), with every worker-evaluated
// expression subquery-free.
func (p *parallelizer) fragmentOK(n plan.Node) bool {
	switch x := n.(type) {
	case *plan.Scan:
		return exprSafe(x.Pushed)
	case *plan.Filter:
		return exprSafe(x.Pred) && p.fragmentOK(x.Child)
	case *plan.Project:
		return exprsSafe(x.Exprs) && p.fragmentOK(x.Child)
	case *plan.Audit:
		return p.fragmentOK(x.Child)
	case *plan.Join:
		if len(x.LeftKeys) == 0 {
			return false
		}
		if x.Kind != plan.JoinInner && x.Kind != plan.JoinLeft {
			return false
		}
		return exprsSafe(x.LeftKeys) && exprsSafe(x.RightKeys) &&
			exprSafe(x.Residual) && p.fragmentOK(x.Left)
	default:
		return false
	}
}

// big estimates the fragment's driving input — the left-spine scan —
// against the parallelism threshold.
func (p *parallelizer) big(n plan.Node) bool {
	switch x := n.(type) {
	case *plan.Scan:
		return p.est(x.Table) >= p.minRows
	case *plan.Filter:
		return p.big(x.Child)
	case *plan.Project:
		return p.big(x.Child)
	case *plan.Audit:
		return p.big(x.Child)
	case *plan.Join:
		return p.big(x.Left)
	}
	return false
}

// markSpine flags the fragment's scans and joins for parallel
// execution so EXPLAIN shows them and the executor builds shared
// morsel sources and partitioned hash tables for them.
func markSpine(n plan.Node) {
	switch x := n.(type) {
	case *plan.Scan:
		x.Parallel = true
	case *plan.Filter:
		markSpine(x.Child)
	case *plan.Project:
		markSpine(x.Child)
	case *plan.Audit:
		markSpine(x.Child)
	case *plan.Join:
		x.Parallel = true
		markSpine(x.Left)
	}
}

// twoPhaseOK reports whether the aggregate can run as per-worker
// partials merged at close: every fold must be order-free, DISTINCT is
// excluded (seen-sets do not merge), and the worker-evaluated group-by
// and argument expressions must be subquery-free.
func (p *parallelizer) twoPhaseOK(a *plan.Aggregate) bool {
	if !p.orderInsensitive(a) {
		return false
	}
	for _, s := range a.Aggs {
		if s.Distinct {
			return false
		}
		if s.Arg != nil && !exprSafe(s.Arg) {
			return false
		}
	}
	return exprsSafe(a.GroupBy)
}

// orderInsensitive reports whether every fold is independent of input
// arrival order. COUNT/MIN/MAX always are; SUM and AVG only when the
// argument is a bare column of provably integer kind — float addition
// does not commute bitwise, so a float sum over an exchange would vary
// with the morsel interleaving.
func (p *parallelizer) orderInsensitive(a *plan.Aggregate) bool {
	sch := a.Child.Schema()
	for _, s := range a.Aggs {
		switch s.Func {
		case plan.AggCount, plan.AggMin, plan.AggMax:
			// order-free
		case plan.AggSum, plan.AggAvg:
			col, ok := s.Arg.(*plan.Col)
			if !ok || col.Idx < 0 || col.Idx >= len(sch) {
				return false
			}
			if k := sch[col.Idx].Kind; k != value.KindInt && k != value.KindBool {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// exprSafe reports that e (possibly nil) contains no subquery.
func exprSafe(e plan.Expr) bool {
	if e == nil {
		return true
	}
	safe := true
	plan.WalkExprTree(e, func(x plan.Expr) {
		if _, bad := x.(*plan.Subquery); bad {
			safe = false
		}
	})
	return safe
}

func exprsSafe(es []plan.Expr) bool {
	for _, e := range es {
		if !exprSafe(e) {
			return false
		}
	}
	return true
}
