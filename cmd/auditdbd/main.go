// Command auditdbd serves an audited database over TCP. Each
// connection is an independent session: the user it sets with the
// protocol's "set user" op is the identity SELECT triggers record for
// that connection's queries, so concurrent users are attributed
// correctly — the paper's multi-user auditing setting.
//
// Two wire protocols share one transport: line-delimited JSON (see
// internal/wire; the Go client lives in internal/client) on -addr, and
// the PostgreSQL v3 wire protocol (see internal/pgwire) on -pg-addr,
// so psql and any libpq/pgx/JDBC client can connect. Example:
//
//	auditdbd -addr 127.0.0.1:5433 -pg-addr 127.0.0.1:5432 -demo -metrics-addr 127.0.0.1:9090
//	psql 'host=127.0.0.1 port=5432 user=dr_mallory sslmode=disable'
//	printf '%s\n' \
//	    '{"op":"set","key":"user","value":"dr_mallory"}' \
//	    '{"op":"query","sql":"SELECT * FROM Patients WHERE Name = '\''Alice'\''"}' \
//	    '{"op":"query","sql":"SELECT * FROM Log"}' | nc 127.0.0.1 5433
//	curl -s http://127.0.0.1:9090/metrics
//
// Logs are structured (log/slog): text or JSON via -log-format, with
// connection lifecycle, trigger firings, and a -slow-query threshold
// log. SIGINT/SIGTERM trigger a graceful shutdown: in-flight
// statements finish and their responses are delivered before
// connections close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"auditdb"
	"auditdb/internal/engine"
	"auditdb/internal/pgwire"
	"auditdb/internal/server"
	"auditdb/internal/triage"
	"auditdb/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:5433", "TCP listen address for the line-JSON protocol")
		pgAddr       = flag.String("pg-addr", "", "TCP listen address for the PostgreSQL wire protocol (empty = disabled)")
		maxConns     = flag.Int("max-conns", 256, "maximum concurrent connections (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-statement execution limit (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 10*time.Minute, "close connections idle this long (0 = none)")
		gracePeriod  = flag.Duration("grace", 15*time.Second, "shutdown drain deadline")
		demo         = flag.Bool("demo", false, "preload the paper's healthcare example")
		initScript   = flag.String("init", "", "SQL script to execute before serving")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP listen address for /metrics and /healthz (empty = disabled)")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowQuery    = flag.Duration("slow-query", 0, "log SELECTs with end-to-end latency at or above this (0 = disabled)")
		dataDir      = flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = in-memory only)")
		syncMode     = flag.String("sync", "interval", "WAL fsync policy: always, interval, or off")
		syncInterval = flag.Duration("sync-interval", 50*time.Millisecond, "fsync period under -sync interval")
		ckptInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint cadence (0 = only on shutdown)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "default per-query worker budget for parallel execution (1 = serial; sessions override with SET workers)")
		traceSample  = flag.Int("trace-sample", 0, "capture a full span trace for every nth statement (0 = off; sessions force capture with SET trace = on)")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on -metrics-addr")
		triageWork   = flag.Int("triage-workers", 2, "background offline-verification workers draining the audit triage queue (0 = triage disabled)")
		triageQueue  = flag.Int("triage-queue", 256, "bound on the risk-scored triage queue; overflow evicts the lowest-scored event")
		triageBudget = flag.Int("triage-budget", 60, "exact offline audits allowed per minute; excess events get skipped-budget verdicts (0 = unlimited)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "auditdbd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "auditdbd: bad -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	eng := engine.New()
	eng.SetSlowQueryThreshold(*slowQuery)
	eng.SetDefaultWorkers(*workers)
	eng.SetTraceSampling(*traceSample)

	// Durability: recover from the data directory, then attach the WAL
	// so everything after this point — including -demo/-init — is
	// logged. Recovered state means the seed scripts already ran on a
	// previous boot; re-running them would double-apply.
	fresh := true
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*syncMode)
		if err != nil {
			logger.Error("bad -sync", "err", err)
			os.Exit(2)
		}
		start := time.Now()
		m, rec, err := wal.Open(*dataDir, wal.Options{
			Sync:         policy,
			SyncInterval: *syncInterval,
			Metrics:      wal.NewMetrics(eng.Metrics()),
		})
		if err != nil {
			logger.Error("opening data dir failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		if err := eng.Recover(rec); err != nil {
			logger.Error("recovery failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		eng.AttachWAL(m)
		fresh = rec.WasFresh()
		logger.Info("recovered from data dir",
			"dir", *dataDir,
			"snapshot", rec.HasSnapshot,
			"replayed_commits", len(rec.Commits),
			"audit_seq", rec.AuditSeq,
			"repaired_torn_tail", rec.Repaired,
			"sync", policy.String(),
			"took", time.Since(start))
	}

	if *demo && !fresh {
		logger.Info("skipping -demo: data dir holds recovered state")
	}
	if *demo && fresh {
		if _, err := eng.ExecScript(auditdb.HealthcareDemo); err != nil {
			logger.Error("loading demo failed", "err", err)
			os.Exit(1)
		}
		logger.Info("loaded healthcare demo",
			"audit_expression", "Audit_Alice", "trigger", "Log_Alice")
	}
	if *initScript != "" && !fresh {
		logger.Info("skipping -init: data dir holds recovered state", "path", *initScript)
	}
	if *initScript != "" && fresh {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			logger.Error("reading init script failed", "path", *initScript, "err", err)
			os.Exit(1)
		}
		if _, err := eng.ExecScript(string(script)); err != nil {
			logger.Error("init script failed", "path", *initScript, "err", err)
			os.Exit(1)
		}
		logger.Info("executed init script", "path", *initScript)
	}

	// Budgeted audit triage: risk-score every trigger firing and verify
	// the highest-scored ones offline in the background. Verdicts are
	// signed records in the hash-chained audit stream, so triage needs
	// the WAL; without -data-dir there is nowhere to write them.
	if *triageWork > 0 {
		if eng.WAL() == nil {
			logger.Info("triage disabled: verdicts need -data-dir for the audit stream")
		} else {
			eng.ConfigureTriage(triage.Config{
				Workers:      *triageWork,
				QueueBound:   *triageQueue,
				BudgetPerMin: *triageBudget,
			})
			logger.Info("audit triage running",
				"workers", *triageWork, "queue", *triageQueue, "budget_per_min", *triageBudget)
		}
	}

	srv := server.New(eng, server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		QueryTimeout: *queryTimeout,
		IdleTimeout:  *idleTimeout,
		Logger:       logger,
	})
	if *pgAddr != "" {
		if err := srv.AddListener(*pgAddr, pgwire.New(srv.Metrics())); err != nil {
			logger.Error("adding pg listener failed", "err", err)
			os.Exit(1)
		}
	}
	if err := srv.Start(); err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}
	// The address stays followed by a space inside the message: startup
	// scripts (and the smoke test) extract it as the field after
	// "listening on ".
	logger.Info(fmt.Sprintf("auditdbd listening on %s (max-conns=%d query-timeout=%s)",
		srv.Addr(), *maxConns, *queryTimeout))
	if *pgAddr != "" {
		// Same sed-friendly shape as above, for scripts that need the
		// bound pg port: the field after "pg listening on ".
		logger.Info(fmt.Sprintf("auditdbd pg listening on %s (protocol=postgresql)",
			srv.ProtoAddr("pg")))
	}

	if *metricsAddr != "" {
		extra := map[string]http.Handler{
			"/traces": eng.TraceRing().Handler(),
		}
		endpoints := "/metrics /healthz /traces"
		if *pprofOn {
			extra["/debug/pprof/"] = http.HandlerFunc(pprof.Index)
			extra["/debug/pprof/cmdline"] = http.HandlerFunc(pprof.Cmdline)
			extra["/debug/pprof/profile"] = http.HandlerFunc(pprof.Profile)
			extra["/debug/pprof/symbol"] = http.HandlerFunc(pprof.Symbol)
			extra["/debug/pprof/trace"] = http.HandlerFunc(pprof.Trace)
			endpoints += " /debug/pprof/"
		}
		ms, err := srv.Metrics().ListenAndServeWith(*metricsAddr, extra)
		if err != nil {
			logger.Error("metrics listener failed", "err", err)
			os.Exit(1)
		}
		defer ms.Close()
		logger.Info("metrics listening", "addr", ms.Addr().String(),
			"endpoints", endpoints)
	}

	// Periodic checkpoints bound recovery time and data-WAL growth.
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	if eng.WAL() != nil && *ckptInterval > 0 {
		go func() {
			defer close(ckptDone)
			ticker := time.NewTicker(*ckptInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					start := time.Now()
					if err := eng.Checkpoint(); err != nil {
						logger.Error("periodic checkpoint failed", "err", err)
					} else {
						logger.Info("checkpoint complete", "took", time.Since(start))
					}
				case <-ckptStop:
					return
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logger.Info("draining connections", "signal", sig.String(), "deadline", *gracePeriod)
	ctx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	// Drain the triage backlog before the final checkpoint so queued
	// verdicts land in the audit stream; past the grace deadline the
	// in-flight audits are cancelled and the rest are abandoned.
	eng.StopTriage(ctx)
	if eng.WAL() != nil {
		close(ckptStop)
		<-ckptDone
		// A clean shutdown leaves one snapshot and an empty data WAL, so
		// the next boot recovers from the checkpoint alone.
		if err := eng.Checkpoint(); err != nil {
			logger.Error("shutdown checkpoint failed", "err", err)
		}
		if err := eng.CloseWAL(); err != nil {
			logger.Error("closing wal failed", "err", err)
		}
	}
	for k, v := range srv.Stats() {
		fmt.Printf("  %-22s %d\n", k, v)
	}
	logger.Info("auditdbd stopped cleanly")
}
