package triage

import (
	"context"
	"sync"
	"time"
)

// verdictRingSize bounds the in-memory tail of recent verdicts that
// SHOW AUDIT VERDICTS reports; the authoritative record is the
// hash-chained audit stream.
const verdictRingSize = 256

// Config sizes the service. Workers <= 0 disables background
// verification entirely: the engine constructs a disabled service by
// default and the daemon turns it on, so embedded engines pay nothing.
type Config struct {
	Workers      int // background verification goroutines
	QueueBound   int // priority-queue capacity (default 256)
	BudgetPerMin int // exact verifications per minute; <= 0 = unlimited
}

// Result is what a VerifyFunc produced for one event: the chain
// sequence of the verdict record it appended, the outcome name, and
// what the offline auditor found.
type Result struct {
	ChainSeq   uint64
	Outcome    string // "confirmed", "refuted", "skipped-budget"
	Suspicious int    // candidate rows the offline auditor flagged
}

// VerifyFunc runs the exact offline audit for ev and appends the
// signed verdict record. budgeted=false means the per-minute budget is
// exhausted: the callee must skip the expensive audit and append a
// "skipped-budget" verdict instead, keeping the drop accounting exact.
// ctx is cancelled at drain/shutdown; an error means no verdict was
// written and the event is counted failed.
type VerifyFunc func(ctx context.Context, ev Event, budgeted bool) (Result, error)

// VerdictRec is one recent verdict, held in a fixed ring for
// SHOW AUDIT VERDICTS.
type VerdictRec struct {
	ChainSeq     uint64
	AuditSeq     uint64
	Outcome      string
	Score        float64
	User         string
	Expr         string
	QID          uint64
	Suspicious   int
	ElapsedNanos int64
}

// Stats is a consistent snapshot of the service's accounting. The
// invariant Enqueued == Verdicts + Dropped + Failed + Pending holds at
// every instant (Pending counts resident and in-flight events).
type Stats struct {
	Enqueued uint64
	Dropped  uint64
	Verdicts uint64
	Failed   uint64
	Pending  int
	Depth    int
	Workers  int
}

// Service owns the bounded priority queue and the verification pool.
type Service struct {
	cfg     Config
	scorer  Scorer
	verify  VerifyFunc
	metrics *Metrics

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	q       *queue
	started bool
	stopped bool
	enqSeq  uint64

	enqueued uint64
	dropped  uint64
	verdicts uint64
	failed   uint64
	inflight int

	budgetMinute int64
	budgetUsed   int

	ring     []VerdictRec
	ringNext int
	ringLen  int
}

// NewService builds a service; Start launches the workers. scorer nil
// selects the default RiskModel; metrics nil runs unobserved.
func NewService(cfg Config, scorer Scorer, verify VerifyFunc, m *Metrics) *Service {
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 256
	}
	if scorer == nil {
		scorer = NewRiskModel()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		scorer:  scorer,
		verify:  verify,
		metrics: m,
		ctx:     ctx,
		cancel:  cancel,
		q:       newQueue(cfg.QueueBound),
		ring:    make([]VerdictRec, verdictRingSize),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Enabled reports whether background verification workers exist.
func (s *Service) Enabled() bool { return s != nil && s.cfg.Workers > 0 }

// Config returns the sizing the service was built with.
func (s *Service) Config() Config { return s.cfg }

// Start launches the worker pool. Idempotent; a no-op when disabled.
func (s *Service) Start() {
	if !s.Enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Score runs the risk model. Safe on the statement hot path: the
// default model does not allocate once the user has history.
func (s *Service) Score(user string, priority, cardinality int, unixNano int64) float64 {
	return s.scorer.Score(user, priority, cardinality, unixNano)
}

// Enqueue admits a scored event, evicting the lowest-scored resident
// when the queue is full. Every admission attempt is counted; every
// eviction or rejection increments the drop counter, so the
// accounting identity never skews under overload.
func (s *Service) Enqueue(ev Event) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.enqSeq++
	ev.Order = s.enqSeq
	s.enqueued++
	_, wasDropped := s.q.push(ev)
	if wasDropped {
		s.dropped++
	}
	depth := s.q.len()
	s.mu.Unlock()

	s.metrics.incEnqueued(ev.Score)
	if wasDropped {
		s.metrics.incDropped()
	}
	s.metrics.setDepth(depth)
	s.cond.Signal()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.q.len() == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.ctx.Err() != nil || s.q.len() == 0 {
			// stopped with an empty queue, or force-cancelled: any
			// residents stay pending and are reported as such.
			s.mu.Unlock()
			return
		}
		ev, _ := s.q.popMax()
		s.inflight++
		budgeted := s.takeBudgetLocked(time.Now().UnixNano())
		depth := s.q.len()
		s.mu.Unlock()
		s.metrics.setDepth(depth)

		start := time.Now()
		res, err := s.verify(s.ctx, ev, budgeted)
		elapsed := time.Since(start)

		s.mu.Lock()
		s.inflight--
		if err != nil {
			s.failed++
		} else {
			s.verdicts++
			s.pushRingLocked(VerdictRec{
				ChainSeq:     res.ChainSeq,
				AuditSeq:     ev.AuditSeq,
				Outcome:      res.Outcome,
				Score:        ev.Score,
				User:         ev.User,
				Expr:         ev.Expr,
				QID:          ev.QID,
				Suspicious:   res.Suspicious,
				ElapsedNanos: elapsed.Nanoseconds(),
			})
		}
		s.mu.Unlock()
		if err != nil {
			s.metrics.incFailed()
		} else {
			s.metrics.incVerdict(res.Outcome)
			s.metrics.observeVerify(elapsed)
		}
	}
}

// takeBudgetLocked consumes one verification from the fixed
// one-minute window. Caller holds s.mu.
func (s *Service) takeBudgetLocked(nowNano int64) bool {
	if s.cfg.BudgetPerMin <= 0 {
		return true
	}
	minute := nowNano / int64(time.Minute)
	if minute != s.budgetMinute {
		s.budgetMinute = minute
		s.budgetUsed = 0
	}
	if s.budgetUsed >= s.cfg.BudgetPerMin {
		return false
	}
	s.budgetUsed++
	return true
}

func (s *Service) pushRingLocked(v VerdictRec) {
	s.ring[s.ringNext] = v
	s.ringNext = (s.ringNext + 1) % len(s.ring)
	if s.ringLen < len(s.ring) {
		s.ringLen++
	}
}

// Snapshot returns the resident queue, highest score first.
func (s *Service) Snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.snapshot()
}

// Verdicts returns the recent-verdict ring, newest first.
func (s *Service) Verdicts() []VerdictRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VerdictRec, 0, s.ringLen)
	for i := 0; i < s.ringLen; i++ {
		idx := (s.ringNext - 1 - i + len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx])
	}
	return out
}

// Stats returns a consistent accounting snapshot.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Enqueued: s.enqueued,
		Dropped:  s.dropped,
		Verdicts: s.verdicts,
		Failed:   s.failed,
		Pending:  s.q.len() + s.inflight,
		Depth:    s.q.len(),
		Workers:  s.cfg.Workers,
	}
}

// Quiesce blocks until the queue is empty and no verification is in
// flight, or ctx expires. Test and drain helper.
func (s *Service) Quiesce(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.q.len() == 0 && s.inflight == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Stop drains and shuts the pool down: no new admissions, workers
// finish the backlog while ctx lasts, and when ctx expires in-flight
// offline audits are cancelled mid-scan (the auditor checks its
// context between candidate deletion tests). Always returns with the
// pool stopped.
func (s *Service) Stop(ctx context.Context) {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		s.cond.Broadcast()
		<-done
	}
	s.cancel()
}
