package auditdb

import (
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"auditdb/internal/engine"
	"auditdb/internal/tpch"
	"auditdb/internal/value"
)

// workerMatrix returns the worker counts the determinism suite runs
// at. CI sets WORKERS to pin one point of the matrix (e.g. WORKERS=4);
// unset, the suite sweeps 1, 2 and 8.
func workerMatrix(t *testing.T) []int {
	t.Helper()
	if env := os.Getenv("WORKERS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad WORKERS=%q", env)
		}
		return []int{n}
	}
	return []int{1, 2, 8}
}

func canonical(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b []byte
		for _, v := range r {
			b = value.EncodeKey(b, v)
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func accessedKeys(r *Result, expr string) []string {
	var out []string
	for _, v := range r.AccessedIDs(expr) {
		out = append(out, value.KeyOf(v))
	}
	return out
}

// TestHealthcareDeterminismAcrossWorkers: the paper's §II demo must
// produce identical result sets and identical ACCESSED id-sets at
// every worker count, including explicit ORDER BY row order.
func TestHealthcareDeterminismAcrossWorkers(t *testing.T) {
	queries := []struct {
		sql     string
		ordered bool
	}{
		{"SELECT * FROM Patients", false},
		{"SELECT Name, Age FROM Patients WHERE Zip = '48109'", false},
		{"SELECT p.Name, d.Disease FROM Patients p, Disease d WHERE p.PatientID = d.PatientID", false},
		{"SELECT Zip, COUNT(*), MIN(Age), MAX(Age) FROM Patients GROUP BY Zip", false},
		{"SELECT Name FROM Patients ORDER BY Age DESC", true},
	}

	load := func(workers int) *DB {
		db := Open()
		if _, err := db.ExecScript(HealthcareDemo); err != nil {
			t.Fatal(err)
		}
		if workers > 0 {
			db.Engine().SetDefaultWorkers(workers)
			db.Engine().SetParallelMinRows(1)
		}
		return db
	}
	serial := load(0)
	for _, workers := range workerMatrix(t) {
		par := load(workers)
		for _, q := range queries {
			rs, err := serial.Query(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.Query(q.sql)
			if err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q.sql, err)
			}
			if q.ordered {
				// Above an explicit Sort row order is guaranteed; compare
				// positionally.
				for i := range rs.Rows {
					for j := range rs.Rows[i] {
						if value.Compare(rs.Rows[i][j], rp.Rows[i][j]) != 0 {
							t.Fatalf("workers=%d %q: ordered row %d diverges", workers, q.sql, i)
						}
					}
				}
			} else if !sameStrings(canonical(rs.Rows), canonical(rp.Rows)) {
				t.Fatalf("workers=%d %q: result set diverges from serial", workers, q.sql)
			}
			if !sameStrings(accessedKeys(rs, "Audit_Alice"), accessedKeys(rp, "Audit_Alice")) {
				t.Fatalf("workers=%d %q: ACCESSED id-set diverges from serial", workers, q.sql)
			}
		}
	}
}

// TestTPCHDeterminismAcrossWorkers runs the §V-C workload (the paper's
// Figure 6 query set) plus the non-customer control queries (Figure 9)
// at SF 0.01 under audit-all, and requires result sets and ACCESSED
// id-sets identical to serial at every worker count.
func TestTPCHDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H determinism sweep skipped in -short")
	}
	const auditExpr = "Audit_Building"

	load := func(workers int) *engine.Engine {
		e, _, err := tpch.NewEngine(tpch.Config{SF: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Exec(tpch.AuditCustomerSegment(auditExpr, "BUILDING")); err != nil {
			t.Fatal(err)
		}
		e.SetAuditAll(true)
		if workers > 0 {
			e.SetDefaultWorkers(workers)
			e.SetParallelMinRows(1)
		}
		return e
	}

	queries := append(tpch.Queries(tpch.DefaultParams()), tpch.NonCustomerQueries()...)
	serial := load(0)
	serialRows := make(map[string][]string)
	serialIDs := make(map[string][]string)
	for _, q := range queries {
		r, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatalf("serial %s: %v", q.Name, err)
		}
		serialRows[q.Name] = canonical(r.Rows)
		var idKeys []string
		if r.Accessed != nil {
			for _, v := range r.Accessed.IDs(auditExpr) {
				idKeys = append(idKeys, value.KeyOf(v))
			}
		}
		serialIDs[q.Name] = idKeys
	}

	for _, workers := range workerMatrix(t) {
		par := load(workers)
		for _, q := range queries {
			r, err := par.Query(q.SQL)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, q.Name, err)
			}
			if !sameStrings(canonical(r.Rows), serialRows[q.Name]) {
				t.Fatalf("workers=%d %s: result set diverges from serial", workers, q.Name)
			}
			var idKeys []string
			if r.Accessed != nil {
				for _, v := range r.Accessed.IDs(auditExpr) {
					idKeys = append(idKeys, value.KeyOf(v))
				}
			}
			if !sameStrings(idKeys, serialIDs[q.Name]) {
				t.Fatalf("workers=%d %s: ACCESSED %d ids, serial %d — audit set diverges",
					workers, q.Name, len(idKeys), len(serialIDs[q.Name]))
			}
		}
	}
}

// TestSessionSetWorkersIsolation: one session forcing serial must not
// affect another session's parallel budget on the same engine.
func TestSessionSetWorkersIsolation(t *testing.T) {
	db := Open()
	if _, err := db.ExecScript(HealthcareDemo); err != nil {
		t.Fatal(err)
	}
	eng := db.Engine()
	eng.SetDefaultWorkers(4)
	eng.SetParallelMinRows(1)

	serialSess := eng.NewSession()
	defer serialSess.Close()
	serialSess.SetWorkers(1)

	before := eng.StatsSnapshot()["parallel_queries"]
	if _, err := serialSess.Query("SELECT * FROM Patients"); err != nil {
		t.Fatal(err)
	}
	if got := eng.StatsSnapshot()["parallel_queries"]; got != before {
		t.Fatalf("SET WORKERS 1 session still ran parallel (counter %d -> %d)", before, got)
	}

	parSess := eng.NewSession()
	defer parSess.Close()
	if _, err := parSess.Query("SELECT * FROM Patients"); err != nil {
		t.Fatal(err)
	}
	if got := eng.StatsSnapshot()["parallel_queries"]; got != before+1 {
		t.Fatalf("default session did not inherit engine workers (counter %d, want %d)", got, before+1)
	}

	// EXPLAIN from the serial session shows no exchange; from the
	// parallel one it does.
	serialPlan, err := serialSess.Exec("EXPLAIN SELECT * FROM Patients")
	if err != nil {
		t.Fatal(err)
	}
	if planText(serialPlan) != "" && strings.Contains(planText(serialPlan), "Gather") {
		t.Fatal("serial session's EXPLAIN shows a Gather exchange")
	}
}

func planText(r *engine.Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(row[0].S)
		b.WriteByte('\n')
	}
	return b.String()
}
