package engine

import (
	"strings"
	"testing"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE INDEX idx_zip ON Patients (Zip);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	script := sb.String()
	for _, want := range []string{
		"CREATE TABLE Patients", "INSERT INTO Patients VALUES",
		"CREATE INDEX idx_zip", "CREATE AUDIT EXPRESSION Audit_Alice",
		"CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice",
	} {
		if !strings.Contains(script, want) {
			t.Fatalf("dump missing %q:\n%s", want, script)
		}
	}

	// Replay into a fresh engine.
	e2 := New()
	if _, err := e2.ExecScript(script); err != nil {
		t.Fatalf("restore failed: %v\nscript:\n%s", err, script)
	}

	// Audit state round-trips: the restored engine's expression is
	// compiled and its trigger fires on the very first access.
	ae, ok := e2.Registry().Get("Audit_Alice")
	if !ok || ae.Cardinality() != 1 {
		t.Fatalf("restored audit expression: %v", ok)
	}
	mustQuery(t, e2, "SELECT * FROM Patients WHERE Name = 'Alice'")
	lg := mustQuery(t, e2, "SELECT COUNT(*) FROM Log")
	if lg.Rows[0][0].Int() != 1 {
		t.Errorf("restored trigger did not fire exactly once: %v", lg.Rows)
	}

	// Data round-trips. (These scans read Alice's row too and rightly
	// keep appending to the restored Log — auditing survives Restore.)
	r1 := mustQuery(t, e, "SELECT PatientID, Name, Age, Zip FROM Patients ORDER BY PatientID")
	r2 := mustQuery(t, e2, "SELECT PatientID, Name, Age, Zip FROM Patients ORDER BY PatientID")
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i].String() != r2.Rows[i].String() {
			t.Errorf("row %d differs: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestDumpRoundTripsValueKinds(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE K (i INT, f FLOAT, s VARCHAR(50), d DATE, b BOOLEAN);
		INSERT INTO K VALUES
			(1, 1.5, 'plain', DATE '1995-03-15', TRUE),
			(-7, 0.1, 'O''Brien said ''hi''', DATE '2001-12-31', FALSE),
			(NULL, NULL, NULL, NULL, NULL);
	`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if _, err := e2.ExecScript(sb.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, sb.String())
	}
	r1 := mustQuery(t, e, "SELECT * FROM K ORDER BY i")
	r2 := mustQuery(t, e2, "SELECT * FROM K ORDER BY i")
	for i := range r1.Rows {
		if r1.Rows[i].String() != r2.Rows[i].String() {
			t.Errorf("row %d: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestDumpDMLTrigger(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE T (x INT);
		CREATE TABLE AuditLog (x INT);
		CREATE TRIGGER cp ON T AFTER INSERT AS INSERT INTO AuditLog VALUES (NEW.x);
	`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if _, err := e2.ExecScript(sb.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, sb.String())
	}
	mustExec(t, e2, "INSERT INTO T VALUES (42)")
	r := mustQuery(t, e2, "SELECT x FROM AuditLog")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 42 {
		t.Errorf("restored DML trigger did not fire: %v", r.Rows)
	}
}

func TestDumpCompositePrimaryKey(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE PS (a INT, b INT, q INT, PRIMARY KEY (a, b));
		INSERT INTO PS VALUES (1, 1, 10), (1, 2, 20);
	`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if _, err := e2.ExecScript(sb.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, sb.String())
	}
	// The composite key constraint survives.
	if _, err := e2.Exec("INSERT INTO PS VALUES (1, 1, 99)"); err == nil {
		t.Error("restored composite pk should reject duplicates")
	}
}
