// Package parser implements a recursive-descent parser for the
// engine's SQL dialect: SELECT (joins, grouping, ordering, limits,
// subqueries), INSERT/UPDATE/DELETE, CREATE TABLE/INDEX, and the
// auditing DDL from the paper — CREATE AUDIT EXPRESSION and
// CREATE TRIGGER ... ON ACCESS TO ... — plus IF/NOTIFY action
// statements for trigger bodies.
//
// The parser pulls tokens straight from a lexer.Scanner through a
// three-token lookahead window — no token slice is materialized — and
// slab-allocates the hot AST node types, so a warm parse performs a
// handful of allocations for the AST itself and nothing else.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/lexer"
	"auditdb/internal/value"
)

// tok is one buffered token: pure spans and enums, no strings. kw is
// meaningful only when kind == TokKeyword, op only when kind == TokOp.
type tok struct {
	kind       lexer.TokenKind
	kw         lexer.Keyword
	op         lexer.OpKind
	pos        int // token start, for error offsets and body spans
	start, end int // content span (inside the quotes for strings)
	escaped    bool
}

type parser struct {
	input    string
	sc       lexer.Scanner
	cur, nxt tok // two-token lookahead window
	params   int // number of ? placeholders seen
	lexErr   error
	a        arena
}

func newParser(input string) *parser {
	p := &parser{input: input}
	p.sc.Init(input)
	p.scanTok(&p.cur)
	p.scanTok(&p.nxt)
	return p
}

// Parse parses a single SQL statement.
func Parse(input string) (ast.Stmt, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]ast.Stmt, error) {
	p := newParser(input)
	var stmts []ast.Stmt
	for {
		for p.matchOp(lexer.OpSemi) {
		}
		if p.peek().kind == lexer.TokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.matchOp(lexer.OpSemi) && p.peek().kind != lexer.TokEOF {
			return nil, p.errf("expected ';' or end of input, found %s", p.describe(p.peek()))
		}
	}
	if p.lexErr != nil {
		return nil, p.lexErr
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	return stmts, nil
}

// CountParams reports how many ? placeholders a statement uses.
func CountParams(input string) (int, error) {
	var sc lexer.Scanner
	sc.Init(input)
	n := 0
	for {
		kind := sc.Scan()
		if kind == lexer.TokEOF {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return n, nil
		}
		if kind == lexer.TokOp && sc.Op == lexer.OpQuestion {
			n++
		}
	}
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(input string) (*ast.Select, error) {
	s, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*ast.Select)
	if !ok {
		return nil, fmt.Errorf("expected a SELECT statement")
	}
	return sel, nil
}

// scanTok pulls the next token from the scanner into t. The scanner
// keeps returning TokEOF at end of input (or after a lexical error),
// so the lookahead window is always populated.
func (p *parser) scanTok(t *tok) {
	kind := p.sc.Scan()
	if err := p.sc.Err(); err != nil && p.lexErr == nil {
		p.lexErr = err
	}
	t.kind, t.kw, t.op = kind, p.sc.Kw, p.sc.Op
	t.pos, t.start, t.end = p.sc.Pos, p.sc.Start, p.sc.End
	t.escaped = p.sc.Escaped
}

func (p *parser) peek() tok { return p.cur }

func (p *parser) peek2() tok { return p.nxt }

// advance moves the window forward one token (no-op at EOF).
func (p *parser) advance() {
	if p.cur.kind != lexer.TokEOF {
		p.cur = p.nxt
		p.scanTok(&p.nxt)
	}
}

func (p *parser) next() tok {
	t := p.cur
	p.advance()
	return t
}

// text returns a token's raw source span (identifier spelling, number
// digits); it shares the input's backing array.
func (p *parser) text(t tok) string { return p.input[t.start:t.end] }

// strText returns a string literal's value, collapsing ” escapes.
func (p *parser) strText(t tok) string {
	raw := p.input[t.start:t.end]
	if !t.escaped {
		return raw
	}
	return strings.ReplaceAll(raw, "''", "'")
}

func (p *parser) describe(t tok) string {
	switch t.kind {
	case lexer.TokEOF:
		return "end of input"
	case lexer.TokKeyword:
		return fmt.Sprintf("%q", t.kw.String())
	case lexer.TokOp:
		return fmt.Sprintf("%q", t.op.String())
	case lexer.TokString:
		return fmt.Sprintf("%q", p.strText(t))
	default:
		return fmt.Sprintf("%q", p.text(t))
	}
}

func (p *parser) errf(format string, args ...any) error {
	if p.lexErr != nil {
		return p.lexErr
	}
	return fmt.Errorf("parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) matchKeyword(kw lexer.Keyword) bool {
	if p.cur.kind == lexer.TokKeyword && p.cur.kw == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw lexer.Keyword) bool {
	return p.cur.kind == lexer.TokKeyword && p.cur.kw == kw
}

func (p *parser) expectKeyword(kw lexer.Keyword) error {
	if !p.matchKeyword(kw) {
		return p.errf("expected %s, found %s", kw.String(), p.describe(p.peek()))
	}
	return nil
}

func (p *parser) matchOp(op lexer.OpKind) bool {
	if p.cur.kind == lexer.TokOp && p.cur.op == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) peekOp(op lexer.OpKind) bool {
	return p.cur.kind == lexer.TokOp && p.cur.op == op
}

func (p *parser) expectOp(op lexer.OpKind) error {
	if !p.matchOp(op) {
		return p.errf("expected %q, found %s", op.String(), p.describe(p.peek()))
	}
	return nil
}

// ident accepts an identifier token and returns its spelling (a
// substring of the input; quoted identifiers drop their quotes).
func (p *parser) ident() (string, error) {
	if p.cur.kind == lexer.TokIdent {
		return p.text(p.next()), nil
	}
	return "", p.errf("expected identifier, found %s", p.describe(p.cur))
}

// softIdent reports whether the current token is an identifier
// spelling the given (uppercase) soft keyword.
func (p *parser) softIdent(t tok, word string) bool {
	return t.kind == lexer.TokIdent && strings.EqualFold(p.text(t), word)
}

func (p *parser) parseStatement() (ast.Stmt, error) {
	t := p.peek()
	// NOTIFY is a soft keyword: recognized at statement start only, so
	// that triggers and tables may still be named "Notify" (as in the
	// paper's §II-C example).
	if p.softIdent(t, "NOTIFY") {
		return p.parseNotify()
	}
	// VERIFY is likewise soft: only "VERIFY AUDIT LOG" is a statement.
	if p.softIdent(t, "VERIFY") {
		return p.parseVerifyAuditLog()
	}
	// SHOW is likewise soft: only SHOW TRACES / SHOW TRACE FOR <id>
	// reach the engine (front doors answer SHOW <session knob> without
	// parsing).
	if p.softIdent(t, "SHOW") {
		return p.parseShowTrace()
	}
	if t.kind != lexer.TokKeyword {
		return nil, p.errf("expected statement, found %s", p.describe(t))
	}
	switch t.kw {
	case lexer.KwSelect:
		return p.parseSelect()
	case lexer.KwInsert:
		return p.parseInsert()
	case lexer.KwUpdate:
		return p.parseUpdate()
	case lexer.KwDelete:
		return p.parseDelete()
	case lexer.KwCreate:
		return p.parseCreate()
	case lexer.KwDrop:
		return p.parseDrop()
	case lexer.KwIf:
		return p.parseIf()
	case lexer.KwExplain:
		p.next()
		// ANALYZE is not a reserved word (it stays usable as an
		// identifier), so match it as a bare ident after EXPLAIN.
		analyze := false
		if p.softIdent(p.peek(), "ANALYZE") {
			p.next()
			analyze = true
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.Explain{Query: q, Analyze: analyze}, nil
	case lexer.KwBegin:
		p.next()
		return &ast.TxBegin{}, nil
	case lexer.KwCommit:
		p.next()
		return &ast.TxCommit{}, nil
	case lexer.KwRollback:
		p.next()
		return &ast.TxRollback{}, nil
	default:
		return nil, p.errf("unexpected keyword %s at start of statement", t.kw.String())
	}
}

func (p *parser) parseSelect() (*ast.Select, error) {
	if err := p.expectKeyword(lexer.KwSelect); err != nil {
		return nil, err
	}
	sel := p.a.selectStmt()
	sel.Items = p.a.selectItems()
	if p.matchKeyword(lexer.KwDistinct) {
		sel.Distinct = true
	} else {
		p.matchKeyword(lexer.KwAll)
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.matchOp(lexer.OpComma) {
			break
		}
	}
	if p.matchKeyword(lexer.KwFrom) {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.matchOp(lexer.OpComma) {
				break
			}
		}
	}
	if p.matchKeyword(lexer.KwWhere) {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.matchKeyword(lexer.KwGroup) {
		if err := p.expectKeyword(lexer.KwBy); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.matchOp(lexer.OpComma) {
				break
			}
		}
	}
	if p.matchKeyword(lexer.KwHaving) {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.matchKeyword(lexer.KwOrder) {
		if err := p.expectKeyword(lexer.KwBy); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.matchKeyword(lexer.KwDesc) {
				item.Desc = true
			} else {
				p.matchKeyword(lexer.KwAsc)
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.matchOp(lexer.OpComma) {
				break
			}
		}
	}
	if p.matchKeyword(lexer.KwLimit) {
		t := p.peek()
		if t.kind != lexer.TokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		p.next()
		n, err := strconv.ParseInt(p.text(t), 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", p.text(t))
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	if p.matchOp(lexer.OpStar) {
		return ast.SelectItem{Star: true}, nil
	}
	// ident.* form. Disambiguating from a qualified column needs a
	// third token of lookahead; since the scanner is a value, saving
	// and restoring the whole window is a cheap struct copy.
	if p.cur.kind == lexer.TokIdent && p.nxt.kind == lexer.TokOp && p.nxt.op == lexer.OpDot {
		saveSc, saveCur, saveNxt := p.sc, p.cur, p.nxt
		name := p.text(p.next())
		p.advance() // .
		if p.matchOp(lexer.OpStar) {
			return ast.SelectItem{Star: true, StarTable: name}, nil
		}
		p.sc, p.cur, p.nxt = saveSc, saveCur, saveNxt
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.matchKeyword(lexer.KwAs) {
		a, err := p.ident()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == lexer.TokIdent {
		item.Alias = p.text(p.next())
	}
	return item, nil
}

// parseTableRef parses one FROM item with any trailing JOIN chain.
func (p *parser) parseTableRef() (ast.TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := ast.JoinInner
		switch {
		case p.matchKeyword(lexer.KwJoin):
		case p.peekKeyword(lexer.KwInner):
			p.next()
			if err := p.expectKeyword(lexer.KwJoin); err != nil {
				return nil, err
			}
		case p.peekKeyword(lexer.KwLeft):
			p.next()
			p.matchKeyword(lexer.KwOuter)
			if err := p.expectKeyword(lexer.KwJoin); err != nil {
				return nil, err
			}
			kind = ast.JoinLeft
		case p.peekKeyword(lexer.KwCross):
			p.next()
			if err := p.expectKeyword(lexer.KwJoin); err != nil {
				return nil, err
			}
			kind = ast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &ast.JoinRef{Kind: kind, Left: left, Right: right}
		if kind != ast.JoinCross {
			if err := p.expectKeyword(lexer.KwOn); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (ast.TableRef, error) {
	if p.matchOp(lexer.OpLParen) {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(lexer.OpRParen); err != nil {
			return nil, err
		}
		p.matchKeyword(lexer.KwAs)
		alias, err := p.ident()
		if err != nil {
			return nil, fmt.Errorf("derived table requires an alias: %w", err)
		}
		return &ast.SubqueryRef{Sub: sub, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	bt := p.a.baseTable(name)
	if p.matchKeyword(lexer.KwAs) {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.peek().kind == lexer.TokIdent {
		bt.Alias = p.text(p.next())
	}
	return bt, nil
}

func (p *parser) parseInsert() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwInsert); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwInto); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: name}
	if p.peekOp(lexer.OpLParen) {
		p.next()
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.matchOp(lexer.OpComma) {
				break
			}
		}
		if err := p.expectOp(lexer.OpRParen); err != nil {
			return nil, err
		}
	}
	switch {
	case p.matchKeyword(lexer.KwValues):
		for {
			if err := p.expectOp(lexer.OpLParen); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.matchOp(lexer.OpComma) {
					break
				}
			}
			if err := p.expectOp(lexer.OpRParen); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.matchOp(lexer.OpComma) {
				break
			}
		}
	case p.peekKeyword(lexer.KwSelect):
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return ins, nil
}

func (p *parser) parseUpdate() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwUpdate); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &ast.Update{Table: name}
	if p.peek().kind == lexer.TokIdent {
		up.Alias = p.text(p.next())
	}
	if err := p.expectKeyword(lexer.KwSet); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(lexer.OpEq); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, ast.Assignment{Column: col, Value: e})
		if !p.matchOp(lexer.OpComma) {
			break
		}
	}
	if p.matchKeyword(lexer.KwWhere) {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwDelete); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwFrom); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &ast.Delete{Table: name}
	if p.peek().kind == lexer.TokIdent {
		del.Alias = p.text(p.next())
	}
	if p.matchKeyword(lexer.KwWhere) {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseCreate() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwCreate); err != nil {
		return nil, err
	}
	switch {
	case p.matchKeyword(lexer.KwTable):
		return p.parseCreateTable()
	case p.matchKeyword(lexer.KwIndex), p.matchKeyword(lexer.KwUnique):
		p.matchKeyword(lexer.KwIndex) // after UNIQUE
		return p.parseCreateIndex()
	case p.matchKeyword(lexer.KwView):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(lexer.KwAs); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.CreateView{Name: name, Query: q}, nil
	case p.matchKeyword(lexer.KwAudit):
		return p.parseCreateAuditExpression()
	case p.matchKeyword(lexer.KwTrigger):
		return p.parseCreateTrigger()
	default:
		return nil, p.errf("expected TABLE, INDEX, AUDIT or TRIGGER after CREATE")
	}
}

func (p *parser) parseCreateTable() (ast.Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct := &ast.CreateTable{Name: name}
	if err := p.expectOp(lexer.OpLParen); err != nil {
		return nil, err
	}
	for {
		if p.matchKeyword(lexer.KwPrimary) {
			if err := p.expectKeyword(lexer.KwKey); err != nil {
				return nil, err
			}
			if err := p.expectOp(lexer.OpLParen); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if !p.matchOp(lexer.OpComma) {
					break
				}
			}
			if err := p.expectOp(lexer.OpRParen); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.matchOp(lexer.OpComma) {
			break
		}
	}
	if err := p.expectOp(lexer.OpRParen); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColumnDef() (ast.ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ast.ColumnDef{}, err
	}
	// The type name may lex as an identifier (INT, VARCHAR, ...) or as
	// the DATE keyword.
	var typeName string
	t := p.peek()
	switch {
	case t.kind == lexer.TokIdent:
		typeName = p.text(p.next())
	case t.kind == lexer.TokKeyword && t.kw == lexer.KwDate:
		p.next()
		typeName = "DATE"
	default:
		return ast.ColumnDef{}, p.errf("expected type name for column %s", name)
	}
	// Swallow optional length/precision: VARCHAR(25), DECIMAL(15,2).
	if p.matchOp(lexer.OpLParen) {
		for !p.matchOp(lexer.OpRParen) {
			if p.peek().kind == lexer.TokEOF {
				return ast.ColumnDef{}, p.errf("unterminated type parameters")
			}
			p.next()
		}
	}
	kind, err := value.ParseKind(typeName)
	if err != nil {
		return ast.ColumnDef{}, p.errf("%v", err)
	}
	def := ast.ColumnDef{Name: name, Type: kind}
	if p.matchKeyword(lexer.KwPrimary) {
		if err := p.expectKeyword(lexer.KwKey); err != nil {
			return ast.ColumnDef{}, err
		}
		def.PrimaryKey = true
	}
	p.matchKeyword(lexer.KwNot) // NOT NULL accepted and ignored
	// (NULL keyword follows NOT)
	if p.peekKeyword(lexer.KwNull) {
		p.next()
	}
	return def, nil
}

func (p *parser) parseCreateIndex() (ast.Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwOn); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci := &ast.CreateIndex{Name: name, Table: table}
	if err := p.expectOp(lexer.OpLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, col)
		if !p.matchOp(lexer.OpComma) {
			break
		}
	}
	if err := p.expectOp(lexer.OpRParen); err != nil {
		return nil, err
	}
	return ci, nil
}

// parseCreateAuditExpression parses the paper's audit DDL (§II-A):
//
//	CREATE AUDIT EXPRESSION name AS SELECT ...
//	FOR SENSITIVE TABLE t PARTITION BY col
func (p *parser) parseCreateAuditExpression() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwExpression); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwAs); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwFor); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwSensitive); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwTable); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	// The comma before PARTITION BY in the paper's syntax is optional.
	p.matchOp(lexer.OpComma)
	if err := p.expectKeyword(lexer.KwPartition); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwBy); err != nil {
		return nil, err
	}
	key, err := p.ident()
	if err != nil {
		return nil, err
	}
	node := &ast.CreateAuditExpression{Name: name, Query: q, SensitiveTable: table, PartitionBy: key}
	// Optional triage weight: ... PARTITION BY key PRIORITY n
	if t := p.peek(); p.softIdent(t, "PRIORITY") {
		p.next()
		nt := p.peek()
		if nt.kind != lexer.TokNumber {
			return nil, p.errf("expected a number after PRIORITY, found %s", p.describe(nt))
		}
		p.next()
		n, err := strconv.Atoi(p.text(nt))
		if err != nil || n < 0 {
			return nil, p.errf("invalid PRIORITY %q", p.text(nt))
		}
		node.Priority = n
	}
	return node, nil
}

// parseCreateTrigger parses both trigger forms:
//
//	CREATE TRIGGER name ON ACCESS TO auditexpr AS <body>   (SELECT trigger)
//	CREATE TRIGGER name ON table AFTER INSERT|UPDATE|DELETE AS <body>
func (p *parser) parseCreateTrigger() (ast.Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword(lexer.KwOn); err != nil {
		return nil, err
	}
	tr := &ast.CreateTrigger{Name: name}
	if p.matchKeyword(lexer.KwAccess) {
		if err := p.expectKeyword(lexer.KwTo); err != nil {
			return nil, err
		}
		target, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Event = ast.EventAccess
		tr.Target = target
	} else {
		target, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Target = target
		if err := p.expectKeyword(lexer.KwAfter); err != nil {
			return nil, err
		}
		switch {
		case p.matchKeyword(lexer.KwInsert):
			tr.Event = ast.EventInsert
		case p.matchKeyword(lexer.KwUpdate):
			tr.Event = ast.EventUpdate
		case p.matchKeyword(lexer.KwDelete):
			tr.Event = ast.EventDelete
		default:
			return nil, p.errf("expected INSERT, UPDATE or DELETE after AFTER")
		}
	}
	if err := p.expectKeyword(lexer.KwAs); err != nil {
		return nil, err
	}
	bodyStart := p.peek().pos
	if p.matchKeyword(lexer.KwBegin) {
		for !p.matchKeyword(lexer.KwEnd) {
			if p.peek().kind == lexer.TokEOF {
				return nil, p.errf("unterminated trigger body (missing END)")
			}
			s, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			tr.Body = append(tr.Body, s)
			p.matchOp(lexer.OpSemi)
		}
	} else {
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		tr.Body = append(tr.Body, s)
	}
	tr.ActionSQL = strings.TrimSpace(p.input[bodyStart:p.peek().pos])
	return tr, nil
}

func (p *parser) parseDrop() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwDrop); err != nil {
		return nil, err
	}
	switch {
	case p.matchKeyword(lexer.KwTable):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropTable{Name: name}, nil
	case p.matchKeyword(lexer.KwView):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropView{Name: name}, nil
	case p.matchKeyword(lexer.KwIndex):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropIndex{Name: name}, nil
	case p.matchKeyword(lexer.KwTrigger):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropTrigger{Name: name}, nil
	case p.matchKeyword(lexer.KwAudit):
		if err := p.expectKeyword(lexer.KwExpression); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropAuditExpression{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE, TRIGGER or AUDIT EXPRESSION after DROP")
	}
}

// parseIf parses a guarded trigger action: IF (cond) <stmt>.
func (p *parser) parseIf() (ast.Stmt, error) {
	if err := p.expectKeyword(lexer.KwIf); err != nil {
		return nil, err
	}
	if err := p.expectOp(lexer.OpLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExprOrSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(lexer.OpRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ast.If{Cond: cond, Then: []ast.Stmt{body}}, nil
}

func (p *parser) parseNotify() (ast.Stmt, error) {
	if t := p.peek(); !p.softIdent(t, "NOTIFY") {
		return nil, p.errf("expected NOTIFY, found %s", p.describe(t))
	}
	p.next()
	msg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.Notify{Message: msg}, nil
}

func (p *parser) parseVerifyAuditLog() (ast.Stmt, error) {
	if t := p.peek(); !p.softIdent(t, "VERIFY") {
		return nil, p.errf("expected VERIFY, found %s", p.describe(t))
	}
	p.next()
	// AUDIT is reserved (audit-expression DDL); LOG is an ordinary
	// identifier.
	if err := p.expectKeyword(lexer.KwAudit); err != nil {
		return nil, err
	}
	if t := p.peek(); !p.softIdent(t, "LOG") {
		return nil, p.errf("expected LOG after VERIFY AUDIT, found %s", p.describe(t))
	}
	p.next()
	return &ast.VerifyAuditLog{}, nil
}

func (p *parser) parseShowTrace() (ast.Stmt, error) {
	if t := p.peek(); !p.softIdent(t, "SHOW") {
		return nil, p.errf("expected SHOW, found %s", p.describe(t))
	}
	p.next()
	t := p.peek()
	if p.matchKeyword(lexer.KwAudit) {
		// SHOW AUDIT QUEUE | SHOW AUDIT VERDICTS (triage surfaces).
		t = p.peek()
		switch {
		case p.softIdent(t, "QUEUE"):
			p.next()
			return &ast.ShowAuditQueue{}, nil
		case p.softIdent(t, "VERDICTS"):
			p.next()
			return &ast.ShowAuditVerdicts{}, nil
		default:
			return nil, p.errf("expected QUEUE or VERDICTS after SHOW AUDIT, found %s", p.describe(t))
		}
	}
	if p.softIdent(t, "TRACES") {
		p.next()
		return &ast.ShowTraces{}, nil
	}
	if !p.softIdent(t, "TRACE") {
		return nil, p.errf("expected TRACE or TRACES after SHOW, found %s", p.describe(t))
	}
	p.next()
	if err := p.expectKeyword(lexer.KwFor); err != nil {
		return nil, err
	}
	t = p.peek()
	if t.kind != lexer.TokNumber {
		return nil, p.errf("expected query id after SHOW TRACE FOR, found %s", p.describe(t))
	}
	p.next()
	qid, err := strconv.ParseUint(p.text(t), 10, 64)
	if err != nil {
		return nil, p.errf("invalid query id %q", p.text(t))
	}
	return &ast.ShowTrace{QID: qid}, nil
}
