// Package plan defines the logical query plan: compiled expressions,
// plan nodes (scan, filter, project, join, aggregate, sort, limit,
// distinct, audit), and the builder that translates parsed SELECT
// statements into plans. The audit operator node lives here so the
// placement algorithms in internal/core can instrument any plan.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"auditdb/internal/value"
)

// Resolution sentinel errors, distinguished so the builder can fall
// back to outer scopes on ErrUnknownColumn but must fail fast on
// ErrAmbiguous.
var (
	ErrAmbiguous     = errors.New("ambiguous column reference")
	ErrUnknownColumn = errors.New("unknown column")
)

// ColInfo describes one column of a plan node's output.
type ColInfo struct {
	Qual string // table alias or name; empty for computed columns
	Name string
	Kind value.Kind
}

// String renders the column as qual.name.
func (c ColInfo) String() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}

// Schema is the ordered output column list of a plan node.
type Schema []ColInfo

// Resolve finds the ordinal of a column reference. Ambiguous
// unqualified names and missing columns are errors.
func (s Schema) Resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.Qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("%w: %q", ErrAmbiguous, refString(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("%w: %q", ErrUnknownColumn, refString(qual, name))
	}
	return found, nil
}

// IndexOf is like Resolve but reports ok=false instead of an error and
// returns the first match even if ambiguous.
func (s Schema) IndexOf(qual, name string) (int, bool) {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) && (qual == "" || strings.EqualFold(c.Qual, qual)) {
			return i, true
		}
	}
	return 0, false
}

// Concat returns the schema of a join output: left columns then right.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// WithQual returns a copy of s with every column's qualifier replaced,
// as when a derived table is given an alias.
func (s Schema) WithQual(qual string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = ColInfo{Qual: qual, Name: c.Name, Kind: c.Kind}
	}
	return out
}

func refString(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}
