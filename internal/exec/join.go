package exec

import (
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

func openJoin(j *plan.Join, ctx *Ctx) (Iterator, error) {
	left, err := Open(j.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Open(j.Right, ctx)
	if err != nil {
		left.Close()
		return nil, err
	}
	leftWidth := len(j.Left.Schema())
	rightWidth := len(j.Right.Schema())
	if len(j.LeftKeys) > 0 {
		return newHashJoin(j, left, right, leftWidth, rightWidth, ctx)
	}
	return newNLJoin(j, left, right, rightWidth, ctx)
}

// ---- Hash join ----

// joinBucket holds the build rows for one key. The indirection lets
// the probe side append to a bucket found by a string(buf) lookup
// without re-materializing the key string (map assignment, unlike map
// lookup, cannot elide the []byte→string conversion).
type joinBucket struct {
	rows []value.Row
}

// hashJoinIter builds a hash table over the right input keyed by the
// equi-join keys and probes it with left rows, applying the residual
// predicate to each candidate pair. Left-outer rows with no surviving
// match are null-extended. Both sides move through reusable key
// scratch buffers, and the vectorized path emits pairs into one
// backing array per output batch instead of one allocation per row.
type hashJoinIter struct {
	j    *plan.Join
	left Iterator
	ctx  *Ctx
	// Exactly one of table/parts is set: table is the single-map serial
	// build; parts is the partitioned table shared by the workers of a
	// parallel join (each probe hashes its key onto a partition first).
	table      map[string]*joinBucket
	parts      []map[string]*joinBucket
	leftWidth  int
	rightWidth int

	cur     value.Row // current left row
	matches []value.Row
	mi      int
	matched bool
	done    bool

	keyBuf  []byte
	leftIn  *Batch
	leftPos int
	adapter batchAdapter
}

func newHashJoin(j *plan.Join, left, right Iterator, leftWidth, rightWidth int, ctx *Ctx) (Iterator, error) {
	defer right.Close()
	table := make(map[string]*joinBucket)
	var in *Batch
	var keyBuf []byte
	for {
		in = grown(in)
		n, err := nextBatch(right, in)
		if err != nil {
			left.Close()
			return nil, err
		}
		if n == 0 {
			break
		}
		for _, row := range in.Rows {
			var null bool
			keyBuf, null, err = appendJoinKey(keyBuf[:0], j.RightKeys, ctx, row)
			if err != nil {
				left.Close()
				return nil, err
			}
			if null {
				continue // NULL keys never join
			}
			if bkt, ok := table[string(keyBuf)]; ok {
				bkt.rows = append(bkt.rows, row)
			} else {
				table[string(keyBuf)] = &joinBucket{rows: []value.Row{row}}
			}
		}
	}
	return &hashJoinIter{
		j: j, left: left, ctx: ctx, table: table,
		leftWidth: leftWidth, rightWidth: rightWidth,
	}, nil
}

// appendJoinKey encodes the key expressions of row into buf, reusing
// its capacity. null=true reports a SQL NULL in the key (never joins).
func appendJoinKey(buf []byte, keys []plan.Expr, ctx *Ctx, row value.Row) ([]byte, bool, error) {
	for _, k := range keys {
		v, err := k.Eval(ctx.Eval, row)
		if err != nil {
			return buf, false, err
		}
		if v.IsNull() {
			return buf, true, nil
		}
		buf = value.EncodeKey(buf, v)
	}
	return buf, false, nil
}

// NextBatch advances the probe state machine until the output batch is
// full or the left input is exhausted. Emitted pairs are carved out of
// one backing array per batch; a candidate rejected by the residual
// predicate reuses its slot for the next candidate.
func (it *hashJoinIter) NextBatch(b *Batch) (int, error) {
	limit := b.limit()
	w := it.leftWidth + it.rightWidth
	var backing []value.Value
	var pair value.Row // allocated but not yet committed output slot
	n := 0
	takePair := func() value.Row {
		if pair == nil {
			if len(backing) < w {
				backing = make([]value.Value, (limit-n)*w)
			}
			pair = value.Row(backing[:w:w])
			backing = backing[w:]
		}
		return pair
	}
	for n < limit {
		// Drain pending matches for the current left row.
		if it.mi < len(it.matches) {
			r := it.matches[it.mi]
			it.mi++
			p := takePair()
			copy(p, it.cur)
			copy(p[it.leftWidth:], r)
			if it.j.Residual != nil {
				v, err := it.j.Residual.Eval(it.ctx.Eval, p)
				if err != nil {
					b.setRows(n)
					return n, err
				}
				if value.TriFromValue(v) != value.True {
					continue
				}
			}
			it.matched = true
			b.buf[n] = p
			n++
			pair = nil
			continue
		}
		// Left-outer null extension, emitted exactly once per
		// unmatched left row.
		if it.cur != nil && !it.matched && it.j.Kind == plan.JoinLeft {
			it.matched = true
			p := takePair()
			copy(p, it.cur)
			for i := it.leftWidth; i < w; i++ {
				p[i] = value.Null
			}
			b.buf[n] = p
			n++
			pair = nil
			continue
		}
		if it.done {
			break
		}
		row, ok, err := it.nextLeft()
		if err != nil {
			b.setRows(n)
			return n, err
		}
		if !ok {
			it.done = true
			it.cur = nil
			continue
		}
		it.cur = row
		it.matched = false
		it.mi = 0
		var null bool
		it.keyBuf, null, err = appendJoinKey(it.keyBuf[:0], it.j.LeftKeys, it.ctx, row)
		if err != nil {
			b.setRows(n)
			return n, err
		}
		it.matches = nil
		if !null {
			table := it.table
			if it.parts != nil {
				table = it.parts[partitionOf(it.keyBuf, len(it.parts))]
			}
			if bkt, ok := table[string(it.keyBuf)]; ok {
				it.matches = bkt.rows
			}
		}
	}
	b.setRows(n)
	return n, nil
}

// nextLeft pulls the next probe row, refilling from the left input a
// batch at a time.
func (it *hashJoinIter) nextLeft() (value.Row, bool, error) {
	for it.leftIn == nil || it.leftPos >= len(it.leftIn.Rows) {
		it.leftIn = grown(it.leftIn)
		n, err := nextBatch(it.left, it.leftIn)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		it.leftPos = 0
	}
	row := it.leftIn.Rows[it.leftPos]
	it.leftPos++
	return row, true, nil
}

func (it *hashJoinIter) Next() (value.Row, bool, error) { return it.adapter.nextRow(it) }

func (it *hashJoinIter) Close() { it.left.Close() }

// ---- Nested loops join ----

// nlJoinIter materializes the right input and scans it per left row,
// evaluating the full join condition on each pair. Used for non-equi
// conditions and cross joins.
type nlJoinIter struct {
	j          *plan.Join
	left       Iterator
	rightRows  []value.Row
	rightWidth int
	ctx        *Ctx

	cur     value.Row
	ri      int
	matched bool
	done    bool
}

func newNLJoin(j *plan.Join, left, right Iterator, rightWidth int, ctx *Ctx) (Iterator, error) {
	defer right.Close()
	var rows []value.Row
	var in *Batch
	for {
		in = grown(in)
		n, err := nextBatch(right, in)
		if err != nil {
			left.Close()
			return nil, err
		}
		if n == 0 {
			break
		}
		rows = append(rows, in.Rows...)
	}
	return &nlJoinIter{j: j, left: left, rightRows: rows, rightWidth: rightWidth, ctx: ctx}, nil
}

func (it *nlJoinIter) Next() (value.Row, bool, error) {
	for {
		if it.cur != nil {
			for it.ri < len(it.rightRows) {
				r := it.rightRows[it.ri]
				it.ri++
				pair := it.cur.Concat(r)
				if it.j.Cond != nil {
					v, err := it.j.Cond.Eval(it.ctx.Eval, pair)
					if err != nil {
						return nil, false, err
					}
					if value.TriFromValue(v) != value.True {
						continue
					}
				}
				it.matched = true
				return pair, true, nil
			}
			if !it.matched && it.j.Kind == plan.JoinLeft {
				it.matched = true
				return it.cur.Concat(nullRow(it.rightWidth)), true, nil
			}
			it.cur = nil
		}
		if it.done {
			return nil, false, nil
		}
		row, ok, err := it.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.done = true
			continue
		}
		it.cur = row
		it.ri = 0
		it.matched = false
	}
}

func (it *nlJoinIter) Close() { it.left.Close() }

func nullRow(n int) value.Row {
	row := make(value.Row, n)
	for i := range row {
		row[i] = value.Null
	}
	return row
}
