package main

import (
	"fmt"
	"log"
	"strings"
	"text/tabwriter"
	"time"

	"auditdb/internal/engine"
	"auditdb/internal/experiments"
)

// runSkipping measures what audit-aware data skipping buys and costs:
// for watch sets at 0.01%/0.1%/1% row selectivity over lineitem
// (~60k rows ≈ 15 chunks at SF 0.01), it interleaves skipping-off and
// skipping-on measurement windows over (a) a selective-filter audited
// scan (zone-map pruning), (b) an audited full-table aggregate
// (sensitive-ID sketch probe elision), and (c) a worst-case full scan
// whose watch set covers every chunk (regression guard — nothing can
// be skipped, the decide callbacks are pure overhead). A scaled
// healthcare-demo shape repeats the selective case on the paper's §II
// schema. Medians of per-query latency are compared per pair of
// interleaved windows, as in the triage benchmark.
func runSkipping(w *experiments.Workbench, minDur time.Duration) {
	e := w.Engine

	// lineitem rows per unit of (sparse, ascending) orderkey ≈ 2: keys
	// advance by 2 on average and carry ~4 lines each over ~30000 keys.
	counts := w.Data.Counts()
	liRows := counts["lineitem"]
	keySpan := 30000.0
	rowsPerKey := float64(liRows) / keySpan

	type point struct {
		sel                 float64
		filterOff, filterOn float64 // seconds, selective-filter scan
		fullOff, fullOn     float64 // seconds, audited full aggregate
	}
	var pts []point

	for _, sel := range []float64{0.0001, 0.001, 0.01} {
		watchKeys := int(sel * float64(liRows) / rowsPerKey)
		if watchKeys < 1 {
			watchKeys = 1
		}
		ddl := fmt.Sprintf(`CREATE AUDIT EXPRESSION Audit_Skip AS
			SELECT * FROM lineitem WHERE l_orderkey BETWEEN 1 AND %d
			FOR SENSITIVE TABLE lineitem, PARTITION BY l_orderkey`, watchKeys)
		if _, err := e.Exec(ddl); err != nil {
			log.Fatalf("skipping bench: %v", err)
		}

		selective := "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem WHERE l_orderkey BETWEEN 20000 AND 20030"
		full := "SELECT COUNT(*), SUM(l_quantity) FROM lineitem"

		p := point{sel: sel}
		p.filterOff, p.filterOn = pairSkipping(e, selective, minDur)
		p.fullOff, p.fullOn = pairSkipping(e, full, minDur)
		pts = append(pts, p)

		if _, err := e.Exec("DROP AUDIT EXPRESSION Audit_Skip"); err != nil {
			log.Fatalf("skipping bench: %v", err)
		}
	}

	table("== Audit-aware data skipping: median per-query latency, skipping off vs on ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "watch sel\tselective filter off\ton\tspeedup\taudited full scan off\ton\tspeedup")
			for _, p := range pts {
				fmt.Fprintf(tw, "%.2f%%\t%.0fµs\t%.0fµs\t%.2fx\t%.0fµs\t%.0fµs\t%.2fx\n",
					p.sel*100,
					p.filterOff*1e6, p.filterOn*1e6, p.filterOff/p.filterOn,
					p.fullOff*1e6, p.fullOn*1e6, p.fullOff/p.fullOn)
			}
		})

	// Regression guard: watch set spanning the whole key domain — every
	// chunk's sketch may contain a sensitive ID and the full scan has
	// no filter, so nothing can be skipped. on/off should be a wash.
	if _, err := e.Exec(`CREATE AUDIT EXPRESSION Audit_Skip AS
		SELECT * FROM lineitem WHERE l_orderkey > 0
		FOR SENSITIVE TABLE lineitem, PARTITION BY l_orderkey`); err != nil {
		log.Fatalf("skipping bench: %v", err)
	}
	wOff, wOn := pairSkipping(e, "SELECT COUNT(*), SUM(l_quantity) FROM lineitem", minDur)
	if _, err := e.Exec("DROP AUDIT EXPRESSION Audit_Skip"); err != nil {
		log.Fatalf("skipping bench: %v", err)
	}
	fmt.Printf("worst case (100%% watch, full scan): off %.0fµs, on %.0fµs, regression %+.2f%%\n\n",
		wOff*1e6, wOn*1e6, (wOn/wOff-1)*100)

	runSkippingHealthcare(minDur)

	snap := e.StatsSnapshot()
	fmt.Printf("engine counters: chunks_scanned=%d chunks_skipped_filter=%d chunks_skipped_audit=%d\n",
		snap["chunks_scanned"], snap["chunks_skipped_filter"], snap["chunks_skipped_audit"])
}

// runSkippingHealthcare repeats the selective-filter comparison on the
// paper's §II healthcare schema scaled to five chunks of patients with
// a ~0.1%-selectivity ward watch set.
func runSkippingHealthcare(minDur time.Duration) {
	e := engine.New()
	if _, err := e.Exec("CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10))"); err != nil {
		log.Fatalf("healthcare skipping bench: %v", err)
	}
	const rows = 20480
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if b.Len() == 0 {
			b.WriteString("INSERT INTO Patients VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'P%d', %d, '%05d')", i, i, 20+i%60, 10000+i%90000)
		if (i+1)%1024 == 0 || i == rows-1 {
			if _, err := e.Exec(b.String()); err != nil {
				log.Fatalf("healthcare skipping bench: %v", err)
			}
			b.Reset()
		}
	}
	// ~0.1% of patients: one ward of 20.
	if _, err := e.Exec(`CREATE AUDIT EXPRESSION Audit_Ward AS
		SELECT * FROM Patients WHERE PatientID BETWEEN 100 AND 119
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		log.Fatalf("healthcare skipping bench: %v", err)
	}
	e.SetAuditAll(true)

	q := "SELECT Name, Age FROM Patients WHERE PatientID BETWEEN 15000 AND 15020"
	off, on := pairSkipping(e, q, minDur)
	fmt.Printf("healthcare demo (%d patients, ward watch 0.1%%): selective scan off %.0fµs, on %.0fµs, speedup %.2fx\n\n",
		rows, off*1e6, on*1e6, off/on)
}

// pairSkipping interleaves skipping-off and skipping-on measurement
// windows for one query on one engine and returns the median
// per-query latency of each mode. Interleaving (rather than two long
// runs) cancels host drift; the session toggle is the only difference
// between the halves of a pair.
func pairSkipping(e *engine.Engine, sql string, minDur time.Duration) (medOff, medOn float64) {
	sessOn := e.NewSession()
	defer sessOn.Close()
	sessOff := e.NewSession()
	defer sessOff.Close()
	sessOff.SetSkipping(false)

	batch := func(s *engine.Session, d time.Duration, lat *[]float64) {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			t0 := time.Now()
			if _, err := s.Query(sql); err != nil {
				log.Fatalf("skipping bench query %q: %v", sql, err)
			}
			*lat = append(*lat, time.Since(t0).Seconds())
		}
	}
	// Warm both paths (plan cache, table heat).
	var warm []float64
	batch(sessOff, minDur/4, &warm)
	batch(sessOn, minDur/4, &warm)

	var off, on []float64
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			batch(sessOff, minDur, &off)
			batch(sessOn, minDur, &on)
		} else {
			batch(sessOn, minDur, &on)
			batch(sessOff, minDur, &off)
		}
	}
	return median(off), median(on)
}
