package offline_test

import (
	"testing"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/offline"
	"auditdb/internal/value"
)

func setup(t *testing.T) (*engine.Engine, *offline.Auditor, *core.AuditExpression) {
	t.Helper()
	e := engine.New()
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'),
			(2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'),
			(4, 'Dave', 29, '98052'),
			(5, 'Erin', 62, '10001');
		INSERT INTO Disease VALUES
			(1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	ae, ok := e.Registry().Get("Audit_All")
	if !ok {
		t.Fatal("audit expression missing")
	}
	return e, offline.New(e.Catalog(), e.Store()), ae
}

func ids(rep *offline.Report) []int64 {
	out := make([]int64, len(rep.AccessedIDs))
	for i, v := range rep.AccessedIDs {
		out[i] = v.Int()
	}
	return out
}

func eq(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOfflineSimpleFilter(t *testing.T) {
	_, aud, ae := setup(t)
	rep, err := aud.Audit("SELECT * FROM Patients WHERE Name = 'Alice'", ae)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(ids(rep), 1) {
		t.Errorf("accessed = %v, want [1]", ids(rep))
	}
}

func TestOfflineJoinMatchesOutput(t *testing.T) {
	_, aud, ae := setup(t)
	rep, err := aud.Audit(`SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`, ae)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(ids(rep), 2, 3) {
		t.Errorf("accessed = %v, want [2 3] (Bob, Carol)", ids(rep))
	}
	// Candidate pruning: only the 5 patients enter the leaf; deletion
	// tests bounded by that.
	if rep.Candidates != 5 {
		t.Errorf("candidates = %d", rep.Candidates)
	}
}

func TestOfflineExistsSubquery(t *testing.T) {
	// Example 2.4: Alice influences the EXISTS query even though her
	// record is not in the output rows.
	_, aud, ae := setup(t)
	rep, err := aud.Audit(`SELECT 1 FROM Patients WHERE exists
		(SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer')`, ae)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(rep)
	foundAlice := false
	for _, id := range got {
		if id == 1 {
			foundAlice = true
		}
	}
	if !foundAlice {
		t.Errorf("Alice must be accessed, got %v", got)
	}
}

func TestOfflineHavingClearsFalsePositive(t *testing.T) {
	// Example 3.9: Dave's diabetes group is filtered by HAVING, so
	// deleting Dave does not change the result: not accessed.
	_, aud, ae := setup(t)
	rep, err := aud.Audit(`SELECT D.Disease, COUNT(*) FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID
		GROUP BY D.Disease HAVING COUNT(*) >= 2`, ae)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids(rep) {
		if id == 4 {
			t.Errorf("Dave (4) must not be accessed: %v", ids(rep))
		}
	}
	// Alice, Bob, Carol, Erin all influence surviving groups.
	if !eq(ids(rep), 1, 2, 3, 5) {
		t.Errorf("accessed = %v, want [1 2 3 5]", ids(rep))
	}
}

func TestOfflineTopK(t *testing.T) {
	// Top-2 youngest: Bob (21) and Dave (29). Erin (62) does not
	// influence the result; Carol (47) is the next-youngest — deleting
	// Dave pulls her in, so Dave influences; deleting Carol changes
	// nothing.
	_, aud, ae := setup(t)
	rep, err := aud.Audit("SELECT Name FROM Patients ORDER BY Age LIMIT 2", ae)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(ids(rep), 2, 4) {
		t.Errorf("accessed = %v, want [2 4]", ids(rep))
	}
}

func TestOfflineAggregate(t *testing.T) {
	// Every patient influences COUNT(*) over the whole table.
	_, aud, ae := setup(t)
	rep, err := aud.Audit("SELECT COUNT(*) FROM Patients", ae)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(ids(rep), 1, 2, 3, 4, 5) {
		t.Errorf("accessed = %v", ids(rep))
	}
}

func TestOfflineDistinctDuplicates(t *testing.T) {
	// §II-B limitation made concrete: with two Alices and DISTINCT
	// names, removing either Alice leaves the result unchanged, so
	// neither is "accessed" under Definition 2.3.
	e, aud, ae := setup(t)
	if _, err := e.Exec("INSERT INTO Patients VALUES (6, 'Alice', 50, '99999')"); err != nil {
		t.Fatal(err)
	}
	rep, err := aud.Audit("SELECT DISTINCT Name FROM Patients", ae)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids(rep) {
		if id == 1 || id == 6 {
			t.Errorf("duplicated Alice rows should not be accessed under set semantics: %v", ids(rep))
		}
	}
	if !eq(ids(rep), 2, 3, 4, 5) {
		t.Errorf("accessed = %v, want [2 3 4 5]", ids(rep))
	}
}

func TestOfflineAgainstHCNNoFalseNegatives(t *testing.T) {
	// Claim 3.6 checked empirically: offline accessedIDs must be a
	// subset of hcn auditIDs for a battery of query shapes.
	e, aud, ae := setup(t)
	e.SetAuditAll(true)
	queries := []string{
		"SELECT * FROM Patients WHERE Age > 25",
		`SELECT P.Name FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND D.Disease = 'cancer'`,
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip",
		"SELECT Name FROM Patients ORDER BY Age LIMIT 2",
		"SELECT DISTINCT Zip FROM Patients",
		`SELECT Name FROM Patients WHERE PatientID IN
		 (SELECT PatientID FROM Disease WHERE Disease = 'flu')`,
		`SELECT D.Disease, COUNT(*) FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID GROUP BY D.Disease HAVING COUNT(*) >= 2`,
	}
	for _, q := range queries {
		rep, err := aud.Audit(q, ae)
		if err != nil {
			t.Fatalf("offline %q: %v", q, err)
		}
		r, err := e.Query(q)
		if err != nil {
			t.Fatalf("online %q: %v", q, err)
		}
		audited := map[int64]bool{}
		for _, v := range r.Accessed.IDs("Audit_All") {
			audited[v.Int()] = true
		}
		for _, v := range rep.AccessedIDs {
			if !audited[v.Int()] {
				t.Errorf("query %q: accessed ID %v missing from hcn auditIDs %v (false negative!)", q, v, r.Accessed.IDs("Audit_All"))
			}
		}
	}
}

func TestOfflineSJEqualsHCN(t *testing.T) {
	// Theorem 3.7 checked empirically: on select-join queries hcn
	// auditIDs equal offline accessedIDs exactly.
	e, aud, ae := setup(t)
	e.SetAuditAll(true)
	queries := []string{
		"SELECT * FROM Patients WHERE Age BETWEEN 25 AND 50",
		`SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`,
		`SELECT P.Name, D.Disease FROM Patients P JOIN Disease D ON P.PatientID = D.PatientID`,
	}
	for _, q := range queries {
		rep, err := aud.Audit(q, ae)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		online := r.Accessed.IDs("Audit_All")
		if len(online) != len(rep.AccessedIDs) {
			t.Errorf("query %q: hcn=%v offline=%v", q, online, rep.AccessedIDs)
			continue
		}
		for i := range online {
			if value.Compare(online[i], rep.AccessedIDs[i]) != 0 {
				t.Errorf("query %q: hcn=%v offline=%v", q, online, rep.AccessedIDs)
				break
			}
		}
	}
}

func TestOfflineCandidatePruning(t *testing.T) {
	// A query whose leaf predicate excludes most sensitive tuples must
	// only deletion-test the survivors.
	_, aud, ae := setup(t)
	rep, err := aud.Audit("SELECT * FROM Patients WHERE Zip = '48109'", ae)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", rep.Candidates)
	}
	// 1 baseline + 1 leaf pass + 2 deletion tests.
	if rep.Executions != 4 {
		t.Errorf("executions = %d, want 4", rep.Executions)
	}
}

// TestOfflineRowsScanned checks the report's I/O accounting: the
// baseline run, the candidate pass, and every deletion test each read
// all 5 patient rows (the visibility mask hides the tuple after the
// storage read), so the total is exactly (2 + candidates) * 5 for a
// single-table query.
func TestOfflineRowsScanned(t *testing.T) {
	_, aud, ae := setup(t)
	rep, err := aud.Audit("SELECT * FROM Patients WHERE Age > 30", ae)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsScanned == 0 {
		t.Fatal("RowsScanned not counted")
	}
	want := int64((2 + rep.Candidates) * 5)
	if rep.RowsScanned != want {
		t.Errorf("RowsScanned = %d, want %d (%d executions x 5 rows)",
			rep.RowsScanned, want, 2+rep.Candidates)
	}
	if rep.Executions != 2+rep.Candidates {
		t.Errorf("Executions = %d, want %d", rep.Executions, 2+rep.Candidates)
	}
}
