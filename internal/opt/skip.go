package opt

import (
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// derivePruneTerms walks every Scan in the optimized tree and attaches
// chunk-refutation terms derived from its pushed predicate. Terms stay
// declarative (the constant side may be a Param or Outer reference) so
// plans remain cache- and clone-safe; the executor compiles them at
// Open and silently drops any it cannot resolve to an I-backed value.
func derivePruneTerms(n plan.Node) {
	plan.Walk(n, func(node plan.Node) {
		if s, ok := node.(*plan.Scan); ok && s.Pushed != nil {
			s.Prune = pruneTermsOf(s.Pushed)
		}
	})
}

// pruneTermsOf extracts the refutable conjuncts of a leaf predicate.
// Only shapes a zone map can act on survive: col <op> const-ish,
// BETWEEN, IN (...), IS [NOT] NULL. Everything else contributes no
// term — pruning is purely an optimization, the full predicate still
// runs over every surviving row.
func pruneTermsOf(pred plan.Expr) []plan.PruneTerm {
	var terms []plan.PruneTerm
	for _, c := range splitConjuncts(pred) {
		terms = appendPruneTerm(terms, c)
	}
	return terms
}

func appendPruneTerm(terms []plan.PruneTerm, e plan.Expr) []plan.PruneTerm {
	switch x := e.(type) {
	case *plan.Cmp:
		if col, ok := x.L.(*plan.Col); ok && constish(x.R) {
			return append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: x.Op, Val: x.R})
		}
		// const <op> col ⇒ col <flipped-op> const.
		if col, ok := x.R.(*plan.Col); ok && constish(x.L) {
			return append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: flipCmp(x.Op), Val: x.L})
		}
	case *plan.Between:
		col, ok := x.X.(*plan.Col)
		if !ok || x.Negate || !constish(x.Lo) || !constish(x.Hi) {
			return terms
		}
		terms = append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: plan.CmpGe, Val: x.Lo})
		return append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: plan.CmpLe, Val: x.Hi})
	case *plan.InList:
		col, ok := x.X.(*plan.Col)
		if !ok || x.Negate || len(x.List) == 0 {
			return terms
		}
		// IN over constants prunes with the list's min/max envelope.
		// Any non-Const element (Param ordering is unknowable at plan
		// time) disqualifies the term.
		lo, hi, ok := constEnvelope(x.List)
		if !ok {
			return terms
		}
		terms = append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: plan.CmpGe, Val: lo})
		return append(terms, plan.PruneTerm{Kind: plan.PruneCmp, Col: col.Idx, Op: plan.CmpLe, Val: hi})
	case *plan.IsNull:
		if col, ok := x.X.(*plan.Col); ok {
			kind := plan.PruneIsNull
			if x.Negate {
				kind = plan.PruneNotNull
			}
			return append(terms, plan.PruneTerm{Kind: kind, Col: col.Idx})
		}
	}
	return terms
}

// constish reports whether e is row-independent: a literal, a bound
// parameter, or an outer-query column (fixed for the whole inner scan).
func constish(e plan.Expr) bool {
	switch e.(type) {
	case *plan.Const, *plan.Param, *plan.Outer:
		return true
	}
	return false
}

// constEnvelope returns Const expressions bounding an all-Const,
// all-comparable-int list.
func constEnvelope(list []plan.Expr) (lo, hi plan.Expr, ok bool) {
	var loC, hiC *plan.Const
	for _, e := range list {
		c, isConst := e.(*plan.Const)
		if !isConst {
			return nil, nil, false
		}
		if loC == nil {
			loC, hiC = c, c
			continue
		}
		if cmp, cok := cmpConst(c, loC); cok && cmp < 0 {
			loC = c
		} else if !cok {
			return nil, nil, false
		}
		if cmp, cok := cmpConst(c, hiC); cok && cmp > 0 {
			hiC = c
		} else if !cok {
			return nil, nil, false
		}
	}
	if loC == nil {
		return nil, nil, false
	}
	return loC, hiC, true
}

func cmpConst(a, b *plan.Const) (int, bool) {
	return value.CompareSQL(a.V, b.V)
}

func flipCmp(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.CmpLt:
		return plan.CmpGt
	case plan.CmpLe:
		return plan.CmpGe
	case plan.CmpGt:
		return plan.CmpLt
	case plan.CmpGe:
		return plan.CmpLe
	}
	return op // Eq, Ne are symmetric
}
