package auditdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"auditdb/internal/engine"
	"auditdb/internal/value"
)

// skipTestRows spans several storage chunks (ChunkRows = 4096) so the
// pruning paths — zone maps, sketches, chunk-emptying deletes — all
// have room to act.
const skipTestRows = 10240

const skipWatchExpr = "Audit_Watch"

// buildSkipEngine loads a multi-chunk table, registers an audit
// expression whose watch set is concentrated in one chunk, and turns
// audit-all on so every query carries a probe.
func buildSkipEngine(t *testing.T, workers int) *engine.Engine {
	t.Helper()
	eng := engine.New()
	if _, err := eng.Exec("CREATE TABLE People (ID INT PRIMARY KEY, Grp INT, Val INT)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < skipTestRows; i++ {
		if b.Len() == 0 {
			b.WriteString("INSERT INTO People VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d)", i, i/100, i%1000)
		if (i+1)%1024 == 0 || i == skipTestRows-1 {
			if _, err := eng.Exec(b.String()); err != nil {
				t.Fatal(err)
			}
			b.Reset()
		}
	}
	_, err := eng.Exec(`CREATE AUDIT EXPRESSION Audit_Watch AS
		SELECT * FROM People WHERE ID BETWEEN 8200 AND 8260
		FOR SENSITIVE TABLE People, PARTITION BY ID`)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetAuditAll(true)
	if workers > 1 {
		eng.SetDefaultWorkers(workers)
		eng.SetParallelMinRows(1)
	}
	return eng
}

func engAccessedKeys(r *engine.Result, expr string) []string {
	var out []string
	if r.Accessed != nil {
		for _, v := range r.Accessed.IDs(expr) {
			out = append(out, value.KeyOf(v))
		}
	}
	return out
}

// skipEquivalenceQueries mixes selective filters (zone-map pruning),
// chunk-boundary ranges, full scans, watch-set hits, aggregates, and
// null predicates.
var skipEquivalenceQueries = []string{
	"SELECT * FROM People WHERE Val BETWEEN 100 AND 120",
	"SELECT * FROM People WHERE ID BETWEEN 4000 AND 4200",
	"SELECT * FROM People WHERE ID = 8230",
	"SELECT COUNT(*), MIN(Val), MAX(Val) FROM People",
	"SELECT Grp, COUNT(*) FROM People WHERE Val < 50 GROUP BY Grp",
	"SELECT * FROM People WHERE Val IS NULL",
	"SELECT * FROM People WHERE ID > 9000 AND Val BETWEEN 0 AND 5",
}

// TestSkippingEquivalenceRandomDML is the property test for the data
// skipping layer: under randomized DML interleavings (inserts, point
// and range deletes, zone-map-widening and NULL-ing updates), every
// query must return the same rows AND record the same ACCESSED id-set
// whether chunk skipping is on or off — serially and at workers=8.
func TestSkippingEquivalenceRandomDML(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				rng := rand.New(rand.NewSource(seed))
				eng := buildSkipEngine(t, workers)
				skipOn := eng.NewSession()
				defer skipOn.Close()
				skipOff := eng.NewSession()
				defer skipOff.Close()
				skipOff.SetSkipping(false)
				if !skipOn.SkippingOn() || skipOff.SkippingOn() {
					t.Fatal("skipping knob: want default on, explicit off")
				}

				alive := make([]int, skipTestRows)
				for i := range alive {
					alive[i] = i
				}
				nextID := 20000

				for phase := 0; phase < 4; phase++ {
					for op := 0; op < 150; op++ {
						var sql string
						switch rng.Intn(10) {
						case 0, 1, 2: // insert fresh rows (can grow a new chunk)
							sql = fmt.Sprintf("INSERT INTO People VALUES (%d, %d, %d)",
								nextID, rng.Intn(200), rng.Intn(1000))
							alive = append(alive, nextID)
							nextID++
						case 3, 4: // point delete
							if len(alive) == 0 {
								continue
							}
							i := rng.Intn(len(alive))
							sql = fmt.Sprintf("DELETE FROM People WHERE ID = %d", alive[i])
							alive = append(alive[:i], alive[i+1:]...)
						case 5: // range delete: chunk-emptying pressure
							lo := rng.Intn(skipTestRows)
							sql = fmt.Sprintf("DELETE FROM People WHERE ID BETWEEN %d AND %d", lo, lo+60)
							kept := alive[:0]
							for _, id := range alive {
								if id < lo || id > lo+60 {
									kept = append(kept, id)
								}
							}
							alive = kept
						case 6: // widening update: stretch the Val zone map
							if len(alive) == 0 {
								continue
							}
							sql = fmt.Sprintf("UPDATE People SET Val = %d WHERE ID = %d",
								100000+rng.Intn(1000), alive[rng.Intn(len(alive))])
						case 7: // NULL-ing update: exercise null counts
							if len(alive) == 0 {
								continue
							}
							sql = fmt.Sprintf("UPDATE People SET Val = NULL WHERE ID = %d",
								alive[rng.Intn(len(alive))])
						default: // ordinary update
							if len(alive) == 0 {
								continue
							}
							sql = fmt.Sprintf("UPDATE People SET Val = %d, Grp = %d WHERE ID = %d",
								rng.Intn(1000), rng.Intn(200), alive[rng.Intn(len(alive))])
						}
						if _, err := eng.Exec(sql); err != nil {
							t.Fatalf("seed=%d phase=%d: %s: %v", seed, phase, sql, err)
						}
					}

					for _, q := range skipEquivalenceQueries {
						ron, err := skipOn.Query(q)
						if err != nil {
							t.Fatalf("seed=%d phase=%d skipping=on %q: %v", seed, phase, q, err)
						}
						roff, err := skipOff.Query(q)
						if err != nil {
							t.Fatalf("seed=%d phase=%d skipping=off %q: %v", seed, phase, q, err)
						}
						if !sameStrings(canonical(ron.Rows), canonical(roff.Rows)) {
							t.Fatalf("seed=%d phase=%d %q: rows diverge with skipping on (%d) vs off (%d)",
								seed, phase, q, len(ron.Rows), len(roff.Rows))
						}
						if on, off := engAccessedKeys(ron, skipWatchExpr), engAccessedKeys(roff, skipWatchExpr); !sameStrings(on, off) {
							t.Fatalf("seed=%d phase=%d %q: ACCESSED diverges with skipping on (%d ids) vs off (%d ids)",
								seed, phase, q, len(on), len(off))
						}
					}
				}
			}
		})
	}
}

// TestSkippingActuallySkips guards against the layer silently
// disabling itself: a selective zone-map predicate on a freshly loaded
// multi-chunk table must report skipped chunks in EXPLAIN ANALYZE.
func TestSkippingActuallySkips(t *testing.T) {
	eng := buildSkipEngine(t, 1)
	out, err := eng.ExplainAnalyze("SELECT * FROM People WHERE ID BETWEEN 0 AND 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "chunks=2/1") {
		t.Fatalf("EXPLAIN ANALYZE should show 2 skipped / 1 scanned chunks, got:\n%s", out)
	}
	// The fused path must elide audit probes for chunks the sensitive-ID
	// sketch refutes: a full scan under a watch set concentrated in one
	// chunk skips the probe work for the other chunks (reason=audit).
	if _, err := eng.Query("SELECT * FROM People WHERE Val >= 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query("SELECT * FROM People WHERE ID BETWEEN 0 AND 10"); err != nil {
		t.Fatal(err)
	}
	snap := eng.StatsSnapshot()
	if snap["chunks_skipped_audit"] == 0 {
		t.Fatalf("chunks_skipped_audit = 0 after a sparse-watch full scan; stats = %v", snap)
	}
	if snap["chunks_skipped_filter"] == 0 {
		t.Fatalf("chunks_skipped_filter = 0 after a selective range scan; stats = %v", snap)
	}

	// With skipping off the same query scans every chunk.
	sess := eng.NewSession()
	defer sess.Close()
	sess.SetSkipping(false)
	if r, err := sess.Query("SELECT * FROM People WHERE ID BETWEEN 0 AND 10"); err != nil || len(r.Rows) != 11 {
		t.Fatalf("skip-off query = %d rows, err %v; want 11", len(r.Rows), err)
	}
	before := eng.StatsSnapshot()
	if _, err := sess.Query("SELECT * FROM People WHERE Val >= 0"); err != nil {
		t.Fatal(err)
	}
	after := eng.StatsSnapshot()
	if after["chunks_skipped_audit"] != before["chunks_skipped_audit"] ||
		after["chunks_skipped_filter"] != before["chunks_skipped_filter"] {
		t.Fatal("skip-off session moved the skipped-chunk counters")
	}
}
