package engine

// Parallel-execution knobs. The engine ships serial by default
// (defaultWorkers = 1): embedded use — tests, the offline auditor, the
// workbench — keeps the exact serial executor unless a caller opts in.
// auditdbd raises the default to GOMAXPROCS via -workers, and any
// session can override its own budget with SET WORKERS.

// DefaultParallelMinRows is the planner's default parallelism
// threshold: fragments whose driving scan is estimated below this many
// rows stay serial, because worker startup and exchange costs would
// dominate. Tests lower it via SetParallelMinRows to force parallel
// plans over small fixtures.
const DefaultParallelMinRows = 8192

// SetDefaultWorkers sets the engine-wide worker budget inherited by
// sessions that have not run SET WORKERS. Values below 1 clamp to 1
// (serial).
func (e *Engine) SetDefaultWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.defaultWorkers.Store(int64(n))
	e.execWorkers.Set(int64(n))
}

// DefaultWorkers returns the engine-wide worker budget.
func (e *Engine) DefaultWorkers() int {
	return int(e.defaultWorkers.Load())
}

// SetParallelMinRows sets the estimated-input-size threshold below
// which the planner keeps fragments serial.
func (e *Engine) SetParallelMinRows(n int) {
	if n < 1 {
		n = 1
	}
	e.parallelMinRows.Store(int64(n))
}

// workersFor resolves the worker budget for one statement: the
// session's SET WORKERS value when set, else the engine default.
func (e *Engine) workersFor(sess *Session) int {
	if w := sess.Workers(); w > 0 {
		return w
	}
	if w := e.DefaultWorkers(); w > 1 {
		return w
	}
	return 1
}

// tableEstimate is the planner's input-size estimate (opt.EstimateFn):
// current stored cardinality, which is exact at plan time — DML
// appended after the plan opens is invisible to the scan's snapshot
// bound anyway.
func (e *Engine) tableEstimate(table string) int64 {
	tbl, ok := e.store.Table(table)
	if !ok {
		return 0
	}
	return int64(tbl.Len())
}
