// Package auditdb is an embeddable, in-memory SQL database with
// row-level auditing of SELECT queries — a from-scratch Go
// reproduction of "SELECT Triggers For Data Auditing" (Fabbri,
// Ramamurthy, Kaushik; ICDE 2013).
//
// Beyond a conventional SQL engine (joins, aggregates, subqueries,
// DML, classic AFTER triggers), it supports the paper's auditing DDL:
//
//	CREATE AUDIT EXPRESSION Audit_Alice AS
//	    SELECT * FROM Patients WHERE Name = 'Alice'
//	    FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
//
//	CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
//	    INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
//
// Every SELECT (including those inside trigger actions) is then
// instrumented with audit operators — no-op probes placed by the
// paper's highest-commutative-node algorithm — and when a query
// accesses a sensitive row, the trigger's action runs with the
// ACCESSED internal state bound to the recorded partition keys.
//
// Guarantees follow the paper: no false negatives for any SQL query,
// and no false positives for select-join queries; an exact offline
// auditor (package auditdb/internal/offline, surfaced here as
// DB.OfflineAudit) verifies the remainder.
package auditdb

import (
	"fmt"
	"io"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/offline"
	"auditdb/internal/value"
)

// Placement selects the audit-operator placement heuristic.
type Placement = core.Heuristic

// Placement heuristics (§III-C of the paper).
const (
	// PlacementLeafNode audits at the sensitive table's scans: never a
	// false negative, many false positives.
	PlacementLeafNode = core.LeafNode
	// PlacementHighestNode audits at the highest edge exposing the
	// partition key: fewest false positives but unsound (can miss
	// accesses); provided for comparison only.
	PlacementHighestNode = core.HighestNode
	// PlacementHCN is the paper's highest-commutative-node algorithm
	// and the default.
	PlacementHCN = core.HighestCommutativeNode
)

// Value is a SQL scalar value.
type Value = value.Value

// Row is a result tuple.
type Row = value.Row

// Result is the outcome of a statement: query rows, DML counts, and —
// for audited SELECTs — the ACCESSED state per audit expression.
type Result struct {
	Columns      []string
	Rows         []Row
	RowsAffected int
	accessed     *core.Accessed
}

// AccessedIDs returns the partition-by keys recorded for the named
// audit expression during this query, sorted. Empty when the statement
// was not an audited SELECT.
func (r *Result) AccessedIDs(auditExpr string) []Value {
	if r.accessed == nil {
		return nil
	}
	return r.accessed.IDs(auditExpr)
}

// AccessedCount returns len(AccessedIDs(auditExpr)) without copying.
func (r *Result) AccessedCount(auditExpr string) int {
	if r.accessed == nil {
		return 0
	}
	return r.accessed.Len(auditExpr)
}

// AuditedExpressions lists the audit expressions with at least one
// recorded access for this query.
func (r *Result) AuditedExpressions() []string {
	if r.accessed == nil {
		return nil
	}
	return r.accessed.Expressions()
}

// DB is one in-memory database with SELECT-trigger auditing. A DB is a
// thin wrapper over the engine's default session; for concurrent
// multi-user access open one Session per user (or run the auditdbd
// network server, which does so per connection).
type DB struct {
	eng *engine.Engine
}

// Open creates an empty database with the default (HCN) placement.
func Open() *DB {
	return &DB{eng: engine.New()}
}

// Session is one user's execution context over a shared database:
// per-session USERID() identity, audit-all flag, placement heuristic,
// and SQL-level transaction. Sessions are safe to use concurrently
// with each other (a single Session is not goroutine-safe, like
// database/sql.Conn); trigger actions fired by a session's queries
// attribute the access to that session's user.
type Session struct {
	s *engine.Session
}

// NewSession opens an independent session seeded from the database's
// current settings.
func (db *DB) NewSession() *Session { return &Session{s: db.eng.NewSession()} }

// Exec parses and executes one SQL statement under this session.
func (s *Session) Exec(sql string) (*Result, error) {
	r, err := s.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// ExecScript executes a semicolon-separated script under this session.
func (s *Session) ExecScript(sql string) (*Result, error) {
	r, err := s.s.ExecScript(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// Query executes an audited SELECT under this session.
func (s *Session) Query(sql string) (*Result, error) {
	r, err := s.s.Query(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// SetUser sets the identity reported by userid() for this session.
func (s *Session) SetUser(u string) { s.s.SetUser(u) }

// User returns the session's current identity.
func (s *Session) User() string { return s.s.User() }

// SetAuditAll toggles audit-all instrumentation for this session only.
func (s *Session) SetAuditAll(on bool) { s.s.SetAuditAll(on) }

// SetPlacement selects this session's audit-operator placement
// heuristic.
func (s *Session) SetPlacement(p Placement) { s.s.SetHeuristic(p) }

// Prepare parses a ?-parameterized statement bound to this session.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	p, err := s.s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// Begin opens a transaction attributed to this session, blocking until
// other writers finish.
func (s *Session) Begin() *Tx { return &Tx{t: s.s.Begin()} }

// Close ends the session, rolling back any open SQL-level transaction.
func (s *Session) Close() error { return s.s.Close() }

// Exec parses and executes one SQL statement (DDL, DML, query, or
// auditing DDL).
func (db *DB) Exec(sql string) (*Result, error) {
	r, err := db.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// ExecScript executes a semicolon-separated script and returns the
// last statement's result.
func (db *DB) ExecScript(sql string) (*Result, error) {
	r, err := db.eng.ExecScript(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// Query executes a SELECT. If audit expressions with ON ACCESS
// triggers exist (or AuditAll is on), the plan is instrumented and
// triggers fire after the query completes.
func (db *DB) Query(sql string) (*Result, error) {
	r, err := db.eng.Query(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

func wrap(r *engine.Result) *Result {
	return &Result{
		Columns:      r.Columns,
		Rows:         r.Rows,
		RowsAffected: r.RowsAffected,
		accessed:     r.Accessed,
	}
}

// SetUser sets the session user reported by userid() and recorded by
// logging trigger actions.
func (db *DB) SetUser(u string) { db.eng.SetUser(u) }

// SetPlacement selects the audit-operator placement heuristic for
// subsequent queries.
func (db *DB) SetPlacement(p Placement) { db.eng.SetHeuristic(p) }

// SetAuditAll instruments every query for every audit expression even
// without triggers; Result.AccessedIDs then exposes the ACCESSED
// state directly. Useful for monitoring dashboards and benchmarks.
func (db *DB) SetAuditAll(on bool) { db.eng.SetAuditAll(on) }

// OnNotify installs the callback for NOTIFY trigger actions (the
// paper's SEND EMAIL).
func (db *DB) OnNotify(fn func(msg string)) { db.eng.OnNotify(fn) }

// AccessEvent reports one query's accesses to one audit expression in
// real time (before query results are returned to the caller).
type AccessEvent = engine.AccessEvent

// OnAccess installs a real-time access callback: it fires for every
// audited SELECT that touched sensitive data, carrying the user, the
// SQL text and the accessed partition keys. This is the paper's
// "immediate feedback" scenario (§I) without declaring any trigger.
func (db *DB) OnAccess(fn func(ev AccessEvent)) { db.eng.OnAccess(fn) }

// Explain returns the query's execution plan as an indented tree;
// instrumented plans include the audit operators at their placed
// positions.
func (db *DB) Explain(sql string, instrumented bool) (string, error) {
	return db.eng.Explain(sql, instrumented)
}

// ExplainAnalyze executes the query for real with every operator
// instrumented and returns the plan annotated with observed rows,
// batches, wall time, and audit-probe counts. It is side-effect-free
// with respect to auditing: no trigger fires and no ACCESSED state is
// recorded.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	return db.eng.ExplainAnalyze(sql)
}

// OfflineReport is the exact (Definition 2.5) audit of one query.
type OfflineReport struct {
	// AccessedIDs is ground truth: the sensitive partition keys whose
	// tuples influence the query result.
	AccessedIDs []Value
	// Candidates and Executions describe the audit's cost.
	Candidates, Executions int
	// RowsScanned totals the storage rows read across every
	// re-execution — the offline audit's I/O bill.
	RowsScanned int64
}

// OfflineAudit runs the exact offline auditor for a query against an
// audit expression: tuple-deletion re-execution semantics, with
// candidates pruned to the leaf-node superset. This is the verifier
// the paper pairs with SELECT triggers (Figure 1).
func (db *DB) OfflineAudit(sql, auditExpr string) (*OfflineReport, error) {
	ae, ok := db.eng.Registry().Get(auditExpr)
	if !ok {
		return nil, fmt.Errorf("unknown audit expression %q", auditExpr)
	}
	rep, err := offline.New(db.eng.Catalog(), db.eng.Store()).Audit(sql, ae)
	if err != nil {
		return nil, err
	}
	return &OfflineReport{
		AccessedIDs: rep.AccessedIDs,
		Candidates:  rep.Candidates,
		Executions:  rep.Executions,
		RowsScanned: rep.RowsScanned,
	}, nil
}

// AuditExpressionCardinality returns the current size of an audit
// expression's materialized sensitive-ID set.
func (db *DB) AuditExpressionCardinality(name string) (int, error) {
	ae, ok := db.eng.Registry().Get(name)
	if !ok {
		return 0, fmt.Errorf("unknown audit expression %q", name)
	}
	return ae.Cardinality(), nil
}

// Tx is an explicit transaction. The database's writer lock is held
// until Commit or Rollback; rollback undoes every row change the
// transaction (and any triggers it fired) applied and restores the
// audit-expression ID sets. SQL-level BEGIN/COMMIT/ROLLBACK through
// Exec work too and share the same machinery.
type Tx struct {
	t *engine.Txn
}

// Begin opens a transaction, blocking until other writers finish.
func (db *DB) Begin() *Tx { return &Tx{t: db.eng.Begin()} }

// Exec runs a statement inside the transaction.
func (tx *Tx) Exec(sql string) (*Result, error) {
	r, err := tx.t.Exec(sql)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

// Query runs an audited SELECT inside the transaction.
func (tx *Tx) Query(sql string) (*Result, error) { return tx.Exec(sql) }

// Commit makes the transaction's changes permanent.
func (tx *Tx) Commit() error { return tx.t.Commit() }

// Rollback undoes the transaction's changes.
func (tx *Tx) Rollback() error { return tx.t.Rollback() }

// Stmt is a prepared statement with positional ? parameters. Parsing
// happens once; planning reflects the current catalog and audit
// configuration each run.
type Stmt struct {
	p *engine.Prepared
}

// Prepare parses a statement containing ? placeholders for repeated
// execution, e.g. db.Prepare("SELECT * FROM Patients WHERE Zip = ?").
func (db *DB) Prepare(sql string) (*Stmt, error) {
	p, err := db.eng.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// NumParams reports how many ? placeholders the statement declares.
func (s *Stmt) NumParams() int { return s.p.NumParams() }

// Run executes the statement, binding Go values to the placeholders in
// order. Supported types: nil, bool, int, int64, float64, string, and
// Value.
func (s *Stmt) Run(args ...any) (*Result, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("parameter %d: %w", i+1, err)
		}
		params[i] = v
	}
	r, err := s.p.Run(params...)
	if err != nil {
		return nil, err
	}
	return wrap(r), nil
}

func toValue(a any) (Value, error) {
	switch x := a.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case Value:
		return x, nil
	default:
		return value.Null, fmt.Errorf("unsupported parameter type %T", a)
	}
}

// Save serializes the database (schema, rows, indexes, audit
// expressions, triggers) as a SQL script that Restore replays.
func (db *DB) Save(w io.Writer) error { return db.eng.Dump(w) }

// Restore loads a database previously written by Save. Audit
// expressions re-materialize their ID sets from the restored rows, so
// auditing resumes exactly where it left off.
func Restore(r io.Reader) (*DB, error) {
	script, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	db := Open()
	if _, err := db.ExecScript(string(script)); err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	return db, nil
}

// Stats returns engine activity counters (queries, statements,
// triggers fired, notifications, rows audited).
func (db *DB) Stats() map[string]int64 { return db.eng.StatsSnapshot() }

// Engine exposes the underlying engine for advanced integrations
// (workload generators, the experiment harness).
func (db *DB) Engine() *engine.Engine { return db.eng }
