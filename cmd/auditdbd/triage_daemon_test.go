package main

import (
	"path/filepath"
	"testing"
	"time"

	"auditdb/internal/client"
)

// TestTriageDaemon drives budgeted triage through the daemon: audited
// queries enqueue risk-scored events, background workers chain signed
// verdicts, SHOW AUDIT VERDICTS reads them over the wire, the mixed
// stream verifies, and a SIGTERM drain flushes the backlog before the
// final checkpoint. Restart then proves the verdicts persist.
func TestTriageDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon test builds the binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-sync", "always", "-demo", "-grace", "10s",
		"-triage-workers", "2", "-triage-queue", "64"}

	cmd, addr := startDaemon(t, bin, args...)
	c, err := client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetUser("dr_mallory"); err != nil {
		t.Fatal(err)
	}
	const firings = 5
	for i := 0; i < firings; i++ {
		if _, err := c.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
			t.Fatalf("audited query %d: %v", i, err)
		}
	}

	// Wait for the workers to drain: each firing must end as a verdict.
	deadline := time.Now().Add(10 * time.Second)
	var rows int
	for time.Now().Before(deadline) {
		r, err := c.Exec("SHOW AUDIT VERDICTS")
		if err != nil {
			t.Fatalf("SHOW AUDIT VERDICTS: %v", err)
		}
		rows = len(r.Rows)
		if rows == firings {
			for _, row := range r.Rows {
				if row[2].(string) != "confirmed" {
					t.Fatalf("verdict outcome = %v, want confirmed", row[2])
				}
				if row[4].(string) != "dr_mallory" {
					t.Fatalf("verdict user = %v", row[4])
				}
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rows != firings {
		t.Fatalf("verdicts = %d, want %d", rows, firings)
	}

	// The chain now interleaves audits and verdicts: both verify.
	v, err := c.VerifyAuditLog()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid || v.Records != 2*firings {
		t.Fatalf("verify = %+v, want valid with %d records", v, 2*firings)
	}

	// SET triage = off gates this session out of the queue.
	if err := c.SetTriage(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	r, err := c.Exec("SHOW AUDIT VERDICTS")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != firings {
		t.Fatalf("triage-off firing still verified: %d verdicts", len(r.Rows))
	}
	c.Close()
	sigtermAndWait(t, cmd)

	// Restart: the verdict records and their chain survive (the one
	// extra audit record came from the gated firing above).
	cmd, addr = startDaemon(t, bin, args...)
	defer func() { sigtermAndWait(t, cmd) }()
	c, err = client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err = c.VerifyAuditLog()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid || v.Records != 2*firings+1 {
		t.Fatalf("post-restart verify = %+v, want valid with %d records", v, 2*firings+1)
	}
}
