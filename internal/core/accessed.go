package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// idRecord is the per-expression set of recorded IDs. Integer IDs — the
// overwhelmingly common partition-by key kind — live in a map keyed by
// the raw int64, so recording one costs a single map insert and zero
// allocations (no encoded-key string); every other kind falls back to a
// string-keyed map.
type idRecord struct {
	ints  map[int64]struct{}
	other map[string]value.Value
}

func (r *idRecord) add(id value.Value) {
	if id.Kind == value.KindInt {
		if r.ints == nil {
			r.ints = make(map[int64]struct{})
		}
		r.ints[id.I] = struct{}{}
		return
	}
	if r.other == nil {
		r.other = make(map[string]value.Value)
	}
	r.other[value.KeyOf(id)] = id
}

func (r *idRecord) size() int {
	if r == nil {
		return 0
	}
	return len(r.ints) + len(r.other)
}

// Accessed is a query's ACCESSED internal state (§II of the paper): the
// per-query, in-memory relation of partition-by IDs recorded by the
// audit operators in its plan. When a plan carries several audit
// operators (multiple expressions, or one per subquery block), the
// state holds the union per expression.
type Accessed struct {
	mu     sync.Mutex
	byExpr map[string]*idRecord
	// observed counts every row an audit operator inspected,
	// independent of matches; used by the overhead benchmarks.
	observed atomic.Int64
}

// NewAccessed returns empty ACCESSED state for one query execution.
func NewAccessed() *Accessed {
	return &Accessed{byExpr: make(map[string]*idRecord)}
}

func (a *Accessed) record(expr string) *idRecord {
	rec, ok := a.byExpr[expr]
	if !ok {
		rec = &idRecord{}
		a.byExpr[expr] = rec
	}
	return rec
}

// Record notes that id (a sensitive ID of the named expression) was
// seen by an audit operator.
func (a *Accessed) Record(expr string, id value.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.record(expr).add(id)
}

// RecordBatch notes a batch of sensitive IDs under one lock
// acquisition. It is equivalent to calling Record for each element
// (the set semantics absorb duplicates); the batched executor uses it
// so the per-row cost of the ACCESSED mutex disappears from the probe
// hot path.
func (a *Accessed) RecordBatch(expr string, ids []value.Value) {
	if len(ids) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := a.record(expr)
	for _, id := range ids {
		rec.add(id)
	}
}

// AddObserved bulk-increments the observed-row counter (one atomic add
// per batch on the vectorized path).
func (a *Accessed) AddObserved(n int64) { a.observed.Add(n) }

// IDs returns the audited IDs for one expression, sorted for
// deterministic consumption by trigger actions and tests.
func (a *Accessed) IDs(expr string) []value.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := a.byExpr[expr]
	if rec == nil {
		return nil
	}
	out := make([]value.Value, 0, rec.size())
	for i := range rec.ints {
		out = append(out, value.NewInt(i))
	}
	for _, v := range rec.other {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Compare(out[i], out[j]) < 0 })
	return out
}

// Len returns the number of distinct audited IDs for one expression.
func (a *Accessed) Len(expr string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byExpr[expr].size()
}

// Expressions returns the names of expressions with at least one
// audited ID, sorted.
func (a *Accessed) Expressions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.byExpr))
	for name, rec := range a.byExpr {
		if rec.size() > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Observed returns how many rows flowed through audit operators.
func (a *Accessed) Observed() int64 { return a.observed.Load() }

// MergeSets unions a worker-local observation set into the expression's
// record under one lock acquisition — the union-merge step of parallel
// audit probing. Audit probes are pure and commutative (paper Claim
// 3.6), so the union over workers equals the serial ACCESSED set
// regardless of how morsels were interleaved.
func (a *Accessed) MergeSets(expr string, ints map[int64]struct{}, other map[string]value.Value) {
	if len(ints) == 0 && len(other) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := a.record(expr)
	if len(ints) > 0 && rec.ints == nil {
		rec.ints = make(map[int64]struct{}, len(ints))
	}
	for i := range ints {
		rec.ints[i] = struct{}{}
	}
	if len(other) > 0 && rec.other == nil {
		rec.other = make(map[string]value.Value, len(other))
	}
	for k, v := range other {
		rec.other[k] = v
	}
}

// Probe is the audit operator's sink (plan.AuditSink): a hash probe of
// the expression's materialized sensitive-ID set; matches are recorded
// into the ACCESSED state. This is the paper's "hash join whose build
// side is the audit expression's ID view" (§IV-A.2).
//
// A Probe belongs to one query execution. Query execution is
// single-threaded, so the row-at-a-time path keeps an unsynchronized
// first-seen cache: each sensitive ID pays the Record cost (lock + map
// insert) once, and every further occurrence in the stream is a cheap
// local lookup. The batch path skips the cache — RecordBatch already
// dedups in the integer record map at the same per-element cost, so a
// probe-side cache would only double the map work.
type Probe struct {
	Expr *AuditExpression
	Acc  *Accessed

	seenInts map[int64]struct{}
	seenKeys map[string]struct{}
	// fresh accumulates a batch's matches so ObserveBatch records them
	// with one RecordBatch call; reused across batches.
	fresh []value.Value
}

// Observe implements plan.AuditSink.
func (p *Probe) Observe(v value.Value) {
	p.Acc.observed.Add(1)
	if p.match(v) {
		p.Acc.Record(p.Expr.Meta.Name, v)
	}
}

// ObserveCount implements plan.CountingAuditSink: the fused kernel
// advances the observed-row counter for a chunk whose sensitive-ID
// sketch refuted every row, eliding the per-row probes. ACCESSED is
// untouched — identical to n probes that all missed.
func (p *Probe) ObserveCount(n int64) { p.Acc.observed.Add(n) }

// ObserveBatch implements plan.BatchAuditSink: one atomic add for the
// observed counter, the lock-free membership probe per value, and at
// most one ACCESSED lock acquisition per batch.
func (p *Probe) ObserveBatch(vs []value.Value) {
	p.Acc.observed.Add(int64(len(vs)))
	p.fresh = p.fresh[:0]
	for _, v := range vs {
		if p.Expr.Contains(v) {
			p.fresh = append(p.fresh, v)
		}
	}
	if len(p.fresh) > 0 {
		p.Acc.RecordBatch(p.Expr.Meta.Name, p.fresh)
	}
}

// Fork implements plan.ParallelAuditSink: it returns a worker-local
// probe whose matches accumulate in private sets, untouched by any
// lock, until Merge folds them into the shared ACCESSED state. The
// membership side (Expr.Contains) reads an atomic snapshot of the ID
// set and is safe to share across workers.
func (p *Probe) Fork() plan.WorkerAuditSink {
	return &workerProbe{parent: p}
}

// workerProbe is one worker's forked audit sink. All fields are
// touched by exactly one goroutine until Merge, which the exchange
// operator calls after the worker has stopped producing.
type workerProbe struct {
	parent   *Probe
	ints     map[int64]struct{}
	other    map[string]value.Value
	observed int64
}

// ObserveCount implements plan.CountingAuditSink on the worker-local
// sink: the fused kernel calls it for chunks whose sensitive-ID sketch
// refuted every row, keeping Observed() identical without per-row
// probes. ACCESSED is untouched, exactly as n misses would leave it.
func (w *workerProbe) ObserveCount(n int64) { w.observed += n }

// Observe implements plan.AuditSink on the worker-local sink.
func (w *workerProbe) Observe(v value.Value) {
	w.observed++
	if !w.parent.Expr.Contains(v) {
		return
	}
	w.add(v)
}

// ObserveBatch implements plan.BatchAuditSink on the worker-local
// sink: no locks, no atomics — the whole batch lands in private maps.
func (w *workerProbe) ObserveBatch(vs []value.Value) {
	w.observed += int64(len(vs))
	for _, v := range vs {
		if w.parent.Expr.Contains(v) {
			w.add(v)
		}
	}
}

func (w *workerProbe) add(v value.Value) {
	if v.Kind == value.KindInt {
		if w.ints == nil {
			w.ints = make(map[int64]struct{})
		}
		w.ints[v.I] = struct{}{}
		return
	}
	if w.other == nil {
		w.other = make(map[string]value.Value)
	}
	w.other[value.KeyOf(v)] = v
}

// Merge folds this worker's observations into the parent's ACCESSED
// state: one atomic add for the observed counter and one MergeSets
// lock acquisition — per worker per query, not per batch.
func (w *workerProbe) Merge() {
	if w.observed > 0 {
		w.parent.Acc.observed.Add(w.observed)
	}
	w.parent.Acc.MergeSets(w.parent.Expr.Meta.Name, w.ints, w.other)
	w.ints, w.other, w.observed = nil, nil, 0
}

// match performs the sensitive-ID membership probe and the first-seen
// dedup, returning true when v must be recorded into ACCESSED.
func (p *Probe) match(v value.Value) bool {
	if !p.Expr.Contains(v) {
		return false
	}
	if v.Kind == value.KindInt {
		if _, dup := p.seenInts[v.I]; dup {
			return false
		}
		if p.seenInts == nil {
			p.seenInts = make(map[int64]struct{})
		}
		p.seenInts[v.I] = struct{}{}
	} else {
		k := value.KeyOf(v)
		if _, dup := p.seenKeys[k]; dup {
			return false
		}
		if p.seenKeys == nil {
			p.seenKeys = make(map[string]struct{})
		}
		p.seenKeys[k] = struct{}{}
	}
	return true
}
