package triage

import (
	"time"

	"auditdb/internal/obs"
)

// Metrics is the triage subsystem's slice of the process metrics
// registry. A nil *Metrics is valid and drops every observation, so
// the service runs unobserved in unit tests and embedded use.
type Metrics struct {
	Enqueued  *obs.Counter    // triage_enqueued
	Dropped   *obs.Counter    // triage_dropped (evictions + rejected admissions)
	Verdicts  *obs.CounterVec // triage_verdicts by outcome
	Failed    *obs.Counter    // triage_failed (verdict could not be written)
	Depth     *obs.Gauge      // triage_queue_depth
	ScoreHist *obs.Histogram  // triage_score at enqueue
	VerifyDur *obs.Histogram  // triage_verify_seconds
}

// scoreBuckets spans the default model's range: one PRIORITY step is
// worth 16, so the buckets resolve both the heuristic-only band (<16)
// and several declared-priority bands.
var scoreBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewMetrics registers the triage metrics on r. Registration is
// idempotent (obs returns existing entries).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Enqueued: r.NewCounter("auditdb_triage_enqueued_total", "triage_enqueued",
			"Trigger firings admitted to the triage queue."),
		Dropped: r.NewCounter("auditdb_triage_dropped_total", "triage_dropped",
			"Triage events dropped by the bounded queue's lowest-score eviction policy."),
		Verdicts: r.NewCounterVec("auditdb_triage_verdicts_total", "triage_verdicts",
			"Signed triage verdict records appended to the audit chain, by outcome.", "outcome"),
		Failed: r.NewCounter("auditdb_triage_failed_total", "triage_failed",
			"Triage events consumed without a verdict (verification or append error)."),
		Depth: r.NewGauge("auditdb_triage_queue_depth", "triage_queue_depth",
			"Events currently resident in the triage queue."),
		ScoreHist: r.NewHistogram("auditdb_triage_score", "triage_score",
			"Risk score distribution of enqueued triage events.", scoreBuckets),
		VerifyDur: r.NewHistogram("auditdb_triage_verify_seconds", "triage_verify_seconds",
			"Offline verification wall time per triage event, in seconds.", obs.LatencyBuckets),
	}
}

func (m *Metrics) incEnqueued(score float64) {
	if m != nil {
		m.Enqueued.Inc()
		m.ScoreHist.Observe(score)
	}
}

func (m *Metrics) incDropped() {
	if m != nil {
		m.Dropped.Inc()
	}
}

func (m *Metrics) incVerdict(outcome string) {
	if m != nil {
		m.Verdicts.With(outcome).Inc()
	}
}

func (m *Metrics) incFailed() {
	if m != nil {
		m.Failed.Inc()
	}
}

func (m *Metrics) setDepth(n int) {
	if m != nil {
		m.Depth.Set(int64(n))
	}
}

func (m *Metrics) observeVerify(d time.Duration) {
	if m != nil {
		m.VerifyDur.ObserveDuration(d)
	}
}
