package offline_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/offline"
	"auditdb/internal/value"
)

// These property tests check the paper's two central claims on
// randomly generated queries against a randomly generated database:
//
//   - Claim 3.6 (no false negatives): for ANY query, offline
//     accessedIDs ⊆ hcn auditIDs.
//   - Theorem 3.7 (SJ exactness): for select-join queries, offline
//     accessedIDs == hcn auditIDs.

// randomDB builds a Patients/Disease database with randomized contents.
func randomDB(t *testing.T, rng *rand.Rand) (*engine.Engine, *core.AuditExpression) {
	t.Helper()
	e := engine.New()
	if _, err := e.ExecScript(`
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
	`); err != nil {
		t.Fatal(err)
	}
	names := []string{"Alice", "Bob", "Carol", "Dave", "Erin", "Frank"}
	zips := []string{"48109", "98052", "10001"}
	diseases := []string{"cancer", "flu", "diabetes"}
	n := 8 + rng.Intn(12)
	var ins []string
	for i := 1; i <= n; i++ {
		ins = append(ins, fmt.Sprintf("(%d, '%s', %d, '%s')",
			i, names[rng.Intn(len(names))], 18+rng.Intn(60), zips[rng.Intn(len(zips))]))
	}
	if _, err := e.Exec("INSERT INTO Patients VALUES " + strings.Join(ins, ", ")); err != nil {
		t.Fatal(err)
	}
	ins = ins[:0]
	for i := 1; i <= n; i++ {
		for d := 0; d < rng.Intn(3); d++ {
			ins = append(ins, fmt.Sprintf("(%d, '%s')", i, diseases[rng.Intn(len(diseases))]))
		}
	}
	if len(ins) > 0 {
		if _, err := e.Exec("INSERT INTO Disease VALUES " + strings.Join(ins, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Exec(`CREATE AUDIT EXPRESSION Audit_All AS
		SELECT * FROM Patients WHERE PatientID > 0
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	ae, _ := e.Registry().Get("Audit_All")
	return e, ae
}

// randomPredicate emits a predicate over the joined schema.
func randomPredicate(rng *rand.Rand, joined bool) string {
	var preds []string
	if rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("P.Age %s %d",
			[]string{"<", "<=", ">", ">=", "="}[rng.Intn(5)], 18+rng.Intn(60)))
	}
	if rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("P.Name = '%s'",
			[]string{"Alice", "Bob", "Carol"}[rng.Intn(3)]))
	}
	if rng.Intn(3) == 0 {
		preds = append(preds, fmt.Sprintf("P.Zip IN ('%s', '%s')",
			[]string{"48109", "98052"}[rng.Intn(2)], "10001"))
	}
	if joined && rng.Intn(2) == 0 {
		preds = append(preds, fmt.Sprintf("D.Disease = '%s'",
			[]string{"cancer", "flu", "diabetes"}[rng.Intn(3)]))
	}
	if len(preds) == 0 {
		return ""
	}
	return " AND " + strings.Join(preds, " AND ")
}

// randomSJQuery emits a select-join query (no aggregates, no top-k, no
// distinct, no subqueries): the Theorem 3.7 class.
func randomSJQuery(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		pred := randomPredicate(rng, false)
		if pred == "" {
			return "SELECT * FROM Patients P WHERE P.PatientID > 0"
		}
		return "SELECT * FROM Patients P WHERE P.PatientID > 0" + pred
	}
	return `SELECT P.PatientID, P.Name, D.Disease FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID` + randomPredicate(rng, true)
}

// randomComplexQuery adds an aggregate, top-k or distinct layer: the
// Claim 3.6 class where hcn may over- but never under-report.
func randomComplexQuery(rng *rand.Rand) string {
	base := randomSJQuery(rng)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf(`SELECT Zip, COUNT(*) FROM Patients P WHERE P.PatientID > 0 %s GROUP BY Zip`,
			randomPredicate(rng, false))
	case 1:
		return fmt.Sprintf(`SELECT P.Name FROM Patients P, Disease D
			WHERE P.PatientID = D.PatientID %s ORDER BY P.Age LIMIT %d`,
			randomPredicate(rng, true), 1+rng.Intn(4))
	case 2:
		return fmt.Sprintf(`SELECT DISTINCT P.Zip FROM Patients P WHERE P.PatientID > 0 %s`,
			randomPredicate(rng, false))
	default:
		return base
	}
}

func idSet(vals []value.Value) map[int64]bool {
	out := make(map[int64]bool, len(vals))
	for _, v := range vals {
		out[v.Int()] = true
	}
	return out
}

func TestPropertySJExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		e, ae := randomDB(t, rng)
		aud := offline.New(e.Catalog(), e.Store())
		for q := 0; q < 5; q++ {
			sql := randomSJQuery(rng)
			r, err := e.Query(sql)
			if err != nil {
				t.Fatalf("trial %d query %q: %v", trial, sql, err)
			}
			online := idSet(r.Accessed.IDs("Audit_All"))
			rep, err := aud.Audit(sql, ae)
			if err != nil {
				t.Fatalf("offline %q: %v", sql, err)
			}
			exact := idSet(rep.AccessedIDs)
			if len(online) != len(exact) {
				t.Fatalf("trial %d: SJ exactness violated for %q:\n hcn=%v\n offline=%v",
					trial, sql, online, exact)
			}
			for id := range exact {
				if !online[id] {
					t.Fatalf("trial %d: id %d accessed but not audited for %q", trial, id, sql)
				}
			}
		}
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		e, ae := randomDB(t, rng)
		aud := offline.New(e.Catalog(), e.Store())
		for q := 0; q < 5; q++ {
			sql := randomComplexQuery(rng)
			r, err := e.Query(sql)
			if err != nil {
				t.Fatalf("trial %d query %q: %v", trial, sql, err)
			}
			online := idSet(r.Accessed.IDs("Audit_All"))
			rep, err := aud.Audit(sql, ae)
			if err != nil {
				t.Fatalf("offline %q: %v", sql, err)
			}
			for _, v := range rep.AccessedIDs {
				if !online[v.Int()] {
					t.Fatalf("trial %d: FALSE NEGATIVE — id %d accessed by %q but absent from hcn auditIDs %v",
						trial, v.Int(), sql, online)
				}
			}
		}
	}
}

func TestPropertyLeafSuperset(t *testing.T) {
	// Claim 3.5: leaf-node auditIDs ⊇ hcn auditIDs ⊇ offline.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		e, _ := randomDB(t, rng)
		for q := 0; q < 4; q++ {
			sql := randomComplexQuery(rng)
			e.SetHeuristic(core.HighestCommutativeNode)
			r1, err := e.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			hcn := idSet(r1.Accessed.IDs("Audit_All"))
			e.SetHeuristic(core.LeafNode)
			r2, err := e.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			leaf := idSet(r2.Accessed.IDs("Audit_All"))
			for id := range hcn {
				if !leaf[id] {
					t.Fatalf("trial %d: leaf missing id %d present under hcn for %q", trial, id, sql)
				}
			}
		}
	}
}
