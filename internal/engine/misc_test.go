package engine

import (
	"strings"
	"testing"

	"auditdb/internal/value"
)

func TestExecScriptReturnsLastResult(t *testing.T) {
	e := New()
	r, err := e.ExecScript(`
		CREATE TABLE T (x INT);
		INSERT INTO T VALUES (1), (2);
		SELECT COUNT(*) FROM T;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 2 {
		t.Errorf("last result = %+v", r)
	}
}

func TestExecRejectsMultipleStatements(t *testing.T) {
	e := New()
	if _, err := e.Exec("SELECT 1; SELECT 2"); err == nil {
		t.Error("Exec should reject scripts")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	e := New()
	for _, sql := range []string{
		"", "SELEC 1", "CREATE TABLE", "INSERT INTO",
	} {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestDDLErrors(t *testing.T) {
	e := newHealthDB(t)
	cases := []string{
		"CREATE TABLE Patients (x INT)",                        // duplicate
		"CREATE INDEX i ON Missing (x)",                        // missing table
		"CREATE INDEX i ON Patients (nope)",                    // missing column
		"DROP TABLE Missing",                                   // missing table
		"DROP TRIGGER missing_trigger",                         // missing trigger
		"DROP AUDIT EXPRESSION missing_expr",                   // missing expr
		"CREATE TABLE Bad (x INT, PRIMARY KEY (nope))",         // bad pk
		"CREATE TRIGGER t ON Missing AFTER INSERT AS SELECT 1", // missing table
		"CREATE TRIGGER t ON ACCESS TO Missing AS SELECT 1",    // missing expr
	}
	for _, sql := range cases {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE INDEX i1 ON Patients (Zip)")
	if _, err := e.Exec("CREATE INDEX i1 ON Patients (Zip)"); err == nil {
		t.Error("duplicate index should fail")
	}
}

func TestLoadRowsValidates(t *testing.T) {
	e := New()
	mustExec(t, e, "CREATE TABLE T (x INT PRIMARY KEY)")
	rows := []value.Row{{value.NewInt(1)}, {value.NewInt(1)}}
	if err := e.LoadRows("T", rows); err == nil {
		t.Error("duplicate pk in bulk load should fail")
	}
	// Failure must roll the whole batch back.
	r := mustQuery(t, e, "SELECT COUNT(*) FROM T")
	if r.Rows[0][0].Int() != 0 {
		t.Errorf("partial bulk load leaked rows: %v", r.Rows[0])
	}
	if err := e.LoadRows("Missing", rows); err == nil {
		t.Error("bulk load into missing table should fail")
	}
}

func TestUpdateWithCorrelatedSubqueryPredicate(t *testing.T) {
	e := newHealthDB(t)
	// Raise ages only for patients that have a disease on file.
	r := mustExec(t, e, `UPDATE Patients SET Age = Age + 100
		WHERE EXISTS (SELECT 1 FROM Disease D WHERE D.PatientID = Patients.PatientID)`)
	if r.RowsAffected != 5 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
	q := mustQuery(t, e, "SELECT COUNT(*) FROM Patients WHERE Age > 100")
	if q.Rows[0][0].Int() != 5 {
		t.Errorf("updated = %v", q.Rows[0])
	}
}

func TestDeleteWithInSubquery(t *testing.T) {
	e := newHealthDB(t)
	r := mustExec(t, e, `DELETE FROM Patients
		WHERE PatientID IN (SELECT PatientID FROM Disease WHERE Disease = 'flu')`)
	if r.RowsAffected != 2 {
		t.Fatalf("affected = %d", r.RowsAffected)
	}
}

func TestInsertSelectWithColumnList(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE TABLE Names (N VARCHAR(30), Extra INT)")
	mustExec(t, e, "INSERT INTO Names (N) SELECT Name FROM Patients WHERE Age >= 60")
	r := mustQuery(t, e, "SELECT N, Extra FROM Names")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "Erin" || !r.Rows[0][1].IsNull() {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.Exec("INSERT INTO Patients (PatientID, Name) VALUES (1, 'x', 3)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.Exec("INSERT INTO Patients (PatientID, PatientID) VALUES (1, 2)"); err == nil {
		t.Error("duplicate column in list should fail")
	}
	if _, err := e.Exec("INSERT INTO Patients (Nope) VALUES (1)"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestUpdateUnknownColumn(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.Exec("UPDATE Patients SET Nope = 1"); err == nil {
		t.Error("unknown SET column should fail")
	}
}

func TestAliasedUpdateDelete(t *testing.T) {
	e := newHealthDB(t)
	r := mustExec(t, e, "UPDATE Patients P SET Age = P.Age + 1 WHERE P.Name = 'Bob'")
	if r.RowsAffected != 1 {
		t.Errorf("aliased update affected = %d", r.RowsAffected)
	}
	r = mustExec(t, e, "DELETE FROM Patients P WHERE P.Name = 'Bob'")
	if r.RowsAffected != 1 {
		t.Errorf("aliased delete affected = %d", r.RowsAffected)
	}
}

func TestHeuristicAccessors(t *testing.T) {
	e := New()
	if e.Heuristic().String() != "hcn" {
		t.Errorf("default heuristic = %v", e.Heuristic())
	}
}

func TestExplainParseError(t *testing.T) {
	e := New()
	if _, err := e.Explain("SELECT FROM", true); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := e.Exec("EXPLAIN SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN of unknown table should fail")
	}
}

func TestConcatOperator(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Name || '@' || Zip FROM Patients WHERE PatientID = 1")
	if r.Rows[0][0].Str() != "Alice@48109" {
		t.Errorf("concat = %v", r.Rows[0])
	}
}

func TestOrderByPosition(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Name, Age FROM Patients ORDER BY 2 DESC LIMIT 1")
	if r.Rows[0][0].Str() != "Erin" {
		t.Errorf("order by position = %v", r.Rows)
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	e := New()
	if _, err := e.Query("CREATE TABLE T (x INT)"); err == nil {
		t.Error("Query should reject DDL")
	}
}

func TestTriggerOnAccessedKeywordTable(t *testing.T) {
	// A user table named "accessed" must not be shadowed by the
	// trigger pseudo-relation outside trigger bodies.
	e := New()
	mustExec(t, e, "CREATE TABLE accessed (x INT)")
	mustExec(t, e, "INSERT INTO accessed VALUES (7)")
	r := mustQuery(t, e, "SELECT x FROM accessed")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 7 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestStringFunctionsInQueries(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `SELECT UPPER(Name), LOWER(Zip), LENGTH(Name), SUBSTRING(Name, 1, 2)
		FROM Patients WHERE PatientID = 1`)
	row := r.Rows[0]
	if row[0].Str() != "ALICE" || row[2].Int() != 5 || row[3].Str() != "Al" {
		t.Errorf("row = %v", row)
	}
	if !strings.EqualFold(row[1].Str(), "48109") {
		t.Errorf("lower zip = %v", row[1])
	}
}

func TestViews(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, `CREATE VIEW Adults AS SELECT PatientID, Name FROM Patients WHERE Age >= 30`)
	r := mustQuery(t, e, "SELECT Name FROM Adults ORDER BY Name")
	if len(r.Rows) != 3 || r.Rows[0][0].Str() != "Alice" {
		t.Fatalf("view rows = %v", r.Rows)
	}
	// Views compose with joins and aliases.
	r = mustQuery(t, e, `SELECT A.Name, D.Disease FROM Adults A, Disease D
		WHERE A.PatientID = D.PatientID ORDER BY A.Name`)
	if len(r.Rows) != 3 {
		t.Errorf("joined view rows = %v", r.Rows)
	}
	// Views see fresh data.
	mustExec(t, e, "INSERT INTO Patients VALUES (10, 'Zoe', 44, 'x')")
	r = mustQuery(t, e, "SELECT COUNT(*) FROM Adults")
	if r.Rows[0][0].Int() != 4 {
		t.Errorf("view not live: %v", r.Rows[0])
	}
	// Errors.
	if _, err := e.Exec("CREATE VIEW Adults AS SELECT 1"); err == nil {
		t.Error("duplicate view should fail")
	}
	if _, err := e.Exec("CREATE VIEW Patients AS SELECT 1"); err == nil {
		t.Error("view/table collision should fail")
	}
	if _, err := e.Exec("CREATE VIEW Bad AS SELECT nope FROM Patients"); err == nil {
		t.Error("invalid defining query should fail")
	}
	if _, err := e.Exec("CREATE TABLE Adults (x INT)"); err == nil {
		t.Error("table/view collision should fail")
	}
	mustExec(t, e, "DROP VIEW Adults")
	if _, err := e.Query("SELECT * FROM Adults"); err == nil {
		t.Error("dropped view should be gone")
	}
}

func TestViewQueriesAreAudited(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE VIEW Zips AS SELECT PatientID, Zip FROM Patients;
	`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	// Reading Alice's row through the view must be detected: the view
	// expands to a plan whose sensitive-table scan carries the probe.
	r := mustQuery(t, e, "SELECT Zip FROM Zips WHERE PatientID = 1")
	if r.Accessed.Len("Audit_Alice") != 1 {
		t.Errorf("access through view not audited: %d", r.Accessed.Len("Audit_Alice"))
	}
	r = mustQuery(t, e, "SELECT Zip FROM Zips WHERE PatientID = 2")
	if r.Accessed.Len("Audit_Alice") != 0 {
		t.Errorf("false positive through view: %d", r.Accessed.Len("Audit_Alice"))
	}
}

func TestDropIndexStatement(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE INDEX idx_zip ON Patients (Zip)")
	mustExec(t, e, "DROP INDEX idx_zip")
	if _, err := e.Exec("DROP INDEX idx_zip"); err == nil {
		t.Error("double drop should fail")
	}
	// Queries still work post-drop (plain scan path).
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Patients WHERE Zip = '48109'")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("count = %v", r.Rows[0])
	}
}

func TestViewSurvivesDumpRestore(t *testing.T) {
	e := newHealthDB(t)
	mustExec(t, e, "CREATE VIEW Adults AS SELECT Name FROM Patients WHERE Age >= 30")
	var sb strings.Builder
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	e2 := New()
	if _, err := e2.ExecScript(sb.String()); err != nil {
		t.Fatalf("restore: %v\n%s", err, sb.String())
	}
	r := mustQuery(t, e2, "SELECT COUNT(*) FROM Adults")
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("restored view rows = %v", r.Rows[0])
	}
}

func TestAuditExpressionOverViewRejected(t *testing.T) {
	// Audit expressions must read real tables: a view-based definition
	// would break incremental maintenance, so the compile fails fast
	// (the view name is not resolvable in the definition's plan).
	e := newHealthDB(t)
	mustExec(t, e, "CREATE VIEW Adults AS SELECT PatientID FROM Patients WHERE Age >= 30")
	if _, err := e.Exec(`CREATE AUDIT EXPRESSION bad AS
		SELECT * FROM Adults
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err == nil {
		t.Error("audit expression over a view should be rejected")
	}
	// And the failed DDL must not leave catalog residue.
	if _, ok := e.Catalog().AuditExpr("bad"); ok {
		t.Error("failed audit DDL leaked into the catalog")
	}
}
