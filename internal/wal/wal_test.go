package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"auditdb/internal/obs"
	"auditdb/internal/value"
)

func intv(i int64) value.Value  { return value.Value{Kind: value.KindInt, I: i} }
func strv(s string) value.Value { return value.Value{Kind: value.KindString, S: s} }
func boolv(b bool) value.Value {
	v := value.Value{Kind: value.KindBool}
	if b {
		v.I = 1
	}
	return v
}
func floatv(f float64) value.Value { return value.Value{Kind: value.KindFloat, F: f} }

func sampleRecords() []*Record {
	return []*Record{
		{Type: RecCommit, Commit: &Commit{Ops: []Op{
			{Kind: OpInsert, Table: "Patients", New: value.Row{intv(1), strv("Alice"), boolv(true)}},
			{Kind: OpUpdate, Table: "Patients",
				Old: value.Row{intv(1), strv("Alice"), value.Null},
				New: value.Row{intv(1), strv("Alice"), floatv(98.6)}},
			{Kind: OpDelete, Table: "Log", Old: value.Row{intv(7), strv("x")}},
			{Kind: OpDDL, SQL: "CREATE TABLE T (A INT)"},
		}}},
		{Type: RecAudit, Audit: &Audit{
			Seq: 1, User: "dr_mallory", Expr: "Audit_Alice",
			SQL: "SELECT * FROM Patients", UnixNano: 12345, QID: 9001,
			IDs: []value.Value{intv(1), strv("alice")},
		}},
		{Type: RecCheckpoint, Checkpoint: &Checkpoint{AuditSeq: 1, UnixNano: 99}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	want := sampleRecords()
	for _, r := range want {
		buf = AppendRecord(buf, r)
	}
	got, valid, err := ScanBytes(buf)
	if err != nil || valid != len(buf) {
		t.Fatalf("ScanBytes: valid=%d/%d err=%v", valid, len(buf), err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// Every proper prefix must decode to some record prefix without
// panicking, and re-encoding the decoded records must reproduce
// exactly the valid bytes — the canonical-encoding invariant the fuzz
// test also pins.
func TestScanBytesTruncationEveryOffset(t *testing.T) {
	var buf []byte
	for _, r := range sampleRecords() {
		buf = AppendRecord(buf, r)
	}
	for cut := 0; cut < len(buf); cut++ {
		recs, valid, err := ScanBytes(buf[:cut])
		if valid > cut {
			t.Fatalf("cut %d: valid %d exceeds input", cut, valid)
		}
		if cut < len(buf) && err == nil && valid != cut {
			t.Fatalf("cut %d: scan stopped at %d with no error", cut, valid)
		}
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, buf[:valid]) {
			t.Fatalf("cut %d: re-encode != valid prefix", cut)
		}
	}
}

func TestScanBytesBitFlips(t *testing.T) {
	var buf []byte
	for _, r := range sampleRecords() {
		buf = AppendRecord(buf, r)
	}
	full, _, err := ScanBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), buf...)
			mut[i] ^= bit
			recs, valid, err := ScanBytes(mut)
			if err == nil && valid == len(mut) && len(recs) == len(full) {
				// A flip in a length prefix can re-frame the stream; the
				// CRC must still reject every record the flip touches.
				if reflect.DeepEqual(recs, full) {
					t.Fatalf("flip at byte %d bit %02x went undetected", i, bit)
				}
			}
		}
	}
}

func openTestWAL(t *testing.T, dir string, opts Options) (*Manager, *Recovery) {
	t.Helper()
	m, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, rec
}

func TestManagerCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	m, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	if !rec.WasFresh() {
		t.Fatalf("fresh dir reported prior state: %+v", rec)
	}
	ops1 := []Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(1)}}}
	ops2 := []Op{
		{Kind: OpDDL, SQL: "CREATE TABLE U (A INT)"},
		{Kind: OpInsert, Table: "U", New: value.Row{intv(2), strv("b")}},
	}
	if err := m.AppendCommit(ops1); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendCommit(ops2); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec2 := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m2.Close()
	if rec2.WasFresh() || rec2.HasSnapshot {
		t.Fatalf("unexpected recovery state: %+v", rec2)
	}
	if len(rec2.Commits) != 2 ||
		!reflect.DeepEqual(rec2.Commits[0].Ops, ops1) ||
		!reflect.DeepEqual(rec2.Commits[1].Ops, ops2) {
		t.Fatalf("recovered commits mismatch: %+v", rec2.Commits)
	}
}

func TestManagerTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(int64(i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	// Tear the tail mid-record.
	seg := filepath.Join(dir, dataDirName, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, int64(len(b)-3)); err != nil {
		t.Fatal(err)
	}

	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	if !rec.Repaired {
		t.Fatal("torn tail not reported as repaired")
	}
	if len(rec.Commits) != 2 {
		t.Fatalf("want 2 surviving commits, got %d", len(rec.Commits))
	}
	// The stream must accept appends cleanly after repair.
	if err := m2.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(9)}}}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, rec3 := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m3.Close()
	if len(rec3.Commits) != 3 || rec3.Repaired {
		t.Fatalf("post-repair stream: commits=%d repaired=%v", len(rec3.Commits), rec3.Repaired)
	}
}

func TestManagerSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways, MaxSegBytes: 128})
	const n = 50
	for i := 0; i < n; i++ {
		if err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(int64(i)), strv("padding-padding")}}}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	segs, err := listSegments(filepath.Join(dir, dataDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want rotation into >=3 segments, got %d", len(segs))
	}
	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m2.Close()
	if len(rec.Commits) != n {
		t.Fatalf("want %d commits across segments, got %d", n, len(rec.Commits))
	}
	for i, c := range rec.Commits {
		if c.Ops[0].New[0].I != int64(i) {
			t.Fatalf("commit %d out of order: %+v", i, c.Ops[0])
		}
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways, Metrics: met})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T",
					New: value.Row{intv(int64(w*each + i))}}})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m.Close()
	if got := met.Records.Load(); got != writers*each {
		t.Fatalf("records appended: want %d, got %d", writers*each, got)
	}
	if met.Fsyncs.Load() == 0 || met.BytesWritten.Load() == 0 {
		t.Fatal("fsync/bytes metrics not recorded")
	}
	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m2.Close()
	if len(rec.Commits) != writers*each {
		t.Fatalf("want %d commits, got %d", writers*each, len(rec.Commits))
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
	if err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(1)}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendAudit("u", "e", "SELECT 1", []value.Value{intv(1)}, 7, 111); err != nil {
		t.Fatal(err)
	}
	snapshot := "CREATE TABLE T (A INT);\nINSERT INTO T VALUES (1);\n"
	if err := m.Checkpoint(func(w io.Writer) error {
		_, err := io.WriteString(w, snapshot)
		return err
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Pre-checkpoint segments must be gone; post-checkpoint appends land
	// in the new tail.
	segs, _ := listSegments(filepath.Join(dir, dataDirName))
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("want only segment 2 after checkpoint, got %v", segs)
	}
	if err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(2)}}}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m2.Close()
	if !rec.HasSnapshot || rec.SnapshotSQL != snapshot {
		t.Fatalf("snapshot not recovered: has=%v sql=%q", rec.HasSnapshot, rec.SnapshotSQL)
	}
	if len(rec.Commits) != 1 || rec.Commits[0].Ops[0].New[0].I != 2 {
		t.Fatalf("want only the post-checkpoint commit, got %+v", rec.Commits)
	}
	if rec.AuditSeq != 1 {
		t.Fatalf("audit chain lost across checkpoint: seq=%d", rec.AuditSeq)
	}
	// The audit stream is never truncated.
	rep, err := m2.VerifyAudit()
	if err != nil || !rep.Valid || rep.Records != 1 {
		t.Fatalf("verify after checkpoint: rep=%+v err=%v", rep, err)
	}
}

func TestSecondCheckpointDropsFirst(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
	dump := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(1)}}})
	if err := m.Checkpoint(dump("one")); err != nil {
		t.Fatal(err)
	}
	m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(2)}}})
	if err := m.Checkpoint(dump("two")); err != nil {
		t.Fatal(err)
	}
	m.Close()
	cks, _ := listCheckpoints(dir)
	if len(cks) != 1 {
		t.Fatalf("want 1 checkpoint file, got %v", cks)
	}
	_, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	if rec.SnapshotSQL != "two" || len(rec.Commits) != 0 {
		t.Fatalf("recovery after second checkpoint: %+v", rec)
	}
}

func TestAuditChainVerify(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
	for i := 1; i <= 5; i++ {
		_, err := m.AppendAudit("dr_mallory", "Audit_Alice",
			fmt.Sprintf("SELECT %d", i), []value.Value{intv(int64(i))}, uint64(i), int64(i*100))
		if err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.VerifyAudit()
	if err != nil || !rep.Valid || rep.Records != 5 {
		t.Fatalf("live verify: rep=%+v err=%v", rep, err)
	}
	m.Close()

	// The chain must survive restart and still verify.
	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	if rec.AuditSeq != 5 {
		t.Fatalf("audit seq after restart: %d", rec.AuditSeq)
	}
	rep, err = m2.VerifyAudit()
	if err != nil || !rep.Valid || rep.Records != 5 {
		t.Fatalf("post-restart verify: rep=%+v err=%v", rep, err)
	}
	if _, err := m2.AppendAudit("u", "e", "SELECT 6", nil, 6, 600); err != nil {
		t.Fatal(err)
	}
	rep, _ = m2.VerifyAudit()
	if !rep.Valid || rep.Records != 6 {
		t.Fatalf("chain continuation after restart: %+v", rep)
	}
	m2.Close()
}

// A flipped byte breaks the CRC; a re-framed record with a valid CRC
// but altered content breaks the hash chain. Both must be reported.
func TestAuditTamperDetected(t *testing.T) {
	build := func(t *testing.T) (string, *Manager) {
		dir := t.TempDir()
		m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
		for i := 1; i <= 4; i++ {
			if _, err := m.AppendAudit("u", "e", fmt.Sprintf("q%d", i), []value.Value{intv(int64(i))}, uint64(i), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
		return filepath.Join(dir, auditDirName, segmentName(1)), m
	}

	t.Run("bit flip", func(t *testing.T) {
		seg, _ := build(t)
		b, _ := os.ReadFile(seg)
		b[len(b)/2] ^= 0x40
		os.WriteFile(seg, b, 0o644)
		m, _ := openTestWAL(t, filepath.Dir(filepath.Dir(seg)), Options{Sync: SyncAlways})
		defer m.Close()
		rep, err := m.VerifyAudit()
		if err != nil {
			t.Fatal(err)
		}
		// Either the scan finds the corruption or repair-on-open removed
		// records the chain then misses; both are invalid verdicts once a
		// checkpoint anchor exists — without one, repair can legitimately
		// shorten the chain, so assert detection on the richer path below.
		_ = rep
	})

	t.Run("content edit with valid framing", func(t *testing.T) {
		seg, _ := build(t)
		b, _ := os.ReadFile(seg)
		recs, _, err := ScanBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite record 2's user and re-frame everything so every CRC
		// is valid — only the hash chain can catch this.
		recs[1].Audit.User = "nobody"
		var out []byte
		for _, r := range recs {
			out = AppendRecord(out, r)
		}
		if err := os.WriteFile(seg, out, 0o644); err != nil {
			t.Fatal(err)
		}
		m, _ := openTestWAL(t, filepath.Dir(filepath.Dir(seg)), Options{Sync: SyncAlways})
		defer m.Close()
		rep, err := m.VerifyAudit()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Valid {
			t.Fatal("edited audit record passed verification")
		}
	})
}

// After a checkpoint anchors the chain, truncating the audit log below
// the anchor must be detected even though the restart rebuilt the
// in-memory head from the truncated file.
func TestAuditTruncationDetectedViaAnchor(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTestWAL(t, dir, Options{Sync: SyncAlways})
	for i := 1; i <= 4; i++ {
		if _, err := m.AppendAudit("u", "e", fmt.Sprintf("q%d", i), nil, uint64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Adversary deletes the last audit record (clean truncation on a
	// record boundary, so CRC and per-record chain links all still pass).
	seg := filepath.Join(dir, auditDirName, segmentName(1))
	b, _ := os.ReadFile(seg)
	recs, _, err := ScanBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, r := range recs[:len(recs)-1] {
		out = AppendRecord(out, r)
	}
	if err := os.WriteFile(seg, out, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, rec := openTestWAL(t, dir, Options{Sync: SyncAlways})
	defer m2.Close()
	if rec.AuditSeq != 3 {
		t.Fatalf("truncated chain should load 3 records, got %d", rec.AuditSeq)
	}
	rep, err := m2.VerifyAudit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Fatal("anchored truncation passed verification")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			m, _ := openTestWAL(t, dir, Options{Sync: pol, SyncInterval: 5 * time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := m.AppendCommit([]Op{{Kind: OpInsert, Table: "T", New: value.Row{intv(int64(i))}}}); err != nil {
					t.Fatal(err)
				}
			}
			if pol == SyncInterval {
				time.Sleep(20 * time.Millisecond) // let the ticker fire
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m2, rec := openTestWAL(t, dir, Options{Sync: pol})
			defer m2.Close()
			if len(rec.Commits) != 10 {
				t.Fatalf("policy %s: want 10 commits after clean close, got %d", pol, len(rec.Commits))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
