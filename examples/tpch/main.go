// TPC-H: run the paper's seven-query customer workload (§V-C) against
// a generated TPC-H database with an audit expression over one market
// segment, and print per-query audit cardinalities for the hcn and
// leaf-node heuristics next to the offline ground truth — a compact
// rendition of Figure 9.
//
// Run with: go run ./examples/tpch [-sf 0.005]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"auditdb/internal/core"
	"auditdb/internal/offline"
	"auditdb/internal/tpch"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	flag.Parse()

	start := time.Now()
	eng, data, err := tpch.NewEngine(tpch.Config{SF: *sf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H SF %.3f loaded in %.1fs (%d customers, %d orders)\n",
		*sf, time.Since(start).Seconds(), len(data.Customer), len(data.Orders))

	params := tpch.DefaultParams()
	if _, err := eng.Exec(tpch.AuditCustomerSegment("Audit_Customer", params.Segment)); err != nil {
		log.Fatal(err)
	}
	eng.SetAuditAll(true)
	ae, _ := eng.Registry().Get("Audit_Customer")
	fmt.Printf("auditing %d customers in segment %s\n\n", ae.Cardinality(), params.Segment)

	auditor := offline.New(eng.Catalog(), eng.Store())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\trows\ttime\thcn auditIDs\tleaf auditIDs\toffline accessedIDs")
	for _, q := range tpch.Queries(params) {
		eng.SetHeuristic(core.HighestCommutativeNode)
		t0 := time.Now()
		r, err := eng.Query(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		dur := time.Since(t0)
		hcn := r.Accessed.Len("Audit_Customer")

		eng.SetHeuristic(core.LeafNode)
		r2, err := eng.Query(q.SQL)
		if err != nil {
			log.Fatal(err)
		}
		leaf := r2.Accessed.Len("Audit_Customer")

		rep, err := auditor.Audit(q.SQL, ae)
		if err != nil {
			log.Fatalf("%s offline: %v", q.Name, err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%d\n",
			q.Name, len(r.Rows), dur.Round(time.Millisecond), hcn, leaf, len(rep.AccessedIDs))
	}
	tw.Flush()
	fmt.Println("\nhcn equals ground truth except under top-k (Q3, Q10), where the")
	fmt.Println("audit operator cannot be pulled above the limit; the offline auditor")
	fmt.Println("clears those residual false positives (paper, Figure 9).")
}
