package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"auditdb/internal/catalog"
	"auditdb/internal/exec"
	"auditdb/internal/opt"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

// fixture builds a catalog + store with the paper's health schema and
// a registry holding an all-patients audit expression.
type fixture struct {
	cat   *catalog.Catalog
	store *storage.Store
	reg   *Registry
	ae    *AuditExpression
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	patients := &catalog.TableMeta{
		Name: "Patients",
		Columns: []catalog.Column{
			{Name: "PatientID", Type: value.KindInt},
			{Name: "Name", Type: value.KindString},
			{Name: "Age", Type: value.KindInt},
		},
		PrimaryKey: []int{0},
	}
	disease := &catalog.TableMeta{
		Name: "Disease",
		Columns: []catalog.Column{
			{Name: "PatientID", Type: value.KindInt},
			{Name: "Disease", Type: value.KindString},
		},
	}
	for _, m := range []*catalog.TableMeta{patients, disease} {
		if err := cat.AddTable(m); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Create(m); err != nil {
			t.Fatal(err)
		}
	}
	pt, _ := store.Table("Patients")
	dt, _ := store.Table("Disease")
	rows := []struct {
		id   int64
		name string
		age  int64
	}{
		{1, "Alice", 34}, {2, "Bob", 21}, {3, "Carol", 47}, {4, "Dave", 29}, {5, "Erin", 62},
	}
	for _, r := range rows {
		if _, err := pt.Insert(value.Row{value.NewInt(r.id), value.NewString(r.name), value.NewInt(r.age)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []struct {
		id int64
		d  string
	}{{1, "cancer"}, {2, "flu"}, {3, "flu"}, {4, "diabetes"}, {5, "cancer"}} {
		if _, err := dt.Insert(value.Row{value.NewInt(d.id), value.NewString(d.d)}); err != nil {
			t.Fatal(err)
		}
	}

	reg := NewRegistry(cat, store)
	meta := &catalog.AuditExprMeta{Name: "Audit_All", SensitiveTable: "Patients", PartitionBy: "PatientID"}
	def, err := parser.ParseQuery("SELECT * FROM Patients WHERE PatientID > 0")
	if err != nil {
		t.Fatal(err)
	}
	ae, err := reg.Compile(meta, def)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: cat, store: store, reg: reg, ae: ae}
}

func (f *fixture) plan(t *testing.T, sql string) plan.Node {
	t.Helper()
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.Build(&plan.Env{Catalog: f.cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Optimize(n)
}

func (f *fixture) run(t *testing.T, n plan.Node) []value.Row {
	t.Helper()
	rows, err := exec.Run(n, exec.NewCtx(f.store))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCompileValidation(t *testing.T) {
	f := newFixture(t)
	bad := []struct {
		table, key, def string
	}{
		{"Nope", "PatientID", "SELECT * FROM Patients"},
		{"Patients", "Nope", "SELECT * FROM Patients"},
		{"Patients", "PatientID", "SELECT * FROM Patients ORDER BY Age"},
		{"Patients", "PatientID", "SELECT * FROM Patients WHERE EXISTS (SELECT 1 FROM Disease)"},
		{"Patients", "PatientID", "SELECT COUNT(*) FROM Patients GROUP BY Age"},
		{"Patients", "PatientID", "SELECT * FROM Disease"},
	}
	for i, c := range bad {
		def, err := parser.ParseQuery(c.def)
		if err != nil {
			t.Fatal(err)
		}
		meta := &catalog.AuditExprMeta{Name: "bad", SensitiveTable: c.table, PartitionBy: c.key}
		if _, err := f.reg.Compile(meta, def); err == nil {
			t.Errorf("case %d: expected compile error", i)
		}
	}
	// Duplicate name.
	def, _ := parser.ParseQuery("SELECT * FROM Patients")
	meta := &catalog.AuditExprMeta{Name: "Audit_All", SensitiveTable: "Patients", PartitionBy: "PatientID"}
	if _, err := f.reg.Compile(meta, def); err == nil {
		t.Error("duplicate expression name should fail")
	}
}

func TestContainsAndIDs(t *testing.T) {
	f := newFixture(t)
	if f.ae.Cardinality() != 5 {
		t.Fatalf("cardinality = %d", f.ae.Cardinality())
	}
	if !f.ae.Contains(value.NewInt(3)) || f.ae.Contains(value.NewInt(99)) {
		t.Error("Contains wrong")
	}
	if f.ae.Contains(value.Null) {
		t.Error("NULL is never sensitive")
	}
	if len(f.ae.IDs()) != 5 {
		t.Errorf("IDs = %v", f.ae.IDs())
	}
}

func TestRegistryApplyIncremental(t *testing.T) {
	f := newFixture(t)
	newRow := value.Row{value.NewInt(6), value.NewString("Frank"), value.NewInt(40)}
	if err := f.reg.Apply("Patients", []value.Row{newRow}, nil); err != nil {
		t.Fatal(err)
	}
	if !f.ae.Contains(value.NewInt(6)) {
		t.Error("insert not reflected")
	}
	if err := f.reg.Apply("Patients", nil, []value.Row{newRow}); err != nil {
		t.Fatal(err)
	}
	if f.ae.Contains(value.NewInt(6)) {
		t.Error("delete not reflected")
	}
	// DML against an unreferenced table is a no-op.
	if err := f.reg.Apply("Disease", []value.Row{{value.NewInt(1), value.NewString("x")}}, nil); err != nil {
		t.Fatal(err)
	}
	if f.ae.Cardinality() != 5 {
		t.Error("unrelated DML changed the set")
	}
}

func TestAccessedState(t *testing.T) {
	acc := NewAccessed()
	acc.Record("e1", value.NewInt(3))
	acc.Record("e1", value.NewInt(1))
	acc.Record("e1", value.NewInt(3)) // dedup
	acc.Record("e2", value.NewInt(9))
	if acc.Len("e1") != 2 || acc.Len("e2") != 1 || acc.Len("e3") != 0 {
		t.Errorf("lens = %d %d %d", acc.Len("e1"), acc.Len("e2"), acc.Len("e3"))
	}
	ids := acc.IDs("e1")
	if len(ids) != 2 || ids[0].Int() != 1 || ids[1].Int() != 3 {
		t.Errorf("ids = %v (must be sorted)", ids)
	}
	exprs := acc.Expressions()
	if len(exprs) != 2 || exprs[0] != "e1" {
		t.Errorf("expressions = %v", exprs)
	}
}

func TestProbeRecordsOnlySensitive(t *testing.T) {
	f := newFixture(t)
	acc := NewAccessed()
	p := &Probe{Expr: f.ae, Acc: acc}
	p.Observe(value.NewInt(1))
	p.Observe(value.NewInt(999))
	p.Observe(value.Null)
	if acc.Len("Audit_All") != 1 {
		t.Errorf("recorded = %d", acc.Len("Audit_All"))
	}
	if acc.Observed() != 3 {
		t.Errorf("observed = %d", acc.Observed())
	}
}

func TestLeafPlacementStructure(t *testing.T) {
	f := newFixture(t)
	n := f.plan(t, `SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`)
	acc := NewAccessed()
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: acc}, LeafNode)
	s := plan.Explain(n)
	// The audit operator must sit directly above the Patients scan.
	if !strings.Contains(s, "Audit(Audit_All") {
		t.Fatalf("no audit operator:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		if strings.Contains(line, "Audit(") {
			if i+1 >= len(lines) || !strings.Contains(lines[i+1], "Scan(Patients") {
				t.Errorf("audit operator not above the sensitive scan:\n%s", s)
			}
		}
	}
}

func TestHCNPullsAboveJoin(t *testing.T) {
	f := newFixture(t)
	n := f.plan(t, `SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`)
	acc := NewAccessed()
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: acc}, HighestCommutativeNode)
	s := plan.Explain(n)
	idxAudit := strings.Index(s, "Audit(")
	idxJoin := strings.Index(s, "Join")
	if idxAudit < 0 || idxJoin < 0 || idxAudit > idxJoin {
		t.Errorf("audit operator should sit above the join:\n%s", s)
	}
	// Execute and verify correct IDs (Bob=2, Carol=3 have flu).
	f.run(t, n)
	ids := acc.IDs("Audit_All")
	if len(ids) != 2 || ids[0].Int() != 2 || ids[1].Int() != 3 {
		t.Errorf("hcn ids = %v", ids)
	}
}

func TestHCNStopsBelowAggregate(t *testing.T) {
	f := newFixture(t)
	n := f.plan(t, "SELECT Age, COUNT(*) FROM Patients GROUP BY Age")
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: NewAccessed()}, HighestCommutativeNode)
	s := plan.Explain(n)
	idxAudit := strings.Index(s, "Audit(")
	idxAgg := strings.Index(s, "Aggregate(")
	if idxAudit < idxAgg {
		t.Errorf("audit operator must stay below the aggregate:\n%s", s)
	}
}

func TestHCNStopsBelowLimitAndDistinct(t *testing.T) {
	f := newFixture(t)
	for _, q := range []string{
		"SELECT Name FROM Patients ORDER BY Age LIMIT 2",
		"SELECT DISTINCT Name FROM Patients",
	} {
		n := f.plan(t, q)
		n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: NewAccessed()}, HighestCommutativeNode)
		s := plan.Explain(n)
		idxAudit := strings.Index(s, "Audit(")
		idxLimit := strings.Index(s, "Limit(")
		idxDistinct := strings.Index(s, "Distinct")
		if idxLimit >= 0 && idxAudit < idxLimit {
			t.Errorf("%s: audit above limit:\n%s", q, s)
		}
		if idxDistinct >= 0 && idxAudit < idxDistinct {
			t.Errorf("%s: audit above distinct:\n%s", q, s)
		}
	}
}

func TestInstrumentationPerSubqueryBlock(t *testing.T) {
	f := newFixture(t)
	n := f.plan(t, `SELECT 1 FROM Disease WHERE EXISTS
		(SELECT * FROM Patients WHERE Age > 30)`)
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: NewAccessed()}, HighestCommutativeNode)
	if got := CountAuditOps(n, true); got != 1 {
		t.Errorf("audit ops = %d, want 1 (inside the subquery block)", got)
	}
	if got := CountAuditOps(n, false); got != 0 {
		t.Errorf("main block audit ops = %d, want 0", got)
	}
}

func TestSelfJoinGetsTwoOperators(t *testing.T) {
	f := newFixture(t)
	n := f.plan(t, `SELECT P1.Name FROM Patients P1, Patients P2
		WHERE P1.Age < P2.Age`)
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: NewAccessed()}, HighestCommutativeNode)
	if got := CountAuditOps(n, true); got != 2 {
		t.Errorf("audit ops = %d, want 2 (one per instance)\n%s", got, plan.Explain(n))
	}
}

func TestInstrumentedPlanSameResults(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		"SELECT Name FROM Patients WHERE Age > 25",
		"SELECT Age, COUNT(*) FROM Patients GROUP BY Age",
		"SELECT Name FROM Patients ORDER BY Age LIMIT 3",
	}
	for _, q := range queries {
		plain := f.run(t, f.plan(t, q))
		for _, h := range []Heuristic{LeafNode, HighestCommutativeNode, HighestNode} {
			n := Instrument(f.plan(t, q), f.ae, &Probe{Expr: f.ae, Acc: NewAccessed()}, h)
			got := f.run(t, n)
			if len(got) != len(plain) {
				t.Errorf("%s under %v: %d rows vs %d", q, h, len(got), len(plain))
				continue
			}
			for i := range got {
				if got[i].String() != plain[i].String() {
					t.Errorf("%s under %v: row %d differs", q, h, i)
				}
			}
		}
	}
}

func TestHeuristicString(t *testing.T) {
	if LeafNode.String() != "leaf-node" || HighestCommutativeNode.String() != "hcn" ||
		HighestNode.String() != "highest-node" {
		t.Error("heuristic names wrong")
	}
}

func TestContainsQuick(t *testing.T) {
	f := newFixture(t)
	// Property: Contains agrees with the materialized set for any id.
	ids := map[int64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	fn := func(id int64) bool {
		return f.ae.Contains(value.NewInt(id)) == ids[id]
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompileRejectsPlaceholders(t *testing.T) {
	f := newFixture(t)
	def, err := parser.ParseQuery("SELECT * FROM Patients WHERE Age > ?")
	if err != nil {
		t.Fatal(err)
	}
	meta := &catalog.AuditExprMeta{Name: "ph", SensitiveTable: "Patients", PartitionBy: "PatientID"}
	if _, err := f.reg.Compile(meta, def); err == nil {
		t.Error("placeholders in audit expression definitions must be rejected")
	}
}

func TestMaintenanceConvergesUnderRandomDML(t *testing.T) {
	// Property: after any sequence of inserts/deletes, the incremental
	// ID set equals a from-scratch recomputation.
	rng := rand.New(rand.NewSource(99))
	f := newFixture(t)
	// Audit expression over ages (single-table incremental path).
	def, err := parser.ParseQuery("SELECT * FROM Patients WHERE Age >= 40")
	if err != nil {
		t.Fatal(err)
	}
	meta := &catalog.AuditExprMeta{Name: "Audit_Old", SensitiveTable: "Patients", PartitionBy: "PatientID"}
	ae, err := f.reg.Compile(meta, def)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := f.store.Table("Patients")
	live := map[int64]storage.RowID{}
	tbl.Snapshot(func(id storage.RowID, row value.Row) bool {
		live[row[0].Int()] = id
		return true
	})
	next := int64(100)
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			age := int64(20 + rng.Intn(50))
			row := value.Row{value.NewInt(next), value.NewString("p"), value.NewInt(age)}
			id, err := tbl.Insert(row)
			if err != nil {
				t.Fatal(err)
			}
			stored, _ := tbl.Get(id)
			if err := f.reg.Apply("Patients", []value.Row{stored}, nil); err != nil {
				t.Fatal(err)
			}
			live[next] = id
			next++
		} else {
			// Delete a random live row.
			var pick int64
			for k := range live {
				pick = k
				break
			}
			old, err := tbl.Delete(live[pick])
			if err != nil {
				t.Fatal(err)
			}
			if err := f.reg.Apply("Patients", nil, []value.Row{old}); err != nil {
				t.Fatal(err)
			}
			delete(live, pick)
		}
	}
	// Recompute ground truth by scanning.
	want := map[int64]bool{}
	tbl.Snapshot(func(_ storage.RowID, row value.Row) bool {
		if row[2].Int() >= 40 {
			want[row[0].Int()] = true
		}
		return true
	})
	got := map[int64]bool{}
	for _, v := range ae.IDs() {
		got[v.Int()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("incremental set diverged: got %d want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("id %d missing from incremental set", k)
		}
	}
}

func TestExample38cTwoOperators(t *testing.T) {
	// Example 3.8(c): the sensitive table appears in the outer block
	// AND inside a correlated subquery; one audit operator lands at
	// the top of each block (it cannot be pulled out of the subquery's
	// scope).
	f := newFixture(t)
	n := f.plan(t, `SELECT * FROM Patients P1
		WHERE Name IN (SELECT Name FROM Patients P2 WHERE P1.Age <> P2.Age)`)
	acc := NewAccessed()
	n = Instrument(n, f.ae, &Probe{Expr: f.ae, Acc: acc}, HighestCommutativeNode)
	if got := CountAuditOps(n, true); got != 2 {
		t.Fatalf("audit ops = %d, want 2 (one per block)\n%s", got, plan.Explain(n))
	}
	if got := CountAuditOps(n, false); got != 1 {
		t.Errorf("outer block ops = %d, want 1", got)
	}
	// Executing the instrumented plan records accesses from both
	// blocks; with distinct ages everywhere, every patient pair with
	// matching names is itself, so the result is empty but patients
	// were still probed inside the subquery.
	rows := f.run(t, n)
	_ = rows
	if acc.Len("Audit_All") == 0 {
		t.Error("subquery-block operator recorded nothing")
	}
}
