// Package ast defines the abstract syntax tree for the engine's SQL
// dialect: queries, DML, DDL, and the auditing extensions (CREATE AUDIT
// EXPRESSION, SELECT triggers, NOTIFY actions).
package ast

import (
	"strings"

	"auditdb/internal/value"
)

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// String renders the expression as SQL-ish text for error messages
	// and audit-log entries.
	String() string
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
}

// ---- Expressions ----

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
	OpConcat
)

// String renders the operator.
func (o BinaryOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLike:
		return "LIKE"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// IsComparison reports whether o is a comparison operator.
func (o BinaryOp) IsComparison() bool { return o <= OpGe }

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary applies NOT or numeric negation.
type Unary struct {
	Op byte // '!' for NOT, '-' for negation
	X  Expr
}

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Between tests X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// InList tests X [NOT] IN (e1, ..., en).
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// InSubquery tests X [NOT] IN (SELECT ...).
type InSubquery struct {
	X      Expr
	Sub    *Select
	Negate bool
}

// Exists tests [NOT] EXISTS (SELECT ...).
type Exists struct {
	Sub    *Select
	Negate bool
}

// ScalarSubquery evaluates (SELECT ...) to a single value.
type ScalarSubquery struct {
	Sub *Select
}

// FuncCall is a function application; aggregates (COUNT/SUM/AVG/MIN/
// MAX) and scalar functions share this node. Star marks COUNT(*).
type FuncCall struct {
	Name     string // uppercased
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
	Star     bool // COUNT(*)
}

// Placeholder is a positional parameter ("?") of a prepared
// statement; Idx is zero-based in source order.
type Placeholder struct {
	Idx int
}

// CaseWhen is one WHEN ... THEN ... arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Case is a searched or simple CASE expression. Operand is nil for the
// searched form.
type Case struct {
	Operand Expr
	Whens   []CaseWhen
	Else    Expr
}

func (*ColumnRef) exprNode()      {}
func (*Literal) exprNode()        {}
func (*Binary) exprNode()         {}
func (*Unary) exprNode()          {}
func (*IsNull) exprNode()         {}
func (*Between) exprNode()        {}
func (*InList) exprNode()         {}
func (*InSubquery) exprNode()     {}
func (*Exists) exprNode()         {}
func (*ScalarSubquery) exprNode() {}
func (*FuncCall) exprNode()       {}
func (*Case) exprNode()           {}
func (*Placeholder) exprNode()    {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *Literal) String() string { return e.Val.SQL() }

func (e *Placeholder) String() string { return "?" }

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e *Unary) String() string {
	if e.Op == '!' {
		return "(NOT " + e.X.String() + ")"
	}
	return "(-" + e.X.String() + ")"
}

func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

func (e *Between) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

func (e *InSubquery) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "IN (" + RenderSelect(e.Sub) + "))"
}

func (e *Exists) String() string {
	if e.Negate {
		return "(NOT EXISTS (" + RenderSelect(e.Sub) + "))"
	}
	return "(EXISTS (" + RenderSelect(e.Sub) + "))"
}

func (e *ScalarSubquery) String() string { return "(" + RenderSelect(e.Sub) + ")" }

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// ---- SELECT ----

// SelectItem is one output column of a SELECT. Star selects all columns
// (optionally of one table via StarTable).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause item: a base table, a join, or a derived
// table.
type TableRef interface {
	tableRefNode()
}

// BaseTable names a stored table (or the ACCESSED pseudo-relation, or
// NEW/OLD inside trigger bodies).
type BaseTable struct {
	Name  string
	Alias string
}

// JoinRef combines two table refs.
type JoinRef struct {
	Kind        JoinKind
	Left, Right TableRef
	On          Expr // nil for CROSS
}

// SubqueryRef is a derived table.
type SubqueryRef struct {
	Sub   *Select
	Alias string
}

func (*BaseTable) tableRefNode()   {}
func (*JoinRef) tableRefNode()     {}
func (*SubqueryRef) tableRefNode() {}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a query block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-separated list; nil for SELECT without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// ---- DML ----

// Insert adds rows. Exactly one of Rows or Query is set.
type Insert struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Expr
	Query   *Select
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update modifies rows.
type Update struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

// Delete removes rows.
type Delete struct {
	Table string
	Alias string
	Where Expr
}

// ---- DDL ----

// ColumnDef is one column of CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.Kind
	PrimaryKey bool
}

// CreateTable declares a table.
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string // table-level PRIMARY KEY (...) constraint
}

// CreateIndex declares a secondary index.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

// CreateView declares a named query; references to the view expand to
// its defining query at plan time.
type CreateView struct {
	Name  string
	Query *Select
}

// DropView removes a view.
type DropView struct{ Name string }

// DropIndex removes a secondary index.
type DropIndex struct{ Name string }

// DropTable removes a table.
type DropTable struct{ Name string }

// DropTrigger removes a trigger.
type DropTrigger struct{ Name string }

// DropAuditExpression removes an audit expression.
type DropAuditExpression struct{ Name string }

// ---- Auditing extensions ----

// CreateAuditExpression declares sensitive data (§II-A of the paper):
//
//	CREATE AUDIT EXPRESSION name AS
//	SELECT ... FROM ... WHERE ...
//	FOR SENSITIVE TABLE t PARTITION BY key
type CreateAuditExpression struct {
	Name           string
	Query          *Select
	SensitiveTable string
	PartitionBy    string
	// Priority is the optional PRIORITY n clause: the triage risk
	// model's operator-declared weight. 0 when omitted.
	Priority int
}

// TriggerEvent is the firing event of a CREATE TRIGGER.
type TriggerEvent uint8

// Trigger events.
const (
	EventInsert TriggerEvent = iota
	EventUpdate
	EventDelete
	EventAccess // ON ACCESS TO <audit expression>
)

// CreateTrigger declares either a DML trigger (ON table AFTER evt) or a
// SELECT trigger (ON ACCESS TO auditexpr). Body holds the action
// statements; ActionSQL preserves the original text for the catalog.
type CreateTrigger struct {
	Name      string
	Event     TriggerEvent
	Target    string // table name or audit expression name
	Body      []Stmt
	ActionSQL string
}

// If guards a statement inside a trigger body.
type If struct {
	Cond Expr
	Then []Stmt
}

// Notify sends an out-of-band notification (the paper's SEND EMAIL).
type Notify struct {
	Message Expr
}

// VerifyAuditLog re-reads the on-disk audit trail and reports whether
// the hash chain is intact (VERIFY AUDIT LOG).
type VerifyAuditLog struct{}

// ShowTrace renders the retained span tree of one traced statement
// (SHOW TRACE FOR <query id>).
type ShowTrace struct {
	QID uint64
}

// ShowTraces lists the statements currently retained in the trace ring
// (SHOW TRACES), newest first.
type ShowTraces struct{}

// ShowAuditQueue lists the triage events resident in the bounded
// verification queue (SHOW AUDIT QUEUE), highest risk first.
type ShowAuditQueue struct{}

// ShowAuditVerdicts lists recent offline-verification verdicts
// (SHOW AUDIT VERDICTS), newest first.
type ShowAuditVerdicts struct{}

// TxBegin starts an explicit transaction (BEGIN).
type TxBegin struct{}

// TxCommit commits the open transaction (COMMIT).
type TxCommit struct{}

// TxRollback rolls the open transaction back (ROLLBACK).
type TxRollback struct{}

// Explain renders a query's execution plan instead of running it. The
// plan shown is the one that would execute, including audit operators
// when auditing is active. With Analyze set (EXPLAIN ANALYZE) the
// query is executed for real and each operator reports observed rows,
// batches, wall time, and audit-probe activity — but, like plain
// EXPLAIN, no SELECT triggers fire and no ACCESSED state is persisted.
type Explain struct {
	Query   *Select
	Analyze bool
}

func (*Select) stmtNode()                {}
func (*Insert) stmtNode()                {}
func (*Update) stmtNode()                {}
func (*Delete) stmtNode()                {}
func (*CreateTable) stmtNode()           {}
func (*CreateIndex) stmtNode()           {}
func (*DropTable) stmtNode()             {}
func (*CreateView) stmtNode()            {}
func (*DropView) stmtNode()              {}
func (*DropIndex) stmtNode()             {}
func (*DropTrigger) stmtNode()           {}
func (*DropAuditExpression) stmtNode()   {}
func (*CreateAuditExpression) stmtNode() {}
func (*CreateTrigger) stmtNode()         {}
func (*If) stmtNode()                    {}
func (*Notify) stmtNode()                {}
func (*Explain) stmtNode()               {}
func (*TxBegin) stmtNode()               {}
func (*TxCommit) stmtNode()              {}
func (*TxRollback) stmtNode()            {}
func (*VerifyAuditLog) stmtNode()        {}
func (*ShowTrace) stmtNode()             {}
func (*ShowTraces) stmtNode()            {}
func (*ShowAuditQueue) stmtNode()        {}
func (*ShowAuditVerdicts) stmtNode()     {}

// WalkExprs calls fn for every sub-expression of e (including e),
// without descending into subquery Select nodes.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *Unary:
		WalkExprs(x.X, fn)
	case *IsNull:
		WalkExprs(x.X, fn)
	case *Between:
		WalkExprs(x.X, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *InList:
		WalkExprs(x.X, fn)
		for _, item := range x.List {
			WalkExprs(item, fn)
		}
	case *InSubquery:
		WalkExprs(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *Case:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Result, fn)
		}
		WalkExprs(x.Else, fn)
	}
}
