// Package value defines the runtime value model used throughout the
// engine: typed scalar values, SQL three-valued comparison logic,
// arithmetic with numeric coercion, and key encoding for hash-based
// operators (joins, grouping, audit-ID sets).
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the scalar types the engine supports.
type Kind uint8

// The supported value kinds. Date values are stored as whole days since
// the Unix epoch, which keeps date comparison and arithmetic integral.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the common
// aliases used in CREATE TABLE statements.
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString, nil
	case "DATE":
		return KindDate, nil
	default:
		return KindNull, fmt.Errorf("unknown type %q", name)
	}
}

// Value is a scalar runtime value. The active representation depends on
// Kind: I for INT/BOOL/DATE (bool as 0/1, date as days since epoch),
// F for FLOAT, S for STRING.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// DateFromYMD returns a DATE value for the given calendar date.
func DateFromYMD(year, month, day int) Value {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// ParseDate parses a 'YYYY-MM-DD' literal into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the boolean interpretation of v. It must only be called
// on BOOLEAN values.
func (v Value) Bool() bool { return v.Kind == KindBool && v.I != 0 }

// Int returns the integral interpretation of v (INT, BOOL or DATE).
func (v Value) Int() int64 { return v.I }

// Float returns v as a float64, coercing integers.
func (v Value) Float() float64 {
	if v.Kind == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// Str returns the string payload of v.
func (v Value) Str() string { return v.S }

// Time returns the time.Time for a DATE value (midnight UTC).
func (v Value) Time() time.Time { return time.Unix(v.I*86400, 0).UTC() }

// Year returns the calendar year of a DATE value.
func (v Value) Year() int { return v.Time().Year() }

// String renders v for display and logs.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad value kind %d>", v.Kind)
	}
}

// SQL renders v as a SQL literal (strings quoted, dates tagged).
func (v Value) SQL() string {
	switch v.Kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }

// Comparable reports whether values of kinds a and b may be compared.
func Comparable(a, b Kind) bool {
	if a == KindNull || b == KindNull {
		return true
	}
	if a == b {
		return true
	}
	return isNumeric(a) && isNumeric(b)
}

// Compare orders a against b, returning -1, 0 or +1. NULLs sort first
// (this total order is used by ORDER BY and index structures; SQL
// comparison predicates handle NULL separately via CompareSQL).
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) {
		if a.Kind == KindFloat || b.Kind == KindFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.S, b.coerceString())
	case KindDate:
		bi := b.coerceDate()
		switch {
		case a.I < bi:
			return -1
		case a.I > bi:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// coerceString allows comparing DATE to string literals lexically.
func (v Value) coerceString() string {
	if v.Kind == KindDate {
		return v.String()
	}
	return v.S
}

// coerceDate allows comparing a 'YYYY-MM-DD' string against a DATE.
func (v Value) coerceDate() int64 {
	if v.Kind == KindString {
		if d, err := ParseDate(v.S); err == nil {
			return d.I
		}
	}
	return v.I
}

// CompareSQL implements SQL comparison semantics: if either operand is
// NULL the result is unknown (ok=false); otherwise cmp is as Compare.
func CompareSQL(a, b Value) (cmp int, ok bool) {
	if a.Kind == KindNull || b.Kind == KindNull {
		return 0, false
	}
	return Compare(a, b), true
}

// Equal reports strict equality under the total order used by Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Tri is a three-valued logic truth value.
type Tri uint8

// Three-valued logic constants.
const (
	False Tri = iota
	True
	Unknown
)

// TriOf lifts a Go bool into Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// TriFromValue interprets a value as a 3VL condition: NULL is Unknown,
// BOOLEAN maps naturally, non-zero numerics are True.
func TriFromValue(v Value) Tri {
	switch v.Kind {
	case KindNull:
		return Unknown
	case KindBool, KindInt:
		return TriOf(v.I != 0)
	case KindFloat:
		return TriOf(v.F != 0)
	default:
		return TriOf(v.S != "")
	}
}

// Value converts a Tri back into a SQL value (Unknown becomes NULL).
func (t Tri) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// And is three-valued conjunction.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or is three-valued disjunction.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not is three-valued negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Arith applies the arithmetic operator op ('+', '-', '*', '/', '%') to
// a and b with numeric coercion. NULL operands yield NULL. Date +/- int
// shifts by days.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.Kind == KindDate && b.Kind == KindInt {
		switch op {
		case '+':
			return NewDate(a.I + b.I), nil
		case '-':
			return NewDate(a.I - b.I), nil
		}
	}
	if a.Kind == KindDate && b.Kind == KindDate && op == '-' {
		return NewInt(a.I - b.I), nil
	}
	if !isNumeric(a.Kind) || !isNumeric(b.Kind) {
		return Null, fmt.Errorf("cannot apply %c to %s and %s", op, a.Kind, b.Kind)
	}
	if a.Kind == KindFloat || b.Kind == KindFloat || op == '/' {
		af, bf := a.Float(), b.Float()
		switch op {
		case '+':
			return NewFloat(af + bf), nil
		case '-':
			return NewFloat(af - bf), nil
		case '*':
			return NewFloat(af * bf), nil
		case '/':
			if bf == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewFloat(af / bf), nil
		case '%':
			if bf == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewFloat(math.Mod(af, bf)), nil
		}
	}
	switch op {
	case '+':
		return NewInt(a.I + b.I), nil
	case '-':
		return NewInt(a.I - b.I), nil
	case '*':
		return NewInt(a.I * b.I), nil
	case '%':
		if b.I == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewInt(a.I % b.I), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %c", op)
}

// Neg negates a numeric value.
func Neg(v Value) (Value, error) {
	switch v.Kind {
	case KindNull:
		return Null, nil
	case KindInt, KindBool:
		return NewInt(-v.I), nil
	case KindFloat:
		return NewFloat(-v.F), nil
	default:
		return Null, fmt.Errorf("cannot negate %s", v.Kind)
	}
}

// Coerce converts v to kind k where a lossless or conventional
// conversion exists (int<->float, string->date, bool->int).
func Coerce(v Value, k Kind) (Value, error) {
	if v.Kind == k || v.Kind == KindNull {
		return v, nil
	}
	switch k {
	case KindInt:
		switch v.Kind {
		case KindFloat:
			return NewInt(int64(v.F)), nil
		case KindBool:
			return NewInt(v.I), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot convert %q to INTEGER", v.S)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.Kind {
		case KindInt, KindBool:
			return NewFloat(float64(v.I)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot convert %q to FLOAT", v.S)
			}
			return NewFloat(f), nil
		}
	case KindDate:
		if v.Kind == KindString {
			return ParseDate(v.S)
		}
		if v.Kind == KindInt {
			return NewDate(v.I), nil
		}
	case KindString:
		return NewString(v.String()), nil
	case KindBool:
		if isNumeric(v.Kind) {
			return NewBool(v.Float() != 0), nil
		}
	}
	return Null, fmt.Errorf("cannot convert %s to %s", v.Kind, k)
}

// Like implements the SQL LIKE operator with % and _ wildcards.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking over the last '%' seen.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
