package exec

import (
	"testing"

	"auditdb/internal/catalog"
	"auditdb/internal/opt"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

type harness struct {
	cat   *catalog.Catalog
	store *storage.Store
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	add := func(meta *catalog.TableMeta, rows []value.Row) {
		if err := cat.AddTable(meta); err != nil {
			t.Fatal(err)
		}
		tbl, err := store.Create(meta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if _, err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(&catalog.TableMeta{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "dept", Type: value.KindString},
			{Name: "sal", Type: value.KindInt},
		},
	}, []value.Row{
		{value.NewInt(1), value.NewString("eng"), value.NewInt(100)},
		{value.NewInt(2), value.NewString("eng"), value.NewInt(200)},
		{value.NewInt(3), value.NewString("ops"), value.NewInt(150)},
		{value.NewInt(4), value.NewString("hr"), value.Null},
	})
	add(&catalog.TableMeta{
		Name: "dept",
		Columns: []catalog.Column{
			{Name: "name", Type: value.KindString},
			{Name: "floor", Type: value.KindInt},
		},
	}, []value.Row{
		{value.NewString("eng"), value.NewInt(3)},
		{value.NewString("ops"), value.NewInt(1)},
	})
	return &harness{cat: cat, store: store}
}

func mustPlan(t *testing.T, h *harness, sql string) plan.Node {
	t.Helper()
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.Build(&plan.Env{Catalog: h.cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Optimize(n)
}

func (h *harness) query(t *testing.T, sql string) []value.Row {
	t.Helper()
	rows, err := Run(mustPlan(t, h, sql), NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestScanWithMask(t *testing.T) {
	h := newHarness(t)
	sel, _ := parser.ParseQuery("SELECT id FROM emp")
	n, err := plan.Build(&plan.Env{Catalog: h.cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(h.store)
	mask := storage.NewMask()
	mask.Hide("emp", 1) // row id 1 = employee 2
	ctx.Mask = mask
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("masked scan rows = %v", rows)
	}
	for _, r := range rows {
		if r[0].Int() == 2 {
			t.Errorf("masked row leaked: %v", rows)
		}
	}
}

func TestHashJoinInner(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, `SELECT e.id, d.floor FROM emp e, dept d WHERE e.dept = d.name ORDER BY e.id`)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].Int() != 3 || rows[2][1].Int() != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	h := newHarness(t)
	// Add an employee with NULL dept; it must not join.
	tbl, _ := h.store.Table("emp")
	if _, err := tbl.Insert(value.Row{value.NewInt(9), value.Null, value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	rows := h.query(t, `SELECT e.id FROM emp e, dept d WHERE e.dept = d.name`)
	for _, r := range rows {
		if r[0].Int() == 9 {
			t.Errorf("NULL key joined: %v", rows)
		}
	}
}

func TestLeftJoinNullExtension(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, `SELECT e.id, d.floor FROM emp e LEFT JOIN dept d ON e.dept = d.name ORDER BY e.id`)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	last := rows[3] // hr employee has no dept row
	if last[0].Int() != 4 || !last[1].IsNull() {
		t.Errorf("null extension wrong: %v", last)
	}
}

func TestNLJoinNonEqui(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, `SELECT e1.id, e2.id FROM emp e1 JOIN emp e2 ON e1.sal < e2.sal ORDER BY e1.id, e2.id`)
	// sal: 100 < 200, 100 < 150, 150 < 200 -> 3 pairs (NULL sal joins nothing).
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoin(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, `SELECT e.id, d.name FROM emp e CROSS JOIN dept d`)
	if len(rows) != 8 {
		t.Errorf("cross join rows = %d, want 8", len(rows))
	}
}

func TestAggregateNullHandling(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, "SELECT COUNT(*), COUNT(sal), SUM(sal), AVG(sal), MIN(sal), MAX(sal) FROM emp")
	r := rows[0]
	if r[0].Int() != 4 || r[1].Int() != 3 {
		t.Errorf("counts = %v", r)
	}
	if r[2].Int() != 450 || r[3].Float() != 150 {
		t.Errorf("sum/avg = %v", r)
	}
	if r[4].Int() != 100 || r[5].Int() != 200 {
		t.Errorf("min/max = %v", r)
	}
}

func TestGroupByGroups(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
	if len(rows) != 3 {
		t.Fatalf("groups = %v", rows)
	}
	if rows[0][0].Str() != "eng" || rows[0][1].Int() != 2 {
		t.Errorf("groups = %v", rows)
	}
}

func TestSortStability(t *testing.T) {
	h := newHarness(t)
	// NULL sal sorts first ascending.
	rows := h.query(t, "SELECT id, sal FROM emp ORDER BY sal, id")
	if !rows[0][1].IsNull() {
		t.Errorf("NULL should sort first: %v", rows)
	}
	rows = h.query(t, "SELECT id, sal FROM emp ORDER BY sal DESC")
	if rows[0][1].Int() != 200 {
		t.Errorf("desc order wrong: %v", rows)
	}
}

func TestLimitZero(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, "SELECT id FROM emp LIMIT 0")
	if len(rows) != 0 {
		t.Errorf("limit 0 rows = %v", rows)
	}
}

func TestDistinctRows(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, "SELECT DISTINCT dept FROM emp ORDER BY dept")
	if len(rows) != 3 {
		t.Errorf("distinct = %v", rows)
	}
}

type countingSink struct{ n int }

func (c *countingSink) Observe(value.Value) { c.n++ }

func TestAuditOperatorPassThrough(t *testing.T) {
	h := newHarness(t)
	sel, _ := parser.ParseQuery("SELECT id FROM emp")
	n, err := plan.Build(&plan.Env{Catalog: h.cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the scan in an audit operator by hand.
	proj := n.(*plan.Project)
	sink := &countingSink{}
	proj.Child = &plan.Audit{Child: proj.Child, Name: "t", IDIdx: 0, Sink: sink}
	rows, err := Run(n, NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("audit op dropped rows: %v", rows)
	}
	if sink.n != 4 {
		t.Errorf("sink observed %d rows, want 4", sink.n)
	}
}

func TestValuesScanBinding(t *testing.T) {
	h := newHarness(t)
	env := &plan.Env{Catalog: h.cat, Extra: map[string]plan.Schema{
		"accessed": {{Qual: "ACCESSED", Name: "id", Kind: value.KindInt}},
	}}
	sel, _ := parser.ParseQuery("SELECT id FROM accessed ORDER BY id")
	n, err := plan.Build(env, sel)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(h.store)
	ctx.Extra = map[string][]value.Row{
		"accessed": {{value.NewInt(3)}, {value.NewInt(1)}},
	}
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 1 {
		t.Errorf("accessed rows = %v", rows)
	}
	// Unbound relation is an error.
	ctx2 := NewCtx(h.store)
	if _, err := Run(n, ctx2); err == nil {
		t.Error("unbound transient relation should fail")
	}
}

func TestDualScan(t *testing.T) {
	h := newHarness(t)
	rows := h.query(t, "SELECT 1 + 1")
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("dual = %v", rows)
	}
}

func TestMissingTableError(t *testing.T) {
	h := newHarness(t)
	n := &plan.Scan{Table: "ghost"}
	if _, err := Run(n, NewCtx(h.store)); err == nil {
		t.Error("missing table should fail at open")
	}
}

func TestRuntimeErrorPropagates(t *testing.T) {
	h := newHarness(t)
	sel, _ := parser.ParseQuery("SELECT 1 / (sal - sal) FROM emp WHERE sal IS NOT NULL")
	n, err := plan.Build(&plan.Env{Catalog: h.cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(n, NewCtx(h.store)); err == nil {
		t.Error("division by zero should propagate")
	}
}
