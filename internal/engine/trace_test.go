package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"auditdb/internal/trace"
	"auditdb/internal/wal"
)

// auditedHealthSchema is the paper's running example plus the
// Audit_Alice expression and logging trigger — the same setup
// newAuditedHealthDB builds, as a script so durable engines can run it
// too.
const auditedHealthSchema = `
	CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
	CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
	INSERT INTO Patients VALUES
		(1, 'Alice', 34, '48109'),
		(2, 'Bob', 21, '48109'),
		(3, 'Carol', 47, '98052'),
		(4, 'Dave', 29, '98052'),
		(5, 'Erin', 62, '10001');
	INSERT INTO Disease VALUES
		(1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
	CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
	CREATE AUDIT EXPRESSION Audit_Alice AS
		SELECT * FROM Patients WHERE Name = 'Alice'
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
	CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
		INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
`

func spansNamed(tr *trace.Trace, name string) []trace.Span {
	var out []trace.Span
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func spanAttrStr(sp trace.Span, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Str, true
		}
	}
	return "", false
}

func spanAttrInt(sp trace.Span, key string) (int64, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Int, true
		}
	}
	return 0, false
}

// checkWellFormed verifies the span list is a single tree: span 0 is
// the statement root and every other span's parent is an earlier span.
func checkWellFormed(t *testing.T, tr *trace.Trace) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if tr.Spans[0].Name != "statement" || tr.Spans[0].Parent != -1 {
		t.Fatalf("root span = %+v, want statement/-1", tr.Spans[0])
	}
	for i, sp := range tr.Spans[1:] {
		id := i + 1
		if sp.ID != id {
			t.Fatalf("span %d has ID %d", id, sp.ID)
		}
		if sp.Parent < 0 || sp.Parent >= id {
			t.Fatalf("span %d (%s) has orphan parent %d", id, sp.Name, sp.Parent)
		}
	}
}

// TestTraceSpanTreeSelectTrigger is the PR's acceptance walk: a sampled
// SELECT that fires a SELECT trigger yields one span tree covering
// transport read, plan-cache outcome, operator execution, the audit
// firing, and both WAL writes — and the same query ID appears verbatim
// inside the hash-chained audit record on disk, with the chain still
// verifying.
func TestTraceSpanTreeSelectTrigger(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	defer e.CloseWAL()
	if _, err := e.ExecScript(auditedHealthSchema); err != nil {
		t.Fatal(err)
	}

	s := e.NewSession()
	defer s.Close()
	s.SetUser("dr_mallory")
	s.SetTrace(true)
	s.NoteTransport("test", 123*time.Microsecond)
	res, err := s.Query("SELECT * FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if res.QID == 0 {
		t.Fatal("result carries no query ID")
	}

	tr := e.TraceRing().Get(res.QID)
	if tr == nil {
		t.Fatalf("no trace retained for qid %d", res.QID)
	}
	if !tr.Sampled || tr.User != "dr_mallory" {
		t.Fatalf("trace header = qid=%d user=%s sampled=%t", tr.QID, tr.User, tr.Sampled)
	}
	checkWellFormed(t, tr)

	// A plain SELECT takes the normalized front end (a "normalize"
	// span); statements that miss it get "parse" instead.
	for _, want := range []string{
		"transport.read", "normalize", "plan", "execute",
		"audit.fire", "wal.audit.append", "wal.commit",
	} {
		if len(spansNamed(tr, want)) == 0 {
			t.Errorf("span %q missing from trace:\n%s", want, strings.Join(tr.Render(), "\n"))
		}
	}
	if proto, _ := spanAttrStr(spansNamed(tr, "transport.read")[0], "protocol"); proto != "test" {
		t.Errorf("transport.read protocol = %q", proto)
	}
	planSpans := spansNamed(tr, "plan")
	if len(planSpans) > 0 {
		if src, ok := spanAttrStr(planSpans[0], "cache"); !ok || src == "" {
			t.Errorf("plan span has no cache attr: %+v", planSpans[0])
		}
	}
	// The statement's own execute span (the trigger body contributes a
	// second, nested one) must contain at least one operator child.
	var topExec []trace.Span
	for _, sp := range spansNamed(tr, "execute") {
		if sp.Parent == 0 {
			topExec = append(topExec, sp)
		}
	}
	if len(topExec) != 1 {
		t.Fatalf("top-level execute spans = %+v, want exactly 1", topExec)
	}
	operators := 0
	for _, sp := range tr.Spans {
		if sp.Parent == topExec[0].ID {
			operators++
		}
	}
	if operators == 0 {
		t.Errorf("execute span has no operator children:\n%s", strings.Join(tr.Render(), "\n"))
	}
	fire := spansNamed(tr, "audit.fire")[0]
	if trig, _ := spanAttrStr(fire, "trigger"); trig != "Log_Alice" {
		t.Errorf("audit.fire trigger = %q, want Log_Alice", trig)
	}

	// The query ID must be inside the on-disk hash-chained audit record.
	raw, err := os.ReadFile(filepath.Join(dir, "audit", "000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.ScanBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	var match *wal.Audit
	for _, rec := range recs {
		if rec.Type == wal.RecAudit && rec.Audit.QID == res.QID {
			match = rec.Audit
		}
	}
	if match == nil {
		t.Fatalf("no audit record carries qid %d", res.QID)
	}
	if match.User != "dr_mallory" || match.Expr != "Audit_Alice" || len(match.IDs) == 0 {
		t.Fatalf("audit record = %+v", match)
	}
	rep, err := e.VerifyAuditLog()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid {
		t.Fatalf("audit chain invalid after traced query: %s", rep.Reason)
	}
}

// TestTraceParallelWorkers (run under -race in CI): a parallel query's
// trace is one well-formed tree with worker spans attributed to their
// operators and morsel counts that agree between workers and the
// exchange's merged stats.
func TestTraceParallelWorkers(t *testing.T) {
	e := newHealthDB(t)
	e.SetDefaultWorkers(8)
	e.SetParallelMinRows(1)
	before := e.StatsSnapshot()["morsels_dispatched"]

	s := e.NewSession()
	defer s.Close()
	s.SetTrace(true)
	res, err := s.Query("SELECT Name FROM Patients WHERE Age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if e.StatsSnapshot()["parallel_queries"] == 0 {
		t.Skip("planner declined parallel execution on this host")
	}

	tr := e.TraceRing().Get(res.QID)
	if tr == nil {
		t.Fatalf("no trace retained for qid %d", res.QID)
	}
	checkWellFormed(t, tr)

	// Every worker span must be parented to an operator span that
	// declares workers, and per-parent morsel counts must sum to the
	// parent's merged total — a torn merge or an orphan worker span
	// would break one of these.
	workerSpans := spansNamed(tr, "worker")
	if len(workerSpans) == 0 {
		t.Fatalf("parallel query trace has no worker spans:\n%s", strings.Join(tr.Render(), "\n"))
	}
	morselsByParent := map[int]int64{}
	for _, ws := range workerSpans {
		parent := tr.Spans[ws.Parent]
		if n, ok := spanAttrInt(parent, "workers"); !ok || n < 1 {
			t.Fatalf("worker span parented to non-parallel operator %+v", parent)
		}
		m, _ := spanAttrInt(ws, "morsels")
		morselsByParent[ws.Parent] += m
	}
	// Morsels are claimed at the fragment's scan kernel; other fragment
	// operators legitimately report none.
	var traceMorsels int64
	for parent, sum := range morselsByParent {
		want, ok := spanAttrInt(tr.Spans[parent], "morsels")
		if !ok {
			if sum != 0 {
				t.Errorf("operator %s: workers claim %d morsels but merged stats have none",
					tr.Spans[parent].Name, sum)
			}
			continue
		}
		if sum != want {
			t.Errorf("operator %s: worker morsels sum %d, merged stats say %d",
				tr.Spans[parent].Name, sum, want)
		}
		traceMorsels += sum
	}
	if delta := e.StatsSnapshot()["morsels_dispatched"] - before; delta != traceMorsels {
		t.Errorf("trace accounts for %d morsels, engine dispatched %d", traceMorsels, delta)
	}
}

// TestTraceOffAllocBudget: with tracing machinery wired into every
// statement but sampling off, the warm fast path must stay within the
// same allocation budget TestWarmExecAllocBudget pinned before tracing
// existed — i.e. the off path adds zero allocations.
func TestTraceOffAllocBudget(t *testing.T) {
	e := newAuditedHealthDB(t)
	const q = "SELECT Name FROM Patients WHERE PatientID = 2"
	if _, err := e.Exec(q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Exec(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 48 {
		t.Fatalf("warm Exec with tracing off allocates %.1f/op, want <= 48", allocs)
	}
}

// TestShowTraceStatements drives the SQL surface: SHOW TRACES lists
// retained traces, SHOW TRACE FOR renders one tree, and an unknown qid
// explains how to sample.
func TestShowTraceStatements(t *testing.T) {
	e := newAuditedHealthDB(t)
	e.SetTraceSampling(1)
	res := mustQuery(t, e, "SELECT Name FROM Patients WHERE Name = 'Alice'")
	if res.QID == 0 {
		t.Fatal("sampled query has no qid")
	}

	list := mustExec(t, e, "SHOW TRACES")
	if list.Columns[0] != "qid" {
		t.Fatalf("SHOW TRACES columns = %v", list.Columns)
	}
	found := false
	for _, row := range list.Rows {
		if uint64(row[0].Int()) == res.QID {
			found = true
			if row[6].Str() != "SELECT Name FROM Patients WHERE Name = 'Alice'" {
				t.Errorf("SHOW TRACES sql = %q", row[6].Str())
			}
		}
	}
	if !found {
		t.Fatalf("qid %d not in SHOW TRACES output %v", res.QID, list.Rows)
	}

	tree := mustExec(t, e, fmt.Sprintf("SHOW TRACE FOR %d", res.QID))
	if len(tree.Rows) < 2 || tree.Columns[0] != "trace" {
		t.Fatalf("SHOW TRACE FOR = %v", tree.Rows)
	}
	head := tree.Rows[0][0].Str()
	if !strings.Contains(head, fmt.Sprintf("qid=%d", res.QID)) {
		t.Fatalf("trace header = %q", head)
	}
	var full strings.Builder
	for _, row := range tree.Rows {
		full.WriteString(row[0].Str() + "\n")
	}
	for _, want := range []string{"statement", "execute", "audit.fire"} {
		if !strings.Contains(full.String(), want) {
			t.Errorf("rendered trace missing %q:\n%s", want, full.String())
		}
	}

	if _, err := e.Exec("SHOW TRACE FOR 99999999"); err == nil ||
		!strings.Contains(err.Error(), "no trace retained") {
		t.Fatalf("unknown qid error = %v", err)
	}
}

// TestTraceTailCapture: slow and errored statements are retained even
// with sampling off — slow ones as coarse phase-clock trees, errored
// ones with the error message.
func TestTraceTailCapture(t *testing.T) {
	e := newHealthDB(t)
	e.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	res := mustQuery(t, e, "SELECT Name FROM Patients WHERE Age > 30")
	if res.QID == 0 {
		t.Fatal("no qid on tail-captured query")
	}
	tr := e.TraceRing().Get(res.QID)
	if tr == nil {
		t.Fatal("slow statement not retained")
	}
	if tr.Sampled {
		t.Fatal("tail capture must not claim full sampling")
	}
	checkWellFormed(t, tr)
	if len(tr.Spans) < 2 || len(tr.Phases) == 0 {
		t.Fatalf("coarse trace = spans %+v phases %v", tr.Spans, tr.Phases)
	}
	if tr.Phases["execute"] == 0 {
		t.Fatalf("phases = %v, want execute time", tr.Phases)
	}

	e.SetSlowQueryThreshold(0)
	if _, err := e.Query("SELECT * FROM NoSuchTable"); err == nil {
		t.Fatal("expected error")
	}
	snap := e.TraceRing().Snapshot()
	if len(snap) == 0 || snap[0].Err == "" {
		t.Fatalf("errored statement not retained with its error: %+v", snap)
	}
}

// TestTraceRingEvictionCounters: overflowing the ring moves the
// eviction counter, and sampling moves the sampled counter.
func TestTraceRingEvictionCounters(t *testing.T) {
	e := newHealthDB(t)
	e.SetTraceSampling(1)
	const extra = 5
	for i := 0; i < DefaultTraceRingCap+extra; i++ {
		mustQuery(t, e, "SELECT Name FROM Patients WHERE PatientID = 1")
	}
	snap := e.StatsSnapshot()
	if snap["traces_sampled"] < DefaultTraceRingCap+extra {
		t.Fatalf("traces_sampled = %d, want >= %d", snap["traces_sampled"], DefaultTraceRingCap+extra)
	}
	if snap["trace_ring_evictions"] < extra {
		t.Fatalf("trace_ring_evictions = %d, want >= %d", snap["trace_ring_evictions"], extra)
	}
	if snap["trace_ring_traces"] != DefaultTraceRingCap {
		t.Fatalf("trace_ring_traces = %d, want full ring %d", snap["trace_ring_traces"], DefaultTraceRingCap)
	}
	if got := e.TraceRing().Len(); got != DefaultTraceRingCap {
		t.Fatalf("ring len = %d", got)
	}
}

// TestTraceMetricsExposition: the new families — sampled/eviction
// counters, ring gauge, and the WAL fsync histogram — appear in the
// Prometheus exposition when a WAL is attached with metrics.
func TestTraceMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	e := New()
	m, rec, err := wal.Open(dir, wal.Options{
		Sync:    wal.SyncAlways,
		Metrics: wal.NewMetrics(e.Metrics()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(rec); err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(m)
	defer e.CloseWAL()
	e.SetTraceSampling(1)
	if _, err := e.ExecScript(auditedHealthSchema); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice'")

	var b strings.Builder
	e.Metrics().WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"auditdb_traces_sampled_total",
		"auditdb_trace_ring_evictions_total",
		"auditdb_trace_ring_traces",
		"# TYPE auditdb_wal_fsync_seconds histogram",
		`auditdb_wal_fsync_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := e.StatsSnapshot()
	if snap["wal_fsync_seconds_count"] == 0 {
		t.Errorf("wal_fsync_seconds_count = 0 after SyncAlways commits; stats = %v", snap)
	}
}
