package engine

import (
	"fmt"
	"io"
	"strings"
	"time"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/parser"
	"auditdb/internal/storage"
	"auditdb/internal/value"
	"auditdb/internal/wal"
)

// Durability. With a wal.Manager attached, the engine logs every
// committed atomic unit — a top-level autocommit statement with its
// whole trigger cascade, an explicit transaction, or a SELECT
// trigger's system transaction — as one WAL commit record of physical
// row images plus canonical DDL text. Replay applies the images
// directly to storage and never re-fires triggers (their effects are
// already in the record), then rebuilds the audit-expression ID sets.
//
// The one race that could corrupt recovery is a commit interleaving
// with a checkpoint: if a change is captured by the snapshot AND its
// commit record survives in a post-checkpoint segment, replay applies
// it twice. ckptMu prevents it. Lock order is ckptMu before dmlMu:
//
//   - autocommit statements hold ckptMu.RLock from before their first
//     write until their commit record is appended (execStmt);
//   - explicit transactions skip ckptMu entirely — they hold dmlMu
//     from Begin to Commit, and Commit appends the record before
//     releasing it;
//   - Engine.Checkpoint takes ckptMu.Lock then dmlMu.Lock, so it runs
//     only when no statement is mid-flush and no transaction is open.

// walUnit buffers the operations of one atomic unit until its commit
// point. Units are confined to a single statement/transaction flow,
// so no locking.
type walUnit struct {
	ops []wal.Op
}

// AttachWAL enables durability. Call once, after Recover and before
// the engine serves statements; the field is read without
// synchronization on every statement.
func (e *Engine) AttachWAL(m *wal.Manager) { e.wal = m }

// WAL returns the attached manager (nil when durability is off).
func (e *Engine) WAL() *wal.Manager { return e.wal }

// CloseWAL flushes and closes the attached manager, if any.
func (e *Engine) CloseWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Close()
}

// Recover rebuilds engine state from what wal.Open found: load the
// snapshot, replay the commit records after it, re-materialize the
// audit-expression ID sets. Must run before AttachWAL so the replay
// itself is not re-logged.
func (e *Engine) Recover(rec *wal.Recovery) error {
	if e.wal != nil {
		return fmt.Errorf("Recover must run before AttachWAL")
	}
	start := time.Now()
	if rec.HasSnapshot {
		if _, err := e.defSess.ExecScript(rec.SnapshotSQL); err != nil {
			return fmt.Errorf("loading checkpoint snapshot: %w", err)
		}
	}
	for i, c := range rec.Commits {
		if err := e.applyCommit(c); err != nil {
			return fmt.Errorf("replaying commit %d of %d: %w", i+1, len(rec.Commits), err)
		}
	}
	if err := e.reg.RefreshAll(); err != nil {
		return fmt.Errorf("rebuilding audit sets after replay: %w", err)
	}
	// NewMetrics is idempotent per registry, so this reads the same
	// histogram the manager's writer observes into.
	wal.NewMetrics(e.metrics).RecoveryDur.ObserveDuration(time.Since(start))
	return nil
}

// applyCommit replays one unit: DDL by re-execution, DML by applying
// the logged row images directly to storage. Triggers do not fire —
// every write a trigger made at runtime is an op in some record.
func (e *Engine) applyCommit(c *wal.Commit) error {
	for _, op := range c.Ops {
		if op.Kind == wal.OpDDL {
			stmt, err := parser.Parse(op.SQL)
			if err != nil {
				return fmt.Errorf("replayed DDL %q: %w", op.SQL, err)
			}
			if _, err := e.execStmt(stmt, op.SQL, rootActionEnv()); err != nil {
				return fmt.Errorf("replayed DDL %q: %w", op.SQL, err)
			}
			continue
		}
		meta, ok := e.cat.Table(op.Table)
		if !ok {
			return fmt.Errorf("replayed %v on unknown table %q", op.Kind, op.Table)
		}
		tbl, ok := e.store.Table(op.Table)
		if !ok {
			return fmt.Errorf("table %q has no storage", op.Table)
		}
		switch op.Kind {
		case wal.OpInsert:
			if _, err := tbl.Insert(op.New); err != nil {
				return fmt.Errorf("replaying insert into %s: %w", op.Table, err)
			}
		case wal.OpUpdate:
			id, ok := findRowByImage(tbl, meta, op.Old)
			if !ok {
				return fmt.Errorf("replaying update on %s: old row image not found", op.Table)
			}
			if _, err := tbl.Update(id, op.New); err != nil {
				return fmt.Errorf("replaying update on %s: %w", op.Table, err)
			}
		case wal.OpDelete:
			id, ok := findRowByImage(tbl, meta, op.Old)
			if !ok {
				return fmt.Errorf("replaying delete on %s: old row image not found", op.Table)
			}
			if _, err := tbl.Delete(id); err != nil {
				return fmt.Errorf("replaying delete on %s: %w", op.Table, err)
			}
		default:
			return fmt.Errorf("unknown replay op kind %d", op.Kind)
		}
	}
	return nil
}

// findRowByImage locates the storage row matching a logged image.
// Replay cannot address rows by RowID — checkpoint snapshots compact
// tombstones, renumbering the heap — so updates and deletes carry the
// full old image: primary-key lookup when the table has one, full
// scan otherwise.
func findRowByImage(tbl *storage.Table, meta *catalog.TableMeta, image value.Row) (storage.RowID, bool) {
	if len(meta.PrimaryKey) > 0 && len(image) == len(meta.Columns) {
		key := make(value.Row, len(meta.PrimaryKey))
		for i, ord := range meta.PrimaryKey {
			key[i] = image[ord]
		}
		if id, ok := tbl.LookupPK(key); ok {
			return id, true
		}
		return 0, false
	}
	var found storage.RowID
	ok := false
	tbl.Snapshot(func(id storage.RowID, row value.Row) bool {
		if rowsEqual(row, image) {
			found, ok = id, true
			return false
		}
		return true
	})
	return found, ok
}

func rowsEqual(a, b value.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unitOf resolves the atomic unit a statement's writes belong to: the
// enclosing transaction's (created lazily — Txn construction predates
// durability in two places), else the environment's.
func (e *Engine) unitOf(env *actionEnv) *walUnit {
	if env.txn != nil {
		if env.txn.wal == nil {
			env.txn.wal = &walUnit{}
		}
		return env.txn.wal
	}
	return env.unit
}

// bufferDML queues applied row changes on the current unit.
func (e *Engine) bufferDML(env *actionEnv, meta *catalog.TableMeta, applied []change) {
	if e.wal == nil || len(applied) == 0 {
		return
	}
	u := e.unitOf(env)
	for _, c := range applied {
		var op wal.Op
		switch {
		case c.old == nil:
			op = wal.Op{Kind: wal.OpInsert, Table: meta.Name, New: c.new}
		case c.new == nil:
			op = wal.Op{Kind: wal.OpDelete, Table: meta.Name, Old: c.old}
		default:
			op = wal.Op{Kind: wal.OpUpdate, Table: meta.Name, Old: c.old, New: c.new}
		}
		if u != nil {
			u.ops = append(u.ops, op)
		} else if err := e.wal.AppendCommit([]wal.Op{op}); err != nil {
			// No unit means a path outside execStmt; log standalone. An
			// append failure here surfaces on the next flush instead.
			e.Logger().Error("wal append failed", "table", meta.Name, "err", err)
		}
	}
}

// bufferDDL queues a successfully executed DDL statement, rendered
// canonically (the caller's sql text may be a whole script).
func (e *Engine) bufferDDL(env *actionEnv, stmt ast.Stmt) {
	if e.wal == nil {
		return
	}
	ddl := renderDDL(stmt)
	if ddl == "" {
		return
	}
	op := wal.Op{Kind: wal.OpDDL, SQL: ddl}
	if u := e.unitOf(env); u != nil {
		u.ops = append(u.ops, op)
		return
	}
	if err := e.wal.AppendCommit([]wal.Op{op}); err != nil {
		e.Logger().Error("wal append failed", "ddl", ddl, "err", err)
	}
}

// flushUnit appends the unit's buffered ops as one commit record and
// empties it. Flushed even when the statement errored: without a
// transaction there is no undo, so whatever was applied stays in
// memory and must stay in the log too.
func (e *Engine) flushUnit(u *walUnit) error {
	if e.wal == nil || u == nil || len(u.ops) == 0 {
		return nil
	}
	ops := u.ops
	u.ops = nil
	if err := e.wal.AppendCommit(ops); err != nil {
		return fmt.Errorf("wal commit: %w", err)
	}
	return nil
}

// Checkpoint snapshots the database via the WAL manager, anchoring
// the audit chain and truncating covered data segments. It excludes
// all commit activity for the duration (see the lock-order comment at
// the top of this file).
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return fmt.Errorf("durability is not enabled")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.dmlMu.Lock()
	defer e.dmlMu.Unlock()
	return e.wal.Checkpoint(e.dumpLocked)
}

// VerifyAuditLog re-reads the on-disk audit trail and checks the hash
// chain, the live head, and the latest checkpoint anchor.
func (e *Engine) VerifyAuditLog() (*wal.VerifyReport, error) {
	if e.wal == nil {
		return nil, fmt.Errorf("durability is not enabled")
	}
	return e.wal.VerifyAudit()
}

// runVerifyAuditLog serves the VERIFY AUDIT LOG statement.
func (e *Engine) runVerifyAuditLog() (*Result, error) {
	rep, err := e.VerifyAuditLog()
	if err != nil {
		return nil, err
	}
	valid := value.Value{Kind: value.KindBool}
	if rep.Valid {
		valid.I = 1
	}
	return &Result{
		Columns: []string{"valid", "records", "head", "reason"},
		Rows: []value.Row{{
			valid,
			value.Value{Kind: value.KindInt, I: int64(rep.Records)},
			value.NewString(rep.HeadHex),
			value.NewString(rep.Reason),
		}},
	}, nil
}

// renderDDL emits canonical single-statement DDL for logging, or ""
// for statements that are not DDL.
func renderDDL(stmt ast.Stmt) string {
	switch s := stmt.(type) {
	case *ast.CreateTable:
		var cols []string
		inlinePK := len(s.PrimaryKey) == 0
		for _, c := range s.Columns {
			def := fmt.Sprintf("%s %s", c.Name, c.Type)
			if inlinePK && c.PrimaryKey {
				def += " PRIMARY KEY"
			}
			cols = append(cols, def)
		}
		if len(s.PrimaryKey) > 0 {
			cols = append(cols, "PRIMARY KEY ("+strings.Join(s.PrimaryKey, ", ")+")")
		}
		return fmt.Sprintf("CREATE TABLE %s (%s)", s.Name, strings.Join(cols, ", "))
	case *ast.CreateIndex:
		return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", s.Name, s.Table, strings.Join(s.Columns, ", "))
	case *ast.CreateView:
		return fmt.Sprintf("CREATE VIEW %s AS %s", s.Name, ast.RenderSelect(s.Query))
	case *ast.CreateAuditExpression:
		return ast.RenderAuditExpression(s)
	case *ast.CreateTrigger:
		switch s.Event {
		case ast.EventAccess:
			return fmt.Sprintf("CREATE TRIGGER %s ON ACCESS TO %s AS %s", s.Name, s.Target, s.ActionSQL)
		case ast.EventInsert:
			return fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER INSERT AS %s", s.Name, s.Target, s.ActionSQL)
		case ast.EventUpdate:
			return fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER UPDATE AS %s", s.Name, s.Target, s.ActionSQL)
		case ast.EventDelete:
			return fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER DELETE AS %s", s.Name, s.Target, s.ActionSQL)
		}
		return ""
	case *ast.DropTable:
		return "DROP TABLE " + s.Name
	case *ast.DropIndex:
		return "DROP INDEX " + s.Name
	case *ast.DropView:
		return "DROP VIEW " + s.Name
	case *ast.DropTrigger:
		return "DROP TRIGGER " + s.Name
	case *ast.DropAuditExpression:
		return "DROP AUDIT EXPRESSION " + s.Name
	default:
		return ""
	}
}

// Dump serializes the whole database as a replayable SQL script,
// holding the writer lock so the snapshot is transactionally
// consistent (a dump can no longer interleave with concurrent DML).
func (e *Engine) Dump(w io.Writer) error {
	e.dmlMu.Lock()
	defer e.dmlMu.Unlock()
	return e.dumpLocked(w)
}
