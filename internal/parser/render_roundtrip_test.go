package parser

import (
	"testing"

	"auditdb/internal/ast"
)

// TestRenderParseRoundTrip: rendering a parsed query and re-parsing it
// yields a query that renders identically (fixed point after one
// round).
func TestRenderParseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS bb FROM t WHERE a > 3",
		"SELECT DISTINCT x FROM t ORDER BY x DESC LIMIT 5",
		"SELECT p.* FROM (SELECT x FROM t) AS p",
		"SELECT a FROM t1 LEFT JOIN t2 ON t1.x = t2.x WHERE t2.y IS NOT NULL",
		"SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1",
		"SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
		"SELECT a FROM t WHERE b IN (1, 2) AND c BETWEEN 0 AND 9 AND d LIKE 'x%'",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
		"SELECT a FROM t WHERE x IN (SELECT x FROM u) AND y = (SELECT MAX(y) FROM u)",
		"SELECT a FROM t WHERE d >= DATE '1995-01-01'",
	}
	for _, q := range queries {
		first, err := ParseQuery(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := ast.RenderSelect(first)
		second, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered %q failed: %v\nrendered: %s", q, err, rendered)
		}
		again := ast.RenderSelect(second)
		if rendered != again {
			t.Errorf("render not a fixed point:\n 1st: %s\n 2nd: %s", rendered, again)
		}
	}
}
