package engine

import (
	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/exec"
	"auditdb/internal/opt"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
	"auditdb/internal/wal"
	"fmt"
)

// acquireWrite takes the engine's writer lock for one statement, or is
// a no-op when the statement runs inside a transaction that already
// holds it. The returned function releases whatever was taken.
func (e *Engine) acquireWrite(env *actionEnv) func() {
	if env.txn != nil || env.lockHeld {
		return func() {}
	}
	e.dmlMu.Lock()
	return e.dmlMu.Unlock
}

// change records one applied row mutation for undo and trigger firing.
type change struct {
	table    *storage.Table
	id       storage.RowID
	old, new value.Row // old nil = insert, new nil = delete
}

func (e *Engine) runInsert(s *ast.Insert, sql string, env *actionEnv) (*Result, error) {
	meta, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}

	// Resolve the optional explicit column list to target ordinals.
	targets, err := resolveColumns(meta, s.Columns)
	if err != nil {
		return nil, err
	}

	var rows []value.Row
	switch {
	case s.Query != nil:
		// INSERT ... SELECT runs the query through the full audited
		// pipeline, so SELECT triggers observe its accesses too.
		r, err := e.runSelect(s.Query, sql, env)
		if err != nil {
			return nil, err
		}
		for _, src := range r.Rows {
			row, err := spreadRow(meta, targets, src)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	default:
		schema := env.outerSchema
		if schema == nil {
			schema = plan.Schema{}
		}
		ctx := e.execCtx(env, sql)
		for _, exprRow := range s.Rows {
			src := make(value.Row, len(exprRow))
			for i, ex := range exprRow {
				compiled, err := plan.BuildScalar(e.planEnv(env), schema, ex)
				if err != nil {
					return nil, err
				}
				v, err := compiled.Eval(ctx.Eval, env.outerRow)
				if err != nil {
					return nil, err
				}
				src[i] = v
			}
			row, err := spreadRow(meta, targets, src)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}

	unlock := e.acquireWrite(env)
	tbl, ok := e.store.Table(s.Table)
	if !ok {
		unlock()
		return nil, fmt.Errorf("table %q has no storage", s.Table)
	}
	var applied []change
	for _, row := range rows {
		id, err := tbl.Insert(row)
		if err != nil {
			undo(applied)
			unlock()
			return nil, err
		}
		stored, _ := tbl.Get(id)
		applied = append(applied, change{table: tbl, id: id, new: stored})
	}
	if env.txn != nil {
		env.txn.record(applied)
	}
	unlock()

	if err := e.afterDML(meta, applied, sql, env, catalog.TriggerAfterInsert); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(applied)}, nil
}

func (e *Engine) runUpdate(s *ast.Update, sql string, env *actionEnv) (*Result, error) {
	meta, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	qual := s.Alias
	if qual == "" {
		qual = meta.Name
	}
	schema := tableSchema(meta, qual)

	var where plan.Expr
	if s.Where != nil {
		w, err := plan.BuildScalar(e.planEnv(env), schema, s.Where)
		if err != nil {
			return nil, err
		}
		where = w
	}
	type assign struct {
		ord  int
		expr plan.Expr
	}
	var assigns []assign
	for _, a := range s.Set {
		ord := meta.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("unknown column %q in UPDATE", a.Column)
		}
		compiled, err := plan.BuildScalar(e.planEnv(env), schema, a.Value)
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, assign{ord: ord, expr: compiled})
	}

	ctx := e.execCtx(env, sql)
	unlock := e.acquireWrite(env)
	tbl, ok := e.store.Table(s.Table)
	if !ok {
		unlock()
		return nil, fmt.Errorf("table %q has no storage", s.Table)
	}
	// Plan the row set first, then apply, to keep iteration stable.
	type pending struct {
		id  storage.RowID
		new value.Row
	}
	var todo []pending
	var evalErr error
	tbl.Snapshot(func(id storage.RowID, row value.Row) bool {
		if where != nil {
			v, err := where.Eval(ctx.Eval, row)
			if err != nil {
				evalErr = err
				return false
			}
			if value.TriFromValue(v) != value.True {
				return true
			}
		}
		newRow := row.Clone()
		for _, a := range assigns {
			v, err := a.expr.Eval(ctx.Eval, row)
			if err != nil {
				evalErr = err
				return false
			}
			newRow[a.ord] = v
		}
		todo = append(todo, pending{id: id, new: newRow})
		return true
	})
	if evalErr != nil {
		unlock()
		return nil, evalErr
	}
	var applied []change
	for _, p := range todo {
		old, err := tbl.Update(p.id, p.new)
		if err != nil {
			undo(applied)
			unlock()
			return nil, err
		}
		stored, _ := tbl.Get(p.id)
		applied = append(applied, change{table: tbl, id: p.id, old: old, new: stored})
	}
	if env.txn != nil {
		env.txn.record(applied)
	}
	unlock()

	if err := e.afterDML(meta, applied, sql, env, catalog.TriggerAfterUpdate); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(applied)}, nil
}

func (e *Engine) runDelete(s *ast.Delete, sql string, env *actionEnv) (*Result, error) {
	meta, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	qual := s.Alias
	if qual == "" {
		qual = meta.Name
	}
	var where plan.Expr
	if s.Where != nil {
		w, err := plan.BuildScalar(e.planEnv(env), tableSchema(meta, qual), s.Where)
		if err != nil {
			return nil, err
		}
		where = w
	}

	ctx := e.execCtx(env, sql)
	unlock := e.acquireWrite(env)
	tbl, ok := e.store.Table(s.Table)
	if !ok {
		unlock()
		return nil, fmt.Errorf("table %q has no storage", s.Table)
	}
	var ids []storage.RowID
	var evalErr error
	tbl.Snapshot(func(id storage.RowID, row value.Row) bool {
		if where != nil {
			v, err := where.Eval(ctx.Eval, row)
			if err != nil {
				evalErr = err
				return false
			}
			if value.TriFromValue(v) != value.True {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		unlock()
		return nil, evalErr
	}
	var applied []change
	for _, id := range ids {
		old, err := tbl.Delete(id)
		if err != nil {
			undo(applied)
			unlock()
			return nil, err
		}
		applied = append(applied, change{table: tbl, id: id, old: old})
	}
	if env.txn != nil {
		env.txn.record(applied)
	}
	unlock()

	if err := e.afterDML(meta, applied, sql, env, catalog.TriggerAfterDelete); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(applied)}, nil
}

// afterDML maintains audit-expression ID sets and fires row-level
// AFTER triggers for the applied changes.
func (e *Engine) afterDML(meta *catalog.TableMeta, applied []change, sql string, env *actionEnv, kind catalog.TriggerKind) error {
	if len(applied) == 0 {
		return nil
	}
	e.bufferDML(env, meta, applied)
	var inserted, deleted []value.Row
	for _, c := range applied {
		if c.new != nil {
			inserted = append(inserted, c.new)
		}
		if c.old != nil {
			deleted = append(deleted, c.old)
		}
	}
	if err := e.reg.Apply(meta.Name, inserted, deleted); err != nil {
		return fmt.Errorf("audit expression maintenance: %w", err)
	}
	return e.fireDMLTriggers(meta, applied, sql, env, kind)
}

func undo(applied []change) {
	// Reverse order restores prior state even with overlapping keys.
	for i := len(applied) - 1; i >= 0; i-- {
		c := applied[i]
		switch {
		case c.old == nil: // insert -> delete
			_, _ = c.table.Delete(c.id)
		case c.new == nil: // delete -> restore
			_ = c.table.Restore(c.id, c.old)
		default: // update -> revert
			_, _ = c.table.Update(c.id, c.old)
		}
	}
}

func resolveColumns(meta *catalog.TableMeta, names []string) ([]int, error) {
	if len(names) == 0 {
		out := make([]int, len(meta.Columns))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(names))
	seen := map[int]bool{}
	for i, n := range names {
		ord := meta.ColumnIndex(n)
		if ord < 0 {
			return nil, fmt.Errorf("unknown column %q in table %s", n, meta.Name)
		}
		if seen[ord] {
			return nil, fmt.Errorf("column %q listed twice", n)
		}
		seen[ord] = true
		out[i] = ord
	}
	return out, nil
}

// spreadRow expands a source tuple (matching the target column list)
// into a full-width row, NULL-filling unlisted columns.
func spreadRow(meta *catalog.TableMeta, targets []int, src value.Row) (value.Row, error) {
	if len(src) != len(targets) {
		return nil, fmt.Errorf("table %s: expected %d values, got %d", meta.Name, len(targets), len(src))
	}
	row := make(value.Row, len(meta.Columns))
	for i := range row {
		row[i] = value.Null
	}
	for i, ord := range targets {
		row[ord] = src[i]
	}
	return row, nil
}

func tableSchema(meta *catalog.TableMeta, qual string) plan.Schema {
	out := make(plan.Schema, len(meta.Columns))
	for i, c := range meta.Columns {
		out[i] = plan.ColInfo{Qual: qual, Name: c.Name, Kind: c.Type}
	}
	return out
}

// LoadRows bulk-inserts pre-typed rows, bypassing SQL parsing but not
// constraint checks or audit-set maintenance. Triggers do not fire;
// generators use this to build benchmark databases quickly.
func (e *Engine) LoadRows(table string, rows []value.Row) error {
	meta, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("unknown table %q", table)
	}
	e.dmlMu.Lock()
	tbl, ok := e.store.Table(table)
	if !ok {
		e.dmlMu.Unlock()
		return fmt.Errorf("table %q has no storage", table)
	}
	var applied []change
	for _, row := range rows {
		id, err := tbl.Insert(row)
		if err != nil {
			undo(applied)
			e.dmlMu.Unlock()
			return err
		}
		stored, _ := tbl.Get(id)
		applied = append(applied, change{table: tbl, id: id, new: stored})
	}
	// One commit record for the whole batch, appended while the writer
	// lock still excludes checkpoints.
	var walErr error
	if e.wal != nil && len(applied) > 0 {
		ops := make([]wal.Op, len(applied))
		for i, c := range applied {
			ops[i] = wal.Op{Kind: wal.OpInsert, Table: meta.Name, New: c.new}
		}
		walErr = e.wal.AppendCommit(ops)
	}
	e.dmlMu.Unlock()
	if walErr != nil {
		return walErr
	}
	inserted := make([]value.Row, len(applied))
	for i, c := range applied {
		inserted[i] = c.new
	}
	return e.reg.Apply(meta.Name, inserted, nil)
}

// RunPlan executes a prepared plan against the engine's store with a
// fresh context; the benchmark harness uses it to time instrumented
// versus plain plans without re-planning.
func (e *Engine) RunPlan(n plan.Node, sql string) ([]value.Row, error) {
	ctx := e.execCtx(rootActionEnv(), sql)
	rows, err := exec.Run(n, ctx)
	e.stats.RowsScanned.Add(ctx.Stats.RowsScanned.Load())
	return rows, err
}

// DrainPlan executes a prepared plan but discards rows instead of
// materializing them, returning only the row count. Overhead
// measurements use it so result-buffer retention (identical on both
// sides anyway) does not drown the audit operator's cost in GC noise.
func (e *Engine) DrainPlan(n plan.Node, sql string) (int, error) {
	ctx := e.execCtx(rootActionEnv(), sql)
	count, err := exec.Drain(n, ctx)
	e.stats.RowsScanned.Add(ctx.Stats.RowsScanned.Load())
	return count, err
}

// OptimizePlan exposes the optimizer for harness code building custom
// plans.
func OptimizePlan(n plan.Node) plan.Node { return opt.Optimize(n) }
