package engine

import (
	"strings"
	"testing"

	"auditdb/internal/offline"
)

// withAliceAudit adds the paper's Audit_Alice expression plus a logging
// ON ACCESS trigger to the healthcare fixture.
func withAliceAudit(t *testing.T, e *Engine) {
	t.Helper()
	if _, err := e.ExecScript(`
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`); err != nil {
		t.Fatal(err)
	}
}

func analyzeText(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	r := mustExec(t, e, sql)
	if len(r.Columns) != 1 || r.Columns[0] != "plan" {
		t.Fatalf("columns = %v", r.Columns)
	}
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(row[0].Str())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainAnalyzeSideEffectFree is the tentpole guarantee: EXPLAIN
// ANALYZE executes the query for real (probes run, rows flow) but
// fires no trigger, records no ACCESSED state, and leaves the
// rows_audited and triggers_fired counters untouched. Only statements
// and rows_scanned may move.
func TestExplainAnalyzeSideEffectFree(t *testing.T) {
	e := newHealthDB(t)
	withAliceAudit(t, e)
	before := e.StatsSnapshot()

	text := analyzeText(t, e, "EXPLAIN ANALYZE SELECT * FROM Patients WHERE Age > 30")

	if !strings.Contains(text, "Audit(Audit_Alice") {
		t.Fatalf("analyze output missing audit operator:\n%s", text)
	}
	// Age > 30 keeps Alice (34), Carol (47), Erin (62): three probes,
	// one hit on Alice's partition key.
	if !strings.Contains(text, "probes=3 hits=1 distinct_ids=1") {
		t.Errorf("audit counters wrong:\n%s", text)
	}
	if !strings.Contains(text, "rows_scanned=5") {
		t.Errorf("execution footer missing rows_scanned=5:\n%s", text)
	}

	after := e.StatsSnapshot()
	if after["rows_audited"] != before["rows_audited"] {
		t.Errorf("rows_audited moved: %d -> %d", before["rows_audited"], after["rows_audited"])
	}
	if after["triggers_fired"] != before["triggers_fired"] {
		t.Errorf("triggers_fired moved: %d -> %d", before["triggers_fired"], after["triggers_fired"])
	}
	if after["queries"] != before["queries"] {
		t.Errorf("EXPLAIN ANALYZE counted as a query: %d -> %d", before["queries"], after["queries"])
	}
	if got := after["rows_scanned"] - before["rows_scanned"]; got != 5 {
		t.Errorf("rows_scanned delta = %d, want 5", got)
	}
	if r := mustQuery(t, e, "SELECT * FROM Log"); len(r.Rows) != 0 {
		t.Errorf("EXPLAIN ANALYZE wrote %d Log rows", len(r.Rows))
	}
}

// TestExplainAnalyzePerNodeCounters checks the per-operator rows and
// the audit probe arithmetic against the known healthcare
// cardinalities, and that the report agrees with both a real audited
// run and the exact offline auditor.
func TestExplainAnalyzePerNodeCounters(t *testing.T) {
	e := newHealthDB(t)
	withAliceAudit(t, e)
	const q = "SELECT Name FROM Patients WHERE Age > 30"

	text := analyzeText(t, e, "EXPLAIN ANALYZE "+q)
	// Scan emits the three post-predicate rows; the audit operator
	// probes each and the projection forwards them.
	for _, want := range []string{
		"Scan(Patients",
		"probes=3 hits=1 distinct_ids=1",
		"rows=3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "never executed") {
		t.Errorf("unexpected never-executed node:\n%s", text)
	}

	// A real audited run must record exactly the distinct IDs the
	// analyze report counted.
	r := mustQuery(t, e, q)
	if r.Accessed == nil || r.Accessed.Len("Audit_Alice") != 1 {
		t.Fatalf("real run accessed = %v", r.Accessed)
	}

	// And the exact offline auditor agrees: only Alice's tuple
	// influences the result.
	ae, ok := e.Registry().Get("Audit_Alice")
	if !ok {
		t.Fatal("Audit_Alice not registered")
	}
	rep, err := offline.New(e.Catalog(), e.Store()).Audit(q, ae)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AccessedIDs) != 1 || rep.AccessedIDs[0].I != 1 {
		t.Fatalf("offline ground truth = %v", rep.AccessedIDs)
	}
	if rep.RowsScanned == 0 {
		t.Errorf("offline report did not count rows scanned")
	}
}

// TestExplainAnalyzeConservativeTopK exercises a plan where the audit
// operator is pinned below a non-commutative LIMIT: the analyze report
// still shows the operator with its probe counts, and a top-k that
// excludes Alice shows the over-report (probe hits without the row
// surviving to the result).
func TestExplainAnalyzeTopK(t *testing.T) {
	e := newHealthDB(t)
	withAliceAudit(t, e)
	// Oldest two patients: Erin (62), Carol (47) — Alice is sorted out.
	text := analyzeText(t, e, "EXPLAIN ANALYZE SELECT Name FROM Patients ORDER BY Age DESC LIMIT 2")
	if !strings.Contains(text, "Audit(Audit_Alice") {
		t.Fatalf("analyze output missing audit operator:\n%s", text)
	}
	if !strings.Contains(text, "Limit(2)") {
		t.Fatalf("analyze output missing limit:\n%s", text)
	}
	if r := mustQuery(t, e, "SELECT * FROM Log"); len(r.Rows) != 0 {
		t.Errorf("EXPLAIN ANALYZE of top-k wrote %d Log rows", len(r.Rows))
	}
}

// TestPlacementOutcomeCounters checks the placement_exact vs
// placement_conservative classification: a select-join query whose
// audit operators reach the root counts exact (Theorem 3.7); a top-k
// query whose operator is blocked below LIMIT counts conservative.
func TestPlacementOutcomeCounters(t *testing.T) {
	e := newHealthDB(t)
	withAliceAudit(t, e)
	before := e.StatsSnapshot()

	mustQuery(t, e, "SELECT Name FROM Patients WHERE Age > 30")
	after := e.StatsSnapshot()
	if d := after["placement_exact"] - before["placement_exact"]; d != 1 {
		t.Errorf("placement_exact delta = %d, want 1", d)
	}
	if d := after["placement_conservative"] - before["placement_conservative"]; d != 0 {
		t.Errorf("placement_conservative delta = %d, want 0", d)
	}

	mustQuery(t, e, "SELECT Name FROM Patients ORDER BY Age DESC LIMIT 2")
	final := e.StatsSnapshot()
	if d := final["placement_conservative"] - after["placement_conservative"]; d != 1 {
		t.Errorf("placement_conservative delta = %d, want 1", d)
	}

	// Per-table audited rows: the first query touched Alice's record;
	// the top-k query audits her again because the conservatively
	// placed operator below LIMIT observes every sorted row even
	// though Alice is cut from the result — the paper's over-report
	// (Theorem 3.7 boundary), which is exactly what the conservative
	// counter flags.
	if got := final["rows_audited_by_table_patients"]; got != 2 {
		t.Errorf("rows_audited_by_table_patients = %d, want 2", got)
	}
	if final["rows_audited"] < 1 {
		t.Errorf("rows_audited = %d, want >= 1", final["rows_audited"])
	}
}

// TestExplainAnalyzeUninstrumented covers the no-audit path: the
// report renders plain operator counters.
func TestExplainAnalyzeUninstrumented(t *testing.T) {
	e := newHealthDB(t)
	text := analyzeText(t, e, "EXPLAIN ANALYZE SELECT COUNT(*) FROM Patients")
	for _, want := range []string{"Aggregate", "rows=1", "Execution: rows=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output missing %q:\n%s", want, text)
		}
	}
}

// TestEngineExplainAnalyzeHelper drives the string-returning facade.
func TestEngineExplainAnalyzeHelper(t *testing.T) {
	e := newHealthDB(t)
	withAliceAudit(t, e)
	out, err := e.ExplainAnalyze("SELECT * FROM Patients WHERE Age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "probes=3 hits=1 distinct_ids=1") {
		t.Errorf("helper output:\n%s", out)
	}
}
