module auditdb

go 1.23
