package engine

import (
	"fmt"
	"sync"
	"testing"

	"auditdb/internal/core"
	"auditdb/internal/value"
)

const sessionFixture = `
CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT);
CREATE TABLE Log (UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
INSERT INTO Patients VALUES (1, 'Alice', 34), (2, 'Bob', 21), (3, 'Carol', 47);
CREATE AUDIT EXPRESSION Audit_Alice AS
	SELECT * FROM Patients WHERE Name = 'Alice'
	FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
	INSERT INTO Log SELECT userid(), sqltext(), PatientID FROM ACCESSED;
`

// TestSessionUserAttribution is the regression test for the
// session-identity race: with the old engine-global SetUser, two
// concurrent users' trigger-logged rows could carry each other's
// USERID(). Each session tags its SQL text, so every Log row must pair
// the tag with that session's user.
func TestSessionUserAttribution(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(sessionFixture); err != nil {
		t.Fatal(err)
	}

	const users = 4
	const queriesPerUser = 25
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			s.SetUser(fmt.Sprintf("user%d", u))
			// The tag (u+1)*1000000+i makes each query text unique to
			// its session.
			for i := 0; i < queriesPerUser; i++ {
				sql := fmt.Sprintf("SELECT Name FROM Patients WHERE Name = 'Alice' AND %d = %d", tag(u, i), tag(u, i))
				if _, err := s.Query(sql); err != nil {
					errs <- err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rows := mustQuery(t, e, "SELECT UserID, SQL FROM Log").Rows
	if got, want := len(rows), users*queriesPerUser; got != want {
		t.Fatalf("Log rows = %d, want %d", got, want)
	}
	for _, r := range rows {
		user, sql := r[0].Str(), r[1].Str()
		for u := 0; u < users; u++ {
			for i := 0; i < queriesPerUser; i++ {
				if sql == fmt.Sprintf("SELECT Name FROM Patients WHERE Name = 'Alice' AND %d = %d", tag(u, i), tag(u, i)) {
					if want := fmt.Sprintf("user%d", u); user != want {
						t.Fatalf("cross-session USERID bleed: query tagged for %s logged as %s", want, user)
					}
				}
			}
		}
	}
}

func tag(u, i int) int { return (u+1)*1000000 + i }

// TestSessionSettingsIndependent checks that audit-all, placement, and
// user are per-session, seeded from the default session at creation.
func TestSessionSettingsIndependent(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(sessionFixture); err != nil {
		t.Fatal(err)
	}
	a := e.NewSession()
	b := e.NewSession()
	defer a.Close()
	defer b.Close()

	a.SetAuditAll(true)
	if b.AuditAll() {
		t.Fatal("SetAuditAll leaked across sessions")
	}
	a.SetHeuristic(core.LeafNode)
	if b.Heuristic() != core.HighestCommutativeNode {
		t.Fatal("SetHeuristic leaked across sessions")
	}
	a.SetUser("alice")
	if got := b.User(); got != "system" {
		t.Fatalf("b.User() = %q, want inherited default %q", got, "system")
	}

	// New sessions inherit the default session's current settings.
	e.SetAuditAll(true)
	e.SetUser("root")
	c := e.NewSession()
	defer c.Close()
	if !c.AuditAll() || c.User() != "root" {
		t.Fatalf("NewSession did not inherit defaults: auditAll=%v user=%q", c.AuditAll(), c.User())
	}
}

// TestSessionTxnIsolation checks that SQL-level transactions belong to
// the session that opened them: another session's COMMIT/ROLLBACK
// fails cleanly instead of hijacking the open transaction.
func TestSessionTxnIsolation(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(sessionFixture); err != nil {
		t.Fatal(err)
	}
	a := e.NewSession()
	b := e.NewSession()
	defer a.Close()
	defer b.Close()

	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("INSERT INTO Patients VALUES (10, 'Zed', 50)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT from a session without a transaction should fail")
	}
	if _, err := b.Exec("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK from a session without a transaction should fail")
	}
	if _, err := a.Exec("ROLLBACK"); err != nil {
		t.Fatalf("owner's ROLLBACK failed: %v", err)
	}
	rows := mustQuery(t, e, "SELECT Name FROM Patients WHERE PatientID = 10").Rows
	if len(rows) != 0 {
		t.Fatal("rolled-back insert is visible")
	}
}

// TestSessionCloseRollsBackTxn models a dropped connection: closing a
// session with an open SQL transaction rolls it back and releases the
// writer lock for other sessions.
func TestSessionCloseRollsBackTxn(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(sessionFixture); err != nil {
		t.Fatal(err)
	}
	a := e.NewSession()
	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("INSERT INTO Patients VALUES (11, 'Ghost', 1)"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("SELECT 1"); err == nil {
		t.Fatal("statements on a closed session should fail")
	}

	// The writer lock must be free again and the insert undone.
	b := e.NewSession()
	defer b.Close()
	if _, err := b.Exec("INSERT INTO Patients VALUES (12, 'Next', 2)"); err != nil {
		t.Fatal(err)
	}
	if rows := mustQuery(t, e, "SELECT Name FROM Patients WHERE PatientID = 11").Rows; len(rows) != 0 {
		t.Fatal("closed session's transaction was not rolled back")
	}
}

// TestSessionPreparedAttribution runs one prepared statement from two
// sessions and checks each run is logged under its own user.
func TestSessionPreparedAttribution(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(sessionFixture); err != nil {
		t.Fatal(err)
	}
	a := e.NewSession()
	b := e.NewSession()
	defer a.Close()
	defer b.Close()
	a.SetUser("alice")
	b.SetUser("bob")

	pa, err := a.Prepare("SELECT Name FROM Patients WHERE Name = ?")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Prepare("SELECT Name FROM Patients WHERE Name = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Run(value.NewString("Alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Run(value.NewString("Alice")); err != nil {
		t.Fatal(err)
	}

	rows := mustQuery(t, e, "SELECT UserID FROM Log ORDER BY UserID").Rows
	if len(rows) != 2 || rows[0][0].Str() != "alice" || rows[1][0].Str() != "bob" {
		t.Fatalf("prepared-statement attribution wrong: %v", rows)
	}
}
