package engine

import (
	"fmt"

	"auditdb/internal/ast"
	"auditdb/internal/lexer"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// Prepared is a parsed statement with positional ? parameters. Each
// Run binds a fresh parameter vector, so a Prepared is safe to reuse
// (parsing happens once; planning reflects the catalog at run time,
// which keeps audit instrumentation current).
//
// A plain SELECT is additionally normalized once at prepare time; each
// Run then goes through the engine-wide canonical plan cache with the
// user's parameters spliced into the precomputed slot vector, skipping
// normalization and parsing alike.
type Prepared struct {
	sess   *Session
	stmt   ast.Stmt
	sql    string
	params int

	// Canonical form captured at prepare time (normOK only).
	normOK bool
	canon  []byte
	vals   []value.Value
	user   []bool
}

// Prepare parses a single statement containing ? placeholders, bound
// to the default session. Use Session.Prepare for per-user statements.
func (e *Engine) Prepare(sql string) (*Prepared, error) {
	return prepare(e.defSess, sql)
}

func prepare(sess *Session, sql string) (*Prepared, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	n, err := parser.CountParams(sql)
	if err != nil {
		return nil, err
	}
	p := &Prepared{sess: sess, stmt: stmt, sql: sql, params: n}
	if _, isSel := stmt.(*ast.Select); isSel {
		var norm lexer.Norm
		if lexer.Normalize(sql, &norm) && norm.NUser == n {
			// Private copies: the Norm's slices are scan scratch.
			p.normOK = true
			p.canon = append([]byte(nil), norm.Canonical...)
			p.vals = append([]value.Value(nil), norm.Vals...)
			p.user = append([]bool(nil), norm.User...)
		}
	}
	return p, nil
}

// NumParams reports how many ? placeholders the statement declares.
func (p *Prepared) NumParams() int { return p.params }

// AST returns the parsed statement. Protocol front ends use it to
// classify the statement (command tags, row-returning or not) without
// re-parsing the SQL text.
func (p *Prepared) AST() ast.Stmt { return p.stmt }

// Describe plans the statement without executing it and reports its
// output schema: column names and value kinds in output order. A
// statement that returns no rows (DML, DDL, transaction control)
// reports nil columns and no error. Planning reflects the catalog at
// call time, so a Describe after DDL sees the new schema.
func (p *Prepared) Describe() ([]string, []value.Kind, error) {
	sel, ok := p.stmt.(*ast.Select)
	if !ok {
		return nil, nil, nil
	}
	n, err := plan.Build(p.sess.e.planEnv(p.sess.rootEnv()), sel)
	if err != nil {
		return nil, nil, err
	}
	sch := n.Schema()
	names := make([]string, len(sch))
	kinds := make([]value.Kind, len(sch))
	for i, c := range sch {
		names[i] = c.Name
		kinds[i] = c.Kind
	}
	return names, kinds, nil
}

// Run executes the statement with the given parameter values bound in
// source order.
func (p *Prepared) Run(params ...value.Value) (*Result, error) {
	if len(params) != p.params {
		return nil, fmt.Errorf("statement expects %d parameters, got %d", p.params, len(params))
	}
	if err := p.sess.checkOpen(); err != nil {
		return nil, err
	}
	if p.normOK {
		if res, ok, err := p.sess.execCanonSelect(p.sql, p.canon, p.vals, p.user, params); ok {
			return res, err
		}
	}
	env := p.sess.rootEnv()
	env.params = params
	return p.sess.e.execStmt(p.stmt, p.sql, env)
}
