package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Scanner is a pull-based, zero-allocation tokenizer over the input
// bytes. Callers Init it (or embed it in a larger struct) and call
// Scan repeatedly; after each Scan the exported token fields describe
// the current token as a byte span of the source — no token slice is
// materialized and no per-token strings are built. Text conversion
// happens lazily, only when a consumer needs the spelling (typically
// at AST-construction time), and even then identifier and number text
// is a substring of the input, which in Go shares the backing array.
//
// A Scanner must not be shared between goroutines.
type Scanner struct {
	src string
	off int

	// Fields describing the current token, valid after Scan.
	Kind    TokenKind
	Kw      Keyword // which reserved word, when Kind == TokKeyword
	Op      OpKind  // which operator, when Kind == TokOp
	Pos     int     // token start (the opening quote for strings)
	Start   int     // content start (inside the quotes for strings and quoted identifiers)
	End     int     // content end
	Escaped bool    // string literal contains '' escape sequences

	err error
}

// Init resets the scanner to the beginning of src.
func (s *Scanner) Init(src string) {
	*s = Scanner{src: src}
}

// Err returns the lexical error encountered, if any. Once an error is
// set, Scan keeps returning TokEOF.
func (s *Scanner) Err() error { return s.err }

// Text returns the current token's raw text: the source span for
// identifiers, numbers and (un-unescaped) string contents. It shares
// the input's backing array — no copy.
func (s *Scanner) Text() string { return s.src[s.Start:s.End] }

// StringText returns the current string literal's value with ”
// escapes collapsed. It allocates only when an escape is present.
func (s *Scanner) StringText() string {
	raw := s.src[s.Start:s.End]
	if !s.Escaped {
		return raw
	}
	return strings.ReplaceAll(raw, "''", "'")
}

// charClass flags for single-byte dispatch.
const (
	clsIdentStart uint8 = 1 << iota
	clsIdentPart
	clsDigit
	clsSpace
)

var charClass [128]uint8

func init() {
	for c := 'a'; c <= 'z'; c++ {
		charClass[c] = clsIdentStart | clsIdentPart
	}
	for c := 'A'; c <= 'Z'; c++ {
		charClass[c] = clsIdentStart | clsIdentPart
	}
	for c := '0'; c <= '9'; c++ {
		charClass[c] = clsDigit | clsIdentPart
	}
	charClass['_'] = clsIdentStart | clsIdentPart
	charClass['$'] = clsIdentPart
	charClass[' '] = clsSpace
	charClass['\t'] = clsSpace
	charClass['\n'] = clsSpace
	charClass['\r'] = clsSpace
}

func (s *Scanner) fail(format string, args ...any) TokenKind {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
	s.Kind = TokEOF
	s.Pos = len(s.src)
	s.Start, s.End = s.Pos, s.Pos
	return TokEOF
}

// Scan advances to the next token and returns its kind. At end of
// input (or after a lexical error — check Err) it returns TokEOF.
func (s *Scanner) Scan() TokenKind {
	if s.err != nil {
		return s.fail("")
	}
	src, n := s.src, len(s.src)
	i := s.off
	// Skip whitespace and comments.
	for i < n {
		c := src[i]
		if c < 128 && charClass[c]&clsSpace != 0 {
			i++
			continue
		}
		if c == '-' && i+1 < n && src[i+1] == '-' {
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		}
		if c == '/' && i+1 < n && src[i+1] == '*' {
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				s.off = n
				return s.fail("unterminated block comment at offset %d", i)
			}
			i += 2 + end + 2
			continue
		}
		break
	}
	if i >= n {
		s.off = n
		s.Kind = TokEOF
		s.Pos, s.Start, s.End = n, n, n
		return TokEOF
	}

	s.Pos = i
	c := src[i]
	switch {
	case c == '\'':
		return s.scanString(i)
	case c < 128 && charClass[c]&clsDigit != 0,
		c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
		return s.scanNumber(i)
	case c < 128 && charClass[c]&clsIdentStart != 0:
		return s.scanIdent(i)
	case c >= utf8.RuneSelf:
		r, _ := utf8.DecodeRuneInString(src[i:])
		if unicode.IsLetter(r) {
			return s.scanIdent(i)
		}
		s.off = i
		return s.fail("unexpected character %q at offset %d", r, i)
	case c == '"':
		end := strings.IndexByte(src[i+1:], '"')
		if end < 0 {
			s.off = n
			return s.fail("unterminated quoted identifier at offset %d", i)
		}
		s.Kind = TokIdent
		s.Kw = KwNone
		s.Start, s.End = i+1, i+1+end
		s.off = i + end + 2
		return TokIdent
	default:
		return s.scanOp(i)
	}
}

func (s *Scanner) scanString(start int) TokenKind {
	src, n := s.src, len(s.src)
	i := start + 1
	escaped := false
	for i < n {
		c := src[i]
		if c != '\'' {
			i++
			continue
		}
		if i+1 < n && src[i+1] == '\'' {
			escaped = true
			i += 2
			continue
		}
		s.Kind = TokString
		s.Start, s.End = start+1, i
		s.Escaped = escaped
		s.off = i + 1
		return TokString
	}
	s.off = n
	return s.fail("unterminated string literal at offset %d", start)
}

func (s *Scanner) scanNumber(start int) TokenKind {
	src, n := s.src, len(s.src)
	i := start
	seenDot := false
	for i < n {
		c := src[i]
		if c < 128 && charClass[c]&clsDigit != 0 {
			i++
		} else if c == '.' && !seenDot {
			seenDot = true
			i++
		} else {
			break
		}
	}
	s.Kind = TokNumber
	s.Start, s.End = start, i
	s.off = i
	return TokNumber
}

func (s *Scanner) scanIdent(start int) TokenKind {
	src, n := s.src, len(s.src)
	i := start
	for i < n {
		c := src[i]
		if c < 128 {
			if charClass[c]&clsIdentPart == 0 {
				break
			}
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(src[i:])
		if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			break
		}
		i += w
	}
	s.Start, s.End = start, i
	s.off = i
	if kw := LookupKeyword(src[start:i]); kw != KwNone {
		s.Kind = TokKeyword
		s.Kw = kw
		return TokKeyword
	}
	s.Kind = TokIdent
	s.Kw = KwNone
	return TokIdent
}

func (s *Scanner) scanOp(start int) TokenKind {
	src, n := s.src, len(s.src)
	c := src[start]
	op := OpNone
	width := 1
	switch c {
	case '=':
		op = OpEq
	case '<':
		if start+1 < n {
			switch src[start+1] {
			case '=':
				op, width = OpLe, 2
			case '>':
				op, width = OpNe, 2
			}
		}
		if op == OpNone {
			op = OpLt
		}
	case '>':
		if start+1 < n && src[start+1] == '=' {
			op, width = OpGe, 2
		} else {
			op = OpGt
		}
	case '!':
		if start+1 < n && src[start+1] == '=' {
			op, width = OpNe, 2
		}
	case '|':
		if start+1 < n && src[start+1] == '|' {
			op, width = OpConcat, 2
		}
	case '+':
		op = OpPlus
	case '-':
		op = OpMinus
	case '*':
		op = OpStar
	case '/':
		op = OpSlash
	case '%':
		op = OpPercent
	case '(':
		op = OpLParen
	case ')':
		op = OpRParen
	case ',':
		op = OpComma
	case ';':
		op = OpSemi
	case '.':
		op = OpDot
	case '?':
		op = OpQuestion
	}
	if op == OpNone {
		s.off = start
		return s.fail("unexpected character %q at offset %d", c, start)
	}
	s.Kind = TokOp
	s.Op = op
	s.Start, s.End = start, start+width
	s.off = start + width
	return TokOp
}
