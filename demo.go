package auditdb

// HealthcareDemo is the paper's §II healthcare example as a replayable
// script: a Patients/Disease schema, an audit expression covering
// Alice's record, and an ON ACCESS trigger that logs every query
// touching it. The interactive shell's \demo directive and the server
// smoke tests both load it.
const HealthcareDemo = `
CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
INSERT INTO Patients VALUES
	(1, 'Alice', 34, '48109'), (2, 'Bob', 21, '48109'),
	(3, 'Carol', 47, '98052'), (4, 'Dave', 29, '98052'), (5, 'Erin', 62, '10001');
INSERT INTO Disease VALUES (1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
CREATE AUDIT EXPRESSION Audit_Alice AS
	SELECT * FROM Patients WHERE Name = 'Alice'
	FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
	INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
`
