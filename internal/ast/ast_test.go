package ast

import (
	"strings"
	"testing"

	"auditdb/internal/value"
)

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&ColumnRef{Table: "p", Name: "id"}, "p.id"},
		{&ColumnRef{Name: "id"}, "id"},
		{&Literal{Val: value.NewInt(5)}, "5"},
		{&Literal{Val: value.NewString("x")}, "'x'"},
		{&Binary{Op: OpEq, L: &ColumnRef{Name: "a"}, R: &Literal{Val: value.NewInt(1)}}, "(a = 1)"},
		{&Binary{Op: OpAnd, L: &Literal{Val: value.NewBool(true)}, R: &Literal{Val: value.NewBool(false)}}, "(true AND false)"},
		{&Unary{Op: '!', X: &ColumnRef{Name: "a"}}, "(NOT a)"},
		{&Unary{Op: '-', X: &Literal{Val: value.NewInt(3)}}, "(-3)"},
		{&IsNull{X: &ColumnRef{Name: "a"}}, "(a IS NULL)"},
		{&IsNull{X: &ColumnRef{Name: "a"}, Negate: true}, "(a IS NOT NULL)"},
		{&Between{X: &ColumnRef{Name: "a"}, Lo: &Literal{Val: value.NewInt(1)}, Hi: &Literal{Val: value.NewInt(9)}}, "(a BETWEEN 1 AND 9)"},
		{&InList{X: &ColumnRef{Name: "a"}, List: []Expr{&Literal{Val: value.NewInt(1)}, &Literal{Val: value.NewInt(2)}}}, "(a IN (1, 2))"},
		{&FuncCall{Name: "COUNT", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "COUNT", Distinct: true, Args: []Expr{&ColumnRef{Name: "x"}}}, "COUNT(DISTINCT x)"},
		{&FuncCall{Name: "SUM", Args: []Expr{&ColumnRef{Name: "x"}}}, "SUM(x)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCaseString(t *testing.T) {
	c := &Case{
		Whens: []CaseWhen{{Cond: &ColumnRef{Name: "a"}, Result: &Literal{Val: value.NewInt(1)}}},
		Else:  &Literal{Val: value.NewInt(0)},
	}
	s := c.String()
	if !strings.Contains(s, "WHEN a THEN 1") || !strings.Contains(s, "ELSE 0") {
		t.Errorf("case string = %q", s)
	}
}

func TestSubqueryStrings(t *testing.T) {
	sub := &Select{
		Items: []SelectItem{{Expr: &ColumnRef{Name: "x"}}},
		From:  []TableRef{&BaseTable{Name: "t"}},
		Limit: -1,
	}
	if s := (&Exists{Sub: sub}).String(); !strings.Contains(s, "EXISTS (SELECT x FROM t)") {
		t.Errorf("exists = %q", s)
	}
	if s := (&Exists{Sub: sub, Negate: true}).String(); !strings.Contains(s, "NOT EXISTS") {
		t.Errorf("not exists = %q", s)
	}
	in := &InSubquery{X: &ColumnRef{Name: "a"}, Sub: sub, Negate: true}
	if s := in.String(); !strings.Contains(s, "NOT IN (SELECT x FROM t)") {
		t.Errorf("in subquery = %q", s)
	}
	sc := &ScalarSubquery{Sub: sub}
	if s := sc.String(); s != "(SELECT x FROM t)" {
		t.Errorf("scalar subquery = %q", s)
	}
}

func TestBinaryOpHelpers(t *testing.T) {
	if !OpEq.IsComparison() || !OpGe.IsComparison() {
		t.Error("comparison classification wrong")
	}
	if OpAnd.IsComparison() || OpAdd.IsComparison() {
		t.Error("non-comparison classified as comparison")
	}
	ops := map[BinaryOp]string{
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
		OpDiv: "/", OpMod: "%", OpLike: "LIKE", OpConcat: "||",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d = %q, want %q", op, op.String(), want)
		}
	}
}

func TestWalkExprsVisitsAll(t *testing.T) {
	e := &Binary{
		Op: OpAnd,
		L: &Between{
			X:  &ColumnRef{Name: "a"},
			Lo: &Literal{Val: value.NewInt(1)},
			Hi: &Literal{Val: value.NewInt(2)},
		},
		R: &InList{
			X:    &ColumnRef{Name: "b"},
			List: []Expr{&Literal{Val: value.NewInt(3)}},
		},
	}
	var cols, lits int
	WalkExprs(e, func(x Expr) {
		switch x.(type) {
		case *ColumnRef:
			cols++
		case *Literal:
			lits++
		}
	})
	if cols != 2 || lits != 3 {
		t.Errorf("cols=%d lits=%d", cols, lits)
	}
	// Nil is safe.
	WalkExprs(nil, func(Expr) { t.Error("should not visit nil") })
}

func TestWalkExprsCase(t *testing.T) {
	e := &Case{
		Operand: &ColumnRef{Name: "x"},
		Whens: []CaseWhen{
			{Cond: &Literal{Val: value.NewInt(1)}, Result: &ColumnRef{Name: "y"}},
		},
		Else: &FuncCall{Name: "ABS", Args: []Expr{&ColumnRef{Name: "z"}}},
	}
	var cols int
	WalkExprs(e, func(x Expr) {
		if _, ok := x.(*ColumnRef); ok {
			cols++
		}
	})
	if cols != 3 {
		t.Errorf("case walk cols = %d", cols)
	}
}

func TestJoinKindString(t *testing.T) {
	if JoinInner.String() != "INNER JOIN" || JoinLeft.String() != "LEFT JOIN" || JoinCross.String() != "CROSS JOIN" {
		t.Error("join kind names wrong")
	}
}
