// Package triage sits between the trigger-firing path and the exact
// offline auditor: every firing already hash-chained into the WAL
// audit stream is additionally risk-scored and enqueued into a bounded
// priority queue, and a pool of background workers drains the queue,
// re-derives the firing with the offline auditor (Def 2.3), and writes
// a signed verdict record back into the same hash chain. Under a fixed
// verification budget the highest-risk events are audited exactly and
// the rest degrade deterministically — overflow evicts the lowest
// score and every drop is counted, so
// enqueued = verdicts + dropped + failed + pending always holds.
package triage

import "sort"

// Event is one trigger firing awaiting offline verification. It is
// passed and stored by value so the score-and-enqueue hot path does
// not allocate; the strings and the accessed-ID count alias state the
// firing already produced.
type Event struct {
	AuditSeq uint64  // chain seq of the RecAudit record for this firing
	QID      uint64  // trace query ID of the firing statement
	User     string  // session user at firing time
	Expr     string  // audit expression name
	SQL      string  // statement text the offline auditor will replay
	NumIDs   int     // accessed-ID count the trigger reported
	Priority int     // declared PRIORITY of the audit expression
	Score    float64 // risk score assigned at enqueue
	UnixNano int64   // firing wall-clock time

	// Order is the admission sequence the queue assigned; ties in
	// Score resolve on it (oldest first out, newest first evicted).
	Order uint64
}

// queue is a bounded max-priority queue over Event.Score with a
// deterministic overflow policy. All methods require the service
// mutex; the backing array is allocated once at the bound so steady
// state admission never allocates.
type queue struct {
	items []Event
	bound int
}

func newQueue(bound int) *queue {
	if bound < 1 {
		bound = 1
	}
	return &queue{items: make([]Event, 0, bound), bound: bound}
}

func (q *queue) len() int { return len(q.items) }

// push admits ev, evicting the lowest-scored resident when full.
// Ties on score evict the newest admission, so at equal risk the
// oldest evidence survives. The second return is true when an event
// (resident or the incoming one) was dropped.
func (q *queue) push(ev Event) (dropped Event, wasDropped bool) {
	if len(q.items) < q.bound {
		q.items = append(q.items, ev)
		return Event{}, false
	}
	v := 0
	for i := 1; i < len(q.items); i++ {
		it, vic := &q.items[i], &q.items[v]
		if it.Score < vic.Score || (it.Score == vic.Score && it.Order > vic.Order) {
			v = i
		}
	}
	vic := &q.items[v]
	// The incoming event holds the largest Order, so on a score tie
	// with the victim it is the one that drops.
	if ev.Score <= vic.Score {
		return ev, true
	}
	dropped = *vic
	*vic = ev
	return dropped, true
}

// popMax removes and returns the highest-scored event, lowest
// admission order first on ties.
func (q *queue) popMax() (Event, bool) {
	if len(q.items) == 0 {
		return Event{}, false
	}
	b := 0
	for i := 1; i < len(q.items); i++ {
		it, best := &q.items[i], &q.items[b]
		if it.Score > best.Score || (it.Score == best.Score && it.Order < best.Order) {
			b = i
		}
	}
	ev := q.items[b]
	last := len(q.items) - 1
	q.items[b] = q.items[last]
	q.items = q.items[:last]
	return ev, true
}

// snapshot copies the resident events ordered score-descending,
// admission-ascending — the order SHOW AUDIT QUEUE reports.
func (q *queue) snapshot() []Event {
	out := make([]Event, len(q.items))
	copy(out, q.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Order < out[j].Order
	})
	return out
}
