// Package obs is the engine's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges,
// fixed-bucket histograms, and label-partitioned counter families)
// rendered as Prometheus text exposition format, plus the per-node
// statistics tree EXPLAIN ANALYZE reports over.
//
// One Registry serves both surfaces the daemon exposes — the HTTP
// /metrics endpoint and the wire protocol's "stats" op — so the two
// can never disagree: Snapshot and WritePrometheus read the same
// atomics.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. A gauge registered with
// NewGaugeFunc computes its value on read instead.
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores the gauge's value. No-op for function gauges.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta. No-op for function gauges.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the gauge's current value.
func (g *Gauge) Load() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations v <= Bounds[i] (upper bounds are
// inclusive, so an observation exactly on a boundary lands in that
// boundary's bucket), with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper edge
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the
// final element is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// CounterVec is a family of counters partitioned by one label
// (e.g. rows audited per table).
type CounterVec struct {
	label string
	mu    sync.RWMutex
	kids  map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use. Safe for concurrent callers.
func (v *CounterVec) With(labelValue string) *Counter {
	v.mu.RLock()
	c, ok := v.kids[labelValue]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[labelValue]; ok {
		return c
	}
	c = &Counter{}
	v.kids[labelValue] = c
	return c
}

// Total sums the family's counters.
func (v *CounterVec) Total() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var t int64
	for _, c := range v.kids {
		t += c.Load()
	}
	return t
}

// metricKind discriminates registered metric types for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
)

// metric is one registry entry. Name is the Prometheus exposition
// name; empty Name means the metric appears only in Snapshot under its
// alias (used for values whose Prometheus identity is carried by a
// labeled family instead). Alias is the short key the wire "stats" op
// reports; empty Alias means Name.
type metric struct {
	name  string
	alias string
	help  string
	kind  metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vec     *CounterVec
}

func (m *metric) snapshotKey() string {
	if m.alias != "" {
		return m.alias
	}
	return m.name
}

// Registry holds a process's metrics in registration order.
type Registry struct {
	start time.Time

	mu      sync.RWMutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry. Its creation time is the
// epoch for the uptime_seconds gauge (see NewUptimeGauge).
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), byName: make(map[string]*metric)}
}

// Start returns the registry's creation time.
func (r *Registry) Start() time.Time { return r.start }

// register adds m, or returns the existing entry when an identically
// named metric of the same kind is already present (so two servers
// over one engine share counters instead of panicking).
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name
	if key == "" {
		key = "alias:" + m.alias
	}
	if prev, ok := r.byName[key]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", key))
		}
		return prev
	}
	r.byName[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// NewCounter registers a counter. name is the Prometheus name (may be
// empty for snapshot-only metrics); alias is the wire stats key
// (defaults to name).
func (r *Registry) NewCounter(name, alias, help string) *Counter {
	m := r.register(&metric{name: name, alias: alias, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// NewGauge registers a settable gauge.
func (r *Registry) NewGauge(name, alias, help string) *Gauge {
	m := r.register(&metric{name: name, alias: alias, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// NewGaugeFunc registers a gauge whose value is computed on read.
func (r *Registry) NewGaugeFunc(name, alias, help string, fn func() int64) {
	r.register(&metric{name: name, alias: alias, help: help, kind: kindGauge, gauge: &Gauge{fn: fn}})
}

// NewUptimeGauge registers uptime_seconds against the registry's
// creation time.
func (r *Registry) NewUptimeGauge(name, alias string) {
	r.NewGaugeFunc(name, alias, "Seconds since the process's metrics registry was created.",
		func() int64 { return int64(time.Since(r.start).Seconds()) })
}

// NewHistogram registers a fixed-bucket histogram. bounds must be
// sorted ascending; they are the inclusive upper edges of the buckets.
func (r *Registry) NewHistogram(name, alias, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds are not sorted", name))
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	m := r.register(&metric{name: name, alias: alias, help: help, kind: kindHistogram, hist: h})
	return m.hist
}

// NewCounterVec registers a counter family partitioned by one label.
func (r *Registry) NewCounterVec(name, alias, help, label string) *CounterVec {
	v := &CounterVec{label: label, kids: make(map[string]*Counter)}
	m := r.register(&metric{name: name, alias: alias, help: help, kind: kindCounterVec, vec: v})
	return m.vec
}

// LatencyBuckets is the default upper-bound set for the engine's
// latency histograms: sub-microsecond in-memory operations up through
// multi-second analytical queries (seconds).
var LatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Snapshot returns every metric's current value keyed by its wire
// alias: counters and gauges directly, histograms as <alias>_count,
// counter families as one <alias>_<labelValue> entry per label value
// plus the <alias> total.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()
	out := make(map[string]int64, len(metrics))
	for _, m := range metrics {
		key := m.snapshotKey()
		switch m.kind {
		case kindCounter:
			out[key] = m.counter.Load()
		case kindGauge:
			out[key] = m.gauge.Load()
		case kindHistogram:
			out[key+"_count"] = m.hist.Count()
		case kindCounterVec:
			m.vec.mu.RLock()
			for lv, c := range m.vec.kids {
				out[key+"_"+sanitizeKey(lv)] = c.Load()
			}
			m.vec.mu.RUnlock()
			out[key] = m.vec.Total()
		}
	}
	return out
}

// sanitizeKey lowers a label value into a stats-map key fragment.
func sanitizeKey(s string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(s) {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Metrics registered with an empty Prometheus
// name are skipped; label values are sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()
	var b strings.Builder
	for _, m := range metrics {
		if m.name == "" {
			continue
		}
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Load())
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.gauge.Load())
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
			var cum int64
			for i, bound := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatBound(bound), cum)
			}
			cum += m.hist.counts[len(m.hist.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, strconv.FormatFloat(m.hist.Sum(), 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.hist.Count())
		case kindCounterVec:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
			m.vec.mu.RLock()
			labels := make([]string, 0, len(m.vec.kids))
			for lv := range m.vec.kids {
				labels = append(labels, lv)
			}
			sort.Strings(labels)
			for _, lv := range labels {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", m.name, m.vec.label, lv, m.vec.kids[lv].Load())
			}
			m.vec.mu.RUnlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// NodeStats is one plan operator's EXPLAIN ANALYZE record: what
// actually flowed through it during one instrumented execution. The
// executor fills the row/batch/time fields; the engine's analyzing
// audit sink fills the probe fields for audit operators. Under
// parallel execution each worker accumulates into a private NodeStats
// and the executor folds them into the shared record under the
// collector's lock at close, so the fields themselves stay plain.
type NodeStats struct {
	// RowsOut counts rows the operator emitted.
	RowsOut int64
	// Batches counts non-empty NextBatch deliveries.
	Batches int64
	// Wall is cumulative wall time spent inside the operator's
	// NextBatch/Next calls, children included (Postgres-style
	// "actual time"). Under parallel execution worker walls sum, so a
	// parallel operator can report more wall time than the query took.
	Wall time.Duration

	// Audit-operator extras (zero elsewhere): probe invocations, probes
	// that hit the sensitive-ID set, and the number of distinct
	// partition-by IDs those hits covered.
	Probes, Hits, DistinctIDs int64

	// Parallel-execution extras: morsels claimed by this operator's
	// scan cursor, and the worker-pool size of a Gather exchange.
	Morsels, Workers int64

	// Data-skipping extras (scan operators): chunks actually read and
	// chunks refuted by zone maps or sensitive-ID sketches.
	ChunksScanned, ChunksSkipped int64
}
