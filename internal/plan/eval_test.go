package plan

import (
	"testing"

	"auditdb/internal/value"
)

// runnableSubquery wires a canned row set into a Subquery for isolated
// evaluation tests.
func cannedSubquery(kind SubqKind, rows []value.Row, probe Expr, negate bool) (*Subquery, *EvalCtx) {
	sq := &Subquery{Kind: kind, Plan: &ValuesScan{Name: "canned"}, Probe: probe, Negate: negate}
	ctx := &EvalCtx{
		RunSubquery: func(Node, *EvalCtx) ([]value.Row, error) { return rows, nil },
	}
	return sq, ctx
}

func TestSubqueryExists(t *testing.T) {
	sq, ctx := cannedSubquery(SubqExists, []value.Row{{value.NewInt(1)}}, nil, false)
	v, err := sq.Eval(ctx, nil)
	if err != nil || !v.Bool() {
		t.Errorf("exists = %v, %v", v, err)
	}
	sq, ctx = cannedSubquery(SubqExists, nil, nil, true)
	v, _ = sq.Eval(ctx, nil)
	if !v.Bool() {
		t.Errorf("not exists over empty = %v", v)
	}
}

func TestSubqueryScalar(t *testing.T) {
	sq, ctx := cannedSubquery(SubqScalar, []value.Row{{value.NewInt(7)}}, nil, false)
	v, err := sq.Eval(ctx, nil)
	if err != nil || v.Int() != 7 {
		t.Errorf("scalar = %v, %v", v, err)
	}
	// Empty -> NULL.
	sq, ctx = cannedSubquery(SubqScalar, nil, nil, false)
	v, err = sq.Eval(ctx, nil)
	if err != nil || !v.IsNull() {
		t.Errorf("empty scalar = %v, %v", v, err)
	}
	// Multiple rows -> error.
	sq, ctx = cannedSubquery(SubqScalar, []value.Row{{value.NewInt(1)}, {value.NewInt(2)}}, nil, false)
	if _, err := sq.Eval(ctx, nil); err == nil {
		t.Error("multi-row scalar should error")
	}
	// Multiple columns -> error.
	sq, ctx = cannedSubquery(SubqScalar, []value.Row{{value.NewInt(1), value.NewInt(2)}}, nil, false)
	if _, err := sq.Eval(ctx, nil); err == nil {
		t.Error("multi-column scalar should error")
	}
}

func TestSubqueryInSemantics(t *testing.T) {
	rows := []value.Row{{value.NewInt(1)}, {value.Null}, {value.NewInt(3)}}
	// 3 IN (1, NULL, 3) -> TRUE.
	sq, ctx := cannedSubquery(SubqIn, rows, &Const{V: value.NewInt(3)}, false)
	v, err := sq.Eval(ctx, nil)
	if err != nil || !v.Bool() {
		t.Errorf("3 IN = %v, %v", v, err)
	}
	// 2 IN (1, NULL, 3) -> UNKNOWN (because of the NULL).
	sq, ctx = cannedSubquery(SubqIn, rows, &Const{V: value.NewInt(2)}, false)
	v, _ = sq.Eval(ctx, nil)
	if !v.IsNull() {
		t.Errorf("2 IN with NULL member = %v, want NULL", v)
	}
	// NULL IN (...) -> UNKNOWN.
	sq, ctx = cannedSubquery(SubqIn, rows, &Const{V: value.Null}, false)
	v, _ = sq.Eval(ctx, nil)
	if !v.IsNull() {
		t.Errorf("NULL IN = %v", v)
	}
	// 2 NOT IN (1, 3) -> TRUE.
	sq, ctx = cannedSubquery(SubqIn, []value.Row{{value.NewInt(1)}, {value.NewInt(3)}}, &Const{V: value.NewInt(2)}, true)
	v, _ = sq.Eval(ctx, nil)
	if !v.Bool() {
		t.Errorf("2 NOT IN (1,3) = %v", v)
	}
}

func TestSubqueryUncorrelatedCaching(t *testing.T) {
	calls := 0
	sq := &Subquery{Kind: SubqExists, Plan: &ValuesScan{Name: "x"}}
	ctx := &EvalCtx{
		RunSubquery: func(Node, *EvalCtx) ([]value.Row, error) {
			calls++
			return []value.Row{{value.NewInt(1)}}, nil
		},
	}
	for i := 0; i < 5; i++ {
		if _, err := sq.Eval(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Errorf("uncorrelated subquery ran %d times, want 1", calls)
	}
	// Correlated: runs per row.
	sq2 := &Subquery{Kind: SubqExists, Plan: &ValuesScan{Name: "y"}, Correlated: true}
	calls = 0
	ctx2 := &EvalCtx{
		RunSubquery: func(_ Node, c *EvalCtx) ([]value.Row, error) {
			calls++
			if len(c.Outer) != 1 {
				t.Errorf("outer stack depth = %d", len(c.Outer))
			}
			return nil, nil
		},
	}
	for i := 0; i < 3; i++ {
		if _, err := sq2.Eval(ctx2, value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Errorf("correlated subquery ran %d times, want 3", calls)
	}
	if len(ctx2.Outer) != 0 {
		t.Error("outer stack not popped")
	}
}

func TestCaseOperandForm(t *testing.T) {
	c := &Case{
		Operand: &Const{V: value.NewInt(2)},
		Whens: []CaseWhen{
			{Cond: &Const{V: value.NewInt(1)}, Result: &Const{V: value.NewString("one")}},
			{Cond: &Const{V: value.NewInt(2)}, Result: &Const{V: value.NewString("two")}},
		},
		Else: &Const{V: value.NewString("other")},
	}
	v, err := c.Eval(&EvalCtx{}, nil)
	if err != nil || v.Str() != "two" {
		t.Errorf("case = %v, %v", v, err)
	}
	// No match, no else -> NULL.
	c2 := &Case{
		Whens: []CaseWhen{{Cond: &Const{V: value.NewBool(false)}, Result: &Const{V: value.NewInt(1)}}},
	}
	v, _ = c2.Eval(&EvalCtx{}, nil)
	if !v.IsNull() {
		t.Errorf("unmatched case = %v", v)
	}
}

func TestBetweenNegateAndNull(t *testing.T) {
	b := &Between{
		X:      &Const{V: value.NewInt(5)},
		Lo:     &Const{V: value.NewInt(1)},
		Hi:     &Const{V: value.NewInt(3)},
		Negate: true,
	}
	v, err := b.Eval(&EvalCtx{}, nil)
	if err != nil || !v.Bool() {
		t.Errorf("5 NOT BETWEEN 1 AND 3 = %v, %v", v, err)
	}
	b.Lo = &Const{V: value.Null}
	v, _ = b.Eval(&EvalCtx{}, nil)
	if !v.IsNull() {
		t.Errorf("NULL bound = %v, want NULL", v)
	}
}

func TestConcatAndLikeNulls(t *testing.T) {
	c := &Concat{L: &Const{V: value.NewString("a")}, R: &Const{V: value.Null}}
	v, _ := c.Eval(&EvalCtx{}, nil)
	if !v.IsNull() {
		t.Errorf("concat with NULL = %v", v)
	}
	c2 := &Concat{L: &Const{V: value.NewString("a")}, R: &Const{V: value.NewInt(7)}}
	v, _ = c2.Eval(&EvalCtx{}, nil)
	if v.Str() != "a7" {
		t.Errorf("concat = %v", v)
	}
	l := &Like{L: &Const{V: value.Null}, R: &Const{V: value.NewString("%")}}
	v, _ = l.Eval(&EvalCtx{}, nil)
	if !v.IsNull() {
		t.Errorf("NULL LIKE = %v", v)
	}
}

func TestColOutOfRange(t *testing.T) {
	c := &Col{Idx: 5}
	if _, err := c.Eval(&EvalCtx{}, value.Row{value.NewInt(1)}); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestNodeLabels(t *testing.T) {
	scan := &Scan{Table: "t", Alias: "x", Pushed: &Const{V: value.NewBool(true)}}
	if got := scan.Label(); got != "Scan(t AS x WHERE true)" {
		t.Errorf("scan label = %q", got)
	}
	j := &Join{Kind: JoinLeft, Left: scan, Right: &ValuesScan{Name: "v"}, Cond: &Const{V: value.NewBool(true)}}
	if got := j.Label(); got != "LeftJoin(true)" {
		t.Errorf("join label = %q", got)
	}
	a := &Audit{Child: scan, Name: "E", IDIdx: 0}
	_ = a.Label() // must not panic on schema-less scan
	agg := &Aggregate{Child: scan, Aggs: []AggSpec{{Func: AggCount}}}
	if got := agg.Label(); got != "Aggregate(COUNT(*))" {
		t.Errorf("agg label = %q", got)
	}
	d := AggSpec{Func: AggSum, Arg: &Col{Idx: 0, Name: "x"}, Distinct: true}
	if got := d.Label(); got != "SUM(DISTINCT x)" {
		t.Errorf("spec label = %q", got)
	}
}

func TestLeafSetChildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scan.SetChild should panic")
		}
	}()
	(&Scan{}).SetChild(0, nil)
}

func TestNegAndArithEval(t *testing.T) {
	n := &Neg{X: &Const{V: value.NewInt(4)}}
	v, err := n.Eval(&EvalCtx{}, nil)
	if err != nil || v.Int() != -4 {
		t.Errorf("neg = %v, %v", v, err)
	}
	a := &Arith{Op: '+', L: &Const{V: value.NewInt(1)}, R: &Const{V: value.NewFloat(0.5)}}
	v, err = a.Eval(&EvalCtx{}, nil)
	if err != nil || v.Float() != 1.5 {
		t.Errorf("arith = %v, %v", v, err)
	}
}
