// Package trace is the engine's dependency-free query tracing layer.
//
// Every top-level statement gets a 64-bit query ID and an always-on
// cheap record: wall-clock per execution phase, held in a fixed array
// so the unsampled path allocates nothing. Statements selected for
// full capture — head sampling, SET trace = on, or tail-based
// retention of slow/error statements — additionally record a span
// tree covering transport read, normalize/parse, plan-cache lookup,
// per-operator execution with worker attribution, every audit-trigger
// firing, and WAL commit. Finished traces land in a bounded Ring and
// are correlated with the hash-chained audit stream by query ID.
//
// A Rec belongs to one session's statement goroutine; it is not safe
// for concurrent use. Parallel workers never touch the Rec — worker
// spans are synthesized after the exchange closes, from stats the
// executor folded under its own lock (the Probe.Fork/Merge discipline).
package trace

import "time"

// Phase indexes the always-on per-phase wall-clock array. Phases are
// stage clocks, not a partition: WAL time spent inside the audit
// cascade counts toward both PhaseAudit and PhaseWAL.
type Phase uint8

const (
	PhaseTransport Phase = iota // request decode on the server connection
	PhaseNormalize              // literal auto-parameterization scan
	PhaseParse                  // SQL text -> AST
	PhasePlan                   // plan-cache lookup / build + optimize
	PhaseExec                   // operator tree execution
	PhaseAudit                  // SELECT-trigger cascade (bodies included)
	PhaseWAL                    // WAL submit -> group commit -> fsync ack
	NumPhases
)

var phaseNames = [NumPhases]string{
	"transport", "normalize", "parse", "plan", "execute", "audit", "wal",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Attr is one span attribute. Str wins when non-empty; otherwise the
// attribute is numeric.
type Attr struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Int int64  `json:"int,omitempty"`
}

// Span is one node of a trace's span tree. The tree is stored flat:
// Parent is the index of the enclosing span in Trace.Spans, -1 for the
// root. Start and Dur are nanoseconds relative to the trace start;
// work that happened before the statement reached the engine (transport
// read, normalize) renders at offset 0.
type Span struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Trace is one finished statement's record as retained in the Ring.
// Sampled traces carry the full span tree; tail-retained slow/error
// traces synthesize a coarse tree from the phase clocks.
type Trace struct {
	QID     uint64           `json:"qid"`
	User    string           `json:"user,omitempty"`
	SQL     string           `json:"sql,omitempty"`
	Start   time.Time        `json:"start"`
	Elapsed int64            `json:"elapsed_ns"`
	Sampled bool             `json:"sampled"`
	Err     string           `json:"error,omitempty"`
	Phases  map[string]int64 `json:"phases,omitempty"`
	Spans   []Span           `json:"spans"`
}

// Rec records one statement at a time and is reused across statements:
// Begin resets it, Finish closes it. When the statement is not sampled
// every method is a field update on preallocated storage — zero
// allocations (gated by TestTraceOffAllocGate in internal/engine).
type Rec struct {
	active  bool
	sampled bool
	qid     uint64
	start   time.Time
	phases  [NumPhases]int64
	spans   []Span
	stack   []int // open span IDs; parent of the next span is the top
}

// Begin starts recording a statement. When sampled, a root span named
// "statement" (ID 0) is opened; it closes automatically at Finish.
func (r *Rec) Begin(qid uint64, sampled bool) {
	r.active, r.sampled, r.qid = true, sampled, qid
	r.start = time.Now()
	for i := range r.phases {
		r.phases[i] = 0
	}
	r.spans = r.spans[:0]
	r.stack = r.stack[:0]
	if sampled {
		r.spans = append(r.spans, Span{ID: 0, Parent: -1, Name: "statement"})
		r.stack = append(r.stack, 0)
	}
}

// Active reports whether a statement is being recorded. Nested
// statement entry points (trigger bodies, IF branches) check it to
// stay inside the enclosing statement's record.
func (r *Rec) Active() bool { return r.active }

// Sampling reports whether the active statement records full spans.
func (r *Rec) Sampling() bool { return r.active && r.sampled }

// QID returns the active statement's query ID, 0 when idle.
func (r *Rec) QID() uint64 {
	if !r.active {
		return 0
	}
	return r.qid
}

// Start returns the trace start time.
func (r *Rec) Start() time.Time { return r.start }

// Elapsed returns the wall-clock since Begin.
func (r *Rec) Elapsed() time.Duration { return time.Since(r.start) }

// AddPhase charges d to phase p. Always-on; allocation-free.
func (r *Rec) AddPhase(p Phase, d time.Duration) {
	if r.active && p < NumPhases {
		r.phases[p] += int64(d)
	}
}

// Current returns the innermost open span's ID (the root, 0, when only
// it is open). Meaningless unless Sampling.
func (r *Rec) Current() int {
	if n := len(r.stack); n > 0 {
		return r.stack[n-1]
	}
	return 0
}

// StartSpan opens a span as a child of the innermost open span and
// makes it current. Returns -1 (a no-op handle) when not sampling.
func (r *Rec) StartSpan(name string) int {
	if !r.Sampling() {
		return -1
	}
	id := len(r.spans)
	r.spans = append(r.spans, Span{
		ID:     id,
		Parent: r.Current(),
		Name:   name,
		Start:  int64(time.Since(r.start)),
	})
	r.stack = append(r.stack, id)
	return id
}

// EndSpan closes the span returned by StartSpan, popping any spans
// left open inside it (defensive against unbalanced nesting on error
// paths).
func (r *Rec) EndSpan(id int) {
	if id < 0 || !r.Sampling() || id >= len(r.spans) {
		return
	}
	sp := &r.spans[id]
	sp.Dur = int64(time.Since(r.start)) - sp.Start
	for n := len(r.stack); n > 0; n-- {
		top := r.stack[n-1]
		r.stack = r.stack[:n-1]
		if top == id {
			break
		}
	}
}

// AddSpan records an already-completed span under parent (pass
// Current() for the innermost open span). start times before the trace
// began clamp to offset 0. Returns -1 when not sampling.
func (r *Rec) AddSpan(parent int, name string, start time.Time, d time.Duration) int {
	if !r.Sampling() {
		return -1
	}
	if parent < 0 || parent >= len(r.spans) {
		parent = r.Current()
	}
	off := int64(start.Sub(r.start))
	if off < 0 {
		off = 0
	}
	id := len(r.spans)
	r.spans = append(r.spans, Span{
		ID:     id,
		Parent: parent,
		Name:   name,
		Start:  off,
		Dur:    int64(d),
	})
	return id
}

// SetAttr attaches a string attribute to a span handle; no-op on -1.
func (r *Rec) SetAttr(id int, key, val string) {
	if id < 0 || id >= len(r.spans) || !r.Sampling() {
		return
	}
	r.spans[id].Attrs = append(r.spans[id].Attrs, Attr{Key: key, Str: val})
}

// SetAttrInt attaches a numeric attribute to a span handle.
func (r *Rec) SetAttrInt(id int, key string, n int64) {
	if id < 0 || id >= len(r.spans) || !r.Sampling() {
		return
	}
	r.spans[id].Attrs = append(r.spans[id].Attrs, Attr{Key: key, Int: n})
}

// Finish closes the recorder. With retain=false it only clears the
// active flag — no allocation, the unsampled fast path. With
// retain=true it builds the Trace to keep: sampled statements get a
// copy of the recorded span tree; unsampled ones (tail capture of
// slow/error statements) get a coarse tree synthesized from the phase
// clocks so even an untraced slow query leaves a reconstructable
// record.
func (r *Rec) Finish(user, sql, errMsg string, retain bool) *Trace {
	if !r.active {
		return nil
	}
	elapsed := int64(time.Since(r.start))
	r.active = false
	if !retain {
		return nil
	}
	t := &Trace{
		QID:     r.qid,
		User:    user,
		SQL:     sql,
		Start:   r.start,
		Elapsed: elapsed,
		Sampled: r.sampled,
		Err:     errMsg,
	}
	t.Phases = make(map[string]int64, NumPhases)
	for i, v := range r.phases {
		if v > 0 {
			t.Phases[Phase(i).String()] = v
		}
	}
	if r.sampled {
		if len(r.spans) > 0 {
			r.spans[0].Dur = elapsed
		}
		t.Spans = append([]Span(nil), r.spans...)
		return t
	}
	t.Spans = append(t.Spans, Span{ID: 0, Parent: -1, Name: "statement", Dur: elapsed})
	off := int64(0)
	for i, v := range r.phases {
		if v == 0 {
			continue
		}
		t.Spans = append(t.Spans, Span{
			ID:     len(t.Spans),
			Parent: 0,
			Name:   Phase(i).String(),
			Start:  off,
			Dur:    v,
		})
		off += v
	}
	return t
}
