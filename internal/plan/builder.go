package plan

import (
	"fmt"
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/value"
)

// DualName is the pseudo-relation used for FROM-less SELECTs; the
// executor emits exactly one empty row for it.
const DualName = "$dual"

// Env supplies the builder with schema information: the catalog for
// stored tables and Extra for transient named relations (the ACCESSED
// internal state and NEW/OLD pseudo-rows inside trigger bodies).
type Env struct {
	Catalog *catalog.Catalog
	Extra   map[string]Schema
	// Views maps lower-cased view names to their defining queries;
	// references expand inline at plan time.
	Views map[string]*ast.Select
}

// ViewQuery looks up a view's defining query by name.
func (e *Env) ViewQuery(name string) (*ast.Select, bool) {
	if e.Views == nil {
		return nil, false
	}
	v, ok := e.Views[strings.ToLower(name)]
	return v, ok
}

// maxViewDepth bounds view-in-view expansion (and catches definition
// cycles).
const maxViewDepth = 16

// ExtraSchema looks up a transient relation schema by name.
func (e *Env) ExtraSchema(name string) (Schema, bool) {
	if e.Extra == nil {
		return nil, false
	}
	s, ok := e.Extra[strings.ToLower(name)]
	return s, ok
}

// Build translates a parsed SELECT into a logical plan.
func Build(env *Env, sel *ast.Select) (Node, error) {
	b := &builder{env: env}
	return b.buildSelect(sel)
}

// BuildWithOuter translates a SELECT that may reference columns of an
// implicit outer row (the NEW/OLD pseudo-rows of trigger bodies).
// Unqualified or NEW./OLD.-qualified references not found in the
// query's own FROM clause resolve against outer, and the executor must
// push the corresponding row onto the evaluation context's outer stack
// before running the plan. The returned flag reports whether the plan
// actually references the outer row.
func BuildWithOuter(env *Env, sel *ast.Select, outer Schema) (Node, bool, error) {
	b := &builder{env: env}
	osc := &scope{schema: outer}
	b.scopes = append(b.scopes, osc)
	n, err := b.buildSelect(sel)
	if err != nil {
		return nil, false, err
	}
	return n, osc.referenced, nil
}

// BuildScalar compiles a standalone expression against a fixed row
// schema (used for UPDATE/DELETE predicates, assignments and trigger
// conditions). Subqueries are supported and resolve correlated
// references against schema.
func BuildScalar(env *Env, schema Schema, e ast.Expr) (Expr, error) {
	b := &builder{env: env}
	sc := &scope{schema: schema}
	b.scopes = append(b.scopes, sc)
	return b.compileExpr(e, sc)
}

type builder struct {
	env       *Env
	viewDepth int
	// scopes is the stack of query scopes; scopes[len-1] is the query
	// currently being built, earlier entries are enclosing queries.
	scopes []*scope
	// lastCorrelated records whether the most recently completed
	// buildSelect call produced a correlated query block.
	lastCorrelated bool
}

type scope struct {
	// schema is the row shape against which expressions at the current
	// clause are evaluated at runtime.
	schema Schema
	// agg carries grouped-query rewriting state; nil outside grouped
	// contexts.
	agg *aggContext
	// correlated is set on a query scope when an expression within it
	// (or a subquery below it) references an enclosing scope, so its
	// plan must be re-evaluated per outer row.
	correlated bool
	// referenced is set on a scope when some inner expression resolved
	// against it; BuildWithOuter uses it to learn whether the plan
	// reads the implicit outer row at all.
	referenced bool
}

type aggContext struct {
	// keyOf maps ast.Expr.String() of each GROUP BY expression to its
	// ordinal in the aggregate output.
	keyOf map[string]int
	// aggOf maps ast.FuncCall.String() of each collected aggregate to
	// its ordinal in the aggregate output.
	aggOf map[string]int
	// out is the aggregate node's output schema.
	out Schema
}

func (b *builder) current() *scope { return b.scopes[len(b.scopes)-1] }

func (b *builder) buildSelect(sel *ast.Select) (Node, error) {
	sc := &scope{}
	b.scopes = append(b.scopes, sc)
	defer func() {
		b.lastCorrelated = sc.correlated
		b.scopes = b.scopes[:len(b.scopes)-1]
	}()

	// FROM clause.
	var root Node
	if len(sel.From) == 0 {
		root = &ValuesScan{Name: DualName, Out: Schema{}}
	} else {
		for _, ref := range sel.From {
			n, err := b.buildTableRef(ref)
			if err != nil {
				return nil, err
			}
			if root == nil {
				root = n
			} else {
				root = &Join{Kind: JoinCross, Left: root, Right: n}
			}
		}
	}
	fromSchema := root.Schema()
	if err := checkDuplicateQualifiers(fromSchema); err != nil {
		return nil, err
	}

	// WHERE clause evaluates against the from-row shape.
	sc.schema = fromSchema
	if sel.Where != nil {
		pred, err := b.compileExpr(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		root = &Filter{Child: root, Pred: pred}
	}

	// Decide whether the query is grouped.
	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, item := range sel.Items {
			if item.Expr != nil && containsAggregate(item.Expr) {
				grouped = true
				break
			}
		}
		if sel.Having != nil {
			grouped = true
		}
	}

	if grouped {
		n, err := b.buildAggregate(root, sel, sc)
		if err != nil {
			return nil, err
		}
		root = n
	}

	// HAVING evaluates against the aggregate output.
	if sel.Having != nil {
		pred, err := b.compileExpr(sel.Having, sc)
		if err != nil {
			return nil, err
		}
		root = &Filter{Child: root, Pred: pred}
	}

	// SELECT items.
	exprs, out, err := b.buildProjection(sel, sc)
	if err != nil {
		return nil, err
	}

	// ORDER BY may reference output columns (by alias or position) or
	// arbitrary expressions over the pre-projection row; the latter are
	// appended as hidden columns and stripped after the sort.
	var keys []SortKey
	hidden := 0
	for _, oi := range sel.OrderBy {
		if lit, ok := oi.Expr.(*ast.Literal); ok && lit.Val.Kind == value.KindInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(out) {
				return nil, fmt.Errorf("ORDER BY position %d out of range", pos)
			}
			keys = append(keys, SortKey{Expr: &Col{Idx: pos - 1, Name: out[pos-1].Name}, Desc: oi.Desc})
			continue
		}
		if idx, ok := resolveOutput(oi.Expr, out, sel.Items); ok {
			keys = append(keys, SortKey{Expr: &Col{Idx: idx, Name: out[idx].Name}, Desc: oi.Desc})
			continue
		}
		e, err := b.compileExpr(oi.Expr, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		out = append(out, ColInfo{Name: fmt.Sprintf("$sort%d", hidden)})
		keys = append(keys, SortKey{Expr: &Col{Idx: len(out) - 1}, Desc: oi.Desc})
		hidden++
	}

	root = &Project{Child: root, Exprs: exprs, Out: out}

	if sel.Distinct {
		if hidden > 0 {
			return nil, fmt.Errorf("ORDER BY expressions must appear in the select list when DISTINCT is used")
		}
		root = &Distinct{Child: root}
	}

	if len(keys) > 0 {
		root = &Sort{Child: root, Keys: keys}
	}
	if hidden > 0 {
		visible := len(out) - hidden
		exprs := make([]Expr, visible)
		for i := 0; i < visible; i++ {
			exprs[i] = &Col{Idx: i, Name: out[i].Name}
		}
		root = &Project{Child: root, Exprs: exprs, Out: out[:visible]}
	}
	if sel.Limit >= 0 {
		root = &Limit{Child: root, N: sel.Limit}
	}
	return root, nil
}

func checkDuplicateQualifiers(s Schema) error {
	seen := map[string]bool{}
	for _, c := range s {
		if c.Qual == "" {
			continue
		}
		seen[strings.ToLower(c.Qual)] = true
	}
	// Duplicate qualifiers are detected lazily at resolve time (two
	// tables may intentionally expose disjoint column names), so this
	// only guards pathological empty schemas.
	_ = seen
	return nil
}

func (b *builder) buildTableRef(ref ast.TableRef) (Node, error) {
	switch r := ref.(type) {
	case *ast.BaseTable:
		alias := r.Alias
		if alias == "" {
			alias = r.Name
		}
		if extra, ok := b.env.ExtraSchema(r.Name); ok {
			return &ValuesScan{Name: strings.ToLower(r.Name), Out: extra.WithQual(alias)}, nil
		}
		if view, ok := b.env.ViewQuery(r.Name); ok {
			if b.viewDepth >= maxViewDepth {
				return nil, fmt.Errorf("view expansion exceeds depth %d (cycle in %q?)", maxViewDepth, r.Name)
			}
			b.viewDepth++
			sub, err := b.buildSelect(view)
			b.viewDepth--
			if err != nil {
				return nil, fmt.Errorf("view %s: %w", r.Name, err)
			}
			inner := sub.Schema()
			exprs := make([]Expr, len(inner))
			for i, c := range inner {
				exprs[i] = &Col{Idx: i, Name: c.Name}
			}
			return &Project{Child: sub, Exprs: exprs, Out: inner.WithQual(alias)}, nil
		}
		meta, ok := b.env.Catalog.Table(r.Name)
		if !ok {
			return nil, fmt.Errorf("unknown table %q", r.Name)
		}
		out := make(Schema, len(meta.Columns))
		for i, c := range meta.Columns {
			out[i] = ColInfo{Qual: alias, Name: c.Name, Kind: c.Type}
		}
		return &Scan{Table: meta.Name, Alias: alias, Out: out}, nil
	case *ast.JoinRef:
		left, err := b.buildTableRef(r.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.buildTableRef(r.Right)
		if err != nil {
			return nil, err
		}
		j := &Join{Left: left, Right: right}
		switch r.Kind {
		case ast.JoinInner:
			j.Kind = JoinInner
		case ast.JoinLeft:
			j.Kind = JoinLeft
		case ast.JoinCross:
			j.Kind = JoinCross
		}
		if r.On != nil {
			// The ON condition is evaluated against the concatenated
			// candidate row at runtime.
			sc := b.current()
			saved := sc.schema
			sc.schema = j.Schema()
			cond, err := b.compileExpr(r.On, sc)
			sc.schema = saved
			if err != nil {
				return nil, err
			}
			j.Cond = cond
		}
		return j, nil
	case *ast.SubqueryRef:
		sub, err := b.buildSelect(r.Sub)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's columns under its alias. The
		// projection is structural only (identity), so reuse the node
		// and override the schema via a pass-through Project.
		inner := sub.Schema()
		exprs := make([]Expr, len(inner))
		for i, c := range inner {
			exprs[i] = &Col{Idx: i, Name: c.Name}
		}
		return &Project{Child: sub, Exprs: exprs, Out: inner.WithQual(r.Alias)}, nil
	default:
		return nil, fmt.Errorf("unsupported table reference %T", ref)
	}
}

// buildAggregate constructs the Aggregate node and installs the
// grouped-context rewriting state into the scope.
func (b *builder) buildAggregate(child Node, sel *ast.Select, sc *scope) (Node, error) {
	agg := &Aggregate{Child: child}
	ctx := &aggContext{keyOf: map[string]int{}, aggOf: map[string]int{}}

	// Group-by expressions are evaluated against the from-row shape.
	for _, g := range sel.GroupBy {
		e, err := b.compileExpr(g, sc)
		if err != nil {
			return nil, err
		}
		agg.GroupBy = append(agg.GroupBy, e)
		info := ColInfo{Name: g.String()}
		if cr, ok := g.(*ast.ColumnRef); ok {
			info = ColInfo{Qual: cr.Table, Name: cr.Name}
			if idx, ok := sc.schema.IndexOf(cr.Table, cr.Name); ok {
				info.Kind = sc.schema[idx].Kind
				if cr.Table == "" {
					info.Qual = sc.schema[idx].Qual
				}
			}
		}
		ctx.keyOf[g.String()] = len(ctx.out)
		ctx.out = append(ctx.out, info)
	}

	// Collect aggregate calls from every clause that can contain them.
	var calls []*ast.FuncCall
	collect := func(e ast.Expr) {
		ast.WalkExprs(e, func(x ast.Expr) {
			if fc, ok := x.(*ast.FuncCall); ok && IsAggregateFunc(fc.Name) {
				calls = append(calls, fc)
			}
		})
	}
	for _, item := range sel.Items {
		if item.Expr != nil {
			collect(item.Expr)
		} else if item.Star {
			return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
		}
	}
	collect(sel.Having)
	for _, oi := range sel.OrderBy {
		collect(oi.Expr)
	}

	for _, fc := range calls {
		key := fc.String()
		if _, dup := ctx.aggOf[key]; dup {
			continue
		}
		spec, err := b.compileAggSpec(fc, sc)
		if err != nil {
			return nil, err
		}
		agg.Aggs = append(agg.Aggs, spec)
		ctx.aggOf[key] = len(ctx.out)
		kind := value.KindFloat
		if spec.Func == AggCount {
			kind = value.KindInt
		}
		ctx.out = append(ctx.out, ColInfo{Name: key, Kind: kind})
	}
	if len(agg.Aggs) == 0 && len(agg.GroupBy) == 0 {
		return nil, fmt.Errorf("grouped query has neither GROUP BY keys nor aggregates")
	}
	agg.Out = ctx.out

	// Subsequent clauses (HAVING, items, ORDER BY) are evaluated
	// against the aggregate output.
	sc.agg = ctx
	sc.schema = ctx.out
	return agg, nil
}

func (b *builder) compileAggSpec(fc *ast.FuncCall, sc *scope) (AggSpec, error) {
	var f AggFunc
	switch strings.ToUpper(fc.Name) {
	case "COUNT":
		f = AggCount
	case "SUM":
		f = AggSum
	case "AVG":
		f = AggAvg
	case "MIN":
		f = AggMin
	case "MAX":
		f = AggMax
	default:
		return AggSpec{}, fmt.Errorf("unknown aggregate %s", fc.Name)
	}
	spec := AggSpec{Func: f, Distinct: fc.Distinct}
	if fc.Star {
		if f != AggCount {
			return AggSpec{}, fmt.Errorf("%s(*) is not valid", fc.Name)
		}
		return spec, nil
	}
	if len(fc.Args) != 1 {
		return AggSpec{}, fmt.Errorf("%s expects one argument", fc.Name)
	}
	if containsAggregate(fc.Args[0]) {
		return AggSpec{}, fmt.Errorf("aggregates cannot be nested")
	}
	// Aggregate arguments are evaluated against the pre-aggregation
	// (from-row) shape; buildAggregate calls this before advancing the
	// scope to the aggregate output.
	arg, err := b.compileExpr(fc.Args[0], sc)
	if err != nil {
		return AggSpec{}, err
	}
	spec.Arg = arg
	return spec, nil
}

func (b *builder) buildProjection(sel *ast.Select, sc *scope) ([]Expr, Schema, error) {
	var exprs []Expr
	var out Schema
	for _, item := range sel.Items {
		if item.Star {
			if sc.agg != nil {
				return nil, nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
			}
			matched := false
			for i, c := range sc.schema {
				if item.StarTable != "" && !strings.EqualFold(c.Qual, item.StarTable) {
					continue
				}
				matched = true
				exprs = append(exprs, &Col{Idx: i, Name: c.String()})
				out = append(out, c)
			}
			if !matched {
				return nil, nil, fmt.Errorf("unknown table %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		e, err := b.compileExpr(item.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		info := ColInfo{Name: item.Alias}
		if info.Name == "" {
			if cr, ok := item.Expr.(*ast.ColumnRef); ok {
				info.Qual = cr.Table
				info.Name = cr.Name
				if idx, ok := sc.schema.IndexOf(cr.Table, cr.Name); ok {
					info.Kind = sc.schema[idx].Kind
					if cr.Table == "" {
						info.Qual = sc.schema[idx].Qual
					}
				}
			} else {
				info.Name = item.Expr.String()
			}
		} else if cr, ok := item.Expr.(*ast.ColumnRef); ok {
			if idx, ok := sc.schema.IndexOf(cr.Table, cr.Name); ok {
				info.Kind = sc.schema[idx].Kind
			}
		}
		if info.Kind == value.KindNull {
			info.Kind = inferKind(e)
		}
		out = append(out, info)
	}
	if len(exprs) == 0 {
		return nil, nil, fmt.Errorf("SELECT list is empty")
	}
	return exprs, out, nil
}

// resolveOutput matches an ORDER BY expression against the select list
// by alias or by textual equality.
func resolveOutput(e ast.Expr, out Schema, items []ast.SelectItem) (int, bool) {
	if cr, ok := e.(*ast.ColumnRef); ok && cr.Table == "" {
		for i, item := range items {
			if item.Alias != "" && strings.EqualFold(item.Alias, cr.Name) {
				return i, true
			}
		}
	}
	s := e.String()
	for i, item := range items {
		if item.Expr != nil && item.Expr.String() == s {
			return i, true
		}
	}
	// Finally, match unqualified column names against output columns.
	if cr, ok := e.(*ast.ColumnRef); ok {
		for i, c := range out {
			if strings.EqualFold(c.Name, cr.Name) && (cr.Table == "" || strings.EqualFold(c.Qual, cr.Table)) {
				return i, true
			}
		}
	}
	return 0, false
}

func containsAggregate(e ast.Expr) bool {
	found := false
	ast.WalkExprs(e, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok && IsAggregateFunc(fc.Name) {
			found = true
		}
	})
	return found
}
