package plan

// WalkExprTree visits e and every sub-expression (without descending
// into subquery plans; use WalkNodeExprs + Subquery handling for that).
func WalkExprTree(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Cmp:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *And:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *Or:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *Not:
		WalkExprTree(x.X, fn)
	case *Arith:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *Neg:
		WalkExprTree(x.X, fn)
	case *Concat:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *Like:
		WalkExprTree(x.L, fn)
		WalkExprTree(x.R, fn)
	case *IsNull:
		WalkExprTree(x.X, fn)
	case *Between:
		WalkExprTree(x.X, fn)
		WalkExprTree(x.Lo, fn)
		WalkExprTree(x.Hi, fn)
	case *InList:
		WalkExprTree(x.X, fn)
		for _, item := range x.List {
			WalkExprTree(item, fn)
		}
	case *Func:
		for _, a := range x.Args {
			WalkExprTree(a, fn)
		}
	case *Case:
		WalkExprTree(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprTree(w.Cond, fn)
			WalkExprTree(w.Result, fn)
		}
		WalkExprTree(x.Else, fn)
	case *Subquery:
		WalkExprTree(x.Probe, fn)
	}
}

// WalkNodeExprs visits the expressions attached directly to one plan
// node (not its children's).
func WalkNodeExprs(n Node, fn func(Expr)) {
	switch x := n.(type) {
	case *Scan:
		WalkExprTree(x.Pushed, fn)
	case *Filter:
		WalkExprTree(x.Pred, fn)
	case *Project:
		for _, e := range x.Exprs {
			WalkExprTree(e, fn)
		}
	case *Join:
		WalkExprTree(x.Cond, fn)
		for _, e := range x.LeftKeys {
			WalkExprTree(e, fn)
		}
		for _, e := range x.RightKeys {
			WalkExprTree(e, fn)
		}
		WalkExprTree(x.Residual, fn)
	case *Aggregate:
		for _, e := range x.GroupBy {
			WalkExprTree(e, fn)
		}
		for _, a := range x.Aggs {
			WalkExprTree(a.Arg, fn)
		}
	case *Sort:
		for _, k := range x.Keys {
			WalkExprTree(k.Expr, fn)
		}
	}
}

// Subplans returns every subquery plan referenced by expressions in
// the tree rooted at n (not recursing into those subplans).
func Subplans(n Node, fn func(*Subquery)) {
	Walk(n, func(node Node) {
		WalkNodeExprs(node, func(e Expr) {
			if sq, ok := e.(*Subquery); ok {
				fn(sq)
			}
		})
	})
}
