package plan

import (
	"errors"
	"fmt"

	"auditdb/internal/ast"
	"auditdb/internal/value"
)

// compileExpr translates an AST expression into a compiled expression
// against the scope's current schema. In grouped contexts (sc.agg set)
// textual matches of GROUP BY expressions and collected aggregate calls
// are rewritten to aggregate-output column references first.
func (b *builder) compileExpr(e ast.Expr, sc *scope) (Expr, error) {
	if sc.agg != nil {
		if idx, ok := sc.agg.keyOf[e.String()]; ok {
			return &Col{Idx: idx, Name: sc.agg.out[idx].Name}, nil
		}
		if fc, ok := e.(*ast.FuncCall); ok && IsAggregateFunc(fc.Name) {
			idx, ok := sc.agg.aggOf[fc.String()]
			if !ok {
				return nil, fmt.Errorf("aggregate %s was not collected during planning", fc.String())
			}
			return &Col{Idx: idx, Name: sc.agg.out[idx].Name}, nil
		}
	}
	switch x := e.(type) {
	case *ast.Literal:
		return &Const{V: x.Val}, nil
	case *ast.Placeholder:
		return &Param{Idx: x.Idx}, nil
	case *ast.ColumnRef:
		return b.resolveColumn(x, sc)
	case *ast.Binary:
		return b.compileBinary(x, sc)
	case *ast.Unary:
		inner, err := b.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == '!' {
			return &Not{X: inner}, nil
		}
		return &Neg{X: inner}, nil
	case *ast.IsNull:
		inner, err := b.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: inner, Negate: x.Negate}, nil
	case *ast.Between:
		cx, err := b.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.compileExpr(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.compileExpr(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		return &Between{X: cx, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case *ast.InList:
		cx, err := b.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, item := range x.List {
			c, err := b.compileExpr(item, sc)
			if err != nil {
				return nil, err
			}
			list[i] = c
		}
		return &InList{X: cx, List: list, Negate: x.Negate}, nil
	case *ast.InSubquery:
		probe, err := b.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		n, corr, err := b.buildSubplan(x.Sub)
		if err != nil {
			return nil, err
		}
		return &Subquery{Kind: SubqIn, Plan: n, Probe: probe, Negate: x.Negate, Correlated: corr}, nil
	case *ast.Exists:
		n, corr, err := b.buildSubplan(x.Sub)
		if err != nil {
			return nil, err
		}
		return &Subquery{Kind: SubqExists, Plan: n, Negate: x.Negate, Correlated: corr}, nil
	case *ast.ScalarSubquery:
		n, corr, err := b.buildSubplan(x.Sub)
		if err != nil {
			return nil, err
		}
		return &Subquery{Kind: SubqScalar, Plan: n, Correlated: corr}, nil
	case *ast.FuncCall:
		if IsAggregateFunc(x.Name) {
			return nil, fmt.Errorf("aggregate %s is not allowed here", x.Name)
		}
		if !IsScalarFunc(x.Name) {
			return nil, fmt.Errorf("unknown function %s", x.Name)
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c, err := b.compileExpr(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		return &Func{Name: x.Name, Args: args}, nil
	case *ast.Case:
		out := &Case{}
		if x.Operand != nil {
			op, err := b.compileExpr(x.Operand, sc)
			if err != nil {
				return nil, err
			}
			out.Operand = op
		}
		for _, w := range x.Whens {
			cond, err := b.compileExpr(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			res, err := b.compileExpr(w.Result, sc)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: cond, Result: res})
		}
		if x.Else != nil {
			els, err := b.compileExpr(x.Else, sc)
			if err != nil {
				return nil, err
			}
			out.Else = els
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (b *builder) compileBinary(x *ast.Binary, sc *scope) (Expr, error) {
	l, err := b.compileExpr(x.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := b.compileExpr(x.R, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ast.OpEq:
		return &Cmp{Op: CmpEq, L: l, R: r}, nil
	case ast.OpNe:
		return &Cmp{Op: CmpNe, L: l, R: r}, nil
	case ast.OpLt:
		return &Cmp{Op: CmpLt, L: l, R: r}, nil
	case ast.OpLe:
		return &Cmp{Op: CmpLe, L: l, R: r}, nil
	case ast.OpGt:
		return &Cmp{Op: CmpGt, L: l, R: r}, nil
	case ast.OpGe:
		return &Cmp{Op: CmpGe, L: l, R: r}, nil
	case ast.OpAnd:
		return &And{L: l, R: r}, nil
	case ast.OpOr:
		return &Or{L: l, R: r}, nil
	case ast.OpAdd:
		return &Arith{Op: '+', L: l, R: r}, nil
	case ast.OpSub:
		return &Arith{Op: '-', L: l, R: r}, nil
	case ast.OpMul:
		return &Arith{Op: '*', L: l, R: r}, nil
	case ast.OpDiv:
		return &Arith{Op: '/', L: l, R: r}, nil
	case ast.OpMod:
		return &Arith{Op: '%', L: l, R: r}, nil
	case ast.OpLike:
		return &Like{L: l, R: r}, nil
	case ast.OpConcat:
		return &Concat{L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("unsupported binary operator %v", x.Op)
	}
}

// resolveColumn resolves a column reference against the current scope,
// falling back through enclosing scopes to produce correlated outer
// references. Every scope a reference escapes is marked correlated so
// the executor knows to push rows at each level.
func (b *builder) resolveColumn(cr *ast.ColumnRef, sc *scope) (Expr, error) {
	idx, err := sc.schema.Resolve(cr.Table, cr.Name)
	switch {
	case err == nil:
		return &Col{Idx: idx, Name: cr.String()}, nil
	case errors.Is(err, ErrAmbiguous):
		return nil, err
	}
	// Outer scopes, innermost enclosing first. sc is always the top of
	// the scope stack while compiling.
	for up := 1; up < len(b.scopes); up++ {
		osc := b.scopes[len(b.scopes)-1-up]
		oidx, ok := osc.schema.IndexOf(cr.Table, cr.Name)
		if !ok {
			continue
		}
		osc.referenced = true
		for i := len(b.scopes) - up; i < len(b.scopes); i++ {
			b.scopes[i].correlated = true
		}
		return &Outer{Up: up, Idx: oidx, Name: cr.String()}, nil
	}
	if sc.agg != nil {
		return nil, fmt.Errorf("column %q must appear in GROUP BY or be used in an aggregate", cr.String())
	}
	return nil, err
}

// buildSubplan builds a nested query block and reports whether it is
// correlated with any enclosing scope.
func (b *builder) buildSubplan(sel *ast.Select) (Node, bool, error) {
	n, err := b.buildSelect(sel)
	if err != nil {
		return nil, false, err
	}
	return n, b.lastCorrelated, nil
}

// inferKind guesses the result kind of a compiled expression for
// schema display; unknown kinds are KindNull.
func inferKind(e Expr) value.Kind {
	switch x := e.(type) {
	case *Const:
		return x.V.Kind
	case *Cmp, *And, *Or, *Not, *IsNull, *Between, *InList, *Like:
		return value.KindBool
	case *Arith, *Neg:
		return value.KindFloat
	case *Concat:
		return value.KindString
	default:
		return value.KindNull
	}
}
