package offline_test

import (
	"fmt"
	"strings"
	"testing"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/offline"
)

// setupBig loads a table spanning several storage chunks with an audit
// expression whose watch set sits in the last chunk, so candidate
// pruning (Claim 3.5 via sketches) has something to skip.
func setupBig(t *testing.T) (*engine.Engine, *core.AuditExpression) {
	t.Helper()
	e := engine.New()
	if _, err := e.Exec("CREATE TABLE Events (EventID INT PRIMARY KEY, Kind INT, Score INT)"); err != nil {
		t.Fatal(err)
	}
	const rows = 10240
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if b.Len() == 0 {
			b.WriteString("INSERT INTO Events VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d)", i, i%7, i%100)
		if (i+1)%1024 == 0 || i == rows-1 {
			if _, err := e.Exec(b.String()); err != nil {
				t.Fatal(err)
			}
			b.Reset()
		}
	}
	_, err := e.Exec(`CREATE AUDIT EXPRESSION Audit_Tail AS
		SELECT * FROM Events WHERE EventID BETWEEN 9000 AND 9050
		FOR SENSITIVE TABLE Events, PARTITION BY EventID`)
	if err != nil {
		t.Fatal(err)
	}
	ae, ok := e.Registry().Get("Audit_Tail")
	if !ok {
		t.Fatal("audit expression missing")
	}
	return e, ae
}

func auditBoth(t *testing.T, e *engine.Engine, ae *core.AuditExpression, sql string) (pruned, exact *offline.Report) {
	t.Helper()
	aud := offline.New(e.Catalog(), e.Store())
	pruned, err := aud.Audit(sql, ae)
	if err != nil {
		t.Fatalf("pruned audit of %q: %v", sql, err)
	}
	aud.NoSkip = true
	exact, err = aud.Audit(sql, ae)
	if err != nil {
		t.Fatalf("unpruned audit of %q: %v", sql, err)
	}
	return pruned, exact
}

func sameReports(a, b *offline.Report) bool {
	if len(a.AccessedIDs) != len(b.AccessedIDs) || a.Candidates != b.Candidates {
		return false
	}
	for i := range a.AccessedIDs {
		if a.AccessedIDs[i].Int() != b.AccessedIDs[i].Int() {
			return false
		}
	}
	return true
}

// TestOfflineSkipEquivalenceSmall: on the seed scenarios the pruned
// auditor must produce verdicts — accessed sets AND candidate
// supersets — identical to the exact (NoSkip) auditor.
func TestOfflineSkipEquivalenceSmall(t *testing.T) {
	e, _, ae := setup(t)
	for _, sql := range []string{
		"SELECT * FROM Patients WHERE Name = 'Alice'",
		"SELECT P.Name FROM Patients P, Disease D WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'",
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip",
		"SELECT Name FROM Patients ORDER BY Age DESC LIMIT 2",
		"SELECT * FROM Patients WHERE EXISTS (SELECT 1 FROM Disease D WHERE D.PatientID = Patients.PatientID AND D.Disease = 'cancer')",
	} {
		pruned, exact := auditBoth(t, e, ae, sql)
		if !sameReports(pruned, exact) {
			t.Errorf("%q: pruned report (ids=%v cand=%d) != exact (ids=%v cand=%d)",
				sql, ids(pruned), pruned.Candidates, ids(exact), exact.Candidates)
		}
	}
}

// TestOfflineSkipEquivalenceMultiChunk: same property on a table large
// enough for chunk pruning to engage — and on the sparse-watch full
// scan, the pruned candidate pass must actually read fewer rows.
func TestOfflineSkipEquivalenceMultiChunk(t *testing.T) {
	e, ae := setupBig(t)
	for _, sql := range []string{
		"SELECT * FROM Events WHERE Score BETWEEN 10 AND 12",
		"SELECT COUNT(*), MIN(Score) FROM Events WHERE Kind = 3",
		"SELECT * FROM Events WHERE EventID BETWEEN 8990 AND 9060",
		"SELECT * FROM Events ORDER BY Score DESC LIMIT 5",
		"SELECT Kind, COUNT(*) FROM Events GROUP BY Kind",
	} {
		pruned, exact := auditBoth(t, e, ae, sql)
		if !sameReports(pruned, exact) {
			t.Errorf("%q: pruned report (ids=%v cand=%d) != exact (ids=%v cand=%d)",
				sql, ids(pruned), pruned.Candidates, ids(exact), exact.Candidates)
		}
	}

	// Sublinear candidate pass: the watch set lives in one chunk, so the
	// audit-only leaf run skips the other chunks outright.
	pruned, exact := auditBoth(t, e, ae, "SELECT Kind, COUNT(*) FROM Events GROUP BY Kind")
	if pruned.RowsScanned >= exact.RowsScanned {
		t.Errorf("pruned audit scanned %d rows, exact scanned %d — pruning never engaged",
			pruned.RowsScanned, exact.RowsScanned)
	}
}
