package parser

import (
	"testing"

	"auditdb/internal/lexer"
)

// benchMix is the front-end benchmark query mix: the shapes the
// paper's workloads and the repo's demo/TPC-H suites actually issue —
// point lookups, audited joins, grouped aggregates, subqueries.
var benchMix = []string{
	`SELECT name, ssn FROM patients WHERE id = 42`,
	`SELECT p.name, v.vdate FROM patients p JOIN visits v ON p.id = v.patient_id WHERE v.cost > 500 AND p.state = 'CA' ORDER BY v.vdate DESC LIMIT 10`,
	`SELECT state, COUNT(*), SUM(cost) FROM patients p JOIN visits v ON p.id = v.patient_id GROUP BY state HAVING SUM(cost) > 1000`,
	`SELECT name FROM patients WHERE id IN (SELECT patient_id FROM visits WHERE cost BETWEEN 100 AND 200) AND NOT disease = 'flu'`,
	`SELECT l_returnflag, l_linestatus, SUM(l_quantity), AVG(l_extendedprice) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
}

func BenchmarkLexThroughput(b *testing.B) {
	var bytes int64
	for _, q := range benchMix {
		bytes += int64(len(q))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	var sc lexer.Scanner
	for i := 0; i < b.N; i++ {
		for _, q := range benchMix {
			sc.Init(q)
			for sc.Scan() != lexer.TokEOF {
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNormalizeMix measures the warm front end: on a plan-cache
// hit the engine runs exactly this — one normalization scan replaces
// lexing AND parsing, so this is the per-statement front-end cost of a
// repeat-shape workload.
func BenchmarkNormalizeMix(b *testing.B) {
	var bytes int64
	for _, q := range benchMix {
		bytes += int64(len(q))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	var n lexer.Norm
	for i := 0; i < b.N; i++ {
		for _, q := range benchMix {
			lexer.Normalize(q, &n)
		}
	}
}

// TestScannerAllocGate is the front-end allocation regression gate:
// draining the scanner over the benchmark mix must not allocate at
// all. CI fails on any regression here.
func TestScannerAllocGate(t *testing.T) {
	var sc lexer.Scanner
	allocs := testing.AllocsPerRun(100, func() {
		for _, q := range benchMix {
			sc.Init(q)
			for sc.Scan() != lexer.TokEOF {
			}
		}
	})
	if allocs > 1 {
		t.Fatalf("scanning the benchmark mix allocates %.1f/op, want <= 1", allocs)
	}
}

func BenchmarkParseSelect(b *testing.B) {
	var bytes int64
	for _, q := range benchMix {
		bytes += int64(len(q))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range benchMix {
			if _, err := Parse(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}
