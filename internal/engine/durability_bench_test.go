package engine

import (
	"fmt"
	"sync/atomic"
	"testing"

	"auditdb/internal/value"
	"auditdb/internal/wal"
)

// BenchmarkDurableInsert measures what durability costs on an
// insert-heavy workload: the in-memory engine against a WAL under
// each sync policy. The acceptance bar for the group-commit design is
// "interval" within 2x of "mem" (the fsync is amortized off the
// commit path); "always" pays a real fsync per autocommit batch and
// is reported for scale.
func BenchmarkDurableInsert(b *testing.B) {
	modes := []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"mem", 0},
		{"interval", wal.SyncInterval},
		{"always", wal.SyncAlways},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			e := New()
			if mode.name != "mem" {
				m, rec, err := wal.Open(b.TempDir(), wal.Options{Sync: mode.sync})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Recover(rec); err != nil {
					b.Fatal(err)
				}
				e.AttachWAL(m)
				defer e.CloseWAL()
			}
			if _, err := e.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(40))"); err != nil {
				b.Fatal(err)
			}
			ins, err := e.Prepare("INSERT INTO kv VALUES (?, ?)")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ins.Run(value.NewInt(int64(i)), value.NewString(fmt.Sprintf("value-%d", i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurableInsertConcurrent stresses group commit: parallel
// autocommit writers share fsyncs, so "always" amortizes toward the
// batch size.
func BenchmarkDurableInsertConcurrent(b *testing.B) {
	for _, sync := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncAlways} {
		b.Run(sync.String(), func(b *testing.B) {
			e := New()
			m, rec, err := wal.Open(b.TempDir(), wal.Options{Sync: sync})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Recover(rec); err != nil {
				b.Fatal(err)
			}
			e.AttachWAL(m)
			defer e.CloseWAL()
			if _, err := e.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(40))"); err != nil {
				b.Fatal(err)
			}
			var seq int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ins, err := e.Prepare("INSERT INTO kv VALUES (?, ?)")
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					i := atomic.AddInt64(&seq, 1)
					if _, err := ins.Run(value.NewInt(i), value.NewString("v")); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
