package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"auditdb"
	"auditdb/internal/engine"
)

// scrape GETs a path from the metrics listener and returns the body.
func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promValue extracts a single un-labeled sample value from exposition
// text.
func promValue(t *testing.T, text, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsEndpoint drives audited queries through the wire protocol
// and checks that the HTTP /metrics exposition and the stats wire op
// agree — they read the same registry — and that the acceptance-
// criteria families are all present.
func TestMetricsEndpoint(t *testing.T) {
	srv := startServer(t, Config{})
	ms, err := srv.Metrics().ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr().String()

	if h := scrape(t, base, "/healthz"); !strings.Contains(h, "ok") {
		t.Fatalf("/healthz = %q", h)
	}

	c := dial(t, srv)
	if err := c.SetUser("dr_mallory"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT Name FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	// A top-k query lands in the conservative placement bucket.
	if _, err := c.Query("SELECT Name FROM Patients ORDER BY Age DESC LIMIT 2"); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, base, "/metrics")
	for _, want := range []string{
		"# TYPE auditdb_query_latency_seconds histogram",
		`auditdb_query_latency_seconds_bucket{le="+Inf"}`,
		`auditdb_rows_audited_total{table="patients"}`,
		"auditdb_placement_exact_total",
		"auditdb_placement_conservative_total",
		"auditdb_uptime_seconds",
		"auditdb_server_conns_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Rescrape after the stats call so neither side has moved between
	// the two reads of counters the stats op itself does not touch.
	text = scrape(t, base, "/metrics")
	for prom, alias := range map[string]string{
		"auditdb_placement_exact_total":        "placement_exact",
		"auditdb_placement_conservative_total": "placement_conservative",
		"auditdb_triggers_fired_total":         "triggers_fired",
		"auditdb_server_conns_total":           "server_conns_total",
	} {
		if got, want := promValue(t, text, prom), stats[alias]; got != want {
			t.Errorf("%s = %d but stats[%s] = %d", prom, got, alias, want)
		}
	}
	if stats["placement_exact"] < 1 || stats["placement_conservative"] < 1 {
		t.Errorf("placement outcomes not counted: %v", stats)
	}

	// The per-table family agrees with the aggregate alias.
	re := regexp.MustCompile(`auditdb_rows_audited_total\{table="patients"\} (\d+)`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatal("per-table rows_audited sample missing")
	}
	if perTable, _ := strconv.ParseInt(m[1], 10, 64); perTable != stats["rows_audited"] {
		t.Errorf("per-table rows_audited %d != aggregate %d", perTable, stats["rows_audited"])
	}

	// Latency histogram observed both queries (and the trigger-body
	// statements' parses): count must be at least the two SELECTs.
	if n := promValue(t, text, "auditdb_query_latency_seconds_count"); n < 2 {
		t.Errorf("query latency count = %d, want >= 2", n)
	}
}

// TestStatsOpMatchesRegistrySnapshot pins the wire-visible stat keys
// older clients depend on.
func TestStatsOpMatchesRegistrySnapshot(t *testing.T) {
	srv := startServer(t, Config{})
	c := dial(t, srv)
	if _, err := c.Query("SELECT COUNT(*) FROM Patients"); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"queries", "statements", "rows_scanned", "sessions",
		"server_conns_active", "server_conns_total", "server_conns_rejected",
		"server_query_timeouts", "uptime_seconds",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats op missing key %q: %v", key, stats)
		}
	}
	if stats["server_conns_active"] < 1 {
		t.Errorf("server_conns_active = %d, want >= 1", stats["server_conns_active"])
	}
	snap := srv.Engine().StatsSnapshot()
	if stats["queries"] != snap["queries"] {
		// The wire op is a pass-through of the registry snapshot; a
		// second snapshot taken with no traffic in between must agree.
		t.Errorf("stats op queries=%d, snapshot queries=%d", stats["queries"], snap["queries"])
	}
}

// TestTracesEndpoint mounts the engine's trace ring beside /metrics —
// the shape cmd/auditdbd serves — and checks the JSON surface plus the
// tracing metric families.
func TestTracesEndpoint(t *testing.T) {
	eng := engine.New()
	if _, err := eng.ExecScript(auditdb.HealthcareDemo); err != nil {
		t.Fatal(err)
	}
	eng.SetTraceSampling(1)
	srv := New(eng, Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	ms, err := srv.Metrics().ListenAndServeWith("127.0.0.1:0", map[string]http.Handler{
		"/traces": eng.TraceRing().Handler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr().String()

	c := dial(t, srv)
	if err := c.SetUser("dr_mallory"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT Name FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if res.QID == 0 {
		t.Fatal("response carries no qid")
	}

	list := scrape(t, base, "/traces")
	if !strings.Contains(list, fmt.Sprintf(`"qid": %d`, res.QID)) {
		t.Fatalf("/traces does not list qid %d:\n%.2000s", res.QID, list)
	}
	one := scrape(t, base, fmt.Sprintf("/traces?qid=%d", res.QID))
	for _, want := range []string{`"transport.read"`, `"audit.fire"`, `"user": "dr_mallory"`} {
		if !strings.Contains(one, want) {
			t.Errorf("/traces?qid=%d missing %s:\n%.2000s", res.QID, want, one)
		}
	}

	text := scrape(t, base, "/metrics")
	for _, want := range []string{
		"auditdb_traces_sampled_total",
		"auditdb_trace_ring_evictions_total",
		"auditdb_trace_ring_traces",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if promValue(t, text, "auditdb_traces_sampled_total") < 1 {
		t.Error("traces_sampled did not move")
	}
}
