// Package server runs an audited engine as a concurrent network
// daemon. Each accepted connection gets its own goroutine and its own
// engine.Session, so USERID() in SELECT-trigger actions attributes
// every access to the connection that made it — the paper's §II
// multi-user setting, which an in-process engine with one global user
// cannot provide. The protocol is line-delimited JSON (package wire).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"auditdb/internal/engine"
	"auditdb/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:5433". ":0" picks
	// a free port (see Server.Addr).
	Addr string
	// MaxConns caps concurrently served connections; 0 means unlimited.
	// Excess connections are refused with an error response.
	MaxConns int
	// QueryTimeout bounds each statement's execution; 0 disables it. A
	// connection whose statement times out receives an error response
	// and is closed (its session is cleaned up once the runaway
	// statement finishes).
	QueryTimeout time.Duration
	// IdleTimeout closes connections with no request for this long; 0
	// disables it.
	IdleTimeout time.Duration
	// Logger receives structured connection-lifecycle events; nil
	// discards them. It is also installed on the engine so trigger
	// firings and slow queries land in the same stream.
	Logger *slog.Logger
}

// Server serves one engine over TCP.
type Server struct {
	eng *engine.Engine
	cfg Config
	log *slog.Logger

	ln       net.Listener
	mu       sync.Mutex
	conns    map[*conn]struct{}
	connWG   sync.WaitGroup
	draining atomic.Bool

	// Server counters live in the engine's obs registry beside the
	// engine's own, so the wire "stats" op and /metrics read one source.
	connsTotal    *obs.Counter
	connsRejected *obs.Counter
	queryTimeouts *obs.Counter
}

// New wraps an engine in an unstarted server.
func New(eng *engine.Engine, cfg Config) *Server {
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	} else {
		eng.SetLogger(log)
	}
	r := eng.Metrics()
	s := &Server{
		eng: eng,
		cfg: cfg,
		log: log,
		connsTotal: r.NewCounter("auditdb_server_conns_total", "server_conns_total",
			"Connections accepted."),
		connsRejected: r.NewCounter("auditdb_server_conns_rejected_total", "server_conns_rejected",
			"Connections refused at the MaxConns limit."),
		queryTimeouts: r.NewCounter("auditdb_server_query_timeouts_total", "server_query_timeouts",
			"Statements killed by the query timeout."),
		conns: make(map[*conn]struct{}),
	}
	r.NewGaugeFunc("auditdb_server_conns_active", "server_conns_active",
		"Connections currently served.", func() int64 { return int64(s.activeConns()) })
	return s
}

// Engine returns the served engine (daemon setup scripts use it).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Start listens on cfg.Addr and begins accepting connections in a
// background goroutine. It returns once the listener is bound, so
// Addr() is immediately valid.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("auditdbd: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.log.Info("server listening", "addr", ln.Addr().String(),
		"max_conns", s.cfg.MaxConns, "query_timeout", s.cfg.QueryTimeout)
	go s.acceptLoop()
	return nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or fatal accept error.
			return
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		if s.cfg.MaxConns > 0 && s.activeConns() >= s.cfg.MaxConns {
			s.connsRejected.Add(1)
			s.log.Warn("connection refused", "remote", nc.RemoteAddr().String(),
				"limit", s.cfg.MaxConns)
			refuse(nc, fmt.Sprintf("connection limit reached (%d)", s.cfg.MaxConns))
			continue
		}
		s.connsTotal.Add(1)
		s.log.Info("connection accepted", "remote", nc.RemoteAddr().String())
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go c.serve()
	}
}

func (s *Server) activeConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Stats returns the shared obs-registry snapshot: engine counters and
// server counters come from the same registry /metrics renders, so the
// wire op and the Prometheus endpoint can never disagree.
func (s *Server) Stats() map[string]int64 {
	return s.eng.StatsSnapshot()
}

// Metrics exposes the registry backing Stats so the daemon can mount
// it on an HTTP /metrics listener.
func (s *Server) Metrics() *obs.Registry { return s.eng.Metrics() }

// Shutdown stops accepting connections and drains gracefully: every
// in-flight statement runs to completion and its response is written
// before the connection closes. If ctx expires first, remaining
// connections are closed forcibly and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("auditdbd: already shut down")
	}
	s.log.Info("server draining", "active_conns", s.activeConns())
	s.ln.Close()
	// Unblock connections idle in a read; busy ones notice draining
	// after writing their current response.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}
