package pgwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frontend (client → server) message type bytes.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgSync      = 'S'
	msgFlush     = 'H'
	msgTerminate = 'X'
	msgFuncCall  = 'F'
	msgCopyFail  = 'f'
	msgCopyDone  = 'c'
	msgCopyData  = 'd'
	msgPassword  = 'p'
)

// Backend (server → client) message type bytes.
const (
	msgAuth             = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgEmptyQuery       = 'I'
	msgErrorResponse    = 'E'
	msgNoticeResponse   = 'N'
	msgParseComplete    = '1'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgNoData           = 'n'
	msgParamDescription = 't'
	msgPortalSuspended  = 's'
)

// Startup-phase request codes (the first packet has no type byte).
const (
	protoVersion3  = 196608   // 3.0
	sslRequest     = 80877103 // respond 'N': TLS is not offered
	gssEncRequest  = 80877104 // respond 'N'
	cancelRequest  = 80877102 // ignored: no out-of-band cancel support
	maxMessageLen  = 16 << 20 // refuse anything larger, it cannot be legit
	maxStartupLen  = 16 << 10 // startup packets are tiny
	maxStartupTrys = 4        // SSL, GSS, then the real startup at most
)

// readStartup reads one untyped startup-phase packet: int32 length
// (self-inclusive), int32 request code, payload.
func readStartup(r *bufio.Reader) (code int32, payload []byte, err error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(head[:]))
	if n < 8 || n > maxStartupLen {
		return 0, nil, fmt.Errorf("pgwire: bad startup packet length %d", n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return int32(binary.BigEndian.Uint32(body[:4])), body[4:], nil
}

// readMessage reads one typed frontend message.
func readMessage(r *bufio.Reader) (typ byte, payload []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(head[:]))
	if n < 4 || n > maxMessageLen {
		return 0, nil, fmt.Errorf("pgwire: bad message length %d for %q", n, typ)
	}
	payload = make([]byte, n-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// msgBuf builds one backend message body; Frame prepends the type byte
// and self-inclusive length.
type msgBuf struct {
	b []byte
}

func (m *msgBuf) byte(v byte)    { m.b = append(m.b, v) }
func (m *msgBuf) int16(v int16)  { m.b = binary.BigEndian.AppendUint16(m.b, uint16(v)) }
func (m *msgBuf) int32(v int32)  { m.b = binary.BigEndian.AppendUint32(m.b, uint32(v)) }
func (m *msgBuf) bytes(v []byte) { m.b = append(m.b, v...) }

// cstr appends a NUL-terminated string.
func (m *msgBuf) cstr(s string) {
	m.b = append(m.b, s...)
	m.b = append(m.b, 0)
}

// frame renders the finished message.
func frame(typ byte, body []byte) []byte {
	out := make([]byte, 5+len(body))
	out[0] = typ
	binary.BigEndian.PutUint32(out[1:5], uint32(len(body)+4))
	copy(out[5:], body)
	return out
}

// payloadReader decodes a frontend message payload.
type payloadReader struct {
	b   []byte
	pos int
	err error
}

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("pgwire: truncated message payload")
	}
}

func (p *payloadReader) cstr() string {
	if p.err != nil {
		return ""
	}
	for i := p.pos; i < len(p.b); i++ {
		if p.b[i] == 0 {
			s := string(p.b[p.pos:i])
			p.pos = i + 1
			return s
		}
	}
	p.fail()
	return ""
}

func (p *payloadReader) byte() byte {
	if p.err != nil || p.pos >= len(p.b) {
		p.fail()
		return 0
	}
	v := p.b[p.pos]
	p.pos++
	return v
}

func (p *payloadReader) int16() int16 {
	if p.err != nil || p.pos+2 > len(p.b) {
		p.fail()
		return 0
	}
	v := int16(binary.BigEndian.Uint16(p.b[p.pos:]))
	p.pos += 2
	return v
}

func (p *payloadReader) int32() int32 {
	if p.err != nil || p.pos+4 > len(p.b) {
		p.fail()
		return 0
	}
	v := int32(binary.BigEndian.Uint32(p.b[p.pos:]))
	p.pos += 4
	return v
}

// lenBytes reads an int32 length followed by that many bytes; a length
// of -1 reports a NULL (nil slice, null=true).
func (p *payloadReader) lenBytes() (data []byte, null bool) {
	n := p.int32()
	if p.err != nil {
		return nil, false
	}
	if n == -1 {
		return nil, true
	}
	if n < 0 || p.pos+int(n) > len(p.b) {
		p.fail()
		return nil, false
	}
	data = p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return data, false
}
