package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"auditdb/internal/value"
	"auditdb/internal/wal"
)

// newAuditedHealthDB is newHealthDB plus the paper's Audit_Alice
// expression and logging trigger.
func newAuditedHealthDB(t *testing.T) *Engine {
	t.Helper()
	e := newHealthDB(t)
	script := `
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("audit setup: %v", err)
	}
	return e
}

func ids(t *testing.T, r *Result, expr string) []int64 {
	t.Helper()
	if r.Accessed == nil {
		return nil
	}
	var out []int64
	for _, v := range r.Accessed.IDs(expr) {
		out = append(out, v.Int())
	}
	return out
}

// TestPlanCacheHitRecordsAccesses: a repeated SELECT must hit the
// session plan cache AND still record accesses into a fresh ACCESSED
// state — the probe-rebinding half of caching is what this guards.
func TestPlanCacheHitRecordsAccesses(t *testing.T) {
	e := newAuditedHealthDB(t)
	const q = "SELECT Name FROM Patients WHERE Zip = '48109'"
	r1 := mustQuery(t, e, q)
	if got := ids(t, r1, "Audit_Alice"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first run accessed = %v, want [1]", got)
	}
	before := e.StatsSnapshot()["plan_cache_hits"]
	r2 := mustQuery(t, e, q)
	after := e.StatsSnapshot()["plan_cache_hits"]
	if after != before+1 {
		t.Fatalf("plan_cache_hits %d -> %d, want a hit on the repeat", before, after)
	}
	if got := ids(t, r2, "Audit_Alice"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("cached run accessed = %v, want [1] (stale probe binding?)", got)
	}
	// The trigger must have fired on both executions.
	logRows := mustQuery(t, e, "SELECT PatientID FROM Log")
	if len(logRows.Rows) != 2 {
		t.Fatalf("Log has %d rows after two audited queries, want 2", len(logRows.Rows))
	}
}

// TestPlanCacheInvalidatedByDDL: auditing DDL executed after a plan is
// cached must invalidate it — a stale uninstrumented plan would silently
// stop auditing.
func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	e := newHealthDB(t)
	const q = "SELECT Name FROM Patients WHERE Zip = '48109'"
	r := mustQuery(t, e, q)
	if r.Accessed != nil {
		t.Fatal("no audit expressions exist yet; accessed should be nil")
	}
	mustQuery(t, e, q) // cache the uninstrumented plan

	script := `
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	r = mustQuery(t, e, q)
	if got := ids(t, r, "Audit_Alice"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-DDL accessed = %v, want [1] (stale cached plan survived DDL?)", got)
	}
}

// TestPlanCacheKeyedBySessionKnobs: changing a knob that steers
// planning (workers) must miss the cache rather than reuse a plan built
// under the old knob.
func TestPlanCacheKeyedBySessionKnobs(t *testing.T) {
	e := newHealthDB(t)
	e.SetParallelMinRows(1)
	s := e.NewSession()
	defer s.Close()
	const q = "SELECT Name FROM Patients WHERE Age > 30"
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	r, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	if e.StatsSnapshot()["parallel_queries"] == 0 {
		t.Fatal("query after SET WORKERS 4 did not run parallel (stale serial plan reused?)")
	}
}

// TestParallelQueryMatchesSerial runs the audited healthcare workload
// at several worker counts and requires identical result sets and
// identical ACCESSED id-sets as serial execution.
func TestParallelQueryMatchesSerial(t *testing.T) {
	queries := []string{
		"SELECT * FROM Patients",
		"SELECT Name FROM Patients WHERE Zip = '48109'",
		"SELECT p.Name, d.Disease FROM Patients p, Disease d WHERE p.PatientID = d.PatientID",
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip",
	}
	serial := newAuditedHealthDB(t)
	for _, workers := range []int{1, 2, 8} {
		par := newAuditedHealthDB(t)
		par.SetDefaultWorkers(workers)
		par.SetParallelMinRows(1)
		for _, q := range queries {
			rs := mustQuery(t, serial, q)
			rp := mustQuery(t, par, q)
			if got, want := canonRows(rp.Rows), canonRows(rs.Rows); !equalStrings(got, want) {
				t.Fatalf("workers=%d %q: results diverge from serial", workers, q)
			}
			if got, want := ids(t, rp, "Audit_Alice"), ids(t, rs, "Audit_Alice"); !equalInts(got, want) {
				t.Fatalf("workers=%d %q: ACCESSED %v, serial %v", workers, q, got, want)
			}
		}
	}
}

func canonRows(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b []byte
		for _, v := range r {
			b = value.EncodeKey(b, v)
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExplainShowsParallelOperators: with a worker budget, EXPLAIN
// must show the Gather exchange and [parallel] operator marks.
func TestExplainShowsParallelOperators(t *testing.T) {
	e := newHealthDB(t)
	e.SetDefaultWorkers(4)
	e.SetParallelMinRows(1)
	r := mustExec(t, e, "EXPLAIN SELECT Name FROM Patients WHERE Age > 30")
	var out strings.Builder
	for _, row := range r.Rows {
		out.WriteString(row[0].S)
		out.WriteByte('\n')
	}
	for _, want := range []string{"Gather", "[parallel]"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out.String())
		}
	}
}

// TestExplainAnalyzeParallelCounters: EXPLAIN ANALYZE of a parallel
// query must execute (workers folded per node) and render worker and
// morsel counts.
func TestExplainAnalyzeParallelCounters(t *testing.T) {
	e := newAuditedHealthDB(t)
	e.SetDefaultWorkers(4)
	e.SetParallelMinRows(1)
	out, err := e.ExplainAnalyze("SELECT Name FROM Patients WHERE Age > 30")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workers=", "morsels=", "probes="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestParallelMetricsMove: a parallel query must move the
// parallel_queries and morsels_dispatched counters.
func TestParallelMetricsMove(t *testing.T) {
	e := newHealthDB(t)
	e.SetDefaultWorkers(4)
	e.SetParallelMinRows(1)
	if got := e.StatsSnapshot()["exec_workers"]; got != 4 {
		t.Fatalf("exec_workers = %d, want 4", got)
	}
	mustQuery(t, e, "SELECT * FROM Patients")
	snap := e.StatsSnapshot()
	if snap["parallel_queries"] == 0 {
		t.Error("parallel_queries did not move")
	}
	if snap["morsels_dispatched"] == 0 {
		t.Error("morsels_dispatched did not move")
	}
}

// TestConcurrentParallelSessionsWithDML is the stress half of the
// determinism suite: 8 concurrent sessions mixing parallel audited
// SELECTs with WAL-logged DML. Run under -race this exercises the
// shared morsel cursor, worker-local audit sinks, the session plan
// caches, and the WAL group-commit path together.
func TestConcurrentParallelSessionsWithDML(t *testing.T) {
	dir := t.TempDir()
	m, rec, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	e := newAuditedHealthDB(t)
	if err := e.Recover(rec); err != nil {
		t.Fatal(err)
	}
	e.AttachWAL(m)
	e.SetDefaultWorkers(4)
	e.SetParallelMinRows(1)

	const sessions = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			s.SetUser(fmt.Sprintf("user%d", id))
			for j := 0; j < iters; j++ {
				if id%2 == 0 {
					r, err := s.Query("SELECT p.Name, d.Disease FROM Patients p, Disease d WHERE p.PatientID = d.PatientID")
					if err != nil {
						errs <- err
						return
					}
					if r.Accessed == nil || r.Accessed.Len("Audit_Alice") != 1 {
						errs <- fmt.Errorf("session %d iter %d: Alice not audited", id, j)
						return
					}
				} else {
					pid := 100 + id*1000 + j
					if _, err := s.Exec(fmt.Sprintf(
						"INSERT INTO Disease VALUES (%d, 'cold')", pid)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All DML landed: 5 seed rows + 4 writer sessions * 20 inserts.
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Disease")
	if got := r.Rows[0][0].Int(); got != 5+4*20 {
		t.Fatalf("Disease rows = %d, want %d", got, 5+4*20)
	}
}
