// Command tpchgen generates the deterministic TPC-H database used by
// the benchmarks and either summarizes it or dumps it as pipe-separated
// table files (dbgen's .tbl format) for inspection or external tools.
//
// Usage:
//
//	tpchgen [-sf 0.01] [-seed 19940101] [-out DIR]
//
// Without -out it prints table cardinalities and a sample of each
// table. Dates render as YYYY-MM-DD.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"auditdb/internal/tpch"
	"auditdb/internal/value"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 150k customers)")
	seed := flag.Int64("seed", 0, "generator seed (0 = default)")
	out := flag.String("out", "", "directory for .tbl dumps; empty = summary only")
	flag.Parse()

	start := time.Now()
	d := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
	fmt.Printf("generated TPC-H SF %.3f in %.2fs\n\n", *sf, time.Since(start).Seconds())

	tables := map[string][]value.Row{
		"region": d.Region, "nation": d.Nation, "supplier": d.Supplier,
		"customer": d.Customer, "part": d.Part, "partsupp": d.PartSupp,
		"orders": d.Orders, "lineitem": d.LineItem,
	}
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, n := range names {
		fmt.Printf("%-10s %8d rows\n", n, len(tables[n]))
	}

	if *out == "" {
		fmt.Println("\nsample rows:")
		for _, n := range names {
			rows := tables[n]
			if len(rows) > 0 {
				fmt.Printf("  %-10s %s\n", n, rows[0])
			}
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, n := range names {
		if err := dump(filepath.Join(*out, n+".tbl"), tables[n]); err != nil {
			log.Fatalf("dump %s: %v", n, err)
		}
	}
	fmt.Printf("\nwrote .tbl files to %s\n", *out)
}

func dump(path string, rows []value.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				if _, err := w.WriteString("|"); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(v.String()); err != nil {
				return err
			}
		}
		if _, err := w.WriteString("|\n"); err != nil {
			return err
		}
	}
	return w.Flush()
}
