package storage

import "auditdb/internal/value"

// ChunkRows is the number of heap slots covered by one chunk of
// per-chunk statistics. It matches the executor's morsel size so a
// morsel claim is exactly one chunk and a pruning decision made at
// claim time holds for the whole claim.
const ChunkRows = 4096

// colStats is the zone map entry for one column of one chunk: the
// min/max over live non-null values plus null/non-null counts. Between
// rebuilds the bounds only widen and the counts only grow, so they are
// conservative supersets of the chunk's true contents — sound for
// refutation, never for proof.
type colStats struct {
	min, max       int64
	nulls, nonNull int64
}

// chunkBloom is a fixed 4 KiB Bloom filter (32768 bits, two probes per
// key). At the full chunk occupancy of 4096 keys the false-positive
// rate is ~5%; typical chunks carry fewer sensitive candidates and sit
// well below that.
type chunkBloom [512]uint64

func mix64(x uint64) uint64 {
	// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (b *chunkBloom) add(v int64) {
	h := mix64(uint64(v))
	h1 := uint32(h) & 32767
	h2 := uint32(h>>32) & 32767
	b[h1>>6] |= 1 << (h1 & 63)
	b[h2>>6] |= 1 << (h2 & 63)
}

func (b *chunkBloom) mayContain(v int64) bool {
	h := mix64(uint64(v))
	h1 := uint32(h) & 32767
	h2 := uint32(h>>32) & 32767
	return b[h1>>6]&(1<<(h1&63)) != 0 && b[h2>>6]&(1<<(h2&63)) != 0
}

// chunkStats carries the zone maps and sensitive-ID sketches for one
// chunk of the heap. All access happens under the owning table's lock:
// writes under t.mu.Lock (the DML paths already hold it), reads under
// t.mu.RLock (the pruned scan paths hold it for the duration of a
// decide callback).
type chunkStats struct {
	live  int64 // live rows in the chunk (exact)
	drift int64 // deletes/updates since the last rebuild
	cols  []colStats
	// blooms holds one membership sketch per registered sketch column
	// (the watched column of an audit expression). Lazily allocated.
	blooms map[int]*chunkBloom
}

// statsEnabled reports whether this table maintains chunk statistics.
func (t *Table) statsEnabled() bool { return t.intCols != nil }

// initStats sets up the zone-map machinery for a new table. Only
// I-backed columns (INT, DATE, BOOL) get min/max tracking; null counts
// are kept for every column.
func (t *Table) initStats() {
	t.intCols = make([]bool, len(t.meta.Columns))
	for i, c := range t.meta.Columns {
		switch c.Type {
		case value.KindInt, value.KindDate, value.KindBool:
			t.intCols[i] = true
		}
	}
	t.sketchCols = make(map[int]struct{})
}

// chunkOf returns the stats record covering heap position pos, growing
// the directory as the heap grows. Caller holds t.mu.Lock.
func (t *Table) chunkOf(pos int) *chunkStats {
	c := pos / ChunkRows
	for len(t.stats) <= c {
		t.stats = append(t.stats, &chunkStats{cols: make([]colStats, len(t.meta.Columns))})
	}
	return t.stats[c]
}

// foldRow widens chunk ck's zone maps and sketches with row. Monotone:
// bounds only widen, counts only grow, blooms only gain bits — so a
// fold is always sound even if the row is later deleted (drift handles
// eventual tightening). Callers maintain ck.live themselves (an update
// folds without changing the live count). Caller holds t.mu.Lock.
func (t *Table) foldRow(ck *chunkStats, row value.Row) {
	for i := range row {
		cs := &ck.cols[i]
		if row[i].Kind == value.KindNull {
			cs.nulls++
			continue
		}
		if t.intCols[i] {
			v := row[i].I
			if cs.nonNull == 0 {
				cs.min, cs.max = v, v
			} else {
				if v < cs.min {
					cs.min = v
				}
				if v > cs.max {
					cs.max = v
				}
			}
		}
		cs.nonNull++
	}
	for col, bl := range ck.blooms {
		if row[col].Kind != value.KindNull && t.intCols[col] {
			bl.add(row[col].I)
		}
	}
}

// noteDrift records a delete or overwrite in the chunk covering pos and
// rebuilds the chunk's statistics from the heap once drift reaches half
// the chunk: amortized O(1) per DML, deterministic, and bounded to one
// chunk of work under the already-held write lock. Caller holds
// t.mu.Lock.
func (t *Table) noteDrift(pos int) {
	ck := t.chunkOf(pos)
	ck.drift++
	if ck.drift*2 >= ChunkRows {
		t.rebuildChunk(pos / ChunkRows)
	}
}

// rebuildChunk recomputes chunk c's statistics exactly from the heap.
// Caller holds t.mu.Lock.
func (t *Table) rebuildChunk(c int) {
	ck := t.stats[c]
	ck.live, ck.drift = 0, 0
	for i := range ck.cols {
		ck.cols[i] = colStats{}
	}
	for col := range ck.blooms {
		ck.blooms[col] = &chunkBloom{}
	}
	lo, hi := c*ChunkRows, (c+1)*ChunkRows
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	for i := lo; i < hi; i++ {
		if t.rows[i] != nil {
			ck.live++
			t.foldRow(ck, t.rows[i])
		}
	}
}

// EnsureSketch registers col as a sketch column: every chunk gains a
// Bloom filter over the column's live values, maintained by DML and
// consulted by audit-expression pruning. Idempotent; called when an
// audit expression watching col is compiled (including DDL replay on
// recovery). Non-I-backed columns are ignored — their sketches would
// never refute anything.
func (t *Table) EnsureSketch(col int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.statsEnabled() || col < 0 || col >= len(t.meta.Columns) || !t.intCols[col] {
		return
	}
	if _, ok := t.sketchCols[col]; ok {
		return
	}
	t.sketchCols[col] = struct{}{}
	// Grow the directory to cover the current heap, then backfill.
	if len(t.rows) > 0 {
		t.chunkOf(len(t.rows) - 1)
	}
	for c, ck := range t.stats {
		if ck.blooms == nil {
			ck.blooms = make(map[int]*chunkBloom)
		}
		bl := &chunkBloom{}
		ck.blooms[col] = bl
		lo, hi := c*ChunkRows, (c+1)*ChunkRows
		if hi > len(t.rows) {
			hi = len(t.rows)
		}
		for i := lo; i < hi; i++ {
			if row := t.rows[i]; row != nil && row[col].Kind != value.KindNull {
				bl.add(row[col].I)
			}
		}
	}
}

// ensureChunkBlooms makes sure a freshly grown chunk has a bloom per
// registered sketch column. Caller holds t.mu.Lock.
func (t *Table) ensureChunkBlooms(ck *chunkStats) {
	if len(t.sketchCols) == 0 {
		return
	}
	if ck.blooms == nil {
		ck.blooms = make(map[int]*chunkBloom, len(t.sketchCols))
	}
	for col := range t.sketchCols {
		if ck.blooms[col] == nil {
			ck.blooms[col] = &chunkBloom{}
		}
	}
}

// ChunkInfo is a read-only view of one chunk's statistics, handed to
// pruning decisions while the table's read lock is held (methods must
// not be called after the scan call that produced it returns).
type ChunkInfo struct {
	t *Table
	c int
}

// Chunk returns the chunk's ordinal (heap position / ChunkRows). A
// consumer whose output buffer is smaller than a chunk sees decide
// again on mid-chunk resume; the ordinal lets it count each chunk once.
func (ci ChunkInfo) Chunk() int { return ci.c }

// Range returns the zone-map [lo, hi] for an I-backed column. ok=false
// means no bound is available (untracked column kind, no non-null
// values, or stats disabled) and the caller must assume any value.
func (ci ChunkInfo) Range(col int) (lo, hi int64, ok bool) {
	cs := &ci.t.stats[ci.c].cols[col]
	if !ci.t.intCols[col] || cs.nonNull == 0 {
		return 0, 0, false
	}
	return cs.min, cs.max, true
}

// NullCounts returns the chunk's null / non-null counts for a column.
// Between rebuilds both are monotone upper bounds, so a zero is exact:
// nulls==0 refutes IS NULL, nonNull==0 refutes any value predicate.
func (ci ChunkInfo) NullCounts(col int) (nulls, nonNull int64) {
	cs := &ci.t.stats[ci.c].cols[col]
	return cs.nulls, cs.nonNull
}

// MayContain reports whether the chunk may contain value v in sketch
// column col. Without a registered sketch it answers true — the
// conservative direction.
func (ci ChunkInfo) MayContain(col int, v int64) bool {
	bl := ci.t.stats[ci.c].blooms[col]
	if bl == nil {
		return true
	}
	return bl.mayContain(v)
}

// ScanChunkPruned is ScanChunk with a pruning hook and a chunk-aligned
// contract: each call covers at most one chunk, and before copying
// anything out of a non-empty chunk it asks decide whether the chunk is
// worth reading. decide=false advances past the chunk without copying a
// single row (the peek/skip fast path); chunks with no live rows are
// skipped silently without consulting decide. decide may be nil, which
// scans every chunk. The stats handed to decide are read under the same
// read-lock acquisition as the copy, so they are consistent with the
// rows returned.
func (t *Table) ScanChunkPruned(pos int, out []value.Row, ids []RowID, decide func(ChunkInfo) bool) (n, next int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scanPrunedLocked(pos, len(t.rows), out, ids, decide)
}

// ScanRangePruned is ScanRange with the same pruning hook and
// one-chunk-per-call contract as ScanChunkPruned. Morsel claims are
// chunk-aligned, so a claim is exactly one decide call.
func (t *Table) ScanRangePruned(pos, end int, out []value.Row, ids []RowID, decide func(ChunkInfo) bool) (n, next int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if end > len(t.rows) {
		end = len(t.rows)
	}
	return t.scanPrunedLocked(pos, end, out, ids, decide)
}

// scanPrunedLocked walks chunks from pos toward end, returning the rows
// of the first chunk that survives pruning. Caller holds t.mu.RLock.
func (t *Table) scanPrunedLocked(pos, end int, out []value.Row, ids []RowID, decide func(ChunkInfo) bool) (n, next int) {
	if !t.statsEnabled() || len(t.stats) == 0 {
		// No stats layer: degrade to a plain bounded scan.
		return t.scanWindowLocked(pos, end, out, ids)
	}
	for pos < end {
		c := pos / ChunkRows
		chunkEnd := (c + 1) * ChunkRows
		if chunkEnd > end {
			chunkEnd = end
		}
		if c >= len(t.stats) || t.stats[c].live == 0 {
			// Nothing live here (or the directory lags the heap, which
			// cannot happen for grown chunks but keeps this total).
			if c < len(t.stats) {
				pos = chunkEnd
				continue
			}
			return t.scanWindowLocked(pos, end, out, ids)
		}
		if decide != nil && !decide(ChunkInfo{t: t, c: c}) {
			pos = chunkEnd
			continue
		}
		// Copy this chunk's live rows, stopping at the chunk boundary
		// so the next call re-evaluates pruning for the next chunk.
		i := pos
		for ; i < chunkEnd && n < len(out); i++ {
			row := t.rows[i]
			if row == nil {
				continue
			}
			ids[n] = RowID(i)
			out[n] = row
			n++
		}
		if i >= end {
			return n, -1
		}
		return n, i
	}
	return n, -1
}

// scanWindowLocked is the stats-free fallback: ScanRange's body without
// the lock. Caller holds t.mu.RLock.
func (t *Table) scanWindowLocked(pos, end int, out []value.Row, ids []RowID) (n, next int) {
	i := pos
	for ; i < end && n < len(out); i++ {
		row := t.rows[i]
		if row == nil {
			continue
		}
		ids[n] = RowID(i)
		out[n] = row
		n++
	}
	if i >= end {
		return n, -1
	}
	return n, i
}
