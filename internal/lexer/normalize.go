package lexer

import (
	"strconv"
	"strings"

	"auditdb/internal/value"
)

// Norm is the result of Normalize: the canonical, auto-parameterized
// spelling of a single SELECT statement plus the literal values that
// were lifted out of it. The canonical text is the engine-wide plan
// cache fingerprint — two statements that differ only in
// parameterizable constants (`WHERE id = 7` vs `WHERE id = 9`, or a
// user-supplied `?`) normalize to identical bytes and share one plan.
//
// Slots appear in source order and interleave lifted literals with
// user placeholders: Vals[i] holds the i-th slot's literal value, or
// the zero (NULL) value when User[i] is true and the caller binds it.
//
// A Norm's slices are reused across calls to Normalize on the same
// Norm, so callers must not retain them past the next call.
type Norm struct {
	Canonical []byte        // canonical statement text, literals replaced by ?
	Vals      []value.Value // per-slot literal values (zero for user slots)
	User      []bool        // per-slot: true = user-written ? placeholder
	NUser     int           // number of user ? placeholders

	stack []uint8 // clause-state stack scratch, one entry per open paren
}

// Clause states for the auto-parameterization decision. Literals are
// lifted only in stAllowed positions (WHERE, HAVING, JOIN ... ON, and
// friends). The other states pin literals into the canonical text
// because planning or output naming is literal-sensitive there:
//
//   - stSelectList: output column names derive from the expression
//     text, and CASE/arith literals are part of that text;
//   - stByList: GROUP BY / ORDER BY integer literals are positional
//     ordinals, not values;
//   - stLimit: the LIMIT operand gates parallelization, so plans must
//     key on it (and the grammar demands a bare number).
const (
	stAllowed uint8 = iota
	stSelectList
	stByList
	stLimit
)

// Normalize scans sql and, when it is a single SELECT statement,
// rewrites it to canonical form: keywords uppercased, tokens
// single-space separated, comments and a trailing semicolon stripped,
// and parameterizable literals replaced by ? with their values
// captured in order. It reports false — leaving n in an undefined
// state — when the statement is not a plain single SELECT (other
// statement kinds, scripts, EXPLAIN) or fails to tokenize; callers
// then fall back to the ordinary parse path, which reproduces the
// error against the original text.
//
// Normalize is a single token scan: it does not parse, and on the
// session hot path it performs zero allocations once n's scratch
// slices have warmed up.
func Normalize(sql string, n *Norm) bool {
	var sc Scanner
	sc.Init(sql)
	canon := n.Canonical[:0]
	vals := n.Vals[:0]
	user := n.User[:0]
	stk := n.stack[:0]
	nUser := 0
	cur := stAllowed
	first := true
	noParamStr := false // literal after DATE must stay inline (grammar)
	done := false       // saw the statement-terminating semicolon

	for {
		kind := sc.Scan()
		if kind == TokEOF {
			if sc.Err() != nil || first {
				return false
			}
			break
		}
		if done {
			return false // a script, not a single statement
		}
		if first {
			if kind != TokKeyword || sc.Kw != KwSelect {
				return false
			}
			first = false
		}
		if kind == TokOp && sc.Op == OpSemi {
			done = true
			continue
		}
		if len(canon) > 0 {
			canon = append(canon, ' ')
		}
		switch kind {
		case TokKeyword:
			switch sc.Kw {
			case KwSelect:
				cur = stSelectList
			case KwFrom, KwWhere, KwHaving:
				cur = stAllowed
			case KwGroup, KwOrder:
				cur = stByList
			case KwLimit:
				cur = stLimit
			}
			canon = append(canon, kwNames[sc.Kw]...)
		case TokIdent:
			if sc.Start > sc.Pos { // quoted identifier
				canon = append(canon, '"')
				canon = append(canon, sc.Text()...)
				canon = append(canon, '"')
			} else {
				canon = append(canon, sc.Text()...)
			}
		case TokNumber:
			if cur == stAllowed {
				v, ok := numberValue(sc.Text())
				if !ok {
					return false
				}
				canon = append(canon, '?')
				vals = append(vals, v)
				user = append(user, false)
			} else {
				canon = append(canon, sc.Text()...)
			}
		case TokString:
			if cur == stAllowed && !noParamStr {
				canon = append(canon, '?')
				vals = append(vals, value.NewString(sc.StringText()))
				user = append(user, false)
			} else {
				canon = append(canon, '\'')
				canon = append(canon, sql[sc.Start:sc.End]...) // raw span keeps '' escapes intact
				canon = append(canon, '\'')
			}
		case TokOp:
			switch sc.Op {
			case OpLParen:
				stk = append(stk, cur)
			case OpRParen:
				if len(stk) > 0 {
					cur = stk[len(stk)-1]
					stk = stk[:len(stk)-1]
				}
			case OpQuestion:
				vals = append(vals, value.Value{})
				user = append(user, true)
				nUser++
			}
			canon = append(canon, opNames[sc.Op]...)
		}
		noParamStr = kind == TokKeyword && sc.Kw == KwDate
	}

	n.Canonical = canon
	n.Vals = vals
	n.User = user
	n.NUser = nUser
	n.stack = stk
	return true
}

// numberValue converts a numeric literal exactly the way the parser
// does (dot present → float, else int), so a lifted literal binds to
// the same value the original AST would have carried.
func numberValue(text string) (value.Value, bool) {
	if strings.IndexByte(text, '.') >= 0 {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, false
		}
		return value.NewFloat(f), true
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Value{}, false
	}
	return value.NewInt(i), true
}
