package pgwire

import "strings"

// SQLSTATE codes the front door reports (PostgreSQL Appendix A).
const (
	stateSyntaxError        = "42601"
	stateUndefinedTable     = "42P01"
	stateUndefinedColumn    = "42703"
	stateAmbiguousColumn    = "42702"
	stateDuplicateTable     = "42P07"
	stateDuplicateObject    = "42710"
	stateUndefinedObject    = "42704"
	stateDivisionByZero     = "22012"
	stateInvalidText        = "22P02"
	stateInvalidParameter   = "22023"
	stateNoActiveTxn        = "25P01"
	stateActiveTxn          = "25001"
	stateQueryCanceled      = "57014"
	stateConnFailure        = "08006"
	stateProtocolViolation  = "08P01"
	stateFeatureUnsupported = "0A000"
	stateTooManyConnections = "53300"
	stateProgramLimit       = "54000"
	stateInvalidCursorName  = "34000"
	stateInvalidStmtName    = "26000"
	stateInternalError      = "XX000"
)

// sqlstateFor maps an engine error to the closest SQLSTATE. The
// engine reports errors as text, so the mapping is by message shape;
// unknown shapes land on internal_error, which clients treat as a
// generic server error.
func sqlstateFor(err error) string {
	msg := strings.ToLower(err.Error())
	has := func(s string) bool { return strings.Contains(msg, s) }
	switch {
	case has("parse error"), has("unexpected character"), has("unterminated"),
		has("empty statement"), has("expected "), has("is not valid"),
		has("select list is empty"), has("cannot be combined"),
		has("must appear in the select list"), has("cannot be nested"):
		return stateSyntaxError
	case has("unknown table"), has("table") && has("does not exist"):
		return stateUndefinedTable
	case has("unknown column"):
		return stateUndefinedColumn
	case has("ambiguous column"):
		return stateAmbiguousColumn
	case has("table") && has("already exists"):
		return stateDuplicateTable
	case has("already exists"), has("listed twice"), has("duplicate column"):
		return stateDuplicateObject
	case has("does not exist"), has("unknown audit expression"),
		has("unknown aggregate"), has("unknown type"), has("unknown setting"):
		return stateUndefinedObject
	case has("division by zero"):
		return stateDivisionByZero
	case has("no open transaction"):
		return stateNoActiveTxn
	case has("transaction is already open"), has("transaction control is not allowed"):
		return stateActiveTxn
	case has("parameters, got"), has("parameter"):
		return stateInvalidParameter
	case has("timeout"):
		return stateQueryCanceled
	case has("session is closed"):
		return stateConnFailure
	case has("exceeds maximum depth"), has("exceeds depth"):
		return stateProgramLimit
	case has("unsupported"):
		return stateFeatureUnsupported
	default:
		return stateInternalError
	}
}
