package tpch

import (
	"strings"
	"testing"

	"auditdb/internal/engine"
)

func loadSmall(t *testing.T) *engine.Engine {
	t.Helper()
	e, _, err := NewEngine(Config{SF: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.002})
	b := Generate(Config{SF: 0.002})
	if len(a.Customer) != len(b.Customer) || len(a.LineItem) != len(b.LineItem) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Customer {
		if a.Customer[i].String() != b.Customer[i].String() {
			t.Fatalf("row %d differs: %v vs %v", i, a.Customer[i], b.Customer[i])
		}
	}
	c := Generate(Config{SF: 0.002, Seed: 7})
	if c.Customer[0].String() == a.Customer[0].String() &&
		c.Customer[1].String() == a.Customer[1].String() &&
		c.Customer[2].String() == a.Customer[2].String() {
		t.Error("different seeds produced identical prefix")
	}
}

func TestGenerateScales(t *testing.T) {
	d := Generate(Config{SF: 0.002})
	counts := d.Counts()
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("fixed tables wrong: %v", counts)
	}
	if counts["customer"] != 300 {
		t.Errorf("customers = %d, want 300", counts["customer"])
	}
	if counts["orders"] != 3000 {
		t.Errorf("orders = %d, want 3000", counts["orders"])
	}
	if counts["lineitem"] < 3000 || counts["lineitem"] > 21000 {
		t.Errorf("lineitem = %d, out of expected band", counts["lineitem"])
	}
	if counts["partsupp"] != 4*counts["part"] {
		t.Errorf("partsupp = %d, part = %d", counts["partsupp"], counts["part"])
	}
}

func TestSegmentDistribution(t *testing.T) {
	d := Generate(Config{SF: 0.01})
	seg := map[string]int{}
	for _, row := range d.Customer {
		seg[row[6].Str()]++
	}
	if len(seg) != 5 {
		t.Fatalf("segments = %v", seg)
	}
	for s, n := range seg {
		frac := float64(n) / float64(len(d.Customer))
		if frac < 0.1 || frac > 0.3 {
			t.Errorf("segment %s fraction %.2f outside [0.1, 0.3]", s, frac)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	d := Generate(Config{SF: 0.002})
	nCust := int64(len(d.Customer))
	orderKeys := map[int64]bool{}
	for _, o := range d.Orders {
		if ck := o[1].Int(); ck < 1 || ck > nCust {
			t.Fatalf("order custkey %d out of range", ck)
		}
		orderKeys[o[0].Int()] = true
	}
	for _, l := range d.LineItem {
		if !orderKeys[l[0].Int()] {
			t.Fatalf("lineitem orderkey %d has no order", l[0].Int())
		}
	}
}

func TestLoadIntoEngine(t *testing.T) {
	e := loadSmall(t)
	r, err := e.Query("SELECT COUNT(*) FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 300 {
		t.Errorf("customer count = %v", r.Rows[0])
	}
	r, err = e.Query("SELECT COUNT(*) FROM nation")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 25 {
		t.Errorf("nation count = %v", r.Rows[0])
	}
}

func TestAllSevenQueriesRun(t *testing.T) {
	e := loadSmall(t)
	for _, q := range Queries(DefaultParams()) {
		r, err := e.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s failed: %v", q.Name, err)
		}
		t.Logf("%s: %d rows", q.Name, len(r.Rows))
	}
}

func TestQ3ReturnsRevenueOrdered(t *testing.T) {
	e := loadSmall(t)
	q := Queries(DefaultParams())[0]
	r, err := e.Query(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Skip("Q3 empty at this scale; acceptable but nothing to check")
	}
	prev := r.Rows[0][1].Float()
	for _, row := range r.Rows[1:] {
		if row[1].Float() > prev {
			t.Fatalf("revenue not descending: %v", r.Rows)
		}
		prev = row[1].Float()
	}
	if len(r.Rows) > 10 {
		t.Errorf("Q3 LIMIT 10 violated: %d rows", len(r.Rows))
	}
}

func TestQ13CountsCustomersWithoutOrders(t *testing.T) {
	e := loadSmall(t)
	q := Queries(DefaultParams())[5]
	if q.Name != "Q13" {
		t.Fatalf("query order changed: %s", q.Name)
	}
	r, err := e.Query(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	// The distribution must cover every customer exactly once.
	total := int64(0)
	for _, row := range r.Rows {
		total += row[1].Int()
	}
	if total != 300 {
		t.Errorf("Q13 distribution sums to %d customers, want 300", total)
	}
}

func TestMicroJoinQueryTemplate(t *testing.T) {
	e := loadSmall(t)
	r, err := e.Query(MicroJoinQuery(0, "1992-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("micro query returned nothing")
	}
}

func TestAuditExpressionTemplates(t *testing.T) {
	e := loadSmall(t)
	if _, err := e.Exec(AuditCustomerSegment("Audit_Seg", "BUILDING")); err != nil {
		t.Fatal(err)
	}
	ae, ok := e.Registry().Get("Audit_Seg")
	if !ok {
		t.Fatal("expression missing")
	}
	frac := float64(ae.Cardinality()) / 300
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("segment audit covers %.2f of customers", frac)
	}
	if _, err := e.Exec(AuditCustomerRange("Audit_Range", 10)); err != nil {
		t.Fatal(err)
	}
	ar, _ := e.Registry().Get("Audit_Range")
	if ar.Cardinality() != 10 {
		t.Errorf("range audit cardinality = %d, want 10", ar.Cardinality())
	}
}

func TestNonCustomerQueriesRun(t *testing.T) {
	e := loadSmall(t)
	for _, q := range NonCustomerQueries() {
		r, err := e.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s returned nothing", q.Name)
		}
		t.Logf("%s: %d rows", q.Name, len(r.Rows))
	}
}

func TestQ4CountsOnlyLateOrders(t *testing.T) {
	e := loadSmall(t)
	var q4 Query
	for _, q := range NonCustomerQueries() {
		if q.Name == "Q4" {
			q4 = q
		}
	}
	r, err := e.Query(q4.SQL)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, row := range r.Rows {
		total += row[1].Int()
	}
	// Cross-check against a direct count of qualifying orders.
	chk, err := e.Query(`SELECT COUNT(*) FROM orders
		WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
		AND EXISTS (SELECT 1 FROM lineitem
		            WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)`)
	if err != nil {
		t.Fatal(err)
	}
	if total != chk.Rows[0][0].Int() {
		t.Errorf("Q4 total %d != direct count %v", total, chk.Rows[0][0])
	}
}

func TestNonCustomerQueriesNotInstrumented(t *testing.T) {
	e := loadSmall(t)
	if _, err := e.Exec(AuditCustomerSegment("Audit_Seg", "BUILDING")); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	for _, q := range NonCustomerQueries() {
		s, err := e.Explain(q.SQL, true)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(s, "Audit(") {
			t.Errorf("%s: audit operator inserted into a query that never reads customer:\n%s", q.Name, s)
		}
		r, err := e.Query(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if r.Accessed != nil && r.Accessed.Len("Audit_Seg") != 0 {
			t.Errorf("%s recorded accesses", q.Name)
		}
	}
}
