// Package wire defines auditdbd's line protocol: one JSON object per
// newline-terminated line in each direction. A request names an op
// ("exec", "query", "prepare", "run", "set", "stats", "ping", "quit")
// and its arguments; the response carries rows, DML counts, per-audit-
// expression access counts, or an error. Scalars travel as JSON
// natives (null, bool, number, string; dates as "YYYY-MM-DD" strings),
// so any language with a JSON library can speak the protocol.
package wire

import (
	"encoding/json"
	"fmt"

	"auditdb/internal/value"
)

// Request ops.
const (
	OpExec      = "exec"       // SQL: a statement or semicolon-separated script
	OpQuery     = "query"      // SQL: a single SELECT
	OpPrepare   = "prepare"    // SQL with ? placeholders -> Stmt handle
	OpRun       = "run"        // Stmt + Params: execute a prepared statement
	OpCloseStmt = "close_stmt" // Stmt: drop a prepared statement
	OpSet       = "set"        // Key in {user, audit_all, placement, workers}, Value
	OpStats     = "stats"      // engine + server counters
	OpPing      = "ping"
	OpQuit      = "quit"
	// Durability ops (served only when the daemon runs with -data-dir).
	OpVerifyAudit = "verify_audit" // check the audit trail's hash chain
	OpCheckpoint  = "checkpoint"   // snapshot + truncate the data WAL
)

// Set keys.
const (
	KeyUser      = "user"
	KeyAuditAll  = "audit_all"
	KeyPlacement = "placement"
	// KeyWorkers sets the session's parallel-execution worker budget:
	// a positive integer, 1 forcing serial, 0 resetting to the server
	// default.
	KeyWorkers = "workers"
	// KeyTrace toggles forced full trace capture for every statement
	// this session runs ("on"/"off"); retained traces are read back with
	// SHOW TRACE FOR <qid> or the /traces endpoint.
	KeyTrace = "trace"
	// KeyTriage gates this session's trigger firings in or out of the
	// background offline-verification queue ("on"/"off"); read triage
	// state back with SHOW AUDIT QUEUE / SHOW AUDIT VERDICTS.
	KeyTriage = "triage"
	// KeySkipping toggles chunk skipping (zone maps + sensitive-ID
	// sketches) for this session's scans ("on"/"off"). Skipping never
	// changes results or the audit trail; off is for measurement and
	// as an escape hatch.
	KeySkipping = "skipping"
)

// Request is one client line.
type Request struct {
	Op     string `json:"op"`
	SQL    string `json:"sql,omitempty"`
	Key    string `json:"key,omitempty"`
	Value  string `json:"value,omitempty"`
	Stmt   int    `json:"stmt,omitempty"`
	Params []any  `json:"params,omitempty"`
}

// Response is one server line.
type Response struct {
	OK           bool     `json:"ok"`
	Error        string   `json:"error,omitempty"`
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsAffected int      `json:"rows_affected,omitempty"`
	// QID is the query ID the engine's tracer assigned to the
	// statement; SHOW TRACE FOR <qid> retrieves its span tree when the
	// trace was retained.
	QID uint64 `json:"qid,omitempty"`
	// Audited maps audit-expression name to the number of sensitive
	// partition keys the statement accessed.
	Audited   map[string]int   `json:"audited,omitempty"`
	Stats     map[string]int64 `json:"stats,omitempty"`
	Stmt      int              `json:"stmt,omitempty"`
	NumParams int              `json:"num_params,omitempty"`
	Verify    *VerifyResult    `json:"verify,omitempty"`
}

// VerifyResult reports an audit-trail integrity check ("verify_audit").
// OK stays true even for an invalid chain — the check itself succeeded;
// Valid is the verdict.
type VerifyResult struct {
	Valid   bool   `json:"valid"`
	Records uint64 `json:"records"`
	Head    string `json:"head"`
	Reason  string `json:"reason,omitempty"`
}

// ToWire converts an engine scalar to its JSON representation.
func ToWire(v value.Value) any {
	switch v.Kind {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	default: // dates and anything else render as their SQL text form
		return v.String()
	}
}

// RowsToWire converts a result set.
func RowsToWire(rows []value.Row) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		w := make([]any, len(r))
		for j, v := range r {
			w[j] = ToWire(v)
		}
		out[i] = w
	}
	return out
}

// ParamToValue converts a decoded JSON parameter (the decoder must use
// json.Number) to an engine scalar.
func ParamToValue(p any) (value.Value, error) {
	switch x := p.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case string:
		return value.NewString(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return value.NewInt(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return value.Null, fmt.Errorf("bad numeric parameter %q", x.String())
		}
		return value.NewFloat(f), nil
	case float64: // decoder without UseNumber
		return value.NewFloat(x), nil
	default:
		return value.Null, fmt.Errorf("unsupported parameter type %T", p)
	}
}
