package opt

import (
	"strings"
	"testing"

	"auditdb/internal/catalog"
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// bigEst pretends every table is huge; smallEst that none qualifies.
func bigEst(string) int64   { return 1 << 20 }
func smallEst(string) int64 { return 3 }

func parallelCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := testCatalog(t)
	if err := cat.AddTable(&catalog.TableMeta{Name: "f", Columns: []catalog.Column{
		{Name: "id", Type: value.KindInt},
		{Name: "price", Type: value.KindFloat},
	}}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func parallelized(t *testing.T, sql string, est EstimateFn) plan.Node {
	t.Helper()
	return Parallelize(optimized(t, parallelCatalog(t), sql), est, 4, 100)
}

func hasGather(n plan.Node) bool {
	found := false
	plan.Walk(n, func(x plan.Node) {
		if _, ok := x.(*plan.Gather); ok {
			found = true
		}
	})
	return found
}

func hasParallelAgg(n plan.Node) bool {
	found := false
	plan.Walk(n, func(x plan.Node) {
		if a, ok := x.(*plan.Aggregate); ok && a.Parallel {
			found = true
		}
	})
	return found
}

func TestParallelizeInsertsGather(t *testing.T) {
	n := parallelized(t, "SELECT x FROM a WHERE x > 3", bigEst)
	g, ok := n.(*plan.Gather)
	if !ok {
		t.Fatalf("root is %T, want *plan.Gather:\n%s", n, plan.Explain(n))
	}
	if g.Workers != 4 {
		t.Errorf("Gather workers = %d, want 4", g.Workers)
	}
	scans := findScans(n)
	if len(scans) != 1 || !scans[0].Parallel {
		t.Errorf("scan not marked parallel:\n%s", plan.Explain(n))
	}
}

func TestParallelizeRespectsThreshold(t *testing.T) {
	n := parallelized(t, "SELECT x FROM a WHERE x > 3", smallEst)
	if hasGather(n) {
		t.Fatalf("small input was parallelized:\n%s", plan.Explain(n))
	}
}

func TestParallelizeSkipsSerialBudget(t *testing.T) {
	n := Parallelize(optimized(t, parallelCatalog(t), "SELECT x FROM a"), bigEst, 1, 100)
	if hasGather(n) {
		t.Fatal("workers=1 must not rewrite the plan")
	}
}

// TestParallelizeLimitPoisonsSubtree: LIMIT's bounded-work semantics
// (and the audit observation set under it) require serial arrival
// order below it — even when a Sort sits in between is it only the
// Sort's own subtree that may go parallel.
func TestParallelizeLimitPoisonsSubtree(t *testing.T) {
	n := parallelized(t, "SELECT x FROM a LIMIT 5", bigEst)
	if hasGather(n) {
		t.Fatalf("subtree under LIMIT was parallelized:\n%s", plan.Explain(n))
	}
	// Sort is a pipeline breaker: it consumes its input fully no matter
	// the LIMIT above, so the scan below it may go parallel again.
	n = parallelized(t, "SELECT x FROM a ORDER BY x LIMIT 5", bigEst)
	if !hasGather(n) {
		t.Fatalf("scan under Sort (under LIMIT) should be parallel:\n%s", plan.Explain(n))
	}
}

// TestParallelizeFloatSumStaysSerial: float addition does not commute
// bitwise, so SUM/AVG over a float column must not run two-phase or
// over an exchange — the result bytes would depend on worker count.
func TestParallelizeFloatSumStaysSerial(t *testing.T) {
	n := parallelized(t, "SELECT SUM(price) FROM f", bigEst)
	if hasGather(n) || hasParallelAgg(n) {
		t.Fatalf("float SUM was parallelized:\n%s", plan.Explain(n))
	}
	// Integer SUM is exact under any fold order: two-phase is fine.
	n = parallelized(t, "SELECT SUM(id) FROM f", bigEst)
	if !hasParallelAgg(n) {
		t.Fatalf("integer SUM should run two-phase:\n%s", plan.Explain(n))
	}
	// COUNT over the float table is order-free too.
	n = parallelized(t, "SELECT COUNT(*) FROM f", bigEst)
	if !hasParallelAgg(n) {
		t.Fatalf("COUNT(*) should run two-phase:\n%s", plan.Explain(n))
	}
}

// TestParallelizeDistinctAggStaysSerial: per-worker DISTINCT seen-sets
// do not merge into correct counts, so two-phase is excluded.
func TestParallelizeDistinctAggStaysSerial(t *testing.T) {
	n := parallelized(t, "SELECT COUNT(DISTINCT x) FROM a", bigEst)
	if hasParallelAgg(n) {
		t.Fatalf("DISTINCT aggregate went two-phase:\n%s", plan.Explain(n))
	}
}

// TestParallelizeSubqueryStaysSerial: fragments must be subquery-free —
// subplan execution shares mutable evaluation state.
func TestParallelizeSubqueryStaysSerial(t *testing.T) {
	n := parallelized(t, "SELECT x FROM a WHERE x IN (SELECT y FROM b)", bigEst)
	if hasGather(n) {
		t.Fatalf("fragment with subquery was parallelized:\n%s", plan.Explain(n))
	}
}

// TestParallelizeJoinSpine: an equi-join fragment parallelizes with the
// probe (left) side morsel-driven and both join + scan marked.
func TestParallelizeJoinSpine(t *testing.T) {
	n := parallelized(t, "SELECT a.x, b.y FROM a, b WHERE a.id = b.id", bigEst)
	if !hasGather(n) {
		t.Fatalf("equi-join fragment not parallelized:\n%s", plan.Explain(n))
	}
	j := findJoin(n)
	if j == nil || !j.Parallel {
		t.Fatalf("join not marked parallel:\n%s", plan.Explain(n))
	}
}

// TestParallelizeExplainLabels: parallel operators must be visible in
// EXPLAIN output so operators can verify plans from the shell.
func TestParallelizeExplainLabels(t *testing.T) {
	n := parallelized(t, "SELECT x FROM a WHERE x > 3", bigEst)
	out := plan.Explain(n)
	want := []string{"Gather", "[parallel]"}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("EXPLAIN missing %q:\n%s", w, out)
		}
	}
}
