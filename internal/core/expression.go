// Package core implements the paper's contribution: audit expressions
// compiled to materialized sensitive-ID sets (§IV-A.1), the audit
// operator's probe sink and per-query ACCESSED state (§II/IV-A.2), and
// the audit-operator placement algorithms — leaf-node, highest-node,
// and the highest-commutative-node heuristic of Algorithm 1 (§III-C).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/exec"
	"auditdb/internal/opt"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

// idSet is an immutable snapshot of sensitive IDs keyed by their
// canonical encoding. Maintenance replaces the whole snapshot, so the
// audit operator probes lock-free against a consistent set. When every
// ID is integral (the overwhelmingly common case — partition keys are
// primary keys), ints carries an allocation-free probe index for the
// executor's hot path.
type idSet struct {
	byKey map[string]value.Value
	ints  map[int64]struct{} // nil when some ID is non-integral

	// sorted is the ascending view of ints, built lazily on the first
	// chunk-pruning refutation against this snapshot. Maintenance
	// stores a fresh idSet (and clone builds a fresh struct), so once
	// a snapshot is published its ints never change and the Once is
	// race-free.
	sortedOnce sync.Once
	sorted     []int64
}

// sortedInts returns the set's IDs in ascending order (nil when the
// set holds non-integral IDs).
func (s *idSet) sortedInts() []int64 {
	s.sortedOnce.Do(func() {
		if s.ints == nil {
			return
		}
		s.sorted = make([]int64, 0, len(s.ints))
		for v := range s.ints {
			s.sorted = append(s.sorted, v)
		}
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	})
	return s.sorted
}

func newIDSet(capacity int) *idSet {
	return &idSet{
		byKey: make(map[string]value.Value, capacity),
		ints:  make(map[int64]struct{}, capacity),
	}
}

// add inserts an ID, dropping the integer index if v is not integral.
func (s *idSet) add(v value.Value) {
	s.byKey[value.KeyOf(v)] = v
	if s.ints != nil {
		if v.Kind == value.KindInt {
			s.ints[v.I] = struct{}{}
		} else {
			s.ints = nil
		}
	}
}

func (s *idSet) remove(v value.Value) {
	delete(s.byKey, value.KeyOf(v))
	if s.ints != nil && v.Kind == value.KindInt {
		delete(s.ints, v.I)
	}
}

func (s *idSet) contains(v value.Value) bool {
	if s.ints != nil {
		if v.Kind == value.KindInt {
			_, ok := s.ints[v.I]
			return ok
		}
		if v.Kind != value.KindFloat && v.Kind != value.KindBool && v.Kind != value.KindDate {
			return false // strings can never match an all-int set
		}
	}
	_, ok := s.byKey[value.KeyOf(v)]
	return ok
}

func (s *idSet) clone() *idSet {
	out := &idSet{byKey: make(map[string]value.Value, len(s.byKey))}
	for k, v := range s.byKey {
		out.byKey[k] = v
	}
	if s.ints != nil {
		out.ints = make(map[int64]struct{}, len(s.ints))
		for k := range s.ints {
			out.ints[k] = struct{}{}
		}
	}
	return out
}

// AuditExpression is a declared audit expression compiled to its
// materialized set of sensitiveIDs (the partition-by keys of the rows
// matched by the defining query). The set is maintained under DML via
// Registry.Apply.
type AuditExpression struct {
	Meta *catalog.AuditExprMeta

	// defQuery is the defining SELECT rewritten to project only the
	// partition-by key (the paper compiles audit expressions to IDs so
	// the operator needs no extra attributes, §IV-A.1).
	defQuery *ast.Select
	// keyOrdinal is the partition-by column's ordinal in the sensitive
	// table.
	keyOrdinal int
	// singlePred, when non-nil, is the defining predicate compiled
	// against the sensitive table's row shape; set only for
	// single-table definitions, enabling per-row incremental
	// maintenance. Multi-table definitions refresh wholesale.
	singlePred plan.Expr
	// refTables are the lower-cased names of all tables the definition
	// reads; DML against any of them invalidates the set.
	refTables map[string]bool

	ids atomic.Pointer[idSet]
}

// Name returns the expression's declared name.
func (e *AuditExpression) Name() string { return e.Meta.Name }

// KeyOrdinal returns the partition-by column ordinal in the sensitive
// table.
func (e *AuditExpression) KeyOrdinal() int { return e.keyOrdinal }

// Cardinality returns the current number of sensitive IDs.
func (e *AuditExpression) Cardinality() int { return len(e.ids.Load().byKey) }

// Contains reports whether v is a sensitive ID. It is safe to call
// concurrently with maintenance.
func (e *AuditExpression) Contains(v value.Value) bool {
	if v.IsNull() {
		return false
	}
	return e.ids.Load().contains(v)
}

// refuteProbeCap bounds how many candidate IDs RefuteChunk will test
// individually against a chunk's Bloom filter. Beyond this the range
// overlap alone decides (conservatively: scan the chunk).
const refuteProbeCap = 64

// RefuteChunk implements plan.SketchPruner: it returns true only when
// no value the chunk may hold in column col can be in the sensitive-ID
// set. The proof obligation is one-sided — a false return merely
// scans the chunk; a true return must be certain, so every branch that
// cannot prove absence answers false. Reads an atomic ID-set snapshot;
// safe under concurrent maintenance.
func (e *AuditExpression) RefuteChunk(col int, ck plan.ChunkSketch) bool {
	set := e.ids.Load()
	if set == nil {
		return false
	}
	if len(set.byKey) == 0 {
		return true // empty watch set: no row anywhere is sensitive
	}
	sorted := set.sortedInts()
	if sorted == nil {
		return false // non-integral IDs: no sketch support
	}
	if _, nonNull := ck.NullCounts(col); nonNull == 0 {
		return true // all-null column values never match (NULL ∉ set)
	}
	lo, hi, ok := ck.Range(col)
	if !ok {
		return false
	}
	// Candidate IDs are those inside the chunk's zone-map envelope.
	from := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
	to := sort.Search(len(sorted), func(i int) bool { return sorted[i] > hi })
	if from == to {
		return true // no sensitive ID falls in [lo, hi]
	}
	if to-from > refuteProbeCap {
		return false
	}
	for i := from; i < to; i++ {
		if ck.MayContain(col, sorted[i]) {
			return false
		}
	}
	return true
}

// IDs returns a snapshot of the sensitive IDs (unordered).
func (e *AuditExpression) IDs() []value.Value {
	set := e.ids.Load().byKey
	out := make([]value.Value, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	return out
}

// Registry owns the compiled audit expressions of one database and
// keeps their materialized ID sets consistent with the data.
type Registry struct {
	cat   *catalog.Catalog
	store *storage.Store

	mu    sync.RWMutex
	exprs map[string]*AuditExpression
}

// NewRegistry creates an empty registry bound to a catalog and store.
func NewRegistry(cat *catalog.Catalog, store *storage.Store) *Registry {
	return &Registry{cat: cat, store: store, exprs: make(map[string]*AuditExpression)}
}

// Compile registers an audit expression declaration: it validates the
// sensitive table and partition-by key, rewrites the defining query to
// project only the key, materializes the initial ID set, and returns
// the compiled expression.
func (r *Registry) Compile(meta *catalog.AuditExprMeta, query *ast.Select) (*AuditExpression, error) {
	tbl, ok := r.cat.Table(meta.SensitiveTable)
	if !ok {
		return nil, fmt.Errorf("audit expression %s: sensitive table %q does not exist", meta.Name, meta.SensitiveTable)
	}
	keyOrd := tbl.ColumnIndex(meta.PartitionBy)
	if keyOrd < 0 {
		return nil, fmt.Errorf("audit expression %s: partition-by column %q not in table %s", meta.Name, meta.PartitionBy, tbl.Name)
	}
	if err := validateDefinition(query); err != nil {
		return nil, fmt.Errorf("audit expression %s: %w", meta.Name, err)
	}

	// Rewrite the defining query to SELECT DISTINCT <key> (the paper
	// stores audit expressions as materialized views of IDs).
	def := &ast.Select{
		Distinct: true,
		Items: []ast.SelectItem{{
			Expr: &ast.ColumnRef{Table: sensitiveQualifier(query, meta.SensitiveTable), Name: meta.PartitionBy},
		}},
		From:  query.From,
		Where: query.Where,
		Limit: -1,
	}

	e := &AuditExpression{
		Meta:       meta,
		defQuery:   def,
		keyOrdinal: keyOrd,
		refTables:  referencedTables(query),
	}
	if !e.refTables[strings.ToLower(meta.SensitiveTable)] {
		return nil, fmt.Errorf("audit expression %s: defining query does not read sensitive table %s", meta.Name, meta.SensitiveTable)
	}

	// Single-table fast path for incremental maintenance.
	if len(e.refTables) == 1 && len(query.From) == 1 && query.Where != nil && !hasSubquery(query.Where) {
		if bt, ok := query.From[0].(*ast.BaseTable); ok {
			schema := tableSchema(tbl, qualifierOf(bt))
			pred, err := plan.BuildScalar(&plan.Env{Catalog: r.cat}, schema, query.Where)
			if err == nil {
				e.singlePred = pred
			}
		}
	}

	if err := e.refresh(r.cat, r.store); err != nil {
		return nil, err
	}

	// Register a sensitive-ID sketch on the watched column so scan
	// kernels can elide audit probes for chunks that provably contain
	// no sensitive row. Idempotent; covers recovery recompiles too.
	if st, ok := r.store.Table(meta.SensitiveTable); ok {
		st.EnsureSketch(keyOrd)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(meta.Name)
	if _, dup := r.exprs[key]; dup {
		return nil, fmt.Errorf("audit expression %q already compiled", meta.Name)
	}
	r.exprs[key] = e
	return e, nil
}

// Drop removes a compiled expression.
func (r *Registry) Drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.exprs, strings.ToLower(name))
}

// Get returns the compiled expression by name.
func (r *Registry) Get(name string) (*AuditExpression, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.exprs[strings.ToLower(name)]
	return e, ok
}

// All returns every compiled expression.
func (r *Registry) All() []*AuditExpression {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*AuditExpression, 0, len(r.exprs))
	for _, e := range r.exprs {
		out = append(out, e)
	}
	return out
}

// Apply maintains materialized ID sets after a DML statement against
// table touched inserted/deleted rows (an update contributes to both
// slices). Expressions with a single-table definition update
// incrementally; join definitions re-materialize (standard view
// maintenance would be incremental too; wholesale refresh keeps the
// same observable behaviour, §IV-A.1).
func (r *Registry) Apply(table string, inserted, deleted []value.Row) error {
	key := strings.ToLower(table)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.exprs {
		if !e.refTables[key] {
			continue
		}
		if e.singlePred != nil && strings.EqualFold(table, e.Meta.SensitiveTable) {
			if err := e.applyIncremental(inserted, deleted); err != nil {
				return err
			}
			continue
		}
		if err := e.refresh(r.cat, r.store); err != nil {
			return err
		}
	}
	return nil
}

// RefreshAll re-materializes every expression's ID set from current
// data; transaction rollback uses it to discard the incremental
// maintenance the rolled-back statements performed.
func (r *Registry) RefreshAll() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.exprs {
		if err := e.refresh(r.cat, r.store); err != nil {
			return err
		}
	}
	return nil
}

// refresh re-materializes the ID set by running the defining query.
func (e *AuditExpression) refresh(cat *catalog.Catalog, store *storage.Store) error {
	node, err := plan.Build(&plan.Env{Catalog: cat}, e.defQuery)
	if err != nil {
		return fmt.Errorf("audit expression %s: %w", e.Meta.Name, err)
	}
	node = opt.Optimize(node)
	rows, err := exec.Run(node, exec.NewCtx(store))
	if err != nil {
		return fmt.Errorf("audit expression %s: %w", e.Meta.Name, err)
	}
	set := newIDSet(len(rows))
	for _, row := range rows {
		if row[0].IsNull() {
			continue
		}
		set.add(row[0])
	}
	e.ids.Store(set)
	return nil
}

// applyIncremental folds per-row changes into a fresh snapshot.
func (e *AuditExpression) applyIncremental(inserted, deleted []value.Row) error {
	set := e.ids.Load().clone()
	ctx := &plan.EvalCtx{}
	for _, row := range deleted {
		match, err := e.singlePred.Eval(ctx, row)
		if err != nil {
			return err
		}
		if value.TriFromValue(match) == value.True {
			set.remove(row[e.keyOrdinal])
		}
	}
	for _, row := range inserted {
		match, err := e.singlePred.Eval(ctx, row)
		if err != nil {
			return err
		}
		if value.TriFromValue(match) == value.True {
			id := row[e.keyOrdinal]
			if !id.IsNull() {
				set.add(id)
			}
		}
	}
	e.ids.Store(set)
	return nil
}

// validateDefinition enforces the paper's restrictions on audit
// expressions (§II-A): simple predicates without subqueries. (The
// key-/foreign-key restriction on joins is advisory; we accept any
// equi-join but reject subqueries outright.)
func validateDefinition(q *ast.Select) error {
	if q.GroupBy != nil || q.Having != nil || q.Limit >= 0 || len(q.OrderBy) > 0 || q.Distinct {
		return fmt.Errorf("defining query must be a plain SELECT-FROM-WHERE")
	}
	if q.Where != nil && hasSubquery(q.Where) {
		return fmt.Errorf("defining query must not contain subqueries")
	}
	if q.Where != nil && hasPlaceholder(q.Where) {
		return fmt.Errorf("defining query must not contain ? placeholders")
	}
	return nil
}

func hasPlaceholder(e ast.Expr) bool {
	found := false
	ast.WalkExprs(e, func(x ast.Expr) {
		if _, ok := x.(*ast.Placeholder); ok {
			found = true
		}
	})
	return found
}

func hasSubquery(e ast.Expr) bool {
	found := false
	ast.WalkExprs(e, func(x ast.Expr) {
		switch x.(type) {
		case *ast.Exists, *ast.InSubquery, *ast.ScalarSubquery:
			found = true
		}
	})
	return found
}

// sensitiveQualifier returns the alias under which the sensitive table
// appears in the defining query's FROM list (needed to project the
// partition key unambiguously when the definition joins other tables).
func sensitiveQualifier(q *ast.Select, table string) string {
	qual := ""
	var visit func(ref ast.TableRef)
	visit = func(ref ast.TableRef) {
		switch r := ref.(type) {
		case *ast.BaseTable:
			if strings.EqualFold(r.Name, table) && qual == "" {
				qual = qualifierOf(r)
			}
		case *ast.JoinRef:
			visit(r.Left)
			visit(r.Right)
		}
	}
	for _, ref := range q.From {
		visit(ref)
	}
	return qual
}

func qualifierOf(bt *ast.BaseTable) string {
	if bt.Alias != "" {
		return bt.Alias
	}
	return bt.Name
}

// referencedTables collects the lower-cased base tables of a query.
func referencedTables(q *ast.Select) map[string]bool {
	out := map[string]bool{}
	var visit func(ref ast.TableRef)
	visit = func(ref ast.TableRef) {
		switch r := ref.(type) {
		case *ast.BaseTable:
			out[strings.ToLower(r.Name)] = true
		case *ast.JoinRef:
			visit(r.Left)
			visit(r.Right)
		case *ast.SubqueryRef:
			for t := range referencedTables(r.Sub) {
				out[t] = true
			}
		}
	}
	for _, ref := range q.From {
		visit(ref)
	}
	return out
}

// tableSchema builds the plan schema of a base table under a
// qualifier.
func tableSchema(meta *catalog.TableMeta, qual string) plan.Schema {
	out := make(plan.Schema, len(meta.Columns))
	for i, c := range meta.Columns {
		out[i] = plan.ColInfo{Qual: qual, Name: c.Name, Kind: c.Type}
	}
	return out
}
