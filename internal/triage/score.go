package triage

import (
	"math"
	"sync"
)

// Scorer maps a trigger firing to a risk score. Implementations must
// be safe for concurrent sessions and must not allocate on the warm
// path: scoring runs inside the audited statement.
type Scorer interface {
	Score(user string, priority, cardinality int, unixNano int64) float64
}

const (
	// priorityWeight makes one declared PRIORITY step outweigh the
	// whole sensitivity term, so operator intent dominates heuristics.
	priorityWeight = 16.0
	// maxAnomaly caps the rate term: a user firing arbitrarily faster
	// than their history cannot drown out a higher declared priority.
	maxAnomaly = 8.0
	// ewmaAlpha smooths the per-user inter-firing gap estimate.
	ewmaAlpha = 0.2
)

// RiskModel is the default Scorer:
//
//	score = PRIORITY·16 + log2(1+|watch set|) + anomaly(user)
//
// where anomaly compares the user's current firing gap against an
// exponentially smoothed history of their own gaps — a user suddenly
// firing triggers much faster than their norm scores higher, per the
// budget-auditing heuristic of "Get Your Workload in Order"
// (arXiv 1801.07215). The first firings of a user score no anomaly:
// there is no history to deviate from.
type RiskModel struct {
	mu    sync.Mutex
	users map[string]*userRate
}

type userRate struct {
	lastNano int64
	ewmaGap  float64 // smoothed inter-firing gap, ns
}

// NewRiskModel returns an empty-history default scorer.
func NewRiskModel() *RiskModel {
	return &RiskModel{users: make(map[string]*userRate)}
}

// Score implements Scorer.
func (m *RiskModel) Score(user string, priority, cardinality int, unixNano int64) float64 {
	return float64(priority)*priorityWeight +
		math.Log2(1+float64(cardinality)) +
		m.anomaly(user, unixNano)
}

func (m *RiskModel) anomaly(user string, now int64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.users[user]
	if u == nil {
		u = &userRate{lastNano: now}
		m.users[user] = u
		return 0
	}
	gap := float64(now - u.lastNano)
	if gap < 1 {
		gap = 1
	}
	u.lastNano = now
	if u.ewmaGap == 0 {
		u.ewmaGap = gap
		return 0
	}
	ratio := u.ewmaGap / gap
	u.ewmaGap = ewmaAlpha*gap + (1-ewmaAlpha)*u.ewmaGap
	a := math.Log2(1 + ratio)
	if a < 0 {
		a = 0
	}
	if a > maxAnomaly {
		a = maxAnomaly
	}
	return a
}
