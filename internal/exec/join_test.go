package exec

import (
	"testing"

	"auditdb/internal/catalog"
	"auditdb/internal/value"
)

// nullableHarness adds two tables whose join-key columns contain SQL
// NULLs, for the NULL-semantics edge cases.
func nullableHarness(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	add := func(meta *catalog.TableMeta, rows []value.Row) {
		if err := h.cat.AddTable(meta); err != nil {
			t.Fatal(err)
		}
		tbl, err := h.store.Create(meta)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if _, err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(&catalog.TableMeta{
		Name: "la",
		Columns: []catalog.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "x", Type: value.KindInt},
		},
	}, []value.Row{
		{value.NewInt(1), value.NewInt(10)},
		{value.NewInt(2), value.Null},
		{value.NewInt(3), value.NewInt(30)},
	})
	add(&catalog.TableMeta{
		Name: "rb",
		Columns: []catalog.Column{
			{Name: "x", Type: value.KindInt},
			{Name: "z", Type: value.KindInt},
		},
	}, []value.Row{
		{value.NewInt(10), value.NewInt(100)},
		{value.Null, value.NewInt(200)},
		{value.Null, value.NewInt(300)},
	})
	return h
}

// TestHashJoinNullKeysBothSides: SQL equality is three-valued — a
// NULL key matches nothing, not even another NULL. The build side must
// drop NULL-key rows and the probe side must not look them up.
func TestHashJoinNullKeysBothSides(t *testing.T) {
	h := nullableHarness(t)
	rows := h.query(t, "SELECT la.id, rb.z FROM la, rb WHERE la.x = rb.x")
	if len(rows) != 1 || rows[0][0].Int() != 1 || rows[0][1].Int() != 100 {
		t.Errorf("inner join rows = %v, want [[1 100]]", rows)
	}
}

// TestLeftJoinNullKeyExtendsOnce: a left row with a NULL key has no
// matches, so a LEFT JOIN must emit it null-extended exactly once.
func TestLeftJoinNullKeyExtendsOnce(t *testing.T) {
	h := nullableHarness(t)
	rows := h.query(t, "SELECT la.id, rb.z FROM la LEFT JOIN rb ON la.x = rb.x ORDER BY la.id")
	if len(rows) != 3 {
		t.Fatalf("left join rows = %v, want 3 rows", rows)
	}
	// id=1 matches; id=2 (NULL key) and id=3 (no partner) null-extend.
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 100 {
		t.Errorf("row 0 = %v, want [1 100]", rows[0])
	}
	for i, id := range []int64{2, 3} {
		row := rows[i+1]
		if row[0].Int() != id || !row[1].IsNull() {
			t.Errorf("row %d = %v, want [%d NULL]", i+1, row, id)
		}
	}
}

// TestLeftJoinResidualRejectsAllMatches: when the equi-keys match but
// the residual predicate rejects every candidate pair, the left row
// counts as unmatched and must be null-extended exactly once — not
// zero times, not once per rejected candidate.
func TestLeftJoinResidualRejectsAllMatches(t *testing.T) {
	h := nullableHarness(t)
	// la.x = rb.x pairs (1,100) only; residual z > 1000 rejects it.
	rows := h.query(t, "SELECT la.id, rb.z FROM la LEFT JOIN rb ON la.x = rb.x AND rb.z > 1000 ORDER BY la.id")
	if len(rows) != 3 {
		t.Fatalf("left join rows = %v, want 3 rows", rows)
	}
	for i, row := range rows {
		if row[0].Int() != int64(i+1) || !row[1].IsNull() {
			t.Errorf("row %d = %v, want [%d NULL]", i, row, i+1)
		}
	}
}

// TestLeftJoinResidualAcrossBatchBoundary: the null-extension decision
// must survive batch boundaries — a left row whose candidate matches
// are rejected near the end of one output batch must not be
// null-extended again when the next batch resumes.
func TestLeftJoinResidualAcrossBatchBoundary(t *testing.T) {
	h := nullableHarness(t)
	n := mustPlan(t, h, "SELECT la.id, rb.z FROM la LEFT JOIN rb ON la.x = rb.x AND rb.z > 1000")
	it, err := Open(n, NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Pull through one-row batches to force operator state to persist
	// across the smallest possible batch boundary.
	b := NewBatch(1)
	var got []int64
	for {
		bn, err := nextBatch(it, b)
		if err != nil {
			t.Fatal(err)
		}
		if bn == 0 {
			break
		}
		for _, row := range b.Rows {
			if !row[1].IsNull() {
				t.Errorf("unexpected match %v", row)
			}
			got = append(got, row[0].Int())
		}
	}
	if len(got) != 3 {
		t.Errorf("rows = %v, want exactly one null extension per left row", got)
	}
}

// TestNestedLoopsFallbackNonEqui: a join with no equi-key conjunct
// must fall back to nested loops and evaluate the full condition per
// pair.
func TestNestedLoopsFallbackNonEqui(t *testing.T) {
	h := nullableHarness(t)
	rows := h.query(t, "SELECT la.id, rb.z FROM la, rb WHERE la.x < rb.z ORDER BY la.id, rb.z")
	// la.x=10 < {100,200,300}, la.x=NULL matches nothing, la.x=30 < {100,200,300}.
	want := [][2]int64{{1, 100}, {1, 200}, {1, 300}, {3, 100}, {3, 200}, {3, 300}}
	if len(rows) != len(want) {
		t.Fatalf("non-equi rows = %v, want %d rows", rows, len(want))
	}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Errorf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

// TestNestedLoopsLeftJoinNullExtension: the nested-loops path honors
// left-outer semantics too (non-equi ON condition).
func TestNestedLoopsLeftJoinNullExtension(t *testing.T) {
	h := nullableHarness(t)
	rows := h.query(t, "SELECT la.id, rb.z FROM la LEFT JOIN rb ON la.x > rb.z ORDER BY la.id")
	// No la.x exceeds any rb.z, so all three left rows null-extend once.
	if len(rows) != 3 {
		t.Fatalf("rows = %v, want 3", rows)
	}
	for i, row := range rows {
		if row[0].Int() != int64(i+1) || !row[1].IsNull() {
			t.Errorf("row %d = %v, want [%d NULL]", i, row, i+1)
		}
	}
}
