// Command benchaudit regenerates the paper's evaluation (§V) as
// printed tables: Figures 6–10 plus the §VI static-analysis study.
//
// Usage:
//
//	benchaudit [-sf 0.01] [-fig all|6|7|8|9|10|fga] [-mindur 200ms]
//
// Absolute timings differ from the paper's SQL Server testbed; the
// shapes (who wins, by what factor, where hcn diverges from offline)
// are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"auditdb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (0.01 = 1500 customers)")
	fig := flag.String("fig", "all", "which experiment: all, 6, 7, 8, 9, 10, fga")
	minDur := flag.Duration("mindur", 200*time.Millisecond, "minimum measurement window per timing point")
	triageBench := flag.Bool("triage", false, "run only the budgeted-triage overhead/overload benchmark")
	skippingBench := flag.Bool("skipping", false, "run only the audit-aware data-skipping benchmark")
	flag.Parse()

	fmt.Printf("# SELECT triggers for data auditing — evaluation reproduction\n")
	fmt.Printf("# TPC-H SF %.3f, audit expression: customers in segment %q\n\n",
		*sf, "BUILDING")

	start := time.Now()
	w, err := experiments.NewWorkbench(*sf)
	if err != nil {
		log.Fatalf("workbench: %v", err)
	}
	counts := w.Data.Counts()
	fmt.Printf("loaded: %d customers, %d orders, %d lineitems (%.1fs); audited IDs: %d\n\n",
		counts["customer"], counts["orders"], counts["lineitem"],
		time.Since(start).Seconds(), w.Expr.Cardinality())

	if *triageBench {
		runTriage(w, *minDur)
		return
	}
	if *skippingBench {
		runSkipping(w, *minDur)
		return
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("6") {
		runFig6(w)
	}
	if want("7") {
		runFig7(w, *minDur)
	}
	if want("8") {
		runFig8(w, *minDur)
	}
	if want("9") {
		runFig9(w)
	}
	if want("10") {
		runFig10(w, *minDur)
	}
	if want("fga") {
		runFGA(w)
	}
}

func table(header string, write func(tw *tabwriter.Writer)) {
	fmt.Println(header)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	write(tw)
	tw.Flush()
	fmt.Println()
}

var sweep = []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}

func runFig6(w *experiments.Workbench) {
	pts, err := w.Fig6(sweep, 0)
	if err != nil {
		log.Fatalf("fig 6: %v", err)
	}
	table("== Figure 6: micro-benchmark false positives (audit cardinality vs offline) ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "selectivity\toffline(accessedIDs)\tleaf-node(auditIDs)\thcn(auditIDs)\tleaf FP\thcn FP")
			for _, p := range pts {
				fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%d\t%d\t%d\n",
					p.Selectivity*100, p.Offline, p.Leaf, p.HCN, p.Leaf-p.Offline, p.HCN-p.Offline)
			}
		})
}

func runFig7(w *experiments.Workbench, minDur time.Duration) {
	pts, err := w.Fig7(sweep, 0, minDur)
	if err != nil {
		log.Fatalf("fig 7: %v", err)
	}
	table("== Figure 7: micro-benchmark overheads vs predicate selectivity ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "selectivity\tleaf overhead\thcn overhead\tleaf rows probed\thcn rows probed")
			for _, p := range pts {
				fmt.Fprintf(tw, "%.0f%%\t%+.1f%%\t%+.1f%%\t%d\t%d\n",
					p.Selectivity*100, p.LeafPct, p.HCNPct, p.LeafProbed, p.HCNProbed)
			}
		})
	fmt.Println("(rows probed = deterministic audit-operator work per execution;")
	fmt.Println(" wall-clock overheads are medians but remain noisy on shared hosts)")
	fmt.Println()
}

func runFig8(w *experiments.Workbench, minDur time.Duration) {
	nCust := len(w.Data.Customer)
	cards := []int{1}
	for c := 10; c < nCust; c *= 10 {
		cards = append(cards, c)
	}
	cards = append(cards, nCust)
	pts, err := w.Fig8(cards, minDur)
	if err != nil {
		log.Fatalf("fig 8: %v", err)
	}
	table("== Figure 8: hcn overhead vs audit-expression cardinality (40% selectivity) ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "audited customers\thcn overhead\trows probed")
			for _, p := range pts {
				fmt.Fprintf(tw, "%d\t%+.1f%%\t%d\n", p.Cardinality, p.HCNPct, p.Probed)
			}
		})
}

func runFig9(w *experiments.Workbench) {
	rows, err := w.Fig9()
	if err != nil {
		log.Fatalf("fig 9: %v", err)
	}
	table("== Figure 9: complex-query audit cardinalities (TPC-H customer workload) ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "query\toffline\thcn\tleaf-node\thcn FP\tnote")
			for _, r := range rows {
				note := ""
				if r.TopK && r.HCN > r.Offline {
					note = "top-k blocks pull-up"
				}
				fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
					r.Query, r.Offline, r.HCN, r.Leaf, r.HCN-r.Offline, note)
			}
		})
}

func runFig10(w *experiments.Workbench, minDur time.Duration) {
	rows, err := w.Fig10(minDur)
	if err != nil {
		log.Fatalf("fig 10: %v", err)
	}
	table("== Figure 10: hcn overheads on complex queries ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "query\thcn overhead")
			for _, r := range rows {
				fmt.Fprintf(tw, "%s\t%+.1f%%\n", r.Query, r.HCNPct)
			}
		})
}

func runFGA(w *experiments.Workbench) {
	rows, err := w.FGAStudy()
	if err != nil {
		log.Fatalf("fga: %v", err)
	}
	table("== §VI / Example 6.1: static analysis (Oracle FGA style) vs audit operators ==",
		func(tw *tabwriter.Writer) {
			fmt.Fprintln(tw, "query\tstatic analysis\thcn auditIDs\toffline accessedIDs")
			for _, r := range rows {
				verdict := "flagged"
				if !r.Flagged {
					verdict = "cleared"
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", r.Query, verdict, r.HCN, r.Offline)
			}
		})
	fmt.Println(strings.TrimSpace(`
Static analysis reasons only about declared predicates: it can clear a
query only when its predicate provably contradicts the audit expression
(re-run with Q3 parameterized to a different market segment to see it
cleared). Audit operators report per-tuple accesses instead.`))
}
