package tpch

import (
	"fmt"

	"auditdb/internal/engine"
)

// SchemaDDL is the TPC-H schema in the engine's dialect.
const SchemaDDL = `
CREATE TABLE region (
	r_regionkey INT PRIMARY KEY,
	r_name VARCHAR(25),
	r_comment VARCHAR(152)
);
CREATE TABLE nation (
	n_nationkey INT PRIMARY KEY,
	n_name VARCHAR(25),
	n_regionkey INT,
	n_comment VARCHAR(152)
);
CREATE TABLE supplier (
	s_suppkey INT PRIMARY KEY,
	s_name VARCHAR(25),
	s_address VARCHAR(40),
	s_nationkey INT,
	s_phone VARCHAR(15),
	s_acctbal DECIMAL(15,2),
	s_comment VARCHAR(101)
);
CREATE TABLE customer (
	c_custkey INT PRIMARY KEY,
	c_name VARCHAR(25),
	c_address VARCHAR(40),
	c_nationkey INT,
	c_phone VARCHAR(15),
	c_acctbal DECIMAL(15,2),
	c_mktsegment VARCHAR(10),
	c_comment VARCHAR(117)
);
CREATE TABLE part (
	p_partkey INT PRIMARY KEY,
	p_name VARCHAR(55),
	p_mfgr VARCHAR(25),
	p_brand VARCHAR(10),
	p_type VARCHAR(25),
	p_size INT,
	p_container VARCHAR(10),
	p_retailprice DECIMAL(15,2),
	p_comment VARCHAR(23)
);
CREATE TABLE partsupp (
	ps_partkey INT,
	ps_suppkey INT,
	ps_availqty INT,
	ps_supplycost DECIMAL(15,2),
	ps_comment VARCHAR(199),
	PRIMARY KEY (ps_partkey, ps_suppkey)
);
CREATE TABLE orders (
	o_orderkey INT PRIMARY KEY,
	o_custkey INT,
	o_orderstatus VARCHAR(1),
	o_totalprice DECIMAL(15,2),
	o_orderdate DATE,
	o_orderpriority VARCHAR(15),
	o_clerk VARCHAR(15),
	o_shippriority INT,
	o_comment VARCHAR(79)
);
CREATE TABLE lineitem (
	l_orderkey INT,
	l_partkey INT,
	l_suppkey INT,
	l_linenumber INT,
	l_quantity INT,
	l_extendedprice DECIMAL(15,2),
	l_discount DECIMAL(15,2),
	l_tax DECIMAL(15,2),
	l_returnflag VARCHAR(1),
	l_linestatus VARCHAR(1),
	l_shipdate DATE,
	l_commitdate DATE,
	l_receiptdate DATE,
	l_shipinstruct VARCHAR(25),
	l_shipmode VARCHAR(10),
	l_comment VARCHAR(44),
	PRIMARY KEY (l_orderkey, l_linenumber)
);
`

// Load creates the TPC-H schema in the engine and bulk-loads the data.
func Load(e *engine.Engine, d *Data) error {
	if _, err := e.ExecScript(SchemaDDL); err != nil {
		return fmt.Errorf("tpch schema: %w", err)
	}
	if err := e.LoadRows("region", d.Region); err != nil {
		return err
	}
	if err := e.LoadRows("nation", d.Nation); err != nil {
		return err
	}
	if err := e.LoadRows("supplier", d.Supplier); err != nil {
		return err
	}
	if err := e.LoadRows("customer", d.Customer); err != nil {
		return err
	}
	if err := e.LoadRows("part", d.Part); err != nil {
		return err
	}
	if err := e.LoadRows("partsupp", d.PartSupp); err != nil {
		return err
	}
	if err := e.LoadRows("orders", d.Orders); err != nil {
		return err
	}
	if err := e.LoadRows("lineitem", d.LineItem); err != nil {
		return err
	}
	return nil
}

// NewEngine generates data at the given scale factor and returns a
// loaded engine.
func NewEngine(cfg Config) (*engine.Engine, *Data, error) {
	d := Generate(cfg)
	e := engine.New()
	if err := Load(e, d); err != nil {
		return nil, nil, err
	}
	return e, d, nil
}
