package ast

import (
	"testing"

	"auditdb/internal/value"
)

func sel(items []SelectItem, from []TableRef, where Expr) *Select {
	return &Select{Items: items, From: from, Where: where, Limit: -1}
}

func TestRenderSelectBasic(t *testing.T) {
	s := sel(
		[]SelectItem{{Expr: &ColumnRef{Name: "a"}}, {Expr: &ColumnRef{Name: "b"}, Alias: "bb"}},
		[]TableRef{&BaseTable{Name: "t"}},
		&Binary{Op: OpGt, L: &ColumnRef{Name: "a"}, R: &Literal{Val: value.NewInt(3)}},
	)
	got := RenderSelect(s)
	want := "SELECT a, b AS bb FROM t WHERE (a > 3)"
	if got != want {
		t.Errorf("RenderSelect = %q, want %q", got, want)
	}
}

func TestRenderSelectFullClause(t *testing.T) {
	s := &Select{
		Distinct: true,
		Items:    []SelectItem{{Star: true}},
		From: []TableRef{&JoinRef{
			Kind:  JoinLeft,
			Left:  &BaseTable{Name: "a"},
			Right: &BaseTable{Name: "b", Alias: "bb"},
			On:    &Binary{Op: OpEq, L: &ColumnRef{Table: "a", Name: "x"}, R: &ColumnRef{Table: "bb", Name: "x"}},
		}},
		GroupBy: []Expr{&ColumnRef{Name: "g"}},
		Having:  &Binary{Op: OpGt, L: &FuncCall{Name: "COUNT", Star: true}, R: &Literal{Val: value.NewInt(1)}},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Name: "g"}, Desc: true}},
		Limit:   5,
	}
	got := RenderSelect(s)
	for _, frag := range []string{
		"SELECT DISTINCT *", "a LEFT JOIN b bb ON", "GROUP BY g",
		"HAVING (COUNT(*) > 1)", "ORDER BY g DESC", "LIMIT 5",
	} {
		if !contains(got, frag) {
			t.Errorf("RenderSelect missing %q:\n%s", frag, got)
		}
	}
}

func TestRenderStarTableAndSubquery(t *testing.T) {
	s := &Select{
		Items: []SelectItem{{Star: true, StarTable: "p"}},
		From: []TableRef{&SubqueryRef{
			Sub: sel([]SelectItem{{Expr: &ColumnRef{Name: "x"}}},
				[]TableRef{&BaseTable{Name: "t"}}, nil),
			Alias: "p",
		}},
		Limit: -1,
	}
	got := RenderSelect(s)
	want := "SELECT p.* FROM (SELECT x FROM t) AS p"
	if got != want {
		t.Errorf("RenderSelect = %q, want %q", got, want)
	}
}

func TestRenderAuditExpressionDDL(t *testing.T) {
	ddl := RenderAuditExpression(&CreateAuditExpression{
		Name: "Audit_Alice",
		Query: sel([]SelectItem{{Star: true}},
			[]TableRef{&BaseTable{Name: "Patients"}},
			&Binary{Op: OpEq, L: &ColumnRef{Name: "Name"}, R: &Literal{Val: value.NewString("Alice")}}),
		SensitiveTable: "Patients",
		PartitionBy:    "PatientID",
	})
	want := "CREATE AUDIT EXPRESSION Audit_Alice AS SELECT * FROM Patients WHERE (Name = 'Alice') FOR SENSITIVE TABLE Patients PARTITION BY PatientID"
	if ddl != want {
		t.Errorf("DDL = %q", ddl)
	}
}

func TestRenderNilSelect(t *testing.T) {
	if got := RenderSelect(nil); got == "" {
		t.Error("nil select should render a placeholder, not empty")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
