// Monitor: the paper's real-time feedback scenarios (§I): "find users
// that have accessed more than a given number of patient records with
// a particular disease" and "find all patient records accessed by each
// doctor ... ordered by the number of patients accessed".
//
// Instead of declaring a logging trigger, this example uses the
// OnAccess callback — the engine reports every audited access before
// results are returned — and keeps the tallies in Go, then also shows
// the same analytics in SQL over a trigger-maintained log.
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"sort"

	"auditdb"
)

func main() {
	db := auditdb.Open()
	if _, err := db.ExecScript(`
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'), (2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'), (4, 'Dave', 29, '98052'),
			(5, 'Erin', 62, '10001'), (6, 'Frank', 55, '10001');
		INSERT INTO Disease VALUES
			(1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer'), (6, 'cancer');
		CREATE AUDIT EXPRESSION Audit_Cancer AS
			SELECT P.* FROM Patients P, Disease D
			WHERE P.PatientID = D.PatientID AND Disease = 'cancer'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Cancer ON ACCESS TO Audit_Cancer AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`); err != nil {
		log.Fatal(err)
	}

	// Real-time tallies via the OnAccess callback.
	perUser := map[string]map[int64]bool{}
	db.OnAccess(func(ev auditdb.AccessEvent) {
		set := perUser[ev.User]
		if set == nil {
			set = map[int64]bool{}
			perUser[ev.User] = set
		}
		for _, id := range ev.IDs {
			set[id.Int()] = true
		}
		if len(set) == 3 {
			fmt.Printf("  !! real-time alert: %s has now touched %d distinct cancer records\n",
				ev.User, len(set))
		}
	})

	// Simulated clinician sessions.
	sessions := []struct{ user, sql string }{
		{"dr_mallory", "SELECT * FROM Patients WHERE Zip = '48109'"},
		{"dr_mallory", "SELECT * FROM Patients WHERE Name = 'Erin'"},
		{"dr_chen", "SELECT * FROM Patients WHERE Age > 50"},
		{"dr_mallory", "SELECT * FROM Patients WHERE Name = 'Frank'"},
		{"dr_chen", "SELECT * FROM Patients WHERE Name = 'Bob'"},
	}
	for _, s := range sessions {
		db.SetUser(s.user)
		fmt.Printf("%s: %s\n", s.user, s.sql)
		if _, err := db.Query(s.sql); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nusers by distinct sensitive records accessed (live tallies):")
	type tally struct {
		user string
		n    int
	}
	var tallies []tally
	for u, set := range perUser {
		tallies = append(tallies, tally{u, len(set)})
	}
	sort.Slice(tallies, func(i, j int) bool { return tallies[i].n > tallies[j].n })
	for _, t := range tallies {
		fmt.Printf("  %-12s %d\n", t.user, t.n)
	}

	// The same analytics in SQL over the trigger-maintained log — the
	// paper's "records accessed by each doctor, ordered by patients
	// accessed".
	fmt.Println("\nsame result from the audit log (SQL):")
	res, err := db.Query(`
		SELECT UserID, COUNT(DISTINCT PatientID) AS patients
		FROM Log GROUP BY UserID ORDER BY patients DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %s\n", row[0], row[1])
	}
}
