package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"auditdb/internal/client"
)

// TestSmoke builds and runs the real daemon with the healthcare demo
// preloaded on a random port, drives it through the Go client, asserts
// the Alice access is trigger-logged under the right user, then checks
// SIGTERM shuts it down cleanly.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "auditdbd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building auditdbd: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-demo", "-grace", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "auditdbd listening on 127.0.0.1:PORT".
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				addrCh <- fields[0]
				break
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not report a listen address")
	}

	c, err := client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetUser("dr_mallory"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT Name, Age FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "Alice" {
		t.Fatalf("demo query returned %v", res.Rows)
	}
	if res.Audited["Audit_Alice"] != 1 {
		t.Fatalf("Alice access not audited: %v", res.Audited)
	}

	logRes, err := c.Query("SELECT UserID, PatientID FROM Log")
	if err != nil {
		t.Fatal(err)
	}
	if len(logRes.Rows) != 1 {
		t.Fatalf("Log rows = %d, want 1", len(logRes.Rows))
	}
	if u := logRes.Rows[0][0].(string); u != "dr_mallory" {
		t.Fatalf("Alice access logged as %q, want dr_mallory", u)
	}
	if id := logRes.Rows[0][1].(int64); id != 1 {
		t.Fatalf("logged PatientID = %d, want 1", id)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["triggers_fired"] < 1 || stats["sessions"] < 1 {
		t.Fatalf("unexpected stats: %v", stats)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
