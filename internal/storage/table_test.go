package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"auditdb/internal/catalog"
	"auditdb/internal/value"
)

func patientsMeta() *catalog.TableMeta {
	return &catalog.TableMeta{
		Name: "Patients",
		Columns: []catalog.Column{
			{Name: "PatientID", Type: value.KindInt},
			{Name: "Name", Type: value.KindString},
			{Name: "Age", Type: value.KindInt},
		},
		PrimaryKey: []int{0},
	}
}

func row(id int64, name string, age int64) value.Row {
	return value.Row{value.NewInt(id), value.NewString(name), value.NewInt(age)}
}

func TestInsertGetDelete(t *testing.T) {
	tb := NewTable(patientsMeta())
	id, err := tb.Insert(row(1, "Alice", 30))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Get(id)
	if !ok || got[1].Str() != "Alice" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	old, err := tb.Delete(id)
	if err != nil || old[1].Str() != "Alice" {
		t.Fatalf("Delete = %v, %v", old, err)
	}
	if _, ok := tb.Get(id); ok {
		t.Error("row should be gone")
	}
	if tb.Len() != 0 {
		t.Errorf("Len after delete = %d", tb.Len())
	}
	if _, err := tb.Delete(id); err == nil {
		t.Error("double delete should fail")
	}
}

func TestInsertArityAndTypeErrors(t *testing.T) {
	tb := NewTable(patientsMeta())
	if _, err := tb.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := tb.Insert(value.Row{value.NewString("xx"), value.NewString("a"), value.NewInt(1)}); err == nil {
		t.Error("uncoercible type should fail")
	}
}

func TestInsertCoercesTypes(t *testing.T) {
	tb := NewTable(patientsMeta())
	id, err := tb.Insert(value.Row{value.NewString("7"), value.NewString("Bob"), value.NewFloat(41.0)})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(id)
	if got[0].Kind != value.KindInt || got[0].Int() != 7 {
		t.Errorf("pk not coerced: %v", got[0])
	}
	if got[2].Kind != value.KindInt || got[2].Int() != 41 {
		t.Errorf("age not coerced: %v", got[2])
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	tb := NewTable(patientsMeta())
	if _, err := tb.Insert(row(1, "Alice", 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(row(1, "Bob", 40)); err == nil {
		t.Error("duplicate pk should fail")
	}
	// After deleting, the key becomes reusable.
	id, _ := tb.LookupPK(value.Row{value.NewInt(1)})
	if _, err := tb.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(row(1, "Carol", 50)); err != nil {
		t.Errorf("pk should be reusable after delete: %v", err)
	}
}

func TestLookupPK(t *testing.T) {
	tb := NewTable(patientsMeta())
	want, _ := tb.Insert(row(42, "Alice", 30))
	got, ok := tb.LookupPK(value.Row{value.NewInt(42)})
	if !ok || got != want {
		t.Fatalf("LookupPK = %v, %v; want %v", got, ok, want)
	}
	if _, ok := tb.LookupPK(value.Row{value.NewInt(43)}); ok {
		t.Error("missing key should not be found")
	}
}

func TestUpdate(t *testing.T) {
	tb := NewTable(patientsMeta())
	id, _ := tb.Insert(row(1, "Alice", 30))
	old, err := tb.Update(id, row(1, "Alice", 31))
	if err != nil || old[2].Int() != 30 {
		t.Fatalf("Update = %v, %v", old, err)
	}
	got, _ := tb.Get(id)
	if got[2].Int() != 31 {
		t.Errorf("updated age = %v", got[2])
	}
}

func TestUpdatePKChange(t *testing.T) {
	tb := NewTable(patientsMeta())
	id1, _ := tb.Insert(row(1, "Alice", 30))
	if _, err := tb.Insert(row(2, "Bob", 40)); err != nil {
		t.Fatal(err)
	}
	// Changing pk to a taken value must fail and leave state intact.
	if _, err := tb.Update(id1, row(2, "Alice", 30)); err == nil {
		t.Fatal("pk collision on update should fail")
	}
	if got, ok := tb.LookupPK(value.Row{value.NewInt(1)}); !ok || got != id1 {
		t.Error("failed update must not disturb pk index")
	}
	// Changing pk to a free value moves the index entry.
	if _, err := tb.Update(id1, row(3, "Alice", 30)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.LookupPK(value.Row{value.NewInt(1)}); ok {
		t.Error("old pk should be gone")
	}
	if got, ok := tb.LookupPK(value.Row{value.NewInt(3)}); !ok || got != id1 {
		t.Error("new pk should resolve")
	}
}

func TestRestore(t *testing.T) {
	tb := NewTable(patientsMeta())
	id, _ := tb.Insert(row(1, "Alice", 30))
	old, _ := tb.Delete(id)
	if err := tb.Restore(id, old); err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Get(id)
	if !ok || got[1].Str() != "Alice" {
		t.Fatalf("restored row = %v, %v", got, ok)
	}
	if _, ok := tb.LookupPK(value.Row{value.NewInt(1)}); !ok {
		t.Error("pk index should see restored row")
	}
	if err := tb.Restore(id, old); err == nil {
		t.Error("restoring a live slot should fail")
	}
}

func TestSecondaryIndex(t *testing.T) {
	tb := NewTable(patientsMeta())
	for i := int64(0); i < 10; i++ {
		name := "Alice"
		if i%2 == 1 {
			name = "Bob"
		}
		if _, err := tb.Insert(row(i, name, 20+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.AddIndex("by_name", []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddIndex("by_name", []int{1}); err == nil {
		t.Error("duplicate index should fail")
	}
	ids, err := tb.IndexLookup("by_name", value.Row{value.NewString("Alice")})
	if err != nil || len(ids) != 5 {
		t.Fatalf("IndexLookup Alice = %v, %v", ids, err)
	}
	// Index maintenance on delete.
	if _, err := tb.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	ids, _ = tb.IndexLookup("by_name", value.Row{value.NewString("Alice")})
	if len(ids) != 4 {
		t.Errorf("after delete, Alice count = %d", len(ids))
	}
	// Index maintenance on update (Alice -> Bob).
	if _, err := tb.Update(ids[0], row(99, "Bob", 33)); err != nil {
		t.Fatal(err)
	}
	aids, _ := tb.IndexLookup("by_name", value.Row{value.NewString("Alice")})
	bids, _ := tb.IndexLookup("by_name", value.Row{value.NewString("Bob")})
	if len(aids) != 3 || len(bids) != 6 {
		t.Errorf("after update, Alice=%d Bob=%d", len(aids), len(bids))
	}
	if _, err := tb.IndexLookup("nope", value.Row{value.NewInt(1)}); err == nil {
		t.Error("missing index should error")
	}
}

func TestSnapshotEarlyStop(t *testing.T) {
	tb := NewTable(patientsMeta())
	for i := int64(0); i < 5; i++ {
		if _, err := tb.Insert(row(i, "x", i)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	tb.Snapshot(func(_ RowID, _ value.Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d rows", n)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(patientsMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(patientsMeta()); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, ok := s.Table("PATIENTS"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := s.Drop("patients"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("patients"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestMask(t *testing.T) {
	var nilMask *Mask
	if nilMask.Hidden("t", 0) || nilMask.HidesTable("t") {
		t.Error("nil mask must hide nothing")
	}
	m := NewMask()
	m.Hide("Patients", 3)
	if !m.Hidden("patients", 3) {
		t.Error("mask should be case-insensitive")
	}
	if m.Hidden("patients", 4) {
		t.Error("row 4 not hidden")
	}
	if !m.HidesTable("PATIENTS") || m.HidesTable("other") {
		t.Error("HidesTable wrong")
	}
	m.Unhide("patients", 3)
	if m.Hidden("patients", 3) || m.HidesTable("patients") {
		t.Error("unhide failed")
	}
}

func TestRowIDStability(t *testing.T) {
	// Property: row IDs never move; deleting other rows does not change
	// the mapping from ID to row contents.
	tb := NewTable(patientsMeta())
	ids := make([]RowID, 50)
	for i := int64(0); i < 50; i++ {
		id, err := tb.Insert(row(i, fmt.Sprintf("p%d", i), i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i < 50; i += 2 {
		if _, err := tb.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 50; i += 2 {
		got, ok := tb.Get(ids[i])
		if !ok || got[0].Int() != int64(i) {
			t.Fatalf("row %d moved: %v, %v", i, got, ok)
		}
	}
}

func TestInsertLookupQuick(t *testing.T) {
	// Property: inserting a set of distinct keys makes each key
	// resolvable via the pk index to a row holding that key.
	f := func(keys []int16) bool {
		tb := NewTable(patientsMeta())
		seen := map[int16]bool{}
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if _, err := tb.Insert(row(int64(k), "n", 1)); err != nil {
				return false
			}
		}
		for k := range seen {
			id, ok := tb.LookupPK(value.Row{value.NewInt(int64(k))})
			if !ok {
				return false
			}
			got, ok := tb.Get(id)
			if !ok || got[0].Int() != int64(k) {
				return false
			}
		}
		return tb.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
