package opt

import (
	"strings"
	"testing"

	"auditdb/internal/catalog"
	"auditdb/internal/exec"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	add := func(name string, cols ...catalog.Column) {
		if err := cat.AddTable(&catalog.TableMeta{Name: name, Columns: cols}); err != nil {
			t.Fatal(err)
		}
	}
	add("a",
		catalog.Column{Name: "id", Type: value.KindInt},
		catalog.Column{Name: "x", Type: value.KindInt},
	)
	add("b",
		catalog.Column{Name: "id", Type: value.KindInt},
		catalog.Column{Name: "y", Type: value.KindInt},
	)
	return cat
}

func optimized(t *testing.T, cat *catalog.Catalog, sql string) plan.Node {
	t.Helper()
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.Build(&plan.Env{Catalog: cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	return Optimize(n)
}

func findJoin(n plan.Node) *plan.Join {
	var j *plan.Join
	plan.Walk(n, func(x plan.Node) {
		if jj, ok := x.(*plan.Join); ok && j == nil {
			j = jj
		}
	})
	return j
}

func findScans(n plan.Node) []*plan.Scan {
	var out []*plan.Scan
	plan.Walk(n, func(x plan.Node) {
		if s, ok := x.(*plan.Scan); ok {
			out = append(out, s)
		}
	})
	return out
}

func TestPushdownIntoScan(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, "SELECT x FROM a WHERE x > 3 AND id = 1")
	// Both conjuncts land in the scan; no Filter survives.
	hasFilter := false
	plan.Walk(n, func(x plan.Node) {
		if _, ok := x.(*plan.Filter); ok {
			hasFilter = true
		}
	})
	if hasFilter {
		t.Errorf("filter should be fully pushed:\n%s", plan.Explain(n))
	}
	scans := findScans(n)
	if len(scans) != 1 || scans[0].Pushed == nil {
		t.Fatalf("scan predicate missing:\n%s", plan.Explain(n))
	}
}

func TestCommaJoinBecomesInnerHashJoin(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, "SELECT * FROM a, b WHERE a.id = b.id AND a.x > 1")
	j := findJoin(n)
	if j == nil || j.Kind != plan.JoinInner {
		t.Fatalf("join = %+v\n%s", j, plan.Explain(n))
	}
	if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
		t.Errorf("equi keys not extracted: %+v", j)
	}
	// The single-side predicate went into a's scan.
	for _, s := range findScans(n) {
		if s.Table == "a" && s.Pushed == nil {
			t.Errorf("a.x > 1 not pushed into scan:\n%s", plan.Explain(n))
		}
	}
}

func TestNonEquiJoinResidual(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, "SELECT * FROM a JOIN b ON a.id = b.id AND a.x < b.y")
	j := findJoin(n)
	if len(j.LeftKeys) != 1 {
		t.Fatalf("equi key missing: %+v", j)
	}
	if j.Residual == nil {
		t.Errorf("non-equi conjunct should stay as residual: %+v", j)
	}
}

func TestPureNonEquiJoinKeepsCond(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, "SELECT * FROM a JOIN b ON a.x < b.y")
	j := findJoin(n)
	if len(j.LeftKeys) != 0 || j.Cond == nil {
		t.Errorf("nested-loops join misconfigured: %+v", j)
	}
}

func TestLeftJoinRightPredicateNotPushed(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, `SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE b.y > 5`)
	// b.y > 5 over the join output must NOT be pushed into b's scan
	// (it would change null-extension); it stays as a filter above.
	hasFilter := false
	plan.Walk(n, func(x plan.Node) {
		if _, ok := x.(*plan.Filter); ok {
			hasFilter = true
		}
	})
	if !hasFilter {
		t.Errorf("where-filter over left join must survive:\n%s", plan.Explain(n))
	}
	for _, s := range findScans(n) {
		if s.Table == "b" && s.Pushed != nil {
			t.Errorf("predicate wrongly pushed into null-supplying side:\n%s", plan.Explain(n))
		}
	}
}

func TestLeftJoinLeftPredicatePushed(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, `SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE a.x > 5`)
	for _, s := range findScans(n) {
		if s.Table == "a" && s.Pushed == nil {
			t.Errorf("preserved-side predicate should push:\n%s", plan.Explain(n))
		}
	}
}

func TestConstantFolding(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, "SELECT x FROM a WHERE 1 = 1 AND x > 2")
	s := plan.Explain(n)
	if strings.Contains(s, "1 = 1") {
		t.Errorf("constant conjunct not folded:\n%s", s)
	}
}

func TestAuditNodeBlocksPushdown(t *testing.T) {
	cat := testCatalog(t)
	sel, err := parser.ParseQuery("SELECT x FROM a WHERE x > 3")
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.Build(&plan.Env{Catalog: cat}, sel)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-insert an audit operator between filter and scan, then
	// optimize: the predicate must stop above the audit operator.
	proj := n.(*plan.Project)
	filter := proj.Child.(*plan.Filter)
	scan := filter.Child
	filter.Child = &plan.Audit{Child: scan, Name: "X", IDIdx: 0, Sink: nopSink{}}
	out := Optimize(n)
	s := plan.Explain(out)
	// Predicate must not appear inside the Scan label.
	for _, sc := range findScans(out) {
		if sc.Pushed != nil {
			t.Errorf("predicate crossed the audit operator:\n%s", s)
		}
	}
	if !strings.Contains(s, "Audit(") {
		t.Errorf("audit operator lost:\n%s", s)
	}
}

type nopSink struct{}

func (nopSink) Observe(value.Value) {}

func TestOptimizerPreservesResultsProperty(t *testing.T) {
	// Optimization must never change results: checked end-to-end in
	// engine tests; here we check plan schemas are preserved.
	cat := testCatalog(t)
	queries := []string{
		"SELECT x FROM a WHERE x > 1",
		"SELECT * FROM a, b WHERE a.id = b.id",
		"SELECT a.x, b.y FROM a LEFT JOIN b ON a.id = b.id WHERE a.x > 0",
	}
	for _, q := range queries {
		sel, err := parser.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := plan.Build(&plan.Env{Catalog: cat}, sel)
		if err != nil {
			t.Fatal(err)
		}
		before := len(n.Schema())
		after := len(Optimize(n).Schema())
		if before != after {
			t.Errorf("%q: schema width changed %d -> %d", q, before, after)
		}
	}
}

func TestSubqueryPlansOptimized(t *testing.T) {
	cat := testCatalog(t)
	n := optimized(t, cat, `SELECT x FROM a WHERE id IN (SELECT id FROM b WHERE y > 2 AND y < 10)`)
	optimizedSub := false
	plan.Subplans(n, func(sq *plan.Subquery) {
		plan.Walk(sq.Plan, func(x plan.Node) {
			if s, ok := x.(*plan.Scan); ok && s.Pushed != nil {
				optimizedSub = true
			}
		})
	})
	if !optimizedSub {
		t.Errorf("subquery predicates not pushed:\n%s", plan.Explain(n))
	}
}

func TestPushdownShiftsComplexExprsToRightSide(t *testing.T) {
	cat := testCatalog(t)
	// Every conjunct references only b (the right side), so each must
	// be shifted and pushed into b's scan — covering shiftCols over
	// Between, InList, Case, Func, IsNull, Like and Concat nodes.
	n := optimized(t, cat, `SELECT * FROM a, b WHERE a.id = b.id
		AND b.y BETWEEN 1 AND 9
		AND b.y IN (1, 2, 3, 4, 5)
		AND CASE WHEN b.y > 2 THEN 1 ELSE 0 END = 1
		AND ABS(b.y) >= 0
		AND b.y IS NOT NULL`)
	for _, s := range findScans(n) {
		if s.Table == "b" && s.Pushed == nil {
			t.Fatalf("right-side conjuncts not pushed:\n%s", plan.Explain(n))
		}
	}
	// And no residual filter should remain above the join.
	plan.Walk(n, func(x plan.Node) {
		if _, ok := x.(*plan.Filter); ok {
			t.Errorf("filter survived full pushdown:\n%s", plan.Explain(n))
		}
	})
}

func TestPushdownExecutesCorrectly(t *testing.T) {
	// The shifted predicates must still evaluate correctly: build a
	// tiny store and compare against unoptimized execution semantics.
	cat := testCatalog(t)
	store := storage.NewStore()
	for _, meta := range cat.Tables() {
		tbl, err := store.Create(meta)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 6; i++ {
			if _, err := tbl.Insert(value.Row{value.NewInt(i), value.NewInt(i * 10)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	sql := `SELECT a.id FROM a, b WHERE a.id = b.id AND b.y BETWEEN 20 AND 40 AND b.y IN (20, 40)`
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	build := func() plan.Node {
		n, err := plan.Build(&plan.Env{Catalog: cat}, sel)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	plainRows, err := exec.Run(build(), exec.NewCtx(store))
	if err != nil {
		t.Fatal(err)
	}
	optRows, err := exec.Run(Optimize(build()), exec.NewCtx(store))
	if err != nil {
		t.Fatal(err)
	}
	if len(plainRows) != len(optRows) || len(optRows) != 2 {
		t.Fatalf("optimization changed results: %v vs %v", plainRows, optRows)
	}
}

func TestFoldFalseConjunctKept(t *testing.T) {
	cat := testCatalog(t)
	// A provably-false conjunct is not folded away (we only fold
	// TRUE); the query must still return nothing rather than error.
	n := optimized(t, cat, "SELECT x FROM a WHERE 1 = 2")
	s := plan.Explain(n)
	if !strings.Contains(s, "false") && !strings.Contains(s, "(1 = 2)") {
		t.Errorf("false predicate lost:\n%s", s)
	}
}
