package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// healthScript is newHealthDB's setup plus the audit expressions the
// shared-cache tests instrument against; both the cached engine and
// the uncached reference engine run it verbatim.
const auditedHealthScript = `
	CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
	CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
	INSERT INTO Patients VALUES
		(1, 'Alice', 34, '48109'),
		(2, 'Bob', 21, '48109'),
		(3, 'Carol', 47, '98052'),
		(4, 'Dave', 29, '98052'),
		(5, 'Erin', 62, '10001');
	INSERT INTO Disease VALUES
		(1, 'cancer'),
		(2, 'flu'),
		(3, 'flu'),
		(4, 'diabetes'),
		(5, 'cancer');
	CREATE AUDIT EXPRESSION Elderly AS
		SELECT * FROM Patients WHERE Age >= 45
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
	CREATE AUDIT EXPRESSION Midtown AS
		SELECT * FROM Patients WHERE Zip = '48109'
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
`

func newAuditedDB(t *testing.T, uncached bool) *Engine {
	t.Helper()
	e := New()
	e.disablePlanCache = uncached
	if _, err := e.ExecScript(auditedHealthScript); err != nil {
		t.Fatalf("setup: %v", err)
	}
	e.SetAuditAll(true)
	return e
}

// resultSig renders everything audit-relevant about a result — output
// schema, row values in order, and the full ACCESSED state — into one
// comparable string.
func resultSig(r *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for _, v := range row {
			b.WriteString(v.SQL())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	if r.Accessed != nil {
		for _, expr := range r.Accessed.Expressions() {
			b.WriteString(expr)
			b.WriteByte('=')
			for _, id := range r.Accessed.IDs(expr) {
				b.WriteString(id.SQL())
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestCanonCacheEquivalence runs a battery of SELECT shapes through
// the normalized fast path three times — cold, L1-warm, and from a
// second session that adopts the shared template — and demands rows,
// columns and ACCESSED sets byte-identical to an engine with both
// cache levels disabled.
func TestCanonCacheEquivalence(t *testing.T) {
	cached := newAuditedDB(t, false)
	ref := newAuditedDB(t, true)

	queries := []string{
		"SELECT Name FROM Patients WHERE PatientID = 2",
		"SELECT Name FROM Patients WHERE PatientID = 4",
		"SELECT Name, Age FROM Patients WHERE Age > 30 ORDER BY Name",
		"SELECT Name FROM Patients WHERE Zip = '48109' ORDER BY 1",
		"SELECT Name FROM Patients WHERE 1 = 1 ORDER BY Name",
		"SELECT Name FROM Patients WHERE 1 = 2 ORDER BY Name",
		"SELECT Name FROM Patients ORDER BY Age LIMIT 2",
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip ORDER BY 1",
		"SELECT Name FROM Patients WHERE Age > (SELECT AVG(Age) FROM Patients WHERE Zip = '98052') ORDER BY Name",
		"SELECT Name FROM Patients WHERE Age BETWEEN 25 AND 50 ORDER BY Name",
		"SELECT Name FROM Patients WHERE PatientID IN (1, 3, 5) ORDER BY Name",
		"SELECT Name FROM Patients WHERE Name = 'O''Brien'",
		"SELECT P.Name, D.Disease FROM Patients P, Disease D WHERE P.PatientID = D.PatientID AND D.Disease = 'flu' ORDER BY P.Name",
		"SELECT Name FROM Patients WHERE Age >= 45 AND Zip = '98052'",
	}

	sessions := []*Session{
		cached.DefaultSession(), // rounds 0-1: cold then L1-warm
		cached.DefaultSession(),
		cached.NewSession(), // round 2: shared-template adoption
	}
	for round, sess := range sessions {
		for _, q := range queries {
			got, err := sess.Exec(q)
			if err != nil {
				t.Fatalf("round %d: cached Exec(%q): %v", round, q, err)
			}
			want, err := ref.Exec(q)
			if err != nil {
				t.Fatalf("round %d: reference Exec(%q): %v", round, q, err)
			}
			if g, w := resultSig(got), resultSig(want); g != w {
				t.Fatalf("round %d: %q diverged\ncached:\n%s\nreference:\n%s", round, q, g, w)
			}
		}
	}

	// Error fidelity: a canonical text that parses but fails to plan
	// must fall back and report the same error as the raw path.
	badSQL := "SELECT Nope FROM Patients WHERE PatientID = 1"
	_, cerr := cached.Exec(badSQL)
	_, rerr := ref.Exec(badSQL)
	if cerr == nil || rerr == nil || cerr.Error() != rerr.Error() {
		t.Fatalf("error fidelity: cached %v, reference %v", cerr, rerr)
	}
}

// TestSharedCacheCrossSession pins the metric accounting of the
// two-level cache: the first execution of a shape is a shared miss,
// the same session's repeat is an L1 hit, and a second session's
// first execution adopts the shared template without replanning.
func TestSharedCacheCrossSession(t *testing.T) {
	e := newAuditedDB(t, false)
	sA := e.NewSession()
	sB := e.NewSession()
	snap := func(k string) int64 { return e.StatsSnapshot()[k] }

	misses0 := snap("plan_cache_shared_misses")
	hits0 := snap("plan_cache_shared_hits")
	l10 := snap("plan_cache_hits")

	if _, err := sA.Exec("SELECT Name FROM Patients WHERE PatientID = 1"); err != nil {
		t.Fatal(err)
	}
	if d := snap("plan_cache_shared_misses") - misses0; d != 1 {
		t.Fatalf("cold execution: shared misses = %d, want 1", d)
	}
	if d := snap("plan_cache_shared_hits") - hits0; d != 0 {
		t.Fatalf("cold execution: shared hits = %d, want 0", d)
	}

	// Same shape, different literal, same session: L1 hit, shared
	// cache untouched.
	if _, err := sA.Exec("SELECT Name FROM Patients WHERE PatientID = 3"); err != nil {
		t.Fatal(err)
	}
	if d := snap("plan_cache_hits") - l10; d != 1 {
		t.Fatalf("warm L1 execution: plan cache hits = %d, want 1", d)
	}
	if d := snap("plan_cache_shared_hits") - hits0; d != 0 {
		t.Fatalf("warm L1 execution: shared hits = %d, want 0", d)
	}

	// Same shape from a different session: adopted from the shared
	// cache, no new miss.
	res, err := sB.Exec("SELECT Name FROM Patients WHERE PatientID = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Erin" {
		t.Fatalf("adopted plan rows = %v", res.Rows)
	}
	if d := snap("plan_cache_shared_hits") - hits0; d != 1 {
		t.Fatalf("cross-session execution: shared hits = %d, want 1", d)
	}
	if d := snap("plan_cache_shared_misses") - misses0; d != 1 {
		t.Fatalf("cross-session execution: shared misses = %d, want 1 (no replan)", d)
	}
	if n := snap("plan_cache_shared_entries"); n < 1 {
		t.Fatalf("shared entries gauge = %d, want >= 1", n)
	}

	// The adopted plan still audits: Erin (age 62) is Elderly.
	if res.Accessed == nil || res.Accessed.Len("Elderly") != 1 {
		t.Fatalf("adopted plan lost audit instrumentation: %v", res.Accessed)
	}
}

// TestCanonCacheDDLInvalidation: DDL bumps the global catalog version,
// so both cache levels must drop warm plans. An audit expression
// created after a shape went warm has to be instrumented on the very
// next execution of that shape.
func TestCanonCacheDDLInvalidation(t *testing.T) {
	e := newHealthDB(t) // no audit expressions yet
	e.SetAuditAll(true)
	const q = "SELECT Name FROM Patients WHERE Age >= 60"
	for i := 0; i < 3; i++ { // cold + two warm hits
		r := mustExec(t, e, q)
		if r.Accessed != nil {
			t.Fatalf("execution %d: unexpected ACCESSED before any audit expression: %v", i, r.Accessed)
		}
	}
	mustExec(t, e, `CREATE AUDIT EXPRESSION Seniors AS
		SELECT * FROM Patients WHERE Age >= 60
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`)
	r := mustExec(t, e, q)
	if r.Accessed == nil || r.Accessed.Len("Seniors") != 1 {
		t.Fatalf("post-DDL execution served a stale plan: ACCESSED = %v", r.Accessed)
	}
	if ids := r.Accessed.IDs("Seniors"); len(ids) != 1 || ids[0].Int() != 5 {
		t.Fatalf("Seniors IDs = %v, want [5]", ids)
	}
}

// TestFoldSensitiveBypass: `WHERE 1 = 1` and `WHERE 1 = 2` normalize
// to the same canonical text but fold to different plans, so the shape
// must be remembered as bypass and each statement executed from its
// raw text — in every session, warm or cold.
func TestFoldSensitiveBypass(t *testing.T) {
	e := newAuditedDB(t, false)
	sB := e.NewSession()
	cases := []struct {
		sql  string
		rows int
	}{
		{"SELECT Name FROM Patients WHERE 1 = 1", 5},
		{"SELECT Name FROM Patients WHERE 1 = 2", 0},
		{"SELECT Name FROM Patients WHERE 2 = 2", 5},
	}
	for round := 0; round < 2; round++ {
		for _, c := range cases {
			for _, sess := range []*Session{e.DefaultSession(), sB} {
				r, err := sess.Exec(c.sql)
				if err != nil {
					t.Fatalf("Exec(%q): %v", c.sql, err)
				}
				if len(r.Rows) != c.rows {
					t.Fatalf("round %d: %q returned %d rows, want %d (bypass not honored)",
						round, c.sql, len(r.Rows), c.rows)
				}
			}
		}
	}
}

// TestSharedCacheWorkload is the end-to-end acceptance workload: 100
// distinct statement shapes, each executed 1000 times with varying
// literals across 8 concurrent sessions. The shared-cache hit rate
// must reach 99% and the audit trail must be byte-identical to the
// same per-session statement streams replayed serially on an engine
// with caching disabled.
func TestSharedCacheWorkload(t *testing.T) {
	shapes, reps := 100, 125 // 8 sessions * 125 = 1000 executions per shape
	if testing.Short() {
		shapes, reps = 20, 10
	}
	const nSessions = 8

	// Shape k is a SELECT with k+1 conjuncts; structure, not literal
	// values, is what distinguishes canonical texts.
	stmt := func(shape, rep int) string {
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT Name, Age FROM Patients WHERE PatientID >= %d", rep%5+1)
		for c := 0; c < shape; c++ {
			col := [...]string{"Age", "PatientID"}[c%2]
			fmt.Fprintf(&b, " AND %s >= %d", col, (rep+c)%7)
		}
		return b.String()
	}

	run := func(e *Engine, concurrent bool) []string {
		t.Helper()
		var mu sync.Mutex
		events := make(map[string][]string, nSessions)
		e.OnAccess(func(ev AccessEvent) {
			var b strings.Builder
			b.WriteString(ev.Expression)
			b.WriteByte('|')
			b.WriteString(ev.User)
			b.WriteByte('|')
			b.WriteString(ev.SQL)
			b.WriteByte('|')
			for _, id := range ev.IDs {
				b.WriteString(id.SQL())
				b.WriteByte(',')
			}
			mu.Lock()
			events[ev.User] = append(events[ev.User], b.String())
			mu.Unlock()
		})
		sessions := make([]*Session, nSessions)
		for i := range sessions {
			sessions[i] = e.NewSession()
			sessions[i].SetUser(fmt.Sprintf("u%d", i))
		}
		work := func(s *Session) error {
			for rep := 0; rep < reps; rep++ {
				for k := 0; k < shapes; k++ {
					if _, err := s.Exec(stmt(k, rep)); err != nil {
						return fmt.Errorf("Exec(%q): %w", stmt(k, rep), err)
					}
				}
			}
			return nil
		}
		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, nSessions)
			for i, s := range sessions {
				wg.Add(1)
				go func(i int, s *Session) {
					defer wg.Done()
					errs[i] = work(s)
				}(i, s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, s := range sessions {
				if err := work(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Event delivery is synchronous within a session, so each
		// user's subsequence is statement-ordered even under
		// concurrency; keying by user makes concurrent and serial runs
		// comparable. Within one statement the per-expression event
		// order follows Registry.All(), which is map-ordered — sort
		// each consecutive same-SQL run to canonicalize it.
		out := make([]string, 0, nSessions)
		for i := 0; i < nSessions; i++ {
			u := fmt.Sprintf("u%d", i)
			evs := events[u]
			sqlOf := func(line string) string { return strings.SplitN(line, "|", 4)[2] }
			for lo := 0; lo < len(evs); {
				hi := lo + 1
				for hi < len(evs) && sqlOf(evs[hi]) == sqlOf(evs[lo]) {
					hi++
				}
				sort.Strings(evs[lo:hi])
				lo = hi
			}
			out = append(out, u+":\n"+strings.Join(evs, "\n"))
		}
		return out
	}

	cached := newAuditedDB(t, false)
	before := cached.StatsSnapshot()
	got := run(cached, true)
	after := cached.StatsSnapshot()

	queries := after["queries"] - before["queries"]
	hits := (after["plan_cache_hits"] - before["plan_cache_hits"]) +
		(after["plan_cache_shared_hits"] - before["plan_cache_shared_hits"])
	if want := int64(nSessions * reps * shapes); queries != want {
		t.Fatalf("workload ran %d queries, want %d", queries, want)
	}
	rate := float64(hits) / float64(queries)
	t.Logf("workload: %d queries, %d cache hits (%.2f%%), %d shared entries",
		queries, hits, 100*rate, after["plan_cache_shared_entries"])
	// One cold plan per shape is the steady-state invariant; at full
	// scale that is a 99.9% hit rate (the >= 99% acceptance bound). In
	// short mode the same invariant yields a lower rate simply because
	// there are fewer repeats per shape. Sessions racing on a shape's
	// very first execution may each plan it (last store wins), so allow
	// one duplicate plan per shape of slack.
	if hits < queries-2*int64(shapes) {
		t.Fatalf("cache hits = %d of %d queries with %d shapes: shapes are being replanned",
			hits, queries, shapes)
	}
	if !testing.Short() && rate < 0.99 {
		t.Fatalf("cache hit rate = %.4f, want >= 0.99", rate)
	}

	ref := newAuditedDB(t, true)
	want := run(ref, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("audit trail diverged for session %d:\ncached:\n%.2000s\nreference:\n%.2000s",
				i, got[i], want[i])
		}
	}
}

// TestWarmExecAllocBudget gates the warm fast path's allocation count:
// normalize (0 allocs) + L1 lookup + clone-free execution must stay
// within a small fixed budget, an order of magnitude below the old
// parse-per-execution path's ~230 allocations.
func TestWarmExecAllocBudget(t *testing.T) {
	e := newAuditedDB(t, false)
	const q = "SELECT Name FROM Patients WHERE PatientID = 2"
	if _, err := e.Exec(q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Exec(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 48 {
		t.Fatalf("warm Exec allocates %.1f/op, want <= 48", allocs)
	}
}
