package ast

import (
	"fmt"
	"strings"
)

// RenderSelect reconstructs parseable SQL text for a query block. The
// engine uses it to store canonical single-statement DDL text in the
// catalog (dump/restore, static analysis) regardless of how the
// statement arrived (e.g. inside a multi-statement script).
func RenderSelect(s *Select) string {
	if s == nil {
		return "<nil select>"
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			b.WriteString(item.StarTable + ".*")
		case item.Star:
			b.WriteString("*")
		default:
			b.WriteString(item.Expr.String())
			if item.Alias != "" {
				b.WriteString(" AS " + item.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderTableRef(ref))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

func renderTableRef(ref TableRef) string {
	switch r := ref.(type) {
	case *BaseTable:
		if r.Alias != "" && !strings.EqualFold(r.Alias, r.Name) {
			return r.Name + " " + r.Alias
		}
		return r.Name
	case *JoinRef:
		out := renderTableRef(r.Left) + " " + r.Kind.String() + " " + renderTableRef(r.Right)
		if r.On != nil {
			out += " ON " + r.On.String()
		}
		return out
	case *SubqueryRef:
		return "(" + RenderSelect(r.Sub) + ") AS " + r.Alias
	default:
		return "<?>"
	}
}

// RenderAuditExpression reconstructs the CREATE AUDIT EXPRESSION DDL.
func RenderAuditExpression(s *CreateAuditExpression) string {
	out := fmt.Sprintf("CREATE AUDIT EXPRESSION %s AS %s FOR SENSITIVE TABLE %s PARTITION BY %s",
		s.Name, RenderSelect(s.Query), s.SensitiveTable, s.PartitionBy)
	if s.Priority != 0 {
		out += fmt.Sprintf(" PRIORITY %d", s.Priority)
	}
	return out
}
