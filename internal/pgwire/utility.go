package pgwire

import (
	"fmt"
	"strconv"
	"strings"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/value"
)

// utilityResult is the outcome of a SET/RESET/SHOW statement handled
// by the front door itself (the engine's SQL dialect has no session
// parameters; the line-JSON protocol sets them with "set" ops).
type utilityResult struct {
	tag   string
	cols  []string
	kinds []value.Kind
	rows  []value.Row
}

// serverVersion is what ParameterStatus and SHOW server_version
// report. Old enough that no client expects missing-from-us features,
// new enough that none refuses to talk.
const serverVersion = "13.0"

// tryUtility recognizes a single SET/RESET/SHOW statement and applies
// it to the session. handled=false means the statement is not a
// utility and must go to the engine. PostgreSQL drivers issue
// configuration SETs on connect (extra_float_digits, application_name,
// …); unknown parameters are accepted and ignored so every libpq
// client can get through the door, while the engine's own session
// knobs (workers, audit_all, placement) take effect.
func tryUtility(sess *engine.Session, sql string) (res *utilityResult, handled bool, err error) {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	s = strings.TrimSpace(s)
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, false, nil
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		return setUtility(sess, fields[1:])
	case "RESET":
		if len(fields) != 2 {
			return nil, false, nil
		}
		switch strings.ToLower(fields[1]) {
		case "workers":
			sess.SetWorkers(0)
		case "audit_all":
			sess.SetAuditAll(false)
		case "triage":
			sess.SetTriage(true)
		case "skipping":
			sess.SetSkipping(true)
		}
		return &utilityResult{tag: "RESET"}, true, nil
	case "SHOW":
		if len(fields) < 2 {
			return nil, false, nil
		}
		// SHOW TRACES, SHOW TRACE FOR <qid>, and SHOW AUDIT QUEUE /
		// VERDICTS are engine statements (the trace ring and triage queue
		// live in the engine), not session parameters; bare SHOW trace
		// still reports the session flag below.
		if strings.EqualFold(fields[1], "traces") ||
			strings.EqualFold(fields[1], "audit") ||
			(strings.EqualFold(fields[1], "trace") && len(fields) > 2) {
			return nil, false, nil
		}
		return showUtility(sess, strings.ToLower(strings.Join(fields[1:], "_")))
	}
	return nil, false, nil
}

func setUtility(sess *engine.Session, args []string) (*utilityResult, bool, error) {
	// SET [SESSION|LOCAL] name [TO|=] value — also "name=value" fused.
	if len(args) > 0 {
		switch strings.ToUpper(args[0]) {
		case "SESSION", "LOCAL":
			args = args[1:]
		}
	}
	joined := strings.Join(args, " ")
	var name, val string
	if eq := strings.Index(joined, "="); eq >= 0 {
		name, val = joined[:eq], joined[eq+1:]
	} else if len(args) >= 3 && strings.EqualFold(args[1], "TO") {
		name, val = args[0], strings.Join(args[2:], " ")
	} else if len(args) == 2 {
		name, val = args[0], args[1]
	} else {
		return nil, false, nil
	}
	name = strings.ToLower(strings.TrimSpace(name))
	val = strings.TrimSpace(val)
	val = strings.Trim(val, `'"`)

	ok := &utilityResult{tag: "SET"}
	switch name {
	case "workers":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, true, fmt.Errorf("parameter %q requires a non-negative integer: %q", name, val)
		}
		sess.SetWorkers(n)
	case "audit_all":
		switch strings.ToLower(val) {
		case "on", "true", "1":
			sess.SetAuditAll(true)
		case "off", "false", "0":
			sess.SetAuditAll(false)
		default:
			return nil, true, fmt.Errorf("parameter %q requires on or off: %q", name, val)
		}
	case "placement":
		switch strings.ToLower(val) {
		case "leaf":
			sess.SetHeuristic(core.LeafNode)
		case "hcn":
			sess.SetHeuristic(core.HighestCommutativeNode)
		case "highest":
			sess.SetHeuristic(core.HighestNode)
		default:
			return nil, true, fmt.Errorf("parameter %q requires leaf, hcn or highest: %q", name, val)
		}
	case "trace":
		switch strings.ToLower(val) {
		case "on", "true", "1":
			sess.SetTrace(true)
		case "off", "false", "0":
			sess.SetTrace(false)
		default:
			return nil, true, fmt.Errorf("parameter %q requires on or off: %q", name, val)
		}
	case "triage":
		switch strings.ToLower(val) {
		case "on", "true", "1":
			sess.SetTriage(true)
		case "off", "false", "0":
			sess.SetTriage(false)
		default:
			return nil, true, fmt.Errorf("parameter %q requires on or off: %q", name, val)
		}
	case "skipping":
		switch strings.ToLower(val) {
		case "on", "true", "1":
			sess.SetSkipping(true)
		case "off", "false", "0":
			sess.SetSkipping(false)
		default:
			return nil, true, fmt.Errorf("parameter %q requires on or off: %q", name, val)
		}
	default:
		// Driver boilerplate (extra_float_digits, application_name,
		// client_encoding, search_path, …): accept and ignore.
	}
	return ok, true, nil
}

func showUtility(sess *engine.Session, name string) (*utilityResult, bool, error) {
	var val string
	switch name {
	case "server_version":
		val = serverVersion
	case "server_encoding", "client_encoding":
		val = "UTF8"
	case "transaction_isolation", "transaction_isolation_level":
		// Honest: readers see writers' in-progress changes (DESIGN §9).
		val = "read uncommitted"
	case "standard_conforming_strings", "integer_datetimes":
		val = "on"
	case "datestyle":
		val = "ISO, MDY"
	case "timezone":
		val = "UTC"
	case "workers":
		val = strconv.Itoa(sess.Workers())
	case "audit_all":
		if sess.AuditAll() {
			val = "on"
		} else {
			val = "off"
		}
	case "placement":
		switch sess.Heuristic() {
		case core.LeafNode:
			val = "leaf"
		case core.HighestNode:
			val = "highest"
		default:
			val = "hcn"
		}
	case "trace":
		if sess.TraceOn() {
			val = "on"
		} else {
			val = "off"
		}
	case "triage":
		if sess.TriageOn() {
			val = "on"
		} else {
			val = "off"
		}
	case "skipping":
		if sess.SkippingOn() {
			val = "on"
		} else {
			val = "off"
		}
	default:
		return nil, true, fmt.Errorf("unrecognized configuration parameter %q", name)
	}
	return &utilityResult{
		tag:   "SHOW",
		cols:  []string{name},
		kinds: []value.Kind{value.KindString},
		rows:  []value.Row{{value.NewString(val)}},
	}, true, nil
}
