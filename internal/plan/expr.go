package plan

import (
	"fmt"
	"strings"
	"time"

	"auditdb/internal/value"
)

// Expr is a compiled, resolvable expression evaluated against a row.
type Expr interface {
	Eval(ctx *EvalCtx, row value.Row) (value.Value, error)
	// String renders the compiled expression for plan display.
	String() string
}

// EvalCtx carries per-execution state needed by expressions: the outer
// row stack for correlated subqueries, session functions, the subquery
// runner installed by the executor, and a cache for uncorrelated
// subquery results.
type EvalCtx struct {
	// Outer is the stack of rows from enclosing queries; Outer[len-1]
	// is the immediately enclosing row.
	Outer []value.Row
	// Session supplies NOW()/USERID()/SQLTEXT() values.
	Session SessionInfo
	// RunSubquery executes a subplan and returns all of its rows. The
	// executor installs it; a nil RunSubquery makes subqueries error.
	RunSubquery func(n Node, ctx *EvalCtx) ([]value.Row, error)
	// Params holds positional parameter values for prepared statements.
	Params []value.Value

	subqCache map[Node][]value.Row
}

// SessionInfo provides values for session-scoped SQL functions.
type SessionInfo struct {
	User string
	SQL  string
	Now  time.Time
}

// PushOuter pushes a row onto the correlation stack.
func (c *EvalCtx) PushOuter(row value.Row) { c.Outer = append(c.Outer, row) }

// PopOuter removes the top of the correlation stack.
func (c *EvalCtx) PopOuter() { c.Outer = c.Outer[:len(c.Outer)-1] }

// ---- Leaf expressions ----

// Col reads column Idx of the current row.
type Col struct {
	Idx  int
	Name string // display only
}

// Eval implements Expr.
func (e *Col) Eval(_ *EvalCtx, row value.Row) (value.Value, error) {
	if e.Idx >= len(row) {
		return value.Null, fmt.Errorf("column ordinal %d out of range (row has %d)", e.Idx, len(row))
	}
	return row[e.Idx], nil
}

func (e *Col) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("#%d", e.Idx)
}

// Outer reads a column from an enclosing query's current row; Up=1 is
// the immediate parent.
type Outer struct {
	Up   int
	Idx  int
	Name string
}

// Eval implements Expr.
func (e *Outer) Eval(ctx *EvalCtx, _ value.Row) (value.Value, error) {
	n := len(ctx.Outer)
	if e.Up <= 0 || e.Up > n {
		return value.Null, fmt.Errorf("correlated reference %s has no outer row (depth %d of %d)", e.Name, e.Up, n)
	}
	row := ctx.Outer[n-e.Up]
	if e.Idx >= len(row) {
		return value.Null, fmt.Errorf("outer column ordinal %d out of range", e.Idx)
	}
	return row[e.Idx], nil
}

func (e *Outer) String() string { return "outer:" + e.Name }

// Const is a literal value.
type Const struct {
	V value.Value
}

// Eval implements Expr.
func (e *Const) Eval(_ *EvalCtx, _ value.Row) (value.Value, error) { return e.V, nil }

func (e *Const) String() string { return e.V.SQL() }

// Param reads positional parameter Idx from the evaluation context
// (prepared statements).
type Param struct {
	Idx int
}

// Eval implements Expr.
func (e *Param) Eval(ctx *EvalCtx, _ value.Row) (value.Value, error) {
	if e.Idx < 0 || e.Idx >= len(ctx.Params) {
		return value.Null, fmt.Errorf("parameter $%d not bound (%d given)", e.Idx+1, len(ctx.Params))
	}
	return ctx.Params[e.Idx], nil
}

func (e *Param) String() string { return fmt.Sprintf("$%d", e.Idx+1) }

// ---- Operators ----

// CmpOp enumerates comparison operators for compiled comparisons.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Cmp compares two expressions with SQL NULL semantics.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (e *Cmp) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	c, ok := value.CompareSQL(l, r)
	if !ok {
		return value.Null, nil
	}
	var b bool
	switch e.Op {
	case CmpEq:
		b = c == 0
	case CmpNe:
		b = c != 0
	case CmpLt:
		b = c < 0
	case CmpLe:
		b = c <= 0
	case CmpGt:
		b = c > 0
	case CmpGe:
		b = c >= 0
	}
	return value.NewBool(b), nil
}

func (e *Cmp) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// And is three-valued conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (e *And) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	lt := value.TriFromValue(l)
	if lt == value.False {
		return value.NewBool(false), nil
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return lt.And(value.TriFromValue(r)).Value(), nil
}

func (e *And) String() string { return "(" + e.L.String() + " AND " + e.R.String() + ")" }

// Or is three-valued disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (e *Or) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	lt := value.TriFromValue(l)
	if lt == value.True {
		return value.NewBool(true), nil
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return lt.Or(value.TriFromValue(r)).Value(), nil
}

func (e *Or) String() string { return "(" + e.L.String() + " OR " + e.R.String() + ")" }

// Not is three-valued negation.
type Not struct{ X Expr }

// Eval implements Expr.
func (e *Not) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	x, err := e.X.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return value.TriFromValue(x).Not().Value(), nil
}

func (e *Not) String() string { return "(NOT " + e.X.String() + ")" }

// Arith applies +,-,*,/,%.
type Arith struct {
	Op   byte
	L, R Expr
}

// Eval implements Expr.
func (e *Arith) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return value.Arith(e.Op, l, r)
}

func (e *Arith) String() string {
	return fmt.Sprintf("(%s %c %s)", e.L.String(), e.Op, e.R.String())
}

// Neg is numeric negation.
type Neg struct{ X Expr }

// Eval implements Expr.
func (e *Neg) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	x, err := e.X.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return value.Neg(x)
}

func (e *Neg) String() string { return "(-" + e.X.String() + ")" }

// Concat is string concatenation (||); NULL operands yield NULL.
type Concat struct{ L, R Expr }

// Eval implements Expr.
func (e *Concat) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	return value.NewString(l.String() + r.String()), nil
}

func (e *Concat) String() string { return "(" + e.L.String() + " || " + e.R.String() + ")" }

// Like matches L against pattern R.
type Like struct{ L, R Expr }

// Eval implements Expr.
func (e *Like) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	l, err := e.L.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	r, err := e.R.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	return value.NewBool(value.Like(l.String(), r.Str())), nil
}

func (e *Like) String() string { return "(" + e.L.String() + " LIKE " + e.R.String() + ")" }

// IsNull tests for NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Eval implements Expr.
func (e *IsNull) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	x, err := e.X.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool(x.IsNull() != e.Negate), nil
}

func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// Between tests Lo <= X <= Hi with NULL semantics.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// Eval implements Expr.
func (e *Between) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	x, err := e.X.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	lo, err := e.Lo.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	hi, err := e.Hi.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	c1, ok1 := value.CompareSQL(lo, x)
	c2, ok2 := value.CompareSQL(x, hi)
	if !ok1 || !ok2 {
		return value.Null, nil
	}
	in := c1 <= 0 && c2 <= 0
	return value.NewBool(in != e.Negate), nil
}

func (e *Between) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// InList tests membership in an expression list with SQL NULL
// semantics.
type InList struct {
	X      Expr
	List   []Expr
	Negate bool
}

// Eval implements Expr.
func (e *InList) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	x, err := e.X.Eval(ctx, row)
	if err != nil {
		return value.Null, err
	}
	if x.IsNull() {
		return value.Null, nil
	}
	sawNull := false
	for _, item := range e.List {
		v, err := item.Eval(ctx, row)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if value.Compare(x, v) == 0 {
			return value.NewBool(!e.Negate), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.NewBool(e.Negate), nil
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// Case evaluates CASE expressions (searched when Operand is nil).
type Case struct {
	Operand Expr
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one arm of a Case.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Eval implements Expr.
func (e *Case) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	var operand value.Value
	if e.Operand != nil {
		v, err := e.Operand.Eval(ctx, row)
		if err != nil {
			return value.Null, err
		}
		operand = v
	}
	for _, w := range e.Whens {
		c, err := w.Cond.Eval(ctx, row)
		if err != nil {
			return value.Null, err
		}
		matched := false
		if e.Operand != nil {
			cmp, ok := value.CompareSQL(operand, c)
			matched = ok && cmp == 0
		} else {
			matched = value.TriFromValue(c) == value.True
		}
		if matched {
			return w.Result.Eval(ctx, row)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(ctx, row)
	}
	return value.Null, nil
}

func (e *Case) String() string { return "CASE..." }

// ---- Subqueries ----

// SubqKind distinguishes the three subquery expression forms.
type SubqKind uint8

// Subquery kinds.
const (
	SubqExists SubqKind = iota
	SubqIn
	SubqScalar
)

// Subquery evaluates EXISTS / IN / scalar subqueries. For correlated
// subqueries the current row is pushed onto the context's outer stack
// before the subplan runs. Uncorrelated results are cached per
// execution context.
type Subquery struct {
	Kind       SubqKind
	Plan       Node
	Probe      Expr // for IN
	Negate     bool
	Correlated bool
}

// Eval implements Expr.
func (e *Subquery) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	if ctx.RunSubquery == nil {
		return value.Null, fmt.Errorf("subquery evaluation requires an executor")
	}
	var rows []value.Row
	if !e.Correlated {
		if ctx.subqCache == nil {
			ctx.subqCache = make(map[Node][]value.Row)
		}
		if cached, ok := ctx.subqCache[e.Plan]; ok {
			rows = cached
		} else {
			r, err := ctx.RunSubquery(e.Plan, ctx)
			if err != nil {
				return value.Null, err
			}
			ctx.subqCache[e.Plan] = r
			rows = r
		}
	} else {
		ctx.PushOuter(row)
		r, err := ctx.RunSubquery(e.Plan, ctx)
		ctx.PopOuter()
		if err != nil {
			return value.Null, err
		}
		rows = r
	}
	switch e.Kind {
	case SubqExists:
		return value.NewBool((len(rows) > 0) != e.Negate), nil
	case SubqScalar:
		if len(rows) == 0 {
			return value.Null, nil
		}
		if len(rows) > 1 {
			return value.Null, fmt.Errorf("scalar subquery returned %d rows", len(rows))
		}
		if len(rows[0]) != 1 {
			return value.Null, fmt.Errorf("scalar subquery must return one column")
		}
		return rows[0][0], nil
	case SubqIn:
		x, err := e.Probe.Eval(ctx, row)
		if err != nil {
			return value.Null, err
		}
		if x.IsNull() {
			return value.Null, nil
		}
		sawNull := false
		for _, r := range rows {
			if len(r) != 1 {
				return value.Null, fmt.Errorf("IN subquery must return one column")
			}
			if r[0].IsNull() {
				sawNull = true
				continue
			}
			if value.Compare(x, r[0]) == 0 {
				return value.NewBool(!e.Negate), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.NewBool(e.Negate), nil
	}
	return value.Null, fmt.Errorf("unknown subquery kind %d", e.Kind)
}

func (e *Subquery) String() string {
	switch e.Kind {
	case SubqExists:
		return "EXISTS(<subplan>)"
	case SubqIn:
		return "(" + e.Probe.String() + " IN <subplan>)"
	default:
		return "(<subplan>)"
	}
}
