package engine

import (
	"auditdb/internal/core"
	"auditdb/internal/plan"
)

// Session-scoped prepared-plan cache. A SELECT's physical plan depends
// only on its SQL text, the session knobs that steer planning
// (placement heuristic, audit-all, worker budget) and the catalog
// version — parameters are evaluated at open time, so one cached plan
// serves every binding of a prepared statement. Caching per session
// keeps the cache lock-free (a Session is single-goroutine by
// contract) and makes invalidation trivial: DDL bumps the engine's
// global version and stale entries fall out lazily on next lookup.

// planCacheKey identifies one plannable (SQL, session-knob) point.
type planCacheKey struct {
	sql       string
	heuristic core.Heuristic
	auditAll  bool
	workers   int
}

// cachedPlan is a fully planned, instrumented and (possibly)
// parallelized SELECT, minus the per-execution state: ACCESSED is
// recreated and probe sinks rebound on every hit.
type cachedPlan struct {
	root         plan.Node
	targets      []*core.AuditExpression
	conservative bool
	hasAudit     bool
	parallel     bool
	version      int64 // engine ddlVersion at plan time
}

// planCacheCap bounds one session's cache. Eviction is wholesale: a
// session cycling through more than this many distinct texts is not a
// repeat-heavy workload, and wholesale reset is cheaper than LRU
// bookkeeping on the hit path.
const planCacheCap = 128

// cachedPlan returns the session's cached plan for key if present and
// still valid against the current catalog version; stale entries are
// dropped on sight.
func (s *Session) cachedPlan(key planCacheKey, version int64) *cachedPlan {
	s.lock()
	defer s.unlock()
	cp, ok := s.planCache[key]
	if !ok {
		return nil
	}
	if cp.version != version {
		delete(s.planCache, key)
		return nil
	}
	return cp
}

// storePlan caches a freshly planned SELECT for the session.
func (s *Session) storePlan(key planCacheKey, cp *cachedPlan) {
	s.lock()
	defer s.unlock()
	if s.planCache == nil {
		s.planCache = make(map[planCacheKey]*cachedPlan)
	}
	if len(s.planCache) >= planCacheCap {
		s.planCache = make(map[planCacheKey]*cachedPlan)
	}
	s.planCache[key] = cp
}

// rebindProbes points every audit operator in a cached plan (main tree
// and all subquery blocks) at a fresh Probe bound to this execution's
// ACCESSED state. Like core.Instrument, all audit operators for one
// expression share one Probe, so the first-seen dedup cache spans the
// whole query exactly as it does on a fresh plan.
func rebindProbes(root plan.Node, acc *core.Accessed) {
	probes := make(map[*core.AuditExpression]*core.Probe)
	rebind(root, acc, probes)
}

func rebind(root plan.Node, acc *core.Accessed, probes map[*core.AuditExpression]*core.Probe) {
	plan.Walk(root, func(n plan.Node) {
		a, ok := n.(*plan.Audit)
		if !ok {
			return
		}
		old, ok := a.Sink.(*core.Probe)
		if !ok {
			return
		}
		p, ok := probes[old.Expr]
		if !ok {
			p = &core.Probe{Expr: old.Expr, Acc: acc}
			probes[old.Expr] = p
		}
		a.Sink = p
	})
	plan.Subplans(root, func(sq *plan.Subquery) {
		rebind(sq.Plan, acc, probes)
	})
}

// planIsParallel reports whether the parallelizer actually rewrote the
// plan — a Gather exchange or a two-phase aggregate anywhere in it.
func planIsParallel(root plan.Node) bool {
	parallel := false
	plan.Walk(root, func(n plan.Node) {
		switch x := n.(type) {
		case *plan.Gather:
			parallel = true
		case *plan.Aggregate:
			if x.Parallel {
				parallel = true
			}
		}
	})
	return parallel
}
