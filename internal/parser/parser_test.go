package parser

import (
	"testing"

	"auditdb/internal/ast"
	"auditdb/internal/value"
)

func mustQuery(t *testing.T, sql string) *ast.Select {
	t.Helper()
	q, err := ParseQuery(sql)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", sql, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustQuery(t, "SELECT name, age FROM patients WHERE age > 30")
	if len(q.Items) != 2 || q.Items[0].Expr.(*ast.ColumnRef).Name != "name" {
		t.Errorf("items = %+v", q.Items)
	}
	bt := q.From[0].(*ast.BaseTable)
	if bt.Name != "patients" {
		t.Errorf("from = %+v", bt)
	}
	bin := q.Where.(*ast.Binary)
	if bin.Op != ast.OpGt {
		t.Errorf("where op = %v", bin.Op)
	}
}

func TestParseStar(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM t")
	if !q.Items[0].Star {
		t.Error("expected star item")
	}
	q = mustQuery(t, "SELECT p.* FROM patients p")
	if !q.Items[0].Star || q.Items[0].StarTable != "p" {
		t.Errorf("qualified star = %+v", q.Items[0])
	}
}

func TestParseAliases(t *testing.T) {
	q := mustQuery(t, "SELECT c_name AS cname, c_age age FROM customer AS c")
	if q.Items[0].Alias != "cname" || q.Items[1].Alias != "age" {
		t.Errorf("aliases = %+v", q.Items)
	}
	if q.From[0].(*ast.BaseTable).Alias != "c" {
		t.Errorf("table alias = %+v", q.From[0])
	}
}

func TestParseJoins(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y`)
	j := q.From[0].(*ast.JoinRef)
	if j.Kind != ast.JoinLeft {
		t.Errorf("outer join kind = %v", j.Kind)
	}
	inner := j.Left.(*ast.JoinRef)
	if inner.Kind != ast.JoinInner || inner.On == nil {
		t.Errorf("inner join = %+v", inner)
	}
}

func TestParseCommaJoin(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM orders, customer WHERE c_custkey = o_custkey")
	if len(q.From) != 2 {
		t.Errorf("from list length = %d", len(q.From))
	}
}

func TestParseCrossJoin(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM a CROSS JOIN b")
	j := q.From[0].(*ast.JoinRef)
	if j.Kind != ast.JoinCross || j.On != nil {
		t.Errorf("cross join = %+v", j)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	q := mustQuery(t, `SELECT age, COUNT(*) AS n FROM patients
		GROUP BY age HAVING COUNT(*) >= 2
		ORDER BY n DESC, age ASC LIMIT 10`)
	if len(q.GroupBy) != 1 || q.Having == nil {
		t.Errorf("group/having = %+v %+v", q.GroupBy, q.Having)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustQuery(t, "SELECT DISTINCT name FROM patients")
	if !q.Distinct {
		t.Error("distinct flag lost")
	}
}

func TestParseSubqueries(t *testing.T) {
	q := mustQuery(t, `SELECT 1 FROM patients WHERE exists
		(SELECT * FROM disease d WHERE d.pid = patients.id)`)
	ex, ok := q.Where.(*ast.Exists)
	if !ok || ex.Sub == nil {
		t.Fatalf("where = %T", q.Where)
	}

	q = mustQuery(t, `SELECT * FROM p WHERE name IN (SELECT name FROM p2)`)
	in, ok := q.Where.(*ast.InSubquery)
	if !ok || in.Negate {
		t.Fatalf("where = %T", q.Where)
	}

	q = mustQuery(t, `SELECT * FROM p WHERE age > (SELECT AVG(age) FROM p)`)
	bin := q.Where.(*ast.Binary)
	if _, ok := bin.R.(*ast.ScalarSubquery); !ok {
		t.Fatalf("scalar subquery = %T", bin.R)
	}
}

func TestParseDerivedTable(t *testing.T) {
	q := mustQuery(t, `SELECT c_count, COUNT(*) FROM
		(SELECT c_custkey, COUNT(o_orderkey) c_count FROM customer, orders GROUP BY c_custkey) AS co
		GROUP BY c_count`)
	sub, ok := q.From[0].(*ast.SubqueryRef)
	if !ok || sub.Alias != "co" {
		t.Fatalf("derived table = %+v", q.From[0])
	}
	if _, err := ParseQuery("SELECT * FROM (SELECT 1)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseInListAndBetweenAndLike(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)
		AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3
		AND e LIKE '%x%' AND f NOT LIKE 'y%'`)
	// Walk the conjunction tree and count node types.
	var inCount, betweenCount, likeCount int
	ast.WalkExprs(q.Where, func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.InList:
			inCount++
		case *ast.Between:
			betweenCount++
		case *ast.Binary:
			if x.Op == ast.OpLike {
				likeCount++
			}
		}
	})
	if inCount != 2 || betweenCount != 2 || likeCount != 2 {
		t.Errorf("in=%d between=%d like=%d", inCount, betweenCount, likeCount)
	}
}

func TestParseIsNull(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
	bin := q.Where.(*ast.Binary)
	l := bin.L.(*ast.IsNull)
	r := bin.R.(*ast.IsNull)
	if l.Negate || !r.Negate {
		t.Errorf("isnull = %+v %+v", l, r)
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustQuery(t, "SELECT 1 + 2 * 3 FROM t")
	add := q.Items[0].Expr.(*ast.Binary)
	if add.Op != ast.OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*ast.Binary)
	if mul.Op != ast.OpMul {
		t.Errorf("right op = %v", mul.Op)
	}

	q = mustQuery(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := q.Where.(*ast.Binary)
	if or.Op != ast.OpOr {
		t.Fatalf("top should be OR, got %v", or.Op)
	}
	and := or.R.(*ast.Binary)
	if and.Op != ast.OpAnd {
		t.Errorf("right of OR should be AND, got %v", and.Op)
	}
}

func TestParseNotPrecedence(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2")
	and := q.Where.(*ast.Binary)
	if and.Op != ast.OpAnd {
		t.Fatalf("top should be AND, got %v", and.Op)
	}
	if _, ok := and.L.(*ast.Unary); !ok {
		t.Errorf("left should be NOT, got %T", and.L)
	}
}

func TestParseCase(t *testing.T) {
	q := mustQuery(t, `SELECT SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) FROM t`)
	fc := q.Items[0].Expr.(*ast.FuncCall)
	c := fc.Args[0].(*ast.Case)
	if len(c.Whens) != 1 || c.Else == nil || c.Operand != nil {
		t.Errorf("case = %+v", c)
	}
	q = mustQuery(t, `SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t`)
	c = q.Items[0].Expr.(*ast.Case)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Errorf("simple case = %+v", c)
	}
	if _, err := ParseQuery("SELECT CASE END FROM t"); err == nil {
		t.Error("CASE without WHEN should fail")
	}
}

func TestParseFunctions(t *testing.T) {
	q := mustQuery(t, `SELECT COUNT(*), COUNT(DISTINCT x), SUM(a + b), YEAR(d) FROM t`)
	if fc := q.Items[0].Expr.(*ast.FuncCall); !fc.Star || fc.Name != "COUNT" {
		t.Errorf("count(*) = %+v", fc)
	}
	if fc := q.Items[1].Expr.(*ast.FuncCall); !fc.Distinct {
		t.Errorf("count distinct = %+v", fc)
	}
	if fc := q.Items[3].Expr.(*ast.FuncCall); fc.Name != "YEAR" {
		t.Errorf("year = %+v", fc)
	}
}

func TestParseDateLiteral(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM orders WHERE o_orderdate >= DATE '1995-01-01'`)
	bin := q.Where.(*ast.Binary)
	lit := bin.R.(*ast.Literal)
	if lit.Val.Kind != value.KindDate || lit.Val.String() != "1995-01-01" {
		t.Errorf("date literal = %v", lit.Val)
	}
	if _, err := ParseQuery("SELECT DATE 123"); err == nil {
		t.Error("DATE must be followed by a string")
	}
}

func TestParseInsert(t *testing.T) {
	s, err := Parse(`INSERT INTO patients (id, name) VALUES (1, 'Alice'), (2, 'Bob')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*ast.Insert)
	if ins.Table != "patients" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}

	s, err = Parse(`INSERT INTO log SELECT now(), pid FROM accessed`)
	if err != nil {
		t.Fatal(err)
	}
	ins = s.(*ast.Insert)
	if ins.Query == nil {
		t.Error("insert-select missing query")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s, err := Parse(`UPDATE patients SET age = age + 1, zip = '99999' WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	up := s.(*ast.Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}

	s, err = Parse(`DELETE FROM patients WHERE age < 0`)
	if err != nil {
		t.Fatal(err)
	}
	del := s.(*ast.Delete)
	if del.Table != "patients" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
}

func TestParseCreateTable(t *testing.T) {
	s, err := Parse(`CREATE TABLE patients (
		PatientID INT PRIMARY KEY,
		Name VARCHAR(25) NOT NULL,
		Birth DATE,
		Balance DECIMAL(15,2)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.(*ast.CreateTable)
	if len(ct.Columns) != 4 || !ct.Columns[0].PrimaryKey {
		t.Errorf("create table = %+v", ct)
	}
	if ct.Columns[2].Type != value.KindDate || ct.Columns[3].Type != value.KindFloat {
		t.Errorf("types = %+v", ct.Columns)
	}
}

func TestParseCreateTableCompositePK(t *testing.T) {
	s, err := Parse(`CREATE TABLE ps (pkey INT, skey INT, qty INT, PRIMARY KEY (pkey, skey))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.(*ast.CreateTable)
	if len(ct.PrimaryKey) != 2 || ct.PrimaryKey[1] != "skey" {
		t.Errorf("pk = %+v", ct.PrimaryKey)
	}
}

func TestParseCreateIndex(t *testing.T) {
	s, err := Parse(`CREATE INDEX idx_name ON patients (name, age)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := s.(*ast.CreateIndex)
	if ci.Table != "patients" || len(ci.Columns) != 2 {
		t.Errorf("create index = %+v", ci)
	}
}

func TestParseCreateAuditExpression(t *testing.T) {
	s, err := Parse(`CREATE AUDIT EXPRESSION Audit_Alice AS
		SELECT * FROM Patients WHERE Name = 'Alice'
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`)
	if err != nil {
		t.Fatal(err)
	}
	ae := s.(*ast.CreateAuditExpression)
	if ae.Name != "Audit_Alice" || ae.SensitiveTable != "Patients" || ae.PartitionBy != "PatientID" {
		t.Errorf("audit expr = %+v", ae)
	}
	if ae.Query == nil || ae.Query.Where == nil {
		t.Error("audit expr query missing")
	}
}

func TestParseCreateAuditExpressionWithJoin(t *testing.T) {
	s, err := Parse(`CREATE AUDIT EXPRESSION Audit_Cancer AS
		SELECT P.* FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND Disease = 'cancer'
		FOR SENSITIVE TABLE Patients PARTITION BY PatientID`)
	if err != nil {
		t.Fatal(err)
	}
	ae := s.(*ast.CreateAuditExpression)
	if len(ae.Query.From) != 2 {
		t.Errorf("audit expr from = %+v", ae.Query.From)
	}
}

func TestParseSelectTrigger(t *testing.T) {
	s, err := Parse(`CREATE TRIGGER Log_Alice_Accesses ON ACCESS TO Audit_Alice AS
		INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED`)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.(*ast.CreateTrigger)
	if tr.Event != ast.EventAccess || tr.Target != "Audit_Alice" {
		t.Errorf("trigger = %+v", tr)
	}
	if len(tr.Body) != 1 {
		t.Fatalf("body = %+v", tr.Body)
	}
	if _, ok := tr.Body[0].(*ast.Insert); !ok {
		t.Errorf("body stmt = %T", tr.Body[0])
	}
	if tr.ActionSQL == "" {
		t.Error("action SQL not captured")
	}
}

func TestParseDMLTrigger(t *testing.T) {
	s, err := Parse(`CREATE TRIGGER Notify ON Log AFTER INSERT AS
		IF (SELECT COUNT(DISTINCT PatientID) > 10 FROM Log WHERE UserID = NEW.UserID)
		NOTIFY 'excessive access'`)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.(*ast.CreateTrigger)
	if tr.Event != ast.EventInsert || tr.Target != "Log" {
		t.Errorf("trigger = %+v", tr)
	}
	iff, ok := tr.Body[0].(*ast.If)
	if !ok {
		t.Fatalf("body = %T", tr.Body[0])
	}
	if _, ok := iff.Cond.(*ast.ScalarSubquery); !ok {
		t.Errorf("if cond = %T", iff.Cond)
	}
	if _, ok := iff.Then[0].(*ast.Notify); !ok {
		t.Errorf("then = %T", iff.Then[0])
	}
}

func TestParseTriggerBeginEnd(t *testing.T) {
	s, err := Parse(`CREATE TRIGGER t1 ON ACCESS TO a AS BEGIN
		INSERT INTO log VALUES (1);
		NOTIFY 'hit';
	END`)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.(*ast.CreateTrigger)
	if len(tr.Body) != 2 {
		t.Errorf("body statements = %d", len(tr.Body))
	}
}

func TestParseDrops(t *testing.T) {
	if s, err := Parse("DROP TABLE t"); err != nil || s.(*ast.DropTable).Name != "t" {
		t.Errorf("drop table: %v %v", s, err)
	}
	if s, err := Parse("DROP TRIGGER tr"); err != nil || s.(*ast.DropTrigger).Name != "tr" {
		t.Errorf("drop trigger: %v %v", s, err)
	}
	if s, err := Parse("DROP AUDIT EXPRESSION ae"); err != nil || s.(*ast.DropAuditExpression).Name != "ae" {
		t.Errorf("drop audit expr: %v %v", s, err)
	}
}

func TestParseScriptMultipleStatements(t *testing.T) {
	stmts, err := ParseScript(`CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("statements = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"FROBNICATE the database",
		"SELECT * FROM t GROUP",
		"INSERT INTO t",
		"CREATE TABLE t (x BLOB)",
		"CREATE TRIGGER t ON x AFTER FROBNICATE AS SELECT 1",
		"SELECT * FROM t LIMIT x",
		"SELECT (1 + FROM t",
		"UPDATE t SET",
		"CREATE AUDIT EXPRESSION e AS SELECT * FROM t",
		"SELECT 1 2 3 FROM t WHERE",
	}
	for _, sql := range bad {
		if _, err := ParseScript(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestParseExactlyOne(t *testing.T) {
	if _, err := Parse("SELECT 1; SELECT 2"); err == nil {
		t.Error("Parse should reject multiple statements")
	}
	if _, err := ParseQuery("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("ParseQuery should reject non-SELECT")
	}
}

func TestParseTPCHQ3Shape(t *testing.T) {
	q := mustQuery(t, `
		SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
		       o_orderdate, o_shippriority
		FROM customer, orders, lineitem
		WHERE c_mktsegment = 'BUILDING'
		  AND c_custkey = o_custkey
		  AND l_orderkey = o_orderkey
		  AND o_orderdate < DATE '1995-03-15'
		  AND l_shipdate > DATE '1995-03-15'
		GROUP BY l_orderkey, o_orderdate, o_shippriority
		ORDER BY revenue DESC, o_orderdate
		LIMIT 10`)
	if len(q.From) != 3 || len(q.GroupBy) != 3 || q.Limit != 10 {
		t.Errorf("q3 shape wrong: from=%d group=%d limit=%d", len(q.From), len(q.GroupBy), q.Limit)
	}
}

func TestParseCreateAuditExpressionPriority(t *testing.T) {
	s, err := Parse(`CREATE AUDIT EXPRESSION Audit_Alice AS
		SELECT * FROM Patients WHERE Name = 'Alice'
		FOR SENSITIVE TABLE Patients, PARTITION BY PatientID PRIORITY 3`)
	if err != nil {
		t.Fatal(err)
	}
	ae := s.(*ast.CreateAuditExpression)
	if ae.Priority != 3 {
		t.Errorf("priority = %d, want 3", ae.Priority)
	}
	for _, bad := range []string{
		`CREATE AUDIT EXPRESSION e AS SELECT * FROM t
			FOR SENSITIVE TABLE t, PARTITION BY a PRIORITY -1`,
		`CREATE AUDIT EXPRESSION e AS SELECT * FROM t
			FOR SENSITIVE TABLE t, PARTITION BY a PRIORITY high`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted bad PRIORITY: %s", bad)
		}
	}
}

func TestParseShowAudit(t *testing.T) {
	if s, err := Parse("SHOW AUDIT QUEUE"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*ast.ShowAuditQueue); !ok {
		t.Errorf("SHOW AUDIT QUEUE parsed as %T", s)
	}
	if s, err := Parse("SHOW AUDIT VERDICTS"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*ast.ShowAuditVerdicts); !ok {
		t.Errorf("SHOW AUDIT VERDICTS parsed as %T", s)
	}
	if _, err := Parse("SHOW AUDIT NONSENSE"); err == nil {
		t.Error("SHOW AUDIT NONSENSE accepted")
	}
}
