package engine

import (
	"fmt"
	"strings"
	"time"

	"auditdb/internal/ast"
	"auditdb/internal/core"
	"auditdb/internal/exec"
	"auditdb/internal/obs"
	"auditdb/internal/opt"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// analyzeSink is the audit operator's sink under EXPLAIN ANALYZE: it
// performs the same sensitive-ID membership probe a real execution
// would (so probe/hit counts are faithful) but records nothing into
// ACCESSED state — EXPLAIN ANALYZE must be side-effect-free: no
// trigger fires and no audit trail is written. One sink belongs to one
// audit operator (plan node), so counters attribute per node even with
// several operators for the same expression (self-joins, subqueries).
type analyzeSink struct {
	expr     *core.AuditExpression
	st       *obs.NodeStats
	distinct map[string]struct{}
}

// Observe implements plan.AuditSink.
func (s *analyzeSink) Observe(v value.Value) {
	s.st.Probes++
	if !s.expr.Contains(v) {
		return
	}
	s.st.Hits++
	k := value.KeyOf(v)
	if _, dup := s.distinct[k]; !dup {
		s.distinct[k] = struct{}{}
		s.st.DistinctIDs++
	}
}

// ObserveBatch implements plan.BatchAuditSink so the vectorized audit
// iterator keeps its batch path under ANALYZE.
func (s *analyzeSink) ObserveBatch(vs []value.Value) {
	for _, v := range vs {
		s.Observe(v)
	}
}

// analyzeAuditSinks replaces every audit operator's probe sink with a
// per-node analyzeSink bound to the collector, in the main tree and in
// every (nested) subquery block.
func analyzeAuditSinks(root plan.Node, az *exec.Analyze) {
	plan.Walk(root, func(n plan.Node) {
		a, ok := n.(*plan.Audit)
		if !ok {
			return
		}
		if p, ok := a.Sink.(*core.Probe); ok {
			a.Sink = &analyzeSink{expr: p.Expr, st: az.Node(a), distinct: make(map[string]struct{})}
		}
	})
	plan.Subplans(root, func(sq *plan.Subquery) {
		analyzeAuditSinks(sq.Plan, az)
	})
}

// runExplainAnalyze executes the query for real — same plan, same
// optimization, same audit-operator placement — with every iterator
// wrapped in a counting shim, then reports the plan tree annotated
// with observed rows, batches, wall time, and per-audit-operator
// probe/hit/distinct-ID counts. It deliberately never fires ON ACCESS
// triggers and never persists ACCESSED state; the only engine counters
// it moves are statements and rows_scanned.
func (e *Engine) runExplainAnalyze(s *ast.Explain, sql string, env *actionEnv) (*Result, error) {
	start := time.Now()
	n, err := plan.Build(e.planEnv(env), s.Query)
	if err != nil {
		return nil, err
	}
	n = opt.Optimize(n)
	sess := e.sessionOf(env)
	heur := sess.Heuristic()
	for _, ae := range e.auditTargets(sess.AuditAll()) {
		// The throwaway Accessed never receives a record: every Probe
		// sink is swapped for an analyzeSink below.
		n = core.Instrument(n, ae, &core.Probe{Expr: ae, Acc: core.NewAccessed()}, heur)
	}
	workers := e.workersFor(sess)
	if workers >= 2 {
		n = opt.Parallelize(n, e.tableEstimate, workers, int(e.parallelMinRows.Load()))
	}
	az := exec.NewAnalyze()
	analyzeAuditSinks(n, az)

	ctx := e.execCtx(env, sql)
	ctx.Workers = workers
	ctx.Analyze = az
	rows, err := exec.Run(n, ctx)
	e.stats.RowsScanned.Add(ctx.Stats.RowsScanned.Load())
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(exec.RenderAnalyze(n, az), "\n"), "\n") {
		res.Rows = append(res.Rows, value.Row{value.NewString(line)})
	}
	skipped := ctx.Stats.ChunksSkippedFilter.Load() + ctx.Stats.ChunksSkippedAudit.Load()
	res.Rows = append(res.Rows, value.Row{value.NewString(fmt.Sprintf(
		"Execution: rows=%d rows_scanned=%d chunks=%d/%d time=%s",
		len(rows), ctx.Stats.RowsScanned.Load(), skipped, ctx.Stats.ChunksScanned.Load(),
		elapsed.Round(time.Microsecond)))})
	return res, nil
}

// ExplainAnalyze executes a query under EXPLAIN ANALYZE
// instrumentation and returns the annotated plan report as text.
func (e *Engine) ExplainAnalyze(sql string) (string, error) {
	sel, err := parser.ParseQuery(sql)
	if err != nil {
		return "", err
	}
	res, err := e.runExplainAnalyze(&ast.Explain{Query: sel, Analyze: true}, sql, e.defSess.rootEnv())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].S)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
