// Package storage implements the in-memory row store: heap tables with
// stable row IDs and tombstones, a primary-key hash index, optional
// secondary hash indexes, and visibility masks that let the offline
// auditor re-execute a query "as if" a tuple had been deleted without
// mutating the table (the paper's Definition 2.3 check).
package storage

import (
	"fmt"
	"sync"

	"auditdb/internal/catalog"
	"auditdb/internal/value"
)

// RowID identifies a row within one table for its whole lifetime.
type RowID int64

// Table is a heap of rows plus its indexes. All methods are safe for
// concurrent use; readers take the read lock for the duration of a scan
// via Snapshot.
type Table struct {
	mu   sync.RWMutex
	meta *catalog.TableMeta

	rows []value.Row // nil entry = tombstone
	live int

	pk        map[string]RowID // encoded pk -> row, when a primary key exists
	secondary map[string]*hashIndex

	// Per-chunk statistics (stats.go): one chunkStats per ChunkRows
	// heap slots, intCols marking which columns get zone maps, and the
	// set of registered sensitive-ID sketch columns.
	stats      []*chunkStats
	intCols    []bool
	sketchCols map[int]struct{}
}

type hashIndex struct {
	cols    []int
	entries map[string][]RowID
}

// NewTable creates an empty table for the given schema.
func NewTable(meta *catalog.TableMeta) *Table {
	t := &Table{meta: meta, secondary: make(map[string]*hashIndex)}
	if len(meta.PrimaryKey) > 0 {
		t.pk = make(map[string]RowID)
	}
	t.initStats()
	return t
}

// Meta returns the table's schema.
func (t *Table) Meta() *catalog.TableMeta { return t.meta }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert appends a row, enforcing arity, type and primary-key
// constraints. It returns the new row's ID.
func (t *Table) Insert(row value.Row) (RowID, error) {
	if len(row) != len(t.meta.Columns) {
		return 0, fmt.Errorf("table %s: expected %d values, got %d", t.meta.Name, len(t.meta.Columns), len(row))
	}
	coerced, err := t.coerceRow(row)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := RowID(len(t.rows))
	if t.pk != nil {
		k := value.EncodeRowKey(coerced, t.meta.PrimaryKey)
		if _, dup := t.pk[k]; dup {
			return 0, fmt.Errorf("table %s: duplicate primary key %s", t.meta.Name, pkString(coerced, t.meta.PrimaryKey))
		}
		t.pk[k] = id
	}
	t.rows = append(t.rows, coerced)
	t.live++
	ck := t.chunkOf(int(id))
	t.ensureChunkBlooms(ck)
	ck.live++
	t.foldRow(ck, coerced)
	for _, idx := range t.secondary {
		k := value.EncodeRowKey(coerced, idx.cols)
		idx.entries[k] = append(idx.entries[k], id)
	}
	return id, nil
}

func pkString(row value.Row, cols []int) string {
	vals := make([]string, len(cols))
	for i, c := range cols {
		vals[i] = row[c].String()
	}
	return fmt.Sprintf("%v", vals)
}

// coerceRow converts each value to the declared column type.
func (t *Table) coerceRow(row value.Row) (value.Row, error) {
	out := make(value.Row, len(row))
	for i, v := range row {
		c, err := value.Coerce(v, t.meta.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", t.meta.Name, t.meta.Columns[i].Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// Get returns the row with the given ID, or ok=false if it was deleted
// or never existed.
func (t *Table) Get(id RowID) (value.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return nil, false
	}
	return t.rows[id], true
}

// Delete tombstones the row with the given ID. It returns the deleted
// row so callers (triggers, undo logs) can reference OLD values.
func (t *Table) Delete(id RowID) (value.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return nil, fmt.Errorf("table %s: row %d does not exist", t.meta.Name, id)
	}
	old := t.rows[id]
	t.rows[id] = nil
	t.live--
	t.chunkOf(int(id)).live--
	t.noteDrift(int(id))
	if t.pk != nil {
		delete(t.pk, value.EncodeRowKey(old, t.meta.PrimaryKey))
	}
	for _, idx := range t.secondary {
		idx.remove(old, id)
	}
	return old, nil
}

// Update replaces the row with the given ID, returning the old row.
func (t *Table) Update(id RowID, row value.Row) (value.Row, error) {
	if len(row) != len(t.meta.Columns) {
		return nil, fmt.Errorf("table %s: expected %d values, got %d", t.meta.Name, len(t.meta.Columns), len(row))
	}
	coerced, err := t.coerceRow(row)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
		return nil, fmt.Errorf("table %s: row %d does not exist", t.meta.Name, id)
	}
	old := t.rows[id]
	if t.pk != nil {
		oldK := value.EncodeRowKey(old, t.meta.PrimaryKey)
		newK := value.EncodeRowKey(coerced, t.meta.PrimaryKey)
		if oldK != newK {
			if _, dup := t.pk[newK]; dup {
				return nil, fmt.Errorf("table %s: duplicate primary key %s", t.meta.Name, pkString(coerced, t.meta.PrimaryKey))
			}
			delete(t.pk, oldK)
			t.pk[newK] = id
		}
	}
	t.rows[id] = coerced
	t.foldRow(t.chunkOf(int(id)), coerced)
	t.noteDrift(int(id))
	for _, idx := range t.secondary {
		idx.remove(old, id)
		k := value.EncodeRowKey(coerced, idx.cols)
		idx.entries[k] = append(idx.entries[k], id)
	}
	return old, nil
}

// Restore undoes a delete by reinstating the exact row at the given ID.
// It is used by the undo log; id must refer to a tombstoned slot.
func (t *Table) Restore(id RowID, row value.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.rows[id] != nil {
		return fmt.Errorf("table %s: cannot restore row %d", t.meta.Name, id)
	}
	t.rows[id] = row
	t.live++
	ck := t.chunkOf(int(id))
	t.ensureChunkBlooms(ck)
	ck.live++
	t.foldRow(ck, row)
	if t.pk != nil {
		t.pk[value.EncodeRowKey(row, t.meta.PrimaryKey)] = id
	}
	for _, idx := range t.secondary {
		k := value.EncodeRowKey(row, idx.cols)
		idx.entries[k] = append(idx.entries[k], id)
	}
	return nil
}

// LookupPK returns the row ID for a primary-key value tuple.
func (t *Table) LookupPK(key value.Row) (RowID, bool) {
	if t.pk == nil {
		return 0, false
	}
	cols := make([]int, len(key))
	for i := range key {
		cols[i] = i
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.pk[value.EncodeRowKey(key, cols)]
	return id, ok
}

// AddIndex builds a secondary hash index over the given column
// ordinals.
func (t *Table) AddIndex(name string, cols []int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.secondary[name]; dup {
		return fmt.Errorf("table %s: index %q already exists", t.meta.Name, name)
	}
	idx := &hashIndex{cols: cols, entries: make(map[string][]RowID)}
	for i, row := range t.rows {
		if row == nil {
			continue
		}
		k := value.EncodeRowKey(row, cols)
		idx.entries[k] = append(idx.entries[k], RowID(i))
	}
	t.secondary[name] = idx
	return nil
}

// LookupEq returns the live row IDs whose single column col equals v,
// using the primary-key index or any single-column secondary index
// that covers col. ok=false means no usable index exists and the
// caller must scan.
func (t *Table) LookupEq(col int, v value.Value) (ids []RowID, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pk != nil && len(t.meta.PrimaryKey) == 1 && t.meta.PrimaryKey[0] == col {
		key := value.EncodeRowKey(value.Row{v}, []int{0})
		if id, hit := t.pk[key]; hit {
			return []RowID{id}, true
		}
		return nil, true
	}
	for _, idx := range t.secondary {
		if len(idx.cols) != 1 || idx.cols[0] != col {
			continue
		}
		key := value.EncodeRowKey(value.Row{v}, []int{0})
		var out []RowID
		for _, id := range idx.entries[key] {
			if t.rows[id] != nil {
				out = append(out, id)
			}
		}
		return out, true
	}
	return nil, false
}

// DropIndex removes a secondary index from the table.
func (t *Table) DropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[name]; !ok {
		return fmt.Errorf("table %s: no index %q", t.meta.Name, name)
	}
	delete(t.secondary, name)
	return nil
}

// IndexLookup returns the live row IDs whose indexed columns equal key.
func (t *Table) IndexLookup(name string, key value.Row) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.secondary[name]
	if !ok {
		return nil, fmt.Errorf("table %s: no index %q", t.meta.Name, name)
	}
	cols := make([]int, len(key))
	for i := range key {
		cols[i] = i
	}
	ids := idx.entries[value.EncodeRowKey(key, cols)]
	out := make([]RowID, 0, len(ids))
	for _, id := range ids {
		if t.rows[id] != nil {
			out = append(out, id)
		}
	}
	return out, nil
}

func (ix *hashIndex) remove(row value.Row, id RowID) {
	k := value.EncodeRowKey(row, ix.cols)
	ids := ix.entries[k]
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			ix.entries[k] = ids[:len(ids)-1]
			return
		}
	}
}

// Snapshot invokes fn for every live row under the read lock. fn must
// not call back into mutating table methods. If fn returns false the
// scan stops early.
func (t *Table) Snapshot(fn func(id RowID, row value.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(RowID(i), row) {
			return
		}
	}
}

// ScanChunk copies up to len(out) live rows starting at heap position
// pos into out, recording their IDs in ids (which must be at least as
// long as out). One call holds the read lock once, so a consumer that
// alternates ScanChunk with per-row work never pins the lock across
// expression evaluation, and memory stays bounded by the chunk size
// instead of the table size. It returns the number of rows copied and
// the position to resume from; next < 0 means the heap is exhausted.
func (t *Table) ScanChunk(pos int, out []value.Row, ids []RowID) (n, next int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := pos
	for ; i < len(t.rows) && n < len(out); i++ {
		row := t.rows[i]
		if row == nil {
			continue
		}
		ids[n] = RowID(i)
		out[n] = row
		n++
	}
	if i >= len(t.rows) {
		return n, -1
	}
	return n, i
}

// HeapBound returns the current heap extent: every live row sits at a
// position in [0, HeapBound). Morsel dispatchers carve this range into
// fixed-size claims handed to ScanRange. Rows appended after the call
// are simply not part of the scan, matching ScanChunk's snapshot-free
// semantics.
func (t *Table) HeapBound() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// ScanRange is ScanChunk restricted to heap positions [pos, end): it
// copies up to len(out) live rows from that window into out under one
// read-lock acquisition and returns the count plus the position to
// resume from; next < 0 means the window is exhausted. Parallel
// workers each own disjoint [pos, end) morsels, so concurrent calls
// never hand out the same row twice.
func (t *Table) ScanRange(pos, end int, out []value.Row, ids []RowID) (n, next int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if end > len(t.rows) {
		end = len(t.rows)
	}
	i := pos
	for ; i < end && n < len(out); i++ {
		row := t.rows[i]
		if row == nil {
			continue
		}
		ids[n] = RowID(i)
		out[n] = row
		n++
	}
	if i >= end {
		return n, -1
	}
	return n, i
}

// FetchRows copies the live rows with the given IDs into out under one
// read-lock acquisition, compacting the surviving IDs to the front of
// ids in step with out. out must be at least len(ids) long. It returns
// how many of the requested rows were live.
func (t *Table) FetchRows(ids []RowID, out []value.Row) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, id := range ids {
		if id < 0 || int(id) >= len(t.rows) || t.rows[id] == nil {
			continue
		}
		ids[n] = id
		out[n] = t.rows[id]
		n++
	}
	return n
}

// Store owns the tables of one database.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Create adds a table for the given schema.
func (s *Store) Create(meta *catalog.TableMeta) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lower(meta.Name)
	if _, dup := s.tables[k]; dup {
		return nil, fmt.Errorf("table %q already exists in store", meta.Name)
	}
	t := NewTable(meta)
	s.tables[k] = t
	return t, nil
}

// Table looks up a table by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[lower(name)]
	return t, ok
}

// Drop removes a table and its data.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lower(name)
	if _, ok := s.tables[k]; !ok {
		return fmt.Errorf("table %q does not exist in store", name)
	}
	delete(s.tables, k)
	return nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
