package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"auditdb/internal/wal"
)

// openDurable opens (or reopens) a durable engine over dir, running
// recovery and attaching the WAL — the daemon's boot sequence.
func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	m, rec, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	e := New()
	if err := e.Recover(rec); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	e.AttachWAL(m)
	return e
}

func dumpString(t *testing.T, e *Engine) string {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return buf.String()
}

// TestDurableReplayMatchesDump commits schema, data, and DML (updates
// and deletes included) and checks that recovery reproduces the exact
// pre-crash state, dump-for-dump.
func TestDurableReplayMatchesDump(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT);
		INSERT INTO Patients VALUES (1, 'Alice', 34), (2, 'Bob', 21), (3, 'Carol', 47);
		UPDATE Patients SET Age = 35 WHERE Name = 'Alice';
		DELETE FROM Patients WHERE Name = 'Bob';
		CREATE INDEX idx_age ON Patients (Age);
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	before := dumpString(t, e)
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	if after := dumpString(t, e2); after != before {
		t.Fatalf("recovered dump differs\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
	r := mustQuery(t, e2, "SELECT Age FROM Patients WHERE Name = 'Alice'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 35 {
		t.Fatalf("update lost in replay: %v", r.Rows)
	}
}

// TestDurableRollbackNotReplayed: a rolled-back transaction's DML must
// not reappear after recovery, while a committed one must.
func TestDurableRollbackNotReplayed(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if _, err := e.ExecScript(`CREATE TABLE T (ID INT PRIMARY KEY, V VARCHAR(10));`); err != nil {
		t.Fatalf("setup: %v", err)
	}

	txn := e.Begin()
	if _, err := txn.Exec("INSERT INTO T VALUES (1, 'keep')"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	txn = e.Begin()
	if _, err := txn.Exec("INSERT INTO T VALUES (2, 'drop')"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	r := mustQuery(t, e2, "SELECT V FROM T ORDER BY ID")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "keep" {
		t.Fatalf("recovered rows = %v, want only 'keep'", r.Rows)
	}
}

// TestDurableSelectTriggerSurvives: a SELECT trigger's system
// transaction (the paper's tamper-resistant audit write) must survive
// a restart, and the firing itself must be on the hash-chained audit
// stream.
func TestDurableSelectTriggerSurvives(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30));
		CREATE TABLE Log (UserID VARCHAR(30), PatientID INT);
		INSERT INTO Patients VALUES (1, 'Alice'), (2, 'Bob');
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT userid(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	sess := e.NewSession()
	sess.SetUser("dr_mallory")
	if _, err := sess.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatalf("audited query: %v", err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	r := mustQuery(t, e2, "SELECT UserID, PatientID FROM Log")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "dr_mallory" || r.Rows[0][1].Int() != 1 {
		t.Fatalf("trigger write lost in replay: %v", r.Rows)
	}
	rep, err := e2.VerifyAuditLog()
	if err != nil {
		t.Fatalf("VerifyAuditLog: %v", err)
	}
	if !rep.Valid || rep.Records != 1 {
		t.Fatalf("audit chain = %+v, want valid with 1 record", rep)
	}
}

// TestVerifyAuditLogStatement drives VERIFY AUDIT LOG through SQL and
// checks it flips to invalid when the on-disk stream is edited.
func TestVerifyAuditLogStatement(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	script := `
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30));
		CREATE TABLE Log (UserID VARCHAR(30), PatientID INT);
		INSERT INTO Patients VALUES (1, 'Alice');
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT userid(), PatientID FROM ACCESSED;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatalf("audited query: %v", err)
	}

	r := mustExec(t, e, "VERIFY AUDIT LOG")
	if len(r.Rows) != 1 || !r.Rows[0][0].Bool() {
		t.Fatalf("pristine log reported invalid: %v", r.Rows)
	}

	// Flip one payload byte of the audit segment on disk.
	seg := filepath.Join(dir, "audit", "000001.wal")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("reading audit segment: %v", err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatalf("writing tampered segment: %v", err)
	}

	r = mustExec(t, e, "VERIFY AUDIT LOG")
	if r.Rows[0][0].Bool() {
		t.Fatalf("tampered log reported valid: %v", r.Rows)
	}
	if reason := r.Rows[0][3].Str(); reason == "" {
		t.Fatal("invalid verdict carries no reason")
	}
	e.CloseWAL()
}

// TestDurableCheckpointRecovery: state written before and after a
// checkpoint must both survive, and the audit chain must verify across
// the checkpoint boundary.
func TestDurableCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	script := `
		CREATE TABLE T (ID INT PRIMARY KEY, V VARCHAR(10));
		INSERT INTO T VALUES (1, 'pre');
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := e.Exec("INSERT INTO T VALUES (2, 'post')"); err != nil {
		t.Fatalf("post-checkpoint insert: %v", err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	r := mustQuery(t, e2, "SELECT V FROM T ORDER BY ID")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "pre" || r.Rows[1][0].Str() != "post" {
		t.Fatalf("recovered rows = %v", r.Rows)
	}
	rep, err := e2.VerifyAuditLog()
	if err != nil {
		t.Fatalf("VerifyAuditLog: %v", err)
	}
	if !rep.Valid {
		t.Fatalf("audit chain invalid after checkpointed recovery: %+v", rep)
	}
}

// TestDumpConcurrentWriters is the regression test for Dump running
// without the writer lock: every dump taken while writers are active
// must be a transactionally consistent script (replayable, and with
// the invariant that each account pair sums to zero).
func TestDumpConcurrentWriters(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`CREATE TABLE Acct (ID INT PRIMARY KEY, Bal INT);
		INSERT INTO Acct VALUES (1, 0), (2, 0);`); err != nil {
		t.Fatalf("setup: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Balanced transfer: invariant Bal(1) + Bal(2) == 0.
				txn := e.Begin()
				d := fmt.Sprintf("%d", (w+i)%97+1)
				txn.Exec("UPDATE Acct SET Bal = Bal + " + d + " WHERE ID = 1")
				txn.Exec("UPDATE Acct SET Bal = Bal - " + d + " WHERE ID = 2")
				txn.Commit()
			}
		}(w)
	}

	for i := 0; i < 20; i++ {
		script := dumpString(t, e)
		fresh := New()
		if _, err := fresh.ExecScript(script); err != nil {
			t.Fatalf("dump %d not replayable: %v\n%s", i, err, script)
		}
		r := mustQuery(t, fresh, "SELECT Bal FROM Acct ORDER BY ID")
		if len(r.Rows) != 2 {
			t.Fatalf("dump %d lost rows: %v", i, r.Rows)
		}
		if sum := r.Rows[0][0].Int() + r.Rows[1][0].Int(); sum != 0 {
			t.Fatalf("dump %d is not transactionally consistent: sum = %d", i, sum)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDurableDDLOnlyRollback: DDL is not undone by rollback, so it
// must still be logged (and replayed) even when the transaction rolls
// back its DML.
func TestDurableDDLOnlyRollback(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	txn := e.Begin()
	if _, err := txn.Exec("CREATE TABLE T (ID INT PRIMARY KEY)"); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	if _, err := txn.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL: %v", err)
	}

	e2 := openDurable(t, dir)
	defer e2.CloseWAL()
	r := mustQuery(t, e2, "SELECT * FROM T")
	if len(r.Rows) != 0 {
		t.Fatalf("rolled-back insert replayed: %v", r.Rows)
	}
}
