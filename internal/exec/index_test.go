package exec

import (
	"testing"

	"auditdb/internal/plan"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

func TestIndexAssistedScanByPK(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.store.Table("emp")
	_ = tbl
	// emp has no declared pk in newHarness; use dept via secondary.
	rows := h.query(t, "SELECT id FROM emp WHERE id = 3")
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestIndexAssistedScanSecondary(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.store.Table("emp")
	if err := tbl.AddIndex("by_dept", []int{1}); err != nil {
		t.Fatal(err)
	}
	rows := h.query(t, "SELECT id FROM emp WHERE dept = 'eng' ORDER BY id")
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 2 {
		t.Errorf("indexed scan rows = %v", rows)
	}
	// Residual predicates still apply on top of the index fetch.
	rows = h.query(t, "SELECT id FROM emp WHERE dept = 'eng' AND sal > 150")
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("residual rows = %v", rows)
	}
}

func TestIndexedScanHonorsMask(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.store.Table("emp")
	if err := tbl.AddIndex("by_dept", []int{1}); err != nil {
		t.Fatal(err)
	}
	sel := "SELECT id FROM emp WHERE dept = 'eng'"
	n := buildFor(t, h, sel)
	ctx := NewCtx(h.store)
	mask := storage.NewMask()
	mask.Hide("emp", 0) // employee 1
	ctx.Mask = mask
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("masked indexed scan = %v", rows)
	}
}

func buildFor(t *testing.T, h *harness, sql string) plan.Node {
	t.Helper()
	n := mustPlan(t, h, sql)
	return n
}

func TestLookupEqMissingIndex(t *testing.T) {
	h := newHarness(t)
	tbl, _ := h.store.Table("emp")
	if _, ok := tbl.LookupEq(1, value.NewString("eng")); ok {
		t.Error("no index on dept yet; LookupEq must report unusable")
	}
	if err := tbl.AddIndex("by_dept", []int{1}); err != nil {
		t.Fatal(err)
	}
	ids, ok := tbl.LookupEq(1, value.NewString("eng"))
	if !ok || len(ids) != 2 {
		t.Errorf("LookupEq = %v, %v", ids, ok)
	}
	// Missing key: usable index, zero rows.
	ids, ok = tbl.LookupEq(1, value.NewString("nope"))
	if !ok || len(ids) != 0 {
		t.Errorf("LookupEq(miss) = %v, %v", ids, ok)
	}
}

func TestIndexProbeWithParam(t *testing.T) {
	// Prepared-statement parameters are row-independent, so `col = ?`
	// must take the index path and still return correct rows.
	h := newHarness(t)
	tbl, _ := h.store.Table("emp")
	if err := tbl.AddIndex("by_dept", []int{1}); err != nil {
		t.Fatal(err)
	}
	n := mustPlan(t, h, "SELECT id FROM emp WHERE dept = ?")
	// Simulate a prepared run: bind the parameter.
	ctx := NewCtx(h.store)
	ctx.Eval.Params = []value.Value{value.NewString("ops")}
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", rows)
	}
	// Rebinding returns different rows from the same plan.
	ctx2 := NewCtx(h.store)
	ctx2.Eval.Params = []value.Value{value.NewString("eng")}
	rows, err = Run(n, ctx2)
	if err != nil || len(rows) != 2 {
		t.Errorf("rebind rows = %v, %v", rows, err)
	}
}
