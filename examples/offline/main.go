// Offline: the paper's Figure 1 pipeline. SELECT triggers audit
// queries online and act as a *filter*: only queries that touched
// sensitive data (and only their recorded IDs) reach the expensive
// offline auditor, which verifies each access exactly under the
// tuple-deletion semantics of Definition 2.5.
//
// The demo runs a mixed workload, shows how many queries the trigger
// layer cleared outright, and then verifies the flagged ones offline —
// counting how many query re-executions the filter saved.
//
// Run with: go run ./examples/offline
package main

import (
	"fmt"
	"log"

	"auditdb"
)

func main() {
	db := auditdb.Open()
	db.SetAuditAll(true)

	if _, err := db.ExecScript(`
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'), (2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'), (4, 'Dave', 29, '98052'), (5, 'Erin', 62, '10001');
		INSERT INTO Disease VALUES (1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
		CREATE AUDIT EXPRESSION Audit_Cancer AS
			SELECT P.* FROM Patients P, Disease D
			WHERE P.PatientID = D.PatientID AND Disease = 'cancer'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
	`); err != nil {
		log.Fatal(err)
	}

	workload := []string{
		// Touches no sensitive rows: cleared online, never audited offline.
		"SELECT * FROM Patients WHERE Name = 'Bob'",
		"SELECT COUNT(*) FROM Disease WHERE Disease = 'flu'",
		"SELECT Name FROM Patients WHERE Age < 25",
		// Touch sensitive rows: flagged for offline verification.
		"SELECT * FROM Patients WHERE Zip = '10001'",
		"SELECT Zip, COUNT(*) FROM Patients GROUP BY Zip HAVING COUNT(*) >= 2",
		"SELECT Name FROM Patients ORDER BY Age DESC LIMIT 1",
	}

	type flagged struct {
		sql string
		ids []auditdb.Value
	}
	var toVerify []flagged
	cleared := 0
	fmt.Println("online pass (SELECT triggers):")
	for _, q := range workload {
		r, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		ids := r.AccessedIDs("Audit_Cancer")
		if len(ids) == 0 {
			cleared++
			fmt.Printf("  cleared : %.55s\n", q)
			continue
		}
		toVerify = append(toVerify, flagged{sql: q, ids: ids})
		fmt.Printf("  FLAGGED : %.55s  auditIDs=%v\n", q, ids)
	}
	fmt.Printf("\n%d/%d queries cleared online — the offline system never sees them.\n\n",
		cleared, len(workload))

	fmt.Println("offline verification of flagged queries (Definition 2.5):")
	totalExecs := 0
	for _, f := range toVerify {
		rep, err := db.OfflineAudit(f.sql, "Audit_Cancer")
		if err != nil {
			log.Fatal(err)
		}
		totalExecs += rep.Executions
		verdict := "confirmed"
		if len(rep.AccessedIDs) < len(f.ids) {
			verdict = fmt.Sprintf("reduced to %v (online false positives cleared)", rep.AccessedIDs)
		}
		fmt.Printf("  %.55s\n    online=%v exact=%v -> %s (%d re-executions)\n",
			f.sql, f.ids, rep.AccessedIDs, verdict, rep.Executions)
	}
	fmt.Printf("\noffline cost: %d query executions for %d flagged queries;\n",
		totalExecs, len(toVerify))
	fmt.Printf("without the online filter it would verify all %d queries against all sensitive tuples.\n",
		len(workload))
}
