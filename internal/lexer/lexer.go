// Package lexer tokenizes the SQL dialect understood by the engine,
// including the auditing DDL extensions from the paper (CREATE AUDIT
// EXPRESSION, CREATE TRIGGER ... ON ACCESS TO, NOTIFY).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
)

// String names the token kind for error messages.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	default:
		return "unknown"
	}
}

// Token is one lexical unit. Keyword text is uppercased; identifier
// text preserves the source spelling.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error reporting
}

// keywords is the reserved-word set. Function names (YEAR, SUBSTRING,
// COALESCE, ...) are deliberately not reserved; they lex as identifiers.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "ALL": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true, "ON": true,
	"CROSS": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "PRIMARY": true, "KEY": true,
	"DROP": true, "TRIGGER": true, "AUDIT": true, "EXPRESSION": true,
	"ACCESS": true, "TO": true, "AFTER": true, "FOR": true,
	"SENSITIVE": true, "PARTITION": true, "IF": true,
	"DATE": true, "UNIQUE": true, "BEGIN": true, "EXPLAIN": true,
	"COMMIT": true, "ROLLBACK": true, "VIEW": true,
}

// Lex tokenizes input. It returns an error for unterminated strings or
// characters outside the dialect.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("unterminated block comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '\'':
			s, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokString, Text: s, Pos: i})
			i = next
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !seenDot {
					seenDot = true
					i++
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '"':
			// Quoted identifier.
			end := strings.IndexByte(input[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted identifier at offset %d", i)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[i+1 : i+1+end], Pos: i})
			i += end + 2
		default:
			op, width := lexOp(input, i)
			if width == 0 {
				return nil, fmt.Errorf("unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: i})
			i += width
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func lexString(input string, start int) (text string, next int, err error) {
	var b strings.Builder
	i := start + 1
	for i < len(input) {
		c := input[i]
		if c == '\'' {
			if i+1 < len(input) && input[i+1] == '\'' {
				b.WriteByte('\'')
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("unterminated string literal at offset %d", start)
}

var twoByteOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true, "||": true}

func lexOp(input string, i int) (string, int) {
	if i+1 < len(input) && twoByteOps[input[i:i+2]] {
		op := input[i : i+2]
		if op == "!=" {
			op = "<>"
		}
		return op, 2
	}
	switch input[i] {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.', '?':
		return string(input[i]), 1
	}
	return "", 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
