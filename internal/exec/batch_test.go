package exec

import (
	"fmt"
	"testing"

	"auditdb/internal/catalog"
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// bigHarness extends the standard harness with a 5000-row table so
// bounded-work and allocation tests can tell O(1)/O(batch) behavior
// apart from O(table).
func bigHarness(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	meta := &catalog.TableMeta{
		Name: "big",
		Columns: []catalog.Column{
			{Name: "k", Type: value.KindInt},
			{Name: "grp", Type: value.KindInt},
			{Name: "v", Type: value.KindString},
		},
		PrimaryKey: []int{0},
	}
	if err := h.cat.AddTable(meta); err != nil {
		t.Fatal(err)
	}
	tbl, err := h.store.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		row := value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 100)), value.NewString(fmt.Sprintf("v%d", i))}
		if _, err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestLimitScanStreamsBoundedWork is the regression test for the old
// openScan behavior of materializing the whole heap before the first
// row: a LIMIT 1 over a 5000-row table must touch no more than one
// seed batch of storage rows.
func TestLimitScanStreamsBoundedWork(t *testing.T) {
	h := bigHarness(t)
	n := mustPlan(t, h, "SELECT k FROM big LIMIT 1")
	ctx := NewCtx(h.store)
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if ctx.Stats.RowsScanned.Load() > batchSeed {
		t.Errorf("LIMIT 1 scanned %d storage rows, want <= %d (one seed batch)", ctx.Stats.RowsScanned.Load(), batchSeed)
	}
}

// TestLimitWithPredicateStreamsBoundedWork: the fused scan–filter
// kernel must also stop early when a LIMIT is satisfied mid-table,
// reading only as many storage rows as needed to fill the request.
func TestLimitWithPredicateStreamsBoundedWork(t *testing.T) {
	h := bigHarness(t)
	// grp = 7 matches every 100th row; LIMIT 2 is satisfied after ~108
	// heap rows. Allow request-granularity slack, but far below 5000.
	n := mustPlan(t, h, "SELECT k FROM big WHERE grp = 7 LIMIT 2")
	ctx := NewCtx(h.store)
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if ctx.Stats.RowsScanned.Load() >= 5000 {
		t.Errorf("LIMIT 2 walked the whole heap (%d rows scanned)", ctx.Stats.RowsScanned.Load())
	}
}

// TestPointLookupProbesOnlyIndexResult: on the index-assisted path the
// kernel must fetch exactly the candidate row IDs, not the table.
func TestPointLookupProbesOnlyIndexResult(t *testing.T) {
	h := bigHarness(t)
	n := mustPlan(t, h, "SELECT v FROM big WHERE k = 17")
	ctx := NewCtx(h.store)
	rows, err := Run(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].S != "v17" {
		t.Fatalf("rows = %v", rows)
	}
	if ctx.Stats.RowsScanned.Load() != 1 {
		t.Errorf("point lookup scanned %d storage rows, want 1", ctx.Stats.RowsScanned.Load())
	}
}

// countingBatchSink implements plan.BatchAuditSink for fused-kernel
// tests without importing internal/core (which itself imports exec).
type countingBatchSink struct {
	observes int // Observe calls (row-at-a-time path)
	batches  int // ObserveBatch calls
	vals     []value.Value
}

func (s *countingBatchSink) Observe(v value.Value) {
	s.observes++
	s.vals = append(s.vals, v)
}

func (s *countingBatchSink) ObserveBatch(vs []value.Value) {
	s.batches++
	s.vals = append(s.vals, vs...)
}

// TestFusedAuditScanObservesPostPredicateRows: the fused kernel must
// deliver exactly the predicate-surviving partition-by values to the
// sink, batched (ObserveBatch, not per-row Observe).
func TestFusedAuditScanObservesPostPredicateRows(t *testing.T) {
	h := bigHarness(t)
	scan := mustPlan(t, h, "SELECT k, grp, v FROM big WHERE grp < 2")
	// Locate the Scan under the optimizer output and wrap it in a
	// leaf Audit with partition-by column k.
	var wrap func(n plan.Node) plan.Node
	sink := &countingBatchSink{}
	wrap = func(n plan.Node) plan.Node {
		if s, ok := n.(*plan.Scan); ok {
			return &plan.Audit{Child: s, IDIdx: 0, Sink: sink}
		}
		for i, c := range n.Children() {
			n.SetChild(i, wrap(c))
		}
		return n
	}
	rows, err := Run(wrap(scan), NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 { // grp in {0,1}: 50 rows each
		t.Fatalf("rows = %d, want 100", len(rows))
	}
	if len(sink.vals) != 100 {
		t.Errorf("sink observed %d values, want 100 (post-predicate rows only)", len(sink.vals))
	}
	if sink.observes != 0 || sink.batches == 0 {
		t.Errorf("fused kernel used per-row Observe (%d calls), want batched (%d batches)", sink.observes, sink.batches)
	}
}

// TestScanKernelAllocsPerRun guards the allocation-lean fused scan
// path: executing a full-table scan+filter+aggregate over 5000 rows
// must cost a bounded number of allocations (batch buffers and plan
// state), not O(rows).
func TestScanKernelAllocsPerRun(t *testing.T) {
	h := bigHarness(t)
	n := mustPlan(t, h, "SELECT COUNT(*) FROM big WHERE grp < 50")
	// Warm up and verify the result once.
	rows, err := Run(n, NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 2500 {
		t.Fatalf("rows = %v, want [[2500]]", rows)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Drain(n, NewCtx(h.store)); err != nil {
			t.Fatal(err)
		}
	})
	// Seed-to-full batch growth plus iterator state is ~40 allocations;
	// anything near the row count means a per-row allocation crept in.
	if allocs > 100 {
		t.Errorf("scan kernel allocations per run = %.0f, want <= 100", allocs)
	}
}

// TestHashJoinProbeAllocsPerRun guards the join fast path: probing
// 5000 left rows against a built hash table must not allocate per row
// (reusable key buffer, batched pair backing arrays).
func TestHashJoinProbeAllocsPerRun(t *testing.T) {
	h := bigHarness(t)
	n := mustPlan(t, h, "SELECT COUNT(*) FROM big b, emp e WHERE b.grp = e.id")
	rows, err := Run(n, NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	// emp ids 1..4 each match 50 "big" rows.
	if len(rows) != 1 || rows[0][0].Int() != 200 {
		t.Fatalf("rows = %v, want [[200]]", rows)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Drain(n, NewCtx(h.store)); err != nil {
			t.Fatal(err)
		}
	})
	// Build table (4 buckets) + batch growth + per-batch pair backing
	// arrays stay double-digit; per-probe-row allocation would be 5000+.
	if allocs > 150 {
		t.Errorf("hash join allocations per run = %.0f, want <= 150", allocs)
	}
}

// TestBatchAdapterRowParity: every batch-native operator still serves
// the row-at-a-time Iterator interface through the adapter, yielding
// identical results to the batch path.
func TestBatchAdapterRowParity(t *testing.T) {
	h := bigHarness(t)
	n := mustPlan(t, h, "SELECT k FROM big WHERE grp = 3")
	it, err := Open(n, NewCtx(h.store))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []int64
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row[0].Int())
	}
	if len(got) != 50 {
		t.Fatalf("row-at-a-time drain produced %d rows, want 50", len(got))
	}
	for i, k := range got {
		if k != int64(i*100+3) {
			t.Fatalf("row %d = %d, want %d", i, k, i*100+3)
		}
	}
}
