package auditdb

import (
	"strings"
	"testing"
)

func TestPreparedQuery(t *testing.T) {
	db := openHealth(t)
	stmt, err := db.Prepare("SELECT Name FROM Patients WHERE Zip = ? AND Age > ? ORDER BY Name")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("params = %d", stmt.NumParams())
	}
	r, err := stmt.Run("48109", 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "Alice" {
		t.Errorf("rows = %v", r.Rows)
	}
	// Rebind with different values; same statement object.
	r, err = stmt.Run("98052", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Errorf("rebind rows = %v", r.Rows)
	}
}

func TestPreparedAudited(t *testing.T) {
	db := openHealth(t)
	stmt, err := db.Prepare("SELECT * FROM Patients WHERE Name = ?")
	if err != nil {
		t.Fatal(err)
	}
	r, err := stmt.Run("Alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessedCount("Audit_Alice") != 1 {
		t.Errorf("prepared query not audited: %v", r.AccessedIDs("Audit_Alice"))
	}
	lg, _ := db.Query("SELECT COUNT(*) FROM Log")
	if lg.Rows[0][0].Int() != 1 {
		t.Errorf("trigger did not fire for prepared query: %v", lg.Rows)
	}
	// A non-matching bind leaves no trace.
	if _, err := stmt.Run("Bob"); err != nil {
		t.Fatal(err)
	}
	lg, _ = db.Query("SELECT COUNT(*) FROM Log")
	if lg.Rows[0][0].Int() != 1 {
		t.Errorf("non-sensitive bind logged: %v", lg.Rows)
	}
}

func TestPreparedDML(t *testing.T) {
	db := openHealth(t)
	ins, err := db.Prepare("INSERT INTO Patients VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Run(10, "Zoe", 28, "48109"); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Run(11, "Yan", nil, nil); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Query("SELECT COUNT(*) FROM Patients")
	if r.Rows[0][0].Int() != 7 {
		t.Errorf("count = %v", r.Rows[0])
	}
	del, err := db.Prepare("DELETE FROM Patients WHERE PatientID = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := del.Run(11)
	if err != nil || res.RowsAffected != 1 {
		t.Errorf("delete = %+v, %v", res, err)
	}
}

func TestPreparedErrors(t *testing.T) {
	db := openHealth(t)
	stmt, err := db.Prepare("SELECT * FROM Patients WHERE Age > ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Run(); err == nil {
		t.Error("missing parameter should fail")
	}
	if _, err := stmt.Run(1, 2); err == nil {
		t.Error("extra parameter should fail")
	}
	if _, err := stmt.Run(struct{}{}); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("bad type error = %v", err)
	}
}

func TestSaveRestorePublicAPI(t *testing.T) {
	db := openHealth(t)
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	db2, err := Restore(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := db2.Query("SELECT * FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessedCount("Audit_Alice") != 1 {
		t.Error("restored database lost audit configuration")
	}
}

func TestPublicTransaction(t *testing.T) {
	db := openHealth(t)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO Patients VALUES (10, 'Zoe', 30, '48109')"); err != nil {
		t.Fatal(err)
	}
	// Audited SELECT inside the transaction still records accesses.
	r, err := tx.Query("SELECT * FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if r.AccessedCount("Audit_Alice") != 1 {
		t.Error("in-transaction query not audited")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The audit log entry SURVIVES the rollback: SELECT-trigger
	// actions run as their own system transactions (paper §II), so a
	// reader cannot erase the trail of what it read by rolling back.
	lg, _ := db.Query("SELECT COUNT(*) FROM Log")
	if lg.Rows[0][0].Int() != 1 {
		t.Errorf("audit trail should survive rollback: %v", lg.Rows[0])
	}
	cnt, _ := db.Query("SELECT COUNT(*) FROM Patients WHERE Name <> 'Alice'")
	if cnt.Rows[0][0].Int() != 4 {
		t.Errorf("rollback failed: %v", cnt.Rows[0])
	}
}
