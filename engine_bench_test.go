package auditdb

// Engine-primitive benchmarks: not paper figures, but the numbers a
// prospective embedder of the library would ask for first.

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, audited bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(40), grp INT);
	`); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO kv VALUES (?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := ins.Run(i, fmt.Sprintf("value-%d", i), i%100); err != nil {
			b.Fatal(err)
		}
	}
	if audited {
		if _, err := db.Exec(`
			CREATE AUDIT EXPRESSION Audit_Grp AS
				SELECT * FROM kv WHERE grp < 20
				FOR SENSITIVE TABLE kv, PARTITION BY k`); err != nil {
			b.Fatal(err)
		}
		db.SetAuditAll(true)
	}
	return db
}

func BenchmarkPointQueryByPK(b *testing.B) {
	db := benchDB(b, false)
	stmt, err := db.Prepare("SELECT v FROM kv WHERE k = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := stmt.Run(i % 10000)
		if err != nil || len(r.Rows) != 1 {
			b.Fatalf("point query: %v rows=%d", err, len(r.Rows))
		}
	}
}

func BenchmarkPointQueryByPKAudited(b *testing.B) {
	db := benchDB(b, true)
	stmt, err := db.Prepare("SELECT v FROM kv WHERE k = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Run(i % 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedVsParsed(b *testing.B) {
	db := benchDB(b, false)
	b.Run("prepared", func(b *testing.B) {
		stmt, err := db.Prepare("SELECT v FROM kv WHERE k = ?")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Run(42); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parsed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT v FROM kv WHERE k = 42"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkInsertThroughput(b *testing.B) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (x INT, y VARCHAR(20))"); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ins.Run(i, "payload"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := db.Query("SELECT grp, COUNT(*), MIN(k), MAX(k) FROM kv GROUP BY grp")
		if err != nil || len(r.Rows) != 100 {
			b.Fatalf("agg: %v rows=%d", err, len(r.Rows))
		}
	}
}

// BenchmarkFullScanFilter measures the scan+pushed-filter hot path on
// its own: no index is usable for grp, so every row flows through the
// fused scan kernel (the COUNT(*) keeps the result set from dominating
// the measurement with materialization).
func BenchmarkFullScanFilter(b *testing.B) {
	db := benchDB(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := db.Query("SELECT COUNT(*) FROM kv WHERE grp < 50")
		if err != nil || r.Rows[0][0].Int() != 5000 {
			b.Fatalf("scan: %v", err)
		}
	}
}

// BenchmarkFullScanFilterAudited is the same scan with an audit
// expression compiled and audit-all on, so every surviving row is also
// probed by the audit operator (Fig-7-style full-table sweep).
func BenchmarkFullScanFilterAudited(b *testing.B) {
	db := benchDB(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := db.Query("SELECT COUNT(*) FROM kv WHERE grp < 50")
		if err != nil || r.Rows[0][0].Int() != 5000 {
			b.Fatalf("scan: %v", err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := Open()
	if _, err := db.ExecScript(`
		CREATE TABLE l (id INT PRIMARY KEY, r_id INT);
		CREATE TABLE r (id INT PRIMARY KEY, tag VARCHAR(10));
	`); err != nil {
		b.Fatal(err)
	}
	insL, _ := db.Prepare("INSERT INTO l VALUES (?, ?)")
	insR, _ := db.Prepare("INSERT INTO r VALUES (?, ?)")
	for i := 0; i < 2000; i++ {
		if _, err := insL.Run(i, i%500); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if _, err := insR.Run(i, "t"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("SELECT COUNT(*) FROM l, r WHERE l.r_id = r.id")
		if err != nil || res.Rows[0][0].Int() != 2000 {
			b.Fatalf("join: %v", err)
		}
	}
}
