package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segmentExt is the suffix of log segment files. Segments are named
// %06d.wal by 1-based index; the data log and the audit log each keep
// their own independently numbered stream in their own directory.
const segmentExt = ".wal"

func segmentName(index uint64) string {
	return fmt.Sprintf("%06d%s", index, segmentExt)
}

// listSegments returns the segment indexes present in dir, ascending.
// Files that don't match the naming scheme are ignored.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, segmentExt) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, segmentExt), 10, 64)
		if err != nil || n == 0 {
			continue
		}
		idx = append(idx, n)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx, nil
}

// scanResult is what scanning one segment stream yields: the records of
// every fully valid frame in index order, plus where writing resumes.
type scanResult struct {
	records  []*Record
	segments []uint64 // indexes present after repair, ascending
	tail     uint64   // segment index to append to (0 = start fresh at 1)
	tailSize int64    // valid bytes in the tail segment
	repaired bool     // a torn/corrupt tail was truncated during open
}

// scanDir reads every segment in dir in index order, truncating the
// stream at the first torn or corrupt record: the bad segment is
// truncated to its valid prefix and any later segments are deleted.
// This is the recovery contract — a crash mid-write loses at most the
// record being written, never an earlier one.
func scanDir(dir string) (*scanResult, error) {
	idx, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &scanResult{}
	for i, n := range idx {
		path := filepath.Join(dir, segmentName(n))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		recs, valid, scanErr := ScanBytes(b)
		res.records = append(res.records, recs...)
		res.segments = append(res.segments, n)
		res.tail = n
		res.tailSize = int64(valid)
		if scanErr == nil {
			continue
		}
		// Torn or corrupt: keep the valid prefix of this segment and
		// drop everything after it.
		res.repaired = true
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("wal: truncating torn segment %s: %w", path, err)
		}
		for _, later := range idx[i+1:] {
			if err := os.Remove(filepath.Join(dir, segmentName(later))); err != nil {
				return nil, fmt.Errorf("wal: removing post-tear segment: %w", err)
			}
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
		break
	}
	return res, nil
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
