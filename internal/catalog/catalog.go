// Package catalog holds schema metadata: tables, columns, indexes, and
// the audit-specific objects (audit expressions and triggers). The
// catalog is metadata only; row data lives in internal/storage.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"auditdb/internal/value"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type value.Kind
}

// TableMeta describes a table's schema.
type TableMeta struct {
	Name    string
	Columns []Column
	// PrimaryKey holds ordinals into Columns. Empty means no declared key.
	PrimaryKey []int
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *TableMeta) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *TableMeta) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// IndexMeta describes a secondary index.
type IndexMeta struct {
	Name    string
	Table   string
	Columns []int // ordinals into the table's columns
}

// TriggerKind distinguishes classic DML triggers from SELECT triggers.
type TriggerKind uint8

// Trigger kinds.
const (
	TriggerAfterInsert TriggerKind = iota
	TriggerAfterUpdate
	TriggerAfterDelete
	TriggerOnAccess // the paper's SELECT trigger: ON ACCESS TO <audit expr>
)

// String returns the DDL-ish name of the trigger kind.
func (k TriggerKind) String() string {
	switch k {
	case TriggerAfterInsert:
		return "AFTER INSERT"
	case TriggerAfterUpdate:
		return "AFTER UPDATE"
	case TriggerAfterDelete:
		return "AFTER DELETE"
	case TriggerOnAccess:
		return "ON ACCESS"
	default:
		return "UNKNOWN"
	}
}

// TriggerMeta describes a trigger. For DML triggers Target is a table
// name; for ON ACCESS triggers Target is an audit expression name.
// Action holds the original SQL text of the body; the engine parses and
// plans it when the trigger fires.
type TriggerMeta struct {
	Name   string
	Kind   TriggerKind
	Target string
	Action string
}

// ViewMeta describes a named view; Definition is the canonical CREATE
// VIEW text. The engine expands view references at plan time.
type ViewMeta struct {
	Name       string
	Definition string
}

// AuditExprMeta describes a declared audit expression (§II-A of the
// paper): the sensitive table, its defining query text, and the
// partition-by key column. The compiled sensitive-ID set is maintained
// by internal/core; the catalog records only the declaration.
type AuditExprMeta struct {
	Name           string
	SensitiveTable string
	PartitionBy    string // column name on the sensitive table
	// Definition is the SQL text of the SELECT that defines sensitivity.
	Definition string
	// Priority is the declared triage weight (PRIORITY n); 0 = none.
	Priority int
}

// Catalog is the schema registry for one database.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*TableMeta
	indexes  map[string]*IndexMeta
	triggers map[string]*TriggerMeta
	audits   map[string]*AuditExprMeta
	views    map[string]*ViewMeta
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*TableMeta),
		indexes:  make(map[string]*IndexMeta),
		triggers: make(map[string]*TriggerMeta),
		audits:   make(map[string]*AuditExprMeta),
		views:    make(map[string]*ViewMeta),
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers a table schema.
func (c *Catalog) AddTable(t *TableMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("a view named %q already exists", t.Name)
	}
	seen := map[string]bool{}
	for _, col := range t.Columns {
		ck := key(col.Name)
		if seen[ck] {
			return fmt.Errorf("table %q: duplicate column %q", t.Name, col.Name)
		}
		seen[ck] = true
	}
	for _, pk := range t.PrimaryKey {
		if pk < 0 || pk >= len(t.Columns) {
			return fmt.Errorf("table %q: primary key ordinal %d out of range", t.Name, pk)
		}
	}
	c.tables[k] = t
	return nil
}

// Table looks up a table schema by name (case-insensitive).
func (c *Catalog) Table(name string) (*TableMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// DropTable removes a table and its dependent indexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, k)
	for ik, idx := range c.indexes {
		if key(idx.Table) == k {
			delete(c.indexes, ik)
		}
	}
	return nil
}

// Tables returns all table schemas sorted by name.
func (c *Catalog) Tables() []*TableMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TableMeta, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers a secondary index.
func (c *Catalog) AddIndex(idx *IndexMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(idx.Table)]; !ok {
		return fmt.Errorf("index %q: table %q does not exist", idx.Name, idx.Table)
	}
	k := key(idx.Name)
	if _, ok := c.indexes[k]; ok {
		return fmt.Errorf("index %q already exists", idx.Name)
	}
	c.indexes[k] = idx
	return nil
}

// Index looks up an index by name.
func (c *Catalog) Index(name string) (*IndexMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.indexes[key(name)]
	return i, ok
}

// Indexes returns all secondary indexes sorted by name.
func (c *Catalog) Indexes() []*IndexMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*IndexMeta, 0, len(c.indexes))
	for _, i := range c.indexes {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddView registers a view. The name must not collide with a table or
// another view.
func (c *Catalog) AddView(v *ViewMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(v.Name)
	if _, dup := c.views[k]; dup {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	if _, dup := c.tables[k]; dup {
		return fmt.Errorf("a table named %q already exists", v.Name)
	}
	c.views[k] = v
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*ViewMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("view %q does not exist", name)
	}
	delete(c.views, k)
	return nil
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*ViewMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*ViewMeta, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropIndex removes a secondary index from the catalog.
func (c *Catalog) DropIndex(name string) (*IndexMeta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	idx, ok := c.indexes[k]
	if !ok {
		return nil, fmt.Errorf("index %q does not exist", name)
	}
	delete(c.indexes, k)
	return idx, nil
}

// AddTrigger registers a trigger.
func (c *Catalog) AddTrigger(t *TriggerMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.triggers[k]; ok {
		return fmt.Errorf("trigger %q already exists", t.Name)
	}
	c.triggers[k] = t
	return nil
}

// DropTrigger removes a trigger.
func (c *Catalog) DropTrigger(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.triggers[k]; !ok {
		return fmt.Errorf("trigger %q does not exist", name)
	}
	delete(c.triggers, k)
	return nil
}

// Trigger looks up a trigger by name.
func (c *Catalog) Trigger(name string) (*TriggerMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.triggers[key(name)]
	return t, ok
}

// Triggers returns all triggers sorted by name.
func (c *Catalog) Triggers() []*TriggerMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*TriggerMeta, 0, len(c.triggers))
	for _, t := range c.triggers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TriggersFor returns the triggers of the given kind whose target
// matches name, sorted by trigger name for deterministic firing order.
func (c *Catalog) TriggersFor(kind TriggerKind, target string) []*TriggerMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*TriggerMeta
	for _, t := range c.triggers {
		if t.Kind == kind && strings.EqualFold(t.Target, target) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddAuditExpr registers an audit expression declaration.
func (c *Catalog) AddAuditExpr(a *AuditExprMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(a.Name)
	if _, ok := c.audits[k]; ok {
		return fmt.Errorf("audit expression %q already exists", a.Name)
	}
	if _, ok := c.tables[key(a.SensitiveTable)]; !ok {
		return fmt.Errorf("audit expression %q: sensitive table %q does not exist", a.Name, a.SensitiveTable)
	}
	c.audits[k] = a
	return nil
}

// DropAuditExpr removes an audit expression declaration.
func (c *Catalog) DropAuditExpr(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.audits[k]; !ok {
		return fmt.Errorf("audit expression %q does not exist", name)
	}
	delete(c.audits, k)
	return nil
}

// AuditExpr looks up an audit expression by name.
func (c *Catalog) AuditExpr(name string) (*AuditExprMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.audits[key(name)]
	return a, ok
}

// AuditExprs returns all audit expressions sorted by name.
func (c *Catalog) AuditExprs() []*AuditExprMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*AuditExprMeta, 0, len(c.audits))
	for _, a := range c.audits {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
