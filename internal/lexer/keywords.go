package lexer

// Keyword identifies a reserved word. The zero value KwNone means "not
// a keyword". Matching by enum (instead of comparing uppercased text)
// is what lets the scanner classify words without allocating.
type Keyword uint8

// Reserved words. Function names (YEAR, SUBSTRING, COALESCE, ...) are
// deliberately not reserved; they lex as identifiers.
const (
	KwNone Keyword = iota
	KwSelect
	KwFrom
	KwWhere
	KwGroup
	KwBy
	KwHaving
	KwOrder
	KwAsc
	KwDesc
	KwLimit
	KwDistinct
	KwAll
	KwAs
	KwAnd
	KwOr
	KwNot
	KwIn
	KwExists
	KwBetween
	KwLike
	KwIs
	KwNull
	KwTrue
	KwFalse
	KwJoin
	KwInner
	KwLeft
	KwRight
	KwOuter
	KwOn
	KwCross
	KwCase
	KwWhen
	KwThen
	KwElse
	KwEnd
	KwInsert
	KwInto
	KwValues
	KwUpdate
	KwSet
	KwDelete
	KwCreate
	KwTable
	KwIndex
	KwPrimary
	KwKey
	KwDrop
	KwTrigger
	KwAudit
	KwExpression
	KwAccess
	KwTo
	KwAfter
	KwFor
	KwSensitive
	KwPartition
	KwIf
	KwDate
	KwUnique
	KwBegin
	KwExplain
	KwCommit
	KwRollback
	KwView

	numKeywords
)

// kwNames holds the canonical (uppercase) spelling of each keyword.
var kwNames = [numKeywords]string{
	KwSelect: "SELECT", KwFrom: "FROM", KwWhere: "WHERE", KwGroup: "GROUP",
	KwBy: "BY", KwHaving: "HAVING", KwOrder: "ORDER", KwAsc: "ASC",
	KwDesc: "DESC", KwLimit: "LIMIT", KwDistinct: "DISTINCT", KwAll: "ALL",
	KwAs: "AS", KwAnd: "AND", KwOr: "OR", KwNot: "NOT", KwIn: "IN",
	KwExists: "EXISTS", KwBetween: "BETWEEN", KwLike: "LIKE", KwIs: "IS",
	KwNull: "NULL", KwTrue: "TRUE", KwFalse: "FALSE", KwJoin: "JOIN",
	KwInner: "INNER", KwLeft: "LEFT", KwRight: "RIGHT", KwOuter: "OUTER",
	KwOn: "ON", KwCross: "CROSS", KwCase: "CASE", KwWhen: "WHEN",
	KwThen: "THEN", KwElse: "ELSE", KwEnd: "END", KwInsert: "INSERT",
	KwInto: "INTO", KwValues: "VALUES", KwUpdate: "UPDATE", KwSet: "SET",
	KwDelete: "DELETE", KwCreate: "CREATE", KwTable: "TABLE",
	KwIndex: "INDEX", KwPrimary: "PRIMARY", KwKey: "KEY", KwDrop: "DROP",
	KwTrigger: "TRIGGER", KwAudit: "AUDIT", KwExpression: "EXPRESSION",
	KwAccess: "ACCESS", KwTo: "TO", KwAfter: "AFTER", KwFor: "FOR",
	KwSensitive: "SENSITIVE", KwPartition: "PARTITION", KwIf: "IF",
	KwDate: "DATE", KwUnique: "UNIQUE", KwBegin: "BEGIN",
	KwExplain: "EXPLAIN", KwCommit: "COMMIT", KwRollback: "ROLLBACK",
	KwView: "VIEW",
}

// String returns the canonical uppercase spelling.
func (k Keyword) String() string {
	if k == KwNone || k >= numKeywords {
		return "?"
	}
	return kwNames[k]
}

// maxKeywordLen bounds the length buckets; EXPRESSION is the longest
// reserved word at 10 bytes.
const maxKeywordLen = 10

// kwBuckets groups keywords by byte length so a lookup compares only
// the handful of candidates of the right size.
var kwBuckets [maxKeywordLen + 1][]Keyword

func init() {
	for kw := KwNone + 1; kw < numKeywords; kw++ {
		n := len(kwNames[kw])
		kwBuckets[n] = append(kwBuckets[n], kw)
	}
}

// LookupKeyword reports which reserved word the (ASCII
// case-insensitive) text spells, or KwNone. It never allocates.
func LookupKeyword(word string) Keyword {
	if len(word) < 2 || len(word) > maxKeywordLen {
		return KwNone
	}
	for _, kw := range kwBuckets[len(word)] {
		if asciiEqualUpper(word, kwNames[kw]) {
			return kw
		}
	}
	return KwNone
}

// asciiEqualUpper compares s against an all-uppercase ASCII name,
// folding s's lowercase letters. Bytes outside a-zA-Z never match the
// A-Z bytes of a keyword name, so identifiers with digits, '_' or '$'
// fall out naturally.
func asciiEqualUpper(s, upper string) bool {
	if len(s) != len(upper) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// OpKind identifies an operator or punctuation token. != lexes as
// OpNe, the same kind as <>, so downstream code never sees two
// spellings.
type OpKind uint8

// Operator kinds.
const (
	OpNone     OpKind = iota
	OpEq              // =
	OpLt              // <
	OpLe              // <=
	OpGt              // >
	OpGe              // >=
	OpNe              // <> or !=
	OpPlus            // +
	OpMinus           // -
	OpStar            // *
	OpSlash           // /
	OpPercent         // %
	OpLParen          // (
	OpRParen          // )
	OpComma           // ,
	OpSemi            // ;
	OpDot             // .
	OpQuestion        // ?
	OpConcat          // ||

	numOps
)

var opNames = [numOps]string{
	OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpNe: "<>",
	OpPlus: "+", OpMinus: "-", OpStar: "*", OpSlash: "/", OpPercent: "%",
	OpLParen: "(", OpRParen: ")", OpComma: ",", OpSemi: ";", OpDot: ".",
	OpQuestion: "?", OpConcat: "||",
}

// String returns the canonical operator spelling.
func (o OpKind) String() string {
	if o == OpNone || o >= numOps {
		return "?"
	}
	return opNames[o]
}
