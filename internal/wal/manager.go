package wal

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"auditdb/internal/value"
)

// Layout under the data directory:
//
//	wal/%06d.wal          committed DML/DDL + checkpoint markers
//	audit/%06d.wal        hash-chained trigger-firing records
//	checkpoint-%06d.sql   snapshot; the index is the first data
//	                      segment NOT covered by the snapshot
//
// The audit stream is never truncated by checkpoints: it is the
// evidence the system exists to keep. A checkpoint file's first line
// is a meta comment anchoring the audit chain (seq + head hash) at
// snapshot time; because the file is fsynced before old segments are
// deleted, the anchor makes truncation of the audit log detectable
// even across restarts, when the in-memory head is itself rebuilt
// from the (possibly truncated) disk state.
const (
	dataDirName  = "wal"
	auditDirName = "audit"
	ckptPrefix   = "checkpoint-"
	ckptExt      = ".sql"
	metaComment  = "-- auditdb-checkpoint "
	// verdictKeyName is the HMAC key file for triage verdict records,
	// created on first open and reused across restarts so VERIFY AUDIT
	// LOG can check verdict signatures written in any earlier boot.
	verdictKeyName = "verdict.key"
)

// Options configures Open.
type Options struct {
	Sync         SyncPolicy
	SyncInterval time.Duration // fsync period under SyncInterval (default 50ms)
	MaxSegBytes  int64         // segment rotation threshold (default 4 MiB)
	Metrics      *Metrics      // nil = no metrics
}

// Recovery is what Open found on disk: the state the engine must
// rebuild before serving. Commits excludes units already covered by
// the snapshot.
type Recovery struct {
	SnapshotSQL string // latest checkpoint's dump ("" = none)
	HasSnapshot bool
	Commits     []*Commit
	AuditSeq    uint64 // audit-chain position after load
	Repaired    bool   // a torn tail was truncated in either stream
}

// WasFresh reports whether the data directory held no prior state.
func (r *Recovery) WasFresh() bool {
	return !r.HasSnapshot && len(r.Commits) == 0 && r.AuditSeq == 0
}

// ckptMeta is the JSON in a checkpoint file's leading meta comment.
type ckptMeta struct {
	AuditSeq  uint64 `json:"audit_seq"`
	AuditHead string `json:"audit_head"` // hex SHA-256
	UnixNano  int64  `json:"unix_nano"`
}

// Manager owns one data directory's log streams and checkpoints.
type Manager struct {
	dir      string
	opts     Options
	metrics  *Metrics
	dataW    *logWriter
	auditW   *logWriter
	closeMu  sync.Mutex
	closedCh bool

	// Audit chain head. auditMu also serializes appends with
	// verification and anchor capture. The chain interleaves RecAudit
	// and RecVerdict records under one sequence.
	auditMu   sync.Mutex
	auditSeq  uint64
	auditHead [HashSize]byte

	// verdictKey signs RecVerdict records (HMAC-SHA256). Loaded or
	// created at Open; immutable afterwards.
	verdictKey []byte

	// Latest checkpoint's anchor, for VerifyAudit.
	anchorMu sync.Mutex
	anchor   *ckptMeta
}

// Open prepares dir (created if missing), repairs torn tails, loads
// the latest checkpoint and the records after it, rebuilds the audit
// chain head, and starts the group-commit writers.
func Open(dir string, opts Options) (*Manager, *Recovery, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	if opts.MaxSegBytes <= 0 {
		opts.MaxSegBytes = 4 << 20
	}
	dataDir := filepath.Join(dir, dataDirName)
	auditDir := filepath.Join(dir, auditDirName)
	for _, d := range []string{dataDir, auditDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, err
		}
	}
	removeStaleTemps(dir)

	m := &Manager{dir: dir, opts: opts, metrics: opts.Metrics}
	rec := &Recovery{}
	key, err := loadOrCreateVerdictKey(dir)
	if err != nil {
		return nil, nil, err
	}
	m.verdictKey = key

	// Latest checkpoint, if any.
	ckptIdx, meta, sql, err := loadLatestCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	if meta != nil {
		rec.SnapshotSQL = sql
		rec.HasSnapshot = true
		m.anchor = meta
	}

	// Finish any interrupted truncation: data segments below the
	// checkpoint index are fully covered by the snapshot.
	if ckptIdx > 0 {
		if err := removeSegmentsBelow(dataDir, ckptIdx); err != nil {
			return nil, nil, err
		}
	}

	dataScan, err := scanDir(dataDir)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range dataScan.records {
		if r.Type == RecCommit {
			rec.Commits = append(rec.Commits, r.Commit)
		}
	}

	auditScan, err := scanDir(auditDir)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range auditScan.records {
		switch r.Type {
		case RecAudit:
			m.auditSeq = r.Audit.Seq
			m.auditHead = r.Audit.Hash()
		case RecVerdict:
			m.auditSeq = r.Verdict.Seq
			m.auditHead = r.Verdict.Hash()
		}
	}
	rec.AuditSeq = m.auditSeq
	rec.Repaired = dataScan.repaired || auditScan.repaired

	m.dataW, err = newLogWriter(dataDir, dataScan.tail, dataScan.tailSize,
		opts.Sync, opts.SyncInterval, opts.MaxSegBytes, m.metrics)
	if err != nil {
		return nil, nil, err
	}
	m.auditW, err = newLogWriter(auditDir, auditScan.tail, auditScan.tailSize,
		opts.Sync, opts.SyncInterval, opts.MaxSegBytes, m.metrics)
	if err != nil {
		m.dataW.close()
		return nil, nil, err
	}
	return m, rec, nil
}

// Close flushes and stops both writers.
func (m *Manager) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closedCh {
		return nil
	}
	m.closedCh = true
	err1 := m.dataW.close()
	err2 := m.auditW.close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// AppendCommit logs one atomic unit's operations and blocks until the
// group-commit batch containing it reaches the log (and, under
// SyncAlways, the disk).
func (m *Manager) AppendCommit(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	frame := AppendRecord(nil, &Record{Type: RecCommit, Commit: &Commit{Ops: ops}})
	return m.dataW.submit(frame)
}

// AppendAudit logs one trigger firing's accessed-ID set, chained to
// its predecessor, and returns the chain sequence the record landed at
// (triage verdicts reference it). qid is the tracing layer's query ID
// for the statement that caused the access; it rides inside the
// hash-chained payload, joining the audit record to its trace. Chain
// order and log order must agree, so the enqueue happens under the
// chain mutex; the wait for durability does not, preserving group
// commit across concurrent auditors.
func (m *Manager) AppendAudit(user, expr, sql string, ids []value.Value, qid uint64, unixNano int64) (uint64, error) {
	m.auditMu.Lock()
	a := &Audit{
		Seq:      m.auditSeq + 1,
		Prev:     m.auditHead,
		User:     user,
		Expr:     expr,
		SQL:      sql,
		UnixNano: unixNano,
		QID:      qid,
		IDs:      ids,
	}
	frame := AppendRecord(nil, &Record{Type: RecAudit, Audit: a})
	ch, err := m.auditW.submitAsync(frame)
	if err != nil {
		m.auditMu.Unlock()
		return 0, err
	}
	m.auditSeq = a.Seq
	m.auditHead = a.Hash()
	m.auditMu.Unlock()
	return a.Seq, <-ch
}

// AppendVerdict signs v, chains it into the audit stream, and blocks
// until it is durable. The caller fills every field except Seq, Prev
// and Sig, which the manager assigns under the chain mutex. The
// assigned chain sequence is returned.
func (m *Manager) AppendVerdict(v *Verdict) (uint64, error) {
	m.auditMu.Lock()
	v.Seq = m.auditSeq + 1
	v.Prev = m.auditHead
	mac := hmac.New(sha256.New, m.verdictKey)
	mac.Write(v.SigningBytes())
	copy(v.Sig[:], mac.Sum(nil))
	frame := AppendRecord(nil, &Record{Type: RecVerdict, Verdict: v})
	ch, err := m.auditW.submitAsync(frame)
	if err != nil {
		m.auditMu.Unlock()
		return 0, err
	}
	m.auditSeq = v.Seq
	m.auditHead = v.Hash()
	m.auditMu.Unlock()
	return v.Seq, <-ch
}

// loadOrCreateVerdictKey reads the verdict signing key, generating and
// persisting a fresh 32-byte key on first use. The file is fsynced via
// its directory so a key can never be silently lost between the boot
// that wrote verdicts and the boot that verifies them.
func loadOrCreateVerdictKey(dir string) ([]byte, error) {
	path := filepath.Join(dir, verdictKeyName)
	if b, err := os.ReadFile(path); err == nil {
		if len(b) != HashSize {
			return nil, fmt.Errorf("wal: verdict key %s has %d bytes, want %d", path, len(b), HashSize)
		}
		return b, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	key := make([]byte, HashSize)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, key, 0o600); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return key, nil
}

// AuditState returns the in-memory chain position.
func (m *Manager) AuditState() (seq uint64, head [HashSize]byte) {
	m.auditMu.Lock()
	defer m.auditMu.Unlock()
	return m.auditSeq, m.auditHead
}

// Checkpoint writes a snapshot (via dump, typically engine.Dump) and
// truncates the data segments it covers. The caller must hold the
// engine's commit locks: no commit may land between the rotation
// barrier and the dump, or replay would double-apply it.
func (m *Manager) Checkpoint(dump func(io.Writer) error) error {
	start := time.Now()

	// Make the audit records the anchor will vouch for durable first.
	if err := m.auditW.barrier(false); err != nil {
		return fmt.Errorf("wal: audit flush before checkpoint: %w", err)
	}
	m.auditMu.Lock()
	meta := &ckptMeta{
		AuditSeq:  m.auditSeq,
		AuditHead: hex.EncodeToString(m.auditHead[:]),
		UnixNano:  start.UnixNano(),
	}
	auditHead := m.auditHead
	m.auditMu.Unlock()

	// Seal the data log: everything before the new tail segment is in
	// the snapshot's past.
	tail, err := m.dataW.barrierRotate()
	if err != nil {
		return fmt.Errorf("wal: sealing data log: %w", err)
	}

	// Snapshot to a temp file, fsync, rename: the checkpoint either
	// exists completely or not at all.
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	final := filepath.Join(m.dir, checkpointName(tail))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	werr := func() error {
		if _, err := fmt.Fprintf(f, "%s%s\n", metaComment, metaJSON); err != nil {
			return err
		}
		if err := dump(f); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	m.anchorMu.Lock()
	m.anchor = meta
	m.anchorMu.Unlock()

	// Marker in the new segment, then drop what the snapshot covers.
	marker := AppendRecord(nil, &Record{Type: RecCheckpoint, Checkpoint: &Checkpoint{
		AuditSeq:  meta.AuditSeq,
		AuditHead: auditHead,
		UnixNano:  meta.UnixNano,
	}})
	if err := m.dataW.submit(marker); err != nil {
		return err
	}
	if err := removeSegmentsBelow(filepath.Join(m.dir, dataDirName), tail); err != nil {
		return err
	}
	if err := removeCheckpointsBelow(m.dir, tail); err != nil {
		return err
	}
	if m.metrics != nil {
		m.metrics.Checkpoints.Inc()
		m.metrics.CheckpointDur.ObserveDuration(time.Since(start))
	}
	return nil
}

// VerifyReport is the result of a VERIFY AUDIT LOG pass.
type VerifyReport struct {
	Valid   bool
	Records uint64
	HeadHex string
	Reason  string // why Valid is false
}

// VerifyAudit re-reads the audit stream from disk and checks every
// link: each record's Prev must equal its predecessor's SHA-256,
// sequence numbers must be gapless from 1, the recomputed head must
// match the live in-memory head, and the latest checkpoint's anchor
// must sit on the chain — so an edited record, a truncated tail, or a
// deleted segment is reported even after a restart rebuilt the
// in-memory head from the tampered file.
func (m *Manager) VerifyAudit() (*VerifyReport, error) {
	// Quiesce appends and flush buffered records so disk is current.
	m.auditMu.Lock()
	defer m.auditMu.Unlock()
	if err := m.auditW.barrier(false); err != nil {
		return nil, err
	}

	auditDir := filepath.Join(m.dir, auditDirName)
	idx, err := listSegments(auditDir)
	if err != nil {
		return nil, err
	}
	invalid := func(format string, args ...any) (*VerifyReport, error) {
		return &VerifyReport{Valid: false, Reason: fmt.Sprintf(format, args...)}, nil
	}
	var (
		seq  uint64
		head [HashSize]byte
	)
	anchorChecked := false
	m.anchorMu.Lock()
	anchor := m.anchor
	m.anchorMu.Unlock()
	if anchor != nil && anchor.AuditSeq == 0 {
		anchorChecked = true // chain was empty at checkpoint; nothing to pin
	}
	for _, n := range idx {
		b, err := os.ReadFile(filepath.Join(auditDir, segmentName(n)))
		if err != nil {
			return nil, err
		}
		recs, valid, scanErr := ScanBytes(b)
		if scanErr != nil {
			return invalid("segment %s corrupt at offset %d: %v", segmentName(n), valid, scanErr)
		}
		for _, r := range recs {
			var (
				rSeq  uint64
				rPrev [HashSize]byte
			)
			switch r.Type {
			case RecAudit:
				rSeq, rPrev = r.Audit.Seq, r.Audit.Prev
			case RecVerdict:
				rSeq, rPrev = r.Verdict.Seq, r.Verdict.Prev
			default:
				return invalid("segment %s holds a non-audit record (type %d)", segmentName(n), r.Type)
			}
			if rSeq != seq+1 {
				return invalid("sequence gap: record %d follows record %d", rSeq, seq)
			}
			if rPrev != head {
				return invalid("broken hash chain at record %d: stored predecessor hash does not match", rSeq)
			}
			seq = rSeq
			if r.Type == RecVerdict {
				// A verdict carries the triage service's attestation of the
				// offline check; the chain alone cannot vouch for it, so its
				// HMAC is re-derived from the persisted key.
				mac := hmac.New(sha256.New, m.verdictKey)
				mac.Write(r.Verdict.SigningBytes())
				if !hmac.Equal(mac.Sum(nil), r.Verdict.Sig[:]) {
					return invalid("verdict record %d has an invalid signature: verdict forged or key replaced", seq)
				}
				head = r.Verdict.Hash()
			} else {
				head = r.Audit.Hash()
			}
			if anchor != nil && seq == anchor.AuditSeq {
				if hex.EncodeToString(head[:]) != anchor.AuditHead {
					return invalid("checkpoint anchor mismatch at record %d: chain was rewritten before the last checkpoint", seq)
				}
				anchorChecked = true
			}
		}
	}
	if anchor != nil && !anchorChecked {
		return invalid("audit log truncated: checkpoint anchors record %d, log ends at %d", anchor.AuditSeq, seq)
	}
	if seq != m.auditSeq || head != m.auditHead {
		return invalid("on-disk chain (record %d) does not match live head (record %d): log modified underneath the server", seq, m.auditSeq)
	}
	return &VerifyReport{Valid: true, Records: seq, HeadHex: hex.EncodeToString(head[:])}, nil
}

// ---- checkpoint files ----

func checkpointName(index uint64) string {
	return fmt.Sprintf("%s%06d%s", ckptPrefix, index, ckptExt)
}

// listCheckpoints returns checkpoint indexes in dir, ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptExt), 10, 64)
		if err != nil || n == 0 {
			continue
		}
		idx = append(idx, n)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx, nil
}

// loadLatestCheckpoint returns the highest checkpoint's index, meta,
// and snapshot SQL (meta line stripped). Index 0 means none.
func loadLatestCheckpoint(dir string) (uint64, *ckptMeta, string, error) {
	idx, err := listCheckpoints(dir)
	if err != nil {
		return 0, nil, "", err
	}
	if len(idx) == 0 {
		return 0, nil, "", nil
	}
	n := idx[len(idx)-1]
	b, err := os.ReadFile(filepath.Join(dir, checkpointName(n)))
	if err != nil {
		return 0, nil, "", err
	}
	line, rest, _ := bytes.Cut(b, []byte("\n"))
	if !bytes.HasPrefix(line, []byte(metaComment)) {
		return 0, nil, "", fmt.Errorf("wal: checkpoint %s has no meta line", checkpointName(n))
	}
	meta := &ckptMeta{}
	if err := json.Unmarshal(bytes.TrimPrefix(line, []byte(metaComment)), meta); err != nil {
		return 0, nil, "", fmt.Errorf("wal: checkpoint %s meta: %w", checkpointName(n), err)
	}
	if h, err := hex.DecodeString(meta.AuditHead); err != nil || len(h) != HashSize {
		return 0, nil, "", fmt.Errorf("wal: checkpoint %s meta: bad audit head", checkpointName(n))
	}
	return n, meta, string(rest), nil
}

func removeSegmentsBelow(dir string, index uint64) error {
	idx, err := listSegments(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, n := range idx {
		if n >= index {
			break
		}
		if err := os.Remove(filepath.Join(dir, segmentName(n))); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}

func removeCheckpointsBelow(dir string, index uint64) error {
	idx, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, n := range idx {
		if n >= index {
			break
		}
		if err := os.Remove(filepath.Join(dir, checkpointName(n))); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}

// removeStaleTemps deletes checkpoint temp files left by a crash
// mid-checkpoint; the rename never happened, so they are garbage.
func removeStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// sha256Zero is the chain's genesis predecessor (all zero bytes).
var sha256Zero [sha256.Size]byte

// GenesisPrev returns the Prev value of the chain's first record.
func GenesisPrev() [HashSize]byte { return sha256Zero }
