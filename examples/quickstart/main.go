// Quickstart: the paper's HIPAA scenario (§I, Example 1.1).
//
// A hospital must be able to tell patient Alice every entity that
// accessed her record. We declare her record sensitive with an audit
// expression, attach a SELECT trigger that logs accesses, and then run
// queries — including one that only touches her record inside a
// subquery, which output-based auditing would miss.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"auditdb"
)

func main() {
	db := auditdb.Open()
	db.SetUser("dr_mallory")

	must(db.ExecScript(`
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease  (PatientID INT, Disease VARCHAR(30));
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);

		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'), (2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'), (4, 'Dave', 29, '98052'), (5, 'Erin', 62, '10001');
		INSERT INTO Disease VALUES
			(1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
	`))

	// §II-A, Example 2.1: declare Alice's record sensitive.
	must(db.Exec(`
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`))

	// §II-C: log every access with who/when/what.
	must(db.Exec(`
		CREATE TRIGGER Log_Alice_Accesses ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED`))

	// Example 1.2, query 1: direct access.
	fmt.Println("-- direct query touching Alice:")
	run(db, `SELECT P.PatientID, Name, Age, Zip
		FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer'`)

	// Example 1.2, query 2: the access hides inside an EXISTS
	// subquery; the result rows never contain Alice's data, yet her
	// record influenced them (Definition 2.3).
	fmt.Println("-- indirect query (EXISTS subquery):")
	run(db, `SELECT 1 FROM Patients WHERE exists
		(SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer')`)

	// A query that does not touch Alice fires nothing.
	fmt.Println("-- unrelated query (Bob):")
	run(db, `SELECT * FROM Patients WHERE Name = 'Bob'`)

	fmt.Println("-- audit log (what Alice would be shown on request):")
	res := must(db.Query(`SELECT At, UserID, PatientID, SQL FROM Log`))
	for _, row := range res.Rows {
		fmt.Printf("  at=%s user=%s patient=%s\n    query: %.60s...\n",
			row[0], row[1], row[2], row[3])
	}
	fmt.Printf("\n%d accesses were logged; the offline auditor can verify each one exactly.\n", len(res.Rows))

	rep, err := db.OfflineAudit(`SELECT 1 FROM Patients WHERE exists
		(SELECT * FROM Patients P, Disease D
		 WHERE P.PatientID = D.PatientID AND Name = 'Alice' AND Disease = 'cancer')`, "Audit_Alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline verification of the subquery access: accessedIDs=%v (%d re-executions)\n",
		rep.AccessedIDs, rep.Executions)
}

func run(db *auditdb.DB, sql string) {
	res := must(db.Query(sql))
	fmt.Printf("  %d result rows; audited expressions: %v\n", len(res.Rows), res.AuditedExpressions())
}

func must(r *auditdb.Result, err ...error) *auditdb.Result {
	if len(err) > 0 && err[0] != nil {
		log.Fatal(err[0])
	}
	return r
}
