package core

import (
	"testing"

	"auditdb/internal/value"
)

// TestRecordBatchMatchesRecord: RecordBatch must be observationally
// identical to element-wise Record — same dedup, same sorted IDs —
// across integer IDs (the specialized map) and other kinds (the
// string-keyed fallback).
func TestRecordBatchMatchesRecord(t *testing.T) {
	vals := []value.Value{
		value.NewInt(3), value.NewInt(1), value.NewInt(3), // int dup
		value.NewString("x"), value.NewString("x"), // non-int dup
		value.NewInt(7),
	}
	one := NewAccessed()
	for _, v := range vals {
		one.Record("e", v)
	}
	batched := NewAccessed()
	batched.RecordBatch("e", vals)

	a, b := one.IDs("e"), batched.IDs("e")
	if len(a) != len(b) || one.Len("e") != batched.Len("e") {
		t.Fatalf("Record -> %v, RecordBatch -> %v", a, b)
	}
	for i := range a {
		if value.Compare(a[i], b[i]) != 0 {
			t.Errorf("ids[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	if got := batched.Len("e"); got != 4 {
		t.Errorf("Len = %d, want 4 (3 ints + 1 string, dups absorbed)", got)
	}
}

// TestObserveBatchMatchesObserve: the batched probe path must produce
// the same ACCESSED contents and observed count as the row-at-a-time
// path for the same value stream, duplicates included.
func TestObserveBatchMatchesObserve(t *testing.T) {
	f := newFixture(t)
	stream := []value.Value{
		value.NewInt(1), value.NewInt(999), value.Null,
		value.NewInt(2), value.NewInt(1), // duplicate sensitive ID
	}

	rowAcc := NewAccessed()
	rowProbe := &Probe{Expr: f.ae, Acc: rowAcc}
	for _, v := range stream {
		rowProbe.Observe(v)
	}

	batchAcc := NewAccessed()
	batchProbe := &Probe{Expr: f.ae, Acc: batchAcc}
	batchProbe.ObserveBatch(stream[:3])
	batchProbe.ObserveBatch(stream[3:])

	name := f.ae.Meta.Name
	if rowAcc.Len(name) != batchAcc.Len(name) {
		t.Errorf("Len: row %d vs batch %d", rowAcc.Len(name), batchAcc.Len(name))
	}
	a, b := rowAcc.IDs(name), batchAcc.IDs(name)
	for i := range a {
		if value.Compare(a[i], b[i]) != 0 {
			t.Errorf("ids[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	if rowAcc.Observed() != batchAcc.Observed() {
		t.Errorf("Observed: row %d vs batch %d", rowAcc.Observed(), batchAcc.Observed())
	}
}
