package auditdb

import (
	"strings"
	"testing"
)

func openHealth(t *testing.T) *DB {
	t.Helper()
	db := Open()
	_, err := db.ExecScript(`
		CREATE TABLE Patients (PatientID INT PRIMARY KEY, Name VARCHAR(30), Age INT, Zip VARCHAR(10));
		CREATE TABLE Disease (PatientID INT, Disease VARCHAR(30));
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		INSERT INTO Patients VALUES
			(1, 'Alice', 34, '48109'), (2, 'Bob', 21, '48109'),
			(3, 'Carol', 47, '98052'), (4, 'Dave', 29, '98052'), (5, 'Erin', 62, '10001');
		INSERT INTO Disease VALUES (1, 'cancer'), (2, 'flu'), (3, 'flu'), (4, 'diabetes'), (5, 'cancer');
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := openHealth(t)
	db.SetUser("auditor_demo")

	r, err := db.Query("SELECT Name, Age FROM Patients WHERE Name = 'Alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "Alice" {
		t.Fatalf("rows = %v", r.Rows)
	}
	ids := r.AccessedIDs("Audit_Alice")
	if len(ids) != 1 || ids[0].Int() != 1 {
		t.Errorf("accessed = %v", ids)
	}
	if r.AccessedCount("Audit_Alice") != 1 {
		t.Errorf("count = %d", r.AccessedCount("Audit_Alice"))
	}
	if exprs := r.AuditedExpressions(); len(exprs) != 1 || exprs[0] != "Audit_Alice" {
		t.Errorf("expressions = %v", exprs)
	}

	lg, err := db.Query("SELECT UserID, PatientID FROM Log")
	if err != nil {
		t.Fatal(err)
	}
	// The SELECT on Log itself fires no triggers but the earlier
	// patient query must have logged one row.
	if len(lg.Rows) != 1 || lg.Rows[0][0].Str() != "auditor_demo" {
		t.Errorf("log = %v", lg.Rows)
	}
}

func TestPublicOfflineAudit(t *testing.T) {
	db := openHealth(t)
	rep, err := db.OfflineAudit("SELECT * FROM Patients WHERE Zip = '48109'", "Audit_Alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AccessedIDs) != 1 || rep.AccessedIDs[0].Int() != 1 {
		t.Errorf("offline = %+v", rep)
	}
	if rep.Candidates != 1 || rep.Executions < 3 {
		t.Errorf("cost counters = %+v", rep)
	}
	if _, err := db.OfflineAudit("SELECT 1", "nope"); err == nil {
		t.Error("unknown expression should fail")
	}
}

func TestPublicPlacementControl(t *testing.T) {
	db := openHealth(t)
	db.SetAuditAll(true)
	q := `SELECT P.Name FROM Patients P, Disease D
		WHERE P.PatientID = D.PatientID AND D.Disease = 'flu'`

	db.SetPlacement(PlacementHCN)
	r, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.AccessedCount("Audit_Alice"); n != 0 {
		t.Errorf("hcn: Alice not in flu join, got %d", n)
	}

	db.SetPlacement(PlacementLeafNode)
	r, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.AccessedCount("Audit_Alice"); n != 1 {
		t.Errorf("leaf: Alice passes the scan, got %d", n)
	}
}

func TestPublicExplain(t *testing.T) {
	db := openHealth(t)
	s, err := db.Explain("SELECT * FROM Patients", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Audit(") || !strings.Contains(s, "Scan(") {
		t.Errorf("explain = %s", s)
	}
}

func TestPublicStatsAndCardinality(t *testing.T) {
	db := openHealth(t)
	n, err := db.AuditExpressionCardinality("Audit_Alice")
	if err != nil || n != 1 {
		t.Errorf("cardinality = %d, %v", n, err)
	}
	if _, err := db.AuditExpressionCardinality("nope"); err == nil {
		t.Error("unknown expression should fail")
	}
	if _, err := db.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st["rows_audited"] < 1 || st["triggers_fired"] < 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestPublicNotify(t *testing.T) {
	db := Open()
	var got []string
	db.OnNotify(func(m string) { got = append(got, m) })
	if _, err := db.ExecScript(`
		CREATE TABLE T (x INT);
		CREATE TRIGGER n ON T AFTER INSERT AS NOTIFY 'hello';
		INSERT INTO T VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("notifications = %v", got)
	}
}
