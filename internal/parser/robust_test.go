package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics drives the parser with mangled variants of
// real statements: random truncations, token deletions and splices.
// Every input must either parse or return an error — never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE x = 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY b DESC LIMIT 5",
		"SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b IN (SELECT b FROM u)",
		"DELETE FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
		"CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10), c DATE)",
		"CREATE AUDIT EXPRESSION e AS SELECT * FROM t WHERE a = 1 FOR SENSITIVE TABLE t PARTITION BY a",
		"CREATE TRIGGER tr ON ACCESS TO e AS INSERT INTO log SELECT x FROM ACCESSED",
		"CREATE TRIGGER tr ON t AFTER INSERT AS IF (SELECT COUNT(*) > 1 FROM t) NOTIFY 'x'",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"EXPLAIN SELECT * FROM t",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c LIKE '%x%' AND d IS NOT NULL",
	}
	rng := rand.New(rand.NewSource(2013))
	for _, seed := range seeds {
		// The original must parse.
		if _, err := ParseScript(seed); err != nil {
			t.Fatalf("seed does not parse: %q: %v", seed, err)
		}
		for trial := 0; trial < 200; trial++ {
			mangled := mangle(rng, seed, seeds)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked on %q: %v", mangled, r)
					}
				}()
				_, _ = ParseScript(mangled)
			}()
		}
	}
}

func mangle(rng *rand.Rand, s string, pool []string) string {
	words := strings.Fields(s)
	switch rng.Intn(5) {
	case 0: // truncate
		if len(s) > 1 {
			return s[:rng.Intn(len(s))]
		}
	case 1: // delete a word
		if len(words) > 1 {
			i := rng.Intn(len(words))
			return strings.Join(append(append([]string{}, words[:i]...), words[i+1:]...), " ")
		}
	case 2: // duplicate a word
		if len(words) > 0 {
			i := rng.Intn(len(words))
			return strings.Join(append(append([]string{}, words[:i+1]...), words[i:]...), " ")
		}
	case 3: // splice two statements mid-way
		other := pool[rng.Intn(len(pool))]
		return s[:rng.Intn(len(s)+1)] + " " + other[rng.Intn(len(other)+1):]
	case 4: // inject a random token
		junk := []string{"(", ")", ",", "SELECT", "''", "1.5", "NULL", ";", "--", "'unterminated"}
		i := rng.Intn(len(words) + 1)
		w := append(append([]string{}, words[:i]...), junk[rng.Intn(len(junk))])
		return strings.Join(append(w, words[i:]...), " ")
	}
	return s
}

// FuzzParseScript is a native fuzz target (go test -fuzz=FuzzParseScript)
// with the robustness corpus above as seeds.
func FuzzParseScript(f *testing.F) {
	for _, s := range []string{
		"SELECT * FROM t",
		"SELECT a, COUNT(*) FROM t GROUP BY a",
		"CREATE AUDIT EXPRESSION e AS SELECT * FROM t FOR SENSITIVE TABLE t PARTITION BY a",
		"INSERT INTO t VALUES (1, 'x')",
		"(((((", "SELECT 'O''Brien'", "-- comment only",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ParseScript(input) // must not panic
	})
}
