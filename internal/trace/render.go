package trace

import (
	"fmt"
	"strings"
	"time"
)

// Render formats the trace as indented text lines — one header line
// followed by the span tree — the shape SHOW TRACE FOR <id> returns,
// one line per row.
func (t *Trace) Render() []string {
	lines := make([]string, 0, len(t.Spans)+1)
	head := fmt.Sprintf("qid=%d user=%s elapsed=%s sampled=%t",
		t.QID, t.User, time.Duration(t.Elapsed), t.Sampled)
	if t.Err != "" {
		head += ` error="` + strings.ReplaceAll(t.Err, `"`, `\"`) + `"`
	}
	lines = append(lines, head)

	children := make(map[int][]int, len(t.Spans))
	roots := []int{}
	for i, sp := range t.Spans {
		if sp.Parent < 0 || sp.Parent >= len(t.Spans) || sp.Parent == i {
			roots = append(roots, i)
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		sp := t.Spans[id]
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Name)
		fmt.Fprintf(&b, " %s", time.Duration(sp.Dur))
		if sp.Start > 0 {
			fmt.Fprintf(&b, " @%s", time.Duration(sp.Start))
		}
		for _, a := range sp.Attrs {
			if a.Str != "" {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			}
		}
		lines = append(lines, b.String())
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return lines
}
