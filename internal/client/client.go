// Package client is the Go client for auditdbd's line protocol. A
// Client is one server session: the user set with SetUser is the
// identity the server's SELECT triggers record for every query sent
// through this connection. Dial retries with backoff so daemons and
// tests can connect while the server is still coming up.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"auditdb/internal/wire"
)

// ServerError is a failure reported by the server (SQL errors, limit
// rejections, timeouts) as opposed to a transport failure.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// Result is one statement's outcome. Row scalars are nil, bool, int64,
// float64, or string (dates arrive as "YYYY-MM-DD" strings).
type Result struct {
	Columns      []string
	Rows         [][]any
	RowsAffected int
	// Audited maps audit-expression name to the number of sensitive
	// partition keys this statement accessed.
	Audited map[string]int
	// QID is the query ID the server's tracer assigned; pass it to
	// SHOW TRACE FOR to read the retained span tree.
	QID uint64
}

type options struct {
	attempts    int
	backoff     time.Duration
	dialTimeout time.Duration
}

// Option configures Dial.
type Option func(*options)

// WithRetry sets how many connection attempts to make and the delay
// between them (the delay doubles each failure).
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(o *options) { o.attempts, o.backoff = attempts, backoff }
}

// WithDialTimeout bounds each individual connection attempt.
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// Client is one connection to an auditdbd server. It is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	mu sync.Mutex
	nc net.Conn
	r  *bufio.Reader
}

// Dial connects to an auditdbd server, retrying with exponential
// backoff per WithRetry (default: 5 attempts starting at 50ms).
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{attempts: 5, backoff: 50 * time.Millisecond, dialTimeout: 2 * time.Second}
	for _, fn := range opts {
		fn(&o)
	}
	if o.attempts < 1 {
		o.attempts = 1
	}
	var lastErr error
	delay := o.backoff
	for i := 0; i < o.attempts; i++ {
		if i > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		nc, err := net.DialTimeout("tcp", addr, o.dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return &Client{nc: nc, r: bufio.NewReaderSize(nc, 64<<10)}, nil
	}
	return nil, fmt.Errorf("dial %s: %w", addr, lastErr)
}

// Close tells the server goodbye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil
	}
	// Best effort: the server also cleans up on bare disconnect.
	if b, err := json.Marshal(&wire.Request{Op: wire.OpQuit}); err == nil {
		c.nc.SetWriteDeadline(time.Now().Add(time.Second))
		c.nc.Write(append(b, '\n'))
	}
	err := c.nc.Close()
	c.nc = nil
	return err
}

func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil, fmt.Errorf("client is closed")
	}
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.nc.Write(append(b, '\n')); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("receive: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("decode response: %w", err)
	}
	if !resp.OK {
		return nil, &ServerError{Msg: resp.Error}
	}
	return &resp, nil
}

func toResult(resp *wire.Response) *Result {
	res := &Result{
		Columns:      resp.Columns,
		Rows:         resp.Rows,
		RowsAffected: resp.RowsAffected,
		Audited:      resp.Audited,
		QID:          resp.QID,
	}
	// Normalize json.Number cells into int64/float64.
	for _, row := range res.Rows {
		for i, cell := range row {
			if n, ok := cell.(json.Number); ok {
				if v, err := n.Int64(); err == nil {
					row[i] = v
				} else if f, err := n.Float64(); err == nil {
					row[i] = f
				}
			}
		}
	}
	return res
}

// Exec runs a statement or semicolon-separated script.
func (c *Client) Exec(sql string) (*Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	return toResult(resp), nil
}

// Query runs a single SELECT (audited server-side as usual).
func (c *Client) Query(sql string) (*Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpQuery, SQL: sql})
	if err != nil {
		return nil, err
	}
	return toResult(resp), nil
}

// SetUser sets this session's identity — what USERID() returns in
// trigger actions fired by this connection's queries.
func (c *Client) SetUser(u string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeyUser, Value: u})
	return err
}

// SetAuditAll toggles audit-all instrumentation for this session.
func (c *Client) SetAuditAll(on bool) error {
	v := "off"
	if on {
		v = "on"
	}
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeyAuditAll, Value: v})
	return err
}

// SetPlacement selects this session's audit-operator placement:
// "leaf", "hcn", or "highest".
func (c *Client) SetPlacement(p string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeyPlacement, Value: p})
	return err
}

// SetWorkers sets this session's parallel-execution worker budget:
// 1 forces serial execution, 0 resets to the server default.
func (c *Client) SetWorkers(n int) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeyWorkers, Value: strconv.Itoa(n)})
	return err
}

// SetTriage gates this session's trigger firings in or out of the
// server's background offline-verification queue.
func (c *Client) SetTriage(on bool) error {
	v := "off"
	if on {
		v = "on"
	}
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeyTriage, Value: v})
	return err
}

// SetSkipping toggles chunk skipping (zone maps + sensitive-ID
// sketches) for this session's scans. Results and the audit trail are
// identical either way; off is for measurement.
func (c *Client) SetSkipping(on bool) error {
	v := "off"
	if on {
		v = "on"
	}
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Key: wire.KeySkipping, Value: v})
	return err
}

// Stats fetches the server's merged engine+server counters.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Ping round-trips a no-op.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPing})
	return err
}

// VerifyResult is the server's audit-trail integrity verdict.
type VerifyResult struct {
	Valid   bool
	Records uint64
	Head    string
	Reason  string
}

// VerifyAuditLog asks the server to re-read its on-disk audit trail
// and check the hash chain. A nil error with Valid=false means the
// check ran and found tampering or truncation; an error means the
// check itself could not run (e.g. durability is disabled).
func (c *Client) VerifyAuditLog() (*VerifyResult, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpVerifyAudit})
	if err != nil {
		return nil, err
	}
	if resp.Verify == nil {
		return nil, fmt.Errorf("server returned no verify result")
	}
	return &VerifyResult{
		Valid:   resp.Verify.Valid,
		Records: resp.Verify.Records,
		Head:    resp.Verify.Head,
		Reason:  resp.Verify.Reason,
	}, nil
}

// Checkpoint asks the server to snapshot the database and truncate
// covered WAL segments.
func (c *Client) Checkpoint() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpCheckpoint})
	return err
}

// Stmt is a server-side prepared statement bound to this connection's
// session.
type Stmt struct {
	c         *Client
	id        int
	numParams int
}

// Prepare parses a ?-parameterized statement server-side.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.Stmt, numParams: resp.NumParams}, nil
}

// NumParams reports how many ? placeholders the statement declares.
func (s *Stmt) NumParams() int { return s.numParams }

// Run executes the prepared statement with the given parameters
// (nil, bool, int, int64, float64, or string).
func (s *Stmt) Run(args ...any) (*Result, error) {
	params := make([]any, len(args))
	for i, a := range args {
		switch a.(type) {
		case nil, bool, int, int64, float64, string:
			params[i] = a
		default:
			return nil, fmt.Errorf("parameter %d: unsupported type %T", i+1, a)
		}
	}
	resp, err := s.c.roundTrip(&wire.Request{Op: wire.OpRun, Stmt: s.id, Params: params})
	if err != nil {
		return nil, err
	}
	return toResult(resp), nil
}

// Close drops the server-side statement.
func (s *Stmt) Close() error {
	_, err := s.c.roundTrip(&wire.Request{Op: wire.OpCloseStmt, Stmt: s.id})
	return err
}
