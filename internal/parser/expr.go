package parser

import (
	"strconv"
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/lexer"
	"auditdb/internal/value"
)

// parseExpr parses a full expression with standard SQL precedence:
// OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < +,- < *,/,% < unary.
func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseOr()
}

// parseExprOrSelect accepts either an expression or a bare SELECT
// (which becomes a scalar subquery); used for IF (...) conditions where
// the paper writes IF (SELECT count(...) > 10 FROM ...).
func (p *parser) parseExprOrSelect() (ast.Expr, error) {
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ast.ScalarSubquery{Sub: sub}, nil
	}
	return p.parseExpr()
}

func (p *parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: ast.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: ast.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.matchKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: '!', X: x}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]ast.BinaryOp{
	"=": ast.OpEq, "<>": ast.OpNe, "<": ast.OpLt,
	"<=": ast.OpLe, ">": ast.OpGt, ">=": ast.OpGe,
}

func (p *parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.matchKeyword("IS") {
		neg := p.matchKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &ast.IsNull{X: left, Negate: neg}, nil
	}
	neg := false
	if p.peekKeyword("NOT") {
		// Only treat NOT as infix negation when followed by IN, BETWEEN
		// or LIKE.
		nxt := p.peek2()
		if nxt.Kind == lexer.TokKeyword && (nxt.Text == "IN" || nxt.Text == "BETWEEN" || nxt.Text == "LIKE") {
			p.next()
			neg = true
		}
	}
	switch {
	case p.matchKeyword("IN"):
		return p.parseInTail(left, neg)
	case p.matchKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.Between{X: left, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.matchKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := ast.Expr(&ast.Binary{Op: ast.OpLike, L: left, R: pat})
		if neg {
			like = &ast.Unary{Op: '!', X: like}
		}
		return like, nil
	}
	if t := p.peek(); t.Kind == lexer.TokOp {
		if op, ok := compOps[t.Text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &ast.Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseInTail(left ast.Expr, neg bool) (ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.InSubquery{X: left, Sub: sub, Negate: neg}, nil
	}
	var list []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ast.InList{X: left, List: list, Negate: neg}, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.matchOp("+"):
			op = ast.OpAdd
		case p.matchOp("-"):
			op = ast.OpSub
		case p.matchOp("||"):
			op = ast.OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch {
		case p.matchOp("*"):
			op = ast.OpMul
		case p.matchOp("/"):
			op = ast.OpDiv
		case p.matchOp("%"):
			op = ast.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.matchOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: '-', X: x}, nil
	}
	p.matchOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &ast.Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.Text)
		}
		return &ast.Literal{Val: value.NewInt(i)}, nil
	case lexer.TokString:
		p.next()
		return &ast.Literal{Val: value.NewString(t.Text)}, nil
	case lexer.TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &ast.Literal{Val: value.Null}, nil
		case "TRUE":
			p.next()
			return &ast.Literal{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &ast.Literal{Val: value.NewBool(false)}, nil
		case "DATE":
			p.next()
			lit := p.peek()
			if lit.Kind != lexer.TokString {
				return nil, p.errf("expected string literal after DATE")
			}
			p.next()
			d, err := value.ParseDate(lit.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return &ast.Literal{Val: d}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ast.Exists{Sub: sub}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Text)
	case lexer.TokOp:
		if t.Text == "?" {
			p.next()
			ph := &ast.Placeholder{Idx: p.params}
			p.params++
			return ph, nil
		}
		if t.Text == "(" {
			p.next()
			if p.peekKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ast.ScalarSubquery{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.Text)
	case lexer.TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf("unexpected %s in expression", p.describe(t))
	}
}

func (p *parser) parseIdentExpr() (ast.Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.peekOp("(") {
		p.next()
		fc := &ast.FuncCall{Name: strings.ToUpper(name)}
		if p.matchOp("*") {
			fc.Star = true
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.matchKeyword("DISTINCT") {
			fc.Distinct = true
		}
		if !p.peekOp(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.matchOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	// Qualified column?
	if p.peekOp(".") {
		p.next()
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.ColumnRef{Table: name, Name: col}, nil
	}
	return &ast.ColumnRef{Name: name}, nil
}

func (p *parser) parseCase() (ast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	if !p.peekKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.matchKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.matchKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
