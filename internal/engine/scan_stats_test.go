package engine

import (
	"fmt"
	"strings"
	"testing"
)

// newScanStatDB builds a 2000-row table for bounded-work assertions.
func newScanStatDB(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if _, err := e.Exec("CREATE TABLE big (k INT PRIMARY KEY, grp INT)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", i, i%10)
	}
	if _, err := e.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

func scannedDelta(t *testing.T, e *Engine, sql string) int64 {
	t.Helper()
	before := e.StatsSnapshot()["rows_scanned"]
	if _, err := e.Query(sql); err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return e.StatsSnapshot()["rows_scanned"] - before
}

// TestRowsScannedStat pins the engine-visible bounded-work contract of
// the streaming scan kernel: a LIMIT 1 touches a handful of storage
// rows, a point lookup touches exactly its index result, and a full
// aggregate touches the whole table — all reported via the
// rows_scanned counter.
func TestRowsScannedStat(t *testing.T) {
	e := newScanStatDB(t)

	if d := scannedDelta(t, e, "SELECT k FROM big LIMIT 1"); d <= 0 || d >= 2000 {
		t.Errorf("LIMIT 1 scanned %d rows, want a small positive count (not the whole heap)", d)
	}
	if d := scannedDelta(t, e, "SELECT grp FROM big WHERE k = 1234"); d != 1 {
		t.Errorf("point lookup scanned %d rows, want 1", d)
	}
	if d := scannedDelta(t, e, "SELECT COUNT(*) FROM big"); d != 2000 {
		t.Errorf("full aggregate scanned %d rows, want 2000", d)
	}
}
