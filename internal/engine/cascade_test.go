package engine

import (
	"strings"
	"testing"
)

// TestDMLTriggerBodyFiresSelectTrigger checks the paper's §II cascade
// direction that is easy to miss: an UPDATE trigger's body runs a
// SELECT, and that SELECT — being a query like any other — is itself
// audited, firing SELECT triggers.
func TestDMLTriggerBodyFiresSelectTrigger(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE TABLE Shadow (PatientID INT, Name VARCHAR(30));
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
		CREATE TABLE Visits (VisitID INT, PatientID INT);
		-- The DML trigger's body copies patient data with a SELECT that
		-- reads the Patients table.
		CREATE TRIGGER copy_on_visit ON Visits AFTER INSERT AS
			INSERT INTO Shadow
			SELECT PatientID, Name FROM Patients WHERE PatientID = NEW.PatientID;
	`); err != nil {
		t.Fatal(err)
	}

	// Inserting a visit for Alice makes the trigger body read her row.
	mustExec(t, e, "INSERT INTO Visits VALUES (100, 1)")
	r := mustQuery(t, e, "SELECT PatientID FROM Log")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 {
		t.Fatalf("cascaded SELECT trigger log = %v", r.Rows)
	}
	// A visit for Bob reads only Bob: no log entry.
	mustExec(t, e, "INSERT INTO Visits VALUES (101, 2)")
	r = mustQuery(t, e, "SELECT COUNT(*) FROM Log")
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("non-sensitive cascade logged: %v", r.Rows)
	}
	// The shadow rows were written in both cases.
	r = mustQuery(t, e, "SELECT COUNT(*) FROM Shadow")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("shadow rows = %v", r.Rows)
	}
}

// TestSelectTriggerActionDMLFiresDMLTrigger covers the cascade the
// paper spells out: a SELECT trigger's INSERT action fires an INSERT
// trigger (which here counts firings).
func TestSelectTriggerActionDMLFiresDMLTrigger(t *testing.T) {
	e := newHealthDB(t)
	var notes []string
	e.OnNotify(func(m string) { notes = append(notes, m) })
	if _, err := e.ExecScript(`
		CREATE TABLE Log (At VARCHAR(30), UserID VARCHAR(30), SQL VARCHAR(500), PatientID INT);
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER Log_Alice ON ACCESS TO Audit_Alice AS
			INSERT INTO Log SELECT now(), userid(), sqltext(), PatientID FROM ACCESSED;
		CREATE TRIGGER OnLogInsert ON Log AFTER INSERT AS
			NOTIFY 'log row added';
	`); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, e, "SELECT * FROM Patients WHERE Name = 'Alice'")
	if len(notes) != 1 || notes[0] != "log row added" {
		t.Errorf("cascade notifications = %v", notes)
	}
}

// TestTriggerActionErrorSurfacesToQuery checks failure injection: a
// broken trigger action fails the triggering statement and reports the
// trigger's name.
func TestTriggerActionErrorSurfacesToQuery(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_Alice AS
			SELECT * FROM Patients WHERE Name = 'Alice'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID;
		CREATE TRIGGER broken ON ACCESS TO Audit_Alice AS
			INSERT INTO NoSuchTable SELECT PatientID FROM ACCESSED;
	`); err != nil {
		t.Fatal(err)
	}
	_, err := e.Query("SELECT * FROM Patients WHERE Name = 'Alice'")
	if err == nil {
		t.Fatal("broken trigger action should fail the query")
	}
	if got := err.Error(); !strings.Contains(got, "broken") {
		t.Errorf("error should name the trigger: %v", got)
	}
	// Queries that do not touch Alice are unaffected.
	if _, err := e.Query("SELECT * FROM Patients WHERE Name = 'Bob'"); err != nil {
		t.Errorf("unrelated query failed: %v", err)
	}
}
