package catalog

import (
	"testing"

	"auditdb/internal/value"
)

func patientsMeta() *TableMeta {
	return &TableMeta{
		Name: "Patients",
		Columns: []Column{
			{Name: "PatientID", Type: value.KindInt},
			{Name: "Name", Type: value.KindString},
			{Name: "Age", Type: value.KindInt},
			{Name: "Zip", Type: value.KindString},
		},
		PrimaryKey: []int{0},
	}
}

func TestAddAndLookupTable(t *testing.T) {
	c := New()
	if err := c.AddTable(patientsMeta()); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Table("patients") // case-insensitive
	if !ok || got.Name != "Patients" {
		t.Fatalf("Table lookup failed: %v, %v", got, ok)
	}
	if err := c.AddTable(patientsMeta()); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	c := New()
	err := c.AddTable(&TableMeta{
		Name: "Bad",
		Columns: []Column{
			{Name: "x", Type: value.KindInt},
			{Name: "X", Type: value.KindInt},
		},
	})
	if err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
}

func TestBadPrimaryKeyOrdinal(t *testing.T) {
	c := New()
	err := c.AddTable(&TableMeta{
		Name:       "Bad",
		Columns:    []Column{{Name: "x", Type: value.KindInt}},
		PrimaryKey: []int{3},
	})
	if err == nil {
		t.Error("out-of-range pk ordinal should fail")
	}
}

func TestColumnIndex(t *testing.T) {
	m := patientsMeta()
	if i := m.ColumnIndex("name"); i != 1 {
		t.Errorf("ColumnIndex(name) = %d", i)
	}
	if i := m.ColumnIndex("nope"); i != -1 {
		t.Errorf("ColumnIndex(nope) = %d", i)
	}
	names := m.ColumnNames()
	if len(names) != 4 || names[0] != "PatientID" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestDropTableCascadesIndexes(t *testing.T) {
	c := New()
	if err := c.AddTable(patientsMeta()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&IndexMeta{Name: "idx_name", Table: "Patients", Columns: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("idx_name"); !ok {
		t.Fatal("index missing after add")
	}
	if err := c.DropTable("Patients"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("idx_name"); ok {
		t.Error("index should be dropped with table")
	}
	if err := c.DropTable("Patients"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestIndexRequiresTable(t *testing.T) {
	c := New()
	if err := c.AddIndex(&IndexMeta{Name: "i", Table: "missing"}); err == nil {
		t.Error("index on missing table should fail")
	}
}

func TestTriggerRegistry(t *testing.T) {
	c := New()
	tr := &TriggerMeta{Name: "log_alice", Kind: TriggerOnAccess, Target: "Audit_Alice", Action: "INSERT INTO log ..."}
	if err := c.AddTrigger(tr); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTrigger(tr); err == nil {
		t.Error("duplicate trigger should fail")
	}
	got, ok := c.Trigger("LOG_ALICE")
	if !ok || got.Kind != TriggerOnAccess {
		t.Fatalf("Trigger lookup: %v %v", got, ok)
	}
	if err := c.DropTrigger("log_alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Trigger("log_alice"); ok {
		t.Error("trigger should be gone")
	}
	if err := c.DropTrigger("log_alice"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTriggersForFiltersAndSorts(t *testing.T) {
	c := New()
	add := func(name string, kind TriggerKind, target string) {
		t.Helper()
		if err := c.AddTrigger(&TriggerMeta{Name: name, Kind: kind, Target: target}); err != nil {
			t.Fatal(err)
		}
	}
	add("b_trig", TriggerOnAccess, "Audit_X")
	add("a_trig", TriggerOnAccess, "audit_x")
	add("c_trig", TriggerAfterInsert, "Audit_X")
	got := c.TriggersFor(TriggerOnAccess, "AUDIT_X")
	if len(got) != 2 || got[0].Name != "a_trig" || got[1].Name != "b_trig" {
		t.Errorf("TriggersFor = %+v", got)
	}
}

func TestAuditExprRegistry(t *testing.T) {
	c := New()
	a := &AuditExprMeta{Name: "Audit_Alice", SensitiveTable: "Patients", PartitionBy: "PatientID"}
	if err := c.AddAuditExpr(a); err == nil {
		t.Error("audit expr on missing table should fail")
	}
	if err := c.AddTable(patientsMeta()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAuditExpr(a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAuditExpr(a); err == nil {
		t.Error("duplicate audit expr should fail")
	}
	got, ok := c.AuditExpr("audit_alice")
	if !ok || got.SensitiveTable != "Patients" {
		t.Fatalf("AuditExpr lookup: %v %v", got, ok)
	}
	if len(c.AuditExprs()) != 1 {
		t.Error("AuditExprs length wrong")
	}
	if err := c.DropAuditExpr("Audit_Alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropAuditExpr("Audit_Alice"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.AddTable(&TableMeta{Name: n, Columns: []Column{{Name: "id", Type: value.KindInt}}}); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Tables()
	if len(ts) != 3 || ts[0].Name != "alpha" || ts[2].Name != "zeta" {
		t.Errorf("Tables order wrong: %v", ts)
	}
}

func TestTriggerKindString(t *testing.T) {
	if TriggerOnAccess.String() != "ON ACCESS" || TriggerAfterInsert.String() != "AFTER INSERT" {
		t.Error("TriggerKind.String wrong")
	}
}
