package engine

import (
	"fmt"
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/plan"
)

func (e *Engine) runCreateTable(s *ast.CreateTable) (*Result, error) {
	meta := &catalog.TableMeta{Name: s.Name}
	for _, c := range s.Columns {
		meta.Columns = append(meta.Columns, catalog.Column{Name: c.Name, Type: c.Type})
		if c.PrimaryKey {
			meta.PrimaryKey = append(meta.PrimaryKey, len(meta.Columns)-1)
		}
	}
	for _, pk := range s.PrimaryKey {
		ord := meta.ColumnIndex(pk)
		if ord < 0 {
			return nil, fmt.Errorf("PRIMARY KEY column %q not defined", pk)
		}
		meta.PrimaryKey = append(meta.PrimaryKey, ord)
	}
	if err := e.cat.AddTable(meta); err != nil {
		return nil, err
	}
	if _, err := e.store.Create(meta); err != nil {
		_ = e.cat.DropTable(meta.Name)
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runCreateIndex(s *ast.CreateIndex) (*Result, error) {
	meta, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", s.Table)
	}
	var ords []int
	for _, c := range s.Columns {
		ord := meta.ColumnIndex(c)
		if ord < 0 {
			return nil, fmt.Errorf("unknown column %q in table %s", c, meta.Name)
		}
		ords = append(ords, ord)
	}
	if err := e.cat.AddIndex(&catalog.IndexMeta{Name: s.Name, Table: meta.Name, Columns: ords}); err != nil {
		return nil, err
	}
	tbl, ok := e.store.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("table %q has no storage", s.Table)
	}
	if err := tbl.AddIndex(strings.ToLower(s.Name), ords); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runDropTable(s *ast.DropTable) (*Result, error) {
	// Refuse to drop a table that an audit expression still reads.
	for _, ae := range e.reg.All() {
		if strings.EqualFold(ae.Meta.SensitiveTable, s.Name) {
			return nil, fmt.Errorf("table %q is the sensitive table of audit expression %s", s.Name, ae.Meta.Name)
		}
	}
	if err := e.cat.DropTable(s.Name); err != nil {
		return nil, err
	}
	if err := e.store.Drop(s.Name); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runCreateAuditExpression(s *ast.CreateAuditExpression) (*Result, error) {
	meta := &catalog.AuditExprMeta{
		Name:           s.Name,
		SensitiveTable: s.SensitiveTable,
		PartitionBy:    s.PartitionBy,
		// Render canonical single-statement DDL; the raw sql argument
		// may be a whole script.
		Definition: ast.RenderAuditExpression(s),
		Priority:   s.Priority,
	}
	if err := e.cat.AddAuditExpr(meta); err != nil {
		return nil, err
	}
	if _, err := e.reg.Compile(meta, s.Query); err != nil {
		_ = e.cat.DropAuditExpr(s.Name)
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runDropAuditExpression(s *ast.DropAuditExpression) (*Result, error) {
	if trs := e.cat.TriggersFor(catalog.TriggerOnAccess, s.Name); len(trs) > 0 {
		return nil, fmt.Errorf("audit expression %q still has trigger %s", s.Name, trs[0].Name)
	}
	if err := e.cat.DropAuditExpr(s.Name); err != nil {
		return nil, err
	}
	e.reg.Drop(s.Name)
	return &Result{}, nil
}

func (e *Engine) runCreateTrigger(s *ast.CreateTrigger) (*Result, error) {
	meta := &catalog.TriggerMeta{Name: s.Name, Target: s.Target, Action: s.ActionSQL}
	switch s.Event {
	case ast.EventAccess:
		meta.Kind = catalog.TriggerOnAccess
		if _, ok := e.cat.AuditExpr(s.Target); !ok {
			return nil, fmt.Errorf("unknown audit expression %q", s.Target)
		}
	case ast.EventInsert:
		meta.Kind = catalog.TriggerAfterInsert
	case ast.EventUpdate:
		meta.Kind = catalog.TriggerAfterUpdate
	case ast.EventDelete:
		meta.Kind = catalog.TriggerAfterDelete
	}
	if meta.Kind != catalog.TriggerOnAccess {
		if _, ok := e.cat.Table(s.Target); !ok {
			return nil, fmt.Errorf("unknown table %q", s.Target)
		}
	}
	if err := e.cat.AddTrigger(meta); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.triggers[strings.ToLower(s.Name)] = &compiledTrigger{meta: meta, body: s.Body}
	e.mu.Unlock()
	return &Result{}, nil
}

func (e *Engine) runDropTrigger(s *ast.DropTrigger) (*Result, error) {
	if err := e.cat.DropTrigger(s.Name); err != nil {
		return nil, err
	}
	e.mu.Lock()
	delete(e.triggers, strings.ToLower(s.Name))
	e.mu.Unlock()
	return &Result{}, nil
}

// runCreateView validates the defining query by building it once, then
// registers the view. View references expand inline at plan time, so
// queries through views are audited exactly like direct queries.
func (e *Engine) runCreateView(s *ast.CreateView) (*Result, error) {
	if _, err := plan.Build(e.planEnv(rootActionEnv()), s.Query); err != nil {
		return nil, fmt.Errorf("view %s: %w", s.Name, err)
	}
	meta := &catalog.ViewMeta{
		Name:       s.Name,
		Definition: fmt.Sprintf("CREATE VIEW %s AS %s", s.Name, ast.RenderSelect(s.Query)),
	}
	if err := e.cat.AddView(meta); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.views[strings.ToLower(s.Name)] = s.Query
	e.mu.Unlock()
	return &Result{}, nil
}

func (e *Engine) runDropView(s *ast.DropView) (*Result, error) {
	if err := e.cat.DropView(s.Name); err != nil {
		return nil, err
	}
	e.mu.Lock()
	delete(e.views, strings.ToLower(s.Name))
	e.mu.Unlock()
	return &Result{}, nil
}

func (e *Engine) runDropIndex(s *ast.DropIndex) (*Result, error) {
	idx, err := e.cat.DropIndex(s.Name)
	if err != nil {
		return nil, err
	}
	tbl, ok := e.store.Table(idx.Table)
	if !ok {
		return nil, fmt.Errorf("index %q: table %q has no storage", s.Name, idx.Table)
	}
	if err := tbl.DropIndex(strings.ToLower(s.Name)); err != nil {
		return nil, err
	}
	return &Result{}, nil
}
