// Package experiments regenerates every table and figure of the
// paper's evaluation (§V) against the Go reproduction: the
// micro-benchmark false-positive and overhead sweeps (Figures 6 and
// 7), the audit-cardinality overhead sweep (Figure 8), the complex
// TPC-H query false-positive and overhead studies (Figures 9 and 10),
// and the static-analysis (Oracle FGA-style) comparison of §VI /
// Example 6.1. Both cmd/benchaudit and the repository's bench tests
// drive these entry points.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"auditdb/internal/ast"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/fga"
	"auditdb/internal/offline"
	"auditdb/internal/parser"
	"auditdb/internal/plan"
	"auditdb/internal/tpch"
	"auditdb/internal/value"
)

// Workbench is a loaded TPC-H engine plus the paper's §V audit
// expression (all customers of one market segment).
type Workbench struct {
	Engine  *engine.Engine
	Data    *tpch.Data
	Auditor *offline.Auditor
	// Expr is the market-segment audit expression.
	Expr *core.AuditExpression
	// Params are the workload parameters.
	Params tpch.Params
}

// SegmentAuditName is the audit expression used across experiments.
const SegmentAuditName = "Audit_Customer"

// NewWorkbench generates TPC-H data at the scale factor, loads it and
// declares the segment audit expression.
func NewWorkbench(sf float64) (*Workbench, error) {
	e, d, err := tpch.NewEngine(tpch.Config{SF: sf})
	if err != nil {
		return nil, err
	}
	p := tpch.DefaultParams()
	if _, err := e.Exec(tpch.AuditCustomerSegment(SegmentAuditName, p.Segment)); err != nil {
		return nil, err
	}
	e.SetAuditAll(true)
	ae, ok := e.Registry().Get(SegmentAuditName)
	if !ok {
		return nil, fmt.Errorf("audit expression not compiled")
	}
	return &Workbench{
		Engine:  e,
		Data:    d,
		Auditor: offline.New(e.Catalog(), e.Store()),
		Expr:    ae,
		Params:  p,
	}, nil
}

// CutoffForSelectivity maps a desired o_orderdate predicate
// selectivity (fraction of orders selected) to the date literal of the
// micro query's "o_orderdate > $2" predicate. Order dates are uniform
// over the generator's span.
func CutoffForSelectivity(sel float64) string {
	const span = 2406 - 151 // generator's order-date span in days
	days := int64((1 - sel) * span)
	d, err := value.ParseDate("1992-01-01")
	if err != nil {
		panic(err)
	}
	return value.NewDate(d.Int() + days).String()
}

// runIDs executes the query under the given heuristic and returns the
// audit cardinality.
func (w *Workbench) runIDs(sql string, h core.Heuristic) (int, error) {
	w.Engine.SetHeuristic(h)
	r, err := w.Engine.Query(sql)
	if err != nil {
		return 0, err
	}
	if r.Accessed == nil {
		return 0, fmt.Errorf("query was not instrumented")
	}
	return r.Accessed.Len(SegmentAuditName), nil
}

// pairedOverhead measures the relative execution-time overhead of the
// instrumented plan against the plain plan. Each measurement round
// runs both plans back to back — alternating which goes first to
// cancel warm-cache bias — and contributes one instr/plain time ratio.
// Machine-state drift hits both halves of a ratio almost equally, and
// the median of the per-round ratios shrugs off stray GC or scheduler
// pauses, which matters on shared/virtualized hardware.
func (w *Workbench) pairedOverhead(plain, instr plan.Node, sql string, minDur time.Duration) (float64, error) {
	const minRounds = 15
	// Warm both paths.
	if _, err := w.Engine.DrainPlan(plain, sql); err != nil {
		return 0, err
	}
	if _, err := w.Engine.DrainPlan(instr, sql); err != nil {
		return 0, err
	}
	runtime.GC()
	var ratios []float64
	start := time.Now()
	for round := 0; time.Since(start) < minDur || round < minRounds; round++ {
		first, second := plain, instr
		if round%2 == 1 {
			first, second = instr, plain
		}
		t0 := time.Now()
		if _, err := w.Engine.DrainPlan(first, sql); err != nil {
			return 0, err
		}
		d1 := time.Since(t0)
		t0 = time.Now()
		if _, err := w.Engine.DrainPlan(second, sql); err != nil {
			return 0, err
		}
		d2 := time.Since(t0)
		tPlain, tInstr := d1, d2
		if round%2 == 1 {
			tPlain, tInstr = d2, d1
		}
		if tPlain > 0 {
			ratios = append(ratios, float64(tInstr)/float64(tPlain))
		}
	}
	if len(ratios) == 0 {
		return 0, fmt.Errorf("degenerate timing for %q", sql)
	}
	// Interquartile mean: drop the top and bottom quarter of ratios
	// (virtualized hosts show multi-x per-run swings), average the rest.
	sort.Float64s(ratios)
	lo, hi := len(ratios)/4, len(ratios)-len(ratios)/4
	sum := 0.0
	for _, r := range ratios[lo:hi] {
		sum += r
	}
	return 100 * (sum/float64(hi-lo) - 1), nil
}

// OverheadPct measures the relative execution-time overhead of the
// instrumented plan for one query under the given heuristic.
func (w *Workbench) OverheadPct(sql string, h core.Heuristic, minDur time.Duration) (float64, error) {
	w.Engine.SetHeuristic(h)
	plain, _, err := w.Engine.BuildQueryPlan(sql, false)
	if err != nil {
		return 0, err
	}
	instr, _, err := w.Engine.BuildQueryPlan(sql, true)
	if err != nil {
		return 0, err
	}
	return w.pairedOverhead(plain, instr, sql, minDur)
}

// ---- Figure 6: micro-benchmark false positives ----

// Fig6Point is one selectivity step of the Figure 6 sweep.
type Fig6Point struct {
	Selectivity float64
	// Offline is |accessedIDs| (ground truth).
	Offline int
	// Leaf and HCN are the heuristics' |auditIDs|.
	Leaf, HCN int
}

// Fig6 sweeps the orders-predicate selectivity and reports offline vs
// leaf-node vs hcn audit cardinalities for the micro join query
// (paper: leaf-node inflates as the join filters more; hcn matches
// offline exactly on this SJ query).
func (w *Workbench) Fig6(selectivities []float64, acctbal float64) ([]Fig6Point, error) {
	var out []Fig6Point
	for _, sel := range selectivities {
		sql := tpch.MicroJoinQuery(acctbal, CutoffForSelectivity(sel))
		leaf, err := w.runIDs(sql, core.LeafNode)
		if err != nil {
			return nil, err
		}
		hcn, err := w.runIDs(sql, core.HighestCommutativeNode)
		if err != nil {
			return nil, err
		}
		rep, err := w.Auditor.Audit(sql, w.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{
			Selectivity: sel,
			Offline:     len(rep.AccessedIDs),
			Leaf:        leaf,
			HCN:         hcn,
		})
	}
	return out, nil
}

// ---- Figure 7: micro-benchmark overheads ----

// Fig7Point is one selectivity step of the Figure 7 sweep. The *Pct
// fields are wall-clock overheads (noisy on shared hosts); the *Probed
// fields count rows inspected by the audit operators per execution — a
// deterministic proxy for the same cost, since the operator does O(1)
// work per observed row.
type Fig7Point struct {
	Selectivity float64
	LeafPct     float64
	HCNPct      float64
	LeafProbed  int64
	HCNProbed   int64
}

// Fig7 sweeps the orders-predicate selectivity and reports the
// relative overhead of leaf-node and hcn instrumentation on the micro
// join query.
func (w *Workbench) Fig7(selectivities []float64, acctbal float64, minDur time.Duration) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, sel := range selectivities {
		sql := tpch.MicroJoinQuery(acctbal, CutoffForSelectivity(sel))
		leaf, err := w.OverheadPct(sql, core.LeafNode, minDur)
		if err != nil {
			return nil, err
		}
		hcn, err := w.OverheadPct(sql, core.HighestCommutativeNode, minDur)
		if err != nil {
			return nil, err
		}
		leafProbed, err := w.probedRows(sql, core.LeafNode)
		if err != nil {
			return nil, err
		}
		hcnProbed, err := w.probedRows(sql, core.HighestCommutativeNode)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Point{
			Selectivity: sel, LeafPct: leaf, HCNPct: hcn,
			LeafProbed: leafProbed, HCNProbed: hcnProbed,
		})
	}
	return out, nil
}

// probedRows runs the query once under the heuristic and returns how
// many rows the audit operators inspected.
func (w *Workbench) probedRows(sql string, h core.Heuristic) (int64, error) {
	w.Engine.SetHeuristic(h)
	n, acc, err := w.Engine.BuildQueryPlan(sql, true)
	if err != nil {
		return 0, err
	}
	if _, err := w.Engine.DrainPlan(n, sql); err != nil {
		return 0, err
	}
	return acc.Observed(), nil
}

// ---- Figure 8: audit-expression cardinality ----

// Fig8Point is one cardinality step of the Figure 8 sweep. Probed is
// the rows the operator inspected — constant across the sweep, which
// is exactly why the paper's overhead stays flat: the probe is an O(1)
// hash lookup regardless of the sensitive set's size.
type Fig8Point struct {
	Cardinality int
	HCNPct      float64
	Probed      int64
}

// Fig8 fixes the micro query at the 40% selectivity point and sweeps
// the audit-expression cardinality from 1 up to the full customer
// table, reporting hcn overhead (paper: ~2% even at a million
// customers).
func (w *Workbench) Fig8(cards []int, minDur time.Duration) ([]Fig8Point, error) {
	sql := tpch.MicroJoinQuery(0, CutoffForSelectivity(0.4))
	var out []Fig8Point
	for i, card := range cards {
		name := fmt.Sprintf("Audit_Card_%d", i)
		if _, err := w.Engine.Exec(tpch.AuditCustomerRange(name, card)); err != nil {
			return nil, err
		}
		// Drop the segment expression's influence by auditing only the
		// cardinality expression: temporarily measure with both
		// present is wrong, so audit-all instruments every compiled
		// expression — remove the range one after measuring.
		pct, probed, err := w.overheadForOnly(name, sql, minDur)
		if _, derr := w.Engine.Exec("DROP AUDIT EXPRESSION " + name); derr != nil && err == nil {
			err = derr
		}
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Point{Cardinality: card, HCNPct: pct, Probed: probed})
	}
	return out, nil
}

// overheadForOnly measures hcn overhead with exactly one audit
// expression instrumented by temporarily suppressing the others, and
// reports the per-execution probe count alongside.
func (w *Workbench) overheadForOnly(name, sql string, minDur time.Duration) (float64, int64, error) {
	w.Engine.SetHeuristic(core.HighestCommutativeNode)
	plain, _, err := w.Engine.BuildQueryPlan(sql, false)
	if err != nil {
		return 0, 0, err
	}
	ae, ok := w.Engine.Registry().Get(name)
	if !ok {
		return 0, 0, fmt.Errorf("audit expression %s missing", name)
	}
	acc := core.NewAccessed()
	instr, _, err := w.Engine.BuildQueryPlan(sql, false)
	if err != nil {
		return 0, 0, err
	}
	instr = core.Instrument(instr, ae, &core.Probe{Expr: ae, Acc: acc}, core.HighestCommutativeNode)
	before := acc.Observed()
	if _, err := w.Engine.DrainPlan(instr, sql); err != nil {
		return 0, 0, err
	}
	probed := acc.Observed() - before
	pct, err := w.pairedOverhead(plain, instr, sql, minDur)
	return pct, probed, err
}

// ---- Figure 9: complex-query false positives ----

// Fig9Row is one TPC-H query's audit cardinalities.
type Fig9Row struct {
	Query   string
	Offline int
	HCN     int
	Leaf    int
	TopK    bool
}

// Fig9 compares offline accessedIDs with hcn and leaf-node auditIDs
// for the seven-query workload (paper: leaf-node huge because TPC-H
// queries have no customer predicates; hcn close to offline except the
// top-k query Q10).
func (w *Workbench) Fig9() ([]Fig9Row, error) {
	var out []Fig9Row
	for _, q := range tpch.Queries(w.Params) {
		leaf, err := w.runIDs(q.SQL, core.LeafNode)
		if err != nil {
			return nil, fmt.Errorf("%s leaf: %w", q.Name, err)
		}
		hcn, err := w.runIDs(q.SQL, core.HighestCommutativeNode)
		if err != nil {
			return nil, fmt.Errorf("%s hcn: %w", q.Name, err)
		}
		rep, err := w.Auditor.Audit(q.SQL, w.Expr)
		if err != nil {
			return nil, fmt.Errorf("%s offline: %w", q.Name, err)
		}
		out = append(out, Fig9Row{
			Query:   q.Name,
			Offline: len(rep.AccessedIDs),
			HCN:     hcn,
			Leaf:    leaf,
			TopK:    q.TopK,
		})
	}
	return out, nil
}

// ---- Figure 10: complex-query overheads ----

// Fig10Row is one TPC-H query's hcn overhead.
type Fig10Row struct {
	Query  string
	HCNPct float64
}

// Fig10 measures hcn instrumentation overhead per workload query
// (paper: around 1%, including the cost of flowing IDs with the rows).
func (w *Workbench) Fig10(minDur time.Duration) ([]Fig10Row, error) {
	var out []Fig10Row
	for _, q := range tpch.Queries(w.Params) {
		pct, err := w.OverheadPct(q.SQL, core.HighestCommutativeNode, minDur)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		out = append(out, Fig10Row{Query: q.Name, HCNPct: pct})
	}
	return out, nil
}

// ---- §VI / Example 6.1: static-analysis baseline ----

// FGARow compares the static analysis against the audit-operator
// approach for one query.
type FGARow struct {
	Query string
	// Flagged is the static-analysis verdict (true = "accessed").
	Flagged bool
	// HCN is the audit operator's cardinality; Offline is ground truth.
	HCN, Offline int
}

// FGAStudy runs the static-analysis baseline over the workload. With
// the audit expression on one market segment, only Q3 carries a
// customer predicate the analysis can reason about; every other query
// is flagged wholesale (the paper: FGA false-positives on all queries
// except Q3).
func (w *Workbench) FGAStudy() ([]FGARow, error) {
	analyzer := fga.New(w.Engine.Catalog())
	aeMeta, ok := w.Engine.Catalog().AuditExpr(SegmentAuditName)
	if !ok {
		return nil, fmt.Errorf("audit expression metadata missing")
	}
	// Recover the defining query from the catalog's stored DDL so the
	// analysis always sees the declaration, not the current workload
	// parameters.
	defStmt, err := parser.Parse(aeMeta.Definition)
	if err != nil {
		return nil, fmt.Errorf("re-parsing audit definition: %w", err)
	}
	defQuery := defStmt.(*ast.CreateAuditExpression).Query
	var out []FGARow
	for _, q := range tpch.Queries(w.Params) {
		sel, err := parser.ParseQuery(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		flagged := analyzer.Flagged(sel, aeMeta, defQuery)
		hcn, err := w.runIDs(q.SQL, core.HighestCommutativeNode)
		if err != nil {
			return nil, err
		}
		rep, err := w.Auditor.Audit(q.SQL, w.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, FGARow{Query: q.Name, Flagged: flagged, HCN: hcn, Offline: len(rep.AccessedIDs)})
	}
	return out, nil
}
