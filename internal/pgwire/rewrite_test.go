package pgwire

import (
	"reflect"
	"testing"

	"auditdb/internal/value"
)

func TestRewritePlaceholders(t *testing.T) {
	for _, tc := range []struct {
		in      string
		out     string
		argMap  []int
		nParams int
	}{
		{"SELECT * FROM T", "SELECT * FROM T", nil, 0},
		{"SELECT * FROM T WHERE a = $1", "SELECT * FROM T WHERE a = ?", []int{0}, 1},
		{"WHERE a = $2 OR b = $1", "WHERE a = ? OR b = ?", []int{1, 0}, 2},
		{"WHERE a = $1 OR b = $1", "WHERE a = ? OR b = ?", []int{0, 0}, 1},
		// $n inside string literals, quoted identifiers and comments
		// stays untouched.
		{"SELECT '$1' FROM T WHERE a = $1", "SELECT '$1' FROM T WHERE a = ?", []int{0}, 1},
		{`SELECT "$1" FROM T`, `SELECT "$1" FROM T`, nil, 0},
		{"SELECT 'it''s $1' FROM T", "SELECT 'it''s $1' FROM T", nil, 0},
		{"-- $1\nSELECT $1", "-- $1\nSELECT ?", []int{0}, 1},
		{"/* $1 */ SELECT $2", "/* $1 */ SELECT ?", []int{1}, 2},
		{"SELECT $12", "SELECT ?", []int{11}, 12},
	} {
		out, argMap, nParams, err := rewritePlaceholders(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if out != tc.out || nParams != tc.nParams || !reflect.DeepEqual(argMap, tc.argMap) {
			t.Errorf("%q → (%q, %v, %d), want (%q, %v, %d)",
				tc.in, out, argMap, nParams, tc.out, tc.argMap, tc.nParams)
		}
	}
}

func TestRewritePlaceholderErrors(t *testing.T) {
	for _, in := range []string{"SELECT $0", "SELECT $99999"} {
		if _, _, _, err := rewritePlaceholders(in); err == nil {
			t.Errorf("%q: want error", in)
		}
	}
}

func TestEncodeTextAndBack(t *testing.T) {
	for _, tc := range []struct {
		v    value.Value
		want string
		null bool
	}{
		{value.NewBool(true), "t", false},
		{value.NewBool(false), "f", false},
		{value.NewInt(-7), "-7", false},
		{value.NewString("x"), "x", false},
		{value.Null, "", true},
	} {
		data, null := encodeText(tc.v)
		if null != tc.null || string(data) != tc.want {
			t.Errorf("encodeText(%v) = %q/%v, want %q/%v", tc.v, data, null, tc.want, tc.null)
		}
	}

	if v, err := valueFromText(oidInt8, " 42 "); err != nil || v.I != 42 {
		t.Errorf("int8 decode = %v, %v", v, err)
	}
	if v, err := valueFromText(oidBool, "true"); err != nil || v.I != 1 {
		t.Errorf("bool decode = %v, %v", v, err)
	}
	if _, err := valueFromText(oidInt8, "nope"); err == nil {
		t.Error("bad int decode: want error")
	}
	// Unspecified OID infers int, then float, then string.
	if v, _ := valueFromText(0, "3"); v.Kind != value.KindInt {
		t.Errorf("inferred kind = %v, want int", v.Kind)
	}
	if v, _ := valueFromText(0, "3.5"); v.Kind != value.KindFloat {
		t.Errorf("inferred kind = %v, want float", v.Kind)
	}
	if v, _ := valueFromText(0, "Alice"); v.Kind != value.KindString {
		t.Errorf("inferred kind = %v, want string", v.Kind)
	}
}

func TestSQLStateMapping(t *testing.T) {
	for _, tc := range []struct {
		msg, state string
	}{
		{"parse error at line 1: unexpected token", stateSyntaxError},
		{"unknown table Nope", stateUndefinedTable},
		{"unknown column Foo", stateUndefinedColumn},
		{"table T already exists", stateDuplicateTable},
		{"division by zero", stateDivisionByZero},
		{"no open transaction", stateNoActiveTxn},
		{"something inscrutable", stateInternalError},
	} {
		if got := sqlstateFor(errString(tc.msg)); got != tc.state {
			t.Errorf("%q → %s, want %s", tc.msg, got, tc.state)
		}
	}
}

type errString string

func (e errString) Error() string { return string(e) }
