package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"auditdb/internal/obs"
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

// Analyze collects per-operator execution statistics for EXPLAIN
// ANALYZE. When Ctx.Analyze is set, Open wraps every iterator in a
// counting shim and disables the scan–audit fusion so each plan node
// keeps its own iterator (semantics are unchanged — fusion is purely
// physical). Stats are keyed by plan-node identity, so repeated
// executions of the same node (correlated subqueries) accumulate.
type Analyze struct {
	mu    sync.Mutex
	nodes map[plan.Node]*obs.NodeStats
	// workers keeps each parallel worker's folded record per node, in
	// merge order, so tracing can attribute rows and morsel claims to
	// individual workers after the exchange closes. Appended under mu by
	// the same once-per-worker fold that updates the shared record.
	workers map[plan.Node][]obs.NodeStats
}

// NewAnalyze returns an empty collector.
func NewAnalyze() *Analyze {
	return &Analyze{nodes: make(map[plan.Node]*obs.NodeStats)}
}

// Node returns the stats record for a plan node, creating it on first
// use. The engine uses it to attach audit-probe counts to Audit nodes.
func (a *Analyze) Node(n plan.Node) *obs.NodeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.nodes[n]
	if !ok {
		st = &obs.NodeStats{}
		a.nodes[n] = st
	}
	return st
}

// peek returns the stats record if the node ever executed.
func (a *Analyze) peek(n plan.Node) *obs.NodeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nodes[n]
}

// Stats returns the collected record for n, or nil if the node never
// executed. Callers must not read it until execution has completed
// (for parallel plans, until the exchange's Close returned — that is
// the happens-before edge for the workers' folds).
func (a *Analyze) Stats(n plan.Node) *obs.NodeStats { return a.peek(n) }

// WorkerRuns returns one folded record per parallel worker that
// executed n (empty for serial nodes), in fold order. Same
// happens-before requirement as Stats.
func (a *Analyze) WorkerRuns(n plan.Node) []obs.NodeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.workers[n]
}

// merge folds a worker-local stats record into a node's shared record
// under the collector's lock. Parallel fragments use it so the shared
// record is only touched once per worker per node, at close.
func (a *Analyze) merge(n plan.Node, st *obs.NodeStats) {
	dst := a.Node(n)
	a.mu.Lock()
	dst.RowsOut += st.RowsOut
	dst.Batches += st.Batches
	dst.Wall += st.Wall
	dst.Probes += st.Probes
	dst.Hits += st.Hits
	dst.DistinctIDs += st.DistinctIDs
	dst.Morsels += st.Morsels
	dst.Workers += st.Workers
	dst.ChunksScanned += st.ChunksScanned
	dst.ChunksSkipped += st.ChunksSkipped
	if a.workers == nil {
		a.workers = make(map[plan.Node][]obs.NodeStats)
	}
	a.workers[n] = append(a.workers[n], *st)
	a.mu.Unlock()
}

// addChunks folds a serial scan kernel's chunk counters into its
// node's record at Close (parallel kernels fold through their
// workerAnalyzedIter instead).
func (a *Analyze) addChunks(n plan.Node, scanned, skipped int64) {
	dst := a.Node(n)
	a.mu.Lock()
	dst.ChunksScanned += scanned
	dst.ChunksSkipped += skipped
	a.mu.Unlock()
}

// wrap shims an iterator with the node's counters.
func (a *Analyze) wrap(n plan.Node, it Iterator) Iterator {
	return &analyzedIter{child: it, st: a.Node(n)}
}

// analyzedIter counts rows, batches, and wall time through one
// operator. It implements the batch fast path so wrapping does not
// de-vectorize the pipeline.
type analyzedIter struct {
	child Iterator
	st    *obs.NodeStats
}

func (it *analyzedIter) NextBatch(b *Batch) (int, error) {
	start := time.Now()
	n, err := nextBatch(it.child, b)
	it.st.Wall += time.Since(start)
	if n > 0 {
		it.st.Batches++
		it.st.RowsOut += int64(n)
	}
	return n, err
}

func (it *analyzedIter) Next() (value.Row, bool, error) {
	start := time.Now()
	row, ok, err := it.child.Next()
	it.st.Wall += time.Since(start)
	if ok {
		it.st.RowsOut++
	}
	return row, ok, err
}

func (it *analyzedIter) Close() { it.child.Close() }

// workerAnalyzedIter is the parallel-fragment variant of analyzedIter:
// each worker counts into a private record (no contention on the hot
// path) and folds it into the shared per-node record exactly once, at
// Close — which the exchange operator guarantees happens before the
// query's EXPLAIN ANALYZE output renders. A fragment's scan kernel is
// kept so its morsel-claim count can be harvested at the same moment.
type workerAnalyzedIter struct {
	child  Iterator
	az     *Analyze
	node   plan.Node
	kernel *scanKernel
	st     obs.NodeStats
}

func (it *workerAnalyzedIter) NextBatch(b *Batch) (int, error) {
	start := time.Now()
	n, err := nextBatch(it.child, b)
	it.st.Wall += time.Since(start)
	if n > 0 {
		it.st.Batches++
		it.st.RowsOut += int64(n)
	}
	return n, err
}

func (it *workerAnalyzedIter) Next() (value.Row, bool, error) {
	start := time.Now()
	row, ok, err := it.child.Next()
	it.st.Wall += time.Since(start)
	if ok {
		it.st.RowsOut++
	}
	return row, ok, err
}

func (it *workerAnalyzedIter) Close() {
	it.child.Close()
	if it.kernel != nil {
		it.st.Morsels = it.kernel.morsels
		it.st.ChunksScanned = it.kernel.chunksScanned
		it.st.ChunksSkipped = it.kernel.chunksSkipFilter + it.kernel.chunksSkipAudit
	}
	it.st.Workers = 1
	it.az.merge(it.node, &it.st)
}

// RenderAnalyze renders the plan tree with each operator's observed
// counters, in the same indented shape as plan.Explain. Subquery
// blocks referenced by a node's expressions are rendered beneath it
// under a "Subquery" marker. Operators that never executed (e.g. a
// subquery short-circuited away) say so.
func RenderAnalyze(root plan.Node, a *Analyze) string {
	var b strings.Builder
	renderAnalyze(&b, root, a, 0)
	return b.String()
}

func renderAnalyze(b *strings.Builder, n plan.Node, a *Analyze, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(n.Label())
	if st := a.peek(n); st != nil {
		fmt.Fprintf(b, "  (rows=%d batches=%d time=%s", st.RowsOut, st.Batches, st.Wall.Round(time.Microsecond))
		if _, ok := n.(*plan.Audit); ok {
			fmt.Fprintf(b, " probes=%d hits=%d distinct_ids=%d", st.Probes, st.Hits, st.DistinctIDs)
		}
		if st.Workers > 0 {
			fmt.Fprintf(b, " workers=%d", st.Workers)
		}
		if st.Morsels > 0 {
			fmt.Fprintf(b, " morsels=%d", st.Morsels)
		}
		if st.ChunksScanned+st.ChunksSkipped > 0 {
			fmt.Fprintf(b, " chunks=%d/%d", st.ChunksSkipped, st.ChunksScanned)
		}
		b.WriteString(")")
	} else {
		b.WriteString("  (never executed)")
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		renderAnalyze(b, c, a, depth+1)
	}
	plan.WalkNodeExprs(n, func(e plan.Expr) {
		if sq, ok := e.(*plan.Subquery); ok {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString("Subquery\n")
			renderAnalyze(b, sq.Plan, a, depth+2)
		}
	})
}
