package engine

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"auditdb/internal/catalog"
	"auditdb/internal/storage"
	"auditdb/internal/value"
)

// dumpLocked serializes the whole database — schema, data, indexes,
// audit expressions and triggers — as a SQL script this engine can
// replay. Loading a dump with ExecScript (or Restore) reproduces the
// database, including compiled audit state, because the auditing DDL
// is emitted after the data, so materialized ID sets are rebuilt from
// the loaded rows.
//
// The caller must hold dmlMu (Engine.Dump in durability.go does; the
// WAL checkpoint path already holds it). Without the writer lock a
// dump could interleave with concurrent DML and serialize a state no
// transaction ever produced.
func (e *Engine) dumpLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "-- auditdb dump"); err != nil {
		return err
	}

	// 1. Tables and rows.
	for _, meta := range e.cat.Tables() {
		if err := dumpTable(bw, e, meta); err != nil {
			return err
		}
	}
	// 2. Secondary indexes.
	for _, idx := range e.cat.Indexes() {
		meta, ok := e.cat.Table(idx.Table)
		if !ok {
			continue
		}
		cols := make([]string, len(idx.Columns))
		for i, ord := range idx.Columns {
			cols[i] = meta.Columns[ord].Name
		}
		if _, err := fmt.Fprintf(bw, "CREATE INDEX %s ON %s (%s);\n",
			idx.Name, meta.Name, strings.Join(cols, ", ")); err != nil {
			return err
		}
	}
	// 3. Views (canonical DDL preserved in the catalog).
	for _, v := range e.cat.Views() {
		if _, err := fmt.Fprintf(bw, "%s;\n", strings.TrimRight(strings.TrimSpace(v.Definition), ";")); err != nil {
			return err
		}
	}
	// 4. Audit expressions (original DDL is preserved in the catalog).
	for _, ae := range e.cat.AuditExprs() {
		if _, err := fmt.Fprintf(bw, "%s;\n", strings.TrimRight(strings.TrimSpace(ae.Definition), ";")); err != nil {
			return err
		}
	}
	// 5. Triggers, rebuilt from their stored action text.
	for _, tr := range e.cat.Triggers() {
		var head string
		switch tr.Kind {
		case catalog.TriggerOnAccess:
			head = fmt.Sprintf("CREATE TRIGGER %s ON ACCESS TO %s AS", tr.Name, tr.Target)
		case catalog.TriggerAfterInsert:
			head = fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER INSERT AS", tr.Name, tr.Target)
		case catalog.TriggerAfterUpdate:
			head = fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER UPDATE AS", tr.Name, tr.Target)
		case catalog.TriggerAfterDelete:
			head = fmt.Sprintf("CREATE TRIGGER %s ON %s AFTER DELETE AS", tr.Name, tr.Target)
		}
		if _, err := fmt.Fprintf(bw, "%s %s;\n", head, tr.Action); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// dumpBatch bounds multi-row INSERT statements.
const dumpBatch = 500

func dumpTable(w *bufio.Writer, e *Engine, meta *catalog.TableMeta) error {
	var cols []string
	pkInline := len(meta.PrimaryKey) == 1
	for i, c := range meta.Columns {
		def := fmt.Sprintf("%s %s", c.Name, c.Type)
		if pkInline && meta.PrimaryKey[0] == i {
			def += " PRIMARY KEY"
		}
		cols = append(cols, def)
	}
	if len(meta.PrimaryKey) > 1 {
		names := make([]string, len(meta.PrimaryKey))
		for i, ord := range meta.PrimaryKey {
			names[i] = meta.Columns[ord].Name
		}
		cols = append(cols, "PRIMARY KEY ("+strings.Join(names, ", ")+")")
	}
	if _, err := fmt.Fprintf(w, "CREATE TABLE %s (%s);\n", meta.Name, strings.Join(cols, ", ")); err != nil {
		return err
	}

	tbl, ok := e.store.Table(meta.Name)
	if !ok {
		return fmt.Errorf("dump: table %q has no storage", meta.Name)
	}
	// Stream the heap one INSERT batch at a time instead of
	// materializing a full copy of the table: memory stays bounded by
	// dumpBatch regardless of table size. dmlMu (held by the caller)
	// keeps the data stable across chunk boundaries.
	buf := make([]value.Row, dumpBatch)
	ids := make([]storage.RowID, dumpBatch)
	for pos := 0; pos >= 0; {
		var n int
		n, pos = tbl.ScanChunk(pos, buf, ids)
		if n == 0 {
			continue
		}
		if err := dumpRows(w, meta.Name, buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

func dumpRows(w *bufio.Writer, table string, rows []value.Row) error {
	for start := 0; start < len(rows); start += dumpBatch {
		end := start + dumpBatch
		if end > len(rows) {
			end = len(rows)
		}
		if _, err := fmt.Fprintf(w, "INSERT INTO %s VALUES\n", table); err != nil {
			return err
		}
		for i, row := range rows[start:end] {
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = v.SQL()
			}
			sep := ","
			if i == end-start-1 {
				sep = ";"
			}
			if _, err := fmt.Fprintf(w, "\t(%s)%s\n", strings.Join(parts, ", "), sep); err != nil {
				return err
			}
		}
	}
	return nil
}
