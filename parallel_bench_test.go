package auditdb

import (
	"fmt"
	"testing"

	"auditdb/internal/engine"
	"auditdb/internal/value"
)

// benchParallelEngine builds a 1M-row events table with an audit
// expression over ~1% of users, plus a small users dimension for the
// join benchmark. Shared across benchmarks via sync once-per-process
// caching is deliberately avoided: each benchmark builds its own engine
// so b.N loops never see another benchmark's plan cache.
func benchParallelEngine(b *testing.B, rows int) *engine.Engine {
	b.Helper()
	e := engine.New()
	script := `
		CREATE TABLE events (user_id INT, kind INT, amount INT);
		CREATE TABLE users (user_id INT PRIMARY KEY, region VARCHAR(10));
		CREATE AUDIT EXPRESSION Audit_Watch AS
			SELECT * FROM events WHERE user_id < 10000
			FOR SENSITIVE TABLE events, PARTITION BY user_id;
	`
	if _, err := e.ExecScript(script); err != nil {
		b.Fatal(err)
	}
	const users = 1000
	batch := make([]value.Row, 0, 1<<14)
	for i := 0; i < rows; i++ {
		batch = append(batch, value.Row{
			value.NewInt(int64(i % 1000000)),
			value.NewInt(int64(i % 16)),
			value.NewInt(int64(i % 997)),
		})
		if len(batch) == cap(batch) {
			if err := e.LoadRows("events", batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := e.LoadRows("events", batch); err != nil {
			b.Fatal(err)
		}
	}
	urows := make([]value.Row, users)
	regions := []string{"NA", "EU", "APAC", "LATAM"}
	for i := range urows {
		urows[i] = value.Row{value.NewInt(int64(i)), value.NewString(regions[i%len(regions)])}
	}
	if err := e.LoadRows("users", urows); err != nil {
		b.Fatal(err)
	}
	e.SetAuditAll(true)
	return e
}

const benchRows = 1_000_000

// runAtWorkers runs one query at a fixed worker budget as a sub-benchmark.
func runAtWorkers(b *testing.B, e *engine.Engine, sql string, wantRows int) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e.SetDefaultWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := e.Query(sql)
				if err != nil {
					b.Fatal(err)
				}
				if wantRows >= 0 && len(r.Rows) != wantRows {
					b.Fatalf("rows = %d, want %d", len(r.Rows), wantRows)
				}
			}
		})
	}
}

// BenchmarkParallelAuditedScan is the acceptance benchmark: an audited
// scan + filter over 1M rows, serial vs 4 workers. The filter keeps
// ~1/16 of rows; every row is audit-probed against Audit_Watch.
func BenchmarkParallelAuditedScan(b *testing.B) {
	e := benchParallelEngine(b, benchRows)
	runAtWorkers(b, e, "SELECT user_id, amount FROM events WHERE kind = 3", benchRows/16)
}

// BenchmarkParallelJoin: partitioned parallel hash join of the 1M-row
// events table against the users dimension.
func BenchmarkParallelJoin(b *testing.B) {
	e := benchParallelEngine(b, benchRows)
	runAtWorkers(b, e, "SELECT COUNT(*) FROM events e, users u WHERE e.user_id = u.user_id", 1)
}

// BenchmarkParallelGroupBy: two-phase parallel aggregation over 1M
// rows (integer SUM and COUNT per kind).
func BenchmarkParallelGroupBy(b *testing.B) {
	e := benchParallelEngine(b, benchRows)
	runAtWorkers(b, e, "SELECT kind, COUNT(*), SUM(amount) FROM events GROUP BY kind", 16)
}
