package engine

import "testing"

func TestHavingAggregateNotInSelect(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Zip FROM Patients GROUP BY Zip HAVING COUNT(*) > 1 ORDER BY Zip")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "48109" || r.Rows[1][0].Str() != "98052" {
		t.Errorf("rows = %v", r.Rows)
	}
	if len(r.Rows[0]) != 1 {
		t.Errorf("hidden aggregate leaked into output: %v", r.Rows[0])
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT Zip FROM Patients GROUP BY Zip ORDER BY COUNT(*) DESC, Zip")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// 48109 and 98052 have 2 each (tie broken by Zip), 10001 has 1.
	if r.Rows[0][0].Str() != "48109" || r.Rows[2][0].Str() != "10001" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newHealthDB(t)
	// Group by a computed expression, selecting the same expression.
	r := mustQuery(t, e, "SELECT Age / 10, COUNT(*) FROM Patients GROUP BY Age / 10 ORDER BY 1")
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestGroupByWithWhereAndAlias(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, `SELECT Zip AS z, MIN(Age) AS youngest FROM Patients
		WHERE Age > 21 GROUP BY Zip ORDER BY z`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "10001" || r.Rows[0][1].Int() != 62 {
		t.Errorf("rows = %v", r.Rows)
	}
	if r.Rows[1][1].Int() != 34 {
		t.Errorf("48109 youngest over 21 = %v", r.Rows[1])
	}
}

func TestAvgOfInts(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT AVG(Age) FROM Patients WHERE Zip = '48109'")
	if r.Rows[0][0].Float() != 27.5 {
		t.Errorf("avg = %v", r.Rows[0])
	}
}

func TestDateStringComparison(t *testing.T) {
	e := New()
	if _, err := e.ExecScript(`
		CREATE TABLE Ev (d DATE);
		INSERT INTO Ev VALUES (DATE '1995-01-01'), (DATE '1996-06-15'), (DATE '1997-12-31');
	`); err != nil {
		t.Fatal(err)
	}
	// Plain string literal coerces against the DATE column.
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Ev WHERE d > '1996-01-01'")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("count = %v", r.Rows[0])
	}
	r = mustQuery(t, e, "SELECT YEAR(d) FROM Ev ORDER BY d LIMIT 1")
	if r.Rows[0][0].Int() != 1995 {
		t.Errorf("year = %v", r.Rows[0])
	}
}

func TestNestedAggregateOverDerivedTable(t *testing.T) {
	e := newHealthDB(t)
	// Aggregate over an aggregate via a derived table (the Q13 shape).
	r := mustQuery(t, e, `
		SELECT n, COUNT(*) FROM
			(SELECT Zip, COUNT(*) AS n FROM Patients GROUP BY Zip) AS z
		GROUP BY n ORDER BY n`)
	// Zip sizes: 10001 -> 1 patient; 48109, 98052 -> 2 patients each.
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Int() != 1 || r.Rows[0][1].Int() != 1 {
		t.Errorf("row0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].Int() != 2 || r.Rows[1][1].Int() != 2 {
		t.Errorf("row1 = %v", r.Rows[1])
	}
}

func TestMinMaxOnStringsAndDates(t *testing.T) {
	e := newHealthDB(t)
	r := mustQuery(t, e, "SELECT MIN(Name), MAX(Name) FROM Patients")
	if r.Rows[0][0].Str() != "Alice" || r.Rows[0][1].Str() != "Erin" {
		t.Errorf("min/max strings = %v", r.Rows[0])
	}
}
