package exec

import (
	"auditdb/internal/plan"
	"auditdb/internal/value"
)

func openJoin(j *plan.Join, ctx *Ctx) (Iterator, error) {
	left, err := Open(j.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := Open(j.Right, ctx)
	if err != nil {
		left.Close()
		return nil, err
	}
	rightWidth := len(j.Right.Schema())
	if len(j.LeftKeys) > 0 {
		return newHashJoin(j, left, right, rightWidth, ctx)
	}
	return newNLJoin(j, left, right, rightWidth, ctx)
}

// ---- Hash join ----

// hashJoinIter builds a hash table over the right input keyed by the
// equi-join keys and probes it with left rows, applying the residual
// predicate to each candidate pair. Left-outer rows with no surviving
// match are null-extended.
type hashJoinIter struct {
	j          *plan.Join
	left       Iterator
	ctx        *Ctx
	table      map[string][]value.Row
	rightWidth int

	cur     value.Row // current left row
	matches []value.Row
	mi      int
	matched bool
	done    bool
}

func newHashJoin(j *plan.Join, left, right Iterator, rightWidth int, ctx *Ctx) (Iterator, error) {
	defer right.Close()
	table := make(map[string][]value.Row)
	for {
		row, ok, err := right.Next()
		if err != nil {
			left.Close()
			return nil, err
		}
		if !ok {
			break
		}
		key, null, err := joinKey(j.RightKeys, ctx, row)
		if err != nil {
			left.Close()
			return nil, err
		}
		if null {
			continue // NULL keys never join
		}
		table[key] = append(table[key], row)
	}
	return &hashJoinIter{j: j, left: left, ctx: ctx, table: table, rightWidth: rightWidth}, nil
}

func joinKey(keys []plan.Expr, ctx *Ctx, row value.Row) (string, bool, error) {
	buf := make([]byte, 0, 16*len(keys))
	for _, k := range keys {
		v, err := k.Eval(ctx.Eval, row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		buf = value.EncodeKey(buf, v)
	}
	return string(buf), false, nil
}

func (it *hashJoinIter) Next() (value.Row, bool, error) {
	for {
		// Drain pending matches for the current left row.
		for it.mi < len(it.matches) {
			r := it.matches[it.mi]
			it.mi++
			pair := it.cur.Concat(r)
			if it.j.Residual != nil {
				v, err := it.j.Residual.Eval(it.ctx.Eval, pair)
				if err != nil {
					return nil, false, err
				}
				if value.TriFromValue(v) != value.True {
					continue
				}
			}
			it.matched = true
			return pair, true, nil
		}
		// Left-outer null extension.
		if it.cur != nil && !it.matched && it.j.Kind == plan.JoinLeft {
			it.matched = true // emit once
			return it.cur.Concat(nullRow(it.rightWidth)), true, nil
		}
		if it.done {
			return nil, false, nil
		}
		row, ok, err := it.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.done = true
			it.cur = nil
			continue
		}
		it.cur = row
		it.matched = false
		it.mi = 0
		key, null, err := joinKey(it.j.LeftKeys, it.ctx, row)
		if err != nil {
			return nil, false, err
		}
		if null {
			it.matches = nil
		} else {
			it.matches = it.table[key]
		}
	}
}

func (it *hashJoinIter) Close() { it.left.Close() }

// ---- Nested loops join ----

// nlJoinIter materializes the right input and scans it per left row,
// evaluating the full join condition on each pair. Used for non-equi
// conditions and cross joins.
type nlJoinIter struct {
	j          *plan.Join
	left       Iterator
	rightRows  []value.Row
	rightWidth int
	ctx        *Ctx

	cur     value.Row
	ri      int
	matched bool
	done    bool
}

func newNLJoin(j *plan.Join, left, right Iterator, rightWidth int, ctx *Ctx) (Iterator, error) {
	defer right.Close()
	var rows []value.Row
	for {
		row, ok, err := right.Next()
		if err != nil {
			left.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	return &nlJoinIter{j: j, left: left, rightRows: rows, rightWidth: rightWidth, ctx: ctx}, nil
}

func (it *nlJoinIter) Next() (value.Row, bool, error) {
	for {
		if it.cur != nil {
			for it.ri < len(it.rightRows) {
				r := it.rightRows[it.ri]
				it.ri++
				pair := it.cur.Concat(r)
				if it.j.Cond != nil {
					v, err := it.j.Cond.Eval(it.ctx.Eval, pair)
					if err != nil {
						return nil, false, err
					}
					if value.TriFromValue(v) != value.True {
						continue
					}
				}
				it.matched = true
				return pair, true, nil
			}
			if !it.matched && it.j.Kind == plan.JoinLeft {
				it.matched = true
				return it.cur.Concat(nullRow(it.rightWidth)), true, nil
			}
			it.cur = nil
		}
		if it.done {
			return nil, false, nil
		}
		row, ok, err := it.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.done = true
			continue
		}
		it.cur = row
		it.ri = 0
		it.matched = false
	}
}

func (it *nlJoinIter) Close() { it.left.Close() }

func nullRow(n int) value.Row {
	row := make(value.Row, n)
	for i := range row {
		row[i] = value.Null
	}
	return row
}
