package main

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"auditdb/internal/client"
)

// buildDaemon compiles the real binary once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "auditdbd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building auditdbd: %v", err)
	}
	return bin
}

// startDaemon launches the binary and waits for its listen address.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				addrCh <- fields[0]
				break
			}
		}
		// Keep draining so the daemon never blocks on a full pipe.
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not report a listen address")
		return nil, ""
	}
}

func sigkillAndWait(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	cmd.Wait() // expected to report the kill; we only need it reaped
}

func sigtermAndWait(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if out, err := exec.Command("cp", "-a", src, dst).CombinedOutput(); err != nil {
		t.Fatalf("cp -a: %v\n%s", err, out)
	}
}

// auditSegment returns the first audit-stream segment file.
func auditSegment(t *testing.T, dataDir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dataDir, "audit", "*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no audit segments in %s (err=%v)", dataDir, err)
	}
	sort.Strings(matches)
	return matches[0]
}

// TestCrashRecovery is the end-to-end durability scenario: a daemon is
// killed with SIGKILL mid-workload and restarted on the same data
// directory. Committed work (including SELECT-trigger audit writes)
// must survive, the uncommitted transaction must not, and the audit
// trail's hash chain must verify — then fail to verify once the
// on-disk log is edited or truncated.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash test builds the daemon binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	// Triage off: these tests pin exact audit-chain record counts, and
	// background verdicts land asynchronously (TestTriageDaemon covers
	// the verdict path).
	walArgs := []string{"-data-dir", dataDir, "-sync", "always", "-demo", "-grace", "5s", "-triage-workers", "0"}

	// --- Boot 1: workload, then kill -9. ---
	cmd, addr := startDaemon(t, bin, walArgs...)
	c, err := client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetUser("dr_mallory"); err != nil {
		t.Fatal(err)
	}
	// Three audited accesses -> three hash-chained audit records plus
	// three trigger-written Log rows.
	for i := 0; i < 3; i++ {
		if _, err := c.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
			t.Fatalf("audited query %d: %v", i, err)
		}
	}
	// Committed work: once the response arrives under -sync always, it
	// is on disk.
	if _, err := c.Exec("INSERT INTO Patients VALUES (6, 'Frank', 50, '11111')"); err != nil {
		t.Fatalf("committed insert: %v", err)
	}
	// Uncommitted work: an open transaction that will die with the
	// process.
	if _, err := c.Exec("BEGIN"); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := c.Exec("INSERT INTO Patients VALUES (7, 'Ghost', 1, '00000')"); err != nil {
		t.Fatalf("uncommitted insert: %v", err)
	}
	sigkillAndWait(t, cmd)
	c.Close()

	// --- Boot 2: recover and check. ---
	cmd, addr = startDaemon(t, bin, walArgs...)
	c, err = client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Check the Log and the chain first: a Patients scan would itself
	// access Alice's row and fire the audit trigger again.
	logRes, err := c.Query("SELECT UserID FROM Log")
	if err != nil {
		t.Fatal(err)
	}
	if len(logRes.Rows) != 3 {
		t.Fatalf("recovered Log rows = %d, want 3", len(logRes.Rows))
	}
	for _, row := range logRes.Rows {
		if row[0].(string) != "dr_mallory" {
			t.Fatalf("Log attribution lost: %v", logRes.Rows)
		}
	}
	v, err := c.VerifyAuditLog()
	if err != nil {
		t.Fatalf("verify op: %v", err)
	}
	if !v.Valid || v.Records != 3 {
		t.Fatalf("audit chain after crash = %+v, want valid with 3 records", v)
	}
	res, err := c.Query("SELECT Name FROM Patients ORDER BY PatientID")
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	var names []string
	for _, row := range res.Rows {
		names = append(names, row[0].(string))
	}
	got := strings.Join(names, ",")
	// 5 demo rows + Frank; no Ghost, and no double-loaded demo.
	if got != "Alice,Bob,Carol,Dave,Erin,Frank" {
		t.Fatalf("recovered Patients = %q", got)
	}
	c.Close()
	// Clean shutdown: checkpoints the recovered state (the snapshot is
	// the recovery artifact CI uploads) and anchors the audit chain.
	sigtermAndWait(t, cmd)

	if dir := os.Getenv("AUDITDB_CRASH_ARTIFACT"); dir != "" {
		ckpts, _ := filepath.Glob(filepath.Join(dataDir, "checkpoint-*.sql"))
		sort.Strings(ckpts)
		if len(ckpts) == 0 {
			t.Fatal("clean shutdown left no checkpoint")
		}
		b, err := os.ReadFile(ckpts[len(ckpts)-1])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "recovered-state.sql"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// --- Tampering scenarios, each from a pristine copy of the
	// post-crash directory. The daemon repairs what it can on boot, but
	// the checkpoint anchor keeps the loss detectable. ---
	pristine := filepath.Join(t.TempDir(), "pristine")
	copyTree(t, dataDir, pristine)

	scenarios := []struct {
		name   string
		mutate func(t *testing.T, seg string)
	}{
		{"edited segment", func(t *testing.T, seg string) {
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x01
			if err := os.WriteFile(seg, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated segment", func(t *testing.T, seg string) {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, fi.Size()*2/3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "data")
			copyTree(t, pristine, dir)
			sc.mutate(t, auditSegment(t, dir))

			cmd, addr := startDaemon(t, bin,
				"-data-dir", dir, "-sync", "always", "-grace", "5s", "-triage-workers", "0")
			defer func() { sigkillAndWait(t, cmd) }()
			c, err := client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			v, err := c.VerifyAuditLog()
			if err != nil {
				t.Fatalf("verify op: %v", err)
			}
			if v.Valid {
				t.Fatalf("%s not detected: %+v", sc.name, v)
			}
			if v.Reason == "" {
				t.Fatal("invalid verdict carries no reason")
			}
		})
	}
}

// TestRestartIdempotent: two clean restarts in a row must not
// double-apply the demo seed or lose audit continuity.
func TestRestartIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("restart test builds the daemon binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-sync", "always", "-demo", "-grace", "5s", "-triage-workers", "0"}

	var prevRecords uint64
	for boot := 0; boot < 2; boot++ {
		cmd, addr := startDaemon(t, bin, args...)
		c, err := client.Dial(addr, client.WithRetry(10, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Query("SELECT * FROM Patients WHERE Name = 'Alice'"); err != nil {
			t.Fatalf("boot %d audited query: %v", boot, err)
		}
		res, err := c.Query("SELECT Name FROM Patients")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("boot %d: Patients rows = %d, want 5 (demo re-applied?)", boot, len(res.Rows))
		}
		v, err := c.VerifyAuditLog()
		if err != nil {
			t.Fatal(err)
		}
		// Both queries above touch Alice's row, so each boot adds two
		// audit records to the chain.
		want := prevRecords + 2
		if !v.Valid || v.Records != want {
			t.Fatalf("boot %d: verify = %+v, want valid with %d records", boot, v, want)
		}
		prevRecords = v.Records
		c.Close()
		sigtermAndWait(t, cmd)
	}
}
