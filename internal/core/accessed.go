package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"auditdb/internal/value"
)

// Accessed is a query's ACCESSED internal state (§II of the paper): the
// per-query, in-memory relation of partition-by IDs recorded by the
// audit operators in its plan. When a plan carries several audit
// operators (multiple expressions, or one per subquery block), the
// state holds the union per expression.
type Accessed struct {
	mu     sync.Mutex
	byExpr map[string]map[string]value.Value
	// observed counts every row an audit operator inspected,
	// independent of matches; used by the overhead benchmarks.
	observed atomic.Int64
}

// NewAccessed returns empty ACCESSED state for one query execution.
func NewAccessed() *Accessed {
	return &Accessed{byExpr: make(map[string]map[string]value.Value)}
}

// Record notes that id (a sensitive ID of the named expression) was
// seen by an audit operator.
func (a *Accessed) Record(expr string, id value.Value) {
	a.mu.Lock()
	defer a.mu.Unlock()
	set, ok := a.byExpr[expr]
	if !ok {
		set = make(map[string]value.Value)
		a.byExpr[expr] = set
	}
	set[value.KeyOf(id)] = id
}

// IDs returns the audited IDs for one expression, sorted for
// deterministic consumption by trigger actions and tests.
func (a *Accessed) IDs(expr string) []value.Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := a.byExpr[expr]
	out := make([]value.Value, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.Compare(out[i], out[j]) < 0 })
	return out
}

// Len returns the number of distinct audited IDs for one expression.
func (a *Accessed) Len(expr string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.byExpr[expr])
}

// Expressions returns the names of expressions with at least one
// audited ID, sorted.
func (a *Accessed) Expressions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.byExpr))
	for name, set := range a.byExpr {
		if len(set) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Observed returns how many rows flowed through audit operators.
func (a *Accessed) Observed() int64 { return a.observed.Load() }

// Probe is the audit operator's sink (plan.AuditSink): a hash probe of
// the expression's materialized sensitive-ID set; matches are recorded
// into the ACCESSED state. This is the paper's "hash join whose build
// side is the audit expression's ID view" (§IV-A.2).
//
// A Probe belongs to one query execution. Query execution is
// single-threaded, so the probe keeps an unsynchronized first-seen
// cache: each sensitive ID pays the Record cost (lock + map insert)
// once, and every further occurrence in the stream is a cheap local
// lookup.
type Probe struct {
	Expr *AuditExpression
	Acc  *Accessed

	seenInts map[int64]struct{}
	seenKeys map[string]struct{}
}

// Observe implements plan.AuditSink.
func (p *Probe) Observe(v value.Value) {
	p.Acc.observed.Add(1)
	if !p.Expr.Contains(v) {
		return
	}
	if v.Kind == value.KindInt {
		if _, dup := p.seenInts[v.I]; dup {
			return
		}
		if p.seenInts == nil {
			p.seenInts = make(map[int64]struct{})
		}
		p.seenInts[v.I] = struct{}{}
	} else {
		k := value.KeyOf(v)
		if _, dup := p.seenKeys[k]; dup {
			return
		}
		if p.seenKeys == nil {
			p.seenKeys = make(map[string]struct{})
		}
		p.seenKeys[k] = struct{}{}
	}
	p.Acc.Record(p.Expr.Meta.Name, v)
}
