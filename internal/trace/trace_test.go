package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func attrStr(sp Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Str
		}
	}
	return ""
}

func TestRecSpanNesting(t *testing.T) {
	var r Rec
	r.Begin(7, true)
	if !r.Active() || !r.Sampling() || r.QID() != 7 {
		t.Fatalf("after Begin: active=%t sampling=%t qid=%d", r.Active(), r.Sampling(), r.QID())
	}

	a := r.StartSpan("outer")
	b := r.StartSpan("inner")
	r.SetAttr(b, "kind", "leaf")
	r.EndSpan(b)
	c := r.AddSpan(r.Current(), "done", time.Now(), time.Millisecond)
	r.SetAttrInt(c, "rows", 5)
	r.EndSpan(a)

	tr := r.Finish("alice", "SELECT 1", "", true)
	if tr == nil {
		t.Fatal("Finish(retain=true) returned nil")
	}
	if tr.QID != 7 || tr.User != "alice" || tr.SQL != "SELECT 1" || !tr.Sampled {
		t.Fatalf("trace header = %+v", tr)
	}
	// statement(0) -> outer(1) -> {inner(2), done(3)}
	if len(tr.Spans) != 4 {
		t.Fatalf("spans = %+v, want 4", tr.Spans)
	}
	if tr.Spans[0].Name != "statement" || tr.Spans[0].Parent != -1 {
		t.Fatalf("root = %+v", tr.Spans[0])
	}
	if tr.Spans[1].Name != "outer" || tr.Spans[1].Parent != 0 {
		t.Fatalf("outer = %+v", tr.Spans[1])
	}
	if tr.Spans[2].Name != "inner" || tr.Spans[2].Parent != 1 {
		t.Fatalf("inner = %+v", tr.Spans[2])
	}
	if tr.Spans[3].Name != "done" || tr.Spans[3].Parent != 1 {
		t.Fatalf("done = %+v", tr.Spans[3])
	}
	if got := attrStr(tr.Spans[2], "kind"); got != "leaf" {
		t.Fatalf("inner attrs = %+v", tr.Spans[2].Attrs)
	}
	if tr.Spans[0].Dur != tr.Elapsed {
		t.Fatalf("root dur %d != elapsed %d", tr.Spans[0].Dur, tr.Elapsed)
	}
	if r.Active() {
		t.Fatal("recorder still active after Finish")
	}
	if r.Finish("", "", "", true) != nil {
		t.Fatal("Finish on idle recorder must return nil")
	}
}

// TestRecUnbalancedEndSpan: EndSpan on an outer handle pops spans left
// open inside it, so error paths can bail without unwinding manually.
func TestRecUnbalancedEndSpan(t *testing.T) {
	var r Rec
	r.Begin(1, true)
	a := r.StartSpan("outer")
	r.StartSpan("leaked")
	r.EndSpan(a)
	if cur := r.Current(); cur != 0 {
		t.Fatalf("current = %d after closing outer, want root 0", cur)
	}
	r.EndSpan(-1) // no-op handle from an unsampled StartSpan
	tr := r.Finish("", "", "", true)
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %+v", tr.Spans)
	}
}

// TestRecUnsampledZeroAlloc is the recorder half of the PR's zero-cost
// guarantee: a full Begin/phase/span/Finish cycle with sampling off and
// no retention must not allocate (the engine-level gate is
// TestWarmExecAllocBudget in internal/engine).
func TestRecUnsampledZeroAlloc(t *testing.T) {
	var r Rec
	allocs := testing.AllocsPerRun(1000, func() {
		r.Begin(42, false)
		r.AddPhase(PhaseParse, time.Microsecond)
		r.AddPhase(PhaseExec, time.Millisecond)
		id := r.StartSpan("execute")
		r.SetAttrInt(id, "rows", 1)
		r.EndSpan(id)
		if r.Finish("", "", "", false) != nil {
			t.Fatal("unretained Finish must return nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestRecTailSynthesis: an unsampled statement retained by tail capture
// (slow or errored) gets a coarse span tree built from the phase
// clocks.
func TestRecTailSynthesis(t *testing.T) {
	var r Rec
	r.Begin(5, false)
	r.AddPhase(PhaseParse, 2*time.Millisecond)
	r.AddPhase(PhaseExec, 8*time.Millisecond)
	if id := r.StartSpan("ignored"); id != -1 {
		t.Fatalf("StartSpan while unsampled = %d, want -1", id)
	}
	tr := r.Finish("bob", "SELECT slow", "boom", true)
	if tr == nil || tr.Sampled {
		t.Fatalf("trace = %+v, want retained unsampled", tr)
	}
	if tr.Err != "boom" || tr.User != "bob" {
		t.Fatalf("trace header = %+v", tr)
	}
	if tr.Phases["parse"] != int64(2*time.Millisecond) || tr.Phases["execute"] != int64(8*time.Millisecond) {
		t.Fatalf("phases = %v", tr.Phases)
	}
	// statement root + one span per non-zero phase.
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %+v, want root+parse+execute", tr.Spans)
	}
	names := []string{tr.Spans[1].Name, tr.Spans[2].Name}
	if names[0] != "parse" || names[1] != "execute" {
		t.Fatalf("synthesized spans = %v", names)
	}
	for _, sp := range tr.Spans[1:] {
		if sp.Parent != 0 {
			t.Fatalf("synthesized span %+v not parented to root", sp)
		}
	}
}

func mkTrace(qid uint64) *Trace {
	return &Trace{QID: qid, Sampled: true, Spans: []Span{{ID: 0, Parent: -1, Name: "statement"}}}
}

func TestRingEviction(t *testing.T) {
	g := NewRing(2)
	if g.Add(nil) {
		t.Fatal("Add(nil) must not evict")
	}
	if g.Add(mkTrace(1)) || g.Add(mkTrace(2)) {
		t.Fatal("filling an empty ring must not evict")
	}
	if !g.Add(mkTrace(3)) {
		t.Fatal("overwriting the oldest slot must report eviction")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if g.Get(1) != nil {
		t.Fatal("evicted trace 1 still retrievable")
	}
	if g.Get(3) == nil || g.Get(2) == nil {
		t.Fatal("retained traces not retrievable")
	}
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].QID != 3 || snap[1].QID != 2 {
		t.Fatalf("snapshot order = %v, want newest first [3 2]", snap)
	}
}

func TestRingHandler(t *testing.T) {
	g := NewRing(4)
	g.Add(mkTrace(1))
	g.Add(mkTrace(2))
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var list []Trace
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].QID != 2 {
		t.Fatalf("list = %+v, want 2 traces newest first", list)
	}

	resp, err = http.Get(srv.URL + "?qid=1")
	if err != nil {
		t.Fatal(err)
	}
	var one Trace
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.QID != 1 {
		t.Fatalf("single trace = %+v", one)
	}

	for query, status := range map[string]int{"?qid=99": http.StatusNotFound, "?qid=abc": http.StatusBadRequest} {
		resp, err = http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("GET %s: status %d, want %d", query, resp.StatusCode, status)
		}
	}
}

func TestRender(t *testing.T) {
	tr := &Trace{
		QID: 9, User: "alice", Elapsed: int64(3 * time.Millisecond), Sampled: true,
		Err: `bad "thing"`,
		Spans: []Span{
			{ID: 0, Parent: -1, Name: "statement", Dur: int64(3 * time.Millisecond)},
			{ID: 1, Parent: 0, Name: "execute", Dur: int64(2 * time.Millisecond),
				Attrs: []Attr{{Key: "rows", Int: 5}}},
			{ID: 2, Parent: 1, Name: "worker", Dur: int64(time.Millisecond)},
		},
	}
	lines := tr.Render()
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[0], "qid=9") || !strings.Contains(lines[0], `error="bad \"thing\""`) {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "statement") {
		t.Fatalf("root line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  execute") || !strings.Contains(lines[2], "rows=5") {
		t.Fatalf("operator line = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "    worker") {
		t.Fatalf("worker line = %q", lines[3])
	}
}
