package pgwire_test

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"auditdb"
	"auditdb/internal/client"
	"auditdb/internal/engine"
	"auditdb/internal/pgwire"
	"auditdb/internal/pgwire/pgtest"
	"auditdb/internal/server"
	"auditdb/internal/trace"
	"auditdb/internal/wal"
)

// startTracedPG boots both listeners over a durable, demo-loaded
// engine with every statement sampled, so traces and the on-disk audit
// trail can be compared across protocols.
func startTracedPG(t *testing.T) (*engine.Engine, *server.Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	eng := engine.New()
	m, rec, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(rec); err != nil {
		t.Fatal(err)
	}
	eng.AttachWAL(m)
	t.Cleanup(func() { eng.CloseWAL() })
	eng.SetTraceSampling(1)
	if _, err := eng.ExecScript(auditdb.HealthcareDemo); err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.AddListener("127.0.0.1:0", pgwire.New(srv.Metrics())); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return eng, srv, srv.ProtoAddr("pg").String(), dir
}

var qidInNotice = regexp.MustCompile(` qid=(\d+)`)

// coreSpans reduces a trace to the span names the two protocols must
// agree on. The front ends differ legitimately in how text becomes a
// statement — the pg simple-query path parses scripts ("parse"), the
// line-JSON query op takes the normalized fast path ("normalize") — so
// those two names are excluded.
func coreSpans(tr *trace.Trace) map[string]bool {
	out := map[string]bool{}
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "parse", "normalize":
		default:
			out[sp.Name] = true
		}
	}
	return out
}

func operatorChildren(t *testing.T, tr *trace.Trace) int {
	t.Helper()
	topExec := -1
	for _, sp := range tr.Spans {
		if sp.Name == "execute" && sp.Parent == 0 {
			topExec = sp.ID
			break
		}
	}
	if topExec < 0 {
		t.Fatalf("no top-level execute span in:\n%s", strings.Join(tr.Render(), "\n"))
	}
	n := 0
	for _, sp := range tr.Spans {
		if sp.Parent == topExec {
			n++
		}
	}
	return n
}

func transportProto(tr *trace.Trace) string {
	for _, sp := range tr.Spans {
		if sp.Name == "transport.read" {
			for _, a := range sp.Attrs {
				if a.Key == "protocol" {
					return a.Str
				}
			}
		}
	}
	return ""
}

// TestTraceCrossProtocol runs the same audited SELECT through the
// PostgreSQL wire protocol and the line-JSON protocol and checks that
// both produce equivalent span trees (same core structure, differing
// only in the front end's parse-vs-normalize step), that each protocol
// surfaces its query ID (NOTICE trailer vs response field), and that
// the two hash-chained audit records are identical apart from user and
// query ID — with the chain verifying afterwards.
func TestTraceCrossProtocol(t *testing.T) {
	eng, srv, pgAddr, dir := startTracedPG(t)
	const q = "SELECT Name FROM Patients WHERE Name = 'Alice'"

	// PostgreSQL side: the qid rides the audit NOTICE.
	pc := dialPG(t, pgAddr, "dr_mallory")
	msgs, _ := query(t, pc, q)
	var pgQID uint64
	for _, m := range byType(msgs, 'N') {
		msg := pgtest.ErrorFields(m.Body)['M']
		if !strings.HasPrefix(msg, "audit: Audit_Alice=1") {
			t.Fatalf("notice = %q", msg)
		}
		sub := qidInNotice.FindStringSubmatch(msg)
		if sub == nil {
			t.Fatalf("notice carries no qid: %q", msg)
		}
		pgQID, _ = strconv.ParseUint(sub[1], 10, 64)
	}
	if pgQID == 0 {
		t.Fatal("no audit NOTICE with a qid on the pg side")
	}

	// Line-JSON side: the qid is a response field.
	jc, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jc.Close()
	if err := jc.SetUser("nurse_bob"); err != nil {
		t.Fatal(err)
	}
	res, err := jc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.QID == 0 {
		t.Fatal("line-JSON response carries no qid")
	}
	if res.Audited["Audit_Alice"] != 1 {
		t.Fatalf("audited = %v", res.Audited)
	}

	pgTr := eng.TraceRing().Get(pgQID)
	jsTr := eng.TraceRing().Get(res.QID)
	if pgTr == nil || jsTr == nil {
		t.Fatalf("traces not retained: pg=%v json=%v", pgTr, jsTr)
	}
	if got := transportProto(pgTr); got != "pg" {
		t.Errorf("pg trace transport protocol = %q", got)
	}
	if got := transportProto(jsTr); got != "json" {
		t.Errorf("json trace transport protocol = %q", got)
	}

	// Same core structure on both protocols.
	pgCore, jsCore := coreSpans(pgTr), coreSpans(jsTr)
	for _, want := range []string{
		"transport.read", "plan", "execute", "audit.fire", "wal.audit.append", "wal.commit",
	} {
		if !pgCore[want] {
			t.Errorf("pg trace missing %q:\n%s", want, strings.Join(pgTr.Render(), "\n"))
		}
		if !jsCore[want] {
			t.Errorf("json trace missing %q:\n%s", want, strings.Join(jsTr.Render(), "\n"))
		}
	}
	for name := range pgCore {
		if !jsCore[name] {
			t.Errorf("span %q only in the pg trace", name)
		}
	}
	for name := range jsCore {
		if !pgCore[name] {
			t.Errorf("span %q only in the json trace", name)
		}
	}
	if pg, js := operatorChildren(t, pgTr), operatorChildren(t, jsTr); pg == 0 || pg != js {
		t.Errorf("operator children: pg=%d json=%d, want equal and nonzero", pg, js)
	}

	// The two audit records must be the same trail entry modulo session
	// identity, each carrying its protocol's qid verbatim.
	raw, err := os.ReadFile(filepath.Join(dir, "audit", "000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.ScanBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	byQID := map[uint64]*wal.Audit{}
	for _, rec := range recs {
		if rec.Type == wal.RecAudit {
			byQID[rec.Audit.QID] = rec.Audit
		}
	}
	pgRec, jsRec := byQID[pgQID], byQID[res.QID]
	if pgRec == nil || jsRec == nil {
		t.Fatalf("audit records missing: pg=%v json=%v (have %v)", pgRec, jsRec, byQID)
	}
	if pgRec.User != "dr_mallory" || jsRec.User != "nurse_bob" {
		t.Errorf("audit users = %q / %q", pgRec.User, jsRec.User)
	}
	if pgRec.Expr != jsRec.Expr || pgRec.SQL != jsRec.SQL || len(pgRec.IDs) != len(jsRec.IDs) {
		t.Errorf("audit records diverge beyond identity:\npg:   %+v\njson: %+v", pgRec, jsRec)
	}
	for i := range pgRec.IDs {
		if pgRec.IDs[i].Int() != jsRec.IDs[i].Int() {
			t.Errorf("audit IDs diverge: %v vs %v", pgRec.IDs, jsRec.IDs)
		}
	}
	rep, err := eng.VerifyAuditLog()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid {
		t.Fatalf("audit chain invalid: %s", rep.Reason)
	}
}

// TestShowTracePG: SHOW TRACE FOR and SHOW TRACES pass through the
// pg utility front door to the engine, so psql users can inspect the
// trace a NOTICE pointed them at.
func TestShowTracePG(t *testing.T) {
	_, _, pgAddr, _ := startTracedPG(t)
	pc := dialPG(t, pgAddr, "dr_mallory")
	msgs, _ := query(t, pc, "SELECT Name FROM Patients WHERE Name = 'Alice'")
	var qid string
	for _, m := range byType(msgs, 'N') {
		if sub := qidInNotice.FindStringSubmatch(pgtest.ErrorFields(m.Body)['M']); sub != nil {
			qid = sub[1]
		}
	}
	if qid == "" {
		t.Fatal("no qid in NOTICE")
	}

	msgs, _ = query(t, pc, "SHOW TRACE FOR "+qid)
	if got := tags(t, msgs); len(got) != 1 || got[0] != "SHOW" {
		t.Fatalf("tags = %v", got)
	}
	rows := byType(msgs, 'D')
	if len(rows) < 2 {
		t.Fatalf("SHOW TRACE FOR returned %d rows", len(rows))
	}
	first, err := pgtest.DataRow(rows[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first[0]), "qid="+qid) {
		t.Fatalf("first trace line = %q", first[0])
	}

	msgs, _ = query(t, pc, "SHOW TRACES")
	listed := false
	for _, m := range byType(msgs, 'D') {
		cells, err := pgtest.DataRow(m.Body)
		if err != nil {
			t.Fatal(err)
		}
		if string(cells[0]) == qid {
			listed = true
		}
	}
	if !listed {
		t.Fatalf("qid %s not in SHOW TRACES", qid)
	}

	// Bare SHOW trace still reports the session flag, not a trace.
	msgs, _ = query(t, pc, "SHOW trace")
	row, err := pgtest.DataRow(byType(msgs, 'D')[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(row[0]); got != "off" {
		t.Fatalf("SHOW trace = %q, want off", got)
	}
}
