package engine

import (
	"strings"
	"testing"
)

func TestExplainStatement(t *testing.T) {
	e := newHealthDB(t)
	r := mustExec(t, e, "EXPLAIN SELECT Name FROM Patients WHERE Age > 30 ORDER BY Name LIMIT 2")
	if len(r.Columns) != 1 || r.Columns[0] != "plan" {
		t.Fatalf("columns = %v", r.Columns)
	}
	text := ""
	for _, row := range r.Rows {
		text += row[0].Str() + "\n"
	}
	for _, want := range []string{"Limit(2)", "Sort(", "Scan(Patients"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

func TestExplainShowsAuditWhenActive(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_All AS
			SELECT * FROM Patients WHERE PatientID > 0
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)
	r := mustExec(t, e, "EXPLAIN SELECT * FROM Patients")
	text := ""
	for _, row := range r.Rows {
		text += row[0].Str() + "\n"
	}
	if !strings.Contains(text, "Audit(Audit_All") {
		t.Errorf("explain should show the audit operator:\n%s", text)
	}
	// EXPLAIN itself must not record accesses or fire triggers.
	if got := e.StatsSnapshot()["rows_audited"]; got != 0 {
		t.Errorf("EXPLAIN audited rows: %d", got)
	}
}
