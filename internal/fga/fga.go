// Package fga implements the related-work baseline of §VI: a static
// analysis in the style of Oracle Fine Grained Auditing. A query is
// flagged as possibly accessing an audit expression if the conjunction
// of the query's selection condition and the audit expression's
// condition is satisfiable over the sensitive table's columns
// (instance-independent semantics). The analysis is deliberately
// conservative — anything it cannot reason about counts as
// satisfiable — which is exactly why it false-positives on queries
// like Example 6.1's "DeptID = 10".
package fga

import (
	"strings"

	"auditdb/internal/ast"
	"auditdb/internal/catalog"
	"auditdb/internal/value"
)

// Analyzer checks queries against audit expressions statically.
type Analyzer struct {
	cat *catalog.Catalog
}

// New creates an analyzer over a catalog.
func New(cat *catalog.Catalog) *Analyzer {
	return &Analyzer{cat: cat}
}

// Flagged reports whether static analysis would audit the query for
// the audit expression: true unless the combined selection conditions
// on the sensitive table's columns are provably contradictory.
func (a *Analyzer) Flagged(query *ast.Select, aeMeta *catalog.AuditExprMeta, aeQuery *ast.Select) bool {
	tbl, ok := a.cat.Table(aeMeta.SensitiveTable)
	if !ok {
		return true
	}
	// If the query never references the sensitive table, it cannot
	// access it.
	if !referencesTable(query, aeMeta.SensitiveTable) {
		return false
	}
	cols := map[string]bool{}
	for _, c := range tbl.Columns {
		cols[strings.ToLower(c.Name)] = true
	}
	queryCons := collectConstraints(query.Where, cols)
	auditCons := collectConstraints(aeQuery.Where, cols)

	merged := map[string]*constraint{}
	for col, c := range auditCons {
		merged[col] = c.clone()
	}
	for col, c := range queryCons {
		if prev, ok := merged[col]; ok {
			if !prev.merge(c) {
				return false // provable contradiction
			}
		} else {
			merged[col] = c.clone()
		}
	}
	for _, c := range merged {
		if !c.satisfiable() {
			return false
		}
	}
	return true
}

func referencesTable(q *ast.Select, table string) bool {
	found := false
	var visit func(ref ast.TableRef)
	visit = func(ref ast.TableRef) {
		switch r := ref.(type) {
		case *ast.BaseTable:
			if strings.EqualFold(r.Name, table) {
				found = true
			}
		case *ast.JoinRef:
			visit(r.Left)
			visit(r.Right)
		case *ast.SubqueryRef:
			if referencesTable(r.Sub, table) {
				found = true
			}
		}
	}
	for _, ref := range q.From {
		visit(ref)
	}
	// Subqueries in WHERE can also read the table.
	ast.WalkExprs(q.Where, func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Exists:
			if referencesTable(x.Sub, table) {
				found = true
			}
		case *ast.InSubquery:
			if referencesTable(x.Sub, table) {
				found = true
			}
		case *ast.ScalarSubquery:
			if referencesTable(x.Sub, table) {
				found = true
			}
		}
	})
	return found
}

// constraint is the value set a column is restricted to: an optional
// equality set intersected with an optional range.
type constraint struct {
	eqs    map[string]value.Value // nil = unconstrained by equality
	lo, hi *bound
}

type bound struct {
	v    value.Value
	open bool // strict inequality
}

func (c *constraint) clone() *constraint {
	out := &constraint{lo: c.lo, hi: c.hi}
	if c.eqs != nil {
		out.eqs = make(map[string]value.Value, len(c.eqs))
		for k, v := range c.eqs {
			out.eqs[k] = v
		}
	}
	return out
}

// merge intersects o into c, reporting false on contradiction.
func (c *constraint) merge(o *constraint) bool {
	if o.eqs != nil {
		if c.eqs == nil {
			c.eqs = make(map[string]value.Value, len(o.eqs))
			for k, v := range o.eqs {
				c.eqs[k] = v
			}
		} else {
			for k := range c.eqs {
				if _, ok := o.eqs[k]; !ok {
					delete(c.eqs, k)
				}
			}
		}
	}
	if o.lo != nil && (c.lo == nil || value.Compare(o.lo.v, c.lo.v) > 0 || (value.Compare(o.lo.v, c.lo.v) == 0 && o.lo.open)) {
		c.lo = o.lo
	}
	if o.hi != nil && (c.hi == nil || value.Compare(o.hi.v, c.hi.v) < 0 || (value.Compare(o.hi.v, c.hi.v) == 0 && o.hi.open)) {
		c.hi = o.hi
	}
	return c.satisfiable()
}

func (c *constraint) satisfiable() bool {
	if c.eqs != nil {
		if len(c.eqs) == 0 {
			return false
		}
		for _, v := range c.eqs {
			if c.inRange(v) {
				return true
			}
		}
		return false
	}
	if c.lo != nil && c.hi != nil {
		cmp := value.Compare(c.lo.v, c.hi.v)
		if cmp > 0 {
			return false
		}
		if cmp == 0 && (c.lo.open || c.hi.open) {
			return false
		}
	}
	return true
}

func (c *constraint) inRange(v value.Value) bool {
	if c.lo != nil {
		cmp := value.Compare(v, c.lo.v)
		if cmp < 0 || (cmp == 0 && c.lo.open) {
			return false
		}
	}
	if c.hi != nil {
		cmp := value.Compare(v, c.hi.v)
		if cmp > 0 || (cmp == 0 && c.hi.open) {
			return false
		}
	}
	return true
}

// collectConstraints extracts per-column constraints from the
// top-level conjuncts of a predicate, considering only simple
// column-vs-literal comparisons over the given columns. Everything
// else (ORs, functions, joins, subqueries) contributes nothing, which
// keeps the analysis conservative.
func collectConstraints(e ast.Expr, cols map[string]bool) map[string]*constraint {
	out := map[string]*constraint{}
	for _, conj := range conjuncts(e) {
		col, c := constraintOf(conj, cols)
		if c == nil {
			continue
		}
		if prev, ok := out[col]; ok {
			prev.merge(c)
		} else {
			out[col] = c
		}
	}
	return out
}

func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []ast.Expr{e}
}

func constraintOf(e ast.Expr, cols map[string]bool) (string, *constraint) {
	switch x := e.(type) {
	case *ast.Binary:
		col, lit, op, ok := columnVsLiteral(x, cols)
		if !ok {
			return "", nil
		}
		switch op {
		case ast.OpEq:
			return col, &constraint{eqs: map[string]value.Value{value.KeyOf(lit): lit}}
		case ast.OpLt:
			return col, &constraint{hi: &bound{v: lit, open: true}}
		case ast.OpLe:
			return col, &constraint{hi: &bound{v: lit}}
		case ast.OpGt:
			return col, &constraint{lo: &bound{v: lit, open: true}}
		case ast.OpGe:
			return col, &constraint{lo: &bound{v: lit}}
		}
		return "", nil
	case *ast.InList:
		if x.Negate {
			return "", nil
		}
		cr, ok := x.X.(*ast.ColumnRef)
		if !ok || !cols[strings.ToLower(cr.Name)] {
			return "", nil
		}
		eqs := map[string]value.Value{}
		for _, item := range x.List {
			lit, ok := item.(*ast.Literal)
			if !ok {
				return "", nil
			}
			eqs[value.KeyOf(lit.Val)] = lit.Val
		}
		return strings.ToLower(cr.Name), &constraint{eqs: eqs}
	case *ast.Between:
		if x.Negate {
			return "", nil
		}
		cr, ok := x.X.(*ast.ColumnRef)
		if !ok || !cols[strings.ToLower(cr.Name)] {
			return "", nil
		}
		lo, lok := x.Lo.(*ast.Literal)
		hi, hok := x.Hi.(*ast.Literal)
		if !lok || !hok {
			return "", nil
		}
		return strings.ToLower(cr.Name), &constraint{lo: &bound{v: lo.Val}, hi: &bound{v: hi.Val}}
	}
	return "", nil
}

func columnVsLiteral(b *ast.Binary, cols map[string]bool) (col string, lit value.Value, op ast.BinaryOp, ok bool) {
	if !b.Op.IsComparison() {
		return "", value.Null, 0, false
	}
	if cr, lok := b.L.(*ast.ColumnRef); lok {
		if l, rok := b.R.(*ast.Literal); rok && cols[strings.ToLower(cr.Name)] {
			return strings.ToLower(cr.Name), l.Val, b.Op, true
		}
	}
	if cr, rok := b.R.(*ast.ColumnRef); rok {
		if l, lok := b.L.(*ast.Literal); lok && cols[strings.ToLower(cr.Name)] {
			return strings.ToLower(cr.Name), l.Val, flip(b.Op), true
		}
	}
	return "", value.Null, 0, false
}

func flip(op ast.BinaryOp) ast.BinaryOp {
	switch op {
	case ast.OpLt:
		return ast.OpGt
	case ast.OpLe:
		return ast.OpGe
	case ast.OpGt:
		return ast.OpLt
	case ast.OpGe:
		return ast.OpLe
	default:
		return op
	}
}
