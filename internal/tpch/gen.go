// Package tpch provides the evaluation substrate of the paper's §V: a
// deterministic, scale-factor-parameterized TPC-H data generator and
// the seven-query customer workload (Q3, Q5, Q7, Q8, Q10, Q13, Q18 —
// every TPC-H query that references the Customer table and contains no
// self-join on it, the paper's selection rule).
//
// The paper ran SF 10 (10 GB, ~1.5 M customers) on a Xeon; this
// generator defaults to laptop scale. All reported experiment
// quantities are ratios (false-positive cardinality against offline
// ground truth; relative overhead against an uninstrumented run), and
// those ratios are driven by selectivities and plan shapes, which the
// generator preserves at any scale factor.
package tpch

import (
	"fmt"
	"math/rand"

	"auditdb/internal/value"
)

// Config parameterizes generation.
type Config struct {
	// SF is the scale factor; SF 1 is the standard 150k-customer
	// database. Defaults to 0.01 when zero.
	SF float64
	// Seed makes generation deterministic. Defaults to 19940101.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SF == 0 {
		c.SF = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 19940101
	}
	return c
}

// Data holds the generated rows per table.
type Data struct {
	Config   Config
	Region   []value.Row
	Nation   []value.Row
	Supplier []value.Row
	Customer []value.Row
	Part     []value.Row
	PartSupp []value.Row
	Orders   []value.Row
	LineItem []value.Row
}

// Counts summarizes table sizes.
func (d *Data) Counts() map[string]int {
	return map[string]int{
		"region": len(d.Region), "nation": len(d.Nation),
		"supplier": len(d.Supplier), "customer": len(d.Customer),
		"part": len(d.Part), "partsupp": len(d.PartSupp),
		"orders": len(d.Orders), "lineitem": len(d.LineItem),
	}
}

// Segments are the five TPC-H market segments; an audit expression on
// one segment covers ~20% of customers, matching the paper's setup.
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations maps TPC-H nation names to region ordinals.
var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstr = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var partTypes = []string{
	"ECONOMY ANODIZED STEEL", "STANDARD BRUSHED COPPER", "PROMO BURNISHED NICKEL",
	"SMALL PLATED BRASS", "LARGE POLISHED TIN", "MEDIUM ANODIZED NICKEL",
}
var containers = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"}
var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
	"final", "special", "pending", "express", "regular", "bold",
	"requests", "deposits", "accounts", "packages", "instructions",
	"theodolites", "pinto", "beans", "foxes", "ideas", "platelets",
}

const (
	epochStart = "1992-01-01"
	orderSpan  = 2406 // days: 1992-01-01 .. 1998-08-02
)

// Generate builds a deterministic TPC-H database at the configured
// scale factor.
func Generate(cfg Config) *Data {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{Config: cfg}

	startDate, err := value.ParseDate(epochStart)
	if err != nil {
		panic("tpch: bad epoch constant: " + err.Error())
	}
	start := startDate.Int()

	for i, r := range regions {
		d.Region = append(d.Region, value.Row{
			value.NewInt(int64(i)), value.NewString(r), comment(rng),
		})
	}
	for i, n := range nations {
		d.Nation = append(d.Nation, value.Row{
			value.NewInt(int64(i)), value.NewString(n.name),
			value.NewInt(int64(n.region)), comment(rng),
		})
	}

	nSupp := max(2, int(cfg.SF*10000))
	for i := 1; i <= nSupp; i++ {
		d.Supplier = append(d.Supplier, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Supplier#%09d", i)),
			address(rng),
			value.NewInt(int64(rng.Intn(len(nations)))),
			phone(rng),
			money(rng, -999, 9999),
			comment(rng),
		})
	}

	nCust := max(5, int(cfg.SF*150000))
	for i := 1; i <= nCust; i++ {
		d.Customer = append(d.Customer, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Customer#%09d", i)),
			address(rng),
			value.NewInt(int64(rng.Intn(len(nations)))),
			phone(rng),
			money(rng, -999, 9999),
			value.NewString(Segments[rng.Intn(len(Segments))]),
			comment(rng),
		})
	}

	nPart := max(4, int(cfg.SF*200000))
	for i := 1; i <= nPart; i++ {
		d.Part = append(d.Part, value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Part %s %s", commentWords[rng.Intn(len(commentWords))], commentWords[rng.Intn(len(commentWords))])),
			value.NewString(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
			value.NewString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			value.NewString(partTypes[rng.Intn(len(partTypes))]),
			value.NewInt(int64(1 + rng.Intn(50))),
			value.NewString(containers[rng.Intn(len(containers))]),
			money(rng, 900, 2000),
			comment(rng),
		})
		// Four suppliers per part.
		for j := 0; j < 4; j++ {
			sk := 1 + (i+j*(nSupp/4+1))%nSupp
			d.PartSupp = append(d.PartSupp, value.Row{
				value.NewInt(int64(i)),
				value.NewInt(int64(sk)),
				value.NewInt(int64(1 + rng.Intn(9999))),
				money(rng, 1, 1000),
				comment(rng),
			})
		}
	}

	// Orders: like dbgen, two thirds of customers have orders, ~10
	// orders each on average.
	nOrders := max(10, int(cfg.SF*1500000))
	orderKey := int64(0)
	for i := 0; i < nOrders; i++ {
		orderKey += int64(1 + rng.Intn(3)) // sparse keys, as in TPC-H
		custkey := int64(1 + rng.Intn(nCust))
		if custkey%3 == 0 { // a third of customers never order
			custkey++
			if custkey > int64(nCust) {
				custkey = 1
			}
		}
		odate := start + int64(rng.Intn(orderSpan-151))
		nLines := 1 + rng.Intn(7)
		var total float64
		status := "O"
		allF := true
		for l := 1; l <= nLines; l++ {
			qty := 1 + rng.Intn(50)
			price := float64(qty) * (900 + float64(rng.Intn(110000))/100)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + int64(1+rng.Intn(121))
			commit := odate + int64(30+rng.Intn(61))
			receipt := ship + int64(1+rng.Intn(30))
			rf := "N"
			ls := "O"
			if receipt <= start+int64(orderSpan)-180 {
				ls = "F"
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			} else {
				allF = false
			}
			total += price * (1 + tax) * (1 - disc)
			d.LineItem = append(d.LineItem, value.Row{
				value.NewInt(orderKey),
				value.NewInt(int64(1 + rng.Intn(nPart))),
				value.NewInt(int64(1 + rng.Intn(nSupp))),
				value.NewInt(int64(l)),
				value.NewInt(int64(qty)),
				value.NewFloat(round2(price)),
				value.NewFloat(disc),
				value.NewFloat(tax),
				value.NewString(rf),
				value.NewString(ls),
				value.NewDate(ship),
				value.NewDate(commit),
				value.NewDate(receipt),
				value.NewString(shipInstr[rng.Intn(len(shipInstr))]),
				value.NewString(shipModes[rng.Intn(len(shipModes))]),
				comment(rng),
			})
		}
		if allF {
			status = "F"
		} else if rng.Intn(2) == 0 {
			status = "P"
		}
		d.Orders = append(d.Orders, value.Row{
			value.NewInt(orderKey),
			value.NewInt(custkey),
			value.NewString(status),
			value.NewFloat(round2(total)),
			value.NewDate(odate),
			value.NewString(priorities[rng.Intn(len(priorities))]),
			value.NewString(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(max(1, nCust/100)))),
			value.NewInt(0),
			comment(rng),
		})
	}
	return d
}

func comment(rng *rand.Rand) value.Value {
	n := 3 + rng.Intn(5)
	out := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, commentWords[rng.Intn(len(commentWords))]...)
	}
	return value.NewString(string(out))
}

func address(rng *rand.Rand) value.Value {
	return value.NewString(fmt.Sprintf("%d %s st", 1+rng.Intn(9999), commentWords[rng.Intn(len(commentWords))]))
}

func phone(rng *rand.Rand) value.Value {
	return value.NewString(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000)))
}

func money(rng *rand.Rand, lo, hi int) value.Value {
	return value.NewFloat(round2(float64(lo) + rng.Float64()*float64(hi-lo)))
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
