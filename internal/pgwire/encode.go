package pgwire

import (
	"fmt"
	"strconv"
	"strings"

	"auditdb/internal/value"
)

// PostgreSQL type OIDs for the engine's value kinds (pg_type.oid).
const (
	oidBool    = 16
	oidInt8    = 20
	oidInt2    = 21
	oidInt4    = 23
	oidText    = 25
	oidOID     = 26
	oidFloat4  = 700
	oidFloat8  = 701
	oidVarchar = 1043
	oidDate    = 1082
	oidNumeric = 1700
)

// kindOID maps an engine value kind to the OID reported in
// RowDescription. Unknown/NULL columns report text, the safest choice
// for text-format decoding.
func kindOID(k value.Kind) uint32 {
	switch k {
	case value.KindBool:
		return oidBool
	case value.KindInt:
		return oidInt8
	case value.KindFloat:
		return oidFloat8
	case value.KindDate:
		return oidDate
	default:
		return oidText
	}
}

// oidSize is RowDescription's type length: fixed sizes for fixed
// types, -1 (variable) otherwise.
func oidSize(oid uint32) int16 {
	switch oid {
	case oidBool:
		return 1
	case oidInt2:
		return 2
	case oidInt4, oidDate, oidFloat4:
		return 4
	case oidInt8, oidFloat8:
		return 8
	default:
		return -1
	}
}

// encodeText renders a value in PostgreSQL text result format.
// null=true means the column is SQL NULL (length -1 on the wire).
func encodeText(v value.Value) (data []byte, null bool) {
	switch v.Kind {
	case value.KindNull:
		return nil, true
	case value.KindBool:
		if v.I != 0 {
			return []byte("t"), false
		}
		return []byte("f"), false
	default:
		// Integers, floats, strings and dates all match PG's text
		// format in their engine String rendering (dates: YYYY-MM-DD).
		return []byte(v.String()), false
	}
}

// valueFromText converts a text-format parameter to an engine value
// using the declared parameter OID; OID 0 (unspecified) infers
// integer, then float, falling back to string — the engine's
// comparison and coercion rules handle strings against DATE columns.
func valueFromText(oid uint32, s string) (value.Value, error) {
	switch oid {
	case oidBool:
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "t", "true", "on", "yes", "y", "1":
			return value.NewBool(true), nil
		case "f", "false", "off", "no", "n", "0":
			return value.NewBool(false), nil
		}
		return value.Null, fmt.Errorf("invalid input syntax for type boolean: %q", s)
	case oidInt2, oidInt4, oidInt8, oidOID:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("invalid input syntax for type integer: %q", s)
		}
		return value.NewInt(i), nil
	case oidFloat4, oidFloat8, oidNumeric:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return value.Null, fmt.Errorf("invalid input syntax for type numeric: %q", s)
		}
		return value.NewFloat(f), nil
	case oidDate:
		return value.ParseDate(strings.TrimSpace(s))
	case 0:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return value.NewInt(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return value.NewFloat(f), nil
		}
		return value.NewString(s), nil
	case oidText, oidVarchar:
		return value.NewString(s), nil
	default:
		return value.Null, fmt.Errorf("unsupported parameter type oid %d", oid)
	}
}

// writer accumulates framed backend messages. Protocol handlers build
// responses here; the connection decides when the bytes hit the
// socket (at Sync/ReadyForQuery, Flush, or a fatal error).
type writer struct {
	out []byte
}

func (w *writer) raw(b []byte)              { w.out = append(w.out, b...) }
func (w *writer) msg(typ byte, body []byte) { w.raw(frame(typ, body)) }

func (w *writer) authenticationOK() {
	var m msgBuf
	m.int32(0)
	w.msg(msgAuth, m.b)
}

func (w *writer) parameterStatus(k, v string) {
	var m msgBuf
	m.cstr(k)
	m.cstr(v)
	w.msg(msgParameterStatus, m.b)
}

func (w *writer) backendKeyData(pid, secret int32) {
	var m msgBuf
	m.int32(pid)
	m.int32(secret)
	w.msg(msgBackendKeyData, m.b)
}

func (w *writer) readyForQuery(status byte) {
	w.msg(msgReadyForQuery, []byte{status})
}

// rowDescription emits column metadata. kinds may be nil (all columns
// report text).
func (w *writer) rowDescription(cols []string, kinds []value.Kind) {
	var m msgBuf
	m.int16(int16(len(cols)))
	for i, name := range cols {
		oid := uint32(oidText)
		if i < len(kinds) {
			oid = kindOID(kinds[i])
		}
		m.cstr(name)
		m.int32(0)            // table OID: not a catalog table
		m.int16(0)            // attribute number
		m.int32(int32(oid))   // type OID
		m.int16(oidSize(oid)) // type size
		m.int32(-1)           // type modifier
		m.int16(0)            // format: text
	}
	w.msg(msgRowDescription, m.b)
}

func (w *writer) dataRow(row value.Row) {
	var m msgBuf
	m.int16(int16(len(row)))
	for _, v := range row {
		data, null := encodeText(v)
		if null {
			m.int32(-1)
			continue
		}
		m.int32(int32(len(data)))
		m.bytes(data)
	}
	w.msg(msgDataRow, m.b)
}

func (w *writer) commandComplete(tag string) {
	var m msgBuf
	m.cstr(tag)
	w.msg(msgCommandComplete, m.b)
}

func (w *writer) emptyQueryResponse() {
	w.msg(msgEmptyQuery, nil)
}

func (w *writer) parseComplete()   { w.msg(msgParseComplete, nil) }
func (w *writer) bindComplete()    { w.msg(msgBindComplete, nil) }
func (w *writer) closeComplete()   { w.msg(msgCloseComplete, nil) }
func (w *writer) noData()          { w.msg(msgNoData, nil) }
func (w *writer) portalSuspended() { w.msg(msgPortalSuspended, nil) }

func (w *writer) parameterDescription(oids []uint32) {
	var m msgBuf
	m.int16(int16(len(oids)))
	for _, oid := range oids {
		if oid == 0 {
			oid = oidText
		}
		m.int32(int32(oid))
	}
	w.msg(msgParamDescription, m.b)
}

// errorFields renders an ErrorResponse or NoticeResponse body.
func errorFields(severity, code, message string) []byte {
	var m msgBuf
	m.byte('S')
	m.cstr(severity)
	m.byte('V')
	m.cstr(severity)
	m.byte('C')
	m.cstr(code)
	m.byte('M')
	m.cstr(message)
	m.byte(0)
	return m.b
}

func (w *writer) errorResponse(code, message string) {
	w.msg(msgErrorResponse, errorFields("ERROR", code, message))
}

func (w *writer) fatalResponse(code, message string) {
	w.msg(msgErrorResponse, errorFields("FATAL", code, message))
}

func (w *writer) notice(message string) {
	w.msg(msgNoticeResponse, errorFields("NOTICE", "00000", message))
}
