package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndDML exercises the locking story: audited
// readers run against storage snapshots while a writer mutates the
// sensitive table, forcing incremental maintenance of the materialized
// ID set mid-flight. Run with -race.
func TestConcurrentQueriesAndDML(t *testing.T) {
	e := newHealthDB(t)
	if _, err := e.ExecScript(`
		CREATE AUDIT EXPRESSION Audit_Zip AS
			SELECT * FROM Patients WHERE Zip = '48109'
			FOR SENSITIVE TABLE Patients, PARTITION BY PatientID`); err != nil {
		t.Fatal(err)
	}
	e.SetAuditAll(true)

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writers: insert and delete patients in the audited zip code.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			id := 1000 + i
			if _, err := e.Exec(fmt.Sprintf(
				"INSERT INTO Patients VALUES (%d, 'P%d', %d, '48109')", id, id, 20+i)); err != nil {
				errs <- err
				return
			}
			if i%2 == 0 {
				if _, err := e.Exec(fmt.Sprintf("DELETE FROM Patients WHERE PatientID = %d", id)); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	// Readers: audited scans and joins.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := e.Query("SELECT * FROM Patients WHERE Zip = '48109'"); err != nil {
					errs <- err
					return
				}
				if _, err := e.Query(`SELECT P.Name FROM Patients P, Disease D
					WHERE P.PatientID = D.PatientID`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The ID set must converge to the final table state.
	ae, _ := e.Registry().Get("Audit_Zip")
	r := mustQuery(t, e, "SELECT COUNT(*) FROM Patients WHERE Zip = '48109'")
	if got, want := ae.Cardinality(), int(r.Rows[0][0].Int()); got != want {
		t.Errorf("materialized set = %d, table says %d", got, want)
	}
}
