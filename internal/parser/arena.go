package parser

import (
	"auditdb/internal/ast"
	"auditdb/internal/value"
)

// arena slab-allocates the three AST node types that dominate a parse
// (binary operators, column references, literals). Nodes are handed
// out of a shared backing array in slabs of arenaSlab, so a typical
// statement costs a few slab allocations instead of one per node. The
// slabs live as long as the AST that points into them — an arena is
// per-parse and never reset.
type arena struct {
	bins []ast.Binary
	cols []ast.ColumnRef
	lits []ast.Literal
	sels []ast.Select
	tbls []ast.BaseTable
	fns  []ast.FuncCall
	its  []ast.SelectItem // select-item backing storage, cap doled out per SELECT
}

const arenaSlab = 8

func (a *arena) binary(op ast.BinaryOp, l, r ast.Expr) *ast.Binary {
	if len(a.bins) == 0 {
		a.bins = make([]ast.Binary, arenaSlab)
	}
	b := &a.bins[0]
	a.bins = a.bins[1:]
	b.Op, b.L, b.R = op, l, r
	return b
}

func (a *arena) columnRef(table, name string) *ast.ColumnRef {
	if len(a.cols) == 0 {
		a.cols = make([]ast.ColumnRef, arenaSlab)
	}
	c := &a.cols[0]
	a.cols = a.cols[1:]
	c.Table, c.Name = table, name
	return c
}

func (a *arena) literal(v value.Value) *ast.Literal {
	if len(a.lits) == 0 {
		a.lits = make([]ast.Literal, arenaSlab)
	}
	l := &a.lits[0]
	a.lits = a.lits[1:]
	l.Val = v
	return l
}

func (a *arena) selectStmt() *ast.Select {
	if len(a.sels) == 0 {
		a.sels = make([]ast.Select, 2)
	}
	s := &a.sels[0]
	a.sels = a.sels[1:]
	s.Limit = -1
	return s
}

func (a *arena) baseTable(name string) *ast.BaseTable {
	if len(a.tbls) == 0 {
		a.tbls = make([]ast.BaseTable, 2)
	}
	t := &a.tbls[0]
	a.tbls = a.tbls[1:]
	t.Name = name
	return t
}

func (a *arena) funcCall(name string) *ast.FuncCall {
	if len(a.fns) == 0 {
		a.fns = make([]ast.FuncCall, 2)
	}
	f := &a.fns[0]
	a.fns = a.fns[1:]
	f.Name = name
	return f
}

// selectItems hands out a zero-length select-item slice with room for
// itemCap entries, so the common SELECT list appends without
// reallocating. A list that outgrows the cap falls back to the
// runtime's growth path, leaving the unused reservation behind.
const itemCap = 8

func (a *arena) selectItems() []ast.SelectItem {
	if len(a.its) < itemCap {
		a.its = make([]ast.SelectItem, itemCap)
	}
	s := a.its[:0:itemCap]
	a.its = a.its[itemCap:]
	return s
}
