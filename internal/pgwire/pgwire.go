// Package pgwire implements the PostgreSQL v3 wire protocol as a
// front door to the audit engine. It is dependency-free — the protocol
// is small enough to speak directly — and plugs into the server
// transport as one Protocol among others: the transport owns accept
// loops, connection limits, timeouts and drain; this package owns only
// the bytes. psql, libpq, pgx and JDBC can connect, run DDL/DML and
// audited SELECTs, and observe SELECT triggers firing, with results
// identical to the line-JSON protocol because both drive the same
// engine.Session.
//
// Deviations from PostgreSQL, by design of the underlying engine:
//
//   - No TLS and no authentication: SSLRequest and GSSENCRequest are
//     answered 'N'; the startup "user" parameter is trusted, exactly
//     as the line-JSON "set user" op is (DESIGN §1: the threat model
//     audits honest-but-curious readers, it does not authenticate).
//   - Text format only. Binary parameter or result formats are
//     refused with SQLSTATE 0A000.
//   - No CancelRequest support; a CancelRequest connection is closed.
//   - Multi-statement simple queries are not wrapped in an implicit
//     transaction; each statement autocommits unless BEGIN is open.
//   - A failed transaction is not sticky: the engine keeps executing
//     statements after an error inside BEGIN…COMMIT, so ReadyForQuery
//     reports 'E' only until the next statement succeeds.
package pgwire

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"auditdb/internal/engine"
	"auditdb/internal/obs"
	"auditdb/internal/server"
)

// Protocol implements server.Protocol for the PostgreSQL wire format.
// One Protocol value serves every pg connection of a transport.
type Protocol struct {
	messages *obs.CounterVec
	errors   *obs.Counter
	nextPID  atomic.Int32
}

// New creates the pg front door, registering its metrics: a per-type
// frontend message counter and an ErrorResponse counter.
func New(reg *obs.Registry) *Protocol {
	return &Protocol{
		messages: reg.NewCounterVec("auditdb_pgwire_messages_total", "pgwire_messages",
			"Frontend messages handled by the PostgreSQL front door.", "type"),
		errors: reg.NewCounter("auditdb_pgwire_errors_total", "pgwire_errors",
			"ErrorResponses sent by the PostgreSQL front door."),
	}
}

// Name identifies the protocol in logs and metrics.
func (p *Protocol) Name() string { return "pg" }

// Refuse reports a connection-limit refusal in PostgreSQL terms: the
// client speaks first, so the SSL/GSS negotiation is swallowed before
// the FATAL lands where libpq will read it.
func (p *Protocol) Refuse(nc net.Conn, msg string) {
	defer nc.Close()
	// Refused connections run outside MaxConns accounting, so a silent
	// client must not pin this goroutine: bound the whole exchange.
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReaderSize(nc, 512)
	for try := 0; try < maxStartupTrys; try++ {
		code, _, err := readStartup(r)
		if err != nil {
			return
		}
		if code == sslRequest || code == gssEncRequest {
			if _, err := nc.Write([]byte{'N'}); err != nil {
				return
			}
			continue
		}
		break
	}
	var w writer
	w.fatalResponse(stateTooManyConnections, msg)
	nc.Write(w.out)
}

// Serve speaks the protocol on one accepted connection.
func (p *Protocol) Serve(c *server.Conn) {
	pc := &pgConn{
		p:       p,
		tc:      c,
		nc:      c.NetConn(),
		r:       bufio.NewReaderSize(c.NetConn(), 32<<10),
		sess:    c.Session(),
		stmts:   map[string]*pgStmt{},
		portals: map[string]*pgPortal{},
	}
	pc.serve()
}

// pgConn is the per-connection protocol state machine.
type pgConn struct {
	p    *Protocol
	tc   *server.Conn
	nc   net.Conn
	r    *bufio.Reader
	sess *engine.Session

	// buf accumulates backend messages; they reach the socket at
	// Sync, Flush, after each simple query, and on fatal errors.
	buf writer

	stmts   map[string]*pgStmt
	portals map[string]*pgPortal

	// skipping discards messages until Sync after an error in an
	// extended-protocol batch, per the protocol's error recovery rule.
	skipping bool
	// hadErr tracks an error inside an open transaction for the
	// ReadyForQuery status byte ('E'); cleared when a statement
	// succeeds (failed transactions are not sticky here, see the
	// package comment).
	hadErr bool
}

// serve runs the handshake then the message loop.
func (pc *pgConn) serve() {
	if !pc.handshake() {
		return
	}
	for {
		if pc.tc.Closing() {
			pc.flushOut()
			return
		}
		pc.tc.ArmIdleDeadline()
		typ, payload, err := readMessage(pc.r)
		if err != nil {
			return
		}
		pc.p.messages.With(msgName(typ)).Inc()
		if pc.skipping && typ != msgSync && typ != msgTerminate {
			continue
		}
		switch typ {
		case msgQuery:
			if !pc.simpleQuery(payload) {
				return
			}
		case msgParse:
			pc.handleParse(payload)
		case msgBind:
			pc.handleBind(payload)
		case msgDescribe:
			pc.handleDescribe(payload)
		case msgExecute:
			if !pc.handleExecute(payload) {
				return
			}
		case msgClose:
			pc.handleClose(payload)
		case msgSync:
			pc.handleSync()
		case msgFlush:
			pc.flushOut()
		case msgTerminate:
			return
		default:
			pc.extErr(stateProtocolViolation,
				fmt.Sprintf("unsupported frontend message %q", typ))
		}
	}
}

// handshake performs the startup exchange; false means the connection
// must be dropped.
func (pc *pgConn) handshake() bool {
	var params map[string]string
	for try := 0; ; try++ {
		if try >= maxStartupTrys {
			return false
		}
		pc.tc.ArmIdleDeadline()
		code, payload, err := readStartup(pc.r)
		if err != nil {
			return false
		}
		if code == sslRequest || code == gssEncRequest {
			// TLS/GSS are not offered; 'N' tells the client to carry
			// on in the clear.
			if _, err := pc.nc.Write([]byte{'N'}); err != nil {
				return false
			}
			continue
		}
		if code == cancelRequest {
			// Out-of-band cancellation is unsupported; the protocol
			// says to just close the cancel connection.
			return false
		}
		if code != protoVersion3 {
			pc.buf.fatalResponse(stateProtocolViolation,
				fmt.Sprintf("unsupported frontend protocol %d.%d: server supports 3.0",
					code>>16, code&0xffff))
			pc.flushOut()
			return false
		}
		params = startupParams(payload)
		break
	}
	pc.p.messages.With("startup").Inc()
	if user := params["user"]; user != "" {
		// The startup user becomes the session's audit identity:
		// userid() in trigger actions, the User column in the log.
		pc.sess.SetUser(user)
	}
	pid := pc.p.nextPID.Add(1)

	pc.buf.authenticationOK()
	pc.buf.parameterStatus("server_version", serverVersion)
	pc.buf.parameterStatus("server_encoding", "UTF8")
	pc.buf.parameterStatus("client_encoding", "UTF8")
	pc.buf.parameterStatus("DateStyle", "ISO, MDY")
	pc.buf.parameterStatus("integer_datetimes", "on")
	pc.buf.parameterStatus("standard_conforming_strings", "on")
	pc.buf.parameterStatus("TimeZone", "UTC")
	pc.buf.parameterStatus("is_superuser", "off")
	pc.buf.parameterStatus("session_authorization", pc.sess.User())
	pc.buf.backendKeyData(pid, 0) // secret 0: cancel keys are not honored
	pc.buf.readyForQuery(pc.statusByte())
	return pc.flushOut()
}

// startupParams decodes the key/value pairs of a v3 startup packet.
func startupParams(payload []byte) map[string]string {
	params := map[string]string{}
	pr := payloadReader{b: payload}
	for {
		k := pr.cstr()
		if pr.err != nil || k == "" {
			return params
		}
		params[k] = pr.cstr()
	}
}

// statusByte is the ReadyForQuery transaction indicator: 'I' idle,
// 'T' in a transaction, 'E' in a transaction whose last statement
// failed. Must not be called while a statement is still running.
func (pc *pgConn) statusByte() byte {
	if !pc.sess.InTxn() {
		return 'I'
	}
	if pc.hadErr {
		return 'E'
	}
	return 'T'
}

// flushOut writes everything buffered to the socket; false on a write
// error (the connection is finished).
func (pc *pgConn) flushOut() bool {
	if len(pc.buf.out) == 0 {
		return true
	}
	_, err := pc.nc.Write(pc.buf.out)
	pc.buf.out = pc.buf.out[:0]
	return err == nil
}

// extErr reports an extended-protocol error and enters error recovery
// (messages are discarded until the next Sync).
func (pc *pgConn) extErr(code, msg string) {
	pc.buf.errorResponse(code, msg)
	pc.p.errors.Inc()
	pc.skipping = true
	pc.hadErr = true
}

// msgName labels frontend message types for the per-type counter.
func msgName(typ byte) string {
	switch typ {
	case msgQuery:
		return "query"
	case msgParse:
		return "parse"
	case msgBind:
		return "bind"
	case msgDescribe:
		return "describe"
	case msgExecute:
		return "execute"
	case msgClose:
		return "close"
	case msgSync:
		return "sync"
	case msgFlush:
		return "flush"
	case msgTerminate:
		return "terminate"
	default:
		return "other"
	}
}
