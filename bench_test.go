package auditdb

// Benchmarks regenerating the paper's evaluation (§V), one per figure.
// Run with:
//
//	go test -bench=. -benchmem
//
// Figures 6 and 9 report cardinalities (false positives vs offline
// ground truth); their benchmarks measure the cost of producing those
// numbers and report the cardinalities as custom metrics. Figures 7, 8
// and 10 are relative-overhead measurements; their benchmarks time the
// instrumented versus plain executions directly and report overhead_%
// as a custom metric. cmd/benchaudit prints the same series as tables.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"auditdb/internal/core"
	"auditdb/internal/experiments"
	"auditdb/internal/tpch"
)

// benchSF is deliberately modest so `go test -bench=.` stays in
// seconds; cmd/benchaudit defaults to a larger database.
const benchSF = 0.004

var (
	wbOnce sync.Once
	wb     *experiments.Workbench
	wbErr  error
)

func bench(b *testing.B) *experiments.Workbench {
	b.Helper()
	wbOnce.Do(func() { wb, wbErr = experiments.NewWorkbench(benchSF) })
	if wbErr != nil {
		b.Fatal(wbErr)
	}
	return wb
}

// BenchmarkFig6MicroFalsePositives regenerates Figure 6: offline vs
// leaf-node vs hcn audit cardinality on the orders ⋈ customer micro
// query at 10% order-date selectivity.
func BenchmarkFig6MicroFalsePositives(b *testing.B) {
	w := bench(b)
	var last experiments.Fig6Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := w.Fig6([]float64{0.1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = pts[0]
	}
	b.ReportMetric(float64(last.Offline), "offline_ids")
	b.ReportMetric(float64(last.Leaf), "leaf_ids")
	b.ReportMetric(float64(last.HCN), "hcn_ids")
}

// BenchmarkFig7MicroOverheads regenerates Figure 7 at the 40%
// selectivity point: instrumented vs plain execution time for both
// heuristics.
func BenchmarkFig7MicroOverheads(b *testing.B) {
	w := bench(b)
	sql := tpch.MicroJoinQuery(0, experiments.CutoffForSelectivity(0.4))
	for _, h := range []core.Heuristic{core.LeafNode, core.HighestCommutativeNode} {
		b.Run(h.String(), func(b *testing.B) {
			w.Engine.SetHeuristic(h)
			instr, _, err := w.Engine.BuildQueryPlan(sql, true)
			if err != nil {
				b.Fatal(err)
			}
			plain, _, err := w.Engine.BuildQueryPlan(sql, false)
			if err != nil {
				b.Fatal(err)
			}
			var tPlain, tInstr time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := w.Engine.RunPlan(plain, sql); err != nil {
					b.Fatal(err)
				}
				tPlain += time.Since(t0)
				t0 = time.Now()
				if _, err := w.Engine.RunPlan(instr, sql); err != nil {
					b.Fatal(err)
				}
				tInstr += time.Since(t0)
			}
			if tPlain > 0 {
				b.ReportMetric(100*(float64(tInstr)-float64(tPlain))/float64(tPlain), "overhead_%")
			}
		})
	}
}

// BenchmarkFig8AuditCardinality regenerates Figure 8: hcn overhead as
// the audit-expression cardinality sweeps from one customer to the
// whole table (log scale).
func BenchmarkFig8AuditCardinality(b *testing.B) {
	w := bench(b)
	sql := tpch.MicroJoinQuery(0, experiments.CutoffForSelectivity(0.4))
	nCust := len(w.Data.Customer)
	for _, card := range []int{1, 10, 100, nCust} {
		b.Run(fmt.Sprintf("card=%d", card), func(b *testing.B) {
			name := fmt.Sprintf("Audit_Bench_%d", card)
			if _, err := w.Engine.Exec(tpch.AuditCustomerRange(name, card)); err != nil {
				b.Fatal(err)
			}
			defer func() {
				if _, err := w.Engine.Exec("DROP AUDIT EXPRESSION " + name); err != nil {
					b.Fatal(err)
				}
			}()
			ae, _ := w.Engine.Registry().Get(name)
			acc := core.NewAccessed()
			plain, _, err := w.Engine.BuildQueryPlan(sql, false)
			if err != nil {
				b.Fatal(err)
			}
			instrBase, _, err := w.Engine.BuildQueryPlan(sql, false)
			if err != nil {
				b.Fatal(err)
			}
			instr := core.Instrument(instrBase, ae, &core.Probe{Expr: ae, Acc: acc}, core.HighestCommutativeNode)
			var tPlain, tInstr time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := w.Engine.RunPlan(plain, sql); err != nil {
					b.Fatal(err)
				}
				tPlain += time.Since(t0)
				t0 = time.Now()
				if _, err := w.Engine.RunPlan(instr, sql); err != nil {
					b.Fatal(err)
				}
				tInstr += time.Since(t0)
			}
			if tPlain > 0 {
				b.ReportMetric(100*(float64(tInstr)-float64(tPlain))/float64(tPlain), "overhead_%")
			}
		})
	}
}

// BenchmarkFig9ComplexFalsePositives regenerates Figure 9: per-query
// offline vs hcn vs leaf audit cardinalities over the seven-query
// workload. The offline ground truth dominates the cost (hundreds of
// tuple-deletion re-executions per query).
func BenchmarkFig9ComplexFalsePositives(b *testing.B) {
	w := bench(b)
	for _, q := range tpch.Queries(w.Params) {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			var hcn, offline int
			for i := 0; i < b.N; i++ {
				r, err := w.Engine.Query(q.SQL)
				if err != nil {
					b.Fatal(err)
				}
				hcn = r.Accessed.Len(experiments.SegmentAuditName)
				rep, err := w.Auditor.Audit(q.SQL, w.Expr)
				if err != nil {
					b.Fatal(err)
				}
				offline = len(rep.AccessedIDs)
			}
			b.ReportMetric(float64(hcn), "hcn_ids")
			b.ReportMetric(float64(offline), "offline_ids")
		})
	}
}

// BenchmarkFig10ComplexOverheads regenerates Figure 10: hcn overhead
// per workload query.
func BenchmarkFig10ComplexOverheads(b *testing.B) {
	w := bench(b)
	w.Engine.SetHeuristic(core.HighestCommutativeNode)
	for _, q := range tpch.Queries(w.Params) {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			plain, _, err := w.Engine.BuildQueryPlan(q.SQL, false)
			if err != nil {
				b.Fatal(err)
			}
			instr, _, err := w.Engine.BuildQueryPlan(q.SQL, true)
			if err != nil {
				b.Fatal(err)
			}
			var tPlain, tInstr time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := w.Engine.RunPlan(plain, q.SQL); err != nil {
					b.Fatal(err)
				}
				tPlain += time.Since(t0)
				t0 = time.Now()
				if _, err := w.Engine.RunPlan(instr, q.SQL); err != nil {
					b.Fatal(err)
				}
				tInstr += time.Since(t0)
			}
			if tPlain > 0 {
				b.ReportMetric(100*(float64(tInstr)-float64(tPlain))/float64(tPlain), "overhead_%")
			}
		})
	}
}

// BenchmarkAblationProbeCost isolates the audit operator's per-row
// cost: the same scan with and without a pass-through probe over the
// full customer table (DESIGN.md ablation: hash-probe vs free flow).
func BenchmarkAblationProbeCost(b *testing.B) {
	w := bench(b)
	sql := "SELECT c_custkey FROM customer"
	plain, _, err := w.Engine.BuildQueryPlan(sql, false)
	if err != nil {
		b.Fatal(err)
	}
	instrBase, _, err := w.Engine.BuildQueryPlan(sql, false)
	if err != nil {
		b.Fatal(err)
	}
	acc := core.NewAccessed()
	instr := core.Instrument(instrBase, w.Expr, &core.Probe{Expr: w.Expr, Acc: acc}, core.HighestCommutativeNode)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.Engine.RunPlan(plain, sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.Engine.RunPlan(instr, sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOfflineAuditorCost measures what the paper's
// architecture (Figure 1) saves: the full offline audit of one micro
// query versus its online (hcn-instrumented) execution.
func BenchmarkAblationOfflineAuditorCost(b *testing.B) {
	w := bench(b)
	sql := tpch.MicroJoinQuery(0, experiments.CutoffForSelectivity(0.2))
	b.Run("online-hcn", func(b *testing.B) {
		w.Engine.SetHeuristic(core.HighestCommutativeNode)
		for i := 0; i < b.N; i++ {
			if _, err := w.Engine.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("offline-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.Auditor.Audit(sql, w.Expr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
