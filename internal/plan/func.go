package plan

import (
	"fmt"
	"strings"

	"auditdb/internal/value"
)

// Func applies a scalar SQL function. The dispatch table below defines
// the supported functions; aggregates are handled by the Aggregate plan
// node, never by Func.
type Func struct {
	Name string // uppercase
	Args []Expr
}

// Eval implements Expr.
func (e *Func) Eval(ctx *EvalCtx, row value.Row) (value.Value, error) {
	fn, ok := scalarFuncs[e.Name]
	if !ok {
		return value.Null, fmt.Errorf("unknown function %s", e.Name)
	}
	args := make([]value.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(ctx, row)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return fn(ctx, args)
}

func (e *Func) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsScalarFunc reports whether name is a known scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToUpper(name)]
	return ok
}

// IsAggregateFunc reports whether name is an aggregate function.
func IsAggregateFunc(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

type scalarFn func(ctx *EvalCtx, args []value.Value) (value.Value, error)

var scalarFuncs = map[string]scalarFn{
	"YEAR": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("YEAR", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		d, err := value.Coerce(args[0], value.KindDate)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(int64(d.Year())), nil
	},
	"MONTH": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("MONTH", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		d, err := value.Coerce(args[0], value.KindDate)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(int64(d.Time().Month())), nil
	},
	"DAY": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("DAY", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		d, err := value.Coerce(args[0], value.KindDate)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(int64(d.Time().Day())), nil
	},
	"ABS": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("ABS", args, 1); err != nil {
			return value.Null, err
		}
		v := args[0]
		switch v.Kind {
		case value.KindNull:
			return value.Null, nil
		case value.KindInt:
			if v.I < 0 {
				return value.NewInt(-v.I), nil
			}
			return v, nil
		case value.KindFloat:
			if v.F < 0 {
				return value.NewFloat(-v.F), nil
			}
			return v, nil
		default:
			return value.Null, fmt.Errorf("ABS: non-numeric argument %s", v.Kind)
		}
	},
	"COALESCE": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	},
	"UPPER": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("UPPER", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewString(strings.ToUpper(args[0].String())), nil
	},
	"LOWER": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("LOWER", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewString(strings.ToLower(args[0].String())), nil
	},
	"LENGTH": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("LENGTH", args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.NewInt(int64(len(args[0].String()))), nil
	},
	// SUBSTRING(s, start, len) with 1-based start, SQL style.
	"SUBSTRING": func(_ *EvalCtx, args []value.Value) (value.Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return value.Null, fmt.Errorf("SUBSTRING expects 2 or 3 arguments, got %d", len(args))
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		s := args[0].String()
		start := int(args[1].Int()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return value.NewString(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].IsNull() {
				return value.Null, nil
			}
			if n := int(args[2].Int()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return value.NewString(s[start:end]), nil
	},
	"NOW": func(ctx *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("NOW", args, 0); err != nil {
			return value.Null, err
		}
		return value.NewString(ctx.Session.Now.UTC().Format("2006-01-02 15:04:05")), nil
	},
	"USERID": func(ctx *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("USERID", args, 0); err != nil {
			return value.Null, err
		}
		return value.NewString(ctx.Session.User), nil
	},
	"SQLTEXT": func(ctx *EvalCtx, args []value.Value) (value.Value, error) {
		if err := arity("SQLTEXT", args, 0); err != nil {
			return value.Null, err
		}
		return value.NewString(ctx.Session.SQL), nil
	},
}

func arity(name string, args []value.Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s expects %d arguments, got %d", name, want, len(args))
	}
	return nil
}
