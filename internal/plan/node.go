package plan

import (
	"fmt"
	"strings"

	"auditdb/internal/value"
)

// Node is a logical plan operator. Plans are trees; the executor in
// internal/exec interprets them directly and the placement algorithms
// in internal/core rewrite them via Children/SetChild.
type Node interface {
	// Schema is the node's output column list.
	Schema() Schema
	// Children returns the input nodes (empty for leaves).
	Children() []Node
	// SetChild replaces input i.
	SetChild(i int, n Node)
	// Label names the operator for plan display.
	Label() string
}

// ---- Leaves ----

// Scan reads a stored table, applying the pushed-down predicate (if
// any) at the leaf, which mirrors how real optimizers push single-table
// filters into the scan (paper §III-C).
type Scan struct {
	Table  string // catalog table name
	Alias  string // exposed qualifier
	Pushed Expr   // optional leaf predicate
	Out    Schema
	// Parallel marks the scan as morsel-driven: workers of the
	// enclosing parallel operator (Gather, parallel Aggregate) claim
	// bounded heap ranges from a shared cursor instead of one iterator
	// streaming the heap. Set by opt.Parallelize.
	Parallel bool
	// Prune holds chunk-refutation terms derived from Pushed by the
	// optimizer: a chunk whose zone map refutes any term cannot yield
	// a passing row and is skipped without copying. Declarative (the
	// constant side may be a Param or Outer ref) so cached plans stay
	// valid; the executor compiles terms at Open.
	Prune []PruneTerm
}

// Schema implements Node.
func (s *Scan) Schema() Schema { return s.Out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// SetChild implements Node.
func (s *Scan) SetChild(int, Node) { panic("plan: Scan has no children") }

// Label implements Node.
func (s *Scan) Label() string {
	l := "Scan(" + s.Table
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
		l += " AS " + s.Alias
	}
	if s.Pushed != nil {
		l += " WHERE " + s.Pushed.String()
	}
	l += ")"
	if s.Parallel {
		l += " [parallel]"
	}
	return l
}

// ValuesScan reads a named transient relation supplied by the
// execution context: the ACCESSED internal state inside SELECT-trigger
// actions, and the NEW/OLD pseudo-rows inside DML trigger actions.
type ValuesScan struct {
	Name string
	Out  Schema
}

// Schema implements Node.
func (s *ValuesScan) Schema() Schema { return s.Out }

// Children implements Node.
func (s *ValuesScan) Children() []Node { return nil }

// SetChild implements Node.
func (s *ValuesScan) SetChild(int, Node) { panic("plan: ValuesScan has no children") }

// Label implements Node.
func (s *ValuesScan) Label() string { return "Values(" + s.Name + ")" }

// ---- Unary operators ----

// Filter keeps rows whose predicate evaluates to TRUE.
type Filter struct {
	Child Node
	Pred  Expr
}

// Schema implements Node.
func (f *Filter) Schema() Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// SetChild implements Node.
func (f *Filter) SetChild(i int, n Node) { f.Child = n }

// Label implements Node.
func (f *Filter) Label() string { return "Filter(" + f.Pred.String() + ")" }

// Project computes the output expressions.
type Project struct {
	Child Node
	Exprs []Expr
	Out   Schema
}

// Schema implements Node.
func (p *Project) Schema() Schema { return p.Out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// SetChild implements Node.
func (p *Project) SetChild(i int, n Node) { p.Child = n }

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// JoinKind enumerates join types in plans.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "InnerJoin"
	case JoinLeft:
		return "LeftJoin"
	default:
		return "CrossJoin"
	}
}

// Join combines two inputs. When LeftKeys/RightKeys are non-empty the
// executor uses a hash join on those equi-key expressions, applying
// Residual to each candidate pair; otherwise it falls back to a
// nested-loops join on Cond.
type Join struct {
	Kind        JoinKind
	Left, Right Node
	Cond        Expr // full join condition (nil for cross)
	// Equi-key decomposition, filled by the optimizer. LeftKeys[i] is
	// evaluated against left rows and must equal RightKeys[i] on right
	// rows.
	LeftKeys, RightKeys []Expr
	Residual            Expr // non-equi remainder of Cond
	// Parallel marks a hash join for partitioned parallel execution:
	// the build side is read once, partitioned and built by workers,
	// then probed by the morsel workers of the enclosing exchange. Only
	// ever set on equi-joins (LeftKeys non-empty). Set by
	// opt.Parallelize.
	Parallel bool
}

// Schema implements Node.
func (j *Join) Schema() Schema { return j.Left.Schema().Concat(j.Right.Schema()) }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// SetChild implements Node.
func (j *Join) SetChild(i int, n Node) {
	if i == 0 {
		j.Left = n
	} else {
		j.Right = n
	}
}

// Label implements Node.
func (j *Join) Label() string {
	l := j.Kind.String()
	if j.Cond != nil {
		l += "(" + j.Cond.String() + ")"
	}
	if j.Parallel {
		l += " [parallel]"
	}
	return l
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (f AggFunc) String() string {
	return [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[f]
}

// AggSpec is one aggregate computation. Arg nil means COUNT(*).
type AggSpec struct {
	Func     AggFunc
	Arg      Expr
	Distinct bool
}

// Label renders the aggregate for display.
func (a AggSpec) Label() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return a.Func.String() + "(" + d + arg + ")"
}

// Aggregate groups its input by the GroupBy expressions and computes
// the aggregates. Output columns are the group-by values followed by
// the aggregate results. With no GroupBy it produces exactly one row.
type Aggregate struct {
	Child   Node
	GroupBy []Expr
	Aggs    []AggSpec
	Out     Schema
	// Parallel marks the aggregate for two-phase execution: workers
	// fold partial states over morsels of the child, and the partials
	// are merged serially at close. Never set when any AggSpec is
	// DISTINCT (per-worker seen-sets are not union-mergeable into
	// correct sums/counts). Set by opt.Parallelize.
	Parallel bool
}

// Schema implements Node.
func (a *Aggregate) Schema() Schema { return a.Out }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// SetChild implements Node.
func (a *Aggregate) SetChild(i int, n Node) { a.Child = n }

// Label implements Node.
func (a *Aggregate) Label() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, ag := range a.Aggs {
		parts = append(parts, ag.Label())
	}
	l := "Aggregate(" + strings.Join(parts, ", ") + ")"
	if a.Parallel {
		l += " [parallel]"
	}
	return l
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders its input.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// SetChild implements Node.
func (s *Sort) SetChild(i int, n Node) { s.Child = n }

// Label implements Node.
func (s *Sort) Label() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Limit passes through the first N rows. Combined with Sort it is the
// paper's top-k operator — the canonical non-commutative operator for
// audit placement (Example 3.2).
type Limit struct {
	Child Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// SetChild implements Node.
func (l *Limit) SetChild(i int, n Node) { l.Child = n }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Distinct removes duplicate rows (set semantics), another
// non-commutative barrier for audit operators.
type Distinct struct {
	Child Node
}

// Schema implements Node.
func (d *Distinct) Schema() Schema { return d.Child.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// SetChild implements Node.
func (d *Distinct) SetChild(i int, n Node) { d.Child = n }

// Label implements Node.
func (d *Distinct) Label() string { return "Distinct" }

// Gather is the exchange operator between a parallel subtree and its
// serial consumers: a worker pool executes Child's pipeline fragment
// over morsels of its parallel leaf and funnels the produced rows into
// a single stream. Row order across morsels is unspecified — only
// operators above an explicit Sort may rely on ordering. Inserted by
// opt.Parallelize; never produced by the SQL front end.
type Gather struct {
	Child Node
	// Workers is the pool size the planner chose (>= 2).
	Workers int
}

// Schema implements Node.
func (g *Gather) Schema() Schema { return g.Child.Schema() }

// Children implements Node.
func (g *Gather) Children() []Node { return []Node{g.Child} }

// SetChild implements Node.
func (g *Gather) SetChild(i int, n Node) { g.Child = n }

// Label implements Node.
func (g *Gather) Label() string { return fmt.Sprintf("Gather(workers=%d)", g.Workers) }

// AuditSink receives the partition-by values that flow past an audit
// operator during execution. internal/core implements it with a
// sensitive-ID hash probe that records matches into the query's
// ACCESSED state (paper §IV-A.2).
type AuditSink interface {
	Observe(v value.Value)
}

// BatchAuditSink is the vectorized extension of AuditSink: sinks that
// implement it receive whole batches of partition-by values, paying
// synchronization once per batch instead of once per row. Semantics
// are identical to calling Observe on each element in order, so audit
// cardinalities cannot depend on which path the executor picks. The
// slice is only valid for the duration of the call.
type BatchAuditSink interface {
	AuditSink
	ObserveBatch(vs []value.Value)
}

// WorkerAuditSink is one worker's private view of a forked audit
// sink. Workers call Observe/ObserveBatch without synchronization;
// Merge folds the worker's observations into the parent exactly once,
// after the worker has stopped producing.
type WorkerAuditSink interface {
	BatchAuditSink
	Merge()
}

// PruneKind discriminates chunk-refutation terms.
type PruneKind uint8

// Prune term kinds: a column/constant comparison, or a null check.
const (
	PruneCmp PruneKind = iota
	PruneIsNull
	PruneNotNull
)

// PruneTerm is one conjunct of a scan's pruning predicate, in the
// restricted shape zone maps can refute: column <op> constant, column
// IS NULL, or column IS NOT NULL. Val stays an expression (Const,
// Param, or Outer) so terms survive plan caching; the executor
// resolves it to an int64 at Open and drops terms it cannot resolve to
// an I-backed kind.
type PruneTerm struct {
	Kind PruneKind
	Col  int
	Op   CmpOp
	Val  Expr
}

// CountingAuditSink is an audit sink whose observed-row accounting can
// be advanced without presenting the values. The fused kernel uses it
// when a chunk's sensitive-ID sketch refutes every row: the per-row
// probes are elided (none could match, so ACCESSED is untouched) while
// the observation count stays byte-identical to the unelided run.
// Sinks that do not implement this interface never have probes elided.
type CountingAuditSink interface {
	AuditSink
	ObserveCount(n int64)
}

// ChunkSketch is the read-only statistics view the storage layer hands
// to pruning decisions: zone-map range, null counts, and sensitive-ID
// membership for one chunk. All answers are conservative — "may
// contain" can be wrong in the containing direction only.
type ChunkSketch interface {
	Range(col int) (lo, hi int64, ok bool)
	NullCounts(col int) (nulls, nonNull int64)
	MayContain(col int, v int64) bool
}

// SketchPruner refutes chunks against an audit expression's
// sensitive-ID set: RefuteChunk returns true only when no value in the
// chunk's watched column can be in the set. Implemented by
// core.AuditExpression.
type SketchPruner interface {
	RefuteChunk(col int, ck ChunkSketch) bool
}

// ParallelAuditSink is an audit sink that supports fork/merge
// parallelism: Fork returns a worker-local sink whose observations are
// union-merged into the parent by its Merge method. Because the audit
// operator is a pure, commutative probe (paper Claim 3.6), the union
// of per-worker ACCESSED observations equals the serial result — no
// false negatives, no spurious entries. Sinks that do not implement
// this interface are shared across workers behind a mutex instead.
type ParallelAuditSink interface {
	AuditSink
	Fork() WorkerAuditSink
}

// Audit is the paper's audit operator: a no-op "data viewer" derived
// from the filter operator. It forwards every input row unchanged and
// feeds the partition-by column (ordinal IDIdx of its input) to the
// sink. Selectivity is definitionally 1.0.
type Audit struct {
	Child Node
	// Name is the audit expression this operator serves.
	Name string
	// IDIdx is the ordinal of the partition-by column in Child's schema.
	IDIdx int
	// Sink checks membership in the sensitive-ID set and records hits.
	Sink AuditSink
	// Pruner, when set, can refute whole chunks against the audit
	// expression's sensitive-ID sketch. It is the stable compiled
	// expression object (not a snapshot), so cached plans see DML to
	// the watch set immediately; plan-cache invalidation on expression
	// DDL covers creation/drop.
	Pruner SketchPruner
}

// Schema implements Node.
func (a *Audit) Schema() Schema { return a.Child.Schema() }

// Children implements Node.
func (a *Audit) Children() []Node { return []Node{a.Child} }

// SetChild implements Node.
func (a *Audit) SetChild(i int, n Node) { a.Child = n }

// Label implements Node.
func (a *Audit) Label() string {
	col := "?"
	if sch := a.Child.Schema(); a.IDIdx >= 0 && a.IDIdx < len(sch) {
		col = sch[a.IDIdx].String()
	}
	return fmt.Sprintf("Audit(%s on %s)", a.Name, col)
}

// Explain renders the plan tree as an indented multi-line string, used
// in tests and the shell's EXPLAIN-style output.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Label())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explain(b, c, depth+1)
	}
}

// Walk visits every node in the plan tree in pre-order, including
// subquery plans referenced from expressions when deep is true.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
