package plan

// CloneNode deep-copies a plan tree so the copy can be executed and
// mutated (audit-sink rebinding) independently of the original. It is
// how the engine's shared plan cache hands one immutable template to
// many sessions: each adoption clones the node structs, while
// expressions — immutable during execution — stay shared between
// template and clones.
//
// The one exception is an expression tree containing a *Subquery:
// subquery plans embed Audit operators whose Sink field is rebound per
// execution, so any expression path that reaches a Subquery is cloned
// too, along with the subplan itself.
func CloneNode(n Node) Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *Scan:
		c := *x
		c.Pushed = cloneExpr(x.Pushed)
		return &c
	case *ValuesScan:
		c := *x
		return &c
	case *Filter:
		c := *x
		c.Child = CloneNode(x.Child)
		c.Pred = cloneExpr(x.Pred)
		return &c
	case *Project:
		c := *x
		c.Child = CloneNode(x.Child)
		c.Exprs = cloneExprs(x.Exprs)
		return &c
	case *Join:
		c := *x
		c.Left = CloneNode(x.Left)
		c.Right = CloneNode(x.Right)
		c.Cond = cloneExpr(x.Cond)
		c.LeftKeys = cloneExprs(x.LeftKeys)
		c.RightKeys = cloneExprs(x.RightKeys)
		c.Residual = cloneExpr(x.Residual)
		return &c
	case *Aggregate:
		c := *x
		c.Child = CloneNode(x.Child)
		c.GroupBy = cloneExprs(x.GroupBy)
		if len(x.Aggs) > 0 {
			c.Aggs = make([]AggSpec, len(x.Aggs))
			for i, a := range x.Aggs {
				c.Aggs[i] = a
				c.Aggs[i].Arg = cloneExpr(a.Arg)
			}
		}
		return &c
	case *Sort:
		c := *x
		c.Child = CloneNode(x.Child)
		if len(x.Keys) > 0 {
			c.Keys = make([]SortKey, len(x.Keys))
			for i, k := range x.Keys {
				c.Keys[i] = k
				c.Keys[i].Expr = cloneExpr(k.Expr)
			}
		}
		return &c
	case *Limit:
		c := *x
		c.Child = CloneNode(x.Child)
		return &c
	case *Distinct:
		c := *x
		c.Child = CloneNode(x.Child)
		return &c
	case *Gather:
		c := *x
		c.Child = CloneNode(x.Child)
		return &c
	case *Audit:
		c := *x
		c.Child = CloneNode(x.Child)
		return &c
	default:
		// Unknown operator: no safe way to copy, share it. Today every
		// operator the planner emits is handled above.
		return n
	}
}

// hasSubquery reports whether the expression tree contains a subquery.
func hasSubquery(e Expr) bool {
	found := false
	WalkExprTree(e, func(x Expr) {
		if _, ok := x.(*Subquery); ok {
			found = true
		}
	})
	return found
}

// cloneExpr returns e itself when it contains no subquery (expressions
// are immutable during execution, so sharing is safe), and a deep copy
// — subplans included — when it does.
func cloneExpr(e Expr) Expr {
	if e == nil || !hasSubquery(e) {
		return e
	}
	return deepCloneExpr(e)
}

func cloneExprs(es []Expr) []Expr {
	cloned := false
	for _, e := range es {
		if hasSubquery(e) {
			cloned = true
			break
		}
	}
	if !cloned {
		return es
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = cloneExpr(e)
	}
	return out
}

func deepCloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Cmp:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *And:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *Or:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *Not:
		c := *x
		c.X = deepCloneExpr(x.X)
		return &c
	case *Arith:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *Neg:
		c := *x
		c.X = deepCloneExpr(x.X)
		return &c
	case *Concat:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *Like:
		c := *x
		c.L, c.R = deepCloneExpr(x.L), deepCloneExpr(x.R)
		return &c
	case *IsNull:
		c := *x
		c.X = deepCloneExpr(x.X)
		return &c
	case *Between:
		c := *x
		c.X, c.Lo, c.Hi = deepCloneExpr(x.X), deepCloneExpr(x.Lo), deepCloneExpr(x.Hi)
		return &c
	case *InList:
		c := *x
		c.X = deepCloneExpr(x.X)
		c.List = make([]Expr, len(x.List))
		for i, item := range x.List {
			c.List[i] = deepCloneExpr(item)
		}
		return &c
	case *Func:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = deepCloneExpr(a)
		}
		return &c
	case *Case:
		c := *x
		c.Operand = deepCloneExpr(x.Operand)
		c.Whens = make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = CaseWhen{Cond: deepCloneExpr(w.Cond), Result: deepCloneExpr(w.Result)}
		}
		c.Else = deepCloneExpr(x.Else)
		return &c
	case *Subquery:
		c := *x
		c.Plan = CloneNode(x.Plan)
		c.Probe = deepCloneExpr(x.Probe)
		return &c
	default:
		// Leaves (Col, Const, Param, Outer) are immutable: share.
		return e
	}
}
