package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"auditdb/internal/core"
	"auditdb/internal/engine"
	"auditdb/internal/value"
	"auditdb/internal/wire"
)

// jsonProtocol is the built-in line-delimited JSON wire format
// (package wire) as a transport Protocol.
type jsonProtocol struct{}

func (jsonProtocol) Name() string { return "json" }

// Refuse sends a one-line error to a connection that will not be
// served (connection limit) and closes it.
func (jsonProtocol) Refuse(nc net.Conn, msg string) { refuse(nc, msg) }

func (jsonProtocol) Serve(tc *Conn) {
	c := &jsonConn{
		tc:    tc,
		nc:    tc.NetConn(),
		r:     bufio.NewReaderSize(tc.NetConn(), 64<<10),
		w:     bufio.NewWriter(tc.NetConn()),
		sess:  tc.Session(),
		stmts: make(map[int]*engine.Prepared),
	}
	c.serve()
}

// jsonConn is one served line-JSON connection: its prepared statements
// and the line codec over the transport's Conn.
type jsonConn struct {
	tc *Conn
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer

	sess     *engine.Session
	stmts    map[int]*engine.Prepared
	nextStmt int
	// reqT0 marks when the current request line arrived; statement ops
	// report time-to-execution as the trace's transport phase.
	reqT0 time.Time
}

func refuse(nc net.Conn, msg string) {
	b, _ := json.Marshal(&wire.Response{Error: msg})
	nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	nc.Write(append(b, '\n'))
	nc.Close()
}

func (c *jsonConn) serve() {
	for {
		if c.tc.Closing() {
			return
		}
		c.tc.ArmIdleDeadline()
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			// EOF, idle timeout, or the shutdown nudge.
			return
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		c.reqT0 = time.Now()
		var req wire.Request
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		var resp *wire.Response
		if err := dec.Decode(&req); err != nil {
			resp = errResp("bad request: %v", err)
		} else {
			resp = c.dispatch(&req)
		}
		if err := c.write(resp); err != nil {
			return
		}
	}
}

func (c *jsonConn) write(resp *wire.Response) error {
	b, err := json.Marshal(resp)
	if err != nil {
		b, _ = json.Marshal(errResp("encoding response: %v", err))
	}
	c.nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

func errResp(format string, args ...any) *wire.Response {
	return &wire.Response{Error: fmt.Sprintf(format, args...)}
}

func (c *jsonConn) dispatch(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true}
	case wire.OpQuit:
		c.tc.MarkDead()
		return &wire.Response{OK: true}
	case wire.OpStats:
		return &wire.Response{OK: true, Stats: c.tc.Stats()}
	case wire.OpSet:
		return c.set(req.Key, req.Value)
	case wire.OpExec:
		return c.guard(func() *wire.Response {
			c.sess.NoteTransport("json", time.Since(c.reqT0))
			r, err := c.sess.ExecScript(req.SQL)
			return resultResp(r, err)
		})
	case wire.OpQuery:
		return c.guard(func() *wire.Response {
			c.sess.NoteTransport("json", time.Since(c.reqT0))
			r, err := c.sess.Query(req.SQL)
			return resultResp(r, err)
		})
	case wire.OpPrepare:
		p, err := c.sess.Prepare(req.SQL)
		if err != nil {
			return errResp("%v", err)
		}
		c.nextStmt++
		c.stmts[c.nextStmt] = p
		return &wire.Response{OK: true, Stmt: c.nextStmt, NumParams: p.NumParams()}
	case wire.OpRun:
		p, ok := c.stmts[req.Stmt]
		if !ok {
			return errResp("unknown prepared statement %d", req.Stmt)
		}
		params := make([]value.Value, len(req.Params))
		for i, raw := range req.Params {
			v, err := wire.ParamToValue(raw)
			if err != nil {
				return errResp("parameter %d: %v", i+1, err)
			}
			params[i] = v
		}
		return c.guard(func() *wire.Response {
			c.sess.NoteTransport("json", time.Since(c.reqT0))
			r, err := p.Run(params...)
			return resultResp(r, err)
		})
	case wire.OpCloseStmt:
		delete(c.stmts, req.Stmt)
		return &wire.Response{OK: true}
	case wire.OpVerifyAudit:
		rep, err := c.tc.Engine().VerifyAuditLog()
		if err != nil {
			return errResp("%v", err)
		}
		return &wire.Response{OK: true, Verify: &wire.VerifyResult{
			Valid:   rep.Valid,
			Records: rep.Records,
			Head:    rep.HeadHex,
			Reason:  rep.Reason,
		}}
	case wire.OpCheckpoint:
		// Checkpoints exclude all writers; run under the query timeout so
		// a wedged one cannot hold the connection forever.
		return c.guard(func() *wire.Response {
			if err := c.tc.Engine().Checkpoint(); err != nil {
				return errResp("%v", err)
			}
			return &wire.Response{OK: true}
		})
	default:
		return errResp("unknown op %q", req.Op)
	}
}

func (c *jsonConn) set(key, val string) *wire.Response {
	switch key {
	case wire.KeyUser:
		if val == "" {
			return errResp("set user: empty name")
		}
		c.sess.SetUser(val)
		c.tc.Logger().Info("session user set", "remote", c.nc.RemoteAddr().String(), "user", val)
	case wire.KeyAuditAll:
		switch val {
		case "on", "true":
			c.sess.SetAuditAll(true)
		case "off", "false":
			c.sess.SetAuditAll(false)
		default:
			return errResp("set audit_all: want on|off, got %q", val)
		}
	case wire.KeyPlacement:
		switch strings.ToLower(val) {
		case "leaf":
			c.sess.SetHeuristic(core.LeafNode)
		case "hcn":
			c.sess.SetHeuristic(core.HighestCommutativeNode)
		case "highest":
			c.sess.SetHeuristic(core.HighestNode)
		default:
			return errResp("set placement: want leaf|hcn|highest, got %q", val)
		}
	case wire.KeyWorkers:
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return errResp("set workers: want a non-negative integer, got %q", val)
		}
		c.sess.SetWorkers(n)
	case wire.KeyTrace:
		switch val {
		case "on", "true":
			c.sess.SetTrace(true)
		case "off", "false":
			c.sess.SetTrace(false)
		default:
			return errResp("set trace: want on|off, got %q", val)
		}
	case wire.KeyTriage:
		switch val {
		case "on", "true":
			c.sess.SetTriage(true)
		case "off", "false":
			c.sess.SetTriage(false)
		default:
			return errResp("set triage: want on|off, got %q", val)
		}
	case wire.KeySkipping:
		switch val {
		case "on", "true":
			c.sess.SetSkipping(true)
		case "off", "false":
			c.sess.SetSkipping(false)
		default:
			return errResp("set skipping: want on|off, got %q", val)
		}
	default:
		return errResp("unknown setting %q", key)
	}
	return &wire.Response{OK: true}
}

// guard runs a statement under the transport's query timeout. On
// timeout the connection is marked dead (closed after the error
// response); the statement keeps running in its goroutine and the
// session is closed only once it finishes.
func (c *jsonConn) guard(f func() *wire.Response) *wire.Response {
	res, timedOut := c.tc.Guard(func() any { return f() })
	if timedOut {
		return errResp("statement exceeded query timeout %s; closing connection", c.tc.QueryTimeout())
	}
	return res.(*wire.Response)
}

func resultResp(r *engine.Result, err error) *wire.Response {
	if err != nil {
		return errResp("%v", err)
	}
	resp := &wire.Response{
		OK:           true,
		Columns:      r.Columns,
		Rows:         wire.RowsToWire(r.Rows),
		RowsAffected: r.RowsAffected,
		QID:          r.QID,
	}
	if r.Accessed != nil {
		audited := make(map[string]int)
		for _, name := range r.Accessed.Expressions() {
			audited[name] = r.Accessed.Len(name)
		}
		if len(audited) > 0 {
			resp.Audited = audited
		}
	}
	return resp
}
